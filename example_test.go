package ndirect_test

import (
	"fmt"

	"ndirect"
)

// The basic one-shot convolution on framework-native layouts.
func ExampleConv2D() {
	s := ndirect.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.Fill(1)
	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)
	w.Fill(0.5)
	out := ndirect.Conv2D(s, in, w, ndirect.Options{Threads: 1})
	// Centre output: 2 channels × 9 taps × 1 × 0.5 = 9.
	fmt.Println(out.Dims, out.At(0, 0, 1, 1))
	// Output: [1 2 4 4] 9
}

// Plans expose the analytically derived execution parameters.
func ExampleNewPlan() {
	l, _ := ndirect.LayerByID(3) // ResNet-50 3×3 layer
	plan := ndirect.NewPlan(l.Shape, ndirect.Options{Threads: 1})
	fmt.Println(plan.RT.Vw, plan.RT.Vk) // the Equation 3-4 optimum
	// Output: 12 8
}

// The machine model projects algorithms onto the paper's platforms.
func ExampleProject() {
	l, _ := ndirect.LayerByID(3)
	s := l.Shape.WithBatch(64)
	nd, _ := ndirect.Project("ndirect", "phytium", s, 0)
	gm, _ := ndirect.Project("im2col+gemm", "phytium", s, 0)
	fmt.Println(nd.GFLOPS > gm.GFLOPS, nd.Bound)
	// Output: true fma
}

// Depthwise-separable building block (§10.2).
func ExampleDepthwiseConv2D() {
	s := ndirect.Shape{N: 1, C: 3, H: 4, W: 4, K: 3, R: 3, S: 3, Str: 1, Pad: 1}
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.Fill(1)
	f := ndirect.NewTensor(s.C, s.R, s.S)
	f.Fill(1)
	out := ndirect.DepthwiseConv2D(s, in, f, ndirect.Options{Threads: 1})
	// Each channel convolves independently: centre sees 9 ones.
	fmt.Println(out.Dims, out.At(0, 2, 1, 1))
	// Output: [1 3 4 4] 9
}

// Quantised INT16 convolution with INT32 accumulation (§3.3).
func ExampleConv2DInt16() {
	s := ndirect.Shape{N: 1, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
	in := make([]int16, 9)
	for i := range in {
		in[i] = 2
	}
	w := make([]int16, 9)
	for i := range w {
		w[i] = 3
	}
	acc := ndirect.Conv2DInt16(s, in, w, ndirect.Options{Threads: 1})
	fmt.Println(acc[4]) // centre: 9 taps × 2 × 3
	// Output: 54
}
