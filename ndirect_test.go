package ndirect

import (
	"bytes"
	"math"
	"testing"

	"ndirect/internal/tensor"
)

func TestPublicConv2DMatchesReference(t *testing.T) {
	s := Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)
	want := Reference(s, in, w)
	got := Conv2D(s, in, w, Options{})
	if d := tensor.RelDiff(want, got); d > 2e-5 {
		t.Fatalf("rel diff %g", d)
	}
}

func TestPublicPlanReuse(t *testing.T) {
	s := Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	plan := NewPlan(s, Options{Threads: 2})
	in := NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(3)
	w := NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(4)
	out1 := NewTensor(s.N, s.K, s.P(), s.Q())
	out2 := NewTensor(s.N, s.K, s.P(), s.Q())
	plan.Execute(in, w, out1)
	plan.Execute(in, w, out2)
	if tensor.MaxAbsDiff(out1, out2) != 0 {
		t.Fatal("plan reuse must be deterministic")
	}
}

func TestPublicNHWC(t *testing.T) {
	s := Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := NewTensor(s.N, s.H, s.W, s.C)
	in.FillRandom(5)
	w := NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(6)
	out := Conv2DNHWC(s, in, w, Options{})
	if out.Dims[3] != s.K {
		t.Fatalf("NHWC output dims %v", out.Dims)
	}
}

func TestPublicPlatforms(t *testing.T) {
	if len(Platforms) != 4 {
		t.Fatal("expected four Table 3 platforms")
	}
	p, ok := PlatformByName("kp920")
	if !ok || p.Cores != 64 {
		t.Fatal("kp920 lookup failed")
	}
}

func TestPublicLayers(t *testing.T) {
	if len(Layers()) != 28 {
		t.Fatal("expected 28 Table 4 layers")
	}
	l, err := LayerByID(3)
	if err != nil || l.Shape.C != 64 {
		t.Fatalf("layer 3 lookup: %v %v", l, err)
	}
	if _, err := LayerByID(99); err == nil {
		t.Fatal("expected error for bad id")
	}
}

func TestTensorFromSlice(t *testing.T) {
	buf := make([]float32, 12)
	tt := TensorFromSlice(buf, 3, 4)
	tt.Set(5, 1, 1)
	if buf[5] != 5 {
		t.Fatal("TensorFromSlice must share storage")
	}
}

func TestBuildModelBackends(t *testing.T) {
	m, err := BuildModel("resnet50", ModelOptions{Backend: "ndirect", Threads: 2})
	if err != nil || m.Name() != "ResNet-50" {
		t.Fatalf("BuildModel: %v", err)
	}
	if len(m.ConvShapes()) == 0 {
		t.Fatal("no conv shapes")
	}
	if _, err := BuildModel("alexnet", ModelOptions{}); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := BuildModel("vgg16", ModelOptions{Backend: "cudnn"}); err == nil {
		t.Fatal("unknown backend must error")
	}
}

func TestModelInferSmokeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full ResNet-50 forward is slow")
	}
	m, err := BuildModel("resnet50", ModelOptions{Threads: 4, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	x := m.NewInput(1)
	x.FillRandom(7)
	y := m.Infer(x)
	if y.Dims[1] != 1000 {
		t.Fatalf("output dims %v", y.Dims)
	}
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestModelWeightsRoundTripPublic(t *testing.T) {
	a, _ := BuildModel("mobilenet", ModelOptions{Threads: 1})
	b, _ := BuildModel("mobilenet", ModelOptions{Threads: 1})
	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	// Same builder seed means identical weights anyway; corrupt one
	// buffer byte to prove validation works.
	var buf2 bytes.Buffer
	if err := a.SaveWeights(&buf2); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	raw[0] = 'X'
	if err := b.LoadWeights(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted header must be rejected")
	}
}

func TestPublicServerSmoke(t *testing.T) {
	s := Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)
	want := Conv2D(s, in, w, Options{})

	srv := NewServer(ServeConfig{})
	got, err := srv.TryConv2D(s, in, w)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("served result differs from seed path by %g, want bit-identical", d)
	}
	srv.Recycle(got)
	st := srv.Stats()
	if st.Gate.Admitted != 1 || st.FullRuns != 1 || st.MemInUse != 0 {
		t.Fatalf("unexpected serve stats: %+v", st)
	}
	if st.PlanCache.Misses == 0 {
		t.Fatalf("plan cache never consulted: %+v", st.PlanCache)
	}
}
