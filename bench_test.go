// Benchmark harness: one testing.B target per table/figure of the
// paper (reduced problem sizes so `go test -bench=.` completes in
// minutes) plus the ablation benches DESIGN.md §4 calls out. The
// full-size experiments live in cmd/ndbench; EXPERIMENTS.md maps each
// benchmark to the paper.
package ndirect_test

import (
	"context"
	"io"
	"testing"
	"time"

	"ndirect"
	"ndirect/internal/acl"
	"ndirect/internal/autotune"
	"ndirect/internal/bench"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/hw"
	"ndirect/internal/im2col"
	"ndirect/internal/nn"
	"ndirect/internal/tensor"
	"ndirect/internal/xnn"
	"ndirect/internal/xsmm"
)

// benchShape is a reduced Table-4-layer-3-like workload: same kernel
// and stride structure, smaller channels/space so a -bench run stays
// fast.
var benchShape = conv.Shape{N: 1, C: 32, H: 28, W: 28, K: 32, R: 3, S: 3, Str: 1, Pad: 1}

// benchShape1x1 exercises the no-im2col regime (layers 19/20).
var benchShape1x1 = conv.Shape{N: 1, C: 64, H: 28, W: 28, K: 64, R: 1, S: 1, Str: 1, Pad: 0}

func reportGFLOPS(b *testing.B, s conv.Shape, iters int) {
	b.Helper()
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(s.FLOPs())*float64(iters)/sec/1e9, "GFLOPS")
	}
}

func benchOperands(s conv.Shape) (in, filter, out *tensor.Tensor) {
	in = s.NewInput()
	in.FillRandom(1)
	filter = s.NewFilter()
	filter.FillRandom(2)
	out = s.NewOutput()
	return
}

// --- Figure 4: the four measured methods on the 3×3 workload ---

func BenchmarkFig4NDirect(b *testing.B) {
	s := benchShape
	in, filter, out := benchOperands(s)
	plan := core.NewPlan(s, core.Options{Threads: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Execute(in, filter, out)
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig4Im2colGEMM(b *testing.B) {
	s := benchShape
	in, filter, _ := benchOperands(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2col.Conv2D(s, in, filter, im2col.Options{Threads: 1})
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig4LIBXSMM(b *testing.B) {
	s := benchShape
	in, filter, _ := benchOperands(s)
	inB := tensor.NCHWToNCHWc(in, xsmm.BlockC)
	fB := tensor.KCRSToCRSKc(filter, xsmm.BlockC, xsmm.BlockK)
	outB := xsmm.NewBlockedOutput(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xsmm.Conv2DBlocked(s, inB, fB, outB, xsmm.Options{Threads: 1})
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig4XNNPACK(b *testing.B) {
	s := benchShape
	in, filter, _ := benchOperands(s)
	inNHWC := tensor.NCHWToNHWC(in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xnn.Conv2DNHWC(s, inNHWC, filter, xnn.Options{Threads: 1})
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig4NDirect1x1(b *testing.B) {
	s := benchShape1x1
	in, filter, out := benchOperands(s)
	plan := core.NewPlan(s, core.Options{Threads: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Execute(in, filter, out)
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig4Modeled(b *testing.B) {
	// One full modeled Figure 4 sweep (28 layers × 4 methods) per
	// iteration.
	cfg := bench.Config{Platform: hw.Phytium2000, Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig4(cfg)
	}
}

// --- Figure 1: motivation ---

func BenchmarkFig1aBreakdown(b *testing.B) {
	s := benchShape
	in, filter, _ := benchOperands(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2col.Conv2D(s, in, filter, im2col.Options{Threads: 1, CollectStats: true})
	}
	reportGFLOPS(b, s, b.N)
}

func BenchmarkFig1bMotivationModeled(b *testing.B) {
	cfg := bench.Config{Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig1b(cfg)
	}
}

func BenchmarkFig1bACLDirect(b *testing.B) {
	s := benchShape
	in, filter, _ := benchOperands(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acl.DirectConv2D(s, in, filter, acl.Options{Threads: 1})
	}
	reportGFLOPS(b, s, b.N)
}

// --- Figure 5: packing ablation (DESIGN.md ablation 1) ---

func BenchmarkFig5PackingAblation(b *testing.B) {
	s := conv.Shape{N: 1, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1} // layer 26 geometry, reduced
	in, filter, out := benchOperands(s)
	b.Run("overlapped", func(b *testing.B) {
		plan := core.NewPlan(s, core.Options{Threads: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Execute(in, filter, out)
		}
		reportGFLOPS(b, s, b.N)
	})
	b.Run("sequential", func(b *testing.B) {
		plan := core.NewPlan(s, core.Options{Threads: 1, SequentialPack: true})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Execute(in, filter, out)
		}
		reportGFLOPS(b, s, b.N)
	})
}

// --- Figure 6: vs the tuned schedule ---

func BenchmarkFig6AnsorTunedSchedule(b *testing.B) {
	s := benchShape
	in, filter, out := benchOperands(s)
	res := autotune.Tune(s, autotune.TuneOptions{Trials: 12, Population: 6, Generations: 2, Threads: 1, Seed: 1})
	sch := autotune.ClampFor(res.Best, s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := autotune.Execute(s, sch, in, filter, out, 1); err != nil {
			b.Fatal(err)
		}
	}
	reportGFLOPS(b, s, b.N)
}

// --- Figure 7: end-to-end ---

func BenchmarkFig7EndToEndModeled(b *testing.B) {
	cfg := bench.Config{Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig7Modeled(cfg, []string{"resnet50"})
	}
}

func BenchmarkFig7ResNet50Blocks(b *testing.B) {
	// One representative bottleneck worth of convs (1x1 -> 3x3 -> 1x1)
	// through the public model-free API.
	shapes := []conv.Shape{
		{N: 1, C: 256, H: 14, W: 14, K: 64, R: 1, S: 1, Str: 1, Pad: 0},
		{N: 1, C: 64, H: 14, W: 14, K: 64, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 64, H: 14, W: 14, K: 256, R: 1, S: 1, Str: 1, Pad: 0},
	}
	plans := make([]*core.Plan, len(shapes))
	ins := make([]*tensor.Tensor, len(shapes))
	fs := make([]*tensor.Tensor, len(shapes))
	outs := make([]*tensor.Tensor, len(shapes))
	var flops int64
	for i, s := range shapes {
		plans[i] = core.NewPlan(s, core.Options{Threads: 1})
		ins[i], fs[i], outs[i] = benchOperands(s)
		flops += s.FLOPs()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range shapes {
			plans[j].Execute(ins[j], fs[j], outs[j])
		}
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "GFLOPS")
	}
}

// --- Figures 8 & 9: embedded and SMT projections ---

func BenchmarkFig8EmbeddedModeled(b *testing.B) {
	cfg := bench.Config{Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig8(cfg)
	}
}

func BenchmarkFig9HyperThreadingModeled(b *testing.B) {
	cfg := bench.Config{Out: io.Discard}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Fig9(cfg)
	}
}

// --- DESIGN.md §4 ablations ---

// Ablation 2: the three micro-kernel bodies for the same 3×3
// stride-1 workload — looped 12×8 (default), fully S-unrolled
// Algorithm 3 (the paper's NEON form; spills on 16-register hosts)
// and the generic slice-accumulator kernel.
func BenchmarkAblationKernelSpecialisation(b *testing.B) {
	s := benchShape
	in, filter, out := benchOperands(s)
	for _, variant := range []struct {
		name string
		opt  core.Options
	}{
		{"looped12x8-default", core.Options{Threads: 1}},
		{"unrolledS3-Alg3", core.Options{Threads: 1, UnrolledKernels: true}},
		{"generic", core.Options{Threads: 1, ForceGenericKernel: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			plan := core.NewPlan(s, variant.opt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Execute(in, filter, out)
			}
			reportGFLOPS(b, s, b.N)
		})
	}
}

// Ablation 3: the Equation 3-4 optimum against alternative register
// tiles.
func BenchmarkAblationRegisterTile(b *testing.B) {
	s := benchShape
	in, filter, out := benchOperands(s)
	for _, tile := range []struct {
		name   string
		vw, vk int
	}{
		{"12x8-optimal", 12, 8},
		{"8x8", 8, 8},
		{"16x4", 16, 4},
		{"4x16", 4, 16},
	} {
		b.Run(tile.name, func(b *testing.B) {
			plan := core.NewPlan(s, core.Options{Threads: 1, ForceVw: tile.vw, ForceVk: tile.vk})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Execute(in, filter, out)
			}
			reportGFLOPS(b, s, b.N)
		})
	}
}

// Ablation 4: the Equation 5-6 thread mapping vs naive K-only
// parallelism, on the machine model (the host has one core).
func BenchmarkAblationThreadMapping(b *testing.B) {
	cfg := bench.Config{Platform: hw.Phytium2000, Out: io.Discard}
	s := conv.Shape{N: 64, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	b.Run("eq5-6-mapping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.ModelLayer(cfg, bench.MNDirect, s)
		}
	})
	b.Run("k-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.ModelLayer(cfg, bench.MACLDirect, s)
		}
	})
}

// Ablation 5: on-the-fly filter transform inside the worker loop is
// nDirect's compatibility cost; compare against convolving with
// nothing to transform (C split into one tile so the transform runs
// once) vs many small kt tiles (transform repeated).
func BenchmarkAblationFilterTransform(b *testing.B) {
	s := benchShape
	in, filter, out := benchOperands(s)
	b.Run("single-kt-tile", func(b *testing.B) {
		plan := core.NewPlan(s, core.Options{Threads: 1, ForceTk: s.K})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Execute(in, filter, out)
		}
		reportGFLOPS(b, s, b.N)
	})
	b.Run("tiny-kt-tiles", func(b *testing.B) {
		plan := core.NewPlan(s, core.Options{Threads: 1, ForceTk: 8})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.Execute(in, filter, out)
		}
		reportGFLOPS(b, s, b.N)
	})
}

// --- public API entry points ---

func BenchmarkPublicConv2D(b *testing.B) {
	s := ndirect.Shape(benchShape)
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ndirect.Conv2D(s, in, w, ndirect.Options{Threads: 1})
	}
	reportGFLOPS(b, conv.Shape(s), b.N)
}

func BenchmarkPublicDepthwise(b *testing.B) {
	s := conv.Shape{N: 1, C: 32, H: 56, W: 56, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in := tensor.New(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	f := tensor.New(s.C, s.R, s.S)
	f.FillRandom(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DepthwiseConv2D(s, in, f, core.Options{Threads: 1})
	}
}

// --- Inference serving: the cross-call reuse layer ---

// BenchmarkEngineSteadyState measures repeated nn forwards over a
// reduced ResNet-style conv stack, with the engine's reuse layer off
// (the seed path: every call re-solves the Eq. 1–6 plan, re-runs the
// on-the-fly filter transform and allocates fresh activations) and on
// (plan cache + pre-transformed weights + activation buffer pool).
// Outputs are bit-identical; allocs/op and ns/op drop in cached mode.
func BenchmarkEngineSteadyState(b *testing.B) {
	unit := func(name string, c, k, hw, rs, str, pad int) *nn.ConvUnit {
		shape := conv.Shape{N: 1, C: c, H: hw, W: hw, K: k, R: rs, S: rs, Str: str, Pad: pad}
		w := shape.NewFilter()
		w.FillRandom(int64(c*100 + k))
		return &nn.ConvUnit{LayerName: name, Shape: shape, Weights: w, ReLU: true}
	}
	// A bottleneck-shaped stack at reduced width (ResNet-50 stage-3
	// structure: 1x1 reduce -> 3x3 -> 1x1 expand) plus head and pool.
	net := &nn.Network{Name: "steady", Layers: []nn.Layer{
		unit("conv1", 3, 16, 56, 3, 2, 1),
		unit("b_1x1a", 16, 8, 28, 1, 1, 0),
		unit("b_3x3", 8, 8, 28, 3, 1, 1),
		unit("b_1x1b", 8, 32, 28, 1, 1, 0),
		nn.GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 56, 56)
	x.FillRandom(9)

	for _, mode := range []struct {
		name  string
		reuse bool
	}{{"uncached", false}, {"cached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := &nn.Engine{Algo: nn.AlgoNDirect, Threads: 1, Reuse: mode.reuse}
			if _, err := net.TryForward(eng, x); err != nil { // warm caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.TryForward(eng, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// packed-pooled is the floor the serving loop aims at: the same
	// four-conv stack run straight on cached plans with
	// pre-transformed weights, preallocated activations and the fused
	// ReLU epilogue — the per-call work is exactly pack + kernel +
	// store. At steady state this path performs zero heap allocations
	// per forward (asserted deterministically by
	// core.TestSteadyStateZeroAllocs and by scripts/bench_smoke.sh in
	// CI).
	runPackedPooled := func(b *testing.B) {
		shapes := []conv.Shape{
			{N: 1, C: 3, H: 56, W: 56, K: 16, R: 3, S: 3, Str: 2, Pad: 1},
			{N: 1, C: 16, H: 28, W: 28, K: 8, R: 1, S: 1, Str: 1, Pad: 0},
			{N: 1, C: 8, H: 28, W: 28, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			{N: 1, C: 8, H: 28, W: 28, K: 32, R: 1, S: 1, Str: 1, Pad: 0},
		}
		plans := make([]*core.Plan, len(shapes))
		packed := make([]*core.PackedFilter, len(shapes))
		acts := make([]*tensor.Tensor, len(shapes)+1)
		acts[0] = x
		for i, s := range shapes {
			plans[i] = core.NewPlan(s, core.Options{
				Threads:       1,
				FusedEpilogue: &core.EpilogueParams{ReLU: true},
			})
			w := s.NewFilter()
			w.FillRandom(int64(s.C*100 + s.K))
			pf, err := plans[i].TransformFilter(w)
			if err != nil {
				b.Fatal(err)
			}
			packed[i] = pf
			acts[i+1] = s.NewOutput()
			if err := plans[i].TryExecutePacked(acts[i], pf, acts[i+1]); err != nil { // warm scratch
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range plans {
				if err := plans[j].TryExecutePacked(acts[j], packed[j], acts[j+1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("packed-pooled", runPackedPooled)

	// packed-pooled-sentinel is the same hot loop with the full
	// silent-corruption defense active: packed-filter checksum
	// verification sampled aggressively (every 64th consumption instead
	// of the production default) and a serving runtime whose integrity
	// sentinel probes kernel families in the background — its gate
	// sees no traffic, so it probes at the full configured rate. The
	// hot path must stay at 0 allocs/op (scripts/bench_smoke.sh gates
	// on it) and within noise of packed-pooled; EXPERIMENTS.md records
	// the measured delta.
	b.Run("packed-pooled-sentinel", func(b *testing.B) {
		core.SetPackedVerifyInterval(64)
		defer core.SetPackedVerifyInterval(core.DefaultPackedVerifyInterval)
		// Warm each family's cached probe state (plan, operands,
		// reference oracle) so the probes the sentinel fires during the
		// timed window run at their allocation-free steady state.
		for _, name := range core.KernelFamilyNames() {
			if err := core.VerifyKernelFamily(name); err != nil {
				b.Fatal(err)
			}
		}
		srv := ndirect.NewServer(ndirect.ServeConfig{
			SentinelInterval: 2 * time.Millisecond,
			Options:          core.Options{Threads: 1},
		})
		defer srv.Close()
		runPackedPooled(b)
	})
}

// BenchmarkSeparableSteadyState is the depthwise-separable fusion
// acceptance bench: a MobileNet-style dw3×3→pw1×1 block at steady
// state (plans cached, filters packed, outputs preallocated), fused
// through one SeparablePlan versus the strongest unfused composition
// — a cached DepthwisePlan feeding the same pointwise plan through a
// preallocated full intermediate. The fused sub-bench must report 0
// allocs/op (the deterministic counterpart is
// core.TestSeparablePackedZeroAllocs); the unfused sub-bench pays the
// intermediate's memory traffic, and EXPERIMENTS.md records the
// measured fusion speedup.
func BenchmarkSeparableSteadyState(b *testing.B) {
	ss := core.SeparableShape{N: 1, C: 32, H: 28, W: 28, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	in := tensor.New(ss.N, ss.C, ss.H, ss.W)
	in.FillRandom(1)
	dwF := tensor.New(ss.C, ss.R, ss.S)
	dwF.FillRandom(2)
	pwF := tensor.New(ss.K, ss.C, 1, 1)
	pwF.FillRandom(3)
	sepFLOPs := int64(2*ss.N*ss.C*ss.P()*ss.Q()) * int64(ss.R*ss.S+ss.K)

	fused, err := core.TryNewSeparablePlan(ss, core.Options{Threads: 1})
	if err != nil {
		b.Fatal(err)
	}
	pdw, ppw, err := fused.TransformFilters(dwF, pwF)
	if err != nil {
		b.Fatal(err)
	}
	defer pdw.Release()
	defer ppw.Release()
	out := tensor.New(ss.N, ss.K, ss.P(), ss.Q())

	b.Run("fused", func(b *testing.B) {
		if err := fused.TryExecutePacked(in, pdw, ppw, out); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := fused.TryExecutePacked(in, pdw, ppw, out); err != nil {
				b.Fatal(err)
			}
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(sepFLOPs)*float64(b.N)/sec/1e9, "GFLOPS")
		}
	})

	b.Run("unfused", func(b *testing.B) {
		dwPlan, err := core.TryNewDepthwisePlan(ss.DWShape(), core.Options{Threads: 1})
		if err != nil {
			b.Fatal(err)
		}
		mid := tensor.New(ss.N, ss.C, ss.P(), ss.Q())
		pwPlan := fused.PointwisePlan()
		if err := dwPlan.TryExecutePacked(in, pdw, mid); err != nil { // warm scratch
			b.Fatal(err)
		}
		if err := pwPlan.TryExecutePacked(mid, ppw, out); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dwPlan.TryExecutePacked(in, pdw, mid); err != nil {
				b.Fatal(err)
			}
			if err := pwPlan.TryExecutePacked(mid, ppw, out); err != nil {
				b.Fatal(err)
			}
		}
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(sepFLOPs)*float64(b.N)/sec/1e9, "GFLOPS")
		}
	})
}

// BenchmarkSmallConvServing is the per-call-overhead acceptance bench:
// on a small serving shape the one-shot path (the public stateless
// API: fresh plan, on-the-fly filter transform and a new output tensor
// every call — the seed serving behaviour) pays a fixed cost
// comparable to the kernel itself, and the steady-state packed path
// must win by well over 20% ns/op with zero allocations.
func BenchmarkSmallConvServing(b *testing.B) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	w := s.NewFilter()
	w.FillRandom(2)
	out := s.NewOutput()

	b.Run("one-shot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ndirect.Conv2D(ndirect.Shape(s), in, w, ndirect.Options{Threads: 1})
		}
	})
	b.Run("steady", func(b *testing.B) {
		p := core.NewPlan(s, core.Options{Threads: 1})
		pf, err := p.TransformFilter(w)
		if err != nil {
			b.Fatal(err)
		}
		if err := p.TryExecutePacked(in, pf, out); err != nil { // warm scratch
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.TryExecutePacked(in, pf, out); err != nil {
				b.Fatal(err)
			}
		}
	})

	// batched: the same packed execution reached through the serving
	// runtime's micro-batcher by 4 concurrent callers. BatchMax matches
	// the caller count, so at steady state every 4 requests coalesce
	// into one N=4 plan execution (one admission, one scratch set, one
	// grid join); ns/op is per REQUEST, so the row is directly
	// comparable to steady. On a single-core host the kernel dominates
	// and batching buys only the amortised fixed cost; the batch-axis
	// win scales with cores (EXPERIMENTS.md records both readings).
	b.Run("batched", func(b *testing.B) {
		rt := ndirect.NewServer(ndirect.ServeConfig{
			MaxInFlight: 16, MaxQueue: 64,
			BatchWindow: 200 * time.Microsecond, BatchMax: 4,
			Options: core.Options{Threads: 1},
		})
		pf, err := rt.Pack(s, w)
		if err != nil {
			b.Fatal(err)
		}
		warm, err := rt.TryConv2DPackedCtx(context.Background(), s, in, pf)
		if err != nil {
			b.Fatal(err)
		}
		rt.Recycle(warm)
		b.ReportAllocs()
		b.SetParallelism(4) // 4 concurrent callers per GOMAXPROCS
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				o, err := rt.TryConv2DPackedCtx(context.Background(), s, in, pf)
				if err != nil {
					b.Error(err)
					return
				}
				rt.Recycle(o)
			}
		})
	})
}

// --- Warm-start manifests: plan resolution cost for a covered shape
// (EXPERIMENTS.md warm-start table; scripts/bench_json.sh records this
// into BENCH_steady.json) ---

func BenchmarkWarmStartPlan(b *testing.B) {
	// The manifest selftest shape: small enough that cold planning cost
	// is dominated by analysis, which is exactly what a warm start
	// removes from the serving path.
	s := conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	opt := core.Options{Threads: 1}

	// cold: full plan construction per request — what the first request
	// for every uncovered shape pays.
	b.Run("cold-plan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.TryNewPlan(s, opt); err != nil {
				b.Fatal(err)
			}
		}
	})

	// warm: the same shape resolved through a pre-warmed plan cache —
	// the steady-state path after `ndserve -manifest` startup.
	b.Run("manifest-hit", func(b *testing.B) {
		cache := core.NewPlanCache(0)
		if _, err := cache.Get(s, opt); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(s, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
