// Command ndinfo prints the analytical-model outputs the paper's
// design sections derive: the register tile (Equations 3–4), the
// cache tiles (Equations 1–2) and the thread mapping (Equations 5–6)
// for each platform and evaluation layer, plus the host-measured α.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/model"
)

func main() {
	var (
		platform = flag.String("platform", "", "restrict to one platform (phytium|kp920|tx2|rpi4)")
		layerID  = flag.Int("layer", 0, "restrict to one Table 4 layer (1-28; 0 = a representative subset)")
		alpha    = flag.Bool("alpha", false, "measure the streaming/non-streaming cost ratio α on this host (§6.2)")
		roofline = flag.Bool("roofline", false, "print per-layer arithmetic intensity and roofline bounds per platform")
	)
	flag.Parse()

	fmt.Println("== Register tiles (Eq. 3-4): V_w x V_k per kernel width ==")
	fmt.Printf("%6s %6s %8s %8s %10s %8s\n", "S", "stride", "Vw", "Vk", "registers", "FAI")
	for _, s := range []int{1, 3, 5, 7} {
		for _, str := range []int{1, 2} {
			rt := model.SolveRegisterTile(s, str)
			fmt.Printf("%6d %6d %8d %8d %10d %8.2f\n", s, str, rt.Vw, rt.Vk, rt.Registers, rt.FAI)
		}
	}

	plats := hw.Platforms
	if *platform != "" {
		p, ok := hw.ByName(*platform)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
			os.Exit(2)
		}
		plats = []hw.Platform{p}
	}

	layerIDs := []int{1, 3, 5, 10, 17, 24}
	if *layerID > 0 {
		layerIDs = []int{*layerID}
	}

	for _, p := range plats {
		fmt.Printf("\n== %s ==\n", p)
		fmt.Printf("caches: L1 %dKB  L2(eff) %dKB  L3(eff) %dKB  alpha=%.1f (%s replacement)\n",
			p.L1.SizeBytes>>10, p.EffectiveL2Bytes()>>10, p.EffectiveL3Bytes()>>10,
			p.Alpha, p.L1.Policy)
		fmt.Printf("%6s | %-22s | %-28s\n", "layer", "cache tiles (Eq. 1-2)", "thread mapping (Eq. 5-6)")
		for _, id := range layerIDs {
			l, ok := conv.LayerByID(id)
			if !ok {
				continue
			}
			s := l.Shape.WithBatch(p.Cores)
			rt := model.SolveRegisterTile(s.S, s.Str)
			ct := model.SolveCacheTiles(p, s, rt)
			tm := model.SolveThreadMapping(s, p.Alpha, p.Cores, rt.Vk)
			fmt.Printf("%6d | %-22s | %-28s\n", id, ct.String(), tm.String())
		}
	}

	if *roofline {
		fmt.Println("\n== Roofline view (batch = cores; AI over one cold pass) ==")
		for _, p := range plats {
			ridge := p.PeakGFLOPS / p.BandwidthGiBs // GFLOP per GiB: the roofline knee
			fmt.Printf("%s: knee at %.1f FLOP/byte\n", p.Name, ridge/1.074)
			fmt.Printf("%6s %14s %16s\n", "layer", "AI FLOP/byte", "roofline bound")
			for _, id := range layerIDs {
				l, ok := conv.LayerByID(id)
				if !ok {
					continue
				}
				s := l.Shape.WithBatch(p.Cores)
				ai := s.ArithmeticIntensity()
				bound := "compute"
				if ai < ridge/1.074 {
					bound = "memory"
				}
				fmt.Printf("%6d %14.1f %16s\n", id, ai, bound)
			}
		}
	}

	if *alpha {
		fmt.Println("\n== Host α microbenchmark (§6.2) ==")
		a := hw.MeasureAlpha()
		fmt.Printf("alpha = %.2f (non-streaming vs streaming access cost ratio)\n", a)
	}
}
