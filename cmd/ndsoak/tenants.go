package main

// The multi-tenant soak (-tenants N): drives concurrent inference for
// N tenants through one serve.Registry — shared plan cache, worker
// pool, activation budget and weight-residency budget — while the
// storm arms every fault point including forced weight eviction, and
// one tenant's model is register/unregister-churned mid-traffic. On
// top of the classic soak's survival invariants it asserts:
//
//  6. No cross-tenant corruption: every successful response is
//     bit-identical to ITS OWN tenant's oracle. A response matching
//     nothing, or another tenant's oracle, is a violation.
//  7. The weight budget returns to its zero baseline after the drain
//     unregisters every model — forced evictions, re-packs and churn
//     must balance their charges exactly.
//  8. Forced mid-traffic eviction is harmless: with weight-evict
//     armed, requests transparently re-pack bit-identically (covered
//     by invariant 6 holding while ForcedEvictions grows).
//  9. QoS shed ordering is monotone: if a class ever saw a queue-full
//     rejection, every lower class did too — batch absorbs overload
//     strictly before standard, standard strictly before premium.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/parallel"
	"ndirect/internal/serve"
	"ndirect/internal/tensor"
)

// tenantWork is one tenant's pre-validated traffic: its model handle
// and the bit-exact oracle for the shared input.
type tenantWork struct {
	tenant string
	class  serve.QoSClass
	net    *nn.Network
	in     *tensor.Tensor
	want   *tensor.Tensor
}

// buildTenants registers nTenants one-model tenants (classes assigned
// round-robin batch/standard/premium) and precomputes each oracle with
// a clean single-threaded engine. The nets include a pooling layer, so
// storm worker-panics surface as typed faults and exercise the
// per-model quarantine rung.
func buildTenants(reg *serve.Registry, nTenants int) []*tenantWork {
	s := conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	var works []*tenantWork
	for i := 0; i < nTenants; i++ {
		w := s.NewFilter()
		fillInts(w, uint64(1000+2*i))
		layers := []nn.Layer{
			&nn.ConvUnit{LayerName: "conv1", Shape: s, Weights: w, ReLU: true},
		}
		if i%2 == 1 {
			// Every other tenant serves a depthwise-separable block, so
			// the storm also hits the fused separable executor (the
			// registry's per-model engines run Reuse+nDirect, where the
			// fused path is live) and its packed dw+pw recovery ladder.
			// Integer weights + exact-identity BN keep invariant 6's
			// bit-exact oracle demand satisfiable on every rung.
			dwShape := conv.Shape{N: 1, C: 16, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
			dwW := tensor.New(16, 3, 3)
			fillInts(dwW, uint64(5000+2*i))
			pwShape := conv.Shape{N: 1, C: 16, H: 16, W: 16, K: 24, R: 1, S: 1, Str: 1, Pad: 0}
			pwW := pwShape.NewFilter()
			fillInts(pwW, uint64(5001+2*i))
			layers = append(layers, &nn.DepthwiseSeparable{
				LayerName: "dwsep",
				DWShape:   dwShape,
				DWFilter:  dwW,
				DWBN:      exactIdentityBN(dwShape.C),
				PW:        &nn.ConvUnit{LayerName: "dwsep_pw", Shape: pwShape, Weights: pwW, ReLU: true},
			})
		}
		layers = append(layers, &nn.MaxPool{K: 2, Str: 2})
		tw := &tenantWork{
			tenant: fmt.Sprintf("t%d", i),
			class:  serve.QoSClass(i % serve.NumQoSClasses),
			net:    &nn.Network{Name: fmt.Sprintf("m%d", i), Layers: layers},
			in:     s.NewInput(),
		}
		fillInts(tw.in, uint64(1001+2*i))
		want, err := tw.net.TryForward(&nn.Engine{Algo: nn.AlgoNDirect, Threads: 1}, tw.in)
		if err != nil {
			fmt.Printf("ndsoak: setup: oracle forward for %s: %v\n", tw.tenant, err)
			os.Exit(2)
		}
		tw.want = want
		reg.SetTenant(tw.tenant, serve.TenantConfig{Class: tw.class, MaxOutstanding: 0})
		if err := reg.Register(tw.tenant, "m", tw.net); err != nil {
			fmt.Printf("ndsoak: setup: register %s: %v\n", tw.tenant, err)
			os.Exit(2)
		}
		works = append(works, tw)
	}
	return works
}

// runTenantSoak is the -tenants entry point; returns the exit status.
func runTenantSoak(rt *serve.Runtime, nTenants int, weightKB int64, duration time.Duration,
	clients, inFlight int, seed int64, storm, verbose bool) int {

	reg := serve.NewRegistry(serve.RegistryConfig{
		Runtime:             rt,
		MaxInFlight:         inFlight,
		MaxQueue:            2 * inFlight,
		WeightLimitBytes:    weightKB << 10,
		QuarantineThreshold: 5,
		QuarantineCooldown:  2 * time.Second,
	})
	works := buildTenants(reg, nTenants)
	memBase := rt.Budget().InUse()
	gBase := runtime.NumGoroutine()
	fmt.Printf("ndsoak: %d tenants, %d clients, %v, weight budget %d KiB, baseline %d B / %d goroutines, storm=%v\n",
		nTenants, clients, duration, weightKB, memBase, gBase, storm)

	var (
		requests   atomic.Uint64
		okRuns     atomic.Uint64
		typedErrs  atomic.Uint64
		violations atomic.Uint64
	)
	violate := func(format string, args ...any) {
		violations.Add(1)
		if verbose || violations.Load() <= 20 {
			fmt.Printf("VIOLATION: "+format+"\n", args...)
		}
	}

	trafficCtx, stopTraffic := context.WithTimeout(context.Background(), duration)
	defer stopTraffic()

	// The storm: the classic points plus forced weight eviction, so
	// residency is ripped out from under in-flight packed traffic.
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		if !storm {
			<-trafficCtx.Done()
			return
		}
		rng := rand.New(rand.NewSource(seed))
		points := []string{
			faultinject.WorkerPanic,
			faultinject.ScheduleCorrupt,
			faultinject.NaNPoison,
			faultinject.WorkerStall,
			faultinject.PackedCorrupt,
			faultinject.WeightEvict,
		}
		lastReset := time.Now()
		for trafficCtx.Err() == nil {
			for n := 1 + rng.Intn(2); n > 0; n-- {
				p := points[rng.Intn(len(points))]
				arg := -1
				if p == faultinject.NaNPoison || p == faultinject.PackedCorrupt {
					arg = rng.Intn(1 << 16)
				}
				faultinject.ArmN(p, arg, 1+rng.Intn(3))
			}
			time.Sleep(time.Duration(100+rng.Intn(100)) * time.Millisecond)
			if time.Since(lastReset) > 800*time.Millisecond {
				faultinject.Reset()
				lastReset = time.Now()
			}
		}
	}()

	// Register/unregister churn: the last tenant's model flaps while
	// its traffic is in flight — requests must finish bit-exact or fail
	// typed (ErrUnknownModel while unregistered), never touch freed
	// weights, and never strand budget.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		churned := works[len(works)-1]
		for trafficCtx.Err() == nil {
			time.Sleep(50 * time.Millisecond)
			if err := reg.Unregister(churned.tenant, "m"); err != nil {
				violate("churn unregister: %v", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
			if err := reg.Register(churned.tenant, "m", churned.net); err != nil {
				violate("churn re-register: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + 2000 + int64(c)))
			for trafficCtx.Err() == nil {
				requests.Add(1)
				tw := works[rng.Intn(len(works))]
				deadline := time.Duration(5+rng.Intn(95)) * time.Millisecond
				ctx, cancel := context.WithTimeout(trafficCtx, deadline)
				out, err := reg.Infer(ctx, tw.tenant, "m", tw.in)
				cancel()
				if err != nil {
					if !typedError(err) && !errors.Is(err, serve.ErrUnknownModel) {
						violate("untyped error for %s: %v", tw.tenant, err)
					} else {
						typedErrs.Add(1)
					}
					continue
				}
				// Invariant 6: the response is bit-identical to THIS
				// tenant's oracle — anything else is corruption.
				if d := tensor.MaxAbsDiff(tw.want, out); d != 0 {
					violate("tenant %s: output differs from its oracle by %g (cross-tenant corruption?)", tw.tenant, d)
					continue
				}
				okRuns.Add(1)
			}
		}(c)
	}

	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-trafficCtx.Done():
				return
			case <-tick.C:
				st := reg.Stats()
				fmt.Printf("ndsoak: %d requests (%d ok, %d typed errors, %d violations); weights %d B (%d evictions, %d forced); quarantined=%d refInfers=%d; shed full=%v\n",
					requests.Load(), okRuns.Load(), typedErrs.Load(), violations.Load(),
					st.WeightInUse, st.Evictions, st.ForcedEvictions, st.QuarantinedNow, st.ReferenceInfers, st.Gate.ShedFull)
			}
		}
	}()

	// Drain (as in the classic soak: keep releasing stalls).
	<-trafficCtx.Done()
	<-stormDone
	<-churnDone
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	grace := time.After(20 * time.Second)
drain:
	for {
		faultinject.Reset()
		select {
		case <-drained:
			break drain
		case <-grace:
			fmt.Println("ndsoak: DEADLOCK — clients failed to drain within the grace period")
			return 2
		case <-time.After(100 * time.Millisecond):
		}
	}
	faultinject.Reset()

	// Invariant 7: unregister everything; the weight budget must be
	// back to its zero baseline (the churned tenant may already be
	// mid-flap, so tolerate an already-gone model there).
	for _, tw := range works {
		if err := reg.Unregister(tw.tenant, "m"); err != nil && !errors.Is(err, serve.ErrUnknownModel) {
			violate("teardown unregister %s: %v", tw.tenant, err)
		}
	}
	if inUse := reg.WeightBudget().InUse(); inUse != 0 {
		violate("weight budget did not return to baseline: %d B in use, want 0", inUse)
	}

	// Invariant 2: the abandoned-worker account drains to zero.
	leakDeadline := time.Now().Add(15 * time.Second)
	for parallel.LeakedWorkers() != 0 {
		if time.Now().After(leakDeadline) {
			violate("LeakedWorkers stuck at %d after the storm", parallel.LeakedWorkers())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 5: goroutines settle back to the post-setup baseline.
	gDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > gBase {
		if time.Now().After(gDeadline) {
			violate("goroutine count did not settle: %d live, want <= %d", runtime.NumGoroutine(), gBase)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := reg.Stats()
	// Invariant 3: activation accounting back to its baseline too.
	if st.Runtime.MemInUse != memBase {
		violate("activation accounting did not return to baseline: %d B in use, want %d B", st.Runtime.MemInUse, memBase)
	}
	if st.Gate.InFlight != 0 || st.Gate.Queued != 0 {
		violate("tenant gate not drained: %+v", st.Gate)
	}
	if st.Models != 0 {
		violate("%d models still registered after teardown", st.Models)
	}
	// Invariant 9: queue-full shedding is monotone in class — a higher
	// class shedding implies every lower class shed too.
	for c := 0; c < serve.NumQoSClasses-1; c++ {
		if st.Gate.ShedFull[c+1] > 0 && st.Gate.ShedFull[c] == 0 {
			violate("shed ordering inverted: class %d shed %d times but class %d never did",
				c+1, st.Gate.ShedFull[c+1], c)
		}
	}

	fmt.Printf("ndsoak: done: %d requests, %d ok, %d typed errors, %d violations\n",
		requests.Load(), okRuns.Load(), typedErrs.Load(), violations.Load())
	fmt.Printf("ndsoak: tenant gate %+v\n", st.Gate)
	fmt.Printf("ndsoak: weights: peak %d B, %d evictions (%d filters, %d B), %d forced, %d pack denials\n",
		st.WeightPeak, st.Evictions, st.EvictedFilters, st.EvictedBytes, st.ForcedEvictions, st.ResidencyDenied)
	fmt.Printf("ndsoak: quarantine: %d trips, %d reference infers, %d restores\n",
		st.Quarantines, st.ReferenceInfers, st.Restores)
	if violations.Load() > 0 {
		return 1
	}
	return 0
}
