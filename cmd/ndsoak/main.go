// Command ndsoak is the chaos-soak harness for the serving runtime:
// it drives concurrent mixed-shape convolution and network-forward
// traffic through serve.Runtime while (with -storm) every fault
// injection point in the repository is armed and re-armed on a random
// schedule — worker panics, schedule corruption, NaN poisoning,
// packed-weight corruption, worker stalls — and asserts the survival
// invariants the overload-safe design promises:
//
//  1. Every request completes with either a bit-exact result (the
//     traffic uses integer-valued tensors, so all execution modes and
//     fallback paths agree to the bit) or an error wrapping one of the
//     typed sentinels (ErrOverloaded, ErrDeadline, ErrExecFault,
//     ErrWorkerPanic, ErrIntegrity). Anything else — a wrong answer,
//     an untyped error, a panic — is a violation.
//  2. After the storm, parallel.LeakedWorkers drains to zero: every
//     abandoned worker terminates once stalls are released.
//  3. Memory accounting returns to its post-setup baseline (the
//     packed-filter lifetime charges): no request leaks budget.
//  4. No deadlock: every client goroutine exits within a grace period
//     after the run ends (stalled workers are released by periodic
//     fault resets).
//  5. No goroutine growth: serving runs on the persistent worker pool
//     (plus transient spawn-fallback workers that exit with their
//     grid), so after the drain the process goroutine count settles
//     back to the post-setup baseline — a steady-state request must
//     not leave goroutines behind.
//
// With -integrity the storm additionally arms the silent-corruption
// drills (weight-bitflip, scratch-overrun, kernel-miscompute), the
// runtime's integrity sentinel runs throughout, packed-filter checksum
// sampling is tightened, and two more invariants apply:
//
//  6. Zero corrupted outputs reach callers: every injected corruption
//     is either caught (typed core.ErrIntegrity, a canary trip, a
//     checksum failure) or bit-exactly absent from the results — which
//     invariant 1's oracle comparison already enforces. The detection
//     layers must actually fire: a storm that armed weight-bitflip and
//     scratch-overrun without a single checksum failure or canary trip
//     means the defense was asleep, and is a violation.
//  7. The sentinel closes the loop unattended: after the drain, an
//     armed kernel-miscompute must drive quarantine of a kernel family
//     out of dispatch, and clearing the fault must drive its restore.
//
// Exit status: 0 on a clean soak, 1 on invariant violations, 2 on a
// hang (clients failed to drain). CI runs this for ~30 seconds with
// -storm on every push, plus an -integrity -storm soak under -race.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/parallel"
	"ndirect/internal/serve"
	"ndirect/internal/tensor"
)

// workload is one pre-validated traffic unit: a shape, integer-valued
// operands, the bit-exact oracle, and (for some) a packed filter.
type workload struct {
	shape  conv.Shape
	in     *tensor.Tensor
	filter *tensor.Tensor
	want   *tensor.Tensor
	packed *core.PackedFilter // nil: plain traffic only
}

// fillInts fills t with integers in [-3, 3]. Integer tensors make
// every path — optimised grid, degraded plan, float64 reference
// fallback, im2col — produce identical bits, so the soak can demand
// exact equality from whatever mode the ladder picked.
func fillInts(t *tensor.Tensor, seed uint64) {
	x := seed*2654435761 + 12345
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = float32(int64(x>>33)%7 - 3)
	}
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "soak duration")
	clients := flag.Int("clients", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines")
	threads := flag.Int("threads", 2, "worker threads per convolution")
	inFlight := flag.Int("inflight", runtime.GOMAXPROCS(0), "admission in-flight limit")
	memKB := flag.Int64("mem-kb", 256, "global memory budget in KiB (0 = unlimited); lower it (e.g. 64) so requests over-run the budget and walk the degradation ladder")
	storm := flag.Bool("storm", false, "arm every fault injection point on a random schedule")
	seed := flag.Int64("seed", 1, "storm/traffic random seed")
	verbose := flag.Bool("v", false, "log every violation as it happens")
	tenants := flag.Int("tenants", 0, "run the multi-tenant registry soak with this many tenants (0 = classic single-runtime soak)")
	weightKB := flag.Int64("weight-kb", 0, "packed-weight residency budget in KiB for -tenants mode (0 = unlimited); lower it so serving thrashes the weight LRU")
	batch := flag.Bool("batch", false, "enable cross-request micro-batching (2ms window, max 4 images) so the soak drives coalesced execution through the storm")
	integrity := flag.Bool("integrity", false, "run the integrity sentinel, arm the silent-corruption drills in the storm, and assert every injected corruption is detected")
	flag.Parse()

	cfg := serve.Config{
		MaxInFlight:   *inFlight,
		MaxQueue:      2 * *inFlight,
		MemLimitBytes: *memKB << 10,
		Options:       core.Options{Threads: *threads, FallbackBudget: 40 * time.Millisecond},
		Engine: &nn.Engine{
			// im2col so the storm's worker panics exercise the
			// baseline→nDirect degradation and the circuit breakers.
			Algo:             nn.AlgoIm2col,
			Threads:          *threads,
			ConvBudget:       60 * time.Millisecond,
			Reuse:            true,
			BreakerThreshold: 5,
			BreakerCooldown:  2 * time.Second,
		},
	}
	if *batch {
		// Clients share per-shape inputs and filters, so concurrent
		// requests for the same workload coalesce naturally; the soak's
		// bit-exact-or-typed-error invariant then covers the batched
		// grid, the per-batch reservation and the expired-waiter paths.
		cfg.BatchWindow = 2 * time.Millisecond
		cfg.BatchMax = 4
		// A parked waiter holds its admission slot (batching must never
		// multiply concurrency past the gate), so coalescing is
		// impossible when the gate caps in-flight below the batch size;
		// give the batch soak enough slots to actually fill batches.
		if cfg.MaxInFlight < 2*cfg.BatchMax {
			cfg.MaxInFlight = 2 * cfg.BatchMax
			cfg.MaxQueue = 2 * cfg.MaxInFlight
		}
	}
	if *integrity {
		// The sentinel probes only when the gate is idle, so a short
		// interval costs the soak nothing while traffic is flowing and
		// turns every lull into a verification pass.
		cfg.SentinelInterval = 2 * time.Millisecond
		// Tighten checksum sampling from the production default so the
		// sampled (not just injection-forced) verification path fires
		// many times inside a 30-second soak.
		core.SetPackedVerifyInterval(64)
	}
	rt := serve.New(cfg)

	if *tenants > 0 {
		os.Exit(runTenantSoak(rt, *tenants, *weightKB, *duration, *clients, *inFlight, *seed, *storm, *verbose))
	}

	works, baseline, net, netIn, netWant := buildTraffic(rt)
	// Post-setup goroutine baseline: serve.New has already warmed the
	// persistent worker pool, so everything counted here is expected to
	// still exist after the soak drains (invariant 5).
	gBase := runtime.NumGoroutine()
	fmt.Printf("ndsoak: %d shapes, %d clients, %v, budget %d KiB, baseline %d B / %d goroutines, storm=%v\n",
		len(works), *clients, *duration, *memKB, baseline, gBase, *storm)

	var (
		requests   atomic.Uint64
		okRuns     atomic.Uint64
		typedErrs  atomic.Uint64
		violations atomic.Uint64
	)
	violate := func(format string, args ...any) {
		violations.Add(1)
		if *verbose || violations.Load() <= 20 {
			fmt.Printf("VIOLATION: "+format+"\n", args...)
		}
	}

	trafficCtx, stopTraffic := context.WithTimeout(context.Background(), *duration)
	defer stopTraffic()

	// The storm: arm 1–2 random points every ~150 ms, full reset every
	// ~800 ms (the reset also releases stalled workers, bounding how
	// long any unbounded recompute can block on a stall).
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		if !*storm {
			<-trafficCtx.Done()
			return
		}
		rng := rand.New(rand.NewSource(*seed))
		points := []string{
			faultinject.WorkerPanic,
			faultinject.ScheduleCorrupt,
			faultinject.NaNPoison,
			faultinject.WorkerStall,
			faultinject.PackedCorrupt,
		}
		if *integrity {
			// The silent-corruption drills: a finite bit flip only the
			// checksum can see, a scratch overrun only the canary can
			// see, and a kernel miscompute only the sentinel's golden
			// probe can see.
			points = append(points,
				faultinject.WeightBitflip,
				faultinject.ScratchOverrun,
				faultinject.KernelMiscompute,
			)
		}
		lastReset := time.Now()
		for trafficCtx.Err() == nil {
			for n := 1 + rng.Intn(2); n > 0; n-- {
				p := points[rng.Intn(len(points))]
				arg := -1
				switch p {
				case faultinject.NaNPoison, faultinject.PackedCorrupt, faultinject.WeightBitflip:
					arg = rng.Intn(1 << 16) // element index, clamped by the hook
				}
				faultinject.ArmN(p, arg, 1+rng.Intn(3))
			}
			time.Sleep(time.Duration(100+rng.Intn(100)) * time.Millisecond)
			if time.Since(lastReset) > 800*time.Millisecond {
				faultinject.Reset()
				lastReset = time.Now()
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(c)))
			for trafficCtx.Err() == nil {
				requests.Add(1)
				w := works[rng.Intn(len(works))]
				deadline := time.Duration(5+rng.Intn(95)) * time.Millisecond
				ctx, cancel := context.WithTimeout(trafficCtx, deadline)

				var out *tensor.Tensor
				var err error
				var want *tensor.Tensor
				switch op := rng.Intn(10); {
				case op < 2: // network forward through the gated engine
					out, err = rt.Forward(ctx, net, netIn)
					want = netWant
				case op < 5 && w.packed != nil: // packed serving path
					out, err = rt.TryConv2DPackedCtx(ctx, w.shape, w.in, w.packed)
					want = w.want
				default: // plain serving path
					out, err = rt.TryConv2DCtx(ctx, w.shape, w.in, w.filter)
					want = w.want
				}
				cancel()

				if err != nil {
					if !typedError(err) {
						violate("untyped error from %v: %v", w.shape, err)
					} else {
						typedErrs.Add(1)
					}
					continue
				}
				if d := tensor.MaxAbsDiff(want, out); d != 0 {
					violate("result differs from oracle by %g on %v", d, w.shape)
					continue
				}
				okRuns.Add(1)
				if rng.Intn(2) == 0 && out != netWant {
					rt.Recycle(out)
				}
			}
		}(c)
	}

	// Progress heartbeat.
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-trafficCtx.Done():
				return
			case <-tick.C:
				st := rt.Stats()
				fmt.Printf("ndsoak: %d requests (%d ok, %d typed errors, %d violations); modes full/degraded/ref = %d/%d/%d; leaked=%d\n",
					requests.Load(), okRuns.Load(), typedErrs.Load(), violations.Load(),
					st.FullRuns, st.DegradedRuns, st.ReferenceRuns, parallel.LeakedWorkers())
			}
		}
	}()

	// Drain: clients may be blocked inside a stalled grid; keep
	// releasing stalls until they exit, and call the run hung if they
	// cannot drain inside the grace period.
	<-trafficCtx.Done()
	<-stormDone
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	grace := time.After(20 * time.Second)
drain:
	for {
		faultinject.Reset()
		select {
		case <-drained:
			break drain
		case <-grace:
			fmt.Println("ndsoak: DEADLOCK — clients failed to drain within the grace period")
			os.Exit(2)
		case <-time.After(100 * time.Millisecond):
		}
	}
	faultinject.Reset()

	// Invariant 2: the abandoned-worker account drains to zero.
	leakDeadline := time.Now().Add(15 * time.Second)
	for parallel.LeakedWorkers() != 0 {
		if time.Now().After(leakDeadline) {
			violate("LeakedWorkers stuck at %d after the storm", parallel.LeakedWorkers())
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 7 (-integrity): with the gate idle, the sentinel must
	// close the detect→quarantine→restore loop on its own. Runs before
	// rt.Close() tears the sentinel down.
	if *integrity {
		sentinelDrill(rt, violate)
	}
	rt.Close()

	// Invariant 5: goroutine count settles back to the post-setup
	// baseline — steady-state serving dispatches onto the persistent
	// pool, and spawn-fallback workers exit with their grid, so any
	// residue above the baseline (plus the still-parked leak monitors'
	// slack already counted by invariant 2) is a per-call leak.
	gDeadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > gBase {
		if time.Now().After(gDeadline) {
			violate("goroutine count did not settle: %d live, want <= %d (post-setup baseline)",
				runtime.NumGoroutine(), gBase)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Invariant 3: memory accounting back to the post-setup baseline.
	st := rt.Stats()
	if st.MemInUse != baseline {
		violate("memory accounting did not return to baseline: %d B in use, want %d B", st.MemInUse, baseline)
	}
	if st.Gate.InFlight != 0 || st.Gate.Queued != 0 {
		violate("gate not drained: %+v", st.Gate)
	}

	fmt.Printf("ndsoak: done: %d requests, %d ok, %d typed errors, %d violations\n",
		requests.Load(), okRuns.Load(), typedErrs.Load(), violations.Load())
	fmt.Printf("ndsoak: gate %+v\n", st.Gate)
	fmt.Printf("ndsoak: ladder full/degraded/ref = %d/%d/%d, over-budget %d, rejected %d; pool hits/fresh = %d/%d; peak %d B\n",
		st.FullRuns, st.DegradedRuns, st.ReferenceRuns, st.OverBudget, st.MemRejected, st.PoolHits, st.FreshAllocs, st.MemPeak)
	fmt.Printf("ndsoak: worker pool %d workers, %d dispatched, %d spawn-fallbacks\n",
		st.WorkerPool.Workers, st.WorkerPool.Dispatched, st.WorkerPool.Spawned)
	if *batch {
		fmt.Printf("ndsoak: batching %d batches / %d coalesced requests, %d solo flushes, %d expired waiters, %d recycles refused\n",
			st.BatchesExecuted, st.BatchedRequests, st.BatchSoloFlushes, st.BatchExpired, st.RecycleRefused)
		if st.BatchesExecuted == 0 {
			violate("-batch soak never coalesced a single batch (window too small for this load?)")
		}
	}
	if br := rt.Engine().BreakerStats(nn.AlgoIm2col); br.Trips > 0 || br.Skips > 0 {
		fmt.Printf("ndsoak: im2col breaker %+v\n", br)
	}
	if *integrity {
		fmt.Printf("ndsoak: integrity: %d sentinel probes, %d canary trips, %d integrity failures, kernel quarantines/restores %d/%d\n",
			st.SentinelProbes, st.CanaryTrips, st.IntegrityFailures, st.KernelQuarantines, st.KernelRestores)
		fmt.Printf("ndsoak: integrity: %d packed verifies (%d failed), %d scratch canary trips\n",
			st.Integrity.PackedVerifies, st.Integrity.PackedVerifyFailures, st.Integrity.ScratchCanaryTrips)
		// Invariant 6: the detection layers actually fired. The oracle
		// comparison proves no corruption got through; these prove the
		// storm's corruptions were caught rather than never injected.
		if *storm {
			if st.Integrity.PackedVerifyFailures == 0 {
				violate("storm armed weight-bitflip but no packed checksum verification ever failed")
			}
			if st.Integrity.ScratchCanaryTrips == 0 {
				violate("storm armed scratch-overrun but no scratch canary ever tripped")
			}
		}
	}
	if violations.Load() > 0 {
		os.Exit(1)
	}
}

// typedError reports whether err wraps one of the sentinels the
// serving contract allows a request to fail with.
func typedError(err error) bool {
	return errors.Is(err, core.ErrOverloaded) ||
		errors.Is(err, conv.ErrDeadline) ||
		errors.Is(err, core.ErrExecFault) ||
		errors.Is(err, parallel.ErrWorkerPanic) ||
		errors.Is(err, core.ErrIntegrity)
}

// sentinelDrill proves the sentinel's unattended quarantine/restore
// loop after the traffic drains: an unlimited kernel-miscompute is
// armed (it fires only at the sentinel's golden probes), the drill
// waits for a kernel family to be quarantined out of dispatch, clears
// the fault, and waits for every family to be restored.
func sentinelDrill(rt *serve.Runtime, violate func(string, ...any)) {
	defer faultinject.Reset()
	faultinject.ArmN(faultinject.KernelMiscompute, -1, -1)
	deadline := time.Now().Add(15 * time.Second)
	for rt.Stats().KernelQuarantines == 0 {
		if time.Now().After(deadline) {
			violate("sentinel never quarantined a kernel family under an armed kernel-miscompute")
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	faultinject.Reset()
	deadline = time.Now().Add(15 * time.Second)
	for {
		st := rt.Stats()
		if st.KernelRestores >= st.KernelQuarantines && core.KernelDispatchStats().Quarantined == 0 {
			fmt.Printf("ndsoak: sentinel drill: quarantined and restored (%d/%d), dispatch clean\n",
				st.KernelQuarantines, st.KernelRestores)
			return
		}
		if time.Now().After(deadline) {
			violate("sentinel failed to restore after the fault cleared: quarantines=%d restores=%d families still out=%d",
				st.KernelQuarantines, st.KernelRestores, core.KernelDispatchStats().Quarantined)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// buildTraffic precomputes the mixed-shape workloads and their oracles
// (all fault injection disarmed), packs filters for part of the set,
// and builds the small network the forward traffic uses. Returns the
// post-setup budget baseline (the packed lifetime charges).
func buildTraffic(rt *serve.Runtime) (works []*workload, baseline int64, net *nn.Network, netIn, netWant *tensor.Tensor) {
	shapes := []conv.Shape{
		{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 2, C: 5, H: 9, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 16, H: 28, W: 28, K: 16, R: 1, S: 1, Str: 1, Pad: 0},
		{N: 1, C: 4, H: 32, W: 32, K: 8, R: 5, S: 5, Str: 2, Pad: 2},
	}
	for i, s := range shapes {
		w := &workload{shape: s, in: s.NewInput(), filter: s.NewFilter()}
		fillInts(w.in, uint64(2*i+1))
		fillInts(w.filter, uint64(2*i+2))
		w.want = conv.Reference(s, w.in, w.filter)
		if i%2 == 0 {
			pf, err := rt.Pack(s, w.filter)
			if err != nil {
				fmt.Printf("ndsoak: setup: Pack(%v): %v\n", s, err)
				os.Exit(2)
			}
			w.packed = pf
		}
		works = append(works, w)
	}

	// One integer-weight conv+ReLU unit followed by a depthwise-
	// separable block: integer weights and an exact-identity BN
	// (Eps = 0, so the fold contributes bit-nothing) keep the oracle
	// exact on every engine backend and ladder rung — fused separable,
	// unfused composition, post-breaker nDirect and the float64
	// reference alike.
	ns := conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	nw := ns.NewFilter()
	fillInts(nw, 77)
	dwShape := conv.Shape{N: 1, C: 16, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	dwW := tensor.New(16, 3, 3)
	fillInts(dwW, 79)
	pwShape := conv.Shape{N: 1, C: 16, H: 16, W: 16, K: 24, R: 1, S: 1, Str: 1, Pad: 0}
	pwW := pwShape.NewFilter()
	fillInts(pwW, 80)
	net = &nn.Network{Name: "soak", Layers: []nn.Layer{
		&nn.ConvUnit{LayerName: "conv1", Shape: ns, Weights: nw, ReLU: true},
		&nn.DepthwiseSeparable{
			LayerName: "dwsep",
			DWShape:   dwShape,
			DWFilter:  dwW,
			DWBN:      exactIdentityBN(dwShape.C),
			PW:        &nn.ConvUnit{LayerName: "dwsep_pw", Shape: pwShape, Weights: pwW, ReLU: true},
		},
	}}
	netIn = ns.NewInput()
	fillInts(netIn, 78)
	// The oracle composes the naive per-stage references (injection is
	// still disarmed here).
	y := conv.Reference(ns, netIn, nw)
	reluInPlace(y)
	mid := depthwiseReference(dwShape, y, dwW)
	reluInPlace(mid) // identity BN at Eps 0 contributes nothing
	netWant = conv.Reference(pwShape, mid, pwW)
	reluInPlace(netWant)
	return works, rt.Budget().InUse(), net, netIn, netWant
}

// exactIdentityBN builds BatchNorm parameters that fold to an exact
// float32 no-op: Eps = 0 so scale is exactly 1 and shift exactly 0,
// keeping integer tensors integer through every rung.
func exactIdentityBN(c int) *nn.BNParams {
	bn := &nn.BNParams{
		Gamma: make([]float32, c),
		Beta:  make([]float32, c),
		Mean:  make([]float32, c),
		Var:   make([]float32, c),
	}
	for i := range bn.Gamma {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

func reluInPlace(t *tensor.Tensor) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// depthwiseReference is the naive per-channel oracle for the depthwise
// stage (s.K = s.C; filter is [C, R, S]). float64 accumulation like
// conv.Reference — exact for the soak's integer operands either way.
func depthwiseReference(s conv.Shape, in, filter *tensor.Tensor) *tensor.Tensor {
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.C, p, q)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for oj := 0; oj < p; oj++ {
				for oi := 0; oi < q; oi++ {
					var acc float64
					for r := 0; r < s.R; r++ {
						ih := s.Str*oj - s.Pad + r
						if ih < 0 || ih >= s.H {
							continue
						}
						for ss := 0; ss < s.S; ss++ {
							iw := s.Str*oi - s.Pad + ss
							if iw < 0 || iw >= s.W {
								continue
							}
							acc += float64(in.Data[((n*s.C+c)*s.H+ih)*s.W+iw]) *
								float64(filter.Data[(c*s.R+r)*s.S+ss])
						}
					}
					out.Data[((n*s.C+c)*p+oj)*q+oi] = float32(acc)
				}
			}
		}
	}
	return out
}
