// Command ndverify runs the artifact-evaluation correctness matrix:
// every convolution implementation in the repository against the
// naive Algorithm 1 oracle over a battery of shapes (all Table 4
// geometries at reduced size plus adversarial edge cases). Exits
// non-zero on any mismatch. The nDirect and Ansor rows go through the
// checked Try* API, so an invalid shape or an execution fault is
// reported as a verification failure instead of crashing the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"ndirect/internal/acl"
	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/fft"
	"ndirect/internal/im2col"
	"ndirect/internal/tensor"
	"ndirect/internal/winograd"
	"ndirect/internal/xnn"
	"ndirect/internal/xsmm"
)

const tol = 5e-5
const fftTol = 5e-4 // frequency-domain round trip carries more error

// errSkip marks a shape an implementation does not support (e.g.
// Winograd outside 3×3 stride 1); it is not a failure.
var errSkip = errors.New("not applicable")

func main() {
	threads := flag.Int("threads", 2, "worker threads per run")
	full := flag.Bool("full", false, "also run the (slow) full-size Table 4 shapes")
	budget := flag.Duration("budget", 0,
		"per-run deadline for the NDIRECT and Ansor rows (0 = unbounded); "+
			"a run past the budget fails the check instead of wedging it")
	flag.Parse()

	// runCtx returns the per-run context: Background when unbounded.
	runCtx := func() (context.Context, context.CancelFunc) {
		if *budget <= 0 {
			return context.Background(), func() {}
		}
		return context.WithTimeout(context.Background(), *budget)
	}
	shapes := battery(*full)
	impls := []struct {
		name string
		tol  float64
		run  func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error)
	}{
		{"NDIRECT", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			ctx, cancel := runCtx()
			defer cancel()
			return core.TryConv2DCtx(ctx, s, in, f, core.Options{Threads: *threads})
		}},
		{"NDIRECT(seq-pack)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			ctx, cancel := runCtx()
			defer cancel()
			return core.TryConv2DCtx(ctx, s, in, f, core.Options{Threads: *threads, SequentialPack: true})
		}},
		{"NDIRECT(NHWC)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			ctx, cancel := runCtx()
			defer cancel()
			out, err := core.TryConv2DNHWCCtx(ctx, s, tensor.NCHWToNHWC(in), f, core.Options{Threads: *threads})
			if err != nil {
				return nil, err
			}
			return tensor.NHWCToNCHW(out), nil
		}},
		{"im2col+GEMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			out, _ := im2col.Conv2D(s, in, f, im2col.Options{Threads: *threads})
			return out, nil
		}},
		{"LIBXSMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			out, _ := xsmm.Conv2D(s, in, f, xsmm.Options{Threads: *threads})
			return out, nil
		}},
		{"XNNPACK", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			out, _ := xnn.Conv2D(s, in, f, xnn.Options{Threads: *threads})
			return out, nil
		}},
		{"ACL_DIRECT", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			return acl.DirectConv2D(s, in, f, acl.Options{Threads: *threads}), nil
		}},
		{"ACL_GEMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			return acl.GEMMConv2D(s, in, f, acl.Options{Threads: *threads}), nil
		}},
		{"Ansor(default)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			out := s.NewOutput()
			ctx, cancel := runCtx()
			defer cancel()
			if err := autotune.ExecuteCtx(ctx, s, autotune.DefaultSchedule(s), in, f, out, *threads); err != nil {
				return nil, err
			}
			return out, nil
		}},
		{"Winograd", 5e-4, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			out, err := winograd.Conv2D(s, in, f, winograd.Options{Threads: *threads})
			if err != nil {
				return nil, errSkip
			}
			return out, nil
		}},
		{"FFT", fftTol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, error) {
			return fft.Conv2D(s, in, f, fft.Options{Threads: *threads}), nil
		}},
	}

	failures := 0
	checks := 0
	for _, s := range shapes {
		in := s.NewInput()
		in.FillRandom(int64(s.C*101 + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R*37 + s.H))
		want := conv.Reference(s, in, f)
		for _, impl := range impls {
			got, err := impl.run(s, in, f)
			if errors.Is(err, errSkip) {
				continue
			}
			checks++
			if err != nil {
				failures++
				fmt.Printf("FAIL %-18s %v: %v\n", impl.name, s, err)
				continue
			}
			if d := tensor.RelDiff(want, got); d > impl.tol {
				failures++
				fmt.Printf("FAIL %-18s %v: rel diff %.2e (tol %.0e)\n", impl.name, s, d, impl.tol)
			}
		}
	}
	fmt.Printf("\n%d implementation×shape checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Println("all implementations agree with the Algorithm 1 oracle")
}

// battery returns the verification shapes: each Table 4 geometry at
// reduced size (structure preserved) plus adversarial edges.
func battery(full bool) []conv.Shape {
	var out []conv.Shape
	for _, l := range conv.Table4 {
		s := l.Shape
		if !full {
			if s.H > 28 {
				s.H, s.W = 28, 28
			}
			if s.C > 64 {
				s.C = 64
			}
			if s.K > 64 {
				s.K = 64
			}
		} else {
			s = s.WithBatch(2)
		}
		out = append(out, s)
	}
	out = append(out,
		conv.Shape{N: 2, C: 5, H: 7, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1},
		conv.Shape{N: 1, C: 4, H: 10, W: 12, K: 6, R: 3, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Str: 1, Pad: 0},
		conv.Shape{N: 1, C: 3, H: 5, W: 5, K: 2, R: 5, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 3},
	)
	return out
}
