// Command ndverify runs the artifact-evaluation correctness matrix:
// every convolution implementation in the repository against the
// naive Algorithm 1 oracle over a battery of shapes (all Table 4
// geometries at reduced size plus adversarial edge cases). Exits
// non-zero on any mismatch.
package main

import (
	"flag"
	"fmt"
	"os"

	"ndirect/internal/acl"
	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/fft"
	"ndirect/internal/im2col"
	"ndirect/internal/tensor"
	"ndirect/internal/winograd"
	"ndirect/internal/xnn"
	"ndirect/internal/xsmm"
)

const tol = 5e-5
const fftTol = 5e-4 // frequency-domain round trip carries more error

func main() {
	threads := flag.Int("threads", 2, "worker threads per run")
	full := flag.Bool("full", false, "also run the (slow) full-size Table 4 shapes")
	flag.Parse()

	shapes := battery(*full)
	impls := []struct {
		name string
		tol  float64
		run  func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool)
	}{
		{"NDIRECT", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			return core.Conv2D(s, in, f, core.Options{Threads: *threads}), true
		}},
		{"NDIRECT(seq-pack)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			return core.Conv2D(s, in, f, core.Options{Threads: *threads, SequentialPack: true}), true
		}},
		{"NDIRECT(NHWC)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out := core.Conv2DNHWC(s, tensor.NCHWToNHWC(in), f, core.Options{Threads: *threads})
			return tensor.NHWCToNCHW(out), true
		}},
		{"im2col+GEMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out, _ := im2col.Conv2D(s, in, f, im2col.Options{Threads: *threads})
			return out, true
		}},
		{"LIBXSMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out, _ := xsmm.Conv2D(s, in, f, xsmm.Options{Threads: *threads})
			return out, true
		}},
		{"XNNPACK", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out, _ := xnn.Conv2D(s, in, f, xnn.Options{Threads: *threads})
			return out, true
		}},
		{"ACL_DIRECT", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			return acl.DirectConv2D(s, in, f, acl.Options{Threads: *threads}), true
		}},
		{"ACL_GEMM", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			return acl.GEMMConv2D(s, in, f, acl.Options{Threads: *threads}), true
		}},
		{"Ansor(default)", tol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out := s.NewOutput()
			autotune.Execute(s, autotune.DefaultSchedule(s), in, f, out, *threads)
			return out, true
		}},
		{"Winograd", 5e-4, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			out, err := winograd.Conv2D(s, in, f, winograd.Options{Threads: *threads})
			return out, err == nil
		}},
		{"FFT", fftTol, func(s conv.Shape, in, f *tensor.Tensor) (*tensor.Tensor, bool) {
			return fft.Conv2D(s, in, f, fft.Options{Threads: *threads}), true
		}},
	}

	failures := 0
	checks := 0
	for _, s := range shapes {
		in := s.NewInput()
		in.FillRandom(int64(s.C*101 + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R*37 + s.H))
		want := conv.Reference(s, in, f)
		for _, impl := range impls {
			got, applicable := impl.run(s, in, f)
			if !applicable {
				continue
			}
			checks++
			if d := tensor.RelDiff(want, got); d > impl.tol {
				failures++
				fmt.Printf("FAIL %-18s %v: rel diff %.2e (tol %.0e)\n", impl.name, s, d, impl.tol)
			}
		}
	}
	fmt.Printf("\n%d implementation×shape checks, %d failures\n", checks, failures)
	if failures > 0 {
		os.Exit(1)
	}
	fmt.Println("all implementations agree with the Algorithm 1 oracle")
}

// battery returns the verification shapes: each Table 4 geometry at
// reduced size (structure preserved) plus adversarial edges.
func battery(full bool) []conv.Shape {
	var out []conv.Shape
	for _, l := range conv.Table4 {
		s := l.Shape
		if !full {
			if s.H > 28 {
				s.H, s.W = 28, 28
			}
			if s.C > 64 {
				s.C = 64
			}
			if s.K > 64 {
				s.K = 64
			}
		} else {
			s = s.WithBatch(2)
		}
		out = append(out, s)
	}
	out = append(out,
		conv.Shape{N: 2, C: 5, H: 7, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1},
		conv.Shape{N: 1, C: 4, H: 10, W: 12, K: 6, R: 3, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Str: 1, Pad: 0},
		conv.Shape{N: 1, C: 3, H: 5, W: 5, K: 2, R: 5, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 3},
	)
	return out
}
