// Command ndtune runs the Ansor-substitute evolutionary schedule
// search on one convolution layer and reports the best schedule, its
// throughput, and nDirect's throughput on the same layer for
// comparison (the per-layer view behind Figure 6). With -manifest the
// winning schedule is also recorded in a versioned warm-start manifest
// (merged into the file if it already exists) that `ndserve -manifest`
// loads at startup.
//
// Runs are deterministic for a fixed -seed and machine-independent in
// which schedules they try (only the measured times, and hence the
// winner, vary with the host). Failures exit non-zero: 2 for usage
// errors, 1 when tuning measured no admissible schedule or an
// execution / manifest write failed.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/parallel"
)

func main() {
	os.Exit(run())
}

// parseShape parses "c,h,w,k,r,s,stride,pad" into a batch-1 shape.
func parseShape(spec string) (conv.Shape, error) {
	var s conv.Shape
	s.N = 1
	n, err := fmt.Sscanf(spec, "%d,%d,%d,%d,%d,%d,%d,%d",
		&s.C, &s.H, &s.W, &s.K, &s.R, &s.S, &s.Str, &s.Pad)
	if err != nil || n != 8 {
		return s, fmt.Errorf("want c,h,w,k,r,s,stride,pad, got %q", spec)
	}
	return s, s.Validate()
}

func run() int {
	var (
		layerID   = flag.Int("layer", 3, "Table 4 layer id (1-28)")
		shapeSpec = flag.String("shape", "", "explicit shape c,h,w,k,r,s,stride,pad (overrides -layer)")
		batch     = flag.Int("batch", 1, "batch size")
		threads   = flag.Int("threads", parallel.DefaultThreads(), "worker threads")
		trials    = flag.Int("trials", 48, "measurement budget")
		popSize   = flag.Int("population", 12, "schedules per generation")
		gens      = flag.Int("generations", 4, "evolution rounds")
		seed      = flag.Int64("seed", 1, "search seed (fixed seed -> same candidate sequence)")
		useCM     = flag.Bool("cost-model", false, "enable the Ansor-style learned cost model")
		manifest  = flag.String("manifest", "", "warm-start manifest file to create or merge the result into")
	)
	flag.Parse()

	var s conv.Shape
	if *shapeSpec != "" {
		parsed, err := parseShape(*shapeSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: bad -shape: %v\n", err)
			return 2
		}
		s = parsed.WithBatch(*batch)
		fmt.Printf("tuning shape: %v\n", s)
	} else {
		l, ok := conv.LayerByID(*layerID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ndtune: no Table 4 layer %d\n", *layerID)
			return 2
		}
		s = l.Shape.WithBatch(*batch)
		fmt.Printf("tuning layer %d: %v\n", l.ID, s)
	}

	res := autotune.Tune(s, autotune.TuneOptions{
		Population:   *popSize,
		Generations:  *gens,
		Trials:       *trials,
		Threads:      *threads,
		Seed:         *seed,
		UseCostModel: *useCM,
	})
	if *useCM {
		fmt.Printf("cost model ranked %d candidates without measuring them\n", res.ModelRanked)
	}
	if res.Trials == 0 || !res.Best.Valid(s) {
		fmt.Fprintf(os.Stderr, "ndtune: no admissible schedule measured for %v\n", s)
		return 1
	}
	gf := float64(s.FLOPs()) / res.BestSec / 1e9
	fmt.Printf("best schedule after %d trials: %v\n", res.Trials, res.Best)
	fmt.Printf("tuned throughput: %.2f GFLOPS (%.4fs)\n", gf, res.BestSec)

	// nDirect on the same layer, same threads.
	in := s.NewInput()
	in.FillRandom(11)
	filter := s.NewFilter()
	filter.FillRandom(13)
	plan, err := core.TryNewPlan(s, core.Options{Threads: *threads})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndtune: planning %v failed: %v\n", s, err)
		return 1
	}
	out := s.NewOutput()
	if err := plan.TryExecute(in, filter, out); err != nil { // warm-up
		fmt.Fprintf(os.Stderr, "ndtune: nDirect execution failed: %v\n", err)
		return 1
	}
	t0 := time.Now()
	if err := plan.TryExecute(in, filter, out); err != nil {
		fmt.Fprintf(os.Stderr, "ndtune: nDirect execution failed: %v\n", err)
		return 1
	}
	ndSec := time.Since(t0).Seconds()
	ndGF := float64(s.FLOPs()) / ndSec / 1e9
	fmt.Printf("nDirect throughput: %.2f GFLOPS (%.4fs)  -> speedup %.2fx over tuned schedule\n",
		ndGF, ndSec, ndGF/gf)

	if *manifest != "" {
		m, err := autotune.ReadManifestFile(*manifest)
		switch {
		case errors.Is(err, os.ErrNotExist):
			m = autotune.NewManifest()
		case err != nil:
			fmt.Fprintf(os.Stderr, "ndtune: reading manifest %s: %v\n", *manifest, err)
			return 1
		}
		m.Set(s, res.Best, res.BestSec, res.Trials)
		if err := autotune.WriteManifestFile(*manifest, m); err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: writing manifest %s: %v\n", *manifest, err)
			return 1
		}
		fmt.Printf("manifest %s: %d tuned shape(s)\n", *manifest, len(m.Entries))
	}
	return 0
}
