// Command ndtune runs the Ansor-substitute evolutionary schedule
// search on one convolution layer and reports the best schedule, its
// throughput, and nDirect's throughput on the same layer for
// comparison (the per-layer view behind Figure 6).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/parallel"
)

func main() {
	var (
		layerID = flag.Int("layer", 3, "Table 4 layer id (1-28)")
		batch   = flag.Int("batch", 1, "batch size")
		threads = flag.Int("threads", parallel.DefaultThreads(), "worker threads")
		trials  = flag.Int("trials", 48, "measurement budget")
		popSize = flag.Int("population", 12, "schedules per generation")
		gens    = flag.Int("generations", 4, "evolution rounds")
		seed    = flag.Int64("seed", 1, "search seed")
		useCM   = flag.Bool("cost-model", false, "enable the Ansor-style learned cost model")
	)
	flag.Parse()

	l, ok := conv.LayerByID(*layerID)
	if !ok {
		fmt.Fprintf(os.Stderr, "no Table 4 layer %d\n", *layerID)
		os.Exit(2)
	}
	s := l.Shape.WithBatch(*batch)
	fmt.Printf("tuning layer %d: %v\n", l.ID, s)

	res := autotune.Tune(s, autotune.TuneOptions{
		Population:   *popSize,
		Generations:  *gens,
		Trials:       *trials,
		Threads:      *threads,
		Seed:         *seed,
		UseCostModel: *useCM,
	})
	if *useCM {
		fmt.Printf("cost model ranked %d candidates without measuring them\n", res.ModelRanked)
	}
	gf := float64(s.FLOPs()) / res.BestSec / 1e9
	fmt.Printf("best schedule after %d trials: %v\n", res.Trials, res.Best)
	fmt.Printf("tuned throughput: %.2f GFLOPS (%.4fs)\n", gf, res.BestSec)

	// nDirect on the same layer, same threads.
	in := s.NewInput()
	in.FillRandom(11)
	filter := s.NewFilter()
	filter.FillRandom(13)
	plan := core.NewPlan(s, core.Options{Threads: *threads})
	out := s.NewOutput()
	plan.Execute(in, filter, out) // warm-up
	t0 := time.Now()
	plan.Execute(in, filter, out)
	ndSec := time.Since(t0).Seconds()
	ndGF := float64(s.FLOPs()) / ndSec / 1e9
	fmt.Printf("nDirect throughput: %.2f GFLOPS (%.4fs)  -> speedup %.2fx over tuned schedule\n",
		ndGF, ndSec, ndGF/gf)
}
