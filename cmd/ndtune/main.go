// Command ndtune runs the Ansor-substitute evolutionary schedule
// search on one convolution layer and reports the best schedule, its
// throughput, and nDirect's throughput on the same layer for
// comparison (the per-layer view behind Figure 6). With -manifest the
// winning schedule is also recorded in a versioned warm-start manifest
// (merged into the file if it already exists) that `ndserve -manifest`
// loads at startup.
//
// Runs are deterministic for a fixed -seed and machine-independent in
// which schedules they try (only the measured times, and hence the
// winner, vary with the host). Failures exit non-zero: 2 for usage
// errors, 1 when tuning measured no admissible schedule or an
// execution / manifest write failed.
//
// With -depthwise the target is the fused depthwise-separable
// executor instead: the shape is read as the depthwise stage's
// geometry and the tuned knob is the row-tile height (how many
// depthwise output rows each grid cell computes before handing them to
// the pointwise micro-kernel). The winner is recorded as a depthwise
// manifest entry that nn.Engine.LoadManifest feeds back as
// Options.ForceTh when planning separable blocks of that shape.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

func main() {
	os.Exit(run())
}

// parseShape parses "c,h,w,k,r,s,stride,pad" into a batch-1 shape.
func parseShape(spec string) (conv.Shape, error) {
	var s conv.Shape
	s.N = 1
	n, err := fmt.Sscanf(spec, "%d,%d,%d,%d,%d,%d,%d,%d",
		&s.C, &s.H, &s.W, &s.K, &s.R, &s.S, &s.Str, &s.Pad)
	if err != nil || n != 8 {
		return s, fmt.Errorf("want c,h,w,k,r,s,stride,pad, got %q", spec)
	}
	return s, s.Validate()
}

func run() int {
	var (
		layerID   = flag.Int("layer", 3, "Table 4 layer id (1-28)")
		shapeSpec = flag.String("shape", "", "explicit shape c,h,w,k,r,s,stride,pad (overrides -layer)")
		batch     = flag.Int("batch", 1, "batch size")
		threads   = flag.Int("threads", parallel.DefaultThreads(), "worker threads")
		trials    = flag.Int("trials", 48, "measurement budget")
		popSize   = flag.Int("population", 12, "schedules per generation")
		gens      = flag.Int("generations", 4, "evolution rounds")
		seed      = flag.Int64("seed", 1, "search seed (fixed seed -> same candidate sequence)")
		useCM     = flag.Bool("cost-model", false, "enable the Ansor-style learned cost model")
		manifest  = flag.String("manifest", "", "warm-start manifest file to create or merge the result into")
		depthwise = flag.Bool("depthwise", false, "tune the fused separable row-tile height for the shape's depthwise geometry")
		pwK       = flag.Int("pw-k", 0, "pointwise output channels for the -depthwise measurement (0 = 2x input channels)")
	)
	flag.Parse()

	var s conv.Shape
	if *shapeSpec != "" {
		parsed, err := parseShape(*shapeSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: bad -shape: %v\n", err)
			return 2
		}
		s = parsed.WithBatch(*batch)
		fmt.Printf("tuning shape: %v\n", s)
	} else {
		l, ok := conv.LayerByID(*layerID)
		if !ok {
			fmt.Fprintf(os.Stderr, "ndtune: no Table 4 layer %d\n", *layerID)
			return 2
		}
		s = l.Shape.WithBatch(*batch)
		fmt.Printf("tuning layer %d: %v\n", l.ID, s)
	}

	if *depthwise {
		return runDepthwise(s, *threads, *pwK, *manifest)
	}

	res := autotune.Tune(s, autotune.TuneOptions{
		Population:   *popSize,
		Generations:  *gens,
		Trials:       *trials,
		Threads:      *threads,
		Seed:         *seed,
		UseCostModel: *useCM,
	})
	if *useCM {
		fmt.Printf("cost model ranked %d candidates without measuring them\n", res.ModelRanked)
	}
	if res.Trials == 0 || !res.Best.Valid(s) {
		fmt.Fprintf(os.Stderr, "ndtune: no admissible schedule measured for %v\n", s)
		return 1
	}
	gf := float64(s.FLOPs()) / res.BestSec / 1e9
	fmt.Printf("best schedule after %d trials: %v\n", res.Trials, res.Best)
	fmt.Printf("tuned throughput: %.2f GFLOPS (%.4fs)\n", gf, res.BestSec)

	// nDirect on the same layer, same threads.
	in := s.NewInput()
	in.FillRandom(11)
	filter := s.NewFilter()
	filter.FillRandom(13)
	plan, err := core.TryNewPlan(s, core.Options{Threads: *threads})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ndtune: planning %v failed: %v\n", s, err)
		return 1
	}
	out := s.NewOutput()
	if err := plan.TryExecute(in, filter, out); err != nil { // warm-up
		fmt.Fprintf(os.Stderr, "ndtune: nDirect execution failed: %v\n", err)
		return 1
	}
	t0 := time.Now()
	if err := plan.TryExecute(in, filter, out); err != nil {
		fmt.Fprintf(os.Stderr, "ndtune: nDirect execution failed: %v\n", err)
		return 1
	}
	ndSec := time.Since(t0).Seconds()
	ndGF := float64(s.FLOPs()) / ndSec / 1e9
	fmt.Printf("nDirect throughput: %.2f GFLOPS (%.4fs)  -> speedup %.2fx over tuned schedule\n",
		ndGF, ndSec, ndGF/gf)

	if *manifest != "" {
		m, err := autotune.ReadManifestFile(*manifest)
		switch {
		case errors.Is(err, os.ErrNotExist):
			m = autotune.NewManifest()
		case err != nil:
			fmt.Fprintf(os.Stderr, "ndtune: reading manifest %s: %v\n", *manifest, err)
			return 1
		}
		m.Set(s, res.Best, res.BestSec, res.Trials)
		if err := autotune.WriteManifestFile(*manifest, m); err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: writing manifest %s: %v\n", *manifest, err)
			return 1
		}
		fmt.Printf("manifest %s: %d tuned shape(s)\n", *manifest, len(m.Entries))
	}
	return 0
}

// runDepthwise measures the fused separable executor at a ladder of
// forced row-tile heights and records the winner as a depthwise
// manifest entry. The pointwise stage exists only to make the
// measurement realistic (the row tile trades depthwise grid
// granularity against intermediate-scratch locality, a trade-off that
// only shows up under the fused consumer), so its K is synthetic —
// 2×C by default, the usual MobileNet expansion — and is not recorded.
func runDepthwise(dw conv.Shape, threads, pwK int, manifest string) int {
	dw.K = dw.C // depthwise geometry: K is implied by C
	if pwK <= 0 {
		pwK = 2 * dw.C
	}
	ss := core.SeparableShape{N: dw.N, C: dw.C, H: dw.H, W: dw.W, K: pwK,
		R: dw.R, S: dw.S, Str: dw.Str, Pad: dw.Pad}
	if err := ss.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ndtune: bad separable shape: %v\n", err)
		return 2
	}
	fmt.Printf("tuning fused separable row tile: dw %v -> pw K=%d, %d thread(s)\n", dw, pwK, threads)

	in := tensor.New(ss.N, ss.C, ss.H, ss.W)
	in.FillRandom(11)
	dwF := tensor.New(ss.C, ss.R, ss.S)
	dwF.FillRandom(13)
	pwF := tensor.New(ss.K, ss.C, 1, 1)
	pwF.FillRandom(17)
	out := tensor.New(ss.N, ss.K, ss.P(), ss.Q())

	// Candidate row tiles: the plan's own solve (ForceTh = 0) plus a
	// ladder of explicit heights clamped to the output.
	candidates := []int{0}
	for _, th := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		if th <= ss.P() {
			candidates = append(candidates, th)
		}
	}

	flops := float64(2*ss.N*ss.C*ss.P()*ss.Q()) * float64(ss.R*ss.S+ss.K)
	const reps = 3
	bestTile, trials := -1, 0
	bestSec := 0.0
	for _, th := range candidates {
		plan, err := core.TryNewSeparablePlan(ss, core.Options{Threads: threads, ForceTh: th})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: planning row tile %d failed: %v\n", th, err)
			continue
		}
		pdw, ppw, err := plan.TransformFilters(dwF, pwF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: packing for row tile %d failed: %v\n", th, err)
			continue
		}
		sec, execErr := 0.0, error(nil)
		for rep := 0; rep <= reps; rep++ { // rep 0 is the warm-up
			t0 := time.Now()
			if execErr = plan.TryExecutePacked(in, pdw, ppw, out); execErr != nil {
				break
			}
			if d := time.Since(t0).Seconds(); rep > 0 && (sec == 0 || d < sec) {
				sec = d
			}
		}
		ppw.Release()
		pdw.Release()
		if execErr != nil {
			fmt.Fprintf(os.Stderr, "ndtune: row tile %d execution failed: %v\n", th, execErr)
			continue
		}
		trials++
		label := fmt.Sprintf("forced %2d", th)
		if th == 0 {
			label = fmt.Sprintf("solved %2d", plan.RowTile())
		}
		fmt.Printf("  row tile %s: %7.2f GFLOPS (%.5fs)\n", label, flops/sec/1e9, sec)
		if bestTile < 0 || sec < bestSec {
			// Record the realised height even for the default solve, so
			// the manifest entry is explicit about what won.
			bestTile, bestSec = plan.RowTile(), sec
		}
	}
	if bestTile < 0 {
		fmt.Fprintf(os.Stderr, "ndtune: no row tile measured for %v\n", ss)
		return 1
	}
	fmt.Printf("best row tile after %d candidates: %d (%.2f GFLOPS)\n", trials, bestTile, flops/bestSec/1e9)

	// The unfused two-call composition on the same data, for the
	// fusion-speedup line (EXPERIMENTS.md §fused-vs-unfused). The two
	// calls materialise (and allocate) the full intermediate each
	// iteration — exactly the cost fusion removes.
	unfusedSec := -1.0
	for rep := 0; rep <= reps; rep++ {
		t0 := time.Now()
		mid, err := core.TryDepthwiseConv2D(dw, in, dwF, core.Options{Threads: threads})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: unfused depthwise failed: %v\n", err)
			unfusedSec = -1
			break
		}
		if _, err := core.TryPointwiseConv2DShape(ss.PWShape(), mid, pwF, core.Options{Threads: threads}); err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: unfused pointwise failed: %v\n", err)
			unfusedSec = -1
			break
		}
		if d := time.Since(t0).Seconds(); rep > 0 && (unfusedSec < 0 || d < unfusedSec) {
			unfusedSec = d
		}
	}
	if unfusedSec > 0 {
		fmt.Printf("unfused two-call: %7.2f GFLOPS (%.5fs) -> fusion speedup %.2fx\n",
			flops/unfusedSec/1e9, unfusedSec, unfusedSec/bestSec)
	}

	if manifest != "" {
		m, err := autotune.ReadManifestFile(manifest)
		switch {
		case errors.Is(err, os.ErrNotExist):
			m = autotune.NewManifest()
		case err != nil:
			fmt.Fprintf(os.Stderr, "ndtune: reading manifest %s: %v\n", manifest, err)
			return 1
		}
		m.SetDepthwise(dw, bestTile, bestSec, trials)
		if err := autotune.WriteManifestFile(manifest, m); err != nil {
			fmt.Fprintf(os.Stderr, "ndtune: writing manifest %s: %v\n", manifest, err)
			return 1
		}
		fmt.Printf("manifest %s: %d tuned shape(s)\n", manifest, len(m.Entries))
	}
	return 0
}
