// Command ndbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ndbench -exp fig4 -platform phytium          # modeled Figure 4
//	ndbench -exp fig4 -measured -batch 2         # host-measured Figure 4
//	ndbench -exp fig1a -batch 1                  # measured breakdown
//	ndbench -exp fig7 -models resnet50,vgg16     # end-to-end (modeled)
//	ndbench -exp all                             # every modeled experiment
//
// Experiments: table2 table3 table4 fig1a fig1b fig4 fig5 fig6 fig7
// fig8 fig9 steady dwsep all. See EXPERIMENTS.md for the mapping to
// the paper and the expected shapes of the results; "steady" is the
// serving-loop extra (one-shot calls vs the cached-plan packed path)
// and "dwsep" the MobileNet-block extra (fused depthwise-separable vs
// the unfused two-call composition).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"ndirect/internal/bench"
	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/parallel"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table2|table3|table4|fig1a|fig1b|fig4|fig5|fig6|fig7|fig8|fig9|winograd|fft|variance|steady|dwsep|all")
		platform = flag.String("platform", "phytium", "modeled platform: phytium|kp920|tx2|rpi4")
		measured = flag.Bool("measured", false, "run the measured (host wall-clock) variant where available")
		batch    = flag.Int("batch", 1, "measured-mode batch size")
		threads  = flag.Int("threads", parallel.DefaultThreads(), "measured-mode worker threads")
		reps     = flag.Int("reps", 2, "measured-mode repetitions (min time reported)")
		trials   = flag.Int("tune-trials", 24, "Ansor-substitute search budget per layer")
		layers   = flag.String("layers", "", "measured fig4 layer subset, e.g. 1,3,5-10 (default: all 28)")
		models   = flag.String("models", "resnet50,vgg16", "fig7 model list")
		csvMode  = flag.Bool("csv", false, "emit CSV instead of the text table (fig4 and fig6)")
		outPath  = flag.String("out", "", "write output to this file instead of stdout")
	)
	flag.Parse()

	p, ok := hw.ByName(*platform)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	cfg := bench.Config{
		Platform:   p,
		Threads:    *threads,
		Batch:      *batch,
		Reps:       *reps,
		TuneTrials: *trials,
		Out:        out,
	}
	modelList := strings.Split(*models, ",")

	run := func(name string) {
		switch name {
		case "table2":
			bench.Table2(cfg)
		case "table3":
			bench.Table3(cfg)
		case "table4":
			bench.Table4(cfg)
		case "fig1a":
			bench.Fig1a(cfg)
		case "fig1b":
			bench.Fig1b(cfg)
		case "fig4":
			switch {
			case *csvMode:
				if err := bench.Fig4CSV(cfg, hw.Platforms[:3]); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			case *measured:
				bench.Fig4Measured(cfg, selectLayers(*layers))
			default:
				bench.Fig4(cfg)
			}
		case "fig5":
			bench.Fig5(cfg)
		case "fig6":
			if *csvMode {
				if err := bench.Fig6CSV(cfg, hw.Platforms[:3]); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			} else {
				bench.Fig6(cfg, *measured)
			}
		case "fig7":
			if *measured {
				bench.Fig7Measured(cfg, modelList)
			} else {
				bench.Fig7Modeled(cfg, modelList)
			}
		case "fig8":
			bench.Fig8(cfg)
		case "fig9":
			bench.Fig9(cfg)
		case "winograd":
			bench.ExtraWinograd(cfg)
		case "fft":
			bench.ExtraFFT(cfg)
		case "variance":
			bench.Variance(cfg, 3)
		case "steady":
			bench.Steady(cfg)
		case "dwsep":
			bench.DWSep(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{"table2", "table3", "table4", "fig1b", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"} {
			run(name)
		}
		fmt.Println("(fig1a is measured-only: run `ndbench -exp fig1a`)")
		return
	}
	run(*exp)
}

// selectLayers parses "1,3,5-10" into Table 4 layers (empty = all).
func selectLayers(spec string) []conv.Layer {
	if spec == "" {
		return conv.Table4
	}
	var out []conv.Layer
	for _, part := range strings.Split(spec, ",") {
		if lo, hi, found := strings.Cut(part, "-"); found {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil {
				continue
			}
			for id := a; id <= b; id++ {
				if l, ok := conv.LayerByID(id); ok {
					out = append(out, l)
				}
			}
		} else if id, err := strconv.Atoi(part); err == nil {
			if l, ok := conv.LayerByID(id); ok {
				out = append(out, l)
			}
		}
	}
	if len(out) == 0 {
		return conv.Table4
	}
	return out
}
