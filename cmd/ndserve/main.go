// Command ndserve is a multi-tenant HTTP inference front end over
// serve.Registry. Models are small integer-weight conv networks built
// server-side from a JSON spec (this is a serving-runtime demonstrator,
// not a weight-upload service): register a model under a tenant, set
// the tenant's QoS class and outstanding cap, then drive concurrent
// inference traffic — the registry shares one plan cache, worker pool
// and weight-residency budget across every tenant, sheds the lowest
// QoS class first under overload, and quarantines a faulting model to
// the reference path without touching its neighbours.
//
// Endpoints:
//
//	PUT    /v1/tenants/{tenant}            {"class":"batch|standard|premium","max_outstanding":N}
//	POST   /v1/models/{tenant}/{model}     {"seed":N,"relu":true,"shape":{...}} (shape optional)
//	DELETE /v1/models/{tenant}/{model}
//	POST   /v1/infer/{tenant}/{model}      {"seed":N} or {"dims":[n,c,h,w],"data":[...]}
//	GET    /v1/stats
//	GET    /healthz                        200 ok / 503 degraded, with integrity detail
//
// /healthz reflects the silent-corruption defense (DESIGN.md §12): it
// reports degraded (HTTP 503, so a load balancer can rotate the
// replica out) while any kernel family or model is under integrity
// quarantine, and returns to ok when the background sentinel's clean
// probes restore them. -sentinel sets the probe interval.
//
// -selftest starts the server on a loopback port, drives a scripted
// multi-tenant exercise over real HTTP (register, concurrent bit-exact
// inference for two tenants, a forced weight-eviction storm, an
// integrity drill that forces a kernel-family quarantine and watches
// /healthz flip degraded→ok across the sentinel's restore, drain,
// unregister, budget-back-to-baseline), and exits 0/1. `make check`
// runs it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/serve"
	"ndirect/internal/tensor"
)

// shapeSpec is the JSON form of a conv layer shape (batch is taken
// from the inference input).
type shapeSpec struct {
	C      int `json:"c"`
	H      int `json:"h"`
	W      int `json:"w"`
	K      int `json:"k"`
	R      int `json:"r"`
	S      int `json:"s"`
	Stride int `json:"stride"`
	Pad    int `json:"pad"`
}

func (sp shapeSpec) shape() conv.Shape {
	return conv.Shape{N: 1, C: sp.C, H: sp.H, W: sp.W, K: sp.K, R: sp.R, S: sp.S, Str: sp.Stride, Pad: sp.Pad}
}

// defaultShape is the spec used when a register request omits one.
var defaultShape = shapeSpec{C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Stride: 1, Pad: 1}

type modelSpec struct {
	Seed  uint64     `json:"seed"`
	ReLU  bool       `json:"relu"`
	Shape *shapeSpec `json:"shape,omitempty"`
	// Separable appends a depthwise-separable block (dw 3×3 over the
	// first conv's output, then a 1×1 expansion) — a MobileNet-class
	// model, served through the fused separable executor.
	Separable bool `json:"separable,omitempty"`
}

type inferRequest struct {
	Seed *uint64   `json:"seed,omitempty"`
	Dims []int     `json:"dims,omitempty"`
	Data []float32 `json:"data,omitempty"`
}

type inferResponse struct {
	Dims []int     `json:"dims"`
	Data []float32 `json:"data"`
}

type tenantSpec struct {
	Class          string `json:"class"`
	MaxOutstanding int    `json:"max_outstanding"`
}

// fillInts fills t with integers in [-3, 3] from a deterministic
// stream, the same generator the soak harness uses: integer tensors
// make every execution mode (packed, unpacked, reference) bit-exact,
// so clients can verify responses against a local oracle.
func fillInts(t *tensor.Tensor, seed uint64) {
	x := seed*2654435761 + 12345
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = float32(int64(x>>33)%7 - 3)
	}
}

// buildNet constructs the integer-weight network a modelSpec names.
// Registration and selftest oracles share this, so the bits agree.
func buildNet(name string, sp modelSpec) (*nn.Network, conv.Shape) {
	ss := defaultShape
	if sp.Shape != nil {
		ss = *sp.Shape
	}
	s := ss.shape()
	w := s.NewFilter()
	fillInts(w, sp.Seed)
	layers := []nn.Layer{
		&nn.ConvUnit{LayerName: "conv1", Shape: s, Weights: w, ReLU: sp.ReLU},
	}
	if sp.Separable {
		// Integer weights and an exact-identity BN (Eps = 0) keep the
		// block bit-exact on every rung, fused or not, like conv1.
		dw := conv.Shape{N: 1, C: s.K, H: s.P(), W: s.Q(), K: s.K, R: 3, S: 3, Str: 1, Pad: 1}
		dwW := tensor.New(dw.C, dw.R, dw.S)
		fillInts(dwW, sp.Seed+1)
		bn := &nn.BNParams{
			Gamma: make([]float32, dw.C),
			Beta:  make([]float32, dw.C),
			Mean:  make([]float32, dw.C),
			Var:   make([]float32, dw.C),
		}
		for i := range bn.Gamma {
			bn.Gamma[i] = 1
			bn.Var[i] = 1
		}
		pw := conv.Shape{N: 1, C: dw.C, H: dw.P(), W: dw.Q(), K: 2 * dw.C, R: 1, S: 1, Str: 1, Pad: 0}
		pwW := pw.NewFilter()
		fillInts(pwW, sp.Seed+2)
		layers = append(layers, &nn.DepthwiseSeparable{
			LayerName: "dwsep",
			DWShape:   dw,
			DWFilter:  dwW,
			DWBN:      bn,
			PW:        &nn.ConvUnit{LayerName: "dwsep_pw", Shape: pw, Weights: pwW, ReLU: true},
		})
	}
	return &nn.Network{Name: name, Layers: layers}, s
}

func parseClass(s string) (serve.QoSClass, error) {
	switch strings.ToLower(s) {
	case "batch":
		return serve.ClassBatch, nil
	case "standard", "":
		return serve.ClassStandard, nil
	case "premium":
		return serve.ClassPremium, nil
	}
	return 0, fmt.Errorf("unknown QoS class %q (want batch|standard|premium)", s)
}

// server owns the registry and remembers each model's input shape so
// seed-only inference requests can synthesise their input.
type server struct {
	reg *serve.Registry

	mu     sync.Mutex
	shapes map[string]conv.Shape // tenant\x00model → input shape
}

func httpStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrModelExists):
		return http.StatusConflict
	case errors.Is(err, core.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrBadOptions), errors.Is(err, conv.ErrBadShape):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeErr(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), httpStatus(err))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *server) handlePutTenant(w http.ResponseWriter, r *http.Request) {
	var spec tenantSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad tenant spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	class, err := parseClass(spec.Class)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.reg.SetTenant(r.PathValue("tenant"), serve.TenantConfig{
		Class:          class,
		MaxOutstanding: spec.MaxOutstanding,
	})
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	tenant, model := r.PathValue("tenant"), r.PathValue("model")
	var spec modelSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil && err != io.EOF {
		http.Error(w, "bad model spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	net, shape := buildNet(tenant+"/"+model, spec)
	if err := s.reg.Register(tenant, model, net); err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	s.shapes[tenant+"\x00"+model] = shape
	s.mu.Unlock()
	w.WriteHeader(http.StatusCreated)
}

func (s *server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	tenant, model := r.PathValue("tenant"), r.PathValue("model")
	if err := s.reg.Unregister(tenant, model); err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	delete(s.shapes, tenant+"\x00"+model)
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	tenant, model := r.PathValue("tenant"), r.PathValue("model")
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		http.Error(w, "bad infer request: "+err.Error(), http.StatusBadRequest)
		return
	}

	var x *tensor.Tensor
	switch {
	case req.Seed != nil:
		s.mu.Lock()
		shape, ok := s.shapes[tenant+"\x00"+model]
		s.mu.Unlock()
		if !ok {
			writeErr(w, fmt.Errorf("%w: %s/%s", serve.ErrUnknownModel, tenant, model))
			return
		}
		x = shape.NewInput()
		fillInts(x, *req.Seed)
	case len(req.Dims) == 4 && len(req.Data) > 0:
		n := req.Dims[0] * req.Dims[1] * req.Dims[2] * req.Dims[3]
		if n != len(req.Data) {
			http.Error(w, fmt.Sprintf("dims %v need %d elements, got %d", req.Dims, n, len(req.Data)), http.StatusBadRequest)
			return
		}
		x = tensor.New(req.Dims...)
		copy(x.Data, req.Data)
	default:
		http.Error(w, `infer request needs "seed" or "dims"+"data"`, http.StatusBadRequest)
		return
	}

	out, err := s.reg.Infer(r.Context(), tenant, model, x)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, inferResponse{Dims: out.Dims, Data: out.Data})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.reg.Stats())
}

// healthResponse is the GET /healthz body. A load balancer keys on the
// HTTP status alone (200 ok, 503 degraded); the fields tell an
// operator why: how much capacity is under integrity quarantine and
// what the defense layers have caught so far.
type healthResponse struct {
	Status             string `json:"status"` // "ok" or "degraded"
	KernelsQuarantined int    `json:"kernels_quarantined"`
	ModelsQuarantined  int    `json:"models_quarantined"`
	SentinelProbes     uint64 `json:"sentinel_probes"`
	IntegrityFailures  uint64 `json:"integrity_failures"`
	CanaryTrips        uint64 `json:"canary_trips"`
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.reg.Stats()
	h := healthResponse{
		Status:             "ok",
		KernelsQuarantined: core.KernelDispatchStats().Quarantined,
		ModelsQuarantined:  st.QuarantinedNow,
		SentinelProbes:     st.Runtime.SentinelProbes,
		IntegrityFailures:  st.Runtime.IntegrityFailures,
		CanaryTrips:        st.Runtime.CanaryTrips,
	}
	if h.KernelsQuarantined > 0 || h.ModelsQuarantined > 0 {
		h.Status = "degraded"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(h)
		return
	}
	writeJSON(w, h)
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{tenant}", s.handlePutTenant)
	mux.HandleFunc("POST /v1/models/{tenant}/{model}", s.handleRegister)
	mux.HandleFunc("DELETE /v1/models/{tenant}/{model}", s.handleUnregister)
	mux.HandleFunc("POST /v1/infer/{tenant}/{model}", s.handleInfer)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	threads := flag.Int("threads", 2, "worker threads per convolution")
	inFlight := flag.Int("inflight", 8, "admission in-flight limit")
	queue := flag.Int("queue", 16, "admission queue length (class-graduated)")
	memKB := flag.Int64("mem-kb", 0, "activation memory budget in KiB (0 = unlimited)")
	weightKB := flag.Int64("weight-kb", 0, "packed-weight residency budget in KiB (0 = unlimited)")
	quarThreshold := flag.Int("quar-threshold", 3, "consecutive faults before a model is quarantined")
	quarCooldown := flag.Duration("quar-cooldown", 30*time.Second, "quarantine cooldown before a probe")
	batchWindow := flag.Duration("batch-window", 0, "cross-request micro-batching window (0 = batching disabled); compatible concurrent requests coalesce into one execution")
	batchMax := flag.Int("batch-max", serve.DefaultBatchMax, "max images per coalesced batch (effective with -batch-window > 0)")
	manifestPath := flag.String("manifest", "", "warm-start tuning manifest (ndtune -manifest output); covered shapes serve with pre-built plans and specialized kernels")
	sentinel := flag.Duration("sentinel", time.Second, "integrity sentinel probe interval (0 = disabled); probes run only while the admission gate is idle")
	selftest := flag.Bool("selftest", false, "run the scripted multi-tenant exercise against a loopback server and exit")
	flag.Parse()

	var manifest *autotune.Manifest
	if *manifestPath != "" {
		m, err := autotune.ReadManifestFile(*manifestPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ndserve: loading manifest %s: %v\n", *manifestPath, err)
			os.Exit(1)
		}
		manifest = m
		fmt.Printf("ndserve: manifest %s: %d tuned shape(s)\n", *manifestPath, len(m.Entries))
	}

	if *selftest && *batchWindow == 0 {
		// The selftest's coalescing burst asserts that concurrent
		// inference rides the micro-batcher, so batching is always on
		// under -selftest.
		*batchWindow = 25 * time.Millisecond
		*batchMax = 4
	}
	if *selftest {
		// The integrity drill waits on the sentinel's quarantine and
		// restore; probe fast so the selftest finishes in seconds.
		*sentinel = 2 * time.Millisecond
	}
	rt := serve.New(serve.Config{
		MaxInFlight:      *inFlight,
		MaxQueue:         *queue,
		MemLimitBytes:    *memKB << 10,
		BatchWindow:      *batchWindow,
		BatchMax:         *batchMax,
		SentinelInterval: *sentinel,
		Options:          core.Options{Threads: *threads},
		Manifest:         manifest,
	})
	defer rt.Close()
	s := &server{
		reg: serve.NewRegistry(serve.RegistryConfig{
			Runtime:             rt,
			MaxInFlight:         *inFlight,
			MaxQueue:            *queue,
			WeightLimitBytes:    *weightKB << 10,
			QuarantineThreshold: *quarThreshold,
			QuarantineCooldown:  *quarCooldown,
		}),
		shapes: map[string]conv.Shape{},
	}

	if *selftest {
		if err := runSelftest(s); err != nil {
			fmt.Fprintln(os.Stderr, "ndserve selftest: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("ndserve selftest: OK")
		return
	}

	fmt.Printf("ndserve: listening on %s (%d in-flight, queue %d, weight budget %d KiB, batch window %v)\n",
		*addr, *inFlight, *queue, *weightKB, *batchWindow)
	srv := &http.Server{Addr: *addr, Handler: s.mux(), ReadHeaderTimeout: 5 * time.Second}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ndserve:", err)
		os.Exit(1)
	}
}

// runSelftest exercises the full multi-tenant lifecycle over real HTTP
// against an in-process loopback server: tenant QoS setup, model
// registration for two tenants, concurrent bit-exact inference, a
// forced weight-eviction storm (bit-exact re-packs under traffic),
// drain, unregister, and the weight budget back to its zero baseline.
func runSelftest(s *server) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	do := func(method, path string, body any, wantStatus int, out any) error {
		var rd io.Reader
		if body != nil {
			b, err := json.Marshal(body)
			if err != nil {
				return err
			}
			rd = bytes.NewReader(b)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			msg, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("%s %s: status %d (want %d): %s", method, path, resp.StatusCode, wantStatus, strings.TrimSpace(string(msg)))
		}
		if out != nil {
			return json.NewDecoder(resp.Body).Decode(out)
		}
		return nil
	}

	// Tenants: alice premium, bob batch (bob sheds first under load).
	if err := do("PUT", "/v1/tenants/alice", tenantSpec{Class: "premium", MaxOutstanding: 8}, http.StatusNoContent, nil); err != nil {
		return err
	}
	if err := do("PUT", "/v1/tenants/bob", tenantSpec{Class: "batch", MaxOutstanding: 8}, http.StatusNoContent, nil); err != nil {
		return err
	}

	// Register one model per tenant and compute local bit-exact oracles
	// (same deterministic builder the server uses).
	specs := map[string]modelSpec{"alice": {Seed: 11, ReLU: true}, "bob": {Seed: 22, ReLU: true}}
	oracles := map[string]*tensor.Tensor{}
	const inputSeed = 99
	for tn, spec := range specs {
		if err := do("POST", "/v1/models/"+tn+"/m", spec, http.StatusCreated, nil); err != nil {
			return err
		}
		net, shape := buildNet(tn+"/m", spec)
		x := shape.NewInput()
		fillInts(x, inputSeed)
		want, err := net.TryForward(&nn.Engine{Algo: nn.AlgoNDirect, Threads: 1}, x)
		if err != nil {
			return fmt.Errorf("oracle forward: %w", err)
		}
		oracles[tn] = want
	}
	// Duplicate registration is a typed conflict.
	if err := do("POST", "/v1/models/alice/m", specs["alice"], http.StatusConflict, nil); err != nil {
		return err
	}

	seed := uint64(inputSeed)
	inferModel := func(tn, model string, want *tensor.Tensor) error {
		var got inferResponse
		if err := do("POST", "/v1/infer/"+tn+"/"+model, inferRequest{Seed: &seed}, http.StatusOK, &got); err != nil {
			return err
		}
		if len(got.Data) != len(want.Data) {
			return fmt.Errorf("tenant %s/%s: got %d elements, want %d", tn, model, len(got.Data), len(want.Data))
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				return fmt.Errorf("tenant %s/%s: output differs at element %d: %g != %g", tn, model, i, got.Data[i], want.Data[i])
			}
		}
		return nil
	}
	inferOnce := func(tn string) error { return inferModel(tn, "m", oracles[tn]) }

	// Concurrent multi-tenant traffic, every response bit-exact.
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for _, tn := range []string{"alice", "bob"} {
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					if err := inferOnce(tn); err != nil {
						errCh <- err
						return
					}
				}
			}(tn)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
	}

	// Forced weight-eviction storm: every request drops the model's
	// packed residency and re-packs — responses must stay bit-exact.
	faultinject.ArmN(faultinject.WeightEvict, -1, -1)
	for i := 0; i < 5; i++ {
		if err := inferOnce("alice"); err != nil {
			faultinject.Reset()
			return fmt.Errorf("under eviction storm: %w", err)
		}
	}
	faultinject.Reset()

	var st serve.RegistryStats
	if err := do("GET", "/v1/stats", nil, http.StatusOK, &st); err != nil {
		return err
	}
	if st.ForcedEvictions < 5 {
		return fmt.Errorf("forced evictions = %d, want >= 5", st.ForcedEvictions)
	}
	if st.WeightInUse <= 0 {
		return fmt.Errorf("no packed weights resident after traffic (WeightInUse=%d)", st.WeightInUse)
	}

	// Coalescing burst: a volley of concurrent same-geometry inferences
	// must ride the micro-batcher (always enabled under -selftest) into
	// shared stacked forward passes — counted in the runtime stats —
	// while every response stays bit-exact against the solo oracle.
	// Lift alice's outstanding cap first: parked waiters count as
	// outstanding, so the burst would otherwise trip the tenant cap
	// instead of the batcher.
	if err := do("PUT", "/v1/tenants/alice", tenantSpec{Class: "premium", MaxOutstanding: 32}, http.StatusNoContent, nil); err != nil {
		return err
	}
	pre := s.reg.Stats().Runtime
	var bwg sync.WaitGroup
	burstErr := make(chan error, 16)
	for g := 0; g < 16; g++ {
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			if err := inferOnce("alice"); err != nil {
				burstErr <- err
			}
		}()
	}
	bwg.Wait()
	select {
	case err := <-burstErr:
		return fmt.Errorf("coalescing burst: %w", err)
	default:
	}
	post := s.reg.Stats().Runtime
	if post.BatchesExecuted == pre.BatchesExecuted {
		return fmt.Errorf("infer burst never coalesced (BatchesExecuted stuck at %d)", post.BatchesExecuted)
	}
	if post.BatchedRequests < pre.BatchedRequests+2 {
		return fmt.Errorf("BatchedRequests %d -> %d over a 16-way burst, want at least +2",
			pre.BatchedRequests, post.BatchedRequests)
	}

	// Depthwise-separable serving: a MobileNet-class model (conv1 →
	// dw 3×3 → 1×1 expansion) runs its block through the fused
	// separable executor on the registry's per-model nDirect engine.
	// After the first request the block is fully warm — separable plan
	// memo, packed depthwise and pointwise filters — so five more
	// requests must not construct a single plan (the shared plan
	// cache's miss counter stays frozen) while every response stays
	// bit-exact against the local unfused oracle.
	sepSpec := modelSpec{Seed: 44, ReLU: true, Separable: true}
	if err := do("POST", "/v1/models/alice/sep", sepSpec, http.StatusCreated, nil); err != nil {
		return err
	}
	sepNet, sepShape := buildNet("alice/sep", sepSpec)
	sx := sepShape.NewInput()
	fillInts(sx, inputSeed)
	sepWant, err := sepNet.TryForward(&nn.Engine{Algo: nn.AlgoNDirect, Threads: 1}, sx)
	if err != nil {
		return fmt.Errorf("separable oracle forward: %w", err)
	}
	if err := inferModel("alice", "sep", sepWant); err != nil {
		return fmt.Errorf("separable first request: %w", err)
	}
	// The always-on selftest sentinel builds the new model's reference-
	// probe plans through the shared cache on its first visit — probe
	// startup cost, not serving cost. Wait for the miss counter to go
	// quiet before asserting the serving loop itself is plan-silent.
	settleDeadline := time.Now().Add(5 * time.Second)
	preSep := s.reg.Stats().Runtime.PlanCache
	for quiet := time.Now(); time.Since(quiet) < 100*time.Millisecond; {
		if time.Now().After(settleDeadline) {
			return fmt.Errorf("plan-cache misses never settled after separable registration (at %d)", preSep.Misses)
		}
		time.Sleep(5 * time.Millisecond)
		if st := s.reg.Stats().Runtime.PlanCache; st.Misses != preSep.Misses {
			preSep, quiet = st, time.Now()
		}
	}
	for i := 0; i < 5; i++ {
		if err := inferModel("alice", "sep", sepWant); err != nil {
			return fmt.Errorf("separable warm serving: %w", err)
		}
	}
	if postSep := s.reg.Stats().Runtime.PlanCache; postSep.Misses != preSep.Misses {
		return fmt.Errorf("separable model still constructed plans while serving warm: plan-cache misses %d -> %d",
			preSep.Misses, postSep.Misses)
	}
	if err := do("DELETE", "/v1/models/alice/sep", nil, http.StatusNoContent, nil); err != nil {
		return err
	}

	// Warm-start phase (only with -manifest): a model whose shape the
	// tuning manifest covers is fully warmed at registration — plans,
	// per-unit memos, packed weights, specialized kernel — so serving
	// it does zero autotune work and zero plan construction: the shared
	// plan cache's miss counter must not move across its traffic, and
	// every response stays bit-exact against the local oracle.
	if m := s.reg.Runtime().Manifest(); m != nil {
		if !m.Covers(defaultShape.shape()) {
			return fmt.Errorf("manifest loaded but does not cover the selftest shape %v", defaultShape.shape())
		}
		warmSpec := modelSpec{Seed: 33, ReLU: true}
		if err := do("POST", "/v1/models/warm/m", warmSpec, http.StatusCreated, nil); err != nil {
			return err
		}
		net, shape := buildNet("warm/m", warmSpec)
		x := shape.NewInput()
		fillInts(x, inputSeed)
		want, err := net.TryForward(&nn.Engine{Algo: nn.AlgoNDirect, Threads: 1}, x)
		if err != nil {
			return fmt.Errorf("warm oracle forward: %w", err)
		}
		oracles["warm"] = want
		// Snapshot after registration: the warm-up itself may build
		// plans (those are startup cost, not serving cost).
		preWarm := s.reg.Stats().Runtime.PlanCache
		for i := 0; i < 5; i++ {
			if err := inferOnce("warm"); err != nil {
				return fmt.Errorf("warm-start serving: %w", err)
			}
		}
		postWarm := s.reg.Stats().Runtime.PlanCache
		if postWarm.Misses != preWarm.Misses {
			return fmt.Errorf("manifest-covered model still constructed plans while serving: plan-cache misses %d -> %d",
				preWarm.Misses, postWarm.Misses)
		}
		if err := do("DELETE", "/v1/models/warm/m", nil, http.StatusNoContent, nil); err != nil {
			return err
		}
	}

	// Integrity drill: /healthz must report ok now; arming an unlimited
	// kernel-miscompute makes the always-on selftest sentinel quarantine
	// a kernel family, flipping /healthz to 503 degraded; clearing the
	// fault lets the sentinel's clean probes restore the family and
	// /healthz return to 200 ok — the whole detect→quarantine→restore
	// loop observed through the operator endpoint, with serving still
	// bit-exact afterwards.
	getHealth := func() (int, healthResponse, error) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return 0, healthResponse{}, err
		}
		defer resp.Body.Close()
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return 0, healthResponse{}, fmt.Errorf("decoding /healthz: %w", err)
		}
		return resp.StatusCode, h, nil
	}
	waitHealth := func(wantCode int, wantStatus string) error {
		deadline := time.Now().Add(15 * time.Second)
		for {
			code, h, err := getHealth()
			if err != nil {
				return err
			}
			if code == wantCode && h.Status == wantStatus {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("healthz stuck at %d %q (kernels=%d models=%d), want %d %q",
					code, h.Status, h.KernelsQuarantined, h.ModelsQuarantined, wantCode, wantStatus)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if code, h, err := getHealth(); err != nil || code != http.StatusOK || h.Status != "ok" {
		return fmt.Errorf("healthz before the drill: %d %q err=%v, want 200 ok", code, h.Status, err)
	}
	faultinject.ArmN(faultinject.KernelMiscompute, -1, -1)
	if err := waitHealth(http.StatusServiceUnavailable, "degraded"); err != nil {
		faultinject.Reset()
		return fmt.Errorf("integrity drill (quarantine): %w", err)
	}
	faultinject.Reset()
	if err := waitHealth(http.StatusOK, "ok"); err != nil {
		return fmt.Errorf("integrity drill (restore): %w", err)
	}
	if err := inferOnce("alice"); err != nil {
		return fmt.Errorf("after the integrity drill: %w", err)
	}

	// Unregister everything: the weight budget returns to baseline, and
	// the models are gone (404).
	for _, tn := range []string{"alice", "bob"} {
		if err := do("DELETE", "/v1/models/"+tn+"/m", nil, http.StatusNoContent, nil); err != nil {
			return err
		}
	}
	if err := do("POST", "/v1/infer/alice/m", inferRequest{Seed: &seed}, http.StatusNotFound, nil); err != nil {
		return err
	}
	if err := do("GET", "/v1/stats", nil, http.StatusOK, &st); err != nil {
		return err
	}
	if st.WeightInUse != 0 {
		return fmt.Errorf("weight budget %d after unregistering everything, want 0", st.WeightInUse)
	}
	if st.Models != 0 || st.Gate.InFlight != 0 {
		return fmt.Errorf("registry not drained: models=%d inflight=%d", st.Models, st.Gate.InFlight)
	}
	return nil
}
