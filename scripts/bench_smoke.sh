#!/bin/sh
# CI bench smoke: one timed iteration of the steady-state serving
# benchmarks, gating on the PR's allocation claim — the packed-pooled
# engine path (with and without the integrity sentinel + sampled
# checksum verification running) and the small-shape steady path must
# report exactly 0 allocs/op (the deterministic counterpart assertion
# is core.TestSteadyStateZeroAllocs, run first). A regression that
# makes the hot loop allocate fails this script even when it is too
# small to move wall-clock benchmarks.
set -eu

cd "$(dirname "$0")/.."

echo "==> TestSteadyStateZeroAllocs (+ depthwise/separable packed paths)"
go test -run 'TestSteadyStateZeroAllocs|TestDepthwisePackedZeroAllocs|TestSeparablePackedZeroAllocs' -count=1 ./internal/core/

# 100 iterations (~0.1 s for the slowest bench) rather than 1: the
# sentinel variant runs background probes whose one-time warmup (pool
# caches on the prober goroutine) lands inside the timed window; a
# single iteration cannot amortise that fixed cost, 100 prove the
# per-op hot path allocation-free.
echo "==> bench smoke (warmup + 100 measured iterations, allocs gate)"
go test -run '^$' -bench 'EngineSteadyState/packed-pooled|SmallConvServing/steady|SeparableSteadyState/fused' -benchtime=100x . >/dev/null # warmup (discarded)
out=$(go test -run '^$' -bench 'EngineSteadyState/packed-pooled|SmallConvServing/steady|SeparableSteadyState/fused' -benchtime=100x .)
echo "$out"

# The -[0-9]+ alternative covers the GOMAXPROCS>1 name suffix; the
# bare-name alternative covers single-proc runs. Anchoring on the
# following whitespace keeps packed-pooled from matching its
# -sentinel sibling.
for bench in packed-pooled packed-pooled-sentinel SmallConvServing/steady SeparableSteadyState/fused; do
    line=$(echo "$out" | grep -E "$bench(-[0-9]+)?[[:space:]]" || true)
    if [ -z "$line" ]; then
        echo "FAIL: benchmark $bench did not run" >&2
        exit 1
    fi
    case "$line" in
    *" 0 allocs/op"*) ;;
    *)
        echo "FAIL: $bench allocates at steady state: $line" >&2
        exit 1
        ;;
    esac
done

echo "OK: steady-state paths allocation-free"
