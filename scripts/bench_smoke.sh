#!/bin/sh
# CI bench smoke: one timed iteration of the steady-state serving
# benchmarks, gating on the PR's allocation claim — the packed-pooled
# engine path and the small-shape steady path must report exactly
# 0 allocs/op (the deterministic counterpart assertion is
# core.TestSteadyStateZeroAllocs, run first). A regression that makes
# the hot loop allocate fails this script even when it is too small to
# move wall-clock benchmarks.
set -eu

cd "$(dirname "$0")/.."

echo "==> TestSteadyStateZeroAllocs"
go test -run 'TestSteadyStateZeroAllocs' -count=1 ./internal/core/

echo "==> bench smoke (warmup + 1 measured iteration, allocs gate)"
go test -run '^$' -bench 'EngineSteadyState/packed-pooled|SmallConvServing/steady' -benchtime=1x . >/dev/null # warmup (discarded)
out=$(go test -run '^$' -bench 'EngineSteadyState/packed-pooled|SmallConvServing/steady' -benchtime=1x .)
echo "$out"

for bench in packed-pooled SmallConvServing/steady; do
    line=$(echo "$out" | grep "$bench" || true)
    if [ -z "$line" ]; then
        echo "FAIL: benchmark $bench did not run" >&2
        exit 1
    fi
    case "$line" in
    *" 0 allocs/op"*) ;;
    *)
        echo "FAIL: $bench allocates at steady state: $line" >&2
        exit 1
        ;;
    esac
done

echo "OK: steady-state paths allocation-free"
