#!/bin/sh
# Run the steady-state serving benchmarks and emit them as a JSON
# array (default BENCH_steady.json), one object per benchmark name:
#   {"name": ..., "iters": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ...}
# Methodology: one discarded warmup pass (page cache, CPU governor,
# scratch-buffer growth), then COUNT measured passes at a fixed
# BENCHTIME, recording the BEST (minimum ns/op) pass per benchmark —
# the low-noise estimator for run-to-run variance on shared hosts,
# where the minimum tracks the code's true cost and the spread tracks
# the machine. The packed-pooled and steady entries are the PR's
# acceptance numbers: allocs_per_op must be 0 (scripts/bench_smoke.sh
# gates on it in CI). Usage: scripts/bench_json.sh [out.json]; COUNT
# and BENCHTIME override the defaults.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_steady.json}
COUNT=${COUNT:-5}
BENCHTIME=${BENCHTIME:-500x}

echo "==> warmup pass (discarded)"
go test -run '^$' -bench 'EngineSteadyState|SmallConvServing|WarmStartPlan|SeparableSteadyState' -benchtime 100x . >/dev/null
go test -run '^$' -bench 'MicroKernelBodies' -benchtime 100x ./internal/core >/dev/null

echo "==> measured passes (count=$COUNT, benchtime=$BENCHTIME, best-of-N)"
{
    go test -run '^$' -bench 'EngineSteadyState|SmallConvServing|WarmStartPlan|SeparableSteadyState' \
        -benchtime "$BENCHTIME" -count "$COUNT" .
    go test -run '^$' -bench 'MicroKernelBodies' \
        -benchtime "$BENCHTIME" -count "$COUNT" ./internal/core
} |
    awk '
        /^Benchmark/ && /ns\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = $3 + 0
            if (!(name in best) || ns < best[name]) {
                best[name] = ns
                line = sprintf("  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, $3)
                for (i = 4; i <= NF; i++) {
                    if ($(i) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $(i - 1))
                    if ($(i) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $(i - 1))
                }
                rows[name] = line "}"
            }
            if (!(name in seen)) { seen[name] = 1; order[n++] = name }
        }
        END {
            print "["
            for (i = 0; i < n; i++) print rows[order[i]] (i < n - 1 ? "," : "")
            print "]"
        }
    ' >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark rows, best of $COUNT passes)"
