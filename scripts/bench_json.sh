#!/bin/sh
# Run the steady-state serving benchmarks and emit them as a JSON
# array (default BENCH_steady.json), one object per benchmark line:
#   {"name": ..., "iters": N, "ns_per_op": ..., "bytes_per_op": ...,
#    "allocs_per_op": ...}
# The packed-pooled and steady entries are the PR's acceptance
# numbers: allocs_per_op must be 0 (scripts/bench_smoke.sh gates on
# it in CI). Usage: scripts/bench_json.sh [out.json]; COUNT and
# BENCHTIME override the defaults.
set -eu

cd "$(dirname "$0")/.."

OUT=${1:-BENCH_steady.json}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-500x}

{
    go test -run '^$' -bench 'EngineSteadyState|SmallConvServing' \
        -benchtime "$BENCHTIME" -count "$COUNT" .
    go test -run '^$' -bench 'MicroKernelBodies' \
        -benchtime "$BENCHTIME" -count "$COUNT" ./internal/core
} |
    awk '
        /^Benchmark/ && /ns\/op/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            line = sprintf("  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, $2, $3)
            for (i = 4; i <= NF; i++) {
                if ($(i) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $(i - 1))
                if ($(i) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $(i - 1))
            }
            rows[n++] = line "}"
        }
        END {
            print "["
            for (i = 0; i < n; i++) print rows[i] (i < n - 1 ? "," : "")
            print "]"
        }
    ' >"$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmark rows)"
