#!/bin/sh
# Full verification gate: build, vet, race-enabled tests, and a short
# fuzz smoke of the checked API's never-panic property. Run from the
# repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke: FuzzTryConv2D (10s)"
go test -run='^$' -fuzz=FuzzTryConv2D -fuzztime=10s ./internal/core

echo "==> ndserve selftest (multi-tenant HTTP lifecycle + batching burst)"
go run ./cmd/ndserve -selftest

echo "==> warm-start round trip (ndtune -manifest -> ndserve -selftest -manifest)"
MANIFEST=$(mktemp /tmp/ndtune-manifest.XXXXXX.json)
trap 'rm -f "$MANIFEST"' EXIT
go run ./cmd/ndtune -shape 8,16,16,16,3,3,1,1 -trials 6 -population 4 -generations 2 \
    -threads 2 -seed 1 -manifest "$MANIFEST"
go run ./cmd/ndserve -selftest -manifest "$MANIFEST"

echo "==> ndsoak batching smoke (8s, coalesced serving invariants)"
go run ./cmd/ndsoak -duration 8s -batch -clients 8

echo "==> ndsoak integrity smoke (8s, silent-corruption drills + sentinel loop)"
go run ./cmd/ndsoak -duration 8s -integrity -storm -clients 8

echo "OK: all checks passed"
