// Platform projection: use the machine model through the public API
// to estimate how the convolution algorithms would perform on the
// paper's four ARM machines — the reproduction's substitute for
// running on the testbed (DESIGN.md §1, EXPERIMENTS.md for the
// calibration record).
package main

import (
	"flag"
	"fmt"
	"os"

	"ndirect"
)

func main() {
	layerID := flag.Int("layer", 3, "Table 4 layer id (1-28)")
	flag.Parse()

	l, err := ndirect.LayerByID(*layerID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	algos := []string{"ndirect", "libxsmm", "im2col+gemm", "xnnpack", "ansor", "acl-direct"}
	for _, p := range ndirect.Platforms {
		s := l.Shape.WithBatch(p.Cores) // paper methodology: N = cores
		fmt.Printf("\n%s — layer %d at batch %d:\n", p, l.ID, s.N)
		fmt.Printf("  %-14s %10s %8s %10s\n", "algorithm", "GFLOPS", "% peak", "bound")
		for _, a := range algos {
			pr, err := ndirect.Project(a, p.Name, s, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %-14s %10.1f %7.1f%% %10s\n", a, pr.GFLOPS, pr.PctPeak*100, pr.Bound)
		}
	}
}
