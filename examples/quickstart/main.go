// Quickstart: run one nDirect convolution and check it against the
// naive reference.
package main

import (
	"fmt"
	"math"

	"ndirect"
)

func main() {
	// A ResNet-50 3×3 layer (Table 4, layer 3) at batch 1.
	l, err := ndirect.LayerByID(3)
	if err != nil {
		panic(err)
	}
	s := l.Shape // N=1 C=64 H=W=56 K=64 R=S=3 stride 1 pad 1

	// Framework-native layouts: NCHW activations, KCRS filters.
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)

	// One-shot convolution with the analytical-model defaults.
	out := ndirect.Conv2D(s, in, w, ndirect.Options{})
	fmt.Printf("conv %v -> output %v\n", s, out.Dims)

	// Validate against Algorithm 1.
	ref := ndirect.Reference(s, in, w)
	var maxDiff float64
	for i := range out.Data {
		if d := math.Abs(float64(out.Data[i] - ref.Data[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max abs diff vs naive reference: %.2e\n", maxDiff)

	// For repeated execution, build the plan once; it records the
	// derived tile sizes and thread mapping.
	plan := ndirect.NewPlan(s, ndirect.Options{})
	fmt.Printf("register tile: %v\n", plan.RT)
	fmt.Printf("cache tiles:   %v\n", plan.CT)
	fmt.Printf("thread map:    %v\n", plan.TM)
	plan.Execute(in, w, out)
	fmt.Println("plan re-executed OK")
}
