// Quickstart: run one nDirect convolution and check it against the
// naive reference, using the checked (error-returning) API.
package main

import (
	"fmt"
	"math"
	"os"

	"ndirect"
)

func main() {
	// A ResNet-50 3×3 layer (Table 4, layer 3) at batch 1.
	l, err := ndirect.LayerByID(3)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s := l.Shape // N=1 C=64 H=W=56 K=64 R=S=3 stride 1 pad 1

	// Framework-native layouts: NCHW activations, KCRS filters.
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)

	// One-shot convolution with the analytical-model defaults. The
	// Try* form returns an error (wrapping ndirect.ErrBadShape,
	// ErrBadOptions or ErrDimMismatch) instead of panicking.
	out, err := ndirect.TryConv2D(s, in, w, ndirect.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "conv failed:", err)
		os.Exit(1)
	}
	fmt.Printf("conv %v -> output %v\n", s, out.Dims)

	// Validate against Algorithm 1.
	ref := ndirect.Reference(s, in, w)
	var maxDiff float64
	for i := range out.Data {
		if d := math.Abs(float64(out.Data[i] - ref.Data[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max abs diff vs naive reference: %.2e\n", maxDiff)

	// For repeated execution, build the plan once; it records the
	// derived tile sizes and thread mapping.
	plan, err := ndirect.TryNewPlan(s, ndirect.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "plan failed:", err)
		os.Exit(1)
	}
	fmt.Printf("register tile: %v\n", plan.RT)
	fmt.Printf("cache tiles:   %v\n", plan.CT)
	fmt.Printf("thread map:    %v\n", plan.TM)
	if err := plan.TryExecute(in, w, out); err != nil {
		fmt.Fprintln(os.Stderr, "execute failed:", err)
		os.Exit(1)
	}
	fmt.Println("plan re-executed OK")
}
