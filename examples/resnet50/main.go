// End-to-end ResNet-50 inference with the nDirect backend — the
// workload of the paper's §8.3 evaluation (synthetic weights; timing,
// not accuracy).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ndirect"
)

func main() {
	var (
		batch   = flag.Int("batch", 1, "batch size (the paper uses the core count)")
		threads = flag.Int("threads", 0, "worker threads (0 = all cores)")
		backend = flag.String("backend", "ndirect", "ndirect|im2col+gemm|ansor|libxsmm|xnnpack")
		fuse    = flag.Bool("fuse", false, "fold BN and fuse bias+ReLU into the conv epilogue")
	)
	flag.Parse()

	model, err := ndirect.BuildModel("resnet50", ndirect.ModelOptions{
		Backend: *backend,
		Threads: *threads,
		Fuse:    *fuse,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	x := model.NewInput(*batch)
	x.FillRandom(7)

	fmt.Printf("%s / backend=%s fuse=%v batch=%d\n", model.Name(), *backend, *fuse, *batch)
	fmt.Printf("%d distinct convolution shapes in the graph\n", len(model.ConvShapes()))

	// Warm-up, then timed run.
	model.Infer(x)
	t0 := time.Now()
	y := model.Infer(x)
	elapsed := time.Since(t0)

	// Top prediction of the first image (synthetic weights: the class
	// is meaningless, the pipeline is what is exercised).
	best, bestV := 0, float32(-1)
	for i := 0; i < 1000; i++ {
		if v := y.Data[i]; v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("inference: %.3fs (%.1f images/s)\n", elapsed.Seconds(), float64(*batch)/elapsed.Seconds())
	fmt.Printf("top class of image 0: %d (p=%.4f)\n", best, bestV)
}
