// Algorithm shootout: the public-API view of the paper's design
// ablations — overlapped vs sequential packing (Figure 5), the
// analytical register tile vs forced alternatives (§5.2.3), NCHW vs
// NHWC entry points, and 3-D convolution (§10.2).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ndirect"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	layerID := flag.Int("layer", 26, "Table 4 layer id")
	batch := flag.Int("batch", 1, "batch size")
	flag.Parse()

	l, err := ndirect.LayerByID(*layerID)
	if err != nil {
		fatal(err)
	}
	s := l.Shape.WithBatch(*batch)
	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)
	w.FillRandom(2)
	out := ndirect.NewTensor(s.N, s.K, s.P(), s.Q())

	run := func(label string, opt ndirect.Options) {
		plan, err := ndirect.TryNewPlan(s, opt)
		if err != nil {
			fatal(err)
		}
		if err := plan.TryExecute(in, w, out); err != nil { // warm-up
			fatal(err)
		}
		t0 := time.Now()
		if err := plan.TryExecute(in, w, out); err != nil {
			fatal(err)
		}
		sec := time.Since(t0).Seconds()
		fmt.Printf("%-34s %8.2f GFLOPS  (tile %dx%d)\n",
			label, float64(s.FLOPs())/sec/1e9, plan.RT.Vw, plan.RT.Vk)
	}

	fmt.Printf("layer %d: %v\n\n", l.ID, s)
	run("analytical tiles, overlapped pack", ndirect.Options{})
	run("sequential pack (Fig. 5 baseline)", ndirect.Options{SequentialPack: true})
	run("forced 8x8 register tile", ndirect.Options{ForceVw: 8, ForceVk: 8})
	run("forced 4x16 register tile", ndirect.Options{ForceVw: 4, ForceVk: 16})
	run("forced 16x4 register tile", ndirect.Options{ForceVw: 16, ForceVk: 4})

	// NHWC entry point: no activation layout conversion in either
	// direction.
	inNHWC := ndirect.NewTensor(s.N, s.H, s.W, s.C)
	inNHWC.FillRandom(1)
	t0 := time.Now()
	if _, err := ndirect.TryConv2DNHWC(s, inNHWC, w, ndirect.Options{}); err != nil {
		fatal(err)
	}
	fmt.Printf("%-34s %8.2f GFLOPS\n", "NHWC entry point",
		float64(s.FLOPs())/time.Since(t0).Seconds()/1e9)

	// 3-D convolution (§10.2): a small video-style volume.
	s3 := ndirect.Shape3D{
		Shape: ndirect.Shape{N: 1, C: 8, H: 28, W: 28, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		D:     8, T: 3, StrD: 1, PadD: 1,
	}
	in3 := ndirect.NewTensor(1, 8, 8, 28, 28)
	in3.FillRandom(3)
	w3 := ndirect.NewTensor(16, 8, 3, 3, 3)
	w3.FillRandom(4)
	t0 = time.Now()
	out3, err := ndirect.TryConv3D(s3, in3, w3, ndirect.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-34s output %v in %.3fms\n", "3-D convolution",
		out3.Dims, time.Since(t0).Seconds()*1e3)
}
