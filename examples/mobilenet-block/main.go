// Depthwise-separable convolution block (MobileNet/Xception style),
// the §10.2 extension: a depthwise 3×3 followed by a pointwise 1×1.
// The block runs three ways — the fused single-plan executor
// (TrySeparableConv2D, which never materialises the intermediate),
// the unfused two-call composition it is bit-identical to, and the
// standard 3×3 convolution of the same output shape it replaces —
// and reports the fusion speedup and the FLOP saving.
package main

import (
	"fmt"
	"os"
	"time"

	"ndirect"
)

// must unwraps a checked-API result, exiting with the error message on
// failure (examples keep error handling one-line).
func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return v
}

func main() {
	const (
		n, c, h, w = 1, 64, 56, 56
		k          = 128
		reps       = 5 // min-of-reps timing
	)

	in := ndirect.NewTensor(n, c, h, w)
	in.FillRandom(1)
	dwFilter := ndirect.NewTensor(c, 3, 3) // one 3×3 filter per channel
	dwFilter.FillRandom(2)
	pwFilter := ndirect.NewTensor(k, c, 1, 1) // 1×1 expansion
	pwFilter.FillRandom(3)

	sep := ndirect.SeparableShape{N: n, C: c, H: h, W: w, K: k, R: 3, S: 3, Str: 1, Pad: 1}

	// Fused: one plan, row tiles of depthwise output consumed by the
	// pointwise micro-kernel straight from pooled scratch.
	var out *ndirect.Tensor
	fused := timeMin(reps, func() {
		out = must(ndirect.TrySeparableConv2D(sep, in, dwFilter, pwFilter, ndirect.Options{}))
	})

	// Unfused: the same block as two calls, materialising the full
	// [N][C][P][Q] intermediate in between.
	dw := sep.DWShape()
	var outUnfused *ndirect.Tensor
	unfused := timeMin(reps, func() {
		mid := must(ndirect.TryDepthwiseConv2D(dw, in, dwFilter, ndirect.Options{}))
		outUnfused = must(ndirect.TryPointwiseConv2DShape(sep.PWShape(), mid, pwFilter, ndirect.Options{}))
	})
	for i := range out.Data {
		if out.Data[i] != outUnfused.Data[i] {
			fmt.Fprintf(os.Stderr, "fused and unfused outputs differ at element %d: %g != %g\n",
				i, out.Data[i], outUnfused.Data[i])
			os.Exit(1)
		}
	}

	// The standard convolution the DSC block replaces.
	std := ndirect.Shape{N: n, C: c, H: h, W: w, K: k, R: 3, S: 3, Str: 1, Pad: 1}
	stdFilter := ndirect.NewTensor(k, c, 3, 3)
	stdFilter.FillRandom(4)
	var outStd *ndirect.Tensor
	stdTime := timeMin(reps, func() {
		outStd = must(ndirect.TryConv2D(std, in, stdFilter, ndirect.Options{}))
	})

	dscFLOPs := int64(2*n*c*h*w*3*3) + int64(2*n*c*k*h*w)
	fmt.Printf("DSC fused:    out %v, %6.2f MFLOP, %8.3fms\n", out.Dims, float64(dscFLOPs)/1e6, fused*1e3)
	fmt.Printf("DSC unfused:  out %v, %6.2f MFLOP, %8.3fms  (bit-identical to fused)\n", outUnfused.Dims, float64(dscFLOPs)/1e6, unfused*1e3)
	fmt.Printf("standard 3x3: out %v, %6.2f MFLOP, %8.3fms\n", outStd.Dims, float64(std.FLOPs())/1e6, stdTime*1e3)
	fmt.Printf("fusion speedup over two-call: %.2fx\n", unfused/fused)
	fmt.Printf("DSC uses %.1fx fewer FLOPs than the standard 3x3\n", float64(std.FLOPs())/float64(dscFLOPs))
}

// timeMin reports the fastest of reps runs of f, in seconds.
func timeMin(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); i == 0 || d < best {
			best = d
		}
	}
	return best
}
