// Depthwise-separable convolution block (MobileNet/Xception style),
// the §10.2 extension: a depthwise 3×3 followed by a pointwise 1×1,
// both through the nDirect kernels, compared against a standard 3×3
// convolution of the same output shape.
package main

import (
	"fmt"
	"os"
	"time"

	"ndirect"
)

// must unwraps a checked-API result, exiting with the error message on
// failure (examples keep error handling one-line).
func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return v
}

func main() {
	const (
		n, c, h, w = 1, 64, 56, 56
		k          = 128
	)

	in := ndirect.NewTensor(n, c, h, w)
	in.FillRandom(1)

	// Depthwise stage: one 3×3 filter per input channel.
	dw := ndirect.Shape{N: n, C: c, H: h, W: w, K: c, R: 3, S: 3, Str: 1, Pad: 1}
	dwFilter := ndirect.NewTensor(c, 3, 3)
	dwFilter.FillRandom(2)

	// Pointwise stage: 1×1 over the depthwise output.
	pwFilter := ndirect.NewTensor(k, c, 1, 1)
	pwFilter.FillRandom(3)

	t0 := time.Now()
	mid := must(ndirect.TryDepthwiseConv2D(dw, in, dwFilter, ndirect.Options{}))
	out := must(ndirect.TryPointwiseConv2D(n, c, h, w, k, mid, pwFilter, ndirect.Options{}))
	dscTime := time.Since(t0)

	// The standard convolution the DSC block replaces.
	std := ndirect.Shape{N: n, C: c, H: h, W: w, K: k, R: 3, S: 3, Str: 1, Pad: 1}
	stdFilter := ndirect.NewTensor(k, c, 3, 3)
	stdFilter.FillRandom(4)
	t0 = time.Now()
	outStd := must(ndirect.TryConv2D(std, in, stdFilter, ndirect.Options{}))
	stdTime := time.Since(t0)

	dscFLOPs := int64(2*n*c*h*w*3*3) + int64(2*n*c*k*h*w)
	fmt.Printf("DSC block:    out %v, %6.2f MFLOP, %8.3fms\n", out.Dims, float64(dscFLOPs)/1e6, dscFTime(dscTime))
	fmt.Printf("standard 3x3: out %v, %6.2f MFLOP, %8.3fms\n", outStd.Dims, float64(std.FLOPs())/1e6, dscFTime(stdTime))
	fmt.Printf("DSC uses %.1fx fewer FLOPs\n", float64(std.FLOPs())/float64(dscFLOPs))
}

func dscFTime(d time.Duration) float64 { return d.Seconds() * 1e3 }
