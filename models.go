package ndirect

import (
	"fmt"
	"io"

	"ndirect/internal/autotune"
	"ndirect/internal/nn"
	"ndirect/internal/tensor"
)

// Model is a ready-to-run CNN (ResNet-50/101, VGG-16/19 or
// MobileNet-v1 with deterministic synthetic weights) bound to an execution
// configuration — the public face of the end-to-end inference engine
// used by the §8.3 evaluation.
type Model struct {
	net *nn.Network
	eng *nn.Engine
}

// ModelOptions configure model execution.
type ModelOptions struct {
	// Backend selects the convolution implementation:
	// "ndirect" (default), "im2col+gemm", "ansor", "libxsmm",
	// "xnnpack".
	Backend string
	// Threads is the worker count (0 = all available cores).
	Threads int
	// Fuse enables operator fusion (BN folding, fused bias+ReLU) —
	// supported natively by the ndirect and ansor backends.
	Fuse bool
	// Tune pre-tunes the ansor backend's schedules (small measured
	// evolutionary search per distinct conv shape).
	Tune bool
}

// BuildModel constructs one of the evaluation networks — "resnet50",
// "resnet101", "vgg16", "vgg19" — or "mobilenet" (the §10.2
// depthwise-separable workload).
func BuildModel(name string, opt ModelOptions) (*Model, error) {
	net, ok := nn.ByName(name)
	if !ok {
		return nil, fmt.Errorf("ndirect: unknown model %q (want resnet50, resnet101, vgg16, vgg19 or mobilenet)", name)
	}
	algo := nn.AlgoNDirect
	switch opt.Backend {
	case "", "ndirect":
	case "im2col+gemm", "im2col":
		algo = nn.AlgoIm2col
	case "ansor":
		algo = nn.AlgoAnsor
	case "libxsmm":
		algo = nn.AlgoXSMM
	case "xnnpack":
		algo = nn.AlgoXNN
	default:
		return nil, fmt.Errorf("ndirect: unknown backend %q", opt.Backend)
	}
	eng := &nn.Engine{Algo: algo, Threads: opt.Threads, Fuse: opt.Fuse}
	m := &Model{net: net, eng: eng}
	if opt.Tune && algo == nn.AlgoAnsor {
		eng.Tune(net, autotune.TuneOptions{
			Trials: 24, Population: 8, Generations: 3, Threads: opt.Threads,
			Seed: 1, MeasureBatch: 1,
		})
	}
	return m, nil
}

// Name returns the network's name.
func (m *Model) Name() string { return m.net.Name }

// Infer runs the network on an NCHW input batch [N,3,224,224] and
// returns the [N,1000] class probabilities.
func (m *Model) Infer(x *Tensor) *Tensor {
	return m.net.Forward(m.eng, x)
}

// ConvShapes lists the distinct convolution shapes of the network
// (N = 1).
func (m *Model) ConvShapes() []Shape {
	return m.net.ConvShapes()
}

// NewInput allocates an NCHW input batch for the model.
func (m *Model) NewInput(batch int) *Tensor {
	return tensor.New(batch, 3, 224, 224)
}

// SaveWeights serialises the model's parameters to w (a compact
// binary format; see LoadWeights).
func (m *Model) SaveWeights(w io.Writer) error { return m.net.WriteWeights(w) }

// LoadWeights replaces the model's parameters with ones previously
// written by SaveWeights on an identically structured model. The
// model is left untouched on any error.
func (m *Model) LoadWeights(r io.Reader) error { return m.net.ReadWeights(r) }
