// Package ndirect is a from-scratch Go implementation of nDirect
// (Wang et al., "Optimizing Direct Convolutions on ARM Multi-Cores",
// SC'23): a direct convolution library that keeps the framework-
// native NCHW/NHWC activation and KCRS filter layouts while matching
// or beating layout-specialised approaches, via analytically derived
// cache and register tiling (Equations 1–4), an outer-product
// micro-kernel, packing overlapped with computation (§5.3) and a
// workload-aware thread mapping (Equations 5–6).
//
// Quick start:
//
//	s := ndirect.Shape{N: 1, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
//	in := ndirect.NewTensor(s.N, s.C, s.H, s.W)   // NCHW
//	w := ndirect.NewTensor(s.K, s.C, s.R, s.S)    // KCRS
//	out := ndirect.Conv2D(s, in, w, ndirect.Options{})
//
// For repeated execution of one layer, build a Plan once:
//
//	plan := ndirect.NewPlan(s, ndirect.Options{Threads: 8})
//	plan.Execute(in, w, out)
//
// The internal packages additionally provide the paper's baselines
// (im2col+GEMM, LIBXSMM-style, XNNPACK-style, ACL-style, an Ansor-
// substitute autotuner), the machine model used to project results
// onto the paper's four ARM platforms, and the benchmark harness that
// regenerates every table and figure (cmd/ndbench).
package ndirect

import (
	"context"
	"fmt"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/hw"
	"ndirect/internal/parallel"
	"ndirect/internal/serve"
	"ndirect/internal/tensor"
)

// Sentinel errors of the checked (Try*) API. Every validation failure
// returned by a Try* function or a (*Plan).Try* method wraps one of
// these, so callers classify with errors.Is.
var (
	// ErrBadShape: a Shape that does not describe a realisable
	// convolution (non-positive or oversized dimension, kernel larger
	// than the padded input, tensor sizes past the element limit).
	ErrBadShape = conv.ErrBadShape
	// ErrDimMismatch: an operand tensor whose rank, dimensions or
	// backing-buffer length disagree with the Shape.
	ErrDimMismatch = conv.ErrDimMismatch
	// ErrBadOptions: an Options value the planner cannot honour
	// (misaligned forced tiles, unknown epilogue, wrong bias length,
	// excessive thread count).
	ErrBadOptions = core.ErrBadOptions
	// ErrBadSchedule: an autotuner schedule that is inadmissible for
	// the shape it is applied to.
	ErrBadSchedule = autotune.ErrBadSchedule
	// ErrWorkerPanic: a panic recovered inside a parallel worker and
	// converted into an error by the fault-tolerant runtime.
	ErrWorkerPanic = parallel.ErrWorkerPanic
	// ErrDeadline: a *Ctx execution abandoned because its context
	// expired before the thread grid finished. Errors wrapping it
	// also wrap the context's cause, so both
	// errors.Is(err, ErrDeadline) and
	// errors.Is(err, context.DeadlineExceeded) hold.
	ErrDeadline = conv.ErrDeadline
	// ErrCanceled: the parallel runtime's sentinel for a worker group
	// abandoned on cancellation (wrapped by ErrDeadline errors).
	ErrCanceled = parallel.ErrCanceled
	// ErrOverloaded: the serving runtime refused the request before
	// doing any convolution work — admission control found the wait
	// queue full (or no slot freed before the deadline), or the memory
	// budget could not cover even the bottom rung of the degradation
	// ladder. The request can be retried once load drains; no partial
	// work was done.
	ErrOverloaded = core.ErrOverloaded
	// ErrIntegrity: detected silent data corruption — a packed filter
	// failing its pack-time CRC32-C before consumption, a scratch or
	// output-buffer canary overwritten by an out-of-bounds store, or a
	// kernel family diverging from the reference oracle on its golden
	// probe. Never silently repaired at this level: the artifact may
	// stay corrupt, so the owner must discard and rebuild it (the nn
	// engine re-packs, the serving runtime quarantines).
	ErrIntegrity = core.ErrIntegrity
)

// LeakedWorkers reports worker goroutines abandoned by expired-context
// joins that are still running; see parallel.LeakedWorkers.
func LeakedWorkers() int64 { return parallel.LeakedWorkers() }

// Shape describes a convolution in the paper's notation: input
// I[N][C][H][W], filter F[K][C][R][S], stride Str and symmetric zero
// padding Pad.
type Shape = conv.Shape

// Tensor is a dense FP32 tensor (flat buffer + shape, last dimension
// contiguous).
type Tensor = tensor.Tensor

// Options configure plan construction; the zero value selects the
// analytical-model defaults. See core.Options for every knob
// (thread count, target platform, packing mode, forced tiles, fused
// epilogues).
type Options = core.Options

// Plan is a prepared, reusable convolution execution plan.
type Plan = core.Plan

// PlanCache is a concurrency-safe LRU cache of plans keyed by
// (Shape, Options), for serving workloads that see the same layer
// geometries call after call: set Options.PlanCache and the one-shot
// entry points (Conv2D and friends, the NHWC/grouped/pointwise forms)
// amortise the Eq. 1–6 analytical solve to a map lookup. See also
// nn.Engine.Reuse for the network-level switch.
type PlanCache = core.PlanCache

// NewPlanCache returns a plan cache bounded to capacity entries
// (least-recently-used eviction; capacity <= 0 selects
// core.DefaultPlanCacheCap).
func NewPlanCache(capacity int) *PlanCache { return core.NewPlanCache(capacity) }

// PlanCacheStats is a point-in-time snapshot of a PlanCache's
// hit/miss/eviction counters and population, via (*PlanCache).Stats.
type PlanCacheStats = core.PlanCacheStats

// Server is the overload-safe serving runtime: admission control with
// a bounded deadline-aware wait queue, a global memory budget with an
// explicit degradation ladder (pooled buffer → fresh allocation →
// smaller-tile plan → reference path), and gated network forward
// passes whose engine can quarantine failing baseline backends behind
// circuit breakers. Requests that cannot be served within those
// bounds fail fast with errors wrapping ErrOverloaded. See
// internal/serve and the README's "Serving hardening" section.
type Server = serve.Runtime

// ServeConfig configures NewServer; the zero value gives one
// in-flight request per core, an equal-size wait queue, accounting
// without a memory ceiling, and a private plan cache.
type ServeConfig = serve.Config

// ServeStats is the Server's counter snapshot (admission, memory,
// ladder rungs, pool and plan-cache activity).
type ServeStats = serve.Stats

// NewServer builds an overload-safe serving runtime.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// PackedFilter is a whole-filter pre-transformation of KCRS weights
// into the vector-blocked ⌈K/Vk⌉·C·R·S·Vk layout the micro-kernel
// consumes — build it once per layer with Plan.TransformFilter and
// execute with Plan.TryExecutePacked to skip the per-call on-the-fly
// transform (Algorithm 2 line 5) with bit-identical results.
type PackedFilter = core.PackedFilter

// Epilogue selects the fused post-processing of the output pass.
type Epilogue = core.Epilogue

// Fused epilogue kinds.
const (
	EpilogueNone     = core.EpilogueNone
	EpilogueBias     = core.EpilogueBias
	EpilogueReLU     = core.EpilogueReLU
	EpilogueBiasReLU = core.EpilogueBiasReLU
)

// EpilogueParams is the generalised fused epilogue (per-channel bias,
// per-channel affine — the inference form of batch normalisation —
// and ReLU) applied inside the output store while the accumulator tile
// is still in registers. Select it via Options.FusedEpilogue; output
// is bit-identical to running the separate bias/BN/ReLU passes.
type EpilogueParams = core.EpilogueParams

// WorkerPool is the persistent pool of parked worker goroutines every
// parallel loop dispatches onto at steady state (one worker per
// GOMAXPROCS by default). See DefaultWorkerPool.
type WorkerPool = parallel.Pool

// WorkerPoolStats snapshots a pool's dispatch counters; Spawned
// staying flat across calls is the "no new goroutines at steady
// state" invariant.
type WorkerPoolStats = parallel.PoolStats

// DefaultWorkerPool returns the process-wide worker pool, starting it
// on first use.
func DefaultWorkerPool() *WorkerPool { return parallel.DefaultPool() }

// Platform describes a target machine (cache geometry, peak FLOPS,
// the calibrated α of §6.2). The paper's four evaluation platforms
// are available via Platforms / PlatformByName.
type Platform = hw.Platform

// Platforms lists the paper's Table 3 machines.
var Platforms = hw.Platforms

// PlatformByName resolves "phytium", "kp920", "tx2"/"thunderx2" or
// "rpi4" (and the full Table 3 names).
func PlatformByName(name string) (Platform, bool) { return hw.ByName(name) }

// NewTensor allocates a zero tensor with the given dimensions.
func NewTensor(dims ...int) *Tensor { return tensor.New(dims...) }

// TensorFromSlice wraps an existing float32 buffer (shared storage).
func TensorFromSlice(data []float32, dims ...int) *Tensor {
	return tensor.FromSlice(data, dims...)
}

// NewPlan derives an nDirect execution plan for the shape: register
// tile from Equations 3–4, cache tiles from Equations 1–2, thread
// mapping from Equations 5–6. It panics on an invalid shape or
// options; use TryNewPlan for the checked form.
func NewPlan(s Shape, opt Options) *Plan { return core.NewPlan(s, opt) }

// TryNewPlan is the checked form of NewPlan: instead of panicking it
// returns an error wrapping ErrBadShape or ErrBadOptions. The
// resulting Plan additionally offers the checked execution methods
// TryExecute, TryExecuteNHWC and TryExecuteAdd.
func TryNewPlan(s Shape, opt Options) (*Plan, error) { return core.TryNewPlan(s, opt) }

// Conv2D convolves an NCHW input with a KCRS filter, returning a
// freshly allocated NKPQ output. It panics on invalid arguments; use
// TryConv2D for the checked form.
func Conv2D(s Shape, in, filter *Tensor, opt Options) *Tensor {
	return core.Conv2D(s, in, filter, opt)
}

// TryConv2D is the checked form of Conv2D: invalid shapes, options or
// operand tensors return an error (wrapping ErrBadShape,
// ErrBadOptions or ErrDimMismatch) instead of panicking, and an
// execution fault on the optimised path degrades to the reference
// path — a nil error always comes with a correct output.
func TryConv2D(s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv2D(s, in, filter, opt)
}

// TryConv2DCtx is TryConv2D bounded by ctx: when the context expires
// before the thread grid finishes, the run is abandoned (cooperative
// stop flag plus a detached join — see DESIGN.md §5) and the error
// wraps both ErrDeadline and the context's cause. With a positive
// Options.FallbackBudget the result is instead recomputed on the
// reference path within that budget. A context without a deadline
// costs nothing.
func TryConv2DCtx(ctx context.Context, s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv2DCtx(ctx, s, in, filter, opt)
}

// Conv2DNHWC convolves an NHWC input with a KCRS filter, returning an
// NPQK (NHWC) output — no activation layout conversion is performed
// in either direction.
func Conv2DNHWC(s Shape, in, filter *Tensor, opt Options) *Tensor {
	return core.Conv2DNHWC(s, in, filter, opt)
}

// TryConv2DNHWC is the checked form of Conv2DNHWC.
func TryConv2DNHWC(s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv2DNHWC(s, in, filter, opt)
}

// TryConv2DNHWCCtx is TryConv2DNHWC bounded by ctx (see TryConv2DCtx).
func TryConv2DNHWCCtx(ctx context.Context, s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv2DNHWCCtx(ctx, s, in, filter, opt)
}

// DepthwiseConv2D computes a per-channel (depthwise) convolution:
// in is NCHW, filter is [C, R, S] (§10.2).
func DepthwiseConv2D(s Shape, in, filter *Tensor, opt Options) *Tensor {
	return core.DepthwiseConv2D(s, in, filter, opt)
}

// TryDepthwiseConv2D is the checked form of DepthwiseConv2D.
func TryDepthwiseConv2D(s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryDepthwiseConv2D(s, in, filter, opt)
}

// TryDepthwiseConv2DCtx is TryDepthwiseConv2D bounded by ctx (see
// TryConv2DCtx).
func TryDepthwiseConv2DCtx(ctx context.Context, s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryDepthwiseConv2DCtx(ctx, s, in, filter, opt)
}

// PointwiseShape builds the conv.Shape of a 1×1 (pointwise)
// convolution over an N×C×H×W input producing K output channels — the
// explicit-shape form the pointwise entry points consume.
func PointwiseShape(n, c, h, w, k int) Shape { return core.PointwiseShape(n, c, h, w, k) }

// PointwiseConv2D computes the 1×1 convolution of a depthwise-
// separable block through the standard nDirect path.
//
// Deprecated: the bare-int parameter list invites argument-order
// bugs the compiler cannot catch. Use TryPointwiseConv2DShape with
// PointwiseShape (or an explicit Shape literal) instead.
func PointwiseConv2D(n, c, h, w, k int, in, filter *Tensor, opt Options) *Tensor {
	return core.PointwiseConv2D(n, c, h, w, k, in, filter, opt)
}

// TryPointwiseConv2D is the checked form of PointwiseConv2D.
//
// Deprecated: use TryPointwiseConv2DShape (see PointwiseConv2D).
func TryPointwiseConv2D(n, c, h, w, k int, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryPointwiseConv2D(n, c, h, w, k, in, filter, opt)
}

// TryPointwiseConv2DCtx is TryPointwiseConv2D bounded by ctx (see
// TryConv2DCtx).
//
// Deprecated: use TryPointwiseConv2DShapeCtx (see PointwiseConv2D).
func TryPointwiseConv2DCtx(ctx context.Context, n, c, h, w, k int, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryPointwiseConv2DCtx(ctx, n, c, h, w, k, in, filter, opt)
}

// TryPointwiseConv2DShape computes a 1×1 convolution for an explicit
// pointwise shape (R = S = 1, stride 1, pad 0 — anything else fails
// with ErrBadShape).
func TryPointwiseConv2DShape(s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryPointwiseConv2DShape(s, in, filter, opt)
}

// TryPointwiseConv2DShapeCtx is TryPointwiseConv2DShape bounded by
// ctx (see TryConv2DCtx).
func TryPointwiseConv2DShapeCtx(ctx context.Context, s Shape, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryPointwiseConv2DShapeCtx(ctx, s, in, filter, opt)
}

// DepthwisePlan is the reusable execution state for a depthwise
// convolution: register-tiled 3×3 micro-kernels behind the shape
// dispatch, a packed per-channel filter layout (TransformFilter), a
// pooled scratch grid, and the same fault ladder as Plan.
type DepthwisePlan = core.DepthwisePlan

// TryNewDepthwisePlan builds a DepthwisePlan for the depthwise
// geometry s (s.K must equal s.C; filter is [C, R, S]).
func TryNewDepthwisePlan(s Shape, opt Options) (*DepthwisePlan, error) {
	return core.TryNewDepthwisePlan(s, opt)
}

// PackedDepthwiseFilter is the pre-transformed, CRC32-C-protected
// per-channel filter artifact a DepthwisePlan (or SeparablePlan)
// executes packed with.
type PackedDepthwiseFilter = core.PackedDepthwiseFilter

// SeparableShape describes a fused depthwise-separable block: the
// depthwise stage's geometry plus the pointwise stage's K output
// channels (always 1×1, stride 1, pad 0 on the depthwise output).
type SeparableShape = core.SeparableShape

// SeparablePlan executes a depthwise-separable block as ONE fused
// plan: each grid cell computes a row tile of depthwise output for
// all C channels into pooled scratch and immediately feeds it to the
// pointwise micro-kernel while cache-hot — the full [N][C][P][Q]
// intermediate is never materialised, and the result is bit-identical
// to TryDepthwiseConv2D followed by TryPointwiseConv2DShape.
type SeparablePlan = core.SeparablePlan

// TryNewSeparablePlan builds a SeparablePlan for the block shape.
func TryNewSeparablePlan(s SeparableShape, opt Options) (*SeparablePlan, error) {
	return core.TryNewSeparablePlan(s, opt)
}

// TrySeparableConv2D runs a depthwise-separable block (depthwise
// filter [C, R, S], pointwise filter [K, C, 1, 1]) through the fused
// executor, returning the freshly allocated [N, K, P, Q] output.
func TrySeparableConv2D(s SeparableShape, in, dwFilter, pwFilter *Tensor, opt Options) (*Tensor, error) {
	return core.TrySeparableConv2D(s, in, dwFilter, pwFilter, opt)
}

// TrySeparableConv2DCtx is TrySeparableConv2D bounded by ctx (see
// TryConv2DCtx).
func TrySeparableConv2DCtx(ctx context.Context, s SeparableShape, in, dwFilter, pwFilter *Tensor, opt Options) (*Tensor, error) {
	return core.TrySeparableConv2DCtx(ctx, s, in, dwFilter, pwFilter, opt)
}

// GroupedConv2D convolves in `groups` independent channel groups
// (filter [K, C/groups, R, S]); groups=1 is the standard convolution
// and groups=C the depthwise one — the §10.2 spectrum.
func GroupedConv2D(s Shape, groups int, in, filter *Tensor, opt Options) *Tensor {
	return core.GroupedConv2D(s, groups, in, filter, opt)
}

// TryGroupedConv2D is the checked form of GroupedConv2D.
func TryGroupedConv2D(s Shape, groups int, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryGroupedConv2D(s, groups, in, filter, opt)
}

// TryGroupedConv2DCtx is TryGroupedConv2D bounded by ctx (see
// TryConv2DCtx).
func TryGroupedConv2DCtx(ctx context.Context, s Shape, groups int, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryGroupedConv2DCtx(ctx, s, groups, in, filter, opt)
}

// Shape3D describes a 3-D convolution (§10.2): input [N,C,D,H,W],
// filter [K,C,T,R,S].
type Shape3D = core.Shape3D

// Conv3D computes a 3-D convolution by reducing 2-D nDirect
// convolutions over the kernel depth.
func Conv3D(s Shape3D, in, filter *Tensor, opt Options) *Tensor {
	return core.Conv3D(s, in, filter, opt)
}

// TryConv3D is the checked form of Conv3D.
func TryConv3D(s Shape3D, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv3D(s, in, filter, opt)
}

// TryConv3DCtx is TryConv3D bounded by ctx (see TryConv2DCtx).
func TryConv3DCtx(ctx context.Context, s Shape3D, in, filter *Tensor, opt Options) (*Tensor, error) {
	return core.TryConv3DCtx(ctx, s, in, filter, opt)
}

// Conv2D64 is the FP64 variant (§3.3): same algorithm with the
// 2-lane-per-register geometry plugged into the analytical models.
// in and filter are flat NCHW/KCRS float64 buffers; the NKPQ result
// is freshly allocated.
func Conv2D64(s Shape, in, filter []float64, opt Options) []float64 {
	return core.Conv2D64(s, in, filter, opt)
}

// TryConv2D64 is the checked form of Conv2D64.
func TryConv2D64(s Shape, in, filter []float64, opt Options) ([]float64, error) {
	return core.TryConv2D64(s, in, filter, opt)
}

// TryConv2D64Ctx is TryConv2D64 bounded by ctx (see TryConv2DCtx).
func TryConv2D64Ctx(ctx context.Context, s Shape, in, filter []float64, opt Options) ([]float64, error) {
	return core.TryConv2D64Ctx(ctx, s, in, filter, opt)
}

// Conv2DInt16 is the quantised variant (§3.3): int16 activations and
// weights with int32 accumulation (the NEON widening-MAC pattern),
// returning the raw NKPQ accumulators for the caller to requantise.
func Conv2DInt16(s Shape, in, filter []int16, opt Options) []int32 {
	return core.Conv2DInt16(s, in, filter, opt)
}

// TryConv2DInt16 is the checked form of Conv2DInt16.
func TryConv2DInt16(s Shape, in, filter []int16, opt Options) ([]int32, error) {
	return core.TryConv2DInt16(s, in, filter, opt)
}

// TryConv2DInt16Ctx is TryConv2DInt16 bounded by ctx (see
// TryConv2DCtx).
func TryConv2DInt16Ctx(ctx context.Context, s Shape, in, filter []int16, opt Options) ([]int32, error) {
	return core.TryConv2DInt16Ctx(ctx, s, in, filter, opt)
}

// Reference computes the convolution with the naive seven-loop
// Algorithm 1 — the correctness oracle (float64 accumulation).
func Reference(s Shape, in, filter *Tensor) *Tensor {
	return conv.Reference(s, in, filter)
}

// Layers returns the paper's Table 4 evaluation layers (IDs 1–28,
// batch 1; use Shape.WithBatch to scale).
func Layers() []conv.Layer { return conv.Table4 }

// Layer is one Table 4 row.
type Layer = conv.Layer

// LayerByID returns Table 4 row id (1–28).
func LayerByID(id int) (Layer, error) {
	l, ok := conv.LayerByID(id)
	if !ok {
		return Layer{}, fmt.Errorf("ndirect: no Table 4 layer with id %d", id)
	}
	return l, nil
}
