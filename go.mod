module ndirect

go 1.22
