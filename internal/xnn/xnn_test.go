package xnn

import (
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

const tol = 2e-5

func checkConv(t *testing.T, s conv.Shape) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C*3 + s.K))
	f := s.NewFilter()
	f.FillRandom(int64(s.S * 17))
	want := conv.Reference(s, in, f)
	got, _ := Conv2D(s, in, f, Options{Threads: 2})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v: rel diff %g", s, d)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	checkConv(t, conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 2, C: 16, H: 10, W: 10, K: 8, R: 1, S: 1, Str: 1, Pad: 0})
	checkConv(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 3, H: 18, W: 18, K: 16, R: 7, S: 7, Str: 2, Pad: 3})
}

func TestConv2DRaggedKAndPixels(t *testing.T) {
	checkConv(t, conv.Shape{N: 1, C: 4, H: 7, W: 7, K: 11, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 4, H: 5, W: 6, K: 3, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestIndirectionBuffer(t *testing.T) {
	s := conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 1, R: 3, S: 3, Str: 1, Pad: 1}
	indir := buildIndirection(s)
	rs := 9
	// Output (0,0), tap (0,0) reads input (-1,-1): padding.
	if indir[0] != -1 {
		t.Fatal("corner tap must be padding")
	}
	// Output (0,0), tap (1,1) reads input (0,0): offset 0.
	if indir[4] != 0 {
		t.Fatalf("centre tap offset = %d, want 0", indir[4])
	}
	// Output (1,1), tap (1,1) reads input (1,1): offset (1*4+1)*2.
	if got := indir[(1*4+1)*rs+4]; got != 10 {
		t.Fatalf("interior tap offset = %d, want 10", got)
	}
	// Buffer is image-relative: size must be P*Q*R*S, batch-free.
	if len(indir) != 4*4*9 {
		t.Fatalf("indirection length %d", len(indir))
	}
}

func TestConv2DNHWCNative(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 9, W: 9, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(7)
	f := s.NewFilter()
	f.FillRandom(8)
	want := conv.Reference(s, in, f)
	outNHWC, st := Conv2DNHWC(s, tensor.NCHWToNHWC(in), f, Options{Threads: 2})
	got := tensor.NHWCToNCHW(outNHWC)
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("NHWC rel diff %g", d)
	}
	if st.KernelSec <= 0 || st.WeightPrepSec <= 0 || st.IndirectionSec <= 0 {
		t.Fatalf("stats missing: %+v", st)
	}
	if st.Total() != st.WeightPrepSec+st.IndirectionSec+st.KernelSec {
		t.Fatal("Total inconsistent")
	}
}

func TestConv2DThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(9)
	f := s.NewFilter()
	f.FillRandom(10)
	a, _ := Conv2D(s, in, f, Options{Threads: 1})
	b, _ := Conv2D(s, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("thread count changed result")
	}
}

func TestConv2DRandomProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw uint8, strRaw bool, seed int64) bool {
		str := 1
		if strRaw {
			str = 2
		}
		s := conv.Shape{
			N: 1, C: int(cRaw)%11 + 1,
			H: int(hRaw)%9 + 4, W: int(hRaw)%10 + 4,
			K: int(kRaw)%19 + 1, R: 3, S: 3, Str: str, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got, _ := Conv2D(s, in, fl, Options{Threads: 2})
		return tensor.RelDiff(want, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
