// Package xnn implements the XNNPACK-style indirect convolution
// baseline (Dukhan, "The Indirect Convolution Algorithm"): an NHWC
// convolution that replaces im2col's data duplication with an
// indirection buffer of input-row offsets — one entry per (output
// pixel, r, s) — consumed by a GEMM-shaped micro-kernel that
// gathers input rows through the indirection.
//
// Compared to im2col+GEMM this removes the lowering copy and most of
// the extra memory footprint (Table 2's "low memory footprint" entry
// for XNNPACK); compared to nDirect it still pays the pointer chase
// per (r, s) tap and a GEMM-mode register tile.
package xnn

import (
	"fmt"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// BlockK is the output-channel vector block (two Vec4 registers).
const BlockK = 8

// pixelTile is the number of output pixels one micro-kernel
// invocation processes (the GEMM M tile).
const pixelTile = 4

// Options configure the baseline.
type Options struct {
	Threads int
}

// Stats separates the one-time preparation stages from kernel time.
type Stats struct {
	WeightPrepSec  float64 // KCRS -> [K/kb][R][S][C][kb] repack
	IndirectionSec float64 // indirection buffer construction
	KernelSec      float64
}

// Total returns the summed stage time.
func (s Stats) Total() float64 { return s.WeightPrepSec + s.IndirectionSec + s.KernelSec }

// Conv2DNHWC convolves an NHWC input with a KCRS filter, returning an
// NHWC (NPQK) output — the native configuration the paper evaluates
// ("we use NHWC and KRSC data formats for XNNPACK's indirect
// convolution").
func Conv2DNHWC(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, Stats) {
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	var st Stats

	t0 := time.Now()
	fB := tensor.KCRSToKRSCk(filter, BlockK)
	st.WeightPrepSec = time.Since(t0).Seconds()

	t0 = time.Now()
	indir := buildIndirection(s)
	st.IndirectionSec = time.Since(t0).Seconds()

	p, q := s.P(), s.Q()
	out := tensor.New(s.N, p, q, s.K)
	kBlocks := fB.Dims[0]
	zeroRow := make([]float32, s.C)

	t0 = time.Now()
	// Parallelise over batch × output rows, XNNPACK's pthreadpool
	// scheme.
	parallel.MustFor(s.N*p, threads, func(np int) {
		n, oh := np/p, np%p
		imageBase := n * s.H * s.W * s.C
		for ow0 := 0; ow0 < q; ow0 += pixelTile {
			m := min(pixelTile, q-ow0)
			for kb := 0; kb < kBlocks; kb++ {
				microKernel(s, in.Data, fB.Data, out.Data, indir, zeroRow,
					imageBase, n, oh, ow0, m, kb)
			}
		}
	})
	st.KernelSec = time.Since(t0).Seconds()
	return out, st
}

// TryConv2D is the checked form of Conv2D: malformed operands come
// back as an error wrapping conv.ErrBadShape/ErrDimMismatch, and a
// panic raised inside the indirection-GEMM workers (re-thrown on this
// goroutine by parallel.MustFor) is recovered into an error instead of
// unwinding the caller.
func TryConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (out *tensor.Tensor, st Stats, err error) {
	if err = s.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err = conv.ValidateOperands(s, in, filter); err != nil {
		return nil, Stats{}, err
	}
	defer func() {
		if r := recover(); r != nil {
			out, st, err = nil, Stats{}, fmt.Errorf("xnn: execution fault: %v", r)
		}
	}()
	out, st = Conv2D(s, in, filter, opt)
	return out, st, nil
}

// Conv2D is the framework-tensor entry point: NCHW in, NKPQ out, with
// the layout conversions included in the stats' kernel-external time.
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, Stats) {
	conv.CheckOperands(s, in, filter)
	nhwcIn := tensor.NCHWToNHWC(in)
	out, st := Conv2DNHWC(s, nhwcIn, filter, opt)
	return tensor.NHWCToNCHW(out), st
}

// buildIndirection returns, for every (output pixel, r, s), the
// offset of the input row I[·][ih][iw][0:C] relative to the image
// base, or -1 when the tap falls in the padding halo. The buffer is
// shared across the batch (offsets are image-relative), XNNPACK's
// batch optimisation.
func buildIndirection(s conv.Shape) []int32 {
	p, q := s.P(), s.Q()
	rs := s.R * s.S
	indir := make([]int32, p*q*rs)
	i := 0
	for oh := 0; oh < p; oh++ {
		for ow := 0; ow < q; ow++ {
			for r := 0; r < s.R; r++ {
				ih := oh*s.Str - s.Pad + r
				for ss := 0; ss < s.S; ss++ {
					iw := ow*s.Str - s.Pad + ss
					if ih < 0 || ih >= s.H || iw < 0 || iw >= s.W {
						indir[i] = -1
					} else {
						indir[i] = int32((ih*s.W + iw) * s.C)
					}
					i++
				}
			}
		}
	}
	return indir
}

// microKernel computes out[n][oh][ow0:ow0+m][kb*8:(kb+1)*8]: a
// pixelTile × BlockK GEMM tile reduced over R·S·C through the
// indirection buffer.
func microKernel(s conv.Shape, in, filter, out []float32, indir []int32, zeroRow []float32,
	imageBase, n, oh, ow0, m, kb int) {
	p, q := s.P(), s.Q()
	rs := s.R * s.S
	var acc [pixelTile * BlockK / simd.Width]simd.Vec4
	var rows [pixelTile][]float32

	fBlock := filter[kb*rs*s.C*BlockK:]
	for t := 0; t < rs; t++ {
		for i := 0; i < m; i++ {
			off := indir[((oh*q+ow0+i)*rs)+t]
			if off < 0 {
				rows[i] = zeroRow
			} else {
				rows[i] = in[imageBase+int(off) : imageBase+int(off)+s.C]
			}
		}
		fTap := fBlock[t*s.C*BlockK:]
		for c := 0; c < s.C; c++ {
			fv := fTap[c*BlockK : c*BlockK+BlockK]
			f0 := simd.Load(fv)
			f1 := simd.Load(fv[4:])
			for i := 0; i < m; i++ {
				v := rows[i][c]
				acc[2*i] = acc[2*i].FMAScalar(f0, v)
				acc[2*i+1] = acc[2*i+1].FMAScalar(f1, v)
			}
		}
	}

	kBase := kb * BlockK
	kEnd := min(kBase+BlockK, s.K)
	for i := 0; i < m; i++ {
		dst := out[((n*p+oh)*q+ow0+i)*s.K:]
		if kEnd == kBase+BlockK {
			acc[2*i].Store(dst[kBase:])
			acc[2*i+1].Store(dst[kBase+4:])
		} else {
			for k := kBase; k < kEnd; k++ {
				j, lane := (k-kBase)/simd.Width, (k-kBase)%simd.Width
				dst[k] = acc[2*i+j][lane]
			}
		}
	}
}
