package model

import "ndirect/internal/simd"

// §10.1 (architecture portability) and §3.3 (other data types): the
// register-tile model generalised over the vector geometry. The ARM
// Scalable Vector Extension allows 128–2048-bit registers; FP64
// halves the lanes per 128-bit register; AVX-512 offers 16 FP32 lanes.
// All of these change only two model inputs — lanes per register and
// register count — so the Equation 3–4 machinery is re-derived here
// with both as parameters. The fixed-geometry functions in model.go
// delegate to these with the NEON FP32 values (4 lanes, 32 registers).

// VectorGeometry describes the SIMD register file the kernel targets.
type VectorGeometry struct {
	Lanes   int // elements per vector register
	NumRegs int // architectural vector registers
}

// NEONFP32 is the paper's target geometry: 128-bit registers, FP32.
var NEONFP32 = VectorGeometry{Lanes: simd.Width, NumRegs: simd.NumRegs}

// NEONFP64 is 128-bit registers holding 2 FP64 lanes (§3.3).
var NEONFP64 = VectorGeometry{Lanes: 2, NumRegs: simd.NumRegs}

// SVE512FP32 models a 512-bit SVE implementation (e.g. Fujitsu
// A64FX): 16 FP32 lanes, 32 registers.
var SVE512FP32 = VectorGeometry{Lanes: 16, NumRegs: 32}

// AVX512FP32 models x86 AVX-512: 16 FP32 lanes, 32 registers (§10.1
// "our techniques are also applicable to ... Intel AVX-512").
var AVX512FP32 = VectorGeometry{Lanes: 16, NumRegs: 32}

// RegistersUsedVL evaluates the Equation 3 left-hand side for an
// arbitrary geometry: ⌈(V_w+S−1)/L⌉ input registers + V_k/L filter
// registers + V_w·V_k/L output registers.
func (g VectorGeometry) RegistersUsedVL(vw, vk, s int) int {
	in := (vw + s - 1 + g.Lanes - 1) / g.Lanes
	return in + vk/g.Lanes + vw*vk/g.Lanes
}

// SolveRegisterTile enumerates the feasible register tiles for the
// geometry (V_w and V_k multiples of the lane count, Equation 3
// budget) and returns the FAI-maximal one with the same tie-breaking
// as the NEON solver: fewer occupied registers, then larger V_w.
func (g VectorGeometry) SolveRegisterTile(s, str int) RegTile {
	best := RegTile{}
	maxDim := g.NumRegs * g.Lanes
	for vk := g.Lanes; vk <= maxDim; vk += g.Lanes {
		for vw := g.Lanes; vw <= maxDim; vw += g.Lanes {
			regs := g.RegistersUsedVL(vw, vk, s)
			if regs > g.NumRegs {
				continue
			}
			cand := RegTile{Vw: vw, Vk: vk, Registers: regs, FAI: FAI(vw, vk, s, str)}
			if better(cand, best) {
				best = cand
			}
		}
	}
	if best.Vk == 0 {
		// Same fallback as the NEON solver: when no tile fits the
		// register budget, return the minimal lane-aligned tile so
		// downstream divisions by Vw/Vk never see zero.
		best = RegTile{
			Vw: g.Lanes, Vk: g.Lanes,
			Registers: g.RegistersUsedVL(g.Lanes, g.Lanes, s),
			FAI:       FAI(g.Lanes, g.Lanes, s, str),
		}
	}
	return best
}
