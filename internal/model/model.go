// Package model implements the paper's analytical models:
//
//   - §5.2 register-tile selection: choose the micro-kernel vector
//     parameters (V_w, V_k) that maximise floating-point arithmetic
//     intensity (FAI, Equation 4) subject to the NEON register budget
//     (Equation 3). The paper solves the continuous relaxation with
//     Lagrange multipliers; the feasible set is small and integral, so
//     this package enumerates it exactly.
//   - §4.2 cache-tile selection: derive T_c, T_k (Equations 1–2) and
//     T_h from the platform's cache capacities.
//   - §6 thread mapping: split PT worker threads into PT_k × PT_n
//     (Equations 5–6) using the calibrated α streaming/non-streaming
//     cost ratio, and assign PT_n across the N, H, W dimensions with
//     the paper's N → H → W priority.
package model

import (
	"fmt"
	"math"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
)

// RegTile is a register-level micro-kernel tile: V_w output columns ×
// V_k output channels held in vector registers.
type RegTile struct {
	Vw, Vk    int
	Registers int     // vector registers the tile occupies (Eq. 3 LHS)
	FAI       float64 // Equation 4 value
}

func (t RegTile) String() string {
	return fmt.Sprintf("Vw=%d Vk=%d (%d regs, FAI %.2f)", t.Vw, t.Vk, t.Registers, t.FAI)
}

// RegistersUsed evaluates the left-hand side of Equation 3: input rows
// need ⌈(V_w+S−1)/4⌉ registers, the filter slice V_k/4, and the output
// tile V_w·V_k/4.
func RegistersUsed(vw, vk, s int) int {
	in := (vw + s - 1 + simd.Width - 1) / simd.Width
	return in + vk/simd.Width + vw*vk/simd.Width
}

// FAI evaluates Equation 4 generalised to any kernel width S and
// stride: one iteration of loop L9 loads V_w+S−1 input elements and
// S·V_k filter elements and performs 2·S·(V_w/str)·V_k FLOPs (§8.1:
// with stride 2 the same loads feed half the computation).
func FAI(vw, vk, s, str int) float64 {
	flops := 2.0 * float64(s) * float64(vw) / float64(str) * float64(vk)
	loads := float64(vw+s-1) + float64(s*vk)
	return flops / loads
}

// SolveRegisterTile enumerates the feasible (V_w, V_k) set of
// Equation 3 and returns the FAI-maximal tile for kernel width S and
// the given stride. Constraints beyond Eq. 3: V_k ≡ 0 (mod 4) so the
// filter slice fills whole registers (paper), and V_w ≡ 0 (mod 4) so
// output rows store with whole st1 instructions. Ties on FAI prefer
// fewer occupied registers (leaving scratch registers for addressing,
// as the paper's kernel does: V6–V7 stay free), then larger V_w.
//
// For the paper's working example (S=3, stride 1) this yields
// V_w=12, V_k=8 — the values §5.2.3 reports for the evaluation
// platforms.
func SolveRegisterTile(s, str int) RegTile {
	best := RegTile{}
	for vk := simd.Width; vk <= simd.NumRegs*simd.Width; vk += simd.Width {
		for vw := simd.Width; vw <= simd.NumRegs*simd.Width; vw += simd.Width {
			regs := RegistersUsed(vw, vk, s)
			if regs > simd.NumRegs {
				continue
			}
			cand := RegTile{Vw: vw, Vk: vk, Registers: regs, FAI: FAI(vw, vk, s, str)}
			if better(cand, best) {
				best = cand
			}
		}
	}
	if best.Vk == 0 {
		// No candidate satisfies Equation 3 (a kernel width so large
		// that even the minimal tile busts the register budget). Fall
		// back to the minimal lane-aligned tile: the generic kernel
		// spills, but every downstream division by Vw/Vk stays safe.
		best = RegTile{
			Vw: simd.Width, Vk: simd.Width,
			Registers: RegistersUsed(simd.Width, simd.Width, s),
			FAI:       FAI(simd.Width, simd.Width, s, str),
		}
	}
	return best
}

func better(a, b RegTile) bool {
	const eps = 1e-9
	switch {
	case b.Vk == 0: // b unset
		return true
	case a.FAI > b.FAI+eps:
		return true
	case a.FAI < b.FAI-eps:
		return false
	case a.Registers != b.Registers:
		return a.Registers < b.Registers
	default:
		return a.Vw > b.Vw
	}
}

// CacheTiles are the loop tile sizes of Algorithm 2: T_c input
// channels, T_k output channels, T_h output rows.
type CacheTiles struct {
	Tc, Tk, Th int
}

func (t CacheTiles) String() string {
	return fmt.Sprintf("Tc=%d Tk=%d Th=%d", t.Tc, t.Tk, t.Th)
}

// SolveCacheTiles applies Equations 1 and 2 (and the L3 analogue for
// T_h) to the platform's cache capacities.
//
// Equation 1 (L1): R·T_c·(V_w+S−1) + 2·V_k·T_c·R·S < C_L1.
// Equation 2 (L2): T_k·T_c·R·S + 2·R·T_c·(V_w+S−1) < C_L2.
//
// The input-row width accounts for stride: a register tile of V_w
// outputs consumes (V_w−1)·str + S input columns. T_k is rounded down
// to a multiple of V_k (the filter transform blocks K by V_k) and all
// tiles are clamped to the problem size.
func SolveCacheTiles(p hw.Platform, s conv.Shape, rt RegTile) CacheTiles {
	wIn := (rt.Vw-1)*s.Str + s.S
	l1Floats := p.L1.SizeBytes / 4
	l2Floats := p.EffectiveL2Bytes() / 4

	// Eq. 1 -> T_c.
	denom1 := s.R*wIn + 2*rt.Vk*s.R*s.S
	tc := l1Floats / denom1
	tc = clamp(tc, 1, s.C)

	// Eq. 2 -> T_k. The paper reserves L2 space for instructions and
	// output elements; we reserve the output register tile spill area
	// plus a 1/8 instruction share, matching the "< C_L2" slack.
	budget2 := l2Floats - l2Floats/8 - 2*s.R*tc*wIn
	tk := 0
	if tcRS := tc * s.R * s.S; tcRS > 0 && budget2 > 0 {
		tk = budget2 / tcRS
	}
	tk = tk / rt.Vk * rt.Vk // multiple of V_k
	kCap := (s.K + rt.Vk - 1) / rt.Vk * rt.Vk
	tk = clamp(tk, rt.Vk, kCap)

	// L3 analogue -> T_h (output rows). The LLC share should hold the
	// T_c × input-rows × W slab plus the T_k filter block. Platforms
	// without an L3 (Phytium 2000+, RPi 4) fall back to the whole
	// image: their L2 already bounds the working set via Eq. 2.
	th := s.P()
	if p.L3.Exists() {
		l3Floats := p.EffectiveL3Bytes() / 4
		filterBlock := tk * tc * s.R * s.S
		rowFloats := tc * s.Str * s.W // one more output row costs str input rows
		if rowFloats > 0 {
			th = (l3Floats - filterBlock) / rowFloats
		}
		th = clamp(th, 1, s.P())
	}
	return CacheTiles{Tc: tc, Tk: tk, Th: th}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ThreadMapping is the §6 parallelisation plan: PT_k workers along K
// and PT_n workers along the batch/spatial dimensions, with PT_n
// decomposed over N, H, W in that priority order.
type ThreadMapping struct {
	PTk, PTn   int
	PN, PH, PW int     // PN·PH·PW == PTn
	FAI        float64 // Equation 5 value of the chosen split
}

func (m ThreadMapping) String() string {
	return fmt.Sprintf("PTk=%d PTn=%d (N:%d H:%d W:%d, FAI %.2f)", m.PTk, m.PTn, m.PN, m.PH, m.PW, m.FAI)
}

// ThreadFAI evaluates Equation 5: the per-thread floating-point
// arithmetic intensity for a given PT_n (with PT_k = PT/PT_n),
// FAI = 1 / (PT_n·str²/(N·H·W) + α/(K·R·S·PT_n)).
func ThreadFAI(s conv.Shape, alpha float64, ptn int) float64 {
	nhw := float64(s.N) * float64(s.H) * float64(s.W)
	krs := float64(s.K) * float64(s.R) * float64(s.S)
	d := float64(ptn)*float64(s.Str*s.Str)/nhw + alpha/(krs*float64(ptn))
	return 1 / d
}

// OptimalPTn returns the unconstrained Equation 6 optimum
// ⌈sqrt(α·N·H·W / (K·R·S·str²))⌉.
func OptimalPTn(s conv.Shape, alpha float64) int {
	nhw := float64(s.N) * float64(s.H) * float64(s.W)
	krs := float64(s.K) * float64(s.R) * float64(s.S)
	v := math.Sqrt(alpha * nhw / (krs * float64(s.Str*s.Str)))
	return int(math.Ceil(v))
}

// SolveThreadMapping picks the PT_k × PT_n factorisation of pt that
// maximises Equation 5 — the integral version of the paper's AM–GM
// argument (Equation 6) — then decomposes PT_n over N, H(=P), W(=Q)
// with the paper's priority. PT_k is capped at the number of V_k
// blocks of K so no K-worker is idle.
func SolveThreadMapping(s conv.Shape, alpha float64, pt, vk int) ThreadMapping {
	if pt < 1 {
		pt = 1
	}
	kBlocks := (s.K + vk - 1) / vk
	best := ThreadMapping{}
	found := false
	for _, fp := range parallel.Factorize(pt) {
		ptk, ptn := fp[0], fp[1]
		if ptk > kBlocks {
			continue
		}
		pn, ph, pw, ok := decomposePTn(ptn, s.N, s.P(), s.Q())
		if !ok {
			continue
		}
		fai := ThreadFAI(s, alpha, ptn)
		if !found || fai > best.FAI {
			best = ThreadMapping{PTk: ptk, PTn: ptn, PN: pn, PH: ph, PW: pw, FAI: fai}
			found = true
		}
	}
	if !found {
		// Degenerate problem (tiny shape): serial fallback.
		return ThreadMapping{PTk: 1, PTn: 1, PN: 1, PH: 1, PW: 1, FAI: ThreadFAI(s, alpha, 1)}
	}
	return best
}

// decomposePTn factorises ptn into pn·ph·pw with pn ≤ n, ph ≤ h,
// pw ≤ w, preferring to spend workers on N first, then H, then W
// (§6.2: "the priority of parallelization is N, H and W"). ok is
// false when no such factorisation exists (e.g. a prime ptn larger
// than every dimension).
func decomposePTn(ptn, n, h, w int) (pn, ph, pw int, ok bool) {
	for _, f1 := range parallel.Factorize(ptn) {
		a, rest := f1[0], f1[1]
		if a > n {
			continue
		}
		for _, f2 := range parallel.Factorize(rest) {
			b, c := f2[0], f2[1]
			if b > h || c > w {
				continue
			}
			if !ok || a > pn || (a == pn && b > ph) {
				pn, ph, pw = a, b, c
				ok = true
			}
		}
	}
	return pn, ph, pw, ok
}

// ContinuousOptimum solves the §5.2.3 continuous relaxation the paper
// attacks with Lagrange multipliers: maximise the Equation 4 FAI over
// real-valued (V_w, V_k) on the Equation 3 budget surface
// ⌈(V_w+S−1)/4⌉ + V_k/4 + V_w·V_k/4 = 32 (ceilings dropped). On the
// surface V_k = (128 − V_w − S + 1)/(1 + V_w), leaving a 1-D concave
// problem solved here by golden-section search. The integer solver
// (SolveRegisterTile) must always sit at or below this bound — a
// relationship the tests pin down.
func ContinuousOptimum(s, str int) (vw, vk, fai float64) {
	objective := func(w float64) float64 {
		k := (128.0 - w - float64(s) + 1) / (1 + w)
		if k <= 0 {
			return -1
		}
		flops := 2 * float64(s) * w * k / float64(str)
		loads := w + float64(s) - 1 + float64(s)*k
		return flops / loads
	}
	// Golden-section search on (1, 120).
	const phi = 0.6180339887498949
	lo, hi := 1.0, 120.0
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := objective(x1), objective(x2)
	for i := 0; i < 200; i++ {
		if f1 < f2 {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = objective(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = objective(x1)
		}
	}
	vw = (lo + hi) / 2
	vk = (128.0 - vw - float64(s) + 1) / (1 + vw)
	fai = objective(vw)
	return vw, vk, fai
}
