package model

import (
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/simd"
)

func TestRegistersUsedPaperExample(t *testing.T) {
	// §5.1/Alg. 3 for a 3×3 kernel: 4 input regs (V2–V5), 2 filter
	// regs (V0–V1), 24 output regs (V8–V31) = 30.
	if got := RegistersUsed(12, 8, 3); got != 30 {
		t.Fatalf("RegistersUsed(12,8,3) = %d, want 30", got)
	}
	if got := RegistersUsed(12, 8, 1); got != 29 {
		t.Fatalf("RegistersUsed(12,8,1) = %d, want 29", got)
	}
}

func TestFAIEquation4(t *testing.T) {
	// Equation 4 with S=3, Vw=12, Vk=8: 2*3*12*8 / (12+3-1 + 3*8)
	// = 576/38.
	got := FAI(12, 8, 3, 1)
	want := 576.0 / 38.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("FAI = %v, want %v", got, want)
	}
	// Stride 2 halves the FLOPs for the same loads (§8.1).
	if FAI(12, 8, 3, 2) != got/2 {
		t.Fatal("stride-2 FAI must be half of stride-1")
	}
}

func TestSolveRegisterTilePaperOptimum(t *testing.T) {
	// §5.2.3: the optimal values are V_k=8 and V_w=12 on the
	// evaluation platforms (3×3 working example).
	rt := SolveRegisterTile(3, 1)
	if rt.Vw != 12 || rt.Vk != 8 {
		t.Fatalf("S=3 tile = %v, want Vw=12 Vk=8", rt)
	}
	if rt.Registers != 30 {
		t.Fatalf("S=3 registers = %d, want 30", rt.Registers)
	}
	// 1×1 kernels keep the same tile (ties broken to larger V_w).
	rt1 := SolveRegisterTile(1, 1)
	if rt1.Vw != 12 || rt1.Vk != 8 {
		t.Fatalf("S=1 tile = %v, want Vw=12 Vk=8", rt1)
	}
}

func TestSolveRegisterTileRespectsBudget(t *testing.T) {
	for s := 1; s <= 11; s += 2 {
		for _, str := range []int{1, 2} {
			rt := SolveRegisterTile(s, str)
			if rt.Registers > simd.NumRegs {
				t.Fatalf("S=%d str=%d uses %d regs", s, str, rt.Registers)
			}
			if rt.Vw%4 != 0 || rt.Vk%4 != 0 {
				t.Fatalf("S=%d tile %v not register aligned", s, rt)
			}
			if rt.FAI <= 0 {
				t.Fatalf("S=%d non-positive FAI", s)
			}
		}
	}
}

// Property: the solver's tile is FAI-optimal over the feasible set.
func TestSolveRegisterTileOptimalProperty(t *testing.T) {
	f := func(sRaw, strRaw uint8) bool {
		s := int(sRaw)%7 + 1
		str := int(strRaw)%2 + 1
		best := SolveRegisterTile(s, str)
		for vk := 4; vk <= 128; vk += 4 {
			for vw := 4; vw <= 128; vw += 4 {
				if RegistersUsed(vw, vk, s) > simd.NumRegs {
					continue
				}
				if FAI(vw, vk, s, str) > best.FAI+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func layer3Shape(n int) conv.Shape {
	l, _ := conv.LayerByID(3) // 64x56x56, K=64, 3x3 s1
	return l.Shape.WithBatch(n)
}

func TestSolveCacheTilesSatisfyEquations(t *testing.T) {
	rt := SolveRegisterTile(3, 1)
	for _, p := range hw.Platforms {
		s := layer3Shape(p.Cores)
		ct := SolveCacheTiles(p, s, rt)
		if ct.Tc < 1 || ct.Tc > s.C {
			t.Fatalf("%s: Tc=%d out of range", p.Name, ct.Tc)
		}
		if ct.Tk < rt.Vk || ct.Tk%rt.Vk != 0 {
			t.Fatalf("%s: Tk=%d not a positive multiple of Vk", p.Name, ct.Tk)
		}
		if ct.Th < 1 || ct.Th > s.P() {
			t.Fatalf("%s: Th=%d out of range", p.Name, ct.Th)
		}
		// Equation 1 must hold when Tc is not clamped to C.
		wIn := (rt.Vw-1)*s.Str + s.S
		lhs1 := s.R*ct.Tc*wIn + 2*rt.Vk*ct.Tc*s.R*s.S
		if ct.Tc < s.C && lhs1 >= p.L1.SizeBytes/4 {
			t.Fatalf("%s: Equation 1 violated: %d >= %d", p.Name, lhs1, p.L1.SizeBytes/4)
		}
	}
}

func TestSolveCacheTilesLargerL1GivesLargerTc(t *testing.T) {
	rt := SolveRegisterTile(3, 1)
	s := conv.Shape{N: 1, C: 4096, H: 56, W: 56, K: 4096, R: 3, S: 3, Str: 1, Pad: 1}
	small := SolveCacheTiles(hw.Phytium2000, s, rt) // 32 KB L1
	big := SolveCacheTiles(hw.KP920, s, rt)         // 64 KB L1
	if big.Tc <= small.Tc {
		t.Fatalf("KP920 Tc=%d should exceed Phytium Tc=%d", big.Tc, small.Tc)
	}
}

func TestThreadFAIMatchesEquation5(t *testing.T) {
	s := conv.Shape{N: 64, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	alpha := 2.0
	ptn := 8
	nhw := float64(64 * 56 * 56)
	krs := float64(64 * 3 * 3)
	want := 1 / (float64(ptn)/nhw + alpha/(krs*float64(ptn)))
	got := ThreadFAI(s, alpha, ptn)
	if d := got/want - 1; d > 1e-12 || d < -1e-12 {
		t.Fatalf("ThreadFAI = %v, want %v", got, want)
	}
}

func TestOptimalPTnEquation6(t *testing.T) {
	// PTn* = ceil(sqrt(alpha*N*H*W/(K*R*S*str^2))).
	s := conv.Shape{N: 64, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	got := OptimalPTn(s, 2.0)
	// sqrt(2*64*56*56 / 576) = sqrt(696.9) = 26.4 -> 27.
	if got != 27 {
		t.Fatalf("OptimalPTn = %d, want 27", got)
	}
}

func TestSolveThreadMappingProducesValidGrid(t *testing.T) {
	for _, p := range hw.Platforms {
		for _, l := range conv.Table4 {
			s := l.Shape.WithBatch(p.Cores)
			m := SolveThreadMapping(s, p.Alpha, p.Cores, 8)
			if m.PTk*m.PTn > p.Cores {
				t.Fatalf("%s layer %d: PTk*PTn=%d exceeds PT=%d", p.Name, l.ID, m.PTk*m.PTn, p.Cores)
			}
			if m.PN*m.PH*m.PW != m.PTn {
				t.Fatalf("%s layer %d: PN*PH*PW=%d != PTn=%d", p.Name, l.ID, m.PN*m.PH*m.PW, m.PTn)
			}
			if m.PN > s.N || m.PH > s.P() || m.PW > s.Q() {
				t.Fatalf("%s layer %d: decomposition %v exceeds dims", p.Name, l.ID, m)
			}
			kBlocks := (s.K + 7) / 8
			if m.PTk > kBlocks {
				t.Fatalf("%s layer %d: PTk=%d exceeds K blocks %d", p.Name, l.ID, m.PTk, kBlocks)
			}
		}
	}
}

func TestSolveThreadMappingPrefersBatchParallelism(t *testing.T) {
	// Large batch, small K: Equation 6 pushes workers to PT_n and the
	// decomposition should saturate N first.
	s := conv.Shape{N: 64, C: 64, H: 56, W: 56, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	m := SolveThreadMapping(s, 2.0, 64, 8)
	if m.PTn < 32 {
		t.Fatalf("expected PTn-heavy mapping, got %v", m)
	}
	if m.PN < m.PH || m.PN < m.PW {
		t.Fatalf("N must have priority: %v", m)
	}
}

func TestSolveThreadMappingSmallK(t *testing.T) {
	// K=8, Vk=8 -> only one K block; PTk must be 1.
	s := conv.Shape{N: 4, C: 16, H: 32, W: 32, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	m := SolveThreadMapping(s, 2.0, 4, 8)
	if m.PTk != 1 {
		t.Fatalf("PTk = %d, want 1", m.PTk)
	}
}

func TestSolveThreadMappingDegenerate(t *testing.T) {
	s := conv.Shape{N: 1, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Str: 1, Pad: 0}
	m := SolveThreadMapping(s, 2.0, 64, 8)
	if m.PTk*m.PTn < 1 || m.PN*m.PH*m.PW != m.PTn {
		t.Fatalf("degenerate mapping invalid: %v", m)
	}
}

func TestSolveThreadMappingMaximisesEquation5(t *testing.T) {
	s := layer3Shape(64)
	m := SolveThreadMapping(s, 2.0, 64, 8)
	// No other feasible factorisation may beat the chosen FAI.
	for ptn := 1; ptn <= 64; ptn++ {
		if 64%ptn != 0 {
			continue
		}
		ptk := 64 / ptn
		if ptk > (s.K+7)/8 {
			continue
		}
		if _, _, _, ok := func() (int, int, int, bool) { return decomposePTn(ptn, s.N, s.P(), s.Q()) }(); !ok {
			continue
		}
		if ThreadFAI(s, 2.0, ptn) > m.FAI+1e-9 {
			t.Fatalf("factorisation PTn=%d beats solver (%v)", ptn, m)
		}
	}
}

func TestContinuousOptimumBoundsIntegerSolver(t *testing.T) {
	// The §5.2.3 Lagrangian relaxation upper-bounds every feasible
	// integer tile, and the integer optimum sits close to it.
	for _, s := range []int{1, 3, 5, 7} {
		vw, vk, fai := ContinuousOptimum(s, 1)
		if vw <= 0 || vk <= 0 {
			t.Fatalf("S=%d: degenerate continuous optimum", s)
		}
		integer := SolveRegisterTile(s, 1)
		if integer.FAI > fai+1e-6 {
			t.Fatalf("S=%d: integer FAI %.3f exceeds continuous bound %.3f", s, integer.FAI, fai)
		}
		if integer.FAI < 0.65*fai {
			t.Fatalf("S=%d: integer FAI %.3f too far below bound %.3f", s, integer.FAI, fai)
		}
	}
}

func TestContinuousOptimumS3Neighbourhood(t *testing.T) {
	// For the paper's 3x3 working example the continuous stationary
	// point sits near the reported 12x8 integer tile.
	vw, vk, _ := ContinuousOptimum(3, 1)
	if vw < 6 || vw > 24 || vk < 4 || vk > 16 {
		t.Fatalf("continuous optimum (%.1f, %.1f) far from the 12x8 region", vw, vk)
	}
}
