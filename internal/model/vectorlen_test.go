package model

import (
	"testing"
	"testing/quick"
)

func TestNEONFP32GeometryMatchesFixedSolver(t *testing.T) {
	for _, s := range []int{1, 3, 5, 7} {
		for _, str := range []int{1, 2} {
			fixed := SolveRegisterTile(s, str)
			generic := NEONFP32.SolveRegisterTile(s, str)
			if fixed != generic {
				t.Fatalf("S=%d str=%d: fixed %v vs generic %v", s, str, fixed, generic)
			}
		}
	}
}

func TestRegistersUsedVLMatchesFixed(t *testing.T) {
	if NEONFP32.RegistersUsedVL(12, 8, 3) != RegistersUsed(12, 8, 3) {
		t.Fatal("VL register count diverges from fixed-geometry count")
	}
}

func TestFP64TileSmaller(t *testing.T) {
	// With 2 lanes per register, the same 32-register budget holds a
	// smaller output tile; the solver must still fit and stay
	// lane-aligned.
	rt := NEONFP64.SolveRegisterTile(3, 1)
	if rt.Registers > 32 {
		t.Fatalf("FP64 tile busts the budget: %v", rt)
	}
	if rt.Vw%2 != 0 || rt.Vk%2 != 0 {
		t.Fatalf("FP64 tile not lane aligned: %v", rt)
	}
	fp32 := NEONFP32.SolveRegisterTile(3, 1)
	if rt.Vw*rt.Vk >= fp32.Vw*fp32.Vk {
		t.Fatalf("FP64 output tile (%dx%d) should hold fewer elements than FP32 (%dx%d)",
			rt.Vw, rt.Vk, fp32.Vw, fp32.Vk)
	}
}

func TestSVE512TileLarger(t *testing.T) {
	// §10.1: wider vectors -> larger tiles and higher FAI.
	sve := SVE512FP32.SolveRegisterTile(3, 1)
	neon := NEONFP32.SolveRegisterTile(3, 1)
	if sve.Registers > 32 {
		t.Fatalf("SVE tile busts the budget: %v", sve)
	}
	if sve.FAI <= neon.FAI {
		t.Fatalf("512-bit FAI (%.2f) should exceed 128-bit FAI (%.2f)", sve.FAI, neon.FAI)
	}
	if sve.Vw%16 != 0 || sve.Vk%16 != 0 {
		t.Fatalf("SVE tile not lane aligned: %v", sve)
	}
}

func TestAVX512MatchesSVE512(t *testing.T) {
	// Same geometry, same model output (the model is ISA-agnostic).
	if AVX512FP32.SolveRegisterTile(3, 1) != SVE512FP32.SolveRegisterTile(3, 1) {
		t.Fatal("identical geometries must give identical tiles")
	}
}

// Property: for every geometry and kernel width, the chosen tile is
// feasible and FAI-optimal over the lane-aligned feasible set.
func TestGeometrySolverOptimalProperty(t *testing.T) {
	geoms := []VectorGeometry{NEONFP32, NEONFP64, SVE512FP32, {Lanes: 8, NumRegs: 16}}
	f := func(sRaw, gRaw uint8) bool {
		s := int(sRaw)%7 + 1
		g := geoms[int(gRaw)%len(geoms)]
		best := g.SolveRegisterTile(s, 1)
		if best.Registers > g.NumRegs {
			return false
		}
		for vk := g.Lanes; vk <= g.NumRegs*g.Lanes; vk += g.Lanes {
			for vw := g.Lanes; vw <= g.NumRegs*g.Lanes; vw += g.Lanes {
				if g.RegistersUsedVL(vw, vk, s) > g.NumRegs {
					continue
				}
				if FAI(vw, vk, s, 1) > best.FAI+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
