// Package faultinject provides deterministic fault-injection points
// for the fault-tolerance layer: tests (or an operator, via the
// NDIRECT_FAULTS environment variable) arm a named point, and the
// instrumented code paths fire it at a chosen index — a worker panic
// in the parallel runtime, a corrupted autotune schedule, or a NaN
// poisoned into an output buffer.
//
// The disabled fast path is a single atomic load, so the hooks are
// safe to leave in hot code. Points are one-shot by default: a shot
// count is consumed per firing, which keeps an injected fault from
// re-triggering inside the very fallback path it is meant to exercise.
//
// Environment syntax (parsed once at init):
//
//	NDIRECT_FAULTS=point[=arg[:shots]][,point...]
//
// e.g. NDIRECT_FAULTS="worker-panic=0,nan-poison=7:2". arg is the
// index the point fires at (-1, the default, matches any index);
// shots is the number of firings (default 1, -1 unlimited).
package faultinject

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Injection point names understood by the instrumented packages.
const (
	// WorkerPanic makes a parallel worker (internal/parallel chunk or
	// internal/core thread-grid worker) panic at the armed index.
	WorkerPanic = "worker-panic"
	// ScheduleCorrupt corrupts the autotune schedule before its
	// validation, forcing the ErrBadSchedule path.
	ScheduleCorrupt = "schedule-corrupt"
	// NaNPoison writes a NaN into the output buffer at the armed
	// index after the optimised kernels finish, exercising the
	// numerical-fault detection and reference fallback.
	NaNPoison = "nan-poison"
	// WorkerStall blocks a parallel worker indefinitely at the armed
	// index (until Reset, which tests defer; in production, forever) —
	// the reproducible wedge behind the deadline/cancellation tests.
	WorkerStall = "worker-stall"
	// PackedCorrupt poisons one element of the pre-transformed
	// (packed) filter before a TryExecutePacked* run consumes it — the
	// packed-path twin of NaNPoison, exercising the non-finite
	// detection and reference fallback on persistent weights. The
	// armed argument is the element index to poison (clamped into the
	// buffer; negative picks element 0, which every run reads). The
	// corruption is applied to a run-private copy, so the shared
	// PackedFilter itself is never damaged.
	PackedCorrupt = "packed-corrupt"
	// WeightEvict forces the serving registry to evict a model's
	// resident packed weights in the middle of traffic (the consuming
	// hook sits at the top of Registry.Infer/Conv2D, before the request
	// executes). The next execution re-packs from the KCRS source —
	// bit-identically by construction — so an armed storm of evictions
	// must be invisible in the outputs while the weight-budget
	// accounting churns charge/release pairs under it.
	WeightEvict = "weight-evict"
	// WeightBitflip flips one mantissa bit of a packed-filter element
	// before a TryExecutePacked* run consumes it — the silent-DRAM-
	// corruption drill. The armed argument is the element index
	// (clamped; negative picks element 0). Unlike PackedCorrupt the
	// flipped value stays finite, so the non-finite output scan can
	// never catch it: only the pack-time CRC32-C can, and the firing
	// run force-verifies, so the corruption must surface as a typed
	// core.ErrIntegrity. Applied to a run-private copy; the shared
	// PackedFilter is never damaged.
	WeightBitflip = "weight-bitflip"
	// ScratchOverrun overwrites the guard word just past a worker's
	// packing scratch at the armed grid-slot index — the buffer-overrun
	// drill a miscompiled or assembly kernel motivates. The canary
	// check at run completion must detect it, fail the run typed with
	// core.ErrIntegrity, and quarantine the run state (its scratch is
	// never pooled again).
	ScratchOverrun = "scratch-overrun"
	// KernelMiscompute perturbs the output of the next kernel-family
	// probe (core.VerifyKernelFamily) by one unit — finite, small,
	// plausible — forcing a bit-exact divergence from the reference
	// oracle so the integrity sentinel quarantines the family. It fires
	// at the probe site only: live traffic always runs real kernels
	// (a real miscompute there is caught by the same probe pulling the
	// family before more traffic selects it).
	KernelMiscompute = "kernel-miscompute"
)

// knownPoints is the registry parse validates against: arming a name
// outside this set from the environment is a typo, not a new point.
var knownPoints = map[string]bool{
	WorkerPanic:      true,
	ScheduleCorrupt:  true,
	NaNPoison:        true,
	WorkerStall:      true,
	PackedCorrupt:    true,
	WeightEvict:      true,
	WeightBitflip:    true,
	ScratchOverrun:   true,
	KernelMiscompute: true,
}

type point struct {
	arg   int // index to fire at; <0 matches any index
	shots int // remaining firings; <0 means unlimited
}

var (
	mu      sync.Mutex
	points  = map[string]*point{}
	enabled atomic.Bool   // mirrors len(points) > 0 for the lock-free fast path
	stallC  chan struct{} // gate stalled workers block on; closed by Reset

	// warnf is the unknown-point warning sink; tests swap it to count
	// emissions. warnedUnknown rate-limits to one warning per name per
	// process — a soak harness re-parsing a storm spec with a typo must
	// not flood stderr. Both guarded by mu.
	warnf         = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format, args...) }
	warnedUnknown = map[string]bool{}
)

func storeEnabled(v bool) { enabled.Store(v) }
func loadEnabled() bool   { return enabled.Load() }

func init() {
	if env := os.Getenv("NDIRECT_FAULTS"); env != "" {
		if err := parse(env); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring NDIRECT_FAULTS: %v\n", err)
		}
	}
}

// parse arms points from the environment syntax documented above. A
// spec naming an unregistered point is a typo that would otherwise
// create a point that never fires: it is skipped with a warning to
// stderr (rate-limited to once per name) instead of being armed, and
// the remaining specs still apply.
func parse(env string) error {
	for _, spec := range strings.Split(env, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, rest, hasArg := strings.Cut(spec, "=")
		if !knownPoints[name] {
			warnUnknown(name)
			continue
		}
		arg, shots := -1, 1
		if hasArg {
			argStr, shotStr, hasShots := strings.Cut(rest, ":")
			v, err := strconv.Atoi(argStr)
			if err != nil {
				return fmt.Errorf("bad arg in %q: %v", spec, err)
			}
			arg = v
			if hasShots {
				v, err := strconv.Atoi(shotStr)
				if err != nil {
					return fmt.Errorf("bad shot count in %q: %v", spec, err)
				}
				shots = v
			}
		}
		ArmN(name, arg, shots)
	}
	return nil
}

// warnUnknown emits the unknown-point warning at most once per name.
func warnUnknown(name string) {
	mu.Lock()
	seen := warnedUnknown[name]
	warnedUnknown[name] = true
	w := warnf
	mu.Unlock()
	if seen {
		return
	}
	w("faultinject: skipping unknown point %q in NDIRECT_FAULTS (known: %s)\n",
		name, strings.Join(KnownPoints(), ", "))
}

// KnownPoints returns the registered point names in sorted order.
func KnownPoints() []string {
	names := make([]string, 0, len(knownPoints))
	for n := range knownPoints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Arm arms the named point for one firing at index arg (arg < 0
// matches any index).
func Arm(name string, arg int) { ArmN(name, arg, 1) }

// ArmN arms the named point for shots firings (shots < 0: unlimited).
func ArmN(name string, arg, shots int) {
	mu.Lock()
	defer mu.Unlock()
	if shots == 0 {
		delete(points, name)
	} else {
		points[name] = &point{arg: arg, shots: shots}
	}
	storeEnabled(len(points) > 0)
}

// Reset disarms every point and releases any worker blocked in a
// worker-stall. Tests defer this after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	clear(points)
	storeEnabled(false)
	if stallC != nil {
		close(stallC)
		stallC = nil
	}
}

// Enabled reports whether any point is armed — the single-atomic-load
// fast path the hooks check before doing any work.
func Enabled() bool { return loadEnabled() }

// Should reports whether the named point fires at index i, consuming
// one shot when it does.
func Should(name string, i int) bool {
	if !loadEnabled() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil || (p.arg >= 0 && p.arg != i) {
		return false
	}
	if p.shots > 0 {
		p.shots--
		if p.shots == 0 {
			delete(points, name)
			storeEnabled(len(points) > 0)
		}
	}
	return true
}

// Take consumes a shot of the named point regardless of index and
// returns its armed argument — for points whose argument is a payload
// (e.g. which output element to poison) rather than a firing index.
func Take(name string) (arg int, ok bool) {
	if !loadEnabled() {
		return 0, false
	}
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		return 0, false
	}
	if p.shots > 0 {
		p.shots--
		if p.shots == 0 {
			delete(points, name)
			storeEnabled(len(points) > 0)
		}
	}
	return p.arg, true
}

// Fire panics if the named point is armed for index i — the
// convenience hook the parallel runtime and the core thread grid call
// at worker entry.
func Fire(name string, i int) {
	if Should(name, i) {
		panic(fmt.Sprintf("faultinject: %s fired at index %d", name, i))
	}
}

// Stall blocks the calling goroutine if the named point is armed for
// index i — until Reset releases it (which tests defer), or forever
// when armed from the environment in a long-running process. It is
// the reproducible worker wedge behind the deadline tests: the caller
// is expected to be abandoned by a detached join, not to return.
func Stall(name string, i int) {
	if !Should(name, i) {
		return
	}
	mu.Lock()
	if stallC == nil {
		stallC = make(chan struct{})
	}
	gate := stallC
	mu.Unlock()
	<-gate
}
