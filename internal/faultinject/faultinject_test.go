package faultinject

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestDisarmedIsInert(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() must be false with no points armed")
	}
	if Should(WorkerPanic, 0) {
		t.Fatal("disarmed point must never fire")
	}
	if _, ok := Take(NaNPoison); ok {
		t.Fatal("Take on a disarmed point must report !ok")
	}
	Fire(WorkerPanic, 0) // must not panic
}

func TestArmMatchesOnlyItsIndex(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, 3)
	if !Enabled() {
		t.Fatal("Enabled() must be true after Arm")
	}
	if Should(WorkerPanic, 2) {
		t.Fatal("index 2 must not fire a point armed at 3")
	}
	if !Should(WorkerPanic, 3) {
		t.Fatal("index 3 must fire")
	}
	// One-shot: the firing consumed the point.
	if Should(WorkerPanic, 3) {
		t.Fatal("one-shot point fired twice")
	}
	if Enabled() {
		t.Fatal("Enabled() must drop back to false once all shots are spent")
	}
}

func TestWildcardArgMatchesAnyIndex(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, -1)
	if !Should(WorkerPanic, 7) {
		t.Fatal("wildcard arg must match any index")
	}
}

func TestArmNShots(t *testing.T) {
	defer Reset()
	ArmN(NaNPoison, 5, 2)
	for i := 0; i < 2; i++ {
		if arg, ok := Take(NaNPoison); !ok || arg != 5 {
			t.Fatalf("shot %d: arg = %d, ok = %v", i, arg, ok)
		}
	}
	if _, ok := Take(NaNPoison); ok {
		t.Fatal("third Take must miss: only two shots armed")
	}
}

func TestArmNUnlimited(t *testing.T) {
	defer Reset()
	ArmN(WorkerPanic, -1, -1)
	for i := 0; i < 10; i++ {
		if !Should(WorkerPanic, i) {
			t.Fatalf("unlimited point stopped firing at %d", i)
		}
	}
}

func TestArmNZeroShotsDisarms(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, -1)
	ArmN(WorkerPanic, -1, 0)
	if Enabled() || Should(WorkerPanic, 0) {
		t.Fatal("ArmN with zero shots must disarm the point")
	}
}

func TestPointsAreIndependent(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, -1)
	Arm(NaNPoison, 4)
	if !Should(WorkerPanic, 0) {
		t.Fatal("worker-panic must fire")
	}
	if !Enabled() {
		t.Fatal("nan-poison is still armed")
	}
	if arg, ok := Take(NaNPoison); !ok || arg != 4 {
		t.Fatalf("Take(nan-poison) = %d, %v", arg, ok)
	}
}

func TestFirePanicsWithPointName(t *testing.T) {
	defer Reset()
	Arm(WorkerPanic, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Fire on an armed index must panic")
		}
		if msg, _ := r.(string); !strings.Contains(msg, WorkerPanic) {
			t.Fatalf("panic message %q does not name the point", r)
		}
	}()
	Fire(WorkerPanic, 2)
}

func TestParseEnvSyntax(t *testing.T) {
	defer Reset()
	if err := parse("worker-panic=0, nan-poison=7:2 ,schedule-corrupt"); err != nil {
		t.Fatal(err)
	}
	if !Should(WorkerPanic, 0) {
		t.Fatal("worker-panic=0 must fire at index 0")
	}
	if arg, ok := Take(NaNPoison); !ok || arg != 7 {
		t.Fatalf("nan-poison = %d, %v; want 7, true", arg, ok)
	}
	if arg, ok := Take(NaNPoison); !ok || arg != 7 {
		t.Fatalf("second shot: %d, %v", arg, ok)
	}
	// Bare name: wildcard arg, one shot.
	if !Should(ScheduleCorrupt, 99) {
		t.Fatal("bare point must fire at any index")
	}
	if Enabled() {
		t.Fatal("all shots spent; Enabled() must be false")
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	defer Reset()
	for _, env := range []string{"worker-panic=x", "worker-panic=1:y"} {
		if err := parse(env); err == nil {
			t.Fatalf("parse(%q) must fail", env)
		}
	}
	// Empty segments are tolerated.
	if err := parse(","); err != nil {
		t.Fatal(err)
	}
}

// A spec naming an unregistered point is a typo: it must be skipped
// (never armed) while the valid specs in the same list still apply.
func TestParseSkipsUnknownPoints(t *testing.T) {
	defer Reset()
	if err := parse("wrker-panic=0,nan-poison=3"); err != nil {
		t.Fatal(err)
	}
	if Should("wrker-panic", 0) {
		t.Fatal("misspelled point must not be armed")
	}
	if arg, ok := Take(NaNPoison); !ok || arg != 3 {
		t.Fatalf("valid spec after the typo must still arm: %d, %v", arg, ok)
	}
}

func TestParseUnknownOnlySpecArmsNothing(t *testing.T) {
	defer Reset()
	if err := parse("no-such-point"); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("an unknown-only spec must leave injection disabled")
	}
}

// The unknown-point warning must actually be emitted, name the typo
// and the known points, and be rate-limited to one emission per name
// no matter how many times a spec naming it is re-parsed (a soak
// harness re-arming a storm list with a typo every 150ms must not
// flood stderr).
func TestUnknownPointWarningRateLimited(t *testing.T) {
	defer Reset()
	var warnings []string
	mu.Lock()
	prevWarnf := warnf
	warnf = func(format string, args ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	delete(warnedUnknown, "no-such-point")
	delete(warnedUnknown, "also-missing")
	mu.Unlock()
	defer func() {
		mu.Lock()
		warnf = prevWarnf
		mu.Unlock()
	}()

	for i := 0; i < 5; i++ {
		if err := parse("no-such-point=1,worker-panic=0"); err != nil {
			t.Fatal(err)
		}
	}
	if len(warnings) != 1 {
		t.Fatalf("5 parses of the same typo emitted %d warnings, want exactly 1: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], `"no-such-point"`) || !strings.Contains(warnings[0], WorkerPanic) {
		t.Fatalf("warning %q must name the typo and list the known points", warnings[0])
	}
	// A different typo still gets its own (single) warning.
	if err := parse("also-missing"); err != nil {
		t.Fatal(err)
	}
	if len(warnings) != 2 || !strings.Contains(warnings[1], `"also-missing"`) {
		t.Fatalf("a new typo must warn once more: %q", warnings)
	}
	// The valid spec in the same list was still armed every parse.
	if !Should(WorkerPanic, 0) {
		t.Fatal("valid spec alongside the typo must still arm")
	}
}

func TestKnownPointsSortedAndComplete(t *testing.T) {
	got := KnownPoints()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("KnownPoints not sorted: %v", got)
	}
	want := map[string]bool{WorkerPanic: true, ScheduleCorrupt: true, NaNPoison: true, WorkerStall: true, PackedCorrupt: true, WeightEvict: true,
		WeightBitflip: true, ScratchOverrun: true, KernelMiscompute: true}
	if len(got) != len(want) {
		t.Fatalf("KnownPoints = %v, want the %d registered names", got, len(want))
	}
	for _, n := range got {
		if !want[n] {
			t.Fatalf("unexpected point %q", n)
		}
	}
}

// Stall must block an armed caller until Reset releases it, and must
// be a no-op when disarmed or armed for a different index.
func TestStallBlocksUntilReset(t *testing.T) {
	defer Reset()
	Stall(WorkerStall, 0) // disarmed: returns immediately

	Arm(WorkerStall, 2)
	Stall(WorkerStall, 1) // wrong index: returns immediately

	Arm(WorkerStall, 2)
	released := make(chan struct{})
	go func() {
		Stall(WorkerStall, 2)
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("stalled goroutine must not run before Reset")
	case <-time.After(20 * time.Millisecond):
	}
	Reset()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("Reset must release the stalled goroutine")
	}
}
