package fft

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

func TestFFT1DImpulse(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT1D(x, false)
	for i, v := range x {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFT1DKnownSine(t *testing.T) {
	// A pure complex exponential at bin 1 transforms to a single
	// spike of magnitude N at bin 1.
	const n = 16
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * float64(i) / n
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	FFT1D(x, false)
	for i, v := range x {
		want := 0.0
		if i == 1 {
			want = n
		}
		if math.Abs(real(v)-want) > 1e-9 || math.Abs(imag(v)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFT1DNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length 6")
		}
	}()
	FFT1D(make([]complex128, 6), false)
}

func TestFFT1DRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (uint(rng.Intn(6)) + 1)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
			orig[i] = x[i]
		}
		FFT1D(x, false)
		FFT1D(x, true)
		for i := range x {
			if math.Abs(real(x[i])-real(orig[i])) > 1e-10 ||
				math.Abs(imag(x[i])-imag(orig[i])) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFT1DParseval(t *testing.T) {
	// Energy conservation: Σ|x|² = (1/N)·Σ|x̂|².
	const n = 32
	rng := rand.New(rand.NewSource(7))
	x := make([]complex128, n)
	var e1 float64
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
		e1 += real(x[i]) * real(x[i])
	}
	FFT1D(x, false)
	var e2 float64
	for _, v := range x {
		e2 += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(e1-e2/n) > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", e1, e2/n)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	const h, w = 8, 16
	rng := rand.New(rand.NewSource(3))
	x := make([]complex128, h*w)
	orig := make([]complex128, h*w)
	for i := range x {
		x[i] = complex(rng.Float64(), 0)
		orig[i] = x[i]
	}
	FFT2D(x, h, w, false)
	FFT2D(x, h, w, true)
	for i := range x {
		if math.Abs(real(x[i])-real(orig[i])) > 1e-10 {
			t.Fatalf("round trip broke at %d", i)
		}
	}
}

func TestFrameSizeAndFootprint(t *testing.T) {
	s := conv.Shape{N: 1, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	fh, fw := FrameSize(s)
	if fh != 64 || fw != 64 {
		t.Fatalf("frame = %dx%d, want 64x64", fh, fw)
	}
	// (C + K*C + 1) * 64*64 * 16 bytes ≈ 0.27 GB: the memory pressure
	// §2.1 cites, vs ~1.6 MB for the direct working set.
	fb := FootprintBytes(s)
	if fb < 250<<20 || fb > 300<<20 {
		t.Fatalf("footprint = %d bytes", fb)
	}
}

const tol = 2e-4

func checkConv(t *testing.T, s conv.Shape) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C))
	f := s.NewFilter()
	f.FillRandom(int64(s.K))
	want := conv.Reference(s, in, f)
	got := Conv2D(s, in, f, Options{Threads: 2})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v: rel diff %g", s, d)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	checkConv(t, conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 2, C: 3, H: 10, W: 10, K: 5, R: 3, S: 3, Str: 1, Pad: 0})
	checkConv(t, conv.Shape{N: 1, C: 2, H: 9, W: 7, K: 3, R: 5, S: 5, Str: 1, Pad: 2})
	checkConv(t, conv.Shape{N: 1, C: 2, H: 8, W: 8, K: 2, R: 1, S: 1, Str: 1, Pad: 0})
}

func TestConv2DStride2(t *testing.T) {
	// Strided FFT conv subsamples the full correlation.
	checkConv(t, conv.Shape{N: 1, C: 3, H: 12, W: 12, K: 4, R: 3, S: 3, Str: 2, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 3, H: 14, W: 14, K: 2, R: 7, S: 7, Str: 2, Pad: 3})
}

func TestConv2DThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	a := Conv2D(s, in, f, Options{Threads: 1})
	b := Conv2D(s, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) > 1e-6 {
		t.Fatal("threading changed FFT conv result")
	}
}
