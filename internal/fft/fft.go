// Package fft implements FFT-based convolution — the second fast
// algorithm §2.1 discusses and excludes ("the two methods can
// increase the memory pressure and reduce the prediction accuracy",
// "FFT and Winograd ... have limited applications"). It completes the
// repository's coverage of the four CONV implementation strategies
// the paper enumerates (direct, im2col+GEMM, FFT, Winograd).
//
// The implementation is the textbook spectral method: pad each input
// channel and filter to a power-of-two frame, transform with an
// iterative radix-2 Cooley–Tukey FFT, reduce over channels with
// pointwise complex multiply (correlation uses the conjugated filter
// spectrum), inverse-transform, and sample the valid region with the
// stride. The paper's two criticisms are directly observable here:
// FootprintBytes quantifies the spectral memory blow-up, and the
// round trip through the frequency domain carries more FP error than
// direct summation.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// FFT1D computes the in-place radix-2 decimation-in-time transform of
// x (len(x) must be a power of two). inverse selects the inverse
// transform (including the 1/N scale).
func FFT1D(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// FFT2D transforms an h×w row-major frame in place (h, w powers of
// two): rows first, then columns.
func FFT2D(x []complex128, h, w int, inverse bool) {
	for r := 0; r < h; r++ {
		FFT1D(x[r*w:(r+1)*w], inverse)
	}
	col := make([]complex128, h)
	for c := 0; c < w; c++ {
		for r := 0; r < h; r++ {
			col[r] = x[r*w+c]
		}
		FFT1D(col, inverse)
		for r := 0; r < h; r++ {
			x[r*w+c] = col[r]
		}
	}
}

// nextPow2 returns the smallest power of two ≥ v.
func nextPow2(v int) int {
	n := 1
	for n < v {
		n <<= 1
	}
	return n
}

// FrameSize returns the spectral frame dimensions for a shape: the
// padded input (H+2·Pad, W+2·Pad) rounded up to powers of two (linear
// correlation needs room for the kernel overhang, which the padding
// rows already provide; the pow-2 rounding covers the wrap).
func FrameSize(s conv.Shape) (fh, fw int) {
	return nextPow2(s.H + 2*s.Pad + s.R), nextPow2(s.W + 2*s.Pad + s.S)
}

// FootprintBytes returns the spectral working set (complex128 frames)
// of a convolution: C input spectra + K·C filter spectra + one
// accumulator frame — the "memory pressure" §2.1 cites. For ResNet-50
// layer 3 this is ≈ 0.5 GB where the direct working set is ≈ 1.6 MB.
func FootprintBytes(s conv.Shape) int64 {
	fh, fw := FrameSize(s)
	frames := int64(s.C) + int64(s.K)*int64(s.C) + 1
	return frames * int64(fh) * int64(fw) * 16
}

// Options configure the baseline.
type Options struct {
	Threads int
}

// Conv2D convolves NCHW input with a KCRS filter through the
// frequency domain. Any kernel size and stride are supported (stride
// subsamples the full correlation — the inefficiency that makes FFT
// unattractive for strided layers, per the paper's citation of Huang
// et al.).
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	conv.CheckOperands(s, in, filter)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	fh, fw := FrameSize(s)
	frame := fh * fw
	p, q := s.P(), s.Q()
	out := s.NewOutput()

	// Filter spectra F̂[k][c], conjugated for correlation.
	fSpec := make([]complex128, s.K*s.C*frame)
	parallel.MustFor(s.K*s.C, threads, func(kc int) {
		k, c := kc/s.C, kc%s.C
		buf := fSpec[kc*frame : (kc+1)*frame]
		for r := 0; r < s.R; r++ {
			for ss := 0; ss < s.S; ss++ {
				buf[r*fw+ss] = complex(float64(filter.At(k, c, r, ss)), 0)
			}
		}
		FFT2D(buf, fh, fw, false)
		for i := range buf {
			buf[i] = cmplx.Conj(buf[i])
		}
	})

	// Per image: input spectra, channel-reduced products, inverse.
	for n := 0; n < s.N; n++ {
		inSpec := make([]complex128, s.C*frame)
		parallel.MustFor(s.C, threads, func(c int) {
			buf := inSpec[c*frame : (c+1)*frame]
			for ih := 0; ih < s.H; ih++ {
				for iw := 0; iw < s.W; iw++ {
					// Embed at (pad, pad) so output (0,0) aligns with
					// frame (0,0) after correlation.
					buf[(ih+s.Pad)*fw+(iw+s.Pad)] = complex(float64(in.At(n, c, ih, iw)), 0)
				}
			}
			FFT2D(buf, fh, fw, false)
		})
		parallel.MustFor(s.K, threads, func(k int) {
			acc := make([]complex128, frame)
			for c := 0; c < s.C; c++ {
				is := inSpec[c*frame:]
				fs := fSpec[(k*s.C+c)*frame:]
				for i := 0; i < frame; i++ {
					acc[i] += is[i] * fs[i]
				}
			}
			FFT2D(acc, fh, fw, true)
			for oj := 0; oj < p; oj++ {
				for oi := 0; oi < q; oi++ {
					out.Set(float32(real(acc[(oj*s.Str)*fw+oi*s.Str])), n, k, oj, oi)
				}
			}
		})
	}
	return out
}
