package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// Model builders for the end-to-end evaluation networks (§8.3):
// ResNet-50/101 (He et al.) and VGG-16/19 (Simonyan & Zisserman).
// Weights are deterministic He-initialised noise; BN parameters are
// identity (γ=1, β=0, μ=0, σ²=1) so activations stay numerically
// bounded through deep stacks.

type builder struct {
	rng *rand.Rand
}

func (b *builder) convUnit(name string, c, k, hw, rs, str, pad int, relu bool, withBN bool) *ConvUnit {
	shape := conv.Shape{N: 1, C: c, H: hw, W: hw, K: k, R: rs, S: rs, Str: str, Pad: pad}
	w := shape.NewFilter()
	heInit(w, c*rs*rs, b.rng)
	u := &ConvUnit{LayerName: name, Shape: shape, Weights: w, ReLU: relu}
	if withBN {
		u.BN = identityBN(k)
	} else {
		u.Bias = make([]float32, k) // zero bias, VGG style
	}
	return u
}

func (b *builder) fc(name string, in, out int, relu bool) *FC {
	w := tensor.New(out, in)
	heInit(w, in, b.rng)
	return &FC{LayerName: name, In: in, Out: out, W: w, B: make([]float32, out), ReLU: relu}
}

// --- ResNet ---

// Bottleneck is the ResNet 1×1→3×3→1×1 residual block with an
// optional projection shortcut.
type Bottleneck struct {
	LayerName           string
	Conv1, Conv2, Conv3 *ConvUnit
	Downsample          *ConvUnit // nil for identity shortcuts
}

func (bk *Bottleneck) Name() string { return bk.LayerName }

func (bk *Bottleneck) sublayers() []Layer {
	ls := []Layer{bk.Conv1, bk.Conv2, bk.Conv3}
	if bk.Downsample != nil {
		ls = append(ls, bk.Downsample)
	}
	return ls
}

func (bk *Bottleneck) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := bk.tryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", bk.LayerName, err))
	}
	return out
}

func (bk *Bottleneck) tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	identity := x
	if bk.Downsample != nil {
		var err error
		identity, err = bk.Downsample.tryForward(eng, x)
		if err != nil {
			return nil, err
		}
	}
	y1, err := bk.Conv1.tryForward(eng, x)
	if err != nil {
		return nil, err
	}
	y2, err := bk.Conv2.tryForward(eng, y1)
	if err != nil {
		return nil, err
	}
	eng.release(y1)
	y3, err := bk.Conv3.tryForward(eng, y2) // no ReLU inside: applied after the add
	if err != nil {
		return nil, err
	}
	eng.release(y2)
	addInPlace(y3, identity, eng.Threads)
	applyReLU(y3, eng.Threads)
	if identity != x {
		eng.release(identity) // the projection output dies with the add
	}
	return y3, nil
}

// BasicBlock is the two-3×3 residual block (unused by ResNet-50/101
// but provided for ResNet-18/34-style networks).
type BasicBlock struct {
	LayerName    string
	Conv1, Conv2 *ConvUnit
	Downsample   *ConvUnit
}

func (bb *BasicBlock) Name() string { return bb.LayerName }

func (bb *BasicBlock) sublayers() []Layer {
	ls := []Layer{bb.Conv1, bb.Conv2}
	if bb.Downsample != nil {
		ls = append(ls, bb.Downsample)
	}
	return ls
}

func (bb *BasicBlock) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := bb.tryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", bb.LayerName, err))
	}
	return out
}

func (bb *BasicBlock) tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	identity := x
	if bb.Downsample != nil {
		var err error
		identity, err = bb.Downsample.tryForward(eng, x)
		if err != nil {
			return nil, err
		}
	}
	y1, err := bb.Conv1.tryForward(eng, x)
	if err != nil {
		return nil, err
	}
	y2, err := bb.Conv2.tryForward(eng, y1)
	if err != nil {
		return nil, err
	}
	eng.release(y1)
	addInPlace(y2, identity, eng.Threads)
	applyReLU(y2, eng.Threads)
	if identity != x {
		eng.release(identity)
	}
	return y2, nil
}

func addInPlace(dst, src *tensor.Tensor, threads int) {
	if dst.Len() != src.Len() {
		panic(fmt.Sprintf("nn: residual shape mismatch %v vs %v", dst.Dims, src.Dims))
	}
	d, s := dst.Data, src.Data
	for i := range d {
		d[i] += s[i]
	}
	_ = threads
}

// resNet builds a bottleneck ResNet with the given stage depths
// ([3,4,6,3] → ResNet-50, [3,4,23,3] → ResNet-101).
func resNet(name string, depths [4]int) *Network {
	b := &builder{rng: rand.New(rand.NewSource(42))}
	net := &Network{Name: name}
	net.Layers = append(net.Layers,
		b.convUnit("conv1", 3, 64, 224, 7, 2, 3, true, true),
		&MaxPool{K: 3, Str: 2, Pad: 1},
	)
	inC := 64
	hw := 56
	width := 64
	for stage := 0; stage < 4; stage++ {
		outC := width * 4
		for blk := 0; blk < depths[stage]; blk++ {
			str := 1
			if stage > 0 && blk == 0 {
				str = 2
			}
			inHW := hw
			if blk == 0 && stage > 0 {
				inHW = hw * 2 // the first block of the stage downsamples
			}
			// ResNet v1.5 block (the variant Table 4's shapes come
			// from): the downsampling stride sits on the 3×3.
			bn := &Bottleneck{LayerName: fmt.Sprintf("stage%d_block%d", stage+1, blk)}
			bn.Conv1 = b.convUnit(bn.LayerName+"_1x1a", inC, width, inHW, 1, 1, 0, true, true)
			bn.Conv2 = b.convUnit(bn.LayerName+"_3x3", width, width, inHW, 3, str, 1, true, true)
			bn.Conv3 = b.convUnit(bn.LayerName+"_1x1b", width, outC, hw, 1, 1, 0, false, true)
			if inC != outC || str != 1 {
				bn.Downsample = b.convUnit(bn.LayerName+"_proj", inC, outC, inHW, 1, str, 0, false, true)
			}
			net.Layers = append(net.Layers, bn)
			inC = outC
		}
		if stage < 3 {
			width *= 2
			hw /= 2
		}
	}
	net.Layers = append(net.Layers,
		GlobalAvgPool{},
		b.fc("fc1000", 2048, 1000, false),
		Softmax{},
	)
	return net
}

// ResNet50 builds the ResNet-50 inference graph.
func ResNet50() *Network { return resNet("ResNet-50", [4]int{3, 4, 6, 3}) }

// ResNet101 builds the ResNet-101 inference graph.
func ResNet101() *Network { return resNet("ResNet-101", [4]int{3, 4, 23, 3}) }

// --- VGG ---

// vgg builds VGG-16 ([2,2,3,3,3]) or VGG-19 ([2,2,4,4,4]).
func vgg(name string, convsPerStage [5]int) *Network {
	b := &builder{rng: rand.New(rand.NewSource(43))}
	net := &Network{Name: name}
	channels := [5]int{64, 128, 256, 512, 512}
	hw := 224
	inC := 3
	for stage := 0; stage < 5; stage++ {
		for cl := 0; cl < convsPerStage[stage]; cl++ {
			name := fmt.Sprintf("conv%d_%d", stage+1, cl+1)
			net.Layers = append(net.Layers,
				b.convUnit(name, inC, channels[stage], hw, 3, 1, 1, true, false))
			inC = channels[stage]
		}
		net.Layers = append(net.Layers, &MaxPool{K: 2, Str: 2})
		hw /= 2
	}
	net.Layers = append(net.Layers,
		b.fc("fc6", 512*7*7, 4096, true),
		b.fc("fc7", 4096, 4096, true),
		b.fc("fc8", 4096, 1000, false),
		Softmax{},
	)
	return net
}

// VGG16 builds the VGG-16 inference graph.
func VGG16() *Network { return vgg("VGG-16", [5]int{2, 2, 3, 3, 3}) }

// VGG19 builds the VGG-19 inference graph.
func VGG19() *Network { return vgg("VGG-19", [5]int{2, 2, 4, 4, 4}) }

// ByName returns a model builder by its evaluation name.
func ByName(name string) (*Network, bool) {
	switch name {
	case "resnet50", "Res50", "ResNet-50":
		return ResNet50(), true
	case "resnet101", "Res101", "ResNet-101":
		return ResNet101(), true
	case "vgg16", "VGG16", "VGG-16":
		return VGG16(), true
	case "vgg19", "VGG19", "VGG-19":
		return VGG19(), true
	case "mobilenet", "mobilenetv1", "MobileNet-v1":
		return MobileNetV1(), true
	case "resnet18", "ResNet-18":
		return ResNet18(), true
	case "resnet34", "ResNet-34":
		return ResNet34(), true
	}
	return nil, false
}

// --- MobileNet (§10.2) ---

// DepthwiseSeparable is the MobileNet/Xception building block: a
// per-channel 3×3 depthwise convolution (BN+ReLU) followed by a 1×1
// pointwise convolution (BN+ReLU). The depthwise stage always runs
// through nDirect's depthwise kernel (§10.2: "removing the reduction
// operations of dimension C in micro-kernels"); the pointwise stage
// uses the engine's configured backend like any other 1×1 unit.
type DepthwiseSeparable struct {
	LayerName string
	DWShape   conv.Shape     // depthwise geometry (K ignored)
	DWFilter  *tensor.Tensor // [C, 3, 3]
	DWBN      *BNParams
	PW        *ConvUnit // the 1×1 expansion

	// Fused serving state (separable.go): on a Reuse+nDirect engine the
	// block runs as one core.SeparablePlan — depthwise BN+ReLU in the
	// per-channel epilogue, pointwise epilogue at the store, row tiles
	// of depthwise output consumed from pooled scratch without ever
	// materialising the full intermediate. Bit-identical to the unfused
	// path below.
	dwEpOnce sync.Once
	dwEp     *core.EpilogueParams

	sepMemos [4]atomic.Pointer[sepMemoEntry]
	sepGen   atomic.Uint64

	sepMu       sync.Mutex
	sepPackedDW *core.PackedDepthwiseFilter
}

func (d *DepthwiseSeparable) Name() string { return d.LayerName }

func (d *DepthwiseSeparable) sublayers() []Layer { return []Layer{d.PW} }

func (d *DepthwiseSeparable) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := d.tryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", d.LayerName, err))
	}
	return out
}

func (d *DepthwiseSeparable) tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	if out, handled, err := d.tryFused(eng, x); handled {
		return out, err
	}
	// Unfused composition: depthwise plane loop, separate BN/ReLU
	// sweeps, then the pointwise unit on the materialised intermediate.
	// This is the reference behaviour the fused path is bit-identical
	// to, and the quarantine/degradation route (ForceReference engines
	// land here with the pointwise unit on its reference rung).
	s := d.DWShape.WithBatch(x.Dims[0])
	y, err := core.TryDepthwiseConv2D(s, x, d.DWFilter, core.Options{Threads: eng.Threads})
	if err != nil {
		return nil, err
	}
	applyBN(y, d.DWBN, eng.Threads)
	applyReLU(y, eng.Threads)
	out, err := d.PW.tryForward(eng, y)
	if err != nil {
		return nil, err
	}
	if out != y {
		eng.release(y)
	}
	return out, nil
}

func (b *builder) dsc(name string, c, k, hw, str int) *DepthwiseSeparable {
	dw := tensor.New(c, 3, 3)
	heInit(dw, 9, b.rng)
	outHW := (hw+2-3)/str + 1
	return &DepthwiseSeparable{
		LayerName: name,
		DWShape:   conv.Shape{N: 1, C: c, H: hw, W: hw, K: c, R: 3, S: 3, Str: str, Pad: 1},
		DWFilter:  dw,
		DWBN:      identityBN(c),
		PW:        b.convUnit(name+"_pw", c, k, outHW, 1, 1, 0, true, true),
	}
}

// MobileNetV1 builds the standard MobileNet v1 (width 1.0) inference
// graph — the §10.2 depthwise-separable workload.
func MobileNetV1() *Network {
	b := &builder{rng: rand.New(rand.NewSource(44))}
	net := &Network{Name: "MobileNet-v1"}
	net.Layers = append(net.Layers, b.convUnit("conv1", 3, 32, 224, 3, 2, 1, true, true))
	cfg := []struct{ c, k, hw, str int }{
		{32, 64, 112, 1},
		{64, 128, 112, 2},
		{128, 128, 56, 1},
		{128, 256, 56, 2},
		{256, 256, 28, 1},
		{256, 512, 28, 2},
		{512, 512, 14, 1}, {512, 512, 14, 1}, {512, 512, 14, 1},
		{512, 512, 14, 1}, {512, 512, 14, 1},
		{512, 1024, 14, 2},
		{1024, 1024, 7, 1},
	}
	for i, blk := range cfg {
		net.Layers = append(net.Layers, b.dsc(fmt.Sprintf("dsc%d", i+1), blk.c, blk.k, blk.hw, blk.str))
	}
	net.Layers = append(net.Layers,
		GlobalAvgPool{},
		b.fc("fc1000", 1024, 1000, false),
		Softmax{},
	)
	return net
}

// resNetBasic builds a basic-block ResNet ([2,2,2,2] → ResNet-18,
// [3,4,6,3] → ResNet-34).
func resNetBasic(name string, depths [4]int) *Network {
	b := &builder{rng: rand.New(rand.NewSource(45))}
	net := &Network{Name: name}
	net.Layers = append(net.Layers,
		b.convUnit("conv1", 3, 64, 224, 7, 2, 3, true, true),
		&MaxPool{K: 3, Str: 2, Pad: 1},
	)
	inC := 64
	hw := 56
	width := 64
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < depths[stage]; blk++ {
			str := 1
			if stage > 0 && blk == 0 {
				str = 2
			}
			inHW := hw
			if blk == 0 && stage > 0 {
				inHW = hw * 2
			}
			bb := &BasicBlock{LayerName: fmt.Sprintf("stage%d_block%d", stage+1, blk)}
			bb.Conv1 = b.convUnit(bb.LayerName+"_3x3a", inC, width, inHW, 3, str, 1, true, true)
			bb.Conv2 = b.convUnit(bb.LayerName+"_3x3b", width, width, hw, 3, 1, 1, false, true)
			if inC != width || str != 1 {
				bb.Downsample = b.convUnit(bb.LayerName+"_proj", inC, width, inHW, 1, str, 0, false, true)
			}
			net.Layers = append(net.Layers, bb)
			inC = width
		}
		if stage < 3 {
			width *= 2
			hw /= 2
		}
	}
	net.Layers = append(net.Layers,
		GlobalAvgPool{},
		b.fc("fc1000", 512, 1000, false),
		Softmax{},
	)
	return net
}

// ResNet18 builds the ResNet-18 inference graph (basic blocks).
func ResNet18() *Network { return resNetBasic("ResNet-18", [4]int{2, 2, 2, 2}) }

// ResNet34 builds the ResNet-34 inference graph (basic blocks).
func ResNet34() *Network { return resNetBasic("ResNet-34", [4]int{3, 4, 6, 3}) }
