package nn

import (
	"strings"
	"sync"
	"testing"

	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// A corrupted Ansor schedule must not take a network forward pass
// down: the layer is logged and rerun on the nDirect backend, and the
// activations match the healthy nDirect run.
func TestAnsorBackendDegradesToNDirect(t *testing.T) {
	defer faultinject.Reset()
	old := core.Logf
	var mu sync.Mutex
	var logs []string
	core.Logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, format)
		mu.Unlock()
		t.Logf("(captured) "+format, args...)
	}
	t.Cleanup(func() { core.Logf = old })

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		&MaxPool{K: 2, Str: 2},
		b.convUnit("c2", 8, 16, 8, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)

	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	faultinject.ArmN(faultinject.ScheduleCorrupt, -1, -1) // every Ansor layer faults
	got := net.Forward(&Engine{Algo: AlgoAnsor, Threads: 2}, x)
	faultinject.Reset()

	if d := tensor.RelDiff(want, got); d > 1e-5 {
		t.Fatalf("degraded forward pass diverges: rel diff %g", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(strings.Join(logs, "\n"), "falling back to ndirect") {
		t.Fatal("the backend fallback must be logged")
	}
}
