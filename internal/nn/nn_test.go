package nn

import (
	"math"
	"math/rand"
	"testing"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

func builderForTest() *builder {
	return &builder{rng: rand.New(rand.NewSource(99))}
}

func TestConvUnitBackendsAgree(t *testing.T) {
	u := mkUnit(t, true, true)
	x := tensor.New(2, 4, 8, 8)
	x.FillRandom(1)
	ref := (&Engine{Algo: AlgoNDirect, Threads: 2}).runUnit(u, x)
	for _, algo := range []Algo{AlgoIm2col, AlgoAnsor, AlgoXSMM, AlgoXNN} {
		got := (&Engine{Algo: algo, Threads: 2}).runUnit(u, x)
		if d := tensor.RelDiff(ref, got); d > 1e-4 {
			t.Fatalf("%v disagrees with ndirect: %g", algo, d)
		}
	}
}

func (eng *Engine) runUnit(u *ConvUnit, x *tensor.Tensor) *tensor.Tensor {
	return u.Forward(eng, x)
}

func mkUnit(t *testing.T, withBN, relu bool) *ConvUnit {
	t.Helper()
	b := builderForTest()
	u := b.convUnit("test", 4, 8, 8, 3, 1, 1, relu, withBN)
	// Non-identity BN so folding is actually exercised.
	if withBN {
		for k := range u.BN.Gamma {
			u.BN.Gamma[k] = 1 + 0.1*float32(k)
			u.BN.Beta[k] = 0.05 * float32(k)
			u.BN.Mean[k] = 0.01 * float32(k)
			u.BN.Var[k] = 1 + 0.2*float32(k)
		}
	}
	return u
}

func TestFusedMatchesUnfused(t *testing.T) {
	u := mkUnit(t, true, true)
	x := tensor.New(1, 4, 8, 8)
	x.FillRandom(3)
	plain := u.Forward(&Engine{Algo: AlgoNDirect, Threads: 1}, x)
	uf := mkUnit(t, true, true)
	fused := uf.Forward(&Engine{Algo: AlgoNDirect, Threads: 1, Fuse: true}, x)
	if d := tensor.RelDiff(plain, fused); d > 1e-4 {
		t.Fatalf("fused BN/ReLU path differs: %g", d)
	}
	// Ansor fused epilogue too.
	ua := mkUnit(t, true, true)
	fusedA := ua.Forward(&Engine{Algo: AlgoAnsor, Threads: 1, Fuse: true}, x)
	if d := tensor.RelDiff(plain, fusedA); d > 1e-4 {
		t.Fatalf("ansor fused path differs: %g", d)
	}
}

func TestMaxPool(t *testing.T) {
	eng := &Engine{Threads: 1}
	x := tensor.New(1, 1, 4, 4)
	copy(x.Data, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	mp := &MaxPool{K: 2, Str: 2}
	y := mp.Forward(eng, x)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("maxpool = %v, want %v", y.Data, want)
		}
	}
	// Padded 3x3 stride 2 (the ResNet stem pool): output 2x2.
	mp2 := &MaxPool{K: 3, Str: 2, Pad: 1}
	y2 := mp2.Forward(eng, x)
	if y2.Dims[2] != 2 || y2.Dims[3] != 2 {
		t.Fatalf("padded pool dims %v", y2.Dims)
	}
	if y2.Data[0] != 6 || y2.Data[3] != 16 {
		t.Fatalf("padded pool values %v", y2.Data)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	eng := &Engine{Threads: 1}
	x := tensor.New(1, 2, 2, 2)
	copy(x.Data, []float32{1, 2, 3, 4, 10, 20, 30, 40})
	y := GlobalAvgPool{}.Forward(eng, x)
	if y.Data[0] != 2.5 || y.Data[1] != 25 {
		t.Fatalf("gap = %v", y.Data)
	}
}

func TestFC(t *testing.T) {
	eng := &Engine{Threads: 1}
	w := tensor.New(2, 3)
	copy(w.Data, []float32{1, 0, 0, 0, 1, 1})
	fc := &FC{LayerName: "fc", In: 3, Out: 2, W: w, B: []float32{0.5, -10}, ReLU: true}
	x := tensor.New(1, 3)
	copy(x.Data, []float32{2, 3, 4})
	y := fc.Forward(eng, x)
	// out0 = 2 + 0.5 = 2.5; out1 = 3+4-10 = -3 -> ReLU 0.
	if y.Data[0] != 2.5 || y.Data[1] != 0 {
		t.Fatalf("fc = %v", y.Data)
	}
}

func TestSoftmax(t *testing.T) {
	eng := &Engine{Threads: 1}
	x := tensor.New(1, 3)
	copy(x.Data, []float32{1, 2, 3})
	y := Softmax{}.Forward(eng, x)
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("softmax sum %v", sum)
	}
	if !(y.Data[2] > y.Data[1] && y.Data[1] > y.Data[0]) {
		t.Fatalf("softmax ordering broken: %v", y.Data)
	}
}

func TestResNet50Structure(t *testing.T) {
	net := ResNet50()
	shapes := net.ConvShapes()
	// ResNet-50 has 1+4 stage geometries worth of distinct conv
	// shapes; every Table 4 ResNet layer must appear among them.
	keys := map[string]bool{}
	for _, s := range shapes {
		keys[shapeKey(s)] = true
	}
	missing := 0
	for _, l := range conv.Table4[:23] {
		if !keys[shapeKey(l.Shape)] {
			missing++
			t.Errorf("Table 4 layer %d (%v) not found in ResNet-50 graph", l.ID, l.Shape)
		}
	}
	_ = missing
	// 53 conv units in ResNet-50 (1 stem + 16 blocks×3 + 4 projections).
	count := 0
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *ConvUnit:
				count++
			case *Bottleneck:
				walk(v.sublayers())
			}
		}
	}
	walk(net.Layers)
	if count != 53 {
		t.Fatalf("ResNet-50 has %d conv units, want 53", count)
	}
}

func TestResNet101Depth(t *testing.T) {
	net := ResNet101()
	count := 0
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *ConvUnit:
				count++
			case *Bottleneck:
				walk(v.sublayers())
			}
		}
	}
	walk(net.Layers)
	if count != 104 { // 1 + 33 blocks×3 + 4 projections
		t.Fatalf("ResNet-101 has %d conv units, want 104", count)
	}
}

func TestVGGStructure(t *testing.T) {
	keys := map[string]bool{}
	for _, s := range VGG16().ConvShapes() {
		keys[shapeKey(s)] = true
	}
	for _, l := range conv.VGGLayers() {
		if !keys[shapeKey(l.Shape)] {
			t.Errorf("Table 4 layer %d (%v) not in VGG-16 graph", l.ID, l.Shape)
		}
	}
	if len(VGG19().Layers) != len(VGG16().Layers)+3 {
		t.Fatal("VGG-19 must have three more conv layers than VGG-16")
	}
}

func TestResNet50ForwardRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full forward pass is slow")
	}
	net := ResNet50()
	eng := &Engine{Algo: AlgoNDirect, Threads: 4}
	x := tensor.New(1, 3, 224, 224)
	x.FillRandom(7)
	y := net.Forward(eng, x)
	if y.Dims[0] != 1 || y.Dims[1] != 1000 {
		t.Fatalf("output dims %v", y.Dims)
	}
	var sum float64
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite probability")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestEndToEndBackendsAgreeSmallNet(t *testing.T) {
	// A small custom net exercises cross-backend agreement end to end.
	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		&MaxPool{K: 2, Str: 2},
		b.convUnit("c2", 8, 16, 8, 3, 1, 1, true, true),
		GlobalAvgPool{},
		b.fc("fc", 16, 10, false),
		Softmax{},
	}}
	x := tensor.New(2, 3, 16, 16)
	x.FillRandom(11)
	ref := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)
	for _, algo := range []Algo{AlgoIm2col, AlgoAnsor, AlgoXSMM, AlgoXNN} {
		got := net.Forward(&Engine{Algo: algo, Threads: 2}, x)
		if d := tensor.RelDiff(ref, got); d > 1e-3 {
			t.Fatalf("%v end-to-end disagrees: %g", algo, d)
		}
	}
	// Fused nDirect and fused Ansor agree with unfused reference.
	fused := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2, Fuse: true}, x)
	if d := tensor.RelDiff(ref, fused); d > 1e-3 {
		t.Fatalf("fusion changed the result: %g", d)
	}
}

func TestEngineTuneFillsSchedules(t *testing.T) {
	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 4, 8, 8, 3, 1, 1, true, true),
	}}
	eng := &Engine{Algo: AlgoAnsor, Threads: 1}
	eng.Tune(net, autotune.TuneOptions{Population: 4, Generations: 1, Trials: 4, Seed: 5})
	if len(eng.Schedules) != 1 {
		t.Fatalf("expected 1 tuned schedule, got %d", len(eng.Schedules))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"resnet50", "resnet101", "vgg16", "vgg19"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("%s not resolved", name)
		}
	}
	if _, ok := ByName("alexnet"); ok {
		t.Fatal("unknown model resolved")
	}
}

func TestMobileNetV1Structure(t *testing.T) {
	net := MobileNetV1()
	// 1 stem + 13 pointwise units reachable through the DSC blocks.
	units := net.ConvUnits()
	if len(units) != 14 {
		t.Fatalf("MobileNet-v1 has %d conv units, want 14", len(units))
	}
	// Geometry chain: last pointwise is 1024 -> 1024 at 7x7.
	last := units[len(units)-1].Shape
	if last.C != 1024 || last.K != 1024 || last.H != 7 {
		t.Fatalf("last pointwise shape %v", last)
	}
	if _, ok := ByName("mobilenet"); !ok {
		t.Fatal("mobilenet not resolvable by name")
	}
}

func TestMobileNetV1ForwardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full MobileNet forward is slow")
	}
	net := MobileNetV1()
	eng := &Engine{Algo: AlgoNDirect, Threads: 4}
	x := tensor.New(1, 3, 224, 224)
	x.FillRandom(5)
	y := net.Forward(eng, x)
	if y.Dims[1] != 1000 {
		t.Fatalf("output dims %v", y.Dims)
	}
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestDepthwiseSeparableBlockShapes(t *testing.T) {
	b := builderForTest()
	blk := b.dsc("t", 8, 16, 16, 2)
	eng := &Engine{Algo: AlgoNDirect, Threads: 1}
	x := tensor.New(2, 8, 16, 16)
	x.FillRandom(1)
	y := blk.Forward(eng, x)
	want := []int{2, 16, 8, 8} // stride-2 depthwise halves, pointwise expands
	for i, d := range want {
		if y.Dims[i] != d {
			t.Fatalf("dims %v, want %v", y.Dims, want)
		}
	}
}

func TestForwardProfiled(t *testing.T) {
	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 12, 3, 1, 1, true, true),
		GlobalAvgPool{},
		b.fc("fc", 8, 4, false),
		Softmax{},
	}}
	eng := &Engine{Algo: AlgoNDirect, Threads: 1}
	x := tensor.New(1, 3, 12, 12)
	x.FillRandom(1)
	y, times := net.ForwardProfiled(eng, x)
	if len(times) != 4 {
		t.Fatalf("expected 4 layer timings, got %d", len(times))
	}
	if times[0].Name != "c1" || times[0].Seconds <= 0 {
		t.Fatalf("bad first timing: %+v", times[0])
	}
	if times[3].OutDims[1] != 4 || y.Dims[1] != 4 {
		t.Fatal("profiled output dims wrong")
	}
	// Profiled and plain forward agree.
	plain := net.Forward(eng, x)
	if d := tensor.RelDiff(plain, y); d > 1e-6 {
		t.Fatalf("profiled forward changed the result: %g", d)
	}
}

func TestResNet18And34Structure(t *testing.T) {
	count := func(net *Network) int { return len(net.ConvUnits()) }
	// ResNet-18: 1 stem + 8 blocks×2 + 3 projections = 20.
	if got := count(ResNet18()); got != 20 {
		t.Fatalf("ResNet-18 has %d conv units, want 20", got)
	}
	// ResNet-34: 1 + 16×2 + 3 = 36.
	if got := count(ResNet34()); got != 36 {
		t.Fatalf("ResNet-34 has %d conv units, want 36", got)
	}
}

func TestResNet18ForwardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full forward pass is slow")
	}
	net := ResNet18()
	eng := &Engine{Algo: AlgoNDirect, Threads: 4}
	x := tensor.New(1, 3, 224, 224)
	x.FillRandom(3)
	y := net.Forward(eng, x)
	if y.Dims[1] != 1000 {
		t.Fatalf("output dims %v", y.Dims)
	}
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
