package nn

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// captureLogs redirects core.Logf to a slice of formatted lines for
// the duration of the test.
func captureLogs(t *testing.T) (get func() []string) {
	t.Helper()
	old := core.Logf
	var mu sync.Mutex
	var logs []string
	core.Logf = func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		mu.Lock()
		logs = append(logs, line)
		mu.Unlock()
		t.Logf("(captured) %s", line)
	}
	t.Cleanup(func() { core.Logf = old })
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), logs...)
	}
}

// TestBreakerQuarantinesAndRestores is the ISSUE acceptance test: N
// consecutive backend failures open the breaker (dispatch goes
// straight to nDirect without invoking the backend), a timed half-open
// probe re-fails and re-opens while the fault persists, and once the
// fault clears a probe restores the backend.
func TestBreakerQuarantinesAndRestores(t *testing.T) {
	defer faultinject.Reset()
	getLogs := captureLogs(t)

	const threshold = 3
	const cooldown = 50 * time.Millisecond
	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	eng := &Engine{
		Algo:             AlgoAnsor,
		Threads:          2,
		BreakerThreshold: threshold,
		BreakerCooldown:  cooldown,
		LogInterval:      -1, // log every call: the test counts lines
	}
	forward := func(label string) {
		t.Helper()
		got, err := net.TryForward(eng, x)
		if err != nil {
			t.Fatalf("%s: forward errored: %v", label, err)
		}
		if d := tensor.RelDiff(want, got); d > 1e-5 {
			t.Fatalf("%s: output diverges from ndirect by %g", label, d)
		}
	}

	// ScheduleCorrupt hits only the Ansor executor, so the nDirect
	// fallback (and the rest of the pass) stays healthy however often
	// the fault fires.
	faultinject.ArmN(faultinject.ScheduleCorrupt, -1, -1)

	for i := 0; i < threshold; i++ {
		if st := eng.BreakerStats(AlgoAnsor); st.State != BreakerClosed {
			t.Fatalf("state = %v before failure %d, want closed", st.State, i)
		}
		forward(fmt.Sprintf("failure %d", i))
	}
	st := eng.BreakerStats(AlgoAnsor)
	if st.State != BreakerOpen || st.Trips != 1 {
		t.Fatalf("after %d failures: state = %v trips = %d, want open/1", threshold, st.State, st.Trips)
	}

	// While open, the backend is not invoked: the dispatch is a skip,
	// not another failure.
	forward("quarantined")
	if st := eng.BreakerStats(AlgoAnsor); st.Skips == 0 {
		t.Fatalf("no skip recorded while open: %+v", st)
	}

	// Cooldown elapses with the fault still armed: the half-open probe
	// invokes the backend once, fails, and re-opens.
	time.Sleep(cooldown + 10*time.Millisecond)
	forward("failed probe")
	st = eng.BreakerStats(AlgoAnsor)
	if st.Probes != 1 || st.Trips != 2 || st.State != BreakerOpen {
		t.Fatalf("after failed probe: %+v, want Probes=1 Trips=2 open", st)
	}

	// Fault clears; the next probe restores the backend.
	faultinject.Reset()
	time.Sleep(cooldown + 10*time.Millisecond)
	forward("successful probe")
	st = eng.BreakerStats(AlgoAnsor)
	if st.State != BreakerClosed || st.Restores != 1 || st.Probes != 2 {
		t.Fatalf("after successful probe: %+v, want closed Restores=1 Probes=2", st)
	}
	forward("restored")
	if st := eng.BreakerStats(AlgoAnsor); st.State != BreakerClosed || st.Trips != 2 {
		t.Fatalf("restored backend re-tripped without failures: %+v", st)
	}

	logs := strings.Join(getLogs(), "\n")
	if !strings.Contains(logs, "quarantined for") {
		t.Fatal("the quarantine transition must be logged")
	}
	if !strings.Contains(logs, "dispatching") {
		t.Fatal("quarantined dispatches must stay visible in the log")
	}
}

// TestBreakerDisabledByDefault: a zero-value engine keeps the seed
// behaviour — every call retries the backend, nothing is quarantined.
func TestBreakerDisabledByDefault(t *testing.T) {
	defer faultinject.Reset()
	captureLogs(t)

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)

	eng := &Engine{Algo: AlgoAnsor, Threads: 2, LogInterval: -1}
	faultinject.ArmN(faultinject.ScheduleCorrupt, -1, -1)
	for i := 0; i < 5; i++ {
		if _, err := net.TryForward(eng, x); err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
	}
	st := eng.BreakerStats(AlgoAnsor)
	if st.State != BreakerClosed || st.Trips != 0 || st.Skips != 0 {
		t.Fatalf("disabled breaker moved: %+v", st)
	}
}

// TestFallbackLogRateLimited: repeated fallbacks on one (backend,
// shape) emit one line per interval, and the next emission carries the
// suppressed count.
func TestFallbackLogRateLimited(t *testing.T) {
	defer faultinject.Reset()
	getLogs := captureLogs(t)

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)

	const interval = 300 * time.Millisecond
	eng := &Engine{Algo: AlgoAnsor, Threads: 2, LogInterval: interval}
	faultinject.ArmN(faultinject.ScheduleCorrupt, -1, -1)

	countFallbacks := func() int {
		n := 0
		for _, l := range getLogs() {
			if strings.Contains(l, "falling back to ndirect") {
				n++
			}
		}
		return n
	}

	const calls = 4
	for i := 0; i < calls; i++ {
		if _, err := net.TryForward(eng, x); err != nil {
			t.Fatalf("forward %d: %v", i, err)
		}
	}
	if got := countFallbacks(); got != 1 {
		t.Fatalf("%d fallback lines within one interval, want exactly 1", got)
	}

	// The interval rolls over: the next failure logs again, carrying
	// the count of the lines dropped above.
	time.Sleep(interval + 20*time.Millisecond)
	if _, err := net.TryForward(eng, x); err != nil {
		t.Fatal(err)
	}
	if got := countFallbacks(); got != 2 {
		t.Fatalf("%d fallback lines after the interval, want 2", got)
	}
	logs := getLogs()
	last := logs[len(logs)-1]
	if !strings.Contains(last, fmt.Sprintf("%d similar lines suppressed", calls-1)) {
		t.Fatalf("summary line %q lacks the suppressed count (%d)", last, calls-1)
	}
}
