// Package nn is a minimal CNN inference engine — the MXNet substitute
// of the end-to-end evaluation (§8.3). It runs NCHW networks built
// from conv/BN/ReLU/pool/FC layers with a selectable convolution
// backend:
//
//	AlgoNDirect — "MXNet+NDIRECT": the library-based integration
//	AlgoIm2col  — "MXNet+OpenBLAS": the framework default
//	AlgoAnsor   — the tuned-compiler configuration, which is also
//	              allowed to fuse operators (fold BN into conv
//	              weights, fuse bias+ReLU into the conv epilogue),
//	              reproducing the advantage §8.3 attributes to Ansor
//	              on bandwidth-limited machines
//	AlgoXSMM / AlgoXNN — available for completeness (the paper could
//	              not integrate them into MXNet; we can)
//
// Weights are synthetic (He-initialised, deterministic): end-to-end
// figures measure time, not accuracy.
package nn

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/gemm"
	"ndirect/internal/im2col"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
	"ndirect/internal/xnn"
	"ndirect/internal/xsmm"
)

// Algo selects the convolution backend.
type Algo int

const (
	AlgoNDirect Algo = iota
	AlgoIm2col
	AlgoAnsor
	AlgoXSMM
	AlgoXNN
)

func (a Algo) String() string {
	switch a {
	case AlgoNDirect:
		return "ndirect"
	case AlgoIm2col:
		return "im2col+gemm"
	case AlgoAnsor:
		return "ansor"
	case AlgoXSMM:
		return "libxsmm"
	case AlgoXNN:
		return "xnnpack"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// Engine carries the execution configuration shared by all layers.
type Engine struct {
	Algo    Algo
	Threads int
	// Fuse enables graph-level operator fusion: BN folding into conv
	// weights and bias+ReLU fused into the convolution's output pass.
	// The paper's Ansor configuration has this; the library-based
	// configurations do not (§8.3).
	Fuse bool
	// Schedules maps a conv shape key to a tuned Ansor schedule
	// (filled by Tune; DefaultSchedule otherwise).
	Schedules map[string]autotune.Schedule
	// ConvBudget bounds each convolution layer's wall time (0 = no
	// bound). A layer that exceeds it — a wedged worker, a
	// pathological schedule — is abandoned and rerun on the nDirect
	// backend (or, for nDirect itself, recomputed unbounded after the
	// one-shot fault is consumed), so one stuck layer cannot wedge
	// the whole forward pass.
	ConvBudget time.Duration
	// Reuse turns on the cross-call amortisation for repeated
	// inference: execution plans come from a shared core.PlanCache
	// instead of re-solving the Eq. 1–6 models per call, the nDirect
	// backend consumes per-unit pre-transformed weights
	// (Plan.TransformFilter) instead of re-running the on-the-fly
	// filter transform on every forward, and intermediate activations
	// are drawn from a per-size buffer pool instead of fresh
	// allocations. Off by default: the measured-mode experiments
	// deliberately time the overlapped transform (Fig. 5) and are
	// unchanged. Results are bit-for-bit identical either way.
	Reuse bool
	// Plans optionally supplies the plan cache (shared across engines,
	// or capacity-tuned). Setting it enables plan caching even without
	// Reuse; nil with Reuse on means a private cache is created on
	// first use.
	Plans *core.PlanCache
	// BreakerThreshold enables per-backend circuit breakers: after
	// this many consecutive failures a baseline backend (im2col,
	// LIBXSMM, XNNPACK, Ansor) is quarantined and dispatch goes
	// straight to nDirect without invoking it; after BreakerCooldown a
	// single half-open probe is let through, restoring the backend on
	// success. 0 (the default) disables breakers — the seed behaviour
	// of retrying the failing backend and logging on every call.
	// nDirect itself is never breakered: it is the fallback.
	BreakerThreshold int
	// BreakerCooldown is the quarantine duration before a half-open
	// probe (DefaultBreakerCooldown when zero).
	BreakerCooldown time.Duration
	// LogInterval rate-limits repeated backend-fallback log lines to
	// one per (backend, shape) per interval with a suppressed-count
	// summary (DefaultLogInterval when zero; negative disables
	// suppression and logs every call).
	LogInterval time.Duration
	// LogKeyCap bounds the rate-limiter's per-(site, backend, shape)
	// key map: many-tenant, many-shape traffic mints keys without
	// limit, so past the cap the least recently touched key is dropped
	// (its pending suppressed count folds into the next emission's
	// trailer). 0 selects DefaultLogKeyCap; negative disables the
	// bound (the pre-cap behaviour).
	LogKeyCap int
	// ForceReference routes every convolution straight to the plan's
	// naive reference path — no optimised kernels, no worker grid, no
	// packed weights — while keeping results bit-identical for exactly
	// representable inputs (float64 accumulation in conv.Reference
	// order). It is the quarantine rung of the multi-tenant registry:
	// a model whose traffic keeps faulting is degraded to this engine
	// so its failures stop touching the shared fast-path machinery,
	// without changing what a healthy request would have computed.
	ForceReference bool
	// OnPackAdmit, OnPackRetain and OnPackDrop are the weight-residency
	// hooks of the serving registry (all optional; nil-hook engines
	// behave exactly as before). Reuse-mode units consult OnPackAdmit
	// with the packed size before building a persistent packed filter —
	// false denies residency and the unit runs that call with the
	// on-the-fly transform instead (bit-identical, nothing retained).
	// OnPackRetain fires after a unit retains a packed filter,
	// OnPackDrop when a retained filter is dropped or replaced. All
	// three are called under the owning unit's pack lock, so a
	// residency manager observes retain/drop pairs in order.
	OnPackAdmit  func(bytes int64) bool
	OnPackRetain func(pf *core.PackedFilter)
	OnPackDrop   func(pf *core.PackedFilter)

	planOnce  sync.Once
	planCache *core.PlanCache
	pools     sync.Map // len([]float32) → *sync.Pool of buffers

	// dwRowTiles maps a depthwise geometry key to the manifest-tuned
	// separable row-tile height (LoadManifest; read-only afterwards,
	// the same discipline as Schedules).
	dwRowTiles map[string]int

	breakers [numAlgos]breaker
	logMu    sync.Mutex
	logSeen  map[string]*list.Element // key → LRU element (*logEntry)
	logLRU   *list.List               // most recently touched key at front
	logCarry int                      // suppressed counts from evicted keys
}

// plans returns the plan cache the engine's conv calls share: the
// explicit Plans field when set, a lazily created private cache when
// Reuse is on, nil otherwise (every call re-plans — the seed default).
func (eng *Engine) plans() *core.PlanCache {
	if eng.Plans != nil {
		return eng.Plans
	}
	if !eng.Reuse {
		return nil
	}
	eng.planOnce.Do(func() { eng.planCache = core.NewPlanCache(0) })
	return eng.planCache
}

// newTensor returns a zeroed tensor of the given dims, drawing the
// backing buffer from the engine's per-size pool when Reuse is on.
// Pooled buffers are cleared before reuse so a pooled tensor is
// indistinguishable from a fresh tensor.New — layer outputs stay
// bit-for-bit identical to the unpooled path.
func (eng *Engine) newTensor(dims ...int) *tensor.Tensor {
	if !eng.Reuse {
		return tensor.New(dims...)
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if p, ok := eng.pools.Load(n); ok {
		if buf, _ := p.(*sync.Pool).Get().([]float32); buf != nil {
			clear(buf)
			return tensor.FromSlice(buf, dims...)
		}
	}
	return tensor.New(dims...)
}

// release returns a dead intermediate tensor's buffer to the pool.
// Callers must only release tensors they own and that no other layer
// (or abandoned worker) can still reference; the forward paths release
// exactly the intermediates that are provably dead. No-op when Reuse
// is off.
func (eng *Engine) release(t *tensor.Tensor) {
	if !eng.Reuse || t == nil || len(t.Data) == 0 {
		return
	}
	p, _ := eng.pools.LoadOrStore(len(t.Data), &sync.Pool{})
	p.(*sync.Pool).Put(t.Data[:len(t.Data):len(t.Data)])
}

// convCtx returns the per-layer execution context: Background when no
// budget is configured (zero overhead), a timeout context otherwise.
func (eng *Engine) convCtx() (context.Context, context.CancelFunc) {
	if eng.ConvBudget <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), eng.ConvBudget)
}

func shapeKey(s conv.Shape) string {
	return fmt.Sprintf("c%dk%dh%dw%dr%ds%dst%dp%d", s.C, s.K, s.H, s.W, s.R, s.S, s.Str, s.Pad)
}

// Layer is one network node operating on NCHW activations.
type Layer interface {
	Name() string
	Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor
}

// checkedLayer is the panic-free form of Layer: layers that can fail
// (the conv-backed ones) implement it, and Network.TryForward prefers
// it so a double backend failure surfaces as an error instead of a
// panic — PR 1's checked-API contract carried inside the engine.
type checkedLayer interface {
	tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error)
}

// Network is a sequential container (residual blocks are composite
// layers, so sequence suffices for ResNet and VGG).
type Network struct {
	Name   string
	Layers []Layer
}

// Forward runs the network, panicking on a layer failure (use
// TryForward for the checked form).
func (n *Network) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := n.TryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", n.Name, err))
	}
	return out
}

// TryForward runs the network, returning an error (naming the failing
// layer) instead of panicking when a layer's every backend fails.
// Safe for concurrent use on a shared engine and network: the weight,
// plan and packed-filter caches are built once and immutable after,
// and pooled buffers are never shared between live tensors.
func (n *Network) TryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	cur := x
	for _, l := range n.Layers {
		var next *tensor.Tensor
		var err error
		if cl, ok := l.(checkedLayer); ok {
			next, err = cl.tryForward(eng, cur)
		} else {
			// Unchecked layers (pooling, FC, softmax) may panic — their
			// Forward contract — including on an injected worker fault
			// in their parallel loops. TryForward promises an error, so
			// recover here; errors.Is(err, ErrWorkerPanic) still holds
			// when the panic carries the runtime's typed fault.
			err = parallel.Protect(func() { next = l.Forward(eng, cur) })
		}
		if err != nil {
			return nil, fmt.Errorf("layer %s: %w", l.Name(), err)
		}
		if cur != x && cur != next {
			eng.release(cur) // dead intermediate (never the caller's input)
		}
		cur = next
	}
	return cur, nil
}

// ConvUnits returns every convolution unit in the network in
// execution order (recursing into residual blocks).
func (n *Network) ConvUnits() []*ConvUnit {
	var units []*ConvUnit
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *ConvUnit:
				units = append(units, v)
			case *Bottleneck:
				walk(v.sublayers())
			case *BasicBlock:
				walk(v.sublayers())
			case *DepthwiseSeparable:
				walk(v.sublayers())
			}
		}
	}
	walk(n.Layers)
	return units
}

// ConvShapes returns the distinct convolution shapes of the network
// (batch taken from the layers' stored geometry with N=1); used by
// Tune and the harness.
func (n *Network) ConvShapes() []conv.Shape {
	seen := map[string]bool{}
	var out []conv.Shape
	for _, u := range n.ConvUnits() {
		if k := shapeKey(u.Shape); !seen[k] {
			seen[k] = true
			out = append(out, u.Shape)
		}
	}
	return out
}

// Tune pre-tunes an Ansor schedule for every distinct conv shape in
// the network (the offline search the paper excludes from measured
// time).
func (eng *Engine) Tune(n *Network, opt autotune.TuneOptions) {
	if eng.Schedules == nil {
		eng.Schedules = map[string]autotune.Schedule{}
	}
	for _, s := range n.ConvShapes() {
		key := shapeKey(s)
		if _, ok := eng.Schedules[key]; ok {
			continue
		}
		opt.Threads = eng.Threads
		res := autotune.Tune(s, opt)
		if res.Trials == 0 || !res.Best.Valid(s) {
			// A search where every candidate failed to measure leaves
			// Result.Best as the zero value; storing it would feed an
			// inadmissible schedule into eng.schedule on the serving
			// path. Fall back to the default (ClampFor would anyway).
			eng.logLimited("tune|"+key, "nn: tuning %v measured no admissible schedule; keeping default", s)
			continue
		}
		eng.Schedules[key] = res.Best
	}
}

// LoadManifest merges a tuning manifest (the `ndtune -manifest`
// output) into the engine's schedule table, keyed the same way Tune
// keys its results, so Ansor-backend calls use the offline-tuned
// schedule instead of searching or defaulting. Entries with an
// invalid shape or a schedule failing Schedule.Valid are rejected
// with a rate-limited log — a stale or hand-edited manifest degrades
// to the default schedule, never crashes. Nil-safe. Returns how many
// entries were loaded and how many rejected.
func (eng *Engine) LoadManifest(m *autotune.Manifest) (loaded, rejected int) {
	if m == nil {
		return 0, 0
	}
	if eng.Schedules == nil {
		eng.Schedules = map[string]autotune.Schedule{}
	}
	for _, e := range m.Entries {
		if e.Depthwise {
			// Depthwise entries tune the fused separable executor's
			// row-tile height, not an Ansor schedule.
			if e.Shape.Validate() != nil || e.Shape.K != e.Shape.C || e.DWRowTile < 0 {
				rejected++
				eng.logLimited("manifest|"+shapeKey(e.Shape),
					"nn: depthwise manifest entry for %v rejected (invalid shape or row tile); planning as untuned", e.Shape)
				continue
			}
			if eng.dwRowTiles == nil {
				eng.dwRowTiles = map[string]int{}
			}
			eng.dwRowTiles[shapeKey(e.Shape)] = e.DWRowTile
			loaded++
			continue
		}
		if e.Shape.Validate() != nil || !e.Schedule.Valid(e.Shape) {
			rejected++
			eng.logLimited("manifest|"+shapeKey(e.Shape),
				"nn: manifest entry for %v rejected (invalid shape or schedule); planning as untuned", e.Shape)
			continue
		}
		eng.Schedules[shapeKey(e.Shape)] = e.Schedule
		loaded++
	}
	return loaded, rejected
}

// dwRowTile returns the manifest-tuned depthwise row-tile height for
// the depthwise geometry s (0 = untuned: the plan solves its own).
// Like Schedules, the map is written by LoadManifest before serving
// and read-only after.
func (eng *Engine) dwRowTile(s conv.Shape) int {
	return eng.dwRowTiles[shapeKey(s)]
}

// WarmPlans pre-builds the steady-state serving state — the cached
// plan, the per-unit plan memo and the packed weights — for every
// conv unit whose shape the covered filter admits (nil covers all),
// at batch 1 with the exact options the Reuse serving path uses. A
// warmed unit's first request (and every one after) runs with zero
// plan-cache misses and zero filter transforms: the warm-start
// contract the tuning manifest promises. Requires a Reuse engine (or
// an explicit Plans cache). Weight-residency hooks fire exactly as
// they would on a first request, so warming charges the same budget.
func (n *Network) WarmPlans(eng *Engine, covered func(conv.Shape) bool) (warmed int, err error) {
	cache := eng.plans()
	if cache == nil {
		return 0, fmt.Errorf("nn: WarmPlans needs Reuse or an explicit plan cache")
	}
	for _, u := range n.ConvUnits() {
		s := u.Shape.WithBatch(1)
		if covered != nil && !covered(s) {
			continue
		}
		opt := core.Options{Threads: eng.Threads, PlanCache: cache}
		if ep := u.fusedEpilogue(); ep != nil {
			opt.FusedEpilogue = ep
		}
		plan, perr := u.planFor(s, opt)
		if perr != nil {
			return warmed, fmt.Errorf("nn: warm %s: %w", u.LayerName, perr)
		}
		if _, perr := u.packedFor(eng, plan, u.Weights); perr != nil {
			return warmed, fmt.Errorf("nn: warm %s: %w", u.LayerName, perr)
		}
		warmed++
	}
	// Depthwise-separable units additionally hold a fused plan (memo)
	// and a packed depthwise filter; a depthwise manifest entry for the
	// unit's depthwise geometry marks it covered. The pointwise packed
	// filter is shared with the unit's ConvUnit (warmed above when its
	// own shape is covered), built here against the fused plan's
	// pointwise half when it was not.
	for _, d := range n.sepUnits() {
		ss, ok := d.separableShape(1)
		if !ok {
			continue
		}
		if covered != nil && !covered(ss.DWShape()) {
			continue
		}
		plan, perr := d.sepPlanFor(eng, ss)
		if perr != nil {
			return warmed, fmt.Errorf("nn: warm %s: %w", d.LayerName, perr)
		}
		if _, perr := d.packedDWFor(eng, plan); perr != nil {
			return warmed, fmt.Errorf("nn: warm %s: %w", d.LayerName, perr)
		}
		if _, perr := d.PW.packedFor(eng, plan.PointwisePlan(), d.PW.Weights); perr != nil {
			return warmed, fmt.Errorf("nn: warm %s: %w", d.LayerName, perr)
		}
		warmed++
	}
	return warmed, nil
}

// sepUnits returns the network's depthwise-separable blocks (they only
// occur at the top level of the layer sequence).
func (n *Network) sepUnits() []*DepthwiseSeparable {
	var units []*DepthwiseSeparable
	for _, l := range n.Layers {
		if d, ok := l.(*DepthwiseSeparable); ok {
			units = append(units, d)
		}
	}
	return units
}

// --- Convolution unit (conv [+BN] [+ReLU]) ---

// BNParams are inference-time batch-norm parameters per channel.
type BNParams struct {
	Gamma, Beta, Mean, Var []float32
	Eps                    float32
}

// ConvUnit is the conv→BN→ReLU triple as the source networks use it.
// Whether the stages run fused or as separate passes depends on the
// engine configuration.
type ConvUnit struct {
	LayerName string
	Shape     conv.Shape // N = 1; batch comes from the input tensor
	Weights   *tensor.Tensor
	Bias      []float32 // nil for BN networks (ResNet)
	BN        *BNParams // nil for VGG
	ReLU      bool

	foldOnce sync.Once
	folded   *tensor.Tensor // BN-folded weights (built once, immutable after)
	foldedB  []float32

	epOnce sync.Once
	ep     *core.EpilogueParams // bias/BN/ReLU as a fused store epilogue; nil when the unit has none

	// planMemos cache the last plan resolved for the fused-epilogue
	// route, so the steady-state serving loop skips the plan-cache
	// lookup (whose key serialises the epilogue vectors, allocating on
	// every call). Slotted by batch size (N mod 4): a serving unit at
	// steady state sees solo (N=1) traffic interleaved with coalesced
	// (N=k) batches, and a single entry would thrash between the two
	// plans on every alternation. A miss just falls through to the
	// cache.
	planMemos [4]atomic.Pointer[planMemoEntry]

	// reuseGen versions the unit's reuse state (plan memo + packed
	// filters). InvalidateReuse bumps it when the model is unregistered
	// or its packed weights are evicted, so a memo entry stamped with
	// an older generation can never short-circuit the re-resolution
	// that rebuilds the packed filter — the guard against executing a
	// stale PackedFilter whose backing charge was already released.
	reuseGen atomic.Uint64

	packMu       sync.Mutex
	packedRaw    *core.PackedFilter // pre-transformed Weights (Engine.Reuse)
	packedFolded *core.PackedFilter // pre-transformed BN-folded weights
}

// planMemoEntry records the inputs that determine a fused-route plan.
type planMemoEntry struct {
	s       conv.Shape
	threads int
	fe      *core.EpilogueParams
	gen     uint64
	plan    *core.Plan
}

func (c *ConvUnit) Name() string { return c.LayerName }

// foldBN merges BN into the convolution: w'ₖ = wₖ·γₖ/√(σ²ₖ+ε),
// b'ₖ = βₖ − μₖ·γₖ/√(σ²ₖ+ε) (+ original bias scaled). The fold runs
// exactly once even under concurrent Forward calls on a shared
// network; the cached tensors are immutable afterwards.
func (c *ConvUnit) foldBN() (*tensor.Tensor, []float32) {
	c.foldOnce.Do(func() {
		w := c.Weights.Clone()
		b := make([]float32, c.Shape.K)
		if c.Bias != nil {
			copy(b, c.Bias)
		}
		if c.BN != nil {
			per := c.Shape.C * c.Shape.R * c.Shape.S
			for k := 0; k < c.Shape.K; k++ {
				scale := c.BN.Gamma[k] / float32(math.Sqrt(float64(c.BN.Var[k])+float64(c.BN.Eps)))
				for i := 0; i < per; i++ {
					w.Data[k*per+i] *= scale
				}
				b[k] = b[k]*scale + c.BN.Beta[k] - c.BN.Mean[k]*scale
			}
		}
		c.folded, c.foldedB = w, b
	})
	return c.folded, c.foldedB
}

// fusedEpilogue returns the unit's bias/BN/ReLU work in the core's
// fused-store form, built once and immutable after (the stable pointer
// also serves as the plan-memo identity). The BN scale/shift use the
// exact float32 expressions applyBN evaluates per channel, and the
// core store applies bias → affine → ReLU in the same order as the
// separate addBias/applyBN/applyReLU sweeps, so routing through the
// fused store is bit-identical to running the sweeps. Returns nil when
// the unit has no epilogue work (plain convolution).
func (c *ConvUnit) fusedEpilogue() *core.EpilogueParams {
	c.epOnce.Do(func() {
		if c.Bias == nil && c.BN == nil && !c.ReLU {
			return
		}
		ep := &core.EpilogueParams{Bias: c.Bias, ReLU: c.ReLU}
		if bn := c.BN; bn != nil {
			scale := make([]float32, c.Shape.K)
			shift := make([]float32, c.Shape.K)
			for k := range scale {
				sc := bn.Gamma[k] / float32(math.Sqrt(float64(bn.Var[k])+float64(bn.Eps)))
				scale[k] = sc
				shift[k] = bn.Beta[k] - bn.Mean[k]*sc
			}
			ep.Scale, ep.Shift = scale, shift
		}
		c.ep = ep
	})
	return c.ep
}

// packedFor returns the pre-transformed (⌈K/Vk⌉·C·R·S·Vk blocked) form
// of w — the raw or the BN-folded weights — building it on first use
// and caching it next to the fold. A plan with a different V_k
// blocking (say, after an engine re-targets platforms) just rebuilds
// the packed copy; the check is CompatibleWith plus source identity
// plus liveness — a residency manager that evicted the cached filter
// (PackedFilter.Release) makes the slot stale exactly like a V_k
// change, and the rebuild re-packs bit-identically from the KCRS
// source. With the engine's residency hooks set, a rebuild first asks
// OnPackAdmit for the packed bytes; a denied charge returns (nil, nil)
// and the caller runs that call with the on-the-fly transform instead,
// so a full weight budget degrades throughput, never correctness.
func (c *ConvUnit) packedFor(eng *Engine, p *core.Plan, w *tensor.Tensor) (*core.PackedFilter, error) {
	c.packMu.Lock()
	defer c.packMu.Unlock()
	slot := &c.packedRaw
	if w != c.Weights {
		slot = &c.packedFolded
	}
	if pf := *slot; pf != nil {
		if pf.Source() == w && pf.CompatibleWith(p) && !pf.Released() {
			return pf, nil
		}
		*slot = nil
		if eng.OnPackDrop != nil {
			eng.OnPackDrop(pf)
		}
	}
	if eng.OnPackAdmit != nil && !eng.OnPackAdmit(p.PackedBytes()) {
		return nil, nil
	}
	pf, err := p.TransformFilter(w)
	if err != nil {
		return nil, err
	}
	*slot = pf
	if eng.OnPackRetain != nil {
		eng.OnPackRetain(pf)
	}
	// Post-pack verification (DESIGN.md §12): every rebuild — including
	// the eviction-path re-pack — proves the fresh artifact matches its
	// own pack-time checksum before it can serve. A failure here means
	// the packed bytes were corrupted under us between transform and
	// check; the artifact is discarded (charge returned) and this call
	// serves with the on-the-fly transform from the intact KCRS source.
	if verr := pf.Verify(); verr != nil {
		eng.logLimited("integrity|pack|"+c.LayerName,
			"nn: %s: fresh pack failed verification, serving unpacked: %v", c.LayerName, verr)
		*slot = nil
		if eng.OnPackDrop != nil {
			eng.OnPackDrop(pf)
		} else {
			pf.Release()
		}
		return nil, nil
	}
	return pf, nil
}

// discardPacked retires a packed filter that failed an integrity check
// mid-execution: the slot holding it is cleared (so the next fetch
// re-packs bit-identically from the retained KCRS source) and its
// residency charge returned. Safe when the slot was already replaced —
// only a matching slot is cleared.
func (c *ConvUnit) discardPacked(eng *Engine, pf *core.PackedFilter) {
	c.packMu.Lock()
	defer c.packMu.Unlock()
	for _, slot := range []**core.PackedFilter{&c.packedRaw, &c.packedFolded} {
		if *slot == pf {
			*slot = nil
		}
	}
	if eng != nil && eng.OnPackDrop != nil {
		eng.OnPackDrop(pf)
	} else {
		pf.Release()
	}
}

// invalidateReuse retires the unit's reuse state: packed filters are
// released (dropped through the engine's residency hooks so their
// charges return), the plan memo is cleared, and the generation is
// bumped so any concurrently running planFor cannot re-publish a
// pre-invalidation memo entry. Safe against concurrent forwards: an
// execution that already fetched the old packed filter finishes on its
// immutable buffer; the next fetch observes the released flag (or the
// cleared slot) and rebuilds.
func (c *ConvUnit) invalidateReuse(eng *Engine) {
	c.packMu.Lock()
	defer c.packMu.Unlock()
	c.reuseGen.Add(1)
	for i := range c.planMemos {
		c.planMemos[i].Store(nil)
	}
	for _, slot := range []**core.PackedFilter{&c.packedRaw, &c.packedFolded} {
		if pf := *slot; pf != nil {
			*slot = nil
			if eng != nil && eng.OnPackDrop != nil {
				eng.OnPackDrop(pf)
			} else {
				pf.Release()
			}
		}
	}
}

// InvalidateReuse retires every conv unit's reuse state (packed
// filters, plan memos) against eng's residency hooks — the unregister
// / eviction entry point of the serving registry. The network remains
// fully servable afterwards: the next forward re-plans and re-packs,
// bit-identically.
func (n *Network) InvalidateReuse(eng *Engine) {
	for _, u := range n.ConvUnits() {
		u.invalidateReuse(eng)
	}
	for _, d := range n.sepUnits() {
		d.invalidateReuse(eng)
	}
}

// Forward applies the unit with the engine's backend and fusion
// setting, panicking on failure (tryForward is the checked form).
func (c *ConvUnit) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := c.tryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", c.LayerName, err))
	}
	return out
}

// tryForward applies the unit, returning an error only when every
// backend (including the nDirect fallback) fails.
func (c *ConvUnit) tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	s := c.Shape.WithBatch(x.Dims[0])
	if eng.Fuse {
		w, b := c.foldBN()
		return c.tryConvFused(eng, s, x, w, b)
	}
	// Steady-state fast path: with Reuse on and the nDirect backend,
	// the unit's bias/BN/ReLU run inside the plan's fused store (one
	// pass over the output) instead of as separate whole-tensor sweeps.
	// fusedEpilogue's contract makes this bit-identical to the sweeps,
	// so the route is a pure execution-strategy change.
	if eng.Reuse && eng.Algo == AlgoNDirect {
		if ep := c.fusedEpilogue(); ep != nil {
			return c.tryNDirect(eng, s, x, c.Weights,
				core.Options{Threads: eng.Threads, FusedEpilogue: ep})
		}
	}
	out, err := c.tryConvPlain(eng, s, x)
	if err != nil {
		return nil, err
	}
	if c.Bias != nil {
		if err := addBias(out, c.Bias, eng.Threads); err != nil {
			return nil, err
		}
	}
	if c.BN != nil {
		if err := applyBN(out, c.BN, eng.Threads); err != nil {
			return nil, err
		}
	}
	if c.ReLU {
		if err := applyReLU(out, eng.Threads); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (c *ConvUnit) tryConvPlain(eng *Engine, s conv.Shape, x *tensor.Tensor) (*tensor.Tensor, error) {
	if eng.ForceReference {
		// Quarantine: skip the backends entirely — tryNDirect routes to
		// the reference path under ForceReference.
		return c.tryNDirect(eng, s, x, c.Weights, core.Options{Threads: eng.Threads})
	}
	switch eng.Algo {
	case AlgoAnsor:
		if !eng.backendAllowed(AlgoAnsor, s) {
			return c.tryNDirect(eng, s, x, c.Weights, core.Options{Threads: eng.Threads})
		}
		out := eng.newTensor(s.N, s.K, s.P(), s.Q())
		ctx, cancel := eng.convCtx()
		err := autotune.ExecuteCtx(ctx, s, eng.schedule(s), x, c.Weights, out, eng.Threads)
		cancel()
		if err != nil {
			// Graceful degradation: a bad tuned schedule, a faulting
			// executor, or a stalled worker past ConvBudget must not
			// take the network down — rerun the layer on the nDirect
			// backend (unbounded: the injected fault was consumed).
			// out is not pooled back: abandoned workers may still
			// write into it.
			eng.backendFailed(AlgoAnsor, s, err)
			return c.tryNDirect(eng, s, x, c.Weights, core.Options{Threads: eng.Threads})
		}
		eng.backendOK(AlgoAnsor)
		return out, nil
	case AlgoIm2col, AlgoXSMM, AlgoXNN:
		return c.tryBaseline(eng, s, x, c.Weights)
	default:
		return c.tryNDirect(eng, s, x, c.Weights, core.Options{Threads: eng.Threads})
	}
}

// tryBaseline dispatches to the im2col/LIBXSMM/XNNPACK baselines
// through their checked entry points; a failing baseline is logged and
// the layer rerun on nDirect (the same degradation the Ansor arm has),
// so a backend fault surfaces as a slow layer rather than a nil tensor
// crashing the next one.
func (c *ConvUnit) tryBaseline(eng *Engine, s conv.Shape, x, w *tensor.Tensor) (*tensor.Tensor, error) {
	if !eng.backendAllowed(eng.Algo, s) {
		return c.tryNDirect(eng, s, x, w, core.Options{Threads: eng.Threads})
	}
	var (
		out *tensor.Tensor
		err error
	)
	switch eng.Algo {
	case AlgoIm2col:
		out, _, err = im2col.TryConv2D(s, x, w, im2col.Options{Threads: eng.Threads})
	case AlgoXSMM:
		out, _, err = xsmm.TryConv2D(s, x, w, xsmm.Options{Threads: eng.Threads})
	case AlgoXNN:
		out, _, err = xnn.TryConv2D(s, x, w, xnn.Options{Threads: eng.Threads})
	default:
		return c.tryNDirect(eng, s, x, w, core.Options{Threads: eng.Threads})
	}
	if err != nil {
		eng.backendFailed(eng.Algo, s, err)
		return c.tryNDirect(eng, s, x, w, core.Options{Threads: eng.Threads})
	}
	eng.backendOK(eng.Algo)
	return out, nil
}

// tryNDirect runs the nDirect backend under the engine's ConvBudget
// and reuse configuration. With Reuse off this is the seed path: plan
// (possibly via an explicit Plans cache) and execute with the
// on-the-fly filter transform, recomputing unbounded when the budget
// expires (wedged goroutines are accounted in parallel.LeakedWorkers;
// the pass stays bounded by roughly 2× the layer budget). With Reuse
// on, the plan comes from the cache, the weights from the unit's
// pre-transformed copy, and the output from the buffer pool.
func (c *ConvUnit) tryNDirect(eng *Engine, s conv.Shape, x, w *tensor.Tensor, opt core.Options) (*tensor.Tensor, error) {
	if eng.ForceReference {
		return c.tryReference(eng, s, x, w, opt)
	}
	opt.PlanCache = eng.plans()
	if !eng.Reuse {
		ctx, cancel := eng.convCtx()
		defer cancel()
		if ctx.Done() == nil {
			return core.TryConv2D(s, x, w, opt)
		}
		out, err := core.TryConv2DCtx(ctx, s, x, w, opt)
		if err != nil {
			eng.logLimited("budget|ndirect|"+shapeKey(s), "nn: ndirect backend missed ConvBudget on %v; recomputing unbounded: %v", s, err)
			return core.TryConv2D(s, x, w, opt)
		}
		return out, nil
	}

	plan, err := c.planFor(s, opt)
	if err != nil {
		return nil, err
	}
	pf, err := c.packedFor(eng, plan, w)
	if err != nil {
		return nil, err
	}
	out := eng.newTensor(s.N, s.K, s.P(), s.Q())
	ctx, cancel := eng.convCtx()
	defer cancel()
	if pf == nil {
		// Residency denied (weight budget full): run this call with the
		// on-the-fly filter transform — bit-identical to the packed path,
		// nothing retained — instead of failing or thrashing the budget.
		return c.runUnpacked(eng, s, plan, ctx, x, w, out)
	}
	if ctx.Done() == nil {
		err = plan.TryExecutePacked(x, pf, out)
		if errors.Is(err, core.ErrWeightsReleased) {
			// Evicted between fetch and execute: this call runs with the
			// on-the-fly transform; the next fetch rebuilds the packed
			// copy (bit-identically) under the fresh budget charge.
			return c.runUnpacked(eng, s, plan, ctx, x, w, out)
		}
		if errors.Is(err, core.ErrIntegrity) {
			c.recoverIntegrity(eng, pf, err)
			return c.runUnpacked(eng, s, plan, ctx, x, w, out)
		}
		if err != nil {
			eng.release(out)
			return nil, err
		}
		return out, nil
	}
	if err := plan.TryExecutePackedCtx(ctx, x, pf, out); err != nil {
		if errors.Is(err, core.ErrWeightsReleased) {
			return c.runUnpacked(eng, s, plan, ctx, x, w, out)
		}
		if errors.Is(err, core.ErrIntegrity) {
			// Integrity failures join the grid before returning, so out
			// is safe to reuse on the unpacked retry.
			c.recoverIntegrity(eng, pf, err)
			return c.runUnpacked(eng, s, plan, ctx, x, w, out)
		}
		eng.logLimited("budget|ndirect|"+shapeKey(s), "nn: ndirect backend missed ConvBudget on %v; recomputing unbounded: %v", s, err)
		// Abandoned workers may still write into out: leak it (never
		// back to the pool) and recompute into a fresh tensor.
		out = eng.newTensor(s.N, s.K, s.P(), s.Q())
		if err := plan.TryExecutePacked(x, pf, out); err != nil {
			if errors.Is(err, core.ErrWeightsReleased) {
				return c.runUnpacked(eng, s, plan, ctx, x, w, out)
			}
			if errors.Is(err, core.ErrIntegrity) {
				c.recoverIntegrity(eng, pf, err)
				return c.runUnpacked(eng, s, plan, ctx, x, w, out)
			}
			eng.release(out)
			return nil, err
		}
	}
	return out, nil
}

// recoverIntegrity handles a typed integrity failure surfaced by a
// packed execution (checksum mismatch or a tripped scratch canary):
// the packed artifact is conservatively quarantined — dropped so the
// next fetch re-packs bit-identically from the retained KCRS source —
// and the failure logged rate-limited. The caller then serves the
// current request with the on-the-fly transform, which never touches
// the suspect artifact.
func (c *ConvUnit) recoverIntegrity(eng *Engine, pf *core.PackedFilter, err error) {
	eng.logLimited("integrity|"+c.LayerName,
		"nn: %s: integrity failure on packed path; re-packing from KCRS source and serving unpacked: %v",
		c.LayerName, err)
	c.discardPacked(eng, pf)
}

// runUnpacked executes plan with the on-the-fly filter transform into
// out — the Reuse path's escape hatch when a persistent packed filter
// is unavailable (residency denied, or evicted between fetch and
// execute). Results are bit-identical to the packed path; only the
// per-call transform cost differs.
func (c *ConvUnit) runUnpacked(eng *Engine, s conv.Shape, plan *core.Plan, ctx context.Context, x, w *tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx.Done() == nil {
		if err := plan.TryExecute(x, w, out); err != nil {
			eng.release(out)
			return nil, err
		}
		return out, nil
	}
	if err := plan.TryExecuteCtx(ctx, x, w, out); err != nil {
		eng.logLimited("budget|ndirect|"+shapeKey(s), "nn: ndirect backend missed ConvBudget on %v; recomputing unbounded: %v", s, err)
		out = eng.newTensor(s.N, s.K, s.P(), s.Q())
		if err := plan.TryExecute(x, w, out); err != nil {
			eng.release(out)
			return nil, err
		}
	}
	return out, nil
}

// tryReference runs the convolution on the plan's naive reference path
// — the quarantine rung (Engine.ForceReference). Single-threaded, no
// worker grid, no packed weights: a misbehaving model routed here
// cannot fault the shared fast-path machinery, and for exactly
// representable inputs the float64-accumulated reference is
// bit-identical to what the optimised path would have produced. The
// plan is resolved only for its shape/epilogue bookkeeping (the cache
// is consulted when available so quarantine does not re-solve the
// tiling models per call, but the per-unit memo is bypassed to avoid
// thrashing it against the healthy route's entry).
func (c *ConvUnit) tryReference(eng *Engine, s conv.Shape, x, w *tensor.Tensor, opt core.Options) (*tensor.Tensor, error) {
	opt.Threads = 1
	var plan *core.Plan
	var err error
	if cache := eng.plans(); cache != nil {
		opt.PlanCache = cache
		plan, err = cache.Get(s, opt)
	} else {
		plan, err = core.TryNewPlan(s, opt)
	}
	if err != nil {
		return nil, err
	}
	out := eng.newTensor(s.N, s.K, s.P(), s.Q())
	ctx, cancel := eng.convCtx()
	defer cancel()
	if err := plan.TryExecuteReferenceCtx(ctx, x, w, out); err != nil {
		eng.release(out)
		return nil, err
	}
	return out, nil
}

// planFor resolves the unit's plan for the Reuse path. Fused-epilogue
// calls hit a one-entry per-unit memo first: the plan-cache key
// serialises the epilogue vectors byte-for-byte, which allocates on
// every Get, and the serving hot loop asks for the same (shape,
// threads, epilogue) every call. The memo is sound because the
// epilogue pointer is the Once-built c.ep (stable and immutable) and
// plans are immutable after construction; any other option mix skips
// the memo and pays the cache lookup.
func (c *ConvUnit) planFor(s conv.Shape, opt core.Options) (*core.Plan, error) {
	// The generation is read before the memo: an invalidation that lands
	// between the two bumps the generation first, so a memo entry built
	// from pre-invalidation state is stamped stale and can never satisfy
	// a post-invalidation load — the ordering that makes eviction /
	// unregister safe against concurrent forwards.
	gen := c.reuseGen.Load()
	memoable := opt.FusedEpilogue != nil && opt.FusedEpilogue == c.ep &&
		opt.Epilogue == core.EpilogueNone && opt.Bias == nil
	slot := &c.planMemos[s.N&3]
	if memoable {
		if m := slot.Load(); m != nil && m.gen == gen && m.s == s && m.threads == opt.Threads && m.fe == opt.FusedEpilogue {
			return m.plan, nil
		}
	}
	plan, err := opt.PlanCache.Get(s, opt)
	if err != nil {
		return nil, err
	}
	if memoable {
		slot.Store(&planMemoEntry{s: s, threads: opt.Threads, fe: opt.FusedEpilogue, gen: gen, plan: plan})
	}
	return plan, nil
}

// tryConvFused runs conv with bias+ReLU folded into the output pass.
// nDirect and the Ansor executor fuse natively via their epilogues;
// the other backends fall back to a separate pass (they have no
// epilogue hook — the integration gap §8.3 describes).
func (c *ConvUnit) tryConvFused(eng *Engine, s conv.Shape, x *tensor.Tensor, w *tensor.Tensor, b []float32) (*tensor.Tensor, error) {
	// fusedFallback recomputes the whole layer through the nDirect
	// epilogue into a fresh tensor — the recovery every arm shares,
	// because it never leaves a partially-transformed output behind.
	fusedFallback := func() (*tensor.Tensor, error) {
		ep := core.EpilogueBias
		if c.ReLU {
			ep = core.EpilogueBiasReLU
		}
		return c.tryNDirect(eng, s, x, w, core.Options{Threads: eng.Threads, Epilogue: ep, Bias: b})
	}
	if eng.ForceReference {
		// Quarantine: the fused fallback routes through tryNDirect, which
		// runs the reference path (replaying the fused epilogue).
		return fusedFallback()
	}
	switch eng.Algo {
	case AlgoNDirect:
		return fusedFallback()
	case AlgoAnsor:
		if !eng.backendAllowed(AlgoAnsor, s) {
			return fusedFallback()
		}
		out := eng.newTensor(s.N, s.K, s.P(), s.Q())
		ctx, cancel := eng.convCtx()
		err := autotune.ExecuteFusedCtx(ctx, s, eng.schedule(s), x, w, out, eng.Threads, b, c.ReLU)
		cancel()
		if err != nil {
			eng.backendFailed(AlgoAnsor, s, err)
			// out stays out of the pool: abandoned workers may still
			// write into it.
			return fusedFallback()
		}
		eng.backendOK(AlgoAnsor)
		return out, nil
	default:
		out, err := c.tryBaseline(eng, s, x, w)
		if err != nil {
			return nil, err
		}
		// The sweeps below mutate out in place, so a mid-sweep worker
		// fault leaves it partially transformed: some rows biased (or
		// rectified), others not. Retrying a sweep would double-apply
		// the bias to the rows that finished. Recover by abandoning out
		// (never back to the pool — its state is unknowable) and
		// recomputing the whole layer fused into a fresh tensor.
		err = addBias(out, b, eng.Threads)
		if err == nil && c.ReLU {
			err = applyReLU(out, eng.Threads)
		}
		if err != nil {
			eng.logLimited("fusedsweep|"+shapeKey(s), "nn: %s: epilogue sweep faulted (%v); recomputing layer fused", c.LayerName, err)
			return fusedFallback()
		}
		return out, nil
	}
}

func (eng *Engine) schedule(s conv.Shape) autotune.Schedule {
	if sch, ok := eng.Schedules[shapeKey(s)]; ok {
		return autotune.ClampFor(sch, s)
	}
	return autotune.DefaultSchedule(s)
}

// --- Elementwise / normalisation passes ---

// The elementwise passes are checked (they return the parallel
// runtime's typed error instead of panicking): they run inside
// TryForward's panic-free contract, and a worker fault in a few-
// microsecond epilogue must degrade exactly like one in the
// convolution itself.

func addBias(t *tensor.Tensor, bias []float32, threads int) error {
	n, k := t.Dims[0], t.Dims[1]
	pq := t.Dims[2] * t.Dims[3]
	return parallel.For(n*k, threads, func(nk int) {
		b := bias[nk%k]
		row := t.Data[nk*pq : (nk+1)*pq]
		for i := range row {
			row[i] += b
		}
	})
}

func applyBN(t *tensor.Tensor, bn *BNParams, threads int) error {
	n, k := t.Dims[0], t.Dims[1]
	pq := t.Dims[2] * t.Dims[3]
	return parallel.For(n*k, threads, func(nk int) {
		c := nk % k
		scale := bn.Gamma[c] / float32(math.Sqrt(float64(bn.Var[c])+float64(bn.Eps)))
		shift := bn.Beta[c] - bn.Mean[c]*scale
		row := t.Data[nk*pq : (nk+1)*pq]
		for i := range row {
			row[i] = row[i]*scale + shift
		}
	})
}

func applyReLU(t *tensor.Tensor, threads int) error {
	return parallel.ForRange(len(t.Data), threads, func(_ int, r parallel.Range) {
		d := t.Data[r.Lo:r.Hi]
		for i := range d {
			if d[i] < 0 {
				d[i] = 0
			}
		}
	})
}

// --- Supporting layers ---

// ReLULayer is a standalone activation.
type ReLULayer struct{}

func (ReLULayer) Name() string { return "relu" }
func (ReLULayer) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	if err := applyReLU(x, eng.Threads); err != nil {
		panic(fmt.Sprintf("nn: relu: %v", err)) // unchecked contract; TryForward recovers
	}
	return x
}

// MaxPool is a spatial max pooling layer.
type MaxPool struct {
	K, Str, Pad int
}

func (m *MaxPool) Name() string { return "maxpool" }

func (m *MaxPool) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dims[0], x.Dims[1], x.Dims[2], x.Dims[3]
	p := (h+2*m.Pad-m.K)/m.Str + 1
	q := (w+2*m.Pad-m.K)/m.Str + 1
	out := eng.newTensor(n, c, p, q)
	parallel.MustFor(n*c, eng.Threads, func(nc int) {
		src := x.Data[nc*h*w : (nc+1)*h*w]
		dst := out.Data[nc*p*q : (nc+1)*p*q]
		for oj := 0; oj < p; oj++ {
			for oi := 0; oi < q; oi++ {
				best := float32(math.Inf(-1))
				for r := 0; r < m.K; r++ {
					ih := oj*m.Str - m.Pad + r
					if ih < 0 || ih >= h {
						continue
					}
					for s := 0; s < m.K; s++ {
						iw := oi*m.Str - m.Pad + s
						if iw < 0 || iw >= w {
							continue
						}
						if v := src[ih*w+iw]; v > best {
							best = v
						}
					}
				}
				if math.IsInf(float64(best), -1) {
					// A window that is entirely padding (degenerate
					// K/Pad combinations) has no input samples; emit
					// the padding value 0 instead of -Inf, which would
					// poison every downstream layer.
					best = 0
				}
				dst[oj*q+oi] = best
			}
		}
	})
	return out
}

// GlobalAvgPool reduces each channel plane to its mean.
type GlobalAvgPool struct{}

func (GlobalAvgPool) Name() string { return "gap" }

func (GlobalAvgPool) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	n, c := x.Dims[0], x.Dims[1]
	pq := x.Dims[2] * x.Dims[3]
	out := eng.newTensor(n, c, 1, 1)
	parallel.MustFor(n*c, eng.Threads, func(nc int) {
		var sum float64
		for _, v := range x.Data[nc*pq : (nc+1)*pq] {
			sum += float64(v)
		}
		out.Data[nc] = float32(sum / float64(pq))
	})
	return out
}

// FC is a fully connected layer on flattened activations.
type FC struct {
	LayerName string
	In, Out   int
	W         *tensor.Tensor // [Out, In]
	B         []float32
	ReLU      bool

	wtOnce sync.Once
	wt     *tensor.Tensor // cached transpose for the GEMM orientation
}

func (f *FC) Name() string { return f.LayerName }

func (f *FC) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	n := x.Dims[0]
	if x.Len() != n*f.In {
		panic(fmt.Sprintf("nn: FC %s input %v does not flatten to %d", f.LayerName, x.Dims, f.In))
	}
	out := eng.newTensor(n, f.Out)
	// out[n][o] = x[n][i] · W[o][i]: GEMM with B transposed — done by
	// swapping to out = X · Wᵀ via per-row dot products through the
	// Goto kernel on W's natural layout.
	// We materialise Wᵀ once for the GEMM-friendly orientation.
	wt := f.transposed()
	gemm.Gemm(n, f.Out, f.In, 1, x.Data, f.In, wt.Data, f.Out, 0, out.Data, f.Out,
		gemm.Config{Threads: eng.Threads})
	if f.B != nil {
		for i := 0; i < n; i++ {
			row := out.Data[i*f.Out : (i+1)*f.Out]
			for o := range row {
				row[o] += f.B[o]
			}
		}
	}
	if f.ReLU {
		if err := applyReLU(out, eng.Threads); err != nil {
			panic(fmt.Sprintf("nn: %s: %v", f.LayerName, err)) // unchecked contract; TryForward recovers
		}
	}
	return out
}

// transposed materialises Wᵀ exactly once, even under concurrent
// Forward calls on a shared network (same discipline as foldBN).
func (f *FC) transposed() *tensor.Tensor {
	f.wtOnce.Do(func() {
		wt := tensor.New(f.In, f.Out)
		for o := 0; o < f.Out; o++ {
			for i := 0; i < f.In; i++ {
				wt.Data[i*f.Out+o] = f.W.Data[o*f.In+i]
			}
		}
		f.wt = wt
	})
	return f.wt
}

// Softmax converts logits to probabilities (numerically stabilised).
type Softmax struct{}

func (Softmax) Name() string { return "softmax" }

func (Softmax) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	n := x.Dims[0]
	k := x.Len() / n
	out := eng.newTensor(x.Dims...)
	parallel.MustFor(n, eng.Threads, func(i int) {
		row := x.Data[i*k : (i+1)*k]
		dst := out.Data[i*k : (i+1)*k]
		maxV := row[0]
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			dst[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range dst {
			dst[j] *= inv
		}
	})
	return out
}

// --- Weight initialisation helpers ---

func heInit(t *tensor.Tensor, fanIn int, rng *rand.Rand) {
	std := float32(math.Sqrt(2 / float64(fanIn)))
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64()) * std
	}
}

func identityBN(k int) *BNParams {
	bn := &BNParams{
		Gamma: make([]float32, k),
		Beta:  make([]float32, k),
		Mean:  make([]float32, k),
		Var:   make([]float32, k),
		Eps:   1e-5,
	}
	for i := 0; i < k; i++ {
		bn.Gamma[i] = 1
		bn.Var[i] = 1
	}
	return bn
}

// LayerTime is one row of a profiled forward pass.
type LayerTime struct {
	Name    string
	Seconds float64
	// OutDims is the layer's output shape (for the report).
	OutDims []int
}

// ForwardProfiled runs the network recording per-layer wall time —
// the per-operator view behind the end-to-end comparisons (§8.3).
func (n *Network) ForwardProfiled(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, []LayerTime) {
	times := make([]LayerTime, 0, len(n.Layers))
	for _, l := range n.Layers {
		t0 := time.Now()
		x = l.Forward(eng, x)
		times = append(times, LayerTime{
			Name:    l.Name(),
			Seconds: time.Since(t0).Seconds(),
			OutDims: append([]int(nil), x.Dims...),
		})
	}
	return x, times
}
