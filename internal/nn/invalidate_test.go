package nn

import (
	"sync"
	"sync/atomic"
	"testing"

	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// TestInvalidateReuseRebuildsBitExact: the per-unit plan memo and
// packed-weight slots must not survive InvalidateReuse (the unregister
// / eviction entry point) — the next forward re-plans and re-packs,
// and the output stays bit-identical. The regression this pins down:
// before the generation counter, a memo entry cached across an
// invalidation could short-circuit planFor and execute a released
// PackedFilter whose budget charge was already returned.
func TestInvalidateReuseRebuildsBitExact(t *testing.T) {
	net := reuseNet()
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(17)
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}

	var retained, dropped atomic.Int64
	var pfs sync.Map // *core.PackedFilter → true while retained
	eng.OnPackRetain = func(pf *core.PackedFilter) {
		retained.Add(1)
		pfs.Store(pf, true)
	}
	eng.OnPackDrop = func(pf *core.PackedFilter) {
		dropped.Add(1)
		pfs.Delete(pf)
		pf.Release()
	}

	want, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	warm := retained.Load()
	if warm == 0 {
		t.Fatal("warmup retained no packed filters — the hook wiring is dead")
	}

	net.InvalidateReuse(eng)
	if got := dropped.Load(); got != warm {
		t.Fatalf("InvalidateReuse dropped %d of %d retained filters", got, warm)
	}
	pfs.Range(func(k, _ any) bool {
		t.Fatalf("packed filter %p still tracked after InvalidateReuse", k)
		return false
	})

	// The rebuild must go through packedFor again (retain count grows)
	// and reproduce the output bit-identically.
	got, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("post-invalidation forward differs by %g (want bit-identical)", d)
	}
	if retained.Load() != 2*warm {
		t.Fatalf("rebuild retained %d filters, want %d (a stale memo or slot survived invalidation)",
			retained.Load()-warm, warm)
	}
}

// TestEvictedPackedFilterRepacksMidTraffic: releasing a unit's packed
// filter out from under it (what the registry's LRU eviction does —
// no InvalidateReuse, just the atomic flag flip) must make the next
// forward detect the stale slot, drop it through OnPackDrop, re-pack,
// and still produce bit-identical output.
func TestEvictedPackedFilterRepacksMidTraffic(t *testing.T) {
	b := builderForTest()
	net := &Network{Name: "evict", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(23)
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}

	var live []*core.PackedFilter
	var mu sync.Mutex
	var drops atomic.Int64
	eng.OnPackRetain = func(pf *core.PackedFilter) {
		mu.Lock()
		live = append(live, pf)
		mu.Unlock()
	}
	eng.OnPackDrop = func(pf *core.PackedFilter) { drops.Add(1) }

	want, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(live) == 0 {
		mu.Unlock()
		t.Fatal("no packed filter retained")
	}
	for _, pf := range live {
		if !pf.Release() {
			t.Fatal("Release must report the flip on a live filter")
		}
	}
	mu.Unlock()

	got, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatalf("forward after eviction: %v", err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("post-eviction forward differs by %g (want bit-identical)", d)
	}
	if drops.Load() == 0 {
		t.Fatal("stale released slot was never dropped through OnPackDrop")
	}
}

// TestPackAdmitDeniedRunsUnpacked: an OnPackAdmit that refuses every
// charge (weight budget exhausted) must leave the unit fully servable
// on the on-the-fly transform — bit-identical output, nothing retained.
func TestPackAdmitDeniedRunsUnpacked(t *testing.T) {
	net := reuseNet()
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(29)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	var asked, retained atomic.Int64
	eng.OnPackAdmit = func(bytes int64) bool {
		if bytes <= 0 {
			t.Errorf("OnPackAdmit asked for non-positive charge %d", bytes)
		}
		asked.Add(1)
		return false
	}
	eng.OnPackRetain = func(*core.PackedFilter) { retained.Add(1) }

	for iter := 0; iter < 2; iter++ {
		got, err := net.TryForward(eng, x)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("iter %d: denied-residency forward differs by %g (want bit-identical)", iter, d)
		}
	}
	if asked.Load() == 0 {
		t.Fatal("OnPackAdmit never consulted")
	}
	if retained.Load() != 0 {
		t.Fatalf("%d filters retained despite denied admission", retained.Load())
	}
}

// TestForceReferenceBitExactAndIsolated: the quarantine engine must
// produce bit-identical results for integer-valued tensors in both the
// plain and fused configurations, without touching packed weights.
// BN parameters are normalised to exact identity (ε=0) so the fused
// fold keeps the weights integer-valued — the property that makes all
// execution strategies (optimised, packed, reference) agree bit-for-bit.
func TestForceReferenceBitExactAndIsolated(t *testing.T) {
	for _, fuse := range []bool{false, true} {
		net := reuseNet()
		x := tensor.New(1, 3, 16, 16)
		fillInts := func(dst *tensor.Tensor, seed int64) {
			r := newIntFiller(seed)
			for i := range dst.Data {
				dst.Data[i] = r()
			}
		}
		fillInts(x, 31)
		for _, u := range net.ConvUnits() {
			fillInts(u.Weights, int64(len(u.LayerName)))
			if u.BN != nil {
				u.BN.Eps = 0 // Gamma=1, Var=1 → fold scale exactly 1
			}
		}
		var fixDSC func(ls []Layer)
		fixDSC = func(ls []Layer) {
			for _, l := range ls {
				if d, ok := l.(*DepthwiseSeparable); ok {
					fillInts(d.DWFilter, 37)
					d.DWBN.Eps = 0
				}
			}
		}
		fixDSC(net.Layers)

		plans := core.NewPlanCache(0)
		want, err := net.TryForward(&Engine{Algo: AlgoNDirect, Threads: 2, Fuse: fuse, Reuse: true, Plans: plans}, x)
		if err != nil {
			t.Fatal(err)
		}

		var retained atomic.Int64
		ref := &Engine{Algo: AlgoNDirect, Threads: 2, Fuse: fuse, Reuse: true, Plans: plans, ForceReference: true}
		ref.OnPackRetain = func(*core.PackedFilter) { retained.Add(1) }
		got, err := net.TryForward(ref, x)
		if err != nil {
			t.Fatalf("fuse=%v: quarantined forward: %v", fuse, err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("fuse=%v: reference route differs by %g (want bit-identical on integer tensors)", fuse, d)
		}
		if retained.Load() != 0 {
			t.Fatalf("fuse=%v: quarantined engine retained %d packed filters (must not touch packed weights)", fuse, retained.Load())
		}
	}
}

// newIntFiller returns a deterministic stream of small integer-valued
// float32s (exactly representable), so every execution strategy —
// optimised, packed, reference — produces bit-identical results.
func newIntFiller(seed int64) func() float32 {
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	return func() float32 {
		state = state*6364136223846793005 + 1442695040888963407
		return float32(int64(state>>33)%7 - 3)
	}
}
