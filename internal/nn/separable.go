package nn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// Fused depthwise-separable serving (DESIGN.md §13). A
// DepthwiseSeparable block on a Reuse+nDirect engine routes through
// core.SeparablePlan: the depthwise stage's BN+ReLU fold into the
// plan's per-channel depthwise epilogue, the pointwise unit's BN+ReLU
// into its fused store epilogue, and row tiles of depthwise output
// feed the pointwise micro-kernel straight from pooled scratch — the
// full C·P·Q intermediate is never materialised. The fused route is
// bit-identical to the unfused composition (the core's contract), so
// every other engine configuration — ForceReference (the quarantine
// rung), Fuse (Ansor-style weight folding), the baseline backends —
// keeps today's unfused path and today's bits.

// channelEpilogue builds the core's per-channel epilogue form of a
// BN(+ReLU) pair using the exact float32 expressions applyBN evaluates
// (scale = γ/√(σ²+ε), shift = β − μ·scale), so fusing it into the
// depthwise store is bit-identical to running the sweeps.
func channelEpilogue(bn *BNParams, ch int, relu bool) *core.EpilogueParams {
	if bn == nil && !relu {
		return nil
	}
	ep := &core.EpilogueParams{ReLU: relu}
	if bn != nil {
		scale := make([]float32, ch)
		shift := make([]float32, ch)
		for c := range scale {
			sc := bn.Gamma[c] / float32(math.Sqrt(float64(bn.Var[c])+float64(bn.Eps)))
			scale[c] = sc
			shift[c] = bn.Beta[c] - bn.Mean[c]*sc
		}
		ep.Scale, ep.Shift = scale, shift
	}
	return ep
}

// sepMemoEntry records the inputs that determine a fused separable
// plan (same role as ConvUnit.planMemos for standard plans, which the
// core.PlanCache cannot hold — it is keyed for *core.Plan).
type sepMemoEntry struct {
	shape   core.SeparableShape
	threads int
	rowTile int // manifest-forced row tile (0 = plan-solved)
	dwEp    *core.EpilogueParams
	pwEp    *core.EpilogueParams
	gen     uint64 // unit reuse generation at build
	kernGen uint64 // kernel-dispatch generation at build
	plan    *core.SeparablePlan
}

// separableShape returns the block's fused geometry at the given batch
// and whether the two stages actually compose (the pointwise unit is a
// 1×1/stride-1/pad-0 convolution on the depthwise output grid). A
// non-composing block — hand-built with mismatched stages — simply
// never takes the fused route.
func (d *DepthwiseSeparable) separableShape(batch int) (core.SeparableShape, bool) {
	dw, pw := d.DWShape, d.PW.Shape
	if pw.R != 1 || pw.S != 1 || pw.Str != 1 || pw.Pad != 0 || pw.C != dw.C {
		return core.SeparableShape{}, false
	}
	ss := core.SeparableShape{
		N: batch, C: dw.C, H: dw.H, W: dw.W,
		K: pw.K, R: dw.R, S: dw.S, Str: dw.Str, Pad: dw.Pad,
	}
	if pw.H != ss.P() || pw.W != ss.Q() {
		return core.SeparableShape{}, false
	}
	return ss, true
}

// dwEpilogue returns the depthwise stage's BN+ReLU as a per-channel
// fused epilogue, built once (the stable pointer is the memo identity,
// like ConvUnit.fusedEpilogue).
func (d *DepthwiseSeparable) dwEpilogue() *core.EpilogueParams {
	d.dwEpOnce.Do(func() {
		d.dwEp = channelEpilogue(d.DWBN, d.DWShape.C, true)
	})
	return d.dwEp
}

// sepPlanFor resolves the block's fused plan through the per-unit memo
// (slotted by batch like ConvUnit.planMemos). A memo entry is stale
// when the unit's reuse generation moved (eviction/unregister) or the
// kernel-dispatch generation moved (a depthwise or pointwise family
// was quarantined or restored) — either way the plan is rebuilt so it
// re-dispatches against the current registry.
func (d *DepthwiseSeparable) sepPlanFor(eng *Engine, ss core.SeparableShape) (*core.SeparablePlan, error) {
	gen := d.sepGen.Load()
	kernGen := core.KernelDispatchGeneration()
	dwEp := d.dwEpilogue()
	pwEp := d.PW.fusedEpilogue()
	rowTile := eng.dwRowTile(ss.DWShape())
	slot := &d.sepMemos[ss.N&3]
	if m := slot.Load(); m != nil && m.gen == gen && m.kernGen == kernGen &&
		m.shape == ss && m.threads == eng.Threads && m.rowTile == rowTile &&
		m.dwEp == dwEp && m.pwEp == pwEp {
		return m.plan, nil
	}
	opt := core.Options{
		Threads:           eng.Threads,
		DepthwiseEpilogue: dwEp,
		FusedEpilogue:     pwEp,
		ForceTh:           rowTile,
	}
	plan, err := core.TryNewSeparablePlan(ss, opt)
	if err != nil {
		return nil, err
	}
	slot.Store(&sepMemoEntry{
		shape: ss, threads: eng.Threads, rowTile: rowTile,
		dwEp: dwEp, pwEp: pwEp, gen: gen, kernGen: kernGen, plan: plan,
	})
	return plan, nil
}

// packedDWFor returns the block's packed depthwise filter, building it
// on first use. Unlike the pointwise artifact (a budget-charged
// core.PackedFilter shared with the standalone unit via PW.packedFor),
// the depthwise pack is an identity-layout copy of the [C,R,S] filter
// — kilobytes against the pointwise megabytes — and is held per-unit
// below the weight-residency accounting.
func (d *DepthwiseSeparable) packedDWFor(eng *Engine, plan *core.SeparablePlan) (*core.PackedDepthwiseFilter, error) {
	d.sepMu.Lock()
	defer d.sepMu.Unlock()
	if pf := d.sepPackedDW; pf != nil && pf.Source() == d.DWFilter && !pf.Released() {
		return pf, nil
	}
	d.sepPackedDW = nil
	pf, err := plan.TransformDepthwiseFilter(d.DWFilter)
	if err != nil {
		return nil, err
	}
	if verr := pf.Verify(); verr != nil {
		eng.logLimited("integrity|pack|"+d.LayerName,
			"nn: %s: fresh depthwise pack failed verification, serving unpacked: %v", d.LayerName, verr)
		return nil, nil
	}
	d.sepPackedDW = pf
	return pf, nil
}

// discardPackedDW retires the depthwise artifact after a mid-execution
// integrity failure; the next fetch re-packs bit-identically from the
// retained [C,R,S] source.
func (d *DepthwiseSeparable) discardPackedDW(pf *core.PackedDepthwiseFilter) {
	d.sepMu.Lock()
	if d.sepPackedDW == pf {
		d.sepPackedDW = nil
	}
	d.sepMu.Unlock()
	pf.Release()
}

// invalidateReuse retires the block's fused serving state (the memo
// and the depthwise pack; the pointwise pack lives on the PW unit and
// is retired by its own invalidateReuse).
func (d *DepthwiseSeparable) invalidateReuse(eng *Engine) {
	d.sepMu.Lock()
	d.sepGen.Add(1)
	for i := range d.sepMemos {
		d.sepMemos[i].Store(nil)
	}
	if pf := d.sepPackedDW; pf != nil {
		d.sepPackedDW = nil
		pf.Release()
	}
	d.sepMu.Unlock()
	_ = eng
}

// tryFused runs the block on the fused separable path when the engine
// configuration admits it, reporting handled=false (with no error) to
// send the caller down the unfused path — on configuration mismatch,
// on a plan the core cannot build (a shape outside the fused
// contract), or after an unrecoverable execution fault, where the
// unfused composition is the bit-identical recovery.
func (d *DepthwiseSeparable) tryFused(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, bool, error) {
	if !eng.Reuse || eng.Algo != AlgoNDirect || eng.ForceReference || eng.Fuse || d.DWBN == nil {
		return nil, false, nil
	}
	ss, ok := d.separableShape(x.Dims[0])
	if !ok {
		return nil, false, nil
	}
	plan, err := d.sepPlanFor(eng, ss)
	if err != nil {
		eng.logLimited("sep|plan|"+d.LayerName,
			"nn: %s: fused separable plan unavailable (%v); serving unfused", d.LayerName, err)
		return nil, false, nil
	}
	pdw, err := d.packedDWFor(eng, plan)
	if err != nil {
		return nil, false, nil
	}
	ppw, err := d.PW.packedFor(eng, plan.PointwisePlan(), d.PW.Weights)
	if err != nil {
		return nil, false, nil
	}
	out := eng.newTensor(ss.N, ss.K, ss.P(), ss.Q())
	ctx, cancel := eng.convCtx()
	defer cancel()
	err = d.execFused(eng, ctx, plan, x, pdw, ppw, out)
	if err == nil {
		return out, true, nil
	}
	if errors.Is(err, conv.ErrDeadline) {
		eng.logLimited("budget|sep|"+d.LayerName,
			"nn: %s: fused path missed ConvBudget; recomputing unbounded: %v", d.LayerName, err)
		// Abandoned workers may still write into out: leak it (never
		// back to the pool) and recompute into a fresh tensor.
		out = eng.newTensor(ss.N, ss.K, ss.P(), ss.Q())
		if err := d.execFused(eng, context.Background(), plan, x, pdw, ppw, out); err == nil {
			return out, true, nil
		}
	}
	eng.logLimited("sep|exec|"+d.LayerName,
		"nn: %s: fused path failed (%v); serving unfused", d.LayerName, err)
	return nil, false, nil
}

// execFused executes one fused forward, degrading through the typed
// recovery ladder the standard Reuse path has: a released or
// integrity-failing packed artifact drops to the on-the-fly transform
// (bit-identical; the suspect artifact is discarded so the next call
// re-packs from source).
func (d *DepthwiseSeparable) execFused(eng *Engine, ctx context.Context, plan *core.SeparablePlan, x *tensor.Tensor,
	pdw *core.PackedDepthwiseFilter, ppw *core.PackedFilter, out *tensor.Tensor) error {
	bounded := ctx.Done() != nil
	if pdw != nil && ppw != nil {
		var err error
		if bounded {
			err = plan.TryExecutePackedCtx(ctx, x, pdw, ppw, out)
		} else {
			err = plan.TryExecutePacked(x, pdw, ppw, out)
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrWeightsReleased) || errors.Is(err, core.ErrIntegrity) {
			// Integrity failures join the grid before returning and a
			// released artifact is rejected before launch, so out is safe
			// to reuse on the unpacked retry.
			if errors.Is(err, core.ErrIntegrity) {
				d.discardPackedDW(pdw)
				d.PW.discardPacked(eng, ppw)
			}
		} else {
			return err
		}
	}
	if bounded {
		return plan.TryExecuteCtx(ctx, x, d.DWFilter, d.PW.Weights, out)
	}
	return plan.TryExecute(x, d.DWFilter, d.PW.Weights, out)
}

// --- Standalone depthwise unit ---

// DepthwiseConv is a standalone depthwise conv→BN→ReLU unit — the
// pre-fusion graph form. Network.FuseSeparable rewrites a
// DepthwiseConv followed by its matching 1×1 ConvUnit into a
// DepthwiseSeparable block; a unit left unfused still serves through
// the register-tiled DepthwisePlan on a Reuse engine (with its BN+ReLU
// folded into the plan's per-channel epilogue), and through the plane
// loop everywhere else.
type DepthwiseConv struct {
	LayerName string
	Shape     conv.Shape     // depthwise geometry (K = C)
	Filter    *tensor.Tensor // [C, R, S]
	BN        *BNParams      // optional
	ReLU      bool

	epOnce sync.Once
	ep     *core.EpilogueParams

	planMemos [4]atomic.Pointer[dwMemoEntry]
	reuseGen  atomic.Uint64

	packMu sync.Mutex
	packed *core.PackedDepthwiseFilter
}

type dwMemoEntry struct {
	s       conv.Shape
	threads int
	rowTile int
	ep      *core.EpilogueParams
	gen     uint64
	kernGen uint64
	plan    *core.DepthwisePlan
}

func (d *DepthwiseConv) Name() string { return d.LayerName }

func (d *DepthwiseConv) Forward(eng *Engine, x *tensor.Tensor) *tensor.Tensor {
	out, err := d.tryForward(eng, x)
	if err != nil {
		panic(fmt.Sprintf("nn: %s: %v", d.LayerName, err))
	}
	return out
}

func (d *DepthwiseConv) epilogue() *core.EpilogueParams {
	d.epOnce.Do(func() {
		d.ep = channelEpilogue(d.BN, d.Shape.C, d.ReLU)
	})
	return d.ep
}

func (d *DepthwiseConv) planFor(eng *Engine, s conv.Shape) (*core.DepthwisePlan, error) {
	gen := d.reuseGen.Load()
	kernGen := core.KernelDispatchGeneration()
	ep := d.epilogue()
	rowTile := eng.dwRowTile(s)
	slot := &d.planMemos[s.N&3]
	if m := slot.Load(); m != nil && m.gen == gen && m.kernGen == kernGen &&
		m.s == s && m.threads == eng.Threads && m.rowTile == rowTile && m.ep == ep {
		return m.plan, nil
	}
	plan, err := core.TryNewDepthwisePlan(s, core.Options{
		Threads: eng.Threads, FusedEpilogue: ep, ForceTh: rowTile,
	})
	if err != nil {
		return nil, err
	}
	slot.Store(&dwMemoEntry{s: s, threads: eng.Threads, rowTile: rowTile, ep: ep, gen: gen, kernGen: kernGen, plan: plan})
	return plan, nil
}

func (d *DepthwiseConv) packedFor(eng *Engine, plan *core.DepthwisePlan) (*core.PackedDepthwiseFilter, error) {
	d.packMu.Lock()
	defer d.packMu.Unlock()
	if pf := d.packed; pf != nil && pf.Source() == d.Filter && pf.CompatibleWith(plan) && !pf.Released() {
		return pf, nil
	}
	d.packed = nil
	pf, err := plan.TransformFilter(d.Filter)
	if err != nil {
		return nil, err
	}
	if verr := pf.Verify(); verr != nil {
		eng.logLimited("integrity|pack|"+d.LayerName,
			"nn: %s: fresh depthwise pack failed verification, serving unpacked: %v", d.LayerName, verr)
		return nil, nil
	}
	d.packed = pf
	return pf, nil
}

func (d *DepthwiseConv) discardPacked(pf *core.PackedDepthwiseFilter) {
	d.packMu.Lock()
	if d.packed == pf {
		d.packed = nil
	}
	d.packMu.Unlock()
	pf.Release()
}

func (d *DepthwiseConv) invalidateReuse(eng *Engine) {
	d.packMu.Lock()
	d.reuseGen.Add(1)
	for i := range d.planMemos {
		d.planMemos[i].Store(nil)
	}
	if pf := d.packed; pf != nil {
		d.packed = nil
		pf.Release()
	}
	d.packMu.Unlock()
	_ = eng
}

func (d *DepthwiseConv) tryForward(eng *Engine, x *tensor.Tensor) (*tensor.Tensor, error) {
	s := d.Shape.WithBatch(x.Dims[0])
	s.K = s.C
	if eng.Reuse && eng.Algo == AlgoNDirect && !eng.ForceReference {
		if out, handled, err := d.tryPlanned(eng, s, x); handled {
			return out, err
		}
	}
	// Unfused / quarantine path: the plane loop plus separate sweeps —
	// today's reference behaviour, bit-identical to the planned route.
	out, err := core.TryDepthwiseConv2D(s, x, d.Filter, core.Options{Threads: eng.Threads})
	if err != nil {
		return nil, err
	}
	if d.BN != nil {
		if err := applyBN(out, d.BN, eng.Threads); err != nil {
			return nil, err
		}
	}
	if d.ReLU {
		if err := applyReLU(out, eng.Threads); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// tryPlanned runs the unit on the register-tiled DepthwisePlan with
// the BN+ReLU fused into the per-channel store epilogue. handled=false
// falls back to the plane-loop path (bit-identical).
func (d *DepthwiseConv) tryPlanned(eng *Engine, s conv.Shape, x *tensor.Tensor) (*tensor.Tensor, bool, error) {
	plan, err := d.planFor(eng, s)
	if err != nil {
		eng.logLimited("dw|plan|"+d.LayerName,
			"nn: %s: depthwise plan unavailable (%v); serving on the plane loop", d.LayerName, err)
		return nil, false, nil
	}
	pf, err := d.packedFor(eng, plan)
	if err != nil {
		return nil, false, nil
	}
	out := eng.newTensor(s.N, s.C, s.P(), s.Q())
	ctx, cancel := eng.convCtx()
	defer cancel()
	err = d.execPlanned(ctx, plan, x, pf, out)
	if err == nil {
		return out, true, nil
	}
	if errors.Is(err, conv.ErrDeadline) {
		eng.logLimited("budget|dw|"+d.LayerName,
			"nn: %s: depthwise plan missed ConvBudget; recomputing unbounded: %v", d.LayerName, err)
		out = eng.newTensor(s.N, s.C, s.P(), s.Q()) // leak the abandoned one
		if err := d.execPlanned(context.Background(), plan, x, pf, out); err == nil {
			return out, true, nil
		}
	}
	eng.logLimited("dw|exec|"+d.LayerName,
		"nn: %s: depthwise plan failed (%v); serving on the plane loop", d.LayerName, err)
	return nil, false, nil
}

func (d *DepthwiseConv) execPlanned(ctx context.Context, plan *core.DepthwisePlan, x *tensor.Tensor,
	pf *core.PackedDepthwiseFilter, out *tensor.Tensor) error {
	bounded := ctx.Done() != nil
	if pf != nil {
		var err error
		if bounded {
			err = plan.TryExecutePackedCtx(ctx, x, pf, out)
		} else {
			err = plan.TryExecutePacked(x, pf, out)
		}
		if err == nil {
			return nil
		}
		if errors.Is(err, core.ErrWeightsReleased) || errors.Is(err, core.ErrIntegrity) {
			if errors.Is(err, core.ErrIntegrity) {
				d.discardPacked(pf)
			}
		} else {
			return err
		}
	}
	if bounded {
		return plan.TryExecuteCtx(ctx, x, d.Filter, out)
	}
	return plan.TryExecute(x, d.Filter, out)
}

// --- Graph-level fusion ---

// FuseSeparable rewrites every DepthwiseConv immediately followed by
// its matching 1×1 ConvUnit into a fused DepthwiseSeparable block,
// returning how many pairs were rewritten. A pair matches when the
// depthwise unit carries the block's canonical BN+ReLU and the
// pointwise unit is a 1×1/stride-1/pad-0 convolution consuming exactly
// the depthwise output grid. Rewriting changes the execution strategy,
// never the bits: the fused block's forward is bit-identical to the
// pair it replaced on every engine configuration.
func (n *Network) FuseSeparable() int {
	fused := 0
	out := n.Layers[:0]
	for i := 0; i < len(n.Layers); i++ {
		if dwc, ok := n.Layers[i].(*DepthwiseConv); ok && i+1 < len(n.Layers) {
			if pw, ok := n.Layers[i+1].(*ConvUnit); ok && separablePair(dwc, pw) {
				out = append(out, &DepthwiseSeparable{
					LayerName: dwc.LayerName + "+" + pw.LayerName,
					DWShape:   dwc.Shape,
					DWFilter:  dwc.Filter,
					DWBN:      dwc.BN,
					PW:        pw,
				})
				i++
				fused++
				continue
			}
		}
		out = append(out, n.Layers[i])
	}
	n.Layers = out
	return fused
}

// separablePair reports whether dwc→pw compose into the canonical
// depthwise-separable block (DepthwiseSeparable's fixed dw-stage
// BN+ReLU, geometry chained exactly).
func separablePair(dwc *DepthwiseConv, pw *ConvUnit) bool {
	if dwc.BN == nil || !dwc.ReLU {
		return false
	}
	s := dwc.Shape
	s.K = s.C
	if pw.Shape.R != 1 || pw.Shape.S != 1 || pw.Shape.Str != 1 || pw.Shape.Pad != 0 {
		return false
	}
	return pw.Shape.C == s.C && pw.Shape.H == s.P() && pw.Shape.W == s.Q()
}
