package nn

import (
	"fmt"

	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// TryForwardBatch runs ONE forward pass over a set of coalesced
// requests: the inputs are stacked along the batch axis, the network
// executes once at N = Σ n_i (so every conv layer plans, packs and
// joins one worker grid instead of len(xs)), and the stacked output is
// split back into per-request views — no copy on the way out. Because
// every layer's per-image work is independent of N (the conv tile
// solvers ignore the batch dimension, and the elementwise / pooling /
// FC passes partition on it), the result for each request is
// bit-identical to a solo TryForward of that request.
//
// Inputs must be 4D NCHW with matching C/H/W (ragged per-request batch
// dims are fine). The returned tensors are views into one backing
// array: treat them as read-only results and do not return them to a
// buffer pool (serve.Runtime.Recycle refuses them by construction).
func (n *Network) TryForwardBatch(eng *Engine, xs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty forward batch", core.ErrBadOptions)
	}
	if len(xs) == 1 {
		out, err := n.TryForward(eng, xs[0])
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{out}, nil
	}
	first := xs[0]
	if len(first.Dims) != 4 {
		return nil, fmt.Errorf("%w: batched forward needs NCHW inputs, got %v", core.ErrBadOptions, first.Dims)
	}
	c, h, w := first.Dims[1], first.Dims[2], first.Dims[3]
	total := 0
	for i, x := range xs {
		if x == nil || len(x.Dims) != 4 || x.Dims[0] < 1 || x.Dims[1] != c || x.Dims[2] != h || x.Dims[3] != w {
			return nil, fmt.Errorf("%w: batch member %d does not match geometry %dx%dx%d", core.ErrBadOptions, i, c, h, w)
		}
		total += x.Dims[0]
	}

	// Stack. This is the one copy batching costs on the way in; the
	// stacked buffer comes from the engine pool and goes back as soon as
	// the first layer has consumed it (TryForward treats it as the
	// caller's input and never releases it itself).
	per := c * h * w
	stacked := eng.newTensor(total, c, h, w)
	off := 0
	for _, x := range xs {
		copy(stacked.Data[off*per:(off+x.Dims[0])*per], x.Data)
		off += x.Dims[0]
	}
	out, err := n.TryForward(eng, stacked)
	if err != nil {
		// A failed layer may have abandoned workers still touching its
		// operands; leave stacked to the GC rather than the pool.
		return nil, err
	}
	if out != stacked {
		eng.release(stacked)
	}
	if len(out.Dims) < 1 || out.Dims[0] != total {
		return nil, fmt.Errorf("%w: network changed the batch axis: in %d out %v", core.ErrBadOptions, total, out.Dims)
	}

	// Scatter: per-request views into the stacked output, zero copies.
	perOut := out.Len() / total
	outs := make([]*tensor.Tensor, len(xs))
	off = 0
	for i, x := range xs {
		ni := x.Dims[0]
		dims := append([]int{ni}, out.Dims[1:]...)
		outs[i] = tensor.FromSlice(out.Data[off*perOut:(off+ni)*perOut], dims...)
		off += ni
	}
	return outs, nil
}
