package nn

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// An armed weight-bitflip against a reuse engine's packed weights must
// be invisible in the outputs: the checksum catches it, the suspect
// artifact is discarded and the request served with the on-the-fly
// transform, and the next forward re-packs bit-identically — the full
// detect-and-recover chain of DESIGN.md §12.
func TestForwardRecoversFromWeightBitflip(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	w := s.NewFilter()
	fillIntsB(w, 21)
	net := &Network{Name: "sdc", Layers: []Layer{
		&ConvUnit{LayerName: "c1", Shape: s, Weights: w, ReLU: true},
	}}
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	x := tensor.New(1, 4, 8, 8)
	fillIntsB(x, 50)

	want, err := net.TryForward(eng, x) // warm: plans built, weights packed
	if err != nil {
		t.Fatal(err)
	}

	pre := core.IntegritySnapshot()
	faultinject.Arm(faultinject.WeightBitflip, 5)
	got, err := net.TryForward(eng, x)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("forward under bitflip must recover, not fail: %v", err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("bitflipped forward differs by %g, want bit-exact (corruption must never reach the output)", d)
	}
	post := core.IntegritySnapshot()
	if post.PackedVerifyFailures != pre.PackedVerifyFailures+1 {
		t.Fatalf("PackedVerifyFailures %d -> %d, want +1 (the flip must be caught, not missed)",
			pre.PackedVerifyFailures, post.PackedVerifyFailures)
	}

	// The discarded artifact was re-packed on the next fetch: a clean
	// forward is packed again and still bit-exact.
	got2, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got2, want); d != 0 {
		t.Fatalf("post-recovery forward differs by %g", d)
	}
	if u := net.ConvUnits()[0]; u.packedRaw == nil {
		t.Fatal("clean forward after recovery must have re-packed the weights")
	}
}

// A scratch-canary trip inside a reuse engine's packed execution also
// surfaces as ErrIntegrity; the forward must recover bit-exactly on
// the unpacked retry (whose fresh run state has intact canaries).
func TestForwardRecoversFromScratchOverrun(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	w := s.NewFilter()
	fillIntsB(w, 31)
	net := &Network{Name: "sdc2", Layers: []Layer{
		&ConvUnit{LayerName: "c1", Shape: s, Weights: w, ReLU: true},
	}}
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	x := tensor.New(1, 4, 8, 8)
	fillIntsB(x, 60)

	want, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.ScratchOverrun, 0)
	got, err := net.TryForward(eng, x)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("forward under scratch overrun must recover, not fail: %v", err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("overrun forward differs by %g, want bit-exact", d)
	}
}
