package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// Weight serialization: a minimal, deterministic binary format
// ("NDWT1") holding every parameter slice of the network in layer
// order. Replaces the framework checkpoint loading a production
// integration would have; enough to move trained weights in and out
// of the engine and to round-trip models between processes.

const weightsMagic = "NDWT1"

// paramSlices returns every parameter buffer of the network in a
// deterministic order (layer order, and a fixed within-layer order).
func (n *Network) paramSlices() [][]float32 {
	var out [][]float32
	appendBN := func(bn *BNParams) {
		if bn != nil {
			out = append(out, bn.Gamma, bn.Beta, bn.Mean, bn.Var)
		}
	}
	appendConv := func(c *ConvUnit) {
		out = append(out, c.Weights.Data)
		if c.Bias != nil {
			out = append(out, c.Bias)
		}
		appendBN(c.BN)
	}
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *ConvUnit:
				appendConv(v)
			case *Bottleneck:
				walk(v.sublayers())
			case *BasicBlock:
				walk(v.sublayers())
			case *DepthwiseSeparable:
				out = append(out, v.DWFilter.Data)
				appendBN(v.DWBN)
				appendConv(v.PW)
			case *FC:
				out = append(out, v.W.Data)
				if v.B != nil {
					out = append(out, v.B)
				}
			}
		}
	}
	walk(n.Layers)
	return out
}

// invalidateCaches drops derived parameter caches (BN-folded weights,
// pre-transformed filters, FC transposes) after the underlying
// parameters change. Weight loading is an exclusive operation — it
// rewrites the parameter slices in place — so resetting the sync.Once
// guards here is safe; no Forward may be in flight.
func (n *Network) invalidateCaches() {
	var walk func(ls []Layer)
	clearConv := func(c *ConvUnit) {
		c.foldOnce = sync.Once{}
		c.folded, c.foldedB = nil, nil
		c.packMu.Lock()
		c.packedRaw, c.packedFolded = nil, nil
		c.packMu.Unlock()
	}
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch v := l.(type) {
			case *ConvUnit:
				clearConv(v)
			case *Bottleneck:
				walk(v.sublayers())
			case *BasicBlock:
				walk(v.sublayers())
			case *DepthwiseSeparable:
				clearConv(v.PW)
			case *FC:
				v.wtOnce = sync.Once{}
				v.wt = nil
			}
		}
	}
	walk(n.Layers)
}

// WriteWeights serialises every parameter of the network to w.
func (n *Network) WriteWeights(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightsMagic); err != nil {
		return err
	}
	slices := n.paramSlices()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(slices))); err != nil {
		return err
	}
	var buf [4]byte
	for _, s := range slices {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(s))); err != nil {
			return err
		}
		for _, v := range s {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadWeights deserialises parameters written by WriteWeights into
// this network, which must have the identical architecture. Every
// slice length is validated before anything is overwritten.
func (n *Network) ReadWeights(r io.Reader) error {
	br := bufio.NewReader(r)
	magic := make([]byte, len(weightsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return fmt.Errorf("nn: reading weights header: %w", err)
	}
	if string(magic) != weightsMagic {
		return fmt.Errorf("nn: bad weights magic %q", magic)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	slices := n.paramSlices()
	if int(count) != len(slices) {
		return fmt.Errorf("nn: weight file has %d tensors, network has %d", count, len(slices))
	}
	// Stage into temporaries so a malformed file cannot leave the
	// network half-loaded.
	staged := make([][]float32, len(slices))
	var buf [4]byte
	for i, s := range slices {
		var length uint64
		if err := binary.Read(br, binary.LittleEndian, &length); err != nil {
			return err
		}
		if int(length) != len(s) {
			return fmt.Errorf("nn: tensor %d has %d elements in file, %d in network", i, length, len(s))
		}
		tmp := make([]float32, length)
		for j := range tmp {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return err
			}
			tmp[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[:]))
		}
		staged[i] = tmp
	}
	for i, s := range slices {
		copy(s, staged[i])
	}
	n.invalidateCaches()
	return nil
}
