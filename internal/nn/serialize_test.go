package nn

import (
	"bytes"
	"strings"
	"testing"

	"ndirect/internal/tensor"
)

func tinyNet() *Network {
	b := builderForTest()
	return &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 12, 3, 1, 1, true, true),
		b.dsc("d1", 8, 16, 12, 1),
		GlobalAvgPool{},
		b.fc("fc", 16, 4, false),
		Softmax{},
	}}
}

func TestWeightsRoundTrip(t *testing.T) {
	src := tinyNet()
	// Make the source distinctive.
	for _, s := range src.paramSlices() {
		for i := range s {
			s[i] += 0.001 * float32(i%7)
		}
	}
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}

	dst := tinyNet() // same architecture, different weights
	if err := dst.ReadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Outputs must now be identical.
	eng := &Engine{Algo: AlgoNDirect, Threads: 1}
	x := tensor.New(1, 3, 12, 12)
	x.FillRandom(9)
	a := src.Forward(eng, x)
	b := dst.Forward(eng, x)
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("weights round trip changed outputs")
	}
}

func TestReadWeightsInvalidatesFoldedCache(t *testing.T) {
	net := tinyNet()
	eng := &Engine{Algo: AlgoNDirect, Threads: 1, Fuse: true}
	x := tensor.New(1, 3, 12, 12)
	x.FillRandom(9)
	before := net.Forward(eng, x) // populates folded-weight caches

	// Re-load different weights; fused outputs must change.
	other := tinyNet()
	for _, s := range other.paramSlices() {
		for i := range s {
			s[i] *= 1.5
		}
	}
	var buf bytes.Buffer
	if err := other.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := net.ReadWeights(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := net.Forward(eng, x)
	if tensor.MaxAbsDiff(before, after) == 0 {
		t.Fatal("fused caches not invalidated on weight load")
	}
}

func TestReadWeightsRejectsBadMagic(t *testing.T) {
	net := tinyNet()
	err := net.ReadWeights(strings.NewReader("WRONGHEADER........."))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("expected magic error, got %v", err)
	}
}

func TestReadWeightsRejectsWrongArchitecture(t *testing.T) {
	src := tinyNet()
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	b := builderForTest()
	other := &Network{Name: "different", Layers: []Layer{
		b.convUnit("c1", 3, 4, 12, 3, 1, 1, true, true),
	}}
	if err := other.ReadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("expected architecture mismatch error")
	}
}

func TestReadWeightsTruncatedFileLeavesNetworkIntact(t *testing.T) {
	src := tinyNet()
	var buf bytes.Buffer
	if err := src.WriteWeights(&buf); err != nil {
		t.Fatal(err)
	}
	dst := tinyNet()
	beforeSum := paramSum(dst)
	trunc := buf.Bytes()[:buf.Len()/2]
	if err := dst.ReadWeights(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated file")
	}
	if paramSum(dst) != beforeSum {
		t.Fatal("truncated load must not mutate the network")
	}
}

func paramSum(n *Network) float64 {
	var sum float64
	for _, s := range n.paramSlices() {
		for _, v := range s {
			sum += float64(v)
		}
	}
	return sum
}
