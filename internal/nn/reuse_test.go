package nn

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// reuseNet is a network exercising every composite layer kind: conv
// units (BN and bias forms), a residual bottleneck with projection, a
// depthwise-separable block, pooling and the FC head.
func reuseNet() *Network {
	b := builderForTest()
	bn := &Bottleneck{LayerName: "block"}
	bn.Conv1 = b.convUnit("block_1x1a", 8, 4, 8, 1, 1, 0, true, true)
	bn.Conv2 = b.convUnit("block_3x3", 4, 4, 8, 3, 1, 1, true, true)
	bn.Conv3 = b.convUnit("block_1x1b", 4, 16, 8, 1, 1, 0, false, true)
	bn.Downsample = b.convUnit("block_proj", 8, 16, 8, 1, 1, 0, false, true)
	return &Network{Name: "reuse-test", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		&MaxPool{K: 2, Str: 2},
		bn,
		b.dsc("d1", 16, 16, 8, 1),
		GlobalAvgPool{},
		b.fc("fc", 16, 4, false),
		Softmax{},
	}}
}

// TestReuseForwardMatchesSeed: the Reuse engine (plan cache +
// pre-transformed weights + buffer pool) must be bit-for-bit identical
// to the seed path, in both the plain and the fused configuration, on
// first use and in steady state (pooled buffers).
func TestReuseForwardMatchesSeed(t *testing.T) {
	for _, fuse := range []bool{false, true} {
		net := reuseNet()
		x := tensor.New(2, 3, 16, 16)
		x.FillRandom(11)

		seed := &Engine{Algo: AlgoNDirect, Threads: 2, Fuse: fuse}
		want := net.Forward(seed, x)

		reuse := &Engine{Algo: AlgoNDirect, Threads: 2, Fuse: fuse, Reuse: true}
		var missesAfterWarm uint64
		for iter := 0; iter < 3; iter++ { // iter > 0 runs on pooled buffers
			got, err := net.TryForward(reuse, x)
			if err != nil {
				t.Fatalf("fuse=%v iter=%d: %v", fuse, iter, err)
			}
			if d := tensor.MaxAbsDiff(want, got); d != 0 {
				t.Fatalf("fuse=%v iter=%d: reuse path differs from seed by %g (want bit-identical)", fuse, iter, d)
			}
			if iter == 0 {
				missesAfterWarm = reuse.plans().Stats().Misses
			}
		}
		// Steady state must never re-plan: after the first forward every
		// layer's plan is amortised (served from the per-unit memo or the
		// cache — either way, no new cache misses).
		st := reuse.plans().Stats()
		if st.Misses != missesAfterWarm {
			t.Fatalf("fuse=%v: plan cache re-planned in steady state: %d misses after warmup, %d after 3 forwards (%+v)",
				fuse, missesAfterWarm, st.Misses, st)
		}
		if st.Len == 0 {
			t.Fatalf("fuse=%v: plan cache empty after repeated forwards: %+v", fuse, st)
		}
	}
}

// TestConcurrentForwardSharedEngine is the -race target: many
// goroutines forward through one shared network and engine with Fuse
// (BN fold cache), Reuse (plan + packed-weight caches, buffer pool)
// and the FC transpose cache all active, from a cold start so the
// once-initialisation itself races.
func TestConcurrentForwardSharedEngine(t *testing.T) {
	net := reuseNet()
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(13)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2, Fuse: true}, x)

	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Fuse: true, Reuse: true}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	outs := make([]*tensor.Tensor, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				out, err := net.TryForward(eng, x)
				if err != nil {
					errs[g] = err
					return
				}
				outs[g] = out
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < workers; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if d := tensor.MaxAbsDiff(want, outs[g]); d != 0 {
			t.Fatalf("goroutine %d diverged from serial result by %g", g, d)
		}
	}
}

// TestBaselineBackendDegradesToNDirect: a panicking im2col worker must
// not take the forward pass down (the bug: the backend's result was
// used unchecked) — the layer is logged and rerun on nDirect.
func TestBaselineBackendDegradesToNDirect(t *testing.T) {
	defer faultinject.Reset()
	old := core.Logf
	var mu sync.Mutex
	var logs []string
	core.Logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, format)
		mu.Unlock()
		t.Logf("(captured) "+format, args...)
	}
	t.Cleanup(func() { core.Logf = old })

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	faultinject.Arm(faultinject.WorkerPanic, -1) // one shot: the im2col lowering worker
	got, err := net.TryForward(&Engine{Algo: AlgoIm2col, Threads: 2}, x)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("degraded forward errored: %v", err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-5 {
		t.Fatalf("degraded forward diverges: rel diff %g", d)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(strings.Join(logs, "\n"), "falling back to ndirect") {
		t.Fatal("the backend fallback must be logged")
	}
}

// TestMaxPoolAllPaddingWindow: a window that is entirely padding used
// to emit -Inf (max over zero samples); it must clamp to the padding
// value 0.
func TestMaxPoolAllPaddingWindow(t *testing.T) {
	eng := &Engine{Threads: 1}
	// K=2 Pad=2: output (0,0) covers input rows/cols {-2,-1} — no real
	// samples. Negative inputs make the clamp observable (and prove
	// populated windows still take the true max, not 0).
	m := &MaxPool{K: 2, Str: 1, Pad: 2}
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = -1 - float32(i)
	}
	out := m.Forward(eng, x)
	for i, v := range out.Data {
		if math.IsInf(float64(v), 0) || math.IsNaN(float64(v)) {
			t.Fatalf("out[%d] = %v: empty-padding window leaked a non-finite value", i, v)
		}
	}
	q := out.Dims[3]
	if got := out.Data[0]; got != 0 {
		t.Fatalf("all-padding corner window: want 0, got %g", got)
	}
	// The window covering input (0,0)..(1,1) must still be a real max:
	// position (2,2) covers rows/cols {0,1} → max of {-1,-2,-5,-6} = -1.
	if got := out.Data[2*q+2]; got != -1 {
		t.Fatalf("populated window: want -1, got %g", got)
	}
}

// TestEngineBufferPoolRoundTrip checks the pool actually recycles:
// release then newTensor of the same size returns a zeroed tensor.
func TestEngineBufferPoolRoundTrip(t *testing.T) {
	eng := &Engine{Reuse: true}
	a := eng.newTensor(2, 3, 4)
	for i := range a.Data {
		a.Data[i] = float32(i) + 1
	}
	eng.release(a)
	b := eng.newTensor(4, 3, 2) // same element count, different dims
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("pooled buffer not cleared: b[%d] = %g", i, v)
		}
	}
	// Engines without Reuse never pool.
	off := &Engine{}
	c := off.newTensor(2, 2)
	off.release(c)
	if _, ok := off.pools.Load(4); ok {
		t.Fatal("release pooled a buffer with Reuse off")
	}
}
