package nn

import (
	"testing"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// The fused separable serving path is a pure execution-strategy
// change: every test here pins bit-identity against the unfused
// composition (depthwise plane loop + sweeps + pointwise unit).

func sepBlockForTest(c, k, hw, str int) *DepthwiseSeparable {
	b := builderForTest()
	return b.dsc("blk", c, k, hw, str)
}

func TestSeparableFusedMatchesUnfused(t *testing.T) {
	cases := []struct{ c, k, hw, str int }{
		{8, 16, 16, 1},
		{8, 16, 17, 2}, // ragged stride-2
		{5, 7, 11, 1},  // odd channels, ragged K
	}
	for _, tc := range cases {
		blk := sepBlockForTest(tc.c, tc.k, tc.hw, tc.str)
		plain := &Engine{Algo: AlgoNDirect, Threads: 2}
		fused := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
		for _, batch := range []int{1, 3} {
			x := tensor.New(batch, tc.c, tc.hw, tc.hw)
			x.FillRandom(int64(7 + batch))
			want, err := blk.tryForward(plain, x)
			if err != nil {
				t.Fatalf("unfused: %v", err)
			}
			got, err := blk.tryForward(fused, x)
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			if d := tensor.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("c%dk%dhw%ds%d batch %d: fused differs by %g", tc.c, tc.k, tc.hw, tc.str, batch, d)
			}
			// Second call exercises the warm memo + packed artifacts.
			got2, err := blk.tryForward(fused, x)
			if err != nil {
				t.Fatalf("fused warm: %v", err)
			}
			if d := tensor.MaxAbsDiff(got2, want); d != 0 {
				t.Fatalf("warm fused differs by %g", d)
			}
		}
	}
}

func TestSeparableForceReferenceMatchesFused(t *testing.T) {
	blk := sepBlockForTest(6, 12, 14, 1)
	fused := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	ref := &Engine{Algo: AlgoNDirect, Threads: 1, Reuse: true, ForceReference: true}
	x := tensor.New(1, 6, 14, 14)
	// Integer-valued tensors and exact-identity BN (ε=0) keep the
	// reference rung (float64 accumulation) bit-identical to the fused
	// f32 chain.
	fillInts := func(dst *tensor.Tensor, seed int64) {
		r := newIntFiller(seed)
		for i := range dst.Data {
			dst.Data[i] = r()
		}
	}
	fillInts(x, 41)
	fillInts(blk.DWFilter, 43)
	fillInts(blk.PW.Weights, 47)
	blk.DWBN.Eps = 0
	blk.PW.BN.Eps = 0
	want, err := blk.tryForward(fused, x)
	if err != nil {
		t.Fatalf("fused: %v", err)
	}
	got, err := blk.tryForward(ref, x)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("quarantine rung differs from fused by %g", d)
	}
}

func TestDepthwiseConvPlannedMatchesPlaneLoop(t *testing.T) {
	b := builderForTest()
	mk := func(withBN, relu bool) *DepthwiseConv {
		f := tensor.New(6, 3, 3)
		heInit(f, 9, b.rng)
		d := &DepthwiseConv{
			LayerName: "dw",
			Shape:     conv.Shape{N: 1, C: 6, H: 13, W: 13, K: 6, R: 3, S: 3, Str: 1, Pad: 1},
			Filter:    f,
			ReLU:      relu,
		}
		if withBN {
			d.BN = identityBN(6)
			// Perturb so BN is not a no-op.
			for i := range d.BN.Gamma {
				d.BN.Gamma[i] = 1 + 0.25*float32(i)
				d.BN.Beta[i] = -0.125 * float32(i)
			}
		}
		return d
	}
	for _, cfg := range []struct{ bn, relu bool }{{true, true}, {true, false}, {false, true}, {false, false}} {
		d := mk(cfg.bn, cfg.relu)
		plain := &Engine{Algo: AlgoNDirect, Threads: 2}
		planned := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
		for _, batch := range []int{1, 2} {
			x := tensor.New(batch, 6, 13, 13)
			x.FillRandom(int64(11 + batch))
			want, err := d.tryForward(plain, x)
			if err != nil {
				t.Fatalf("plane loop: %v", err)
			}
			got, err := d.tryForward(planned, x)
			if err != nil {
				t.Fatalf("planned: %v", err)
			}
			if d := tensor.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("bn=%v relu=%v batch %d: planned differs by %g", cfg.bn, cfg.relu, batch, d)
			}
		}
	}
}

func TestFuseSeparableRewrite(t *testing.T) {
	b := builderForTest()
	mkNet := func() *Network {
		f := tensor.New(8, 3, 3)
		heInit(f, 9, b.rng)
		dwc := &DepthwiseConv{
			LayerName: "dw1",
			Shape:     conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			Filter:    f,
			BN:        identityBN(8),
			ReLU:      true,
		}
		pw := b.convUnit("pw1", 8, 16, 12, 1, 1, 0, true, true)
		return &Network{Name: "t", Layers: []Layer{dwc, pw, GlobalAvgPool{}}}
	}
	net := mkNet()
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	x := tensor.New(1, 8, 12, 12)
	x.FillRandom(3)
	want, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatalf("pre-fusion forward: %v", err)
	}
	if got := net.FuseSeparable(); got != 1 {
		t.Fatalf("FuseSeparable = %d, want 1", got)
	}
	if len(net.Layers) != 2 {
		t.Fatalf("fused network has %d layers, want 2", len(net.Layers))
	}
	ds, ok := net.Layers[0].(*DepthwiseSeparable)
	if !ok {
		t.Fatalf("layer 0 is %T, want *DepthwiseSeparable", net.Layers[0])
	}
	if ds.PW.LayerName != "pw1" {
		t.Fatalf("fused block kept wrong pointwise unit %q", ds.PW.LayerName)
	}
	got, err := net.TryForward(eng, x)
	if err != nil {
		t.Fatalf("post-fusion forward: %v", err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("fusion changed the bits by %g", d)
	}

	// A non-composing pair (3×3 second conv) must not be rewritten.
	f2 := tensor.New(8, 3, 3)
	heInit(f2, 9, b.rng)
	dwc2 := &DepthwiseConv{
		LayerName: "dw2",
		Shape:     conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
		Filter:    f2,
		BN:        identityBN(8),
		ReLU:      true,
	}
	conv3 := b.convUnit("c3", 8, 16, 12, 3, 1, 1, true, true)
	n2 := &Network{Name: "t2", Layers: []Layer{dwc2, conv3}}
	if got := n2.FuseSeparable(); got != 0 {
		t.Fatalf("non-composing pair fused (%d)", got)
	}
}

func TestLoadManifestDepthwiseRowTile(t *testing.T) {
	blk := sepBlockForTest(8, 16, 24, 1)
	dwShape := blk.DWShape
	m := autotune.NewManifest()
	m.SetDepthwise(dwShape, 3, 0.001, 4)
	bad := dwShape
	bad.H = -1
	m.Entries = append(m.Entries, autotune.ManifestEntry{Shape: bad, Depthwise: true, DWRowTile: 2})
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	loaded, rejected := eng.LoadManifest(m)
	if loaded != 1 || rejected != 1 {
		t.Fatalf("LoadManifest = (%d, %d), want (1, 1)", loaded, rejected)
	}
	if got := eng.dwRowTile(dwShape); got != 3 {
		t.Fatalf("dwRowTile = %d, want 3", got)
	}
	ss, ok := blk.separableShape(1)
	if !ok {
		t.Fatal("block does not compose")
	}
	plan, err := blk.sepPlanFor(eng, ss)
	if err != nil {
		t.Fatalf("sepPlanFor: %v", err)
	}
	if plan.RowTile() != 3 {
		t.Fatalf("plan row tile %d, want manifest-forced 3", plan.RowTile())
	}
	// The tuned plan still serves bit-identically.
	plain := &Engine{Algo: AlgoNDirect, Threads: 2}
	x := tensor.New(1, 8, 24, 24)
	x.FillRandom(17)
	want, err := blk.tryForward(plain, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := blk.tryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("tuned fused path differs by %g", d)
	}
}

func TestWarmPlansCoversSeparable(t *testing.T) {
	blk := sepBlockForTest(8, 16, 16, 1)
	net := &Network{Name: "m", Layers: []Layer{blk}}
	m := autotune.NewManifest()
	m.SetDepthwise(blk.DWShape, 0, 0, 0)
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	eng.LoadManifest(m)
	warmed, err := net.WarmPlans(eng, m.Covers)
	if err != nil {
		t.Fatalf("WarmPlans: %v", err)
	}
	// The depthwise entry covers the separable unit; the pointwise
	// ConvUnit's own shape is uncovered and stays cold.
	if warmed != 1 {
		t.Fatalf("warmed %d units, want 1", warmed)
	}
	blk.sepMu.Lock()
	packed := blk.sepPackedDW
	blk.sepMu.Unlock()
	if packed == nil {
		t.Fatal("warm did not build the packed depthwise filter")
	}
	if blk.sepMemos[1].Load() == nil {
		t.Fatal("warm did not populate the batch-1 plan memo")
	}
	x := tensor.New(1, 8, 16, 16)
	x.FillRandom(23)
	plain := &Engine{Algo: AlgoNDirect, Threads: 2}
	want, err := blk.tryForward(plain, x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := blk.tryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("warmed fused path differs by %g", d)
	}
}

func TestInvalidateReuseRetiresSeparableState(t *testing.T) {
	blk := sepBlockForTest(8, 16, 16, 1)
	net := &Network{Name: "m", Layers: []Layer{blk}}
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	x := tensor.New(1, 8, 16, 16)
	x.FillRandom(29)
	want, err := blk.tryForward(eng, x)
	if err != nil {
		t.Fatal(err)
	}
	blk.sepMu.Lock()
	packed := blk.sepPackedDW
	blk.sepMu.Unlock()
	if packed == nil {
		t.Fatal("fused forward did not retain the packed depthwise filter")
	}
	net.InvalidateReuse(eng)
	if !packed.Released() {
		t.Fatal("invalidate did not release the packed depthwise filter")
	}
	blk.sepMu.Lock()
	cleared := blk.sepPackedDW == nil
	blk.sepMu.Unlock()
	if !cleared {
		t.Fatal("invalidate did not clear the packed slot")
	}
	got, err := blk.tryForward(eng, x)
	if err != nil {
		t.Fatalf("post-invalidate forward: %v", err)
	}
	if d := tensor.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("rebuilt state differs by %g", d)
	}
}
