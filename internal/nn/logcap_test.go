package nn

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"ndirect/internal/core"
)

// TestLogLimitedKeyCapBounded: the rate-limiter's key map must stay
// bounded under many-key traffic (the multi-tenant shape explosion),
// and suppressed counts from evicted keys must fold into a later
// emission's trailer rather than vanish.
func TestLogLimitedKeyCapBounded(t *testing.T) {
	old := core.Logf
	var mu sync.Mutex
	var lines []string
	core.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	t.Cleanup(func() { core.Logf = old })

	eng := &Engine{LogKeyCap: 8}
	// First touch of each key emits; a second immediate touch is
	// suppressed (pending count 1 on that key).
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		eng.logLimited(key, "line %d", i)
		eng.logLimited(key, "line %d", i)
	}
	eng.logMu.Lock()
	size, lruLen := len(eng.logSeen), eng.logLRU.Len()
	pending := eng.logCarry
	for el := eng.logLRU.Front(); el != nil; el = el.Next() {
		pending += el.Value.(*logEntry).suppressed
	}
	eng.logMu.Unlock()
	if size > 8 || lruLen > 8 {
		t.Fatalf("key map grew past the cap: map=%d lru=%d (cap 8)", size, lruLen)
	}
	if size != lruLen {
		t.Fatalf("map (%d) and LRU (%d) out of sync", size, lruLen)
	}
	// Lossless accounting: 100 suppressed touches must all be either
	// already folded into an emitted trailer (an eviction's carry is
	// drained by the very insertion that caused it, which emits the new
	// key's first line) or still pending on a live entry / the carry.
	emitted := 0
	mu.Lock()
	for _, l := range lines {
		var n int
		if i := strings.Index(l, " similar lines suppressed]"); i >= 0 {
			if _, err := fmt.Sscanf(l[strings.LastIndex(l[:i], "[")+1:], "%d", &n); err != nil {
				t.Fatalf("unparseable trailer in %q", l)
			}
		}
		emitted += n
	}
	mu.Unlock()
	if emitted+pending != 100 {
		t.Fatalf("suppression counts leaked: %d emitted + %d pending != 100", emitted, pending)
	}
	if emitted == 0 {
		t.Fatal("no evicted suppression ever surfaced in a trailer")
	}

	// Negative cap disables the bound (pre-cap behaviour).
	unbounded := &Engine{LogKeyCap: -1}
	for i := 0; i < 100; i++ {
		unbounded.logLimited(fmt.Sprintf("key-%d", i), "line %d", i)
	}
	unbounded.logMu.Lock()
	if n := len(unbounded.logSeen); n != 100 {
		unbounded.logMu.Unlock()
		t.Fatalf("negative cap must be unbounded: kept %d of 100 keys", n)
	}
	unbounded.logMu.Unlock()

	// Zero selects the default cap.
	if (&Engine{}).logKeyCap() != DefaultLogKeyCap {
		t.Fatal("zero LogKeyCap must select DefaultLogKeyCap")
	}
}

// TestLogLimitedRecencyRetainsActiveKey: touching a key (even when
// suppressed) refreshes its recency, so a hot key under steady
// suppression is not the one evicted when cold keys churn past it.
func TestLogLimitedRecencyRetainsActiveKey(t *testing.T) {
	old := core.Logf
	core.Logf = func(string, ...any) {}
	t.Cleanup(func() { core.Logf = old })

	eng := &Engine{LogKeyCap: 4}
	eng.logLimited("hot", "hot")
	for i := 0; i < 20; i++ {
		eng.logLimited("hot", "hot") // suppressed touch refreshes recency
		eng.logLimited(fmt.Sprintf("cold-%d", i), "cold")
	}
	eng.logMu.Lock()
	_, ok := eng.logSeen["hot"]
	eng.logMu.Unlock()
	if !ok {
		t.Fatal("hot key evicted despite constant touches")
	}
}
