package nn

import (
	"strings"
	"testing"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// warmNet is a two-conv network over shapes small enough to plan
// instantly; the second unit has no epilogue so WarmPlans covers both
// the memoized and the non-memoized plan routes.
func warmNet() (*Network, []conv.Shape) {
	s1 := conv.Shape{N: 1, C: 4, H: 10, W: 10, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	s2 := conv.Shape{N: 1, C: 6, H: 10, W: 10, K: 8, R: 1, S: 1, Str: 1, Pad: 0}
	w1 := s1.NewFilter()
	fillIntsB(w1, 31)
	w2 := s2.NewFilter()
	fillIntsB(w2, 32)
	net := &Network{Name: "warmnet", Layers: []Layer{
		&ConvUnit{LayerName: "c1", Shape: s1, Weights: w1, ReLU: true},
		&ConvUnit{LayerName: "c2", Shape: s2, Weights: w2},
	}}
	return net, []conv.Shape{s1, s2}
}

// TestLoadManifestValidatesEntries: valid entries land in the
// schedule table under the Tune key; invalid ones are rejected (and
// only logged), never stored.
func TestLoadManifestValidatesEntries(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 10, W: 10, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	good := autotune.Schedule{TileK: 4, TileC: 4, TileH: 2, TileW: 8, VecW: 4}
	m := autotune.NewManifest()
	m.Set(s, good, 0.001, 8)
	m.Entries = append(m.Entries, autotune.ManifestEntry{
		Shape:    conv.Shape{N: 1, C: 4, H: 10, W: 10, K: 6, R: 3, S: 3, Str: 1, Pad: 2},
		Schedule: autotune.Schedule{TileK: 999, VecW: 7}, // inadmissible
	})
	eng := &Engine{Algo: AlgoNDirect, Threads: 1}
	loaded, rejected := eng.LoadManifest(m)
	if loaded != 1 || rejected != 1 {
		t.Fatalf("LoadManifest = (%d, %d), want (1, 1)", loaded, rejected)
	}
	if got, ok := eng.Schedules[shapeKey(s)]; !ok || got != good {
		t.Fatalf("schedule table entry = %v ok=%v, want %v", got, ok, good)
	}
	if eng.schedule(s) != autotune.ClampFor(good, s) {
		t.Fatal("eng.schedule does not serve the loaded entry")
	}
	if l2, r2 := eng.LoadManifest(nil); l2 != 0 || r2 != 0 {
		t.Fatal("nil manifest should load nothing")
	}
}

// TestWarmPlansZeroMissServing: after WarmPlans, serving a covered
// network performs zero plan-cache misses — the warm-start contract.
// Outputs stay bit-identical to a cold engine's.
func TestWarmPlansZeroMissServing(t *testing.T) {
	net, shapes := warmNet()
	cache := core.NewPlanCache(0)
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true, Plans: cache}

	m := autotune.NewManifest()
	for _, s := range shapes {
		m.Set(s, autotune.DefaultSchedule(s), 0.001, 4)
	}
	warmed, err := net.WarmPlans(eng, m.Covers)
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 2 {
		t.Fatalf("warmed %d units, want 2", warmed)
	}

	x := shapes[0].NewInput()
	fillIntsB(x, 99)
	pre := cache.Stats()
	var got *tensor.Tensor
	for i := 0; i < 5; i++ {
		out, err := net.TryForward(eng, x)
		if err != nil {
			t.Fatal(err)
		}
		got = out
	}
	post := cache.Stats()
	if post.Misses != pre.Misses {
		t.Fatalf("warmed network still constructed plans: misses %d -> %d", pre.Misses, post.Misses)
	}

	cold := &Engine{Algo: AlgoNDirect, Threads: 2}
	want, err := net.TryForward(cold, x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("warmed output differs from cold by %g, want bit-identical", d)
	}
}

// TestWarmPlansCoverageFilter: only covered shapes are warmed, and an
// engine without a plan cache is a usage error.
func TestWarmPlansCoverageFilter(t *testing.T) {
	net, shapes := warmNet()
	eng := &Engine{Algo: AlgoNDirect, Threads: 1, Reuse: true}
	only := shapes[0]
	warmed, err := net.WarmPlans(eng, func(s conv.Shape) bool { return s == only })
	if err != nil {
		t.Fatal(err)
	}
	if warmed != 1 {
		t.Fatalf("warmed %d units, want 1", warmed)
	}
	bare := &Engine{Algo: AlgoNDirect, Threads: 1}
	if _, err := net.WarmPlans(bare, nil); err == nil || !strings.Contains(err.Error(), "plan cache") {
		t.Fatalf("WarmPlans without a cache: err = %v", err)
	}
}
