package nn

import (
	"strings"
	"sync"
	"testing"
	"time"

	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

func captureCoreLog(t *testing.T) func() string {
	t.Helper()
	old := core.Logf
	var mu sync.Mutex
	var logs []string
	core.Logf = func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, format)
		mu.Unlock()
		t.Logf("(captured) "+format, args...)
	}
	t.Cleanup(func() { core.Logf = old })
	return func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(logs, "\n")
	}
}

func waitNoLeakedWorkers(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if parallel.LeakedWorkers() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("leaked workers never drained: %d", parallel.LeakedWorkers())
}

// A stalled Ansor layer must be abandoned at ConvBudget and rerun on
// the nDirect backend, leaving the forward pass correct and bounded.
func TestAnsorStallFallsBackWithinBudget(t *testing.T) {
	logged := captureCoreLog(t)
	defer faultinject.Reset()

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	faultinject.Arm(faultinject.WorkerStall, 0)
	got := net.Forward(&Engine{Algo: AlgoAnsor, Threads: 2, ConvBudget: 50 * time.Millisecond}, x)
	if d := tensor.RelDiff(want, got); d > 1e-5 {
		t.Fatalf("degraded forward pass diverges: rel diff %g", d)
	}
	if !strings.Contains(logged(), "falling back to ndirect") {
		t.Fatal("the backend fallback must be logged")
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// The nDirect backend itself recovers from a stalled grid: the layer
// is abandoned at ConvBudget and recomputed (the one-shot fault is
// consumed by the first attempt).
func TestNDirectStallRecomputesWithinBudget(t *testing.T) {
	logged := captureCoreLog(t)
	defer faultinject.Reset()

	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)

	faultinject.Arm(faultinject.WorkerStall, 0)
	got := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2, ConvBudget: 50 * time.Millisecond}, x)
	if d := tensor.RelDiff(want, got); d > 1e-6 {
		t.Fatalf("recomputed forward pass diverges: rel diff %g", d)
	}
	if !strings.Contains(logged(), "recomputing unbounded") {
		t.Fatal("the budget miss must be logged")
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// Without a ConvBudget the engine takes the exact pre-existing code
// paths (context with no deadline), so behavior is unchanged.
func TestZeroConvBudgetIsUnbounded(t *testing.T) {
	b := builderForTest()
	net := &Network{Name: "tiny", Layers: []Layer{
		b.convUnit("c1", 3, 8, 16, 3, 1, 1, true, true),
		GlobalAvgPool{},
	}}
	x := tensor.New(1, 3, 16, 16)
	x.FillRandom(7)
	want := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2}, x)
	got := net.Forward(&Engine{Algo: AlgoNDirect, Threads: 2, ConvBudget: 0}, x)
	if d := tensor.RelDiff(want, got); d != 0 {
		t.Fatalf("zero budget must be bit-identical: rel diff %g", d)
	}
}
