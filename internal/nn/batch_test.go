package nn

import (
	"errors"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

func fillIntsB(t *tensor.Tensor, seed uint64) {
	x := seed*2654435761 + 12345
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = float32(int64(x>>33)%7 - 3)
	}
}

// batchNet is a conv→BN→ReLU→pool→FC pipeline with integer weights:
// deep enough that the stacked pass crosses layers whose partitioning
// differs (conv grid, elementwise sweeps, pooling, GEMM).
func batchNet() *Network {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	w := s.NewFilter()
	fillIntsB(w, 21)
	fc := &FC{LayerName: "fc", In: 8 * 4 * 4, Out: 10, W: tensor.New(10, 8*4*4), B: make([]float32, 10)}
	fillIntsB(fc.W, 22)
	return &Network{Name: "batchnet", Layers: []Layer{
		&ConvUnit{LayerName: "c1", Shape: s, Weights: w, BN: identityBN(8), ReLU: true},
		&MaxPool{K: 2, Str: 2},
		fc,
	}}
}

// A stacked batched forward must be bit-identical, request by request,
// to solo forwards of the same inputs — including ragged per-request
// batch dims — because no layer's per-image computation depends on N.
func TestForwardBatchBitExactMatchesSolo(t *testing.T) {
	net := batchNet()
	eng := &Engine{Algo: AlgoNDirect, Threads: 2, Reuse: true}
	perN := []int{1, 2, 1, 3}
	var xs []*tensor.Tensor
	var wants []*tensor.Tensor
	for i, ni := range perN {
		x := tensor.New(ni, 4, 8, 8)
		fillIntsB(x, uint64(50+i))
		want, err := net.TryForward(eng, x)
		if err != nil {
			t.Fatalf("solo forward %d: %v", i, err)
		}
		xs = append(xs, x)
		wants = append(wants, want)
	}
	for round := 0; round < 2; round++ { // second round exercises warm plans/packs
		outs, err := net.TryForwardBatch(eng, xs)
		if err != nil {
			t.Fatalf("batched forward: %v", err)
		}
		if len(outs) != len(xs) {
			t.Fatalf("got %d outputs for %d requests", len(outs), len(xs))
		}
		for i := range outs {
			if outs[i].Dims[0] != perN[i] {
				t.Fatalf("request %d: output batch dim %d, want %d", i, outs[i].Dims[0], perN[i])
			}
			for j, v := range outs[i].Data {
				if v != wants[i].Data[j] {
					t.Fatalf("round %d request %d element %d: batched %v != solo %v", round, i, j, v, wants[i].Data[j])
				}
			}
		}
	}
}

// Degenerate batches fail typed before any execution; a single-request
// batch is exactly TryForward.
func TestForwardBatchValidation(t *testing.T) {
	net := batchNet()
	eng := &Engine{Algo: AlgoNDirect, Threads: 1, Reuse: true}
	if _, err := net.TryForwardBatch(eng, nil); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("empty batch: got %v", err)
	}
	good := tensor.New(1, 4, 8, 8)
	fillIntsB(good, 1)
	bad := tensor.New(1, 2, 8, 8) // wrong channel count
	if _, err := net.TryForwardBatch(eng, []*tensor.Tensor{good, bad}); !errors.Is(err, core.ErrBadOptions) {
		t.Fatalf("mismatched member: got %v", err)
	}
	want, err := net.TryForward(eng, good)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := net.TryForwardBatch(eng, []*tensor.Tensor{good})
	if err != nil || len(outs) != 1 {
		t.Fatalf("single-request batch: %v (%d outs)", err, len(outs))
	}
	for j, v := range outs[0].Data {
		if v != want.Data[j] {
			t.Fatalf("single-request batch diverged at %d", j)
		}
	}
}
