package nn

import (
	"container/list"
	"sync"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
)

// numAlgos sizes the per-backend breaker array.
const numAlgos = int(AlgoXNN) + 1

// DefaultBreakerCooldown is the quarantine duration when breakers are
// enabled without an explicit Engine.BreakerCooldown.
const DefaultBreakerCooldown = 30 * time.Second

// DefaultLogInterval rate-limits repeated backend-fallback log lines:
// at most one per (backend, shape) per interval, with a suppressed
// count on the next emission.
const DefaultLogInterval = 5 * time.Second

// DefaultLogKeyCap bounds the rate-limiter's key map when
// Engine.LogKeyCap is zero. Multi-tenant traffic mints a fresh key per
// (site, backend, shape), so an unbounded map is a slow leak on a
// long-lived serving process; past the cap the least recently touched
// key is evicted and its pending suppressed count folds into the next
// emission's trailer, so no suppression is ever silently lost.
const DefaultLogKeyCap = 1024

// breaker is one backend's circuit breaker. The states are the
// classical three:
//
//	closed    — backend invoked normally; consecutive failures counted
//	open      — backend quarantined; dispatch goes straight to nDirect
//	            without invoking it (no per-call retry, no per-call log)
//	half-open — cooldown elapsed; exactly one probe request is allowed
//	            through. Success closes the breaker, failure re-opens it.
//
// A mutex rather than atomics: the breaker is consulted once per conv
// layer (microseconds of work at minimum), so contention is noise, and
// the open/half-open transitions need multi-field consistency.
type breaker struct {
	mu        sync.Mutex
	fails     int       // consecutive failures while closed
	openUntil time.Time // zero: closed; else quarantined until then
	open      bool
	probing   bool // a half-open probe is in flight

	trips    uint64 // closed→open transitions (incl. failed probes)
	skips    uint64 // dispatches routed to nDirect without invoking
	probes   uint64 // half-open probes allowed through
	restores uint64 // successful probes (open→closed)
}

// allow reports whether the backend may be invoked for this dispatch.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		b.skips++
		return false
	}
	// Cooldown elapsed: admit exactly one probe.
	b.probing = true
	b.probes++
	return true
}

// onSuccess records a successful backend invocation.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open { // a half-open probe succeeded
		b.open = false
		b.openUntil = time.Time{}
		b.restores++
	}
	b.probing = false
	b.fails = 0
}

// onFailure records a failed invocation; reports whether this failure
// tripped (or re-tripped) the quarantine.
func (b *breaker) onFailure(threshold int, now time.Time, cooldown time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open { // the half-open probe failed: back to quarantine
		b.probing = false
		b.openUntil = now.Add(cooldown)
		b.trips++
		return true
	}
	b.fails++
	if b.fails < threshold {
		return false
	}
	b.open = true
	b.openUntil = now.Add(cooldown)
	b.fails = 0
	b.trips++
	return true
}

// BreakerState is a breaker's current position in the state machine.
type BreakerState string

const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerStats is a point-in-time snapshot of one backend's breaker.
type BreakerStats struct {
	State            BreakerState
	ConsecutiveFails int    // failures counted toward the threshold
	Trips            uint64 // quarantine entries (incl. failed probes)
	Skips            uint64 // dispatches that bypassed the backend
	Probes           uint64 // half-open probes admitted
	Restores         uint64 // probes that closed the breaker
}

// BreakerStats snapshots the circuit breaker for one backend. With
// breakers disabled (BreakerThreshold <= 0) every breaker reads as
// permanently closed with zero counters.
func (eng *Engine) BreakerStats(a Algo) BreakerStats {
	if int(a) < 0 || int(a) >= numAlgos {
		return BreakerStats{State: BreakerClosed}
	}
	b := &eng.breakers[a]
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{
		State:            BreakerClosed,
		ConsecutiveFails: b.fails,
		Trips:            b.trips,
		Skips:            b.skips,
		Probes:           b.probes,
		Restores:         b.restores,
	}
	if b.open {
		if time.Now().Before(b.openUntil) || b.probing {
			st.State = BreakerOpen
		} else {
			st.State = BreakerHalfOpen
		}
	}
	return st
}

func (eng *Engine) breakerCooldown() time.Duration {
	if eng.BreakerCooldown > 0 {
		return eng.BreakerCooldown
	}
	return DefaultBreakerCooldown
}

// backendAllowed reports whether algo's backend should be invoked for
// this dispatch. False means the breaker is open: route straight to
// nDirect without paying for another guaranteed failure (the skip
// itself is rate-limit logged so quarantined traffic stays visible).
func (eng *Engine) backendAllowed(a Algo, s conv.Shape) bool {
	if eng.BreakerThreshold <= 0 {
		return true
	}
	if eng.breakers[a].allow(time.Now()) {
		return true
	}
	eng.logLimited("skip|"+a.String()+"|"+shapeKey(s),
		"nn: %v backend quarantined; dispatching %v straight to ndirect", a, s)
	return false
}

// backendOK records a successful backend invocation.
func (eng *Engine) backendOK(a Algo) {
	if eng.BreakerThreshold > 0 {
		eng.breakers[a].onSuccess()
	}
}

// backendFailed records a failed backend invocation and emits the
// rate-limited fallback line (plus an un-suppressed state-change line
// when this failure trips the quarantine).
func (eng *Engine) backendFailed(a Algo, s conv.Shape, err error) {
	eng.logLimited("fail|"+a.String()+"|"+shapeKey(s),
		"nn: %v backend failed on %v; falling back to ndirect: %v", a, s, err)
	if eng.BreakerThreshold <= 0 {
		return
	}
	if eng.breakers[a].onFailure(eng.BreakerThreshold, time.Now(), eng.breakerCooldown()) {
		core.Logf("nn: %v backend quarantined for %v after repeated failures; dispatching to ndirect",
			a, eng.breakerCooldown())
	}
}

// logEntry is one (site, backend, shape) key's rate-limit bookkeeping.
type logEntry struct {
	key        string
	last       time.Time
	suppressed int
}

// logKeyCap resolves Engine.LogKeyCap: 0 → the default bound,
// negative → unbounded (the pre-cap behaviour).
func (eng *Engine) logKeyCap() int {
	if eng.LogKeyCap == 0 {
		return DefaultLogKeyCap
	}
	return eng.LogKeyCap
}

// logLimited emits via core.Logf at most once per key per LogInterval;
// lines dropped in between surface as a suppressed count appended to
// the next emission. A negative Engine.LogInterval disables
// suppression (the seed's log-every-call behaviour). The key map is
// LRU-bounded at logKeyCap: evicting a key folds its pending
// suppressed count into eng.logCarry, which the next emission (of any
// key) adds to its trailer — bounded memory, lossless counts.
func (eng *Engine) logLimited(key, format string, args ...any) {
	interval := eng.LogInterval
	if interval < 0 {
		core.Logf(format, args...)
		return
	}
	if interval == 0 {
		interval = DefaultLogInterval
	}
	now := time.Now()
	eng.logMu.Lock()
	if eng.logSeen == nil {
		eng.logSeen = make(map[string]*list.Element)
		eng.logLRU = list.New()
	}
	var e *logEntry
	if el := eng.logSeen[key]; el != nil {
		eng.logLRU.MoveToFront(el)
		e = el.Value.(*logEntry)
	} else {
		e = &logEntry{key: key}
		eng.logSeen[key] = eng.logLRU.PushFront(e)
		if cap := eng.logKeyCap(); cap > 0 {
			for eng.logLRU.Len() > cap {
				back := eng.logLRU.Back()
				old := back.Value.(*logEntry)
				eng.logLRU.Remove(back)
				delete(eng.logSeen, old.key)
				eng.logCarry += old.suppressed
			}
		}
	}
	if !e.last.IsZero() && now.Sub(e.last) < interval {
		e.suppressed++
		eng.logMu.Unlock()
		return
	}
	suppressed := e.suppressed + eng.logCarry
	e.suppressed = 0
	eng.logCarry = 0
	e.last = now
	eng.logMu.Unlock()
	if suppressed > 0 {
		format += " [%d similar lines suppressed]"
		args = append(args, suppressed)
	}
	core.Logf(format, args...)
}
