package bench

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// dwsepCase is one depthwise-separable block of the MobileNet serving
// comparison: the depthwise stage's geometry plus the pointwise
// expansion K.
type dwsepCase struct {
	name string
	ss   core.SeparableShape
}

// dwsepCases pairs the MobileNet table rows (conv.MobileNetRows) into
// the separable blocks they model: dw 3×3 then 1×1 expansion, the
// early stride-1 block at full 112×112 resolution and the mid-network
// stride-2 reduction block.
func dwsepCases(batch int) []dwsepCase {
	var cases []dwsepCase
	for _, pair := range [][2]int{{29, 30}, {31, 32}} {
		dw, okDW := conv.LayerByID(pair[0])
		pw, okPW := conv.LayerByID(pair[1])
		if !okDW || !okPW || !dw.Depthwise || pw.Depthwise {
			continue
		}
		s := dw.Shape.WithBatch(batch)
		cases = append(cases, dwsepCase{
			name: fmt.Sprintf("L%d+L%d dw%dx%d/s%d %d->%d", dw.ID, pw.ID, s.R, s.S, s.Str, s.C, pw.Shape.K),
			ss: core.SeparableShape{N: s.N, C: s.C, H: s.H, W: s.W, K: pw.Shape.K,
				R: s.R, S: s.S, Str: s.Str, Pad: s.Pad},
		})
	}
	return cases
}

// DWSep contrasts the fused depthwise-separable executor with the
// unfused two-call composition it is bit-identical to, both in their
// steady state (cached plans, packed filters, preallocated output).
// The unfused column still materialises the [N][C][P][Q] intermediate
// every call — that round-trip through memory, plus the second grid
// launch, is what fusion removes — so the rightmost columns report the
// speedup and the intermediate bytes the fused path never allocates.
func DWSep(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Fused depthwise-separable vs unfused two-call (measured, batch=%d, threads=%d, min of %d×%d calls)\n",
		cfg.Batch, cfg.Threads, cfg.Reps, steadyInnerIters)
	fprintf(w, "%-28s %14s %14s %9s %12s %12s\n",
		"block", "unfused", "fused", "speedup", "mid bytes", "scratch")
	var ratios []float64
	for _, c := range dwsepCases(cfg.Batch) {
		ss := c.ss
		dwShape := ss.DWShape()
		in := tensor.New(ss.N, ss.C, ss.H, ss.W)
		in.FillRandom(11)
		dwF := tensor.New(ss.C, ss.R, ss.S)
		dwF.FillRandom(13)
		pwF := tensor.New(ss.K, ss.C, 1, 1)
		pwF.FillRandom(17)
		out := tensor.New(ss.N, ss.K, ss.P(), ss.Q())

		opt := core.Options{Threads: cfg.Threads, Platform: &cfg.Platform}
		fused, err := core.TryNewSeparablePlan(ss, opt)
		if err != nil {
			fprintf(w, "%-28s fused planning failed: %v\n", c.name, err)
			continue
		}
		pdw, ppw, err := fused.TransformFilters(dwF, pwF)
		if err != nil {
			fprintf(w, "%-28s packing failed: %v\n", c.name, err)
			continue
		}
		if err := fused.TryExecutePacked(in, pdw, ppw, out); err != nil { // warm the scratch pool
			fprintf(w, "%-28s fused execution failed: %v\n", c.name, err)
			continue
		}
		fusedSec := timeIt(cfg.Reps, func() {
			for i := 0; i < steadyInnerIters; i++ {
				if err := fused.TryExecutePacked(in, pdw, ppw, out); err != nil {
					panic(err)
				}
			}
		}) / steadyInnerIters

		// The steady-state unfused composition: both plans cached, the
		// pointwise filter packed, the intermediate preallocated — the
		// strongest two-call baseline, so the speedup isolates fusion.
		dwPlan, err := core.TryNewDepthwisePlan(dwShape, opt)
		if err != nil {
			fprintf(w, "%-28s depthwise planning failed: %v\n", c.name, err)
			continue
		}
		pdw2, err := dwPlan.TransformFilter(dwF)
		if err != nil {
			fprintf(w, "%-28s depthwise packing failed: %v\n", c.name, err)
			continue
		}
		pwPlan := fused.PointwisePlan()
		mid := tensor.New(ss.N, ss.C, ss.P(), ss.Q())
		unfused := timeIt(cfg.Reps, func() {
			for i := 0; i < steadyInnerIters; i++ {
				if err := dwPlan.TryExecutePacked(in, pdw2, mid); err != nil {
					panic(err)
				}
				if err := pwPlan.TryExecutePacked(mid, ppw, out); err != nil {
					panic(err)
				}
			}
		}) / steadyInnerIters

		ratio := unfused / fusedSec
		ratios = append(ratios, ratio)
		fprintf(w, "%-28s %12.0fµs %12.0fµs %8.2fx %11dKB %10dKB\n",
			c.name, unfused*1e6, fusedSec*1e6, ratio,
			fused.IntermediateBytes()>>10, fused.ScratchBytes()>>10)
	}
	if len(ratios) > 0 {
		fprintf(w, "geomean fusion speedup: %.2fx\n", Geomean(ratios))
	}
}
