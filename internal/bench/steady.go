package bench

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/core"
)

// steadyCase is one row of the serving comparison.
type steadyCase struct {
	name string
	s    conv.Shape
}

// steadyCases samples the serving spectrum: a mid-network 3×3, a
// pointwise 1×1 (different specialised micro-kernel), a late
// small-spatial 3×3, and a genuinely small shape of the kind edge
// serving batches one at a time — where the per-call plan build and
// filter transform dominate and the steady-state caches pay off most.
func steadyCases(batch int) []steadyCase {
	var cases []steadyCase
	for _, id := range []int{2, 8, 21} {
		l, ok := conv.LayerByID(id)
		if !ok {
			continue
		}
		s := l.Shape.WithBatch(batch)
		cases = append(cases, steadyCase{
			name: fmt.Sprintf("L%d %s %dx%d/s%d", l.ID, l.Net, s.R, s.S, s.Str),
			s:    s,
		})
	}
	cases = append(cases,
		steadyCase{
			name: "tiny 8ch 8x8 3x3/s1",
			s:    conv.Shape{N: batch, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
		},
		steadyCase{
			name: "edge 64ch 7x7 1x1/s1",
			s:    conv.Shape{N: batch, C: 64, H: 7, W: 7, K: 64, R: 1, S: 1, Str: 1, Pad: 0},
		})
	return cases
}

// steadyInnerIters amortises timer overhead for the sub-millisecond
// small shapes; timeIt reports the minimum over cfg.Reps batches.
const steadyInnerIters = 8

// Steady contrasts the one-shot convolution path (a fresh plan and
// on-the-fly filter transform per call, as a naive serving loop would
// do) with the steady-state path the serving runtime uses after
// warm-up: one cached plan, a pre-transformed (packed) filter, a
// preallocated output and the per-plan scratch pool — and, as a third
// column, the same loop with the fused bias+affine+ReLU epilogue, to
// show the epilogue rides the store sweep instead of costing separate
// passes. This is the experiment behind the PR's steady-state
// acceptance numbers; the corresponding allocation claim (0 allocs/op
// on the packed path) is asserted by BenchmarkEngineSteadyState.
func Steady(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Steady-state serving loop vs one-shot calls (measured, batch=%d, threads=%d, min of %d×%d calls)\n",
		cfg.Batch, cfg.Threads, cfg.Reps, steadyInnerIters)
	fprintf(w, "%-28s %14s %14s %14s %9s %9s\n",
		"layer", "one-shot", "steady", "steady+fused", "speedup", "fused/st")
	var ratios []float64
	for _, c := range steadyCases(cfg.Batch) {
		s := c.s
		in, filter := operands(s)
		out := s.NewOutput()

		// One-shot: what every call pays without the serving caches.
		oneShot := timeIt(cfg.Reps, func() {
			for i := 0; i < steadyInnerIters; i++ {
				p := newNDPlan(s, cfg)
				p.Execute(in, filter, out)
			}
		}) / steadyInnerIters

		// Steady state: plan + packed filter built once, output reused.
		plan := newNDPlan(s, cfg)
		pf, err := plan.TransformFilter(filter)
		if err != nil {
			fprintf(w, "%-28s transform failed: %v\n", c.name, err)
			continue
		}
		plan.Execute(in, filter, out) // warm the scratch pool
		steady := timeIt(cfg.Reps, func() {
			for i := 0; i < steadyInnerIters; i++ {
				if err := plan.TryExecutePacked(in, pf, out); err != nil {
					panic(err)
				}
			}
		}) / steadyInnerIters

		// Steady state with the fused Conv→BN→ReLU epilogue.
		ep := &core.EpilogueParams{
			Bias:  make([]float32, s.K),
			Scale: make([]float32, s.K),
			Shift: make([]float32, s.K),
			ReLU:  true,
		}
		for k := 0; k < s.K; k++ {
			ep.Bias[k] = float32(k%7) * 0.01
			ep.Scale[k] = 1 + float32(k%3)*0.125
			ep.Shift[k] = -0.05 * float32(k%5)
		}
		fplan := core.NewPlan(s, core.Options{
			Threads: cfg.Threads, Platform: &cfg.Platform, FusedEpilogue: ep,
		})
		fpf, err := fplan.TransformFilter(filter)
		if err != nil {
			fprintf(w, "%-28s fused transform failed: %v\n", c.name, err)
			continue
		}
		fplan.Execute(in, filter, out) // warm the scratch pool
		fused := timeIt(cfg.Reps, func() {
			for i := 0; i < steadyInnerIters; i++ {
				if err := fplan.TryExecutePacked(in, fpf, out); err != nil {
					panic(err)
				}
			}
		}) / steadyInnerIters

		ratio := oneShot / steady
		ratios = append(ratios, ratio)
		fprintf(w, "%-28s %12.0fµs %12.0fµs %12.0fµs %8.2fx %8.2fx\n",
			c.name, oneShot*1e6, steady*1e6, fused*1e6, ratio, fused/steady)
	}
	if len(ratios) > 0 {
		fprintf(w, "geomean steady-state speedup over one-shot: %.2fx\n", Geomean(ratios))
	}
}
