package bench

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/fft"
	"ndirect/internal/hw"
	"ndirect/internal/im2col"
	"ndirect/internal/xsmm"
)

// Table2 prints the qualitative comparison of approaches (Table 2 of
// the paper).
func Table2(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Table 2: comparison of convolution approaches\n")
	fprintf(w, "%-14s %-9s %-18s %-12s %s\n", "Method", "Approach", "Format conversion", "Low memory", "Performance")
	rows := [][5]string{
		{"im2col+GEMM", "Library", "not required", "no", "*"},
		{"XNNPACK", "Library", "not required", "yes", "**"},
		{"LIBXSMM", "JIT", "required", "yes", "**"},
		{"Ansor", "Search", "not required", "yes", "**"},
		{"nDirect", "Library", "not required", "yes", "***"},
	}
	for _, r := range rows {
		fprintf(w, "%-14s %-9s %-18s %-12s %s\n", r[0], r[1], r[2], r[3], r[4])
	}
}

// Table3 prints the evaluation platforms.
func Table3(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Table 3: hardware platforms\n")
	fprintf(w, "%-22s %8s %10s %8s %12s %8s %8s %8s\n",
		"Platform", "Cores", "FP32 GF", "GHz", "BW GiB/s", "L1", "L2", "L3")
	sz := func(c hw.Cache) string {
		if !c.Exists() {
			return "None"
		}
		if c.SizeBytes >= 1<<20 {
			return fprintSize(c.SizeBytes>>20, "MB")
		}
		return fprintSize(c.SizeBytes>>10, "KB")
	}
	for _, p := range hw.Platforms {
		fprintf(w, "%-22s %8d %10.1f %8.1f %12.2f %8s %8s %8s\n",
			p.Name, p.Cores, p.PeakGFLOPS, p.FreqGHz, p.BandwidthGiBs,
			sz(p.L1), sz(p.L2), sz(p.L3))
	}
}

func fprintSize(v int, unit string) string { return itoa(v) + " " + unit }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Table4 prints the 28 evaluation layers.
func Table4(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Table 4: convolution operator configurations\n")
	fprintf(w, "%3s %6s %6s %6s %5s %4s %4s %10s %12s\n", "ID", "C", "K", "H/W", "R/S", "str", "pad", "net", "GFLOP(N=1)")
	for _, l := range conv.Table4 {
		s := l.Shape
		fprintf(w, "%3d %6d %6d %6d %5d %4d %4d %10s %12.3f\n",
			l.ID, s.C, s.K, s.H, s.R, s.Str, s.Pad, l.Net, float64(s.FLOPs())/1e9)
	}
}

// Fig1a reproduces the runtime-breakdown motivation study: the
// percentage of time spent in each stage of im2col+GEMM (im2col /
// packing / micro-kernel) and of LIBXSMM fed framework tensors
// (format transform / micro-kernel), measured on the host, layers
// 1–20 with the configured batch.
func Fig1a(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Figure 1a: runtime breakdown per stage (%% of method total, measured, batch=%d)\n", cfg.Batch)
	fprintf(w, "%5s | %28s | %25s\n", "", "im2col+GEMM", "LIBXSMM(+transform)")
	fprintf(w, "%5s | %8s %8s %10s | %12s %12s\n", "layer", "im2col", "packing", "kernel", "transform", "kernel")
	for _, l := range conv.Layers1to20() {
		s := l.Shape.WithBatch(cfg.Batch)
		in, filter := operands(s)

		var gSt im2col.Stats
		timeIt(cfg.Reps, func() {
			_, gSt = im2col.Conv2D(s, in, filter, im2col.Options{Threads: cfg.Threads, CollectStats: true})
		})
		gTot := gSt.Total()

		var xSt xsmm.Stats
		timeIt(cfg.Reps, func() {
			_, xSt = xsmm.Conv2D(s, in, filter, xsmm.Options{Threads: cfg.Threads})
		})
		xTot := xSt.Total()

		fprintf(w, "%5d | %7.1f%% %7.1f%% %9.1f%% | %11.1f%% %11.1f%%\n",
			l.ID,
			100*gSt.Im2colSec/gTot, 100*gSt.PackSec/gTot, 100*gSt.KernelSec/gTot,
			100*xSt.ConvertSec()/xTot, 100*xSt.KernelSec/xTot)
	}
}

// Fig1b reproduces the motivation performance study: % of the 64-core
// Phytium 2000+ peak for six prior methods (modeled), layers 1–20,
// batch = 64.
func Fig1b(cfg Config) {
	cfg.setDefaults()
	cfg.Platform = hw.Phytium2000
	w := cfg.Out
	methods := []Method{MXSMM, MIm2col, MXNN, MACLGEMM, MACLDirect, MAnsor}
	fprintf(w, "Figure 1b: %% of peak on Phytium 2000+ (64 cores, N=64, modeled)\n")
	fprintf(w, "%5s", "layer")
	for _, m := range methods {
		fprintf(w, " %12s", m)
	}
	fprintf(w, "\n")
	geo := map[Method][]float64{}
	for _, l := range conv.Layers1to20() {
		s := l.Shape.WithBatch(cfg.Platform.Cores)
		fprintf(w, "%5d", l.ID)
		for _, m := range methods {
			r := ModelLayer(cfg, m, s)
			fprintf(w, " %11.1f%%", r.PctPeak*100)
			geo[m] = append(geo[m], r.PctPeak*100)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "%5s", "Geo")
	for _, m := range methods {
		fprintf(w, " %11.1f%%", Geomean(geo[m]))
	}
	fprintf(w, "\n")
}

// Fig4 reproduces the main multi-core comparison: GFLOPS for
// im2col+GEMM, XNNPACK, LIBXSMM and NDIRECT over all 28 layers, plus
// nDirect's efficiency line — modeled for the configured platform
// with N = cores. Measured mode (host) available via Fig4Measured.
func Fig4(cfg Config) {
	cfg.setDefaults()
	p := cfg.Platform
	w := cfg.Out
	methods := []Method{MIm2col, MXNN, MXSMM, MNDirect}
	fprintf(w, "Figure 4: conv GFLOPS on %s (%d cores, N=%d, modeled)\n", p.Name, p.Cores, p.Cores)
	fprintf(w, "%5s %14s %14s %14s %14s %12s\n",
		"layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT", "NDIRECT %peak")
	geo := map[Method][]float64{}
	for _, l := range conv.Table4 {
		s := l.Shape.WithBatch(p.Cores)
		fprintf(w, "%5d", l.ID)
		var nd Result
		for _, m := range methods {
			r := ModelLayer(cfg, m, s)
			fprintf(w, " %14.1f", r.GFLOPS)
			geo[m] = append(geo[m], r.GFLOPS)
			if m == MNDirect {
				nd = r
			}
		}
		fprintf(w, " %11.1f%%\n", nd.PctPeak*100)
	}
	fprintf(w, "%5s", "Geo")
	for _, m := range methods {
		fprintf(w, " %14.1f", Geomean(geo[m]))
	}
	nd := Geomean(geo[MNDirect])
	best := 0.0
	for _, m := range methods[:3] {
		if g := Geomean(geo[m]); g > best {
			best = g
		}
	}
	fprintf(w, "\n-> nDirect vs best baseline: %.2fx\n", nd/best)
}

// Fig4Measured is the measured-mode companion of Fig4: host wall
// clock, same methods and layers (batch from cfg).
func Fig4Measured(cfg Config, layers []conv.Layer) {
	cfg.setDefaults()
	w := cfg.Out
	methods := []Method{MIm2col, MXNN, MXSMM, MNDirect}
	fprintf(w, "Figure 4 (measured on host): conv GFLOPS, batch=%d, threads=%d\n", cfg.Batch, cfg.Threads)
	fprintf(w, "%5s %14s %14s %14s %14s\n", "layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT")
	geo := map[Method][]float64{}
	for _, l := range layers {
		s := l.Shape.WithBatch(cfg.Batch)
		fprintf(w, "%5d", l.ID)
		for _, m := range methods {
			r := MeasureLayer(cfg, m, s)
			fprintf(w, " %14.2f", r.GFLOPS)
			geo[m] = append(geo[m], r.GFLOPS)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "%5s", "Geo")
	for _, m := range methods {
		fprintf(w, " %14.2f", Geomean(geo[m]))
	}
	fprintf(w, "\n")
}

// Fig5 reproduces the packing-overlap ablation on the VGG layers
// (24–28): nDirect with the overlapped packing micro-kernel vs
// sequential packing — modeled on the three HPC platforms and
// measured on the host.
func Fig5(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Figure 5: packing optimisation (GFLOPS; '+packing' = overlapped §5.3)\n")
	for _, p := range []hw.Platform{hw.Phytium2000, hw.KP920, hw.ThunderX2} {
		c := cfg
		c.Platform = p
		fprintf(w, "-- %s (modeled, N=%d) --\n", p.Name, p.Cores)
		fprintf(w, "%5s %16s %16s %8s\n", "layer", "micro-kernel", "+packing", "gain")
		for _, l := range conv.VGGLayers() {
			s := l.Shape.WithBatch(p.Cores)
			seq := ModelLayer(c, MNDirectSeqPack, s)
			over := ModelLayer(c, MNDirect, s)
			fprintf(w, "%5d %16.1f %16.1f %7.1f%%\n",
				l.ID, seq.GFLOPS, over.GFLOPS, 100*(over.GFLOPS/seq.GFLOPS-1))
		}
	}
	fprintf(w, "-- host (measured, batch=%d, threads=%d) --\n", cfg.Batch, cfg.Threads)
	fprintf(w, "%5s %16s %16s %8s\n", "layer", "micro-kernel", "+packing", "gain")
	for _, l := range conv.VGGLayers() {
		s := l.Shape.WithBatch(cfg.Batch)
		seq := MeasureLayer(cfg, MNDirectSeqPack, s)
		over := MeasureLayer(cfg, MNDirect, s)
		fprintf(w, "%5d %16.2f %16.2f %7.1f%%\n",
			l.ID, seq.GFLOPS, over.GFLOPS, 100*(over.GFLOPS/seq.GFLOPS-1))
	}
}

// Fig6 reproduces the per-layer comparison against Ansor: nDirect's
// speedup over the tuned schedule, layers 1–20, three HPC platforms
// (modeled) plus the host (measured, including a real evolutionary
// search per layer).
func Fig6(cfg Config, measured bool) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Figure 6: nDirect speedup over Ansor (layers 1-20)\n")
	plats := []hw.Platform{hw.Phytium2000, hw.KP920, hw.ThunderX2}
	fprintf(w, "%5s %16s %16s %16s", "layer", "Phytium 2000+", "KP920", "ThunderX2")
	if measured {
		fprintf(w, " %16s", "host(measured)")
	}
	fprintf(w, "\n")
	geos := make([][]float64, len(plats)+1)
	for _, l := range conv.Layers1to20() {
		fprintf(w, "%5d", l.ID)
		for pi, p := range plats {
			c := cfg
			c.Platform = p
			s := l.Shape.WithBatch(p.Cores)
			nd := ModelLayer(c, MNDirect, s)
			an := ModelLayer(c, MAnsor, s)
			sp := nd.GFLOPS / an.GFLOPS
			geos[pi] = append(geos[pi], sp)
			fprintf(w, " %15.2fx", sp)
		}
		if measured {
			s := l.Shape.WithBatch(cfg.Batch)
			nd := MeasureLayer(cfg, MNDirect, s)
			an := MeasureLayer(cfg, MAnsor, s)
			sp := nd.GFLOPS / an.GFLOPS
			geos[len(plats)] = append(geos[len(plats)], sp)
			fprintf(w, " %15.2fx", sp)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "%5s", "Geo")
	for pi := range plats {
		fprintf(w, " %15.2fx", Geomean(geos[pi]))
	}
	if measured {
		fprintf(w, " %15.2fx", Geomean(geos[len(plats)]))
	}
	fprintf(w, "\n")
}

// Fig8 reproduces the embedded-platform study: single-core (a) and
// 4-core (b) GFLOPS on the RPi 4 for the four methods, layers 1–20
// (modeled; the host-measured single-core comparison is Fig4Measured
// with threads=1).
func Fig8(cfg Config) {
	cfg.setDefaults()
	cfg.Platform = hw.RPi4
	w := cfg.Out
	methods := []Method{MIm2col, MXNN, MXSMM, MNDirect}
	for _, part := range []struct {
		label   string
		threads int
		batch   int
	}{{"(a) single-core", 1, 1}, {"(b) 4-core", 4, 4}} {
		fprintf(w, "Figure 8%s on RPi 4 (modeled, N=%d)\n", part.label, part.batch)
		fprintf(w, "%5s %14s %14s %14s %14s\n", "layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT")
		geo := map[Method][]float64{}
		for _, l := range conv.Layers1to20() {
			s := l.Shape.WithBatch(part.batch)
			fprintf(w, "%5d", l.ID)
			for _, m := range methods {
				r := ModelLayerThreads(cfg, m, s, part.threads)
				fprintf(w, " %14.2f", r.GFLOPS)
				geo[m] = append(geo[m], r.GFLOPS)
			}
			fprintf(w, "\n")
		}
		fprintf(w, "%5s", "avg")
		for _, m := range methods {
			fprintf(w, " %14.2f", Geomean(geo[m]))
		}
		fprintf(w, "\n")
	}
}

// Fig9 reproduces the hyper-threading study: ThunderX2 with SMT4
// enabled (128 logical threads, N=128), four methods, layers 1–20
// (modeled).
func Fig9(cfg Config) {
	cfg.setDefaults()
	cfg.Platform = hw.ThunderX2
	w := cfg.Out
	logical := hw.ThunderX2.LogicalCores()
	methods := []Method{MIm2col, MXNN, MXSMM, MNDirect}
	fprintf(w, "Figure 9: ThunderX2 with hyper-threading (SMT4, %d threads, N=%d, modeled)\n", logical, logical)
	fprintf(w, "%5s %14s %14s %14s %14s\n", "layer", "im2col+GEMM", "XNNPACK", "LIBXSMM", "NDIRECT")
	geo := map[Method][]float64{}
	for _, l := range conv.Layers1to20() {
		s := l.Shape.WithBatch(logical)
		fprintf(w, "%5d", l.ID)
		for _, m := range methods {
			r := ModelLayerThreads(cfg, m, s, logical)
			fprintf(w, " %14.1f", r.GFLOPS)
			geo[m] = append(geo[m], r.GFLOPS)
		}
		fprintf(w, "\n")
	}
	fprintf(w, "%5s", "avg")
	for _, m := range methods {
		fprintf(w, " %14.1f", Geomean(geo[m]))
	}
	nd := Geomean(geo[MNDirect])
	best := 0.0
	for _, m := range methods[:3] {
		if g := Geomean(geo[m]); g > best {
			best = g
		}
	}
	fprintf(w, "\n-> nDirect vs best baseline under SMT: %.2fx\n", nd/best)
}

// ExtraWinograd compares nDirect against the Winograd F(2×2, 3×3)
// fast algorithm on the 3×3 stride-1 layers — the comparison the
// paper's §2.1 declines to run because of Winograd's restricted
// domain. Measured on the host.
func ExtraWinograd(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Extra: Winograd F(2x2,3x3) vs NDIRECT (measured, batch=%d, threads=%d)\n", cfg.Batch, cfg.Threads)
	fprintf(w, "%5s %14s %14s %10s\n", "layer", "Winograd", "NDIRECT", "ratio")
	for _, l := range conv.Table4 {
		s := l.Shape
		if !(s.R == 3 && s.S == 3 && s.Str == 1) {
			continue
		}
		s = s.WithBatch(cfg.Batch)
		wg := MeasureLayer(cfg, MWinograd, s)
		nd := MeasureLayer(cfg, MNDirect, s)
		fprintf(w, "%5d %14.2f %14.2f %9.2fx\n", l.ID, wg.GFLOPS, nd.GFLOPS, nd.GFLOPS/wg.GFLOPS)
	}
	fprintf(w, "(Winograd counts direct-convolution FLOPs for comparability; it executes ~2.25x fewer)\n")
}

// ExtraFFT compares nDirect against FFT-based convolution — the other
// fast algorithm §2.1 excludes — and prints the spectral memory
// footprint that motivates the exclusion. Measured on the host at
// small scale.
func ExtraFFT(cfg Config) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Extra: FFT convolution vs NDIRECT (measured, batch=%d, threads=%d)\n", cfg.Batch, cfg.Threads)
	fprintf(w, "%-28s %12s %12s %16s %16s\n", "shape", "FFT GF", "NDIRECT GF", "FFT footprint", "direct footprint")
	for _, s := range []conv.Shape{
		{N: 1, C: 16, H: 28, W: 28, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 16, H: 28, W: 28, K: 16, R: 7, S: 7, Str: 1, Pad: 3},
		{N: 1, C: 16, H: 28, W: 28, K: 16, R: 3, S: 3, Str: 2, Pad: 1},
	} {
		s = s.WithBatch(cfg.Batch)
		in, filter := operands(s)
		fftSec := timeIt(cfg.Reps, func() { fft.Conv2D(s, in, filter, fft.Options{Threads: cfg.Threads}) })
		nd := MeasureLayer(cfg, MNDirect, s)
		fprintf(w, "%-28s %12.2f %12.2f %13.1f MB %13.3f MB\n",
			fmt.Sprintf("C%d K%d %dx%d %dx%d s%d", s.C, s.K, s.H, s.W, s.R, s.S, s.Str),
			float64(s.FLOPs())/fftSec/1e9, nd.GFLOPS,
			float64(fft.FootprintBytes(s))/(1<<20),
			float64(s.InputBytes()+s.FilterBytes()+s.OutputBytes())/(1<<20))
	}
	fprintf(w, "(FFT GFLOPS count direct-convolution FLOPs; larger kernels amortise the transforms)\n")
}

// Variance reproduces the §7.4 methodology check: "We run each
// experiment 20 times and report the geometric mean GFLOPS. We found
// the variances across different runs to be minor, less than 5%."
// Runs nDirect 20 times on a layer and reports the geomean and the
// max deviation from it.
func Variance(cfg Config, layerID int) {
	cfg.setDefaults()
	w := cfg.Out
	l, ok := conv.LayerByID(layerID)
	if !ok {
		fprintf(w, "no Table 4 layer %d\n", layerID)
		return
	}
	s := l.Shape.WithBatch(cfg.Batch)
	in, filter := operands(s)
	plan := newNDPlan(s, cfg)
	out := s.NewOutput()
	plan.Execute(in, filter, out) // warm-up

	const runs = 20
	gf := make([]float64, runs)
	for i := range gf {
		sec := timeIt(1, func() { plan.Execute(in, filter, out) })
		gf[i] = float64(s.FLOPs()) / sec / 1e9
	}
	geo := Geomean(gf)
	var maxDev float64
	for _, v := range gf {
		d := v/geo - 1
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	fprintf(w, "§7.4 methodology: layer %d, %d runs (batch=%d, threads=%d)\n", l.ID, runs, cfg.Batch, cfg.Threads)
	fprintf(w, "geomean %.2f GFLOPS, max deviation %.1f%% (paper: <5%% on the dedicated testbed)\n",
		geo, 100*maxDev)
}
