package bench

import (
	"bytes"
	"strings"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
)

func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Threads: 1, Batch: 1, Reps: 1, TuneTrials: 4, Out: buf}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	Table2(tinyCfg(&buf))
	Table3(tinyCfg(&buf))
	Table4(tinyCfg(&buf))
	out := buf.String()
	for _, want := range []string{"nDirect", "Phytium 2000+", "ThunderX2", "VGG-16", "Table 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables output missing %q", want)
		}
	}
	// 28 Table-4 rows.
	if got := strings.Count(out, "ResNet-50"); got != 23 {
		t.Fatalf("Table 4 has %d ResNet rows, want 23", got)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{1, 4}); g != 2 {
		t.Fatalf("Geomean = %v, want 2", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean must be 0")
	}
}

func TestMeasureLayerAllMethods(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	for _, m := range []Method{MNDirect, MNDirectSeqPack, MIm2col, MXSMM, MXNN, MACLDirect, MACLGEMM, MAnsor} {
		r := MeasureLayer(cfg, m, s)
		if r.GFLOPS <= 0 || r.Seconds <= 0 {
			t.Fatalf("%s: bad result %+v", m, r)
		}
	}
}

func TestModelLayerAllMethods(t *testing.T) {
	s := conv.Shape{N: 64, C: 64, H: 56, W: 56, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Platform = hw.KP920
	for _, m := range []Method{MNDirect, MNDirectSeqPack, MIm2col, MXSMM, MXNN, MACLDirect, MACLGEMM, MAnsor} {
		r := ModelLayer(cfg, m, s)
		if r.GFLOPS <= 0 || r.PctPeak <= 0 || r.PctPeak > 1 {
			t.Fatalf("%s: bad projection %+v", m, r)
		}
	}
}

func TestFig1bOutputs(t *testing.T) {
	var buf bytes.Buffer
	Fig1b(tinyCfg(&buf))
	out := buf.String()
	if !strings.Contains(out, "Figure 1b") || !strings.Contains(out, "Geo") {
		t.Fatal("Fig1b output malformed")
	}
	if strings.Count(out, "\n") < 22 { // header + 20 layers + geomean
		t.Fatalf("Fig1b printed too few rows:\n%s", out)
	}
}

func TestFig4Outputs(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.Platform = hw.Phytium2000
	Fig4(cfg)
	out := buf.String()
	if !strings.Contains(out, "NDIRECT") || !strings.Contains(out, "nDirect vs best baseline") {
		t.Fatalf("Fig4 output malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < 30 { // header*2 + 28 layers + geo + ratio
		t.Fatal("Fig4 printed too few rows")
	}
}

func TestFig6ModeledOnly(t *testing.T) {
	var buf bytes.Buffer
	Fig6(tinyCfg(&buf), false)
	out := buf.String()
	if !strings.Contains(out, "ThunderX2") {
		t.Fatal("Fig6 output malformed")
	}
}

func TestFig8And9Outputs(t *testing.T) {
	var buf bytes.Buffer
	Fig8(tinyCfg(&buf))
	Fig9(tinyCfg(&buf))
	out := buf.String()
	if !strings.Contains(out, "single-core") || !strings.Contains(out, "4-core") {
		t.Fatal("Fig8 output malformed")
	}
	if !strings.Contains(out, "hyper-threading") {
		t.Fatal("Fig9 output malformed")
	}
}

func TestFig7ModeledOutputs(t *testing.T) {
	var buf bytes.Buffer
	Fig7Modeled(tinyCfg(&buf), []string{"resnet50"})
	out := buf.String()
	if !strings.Contains(out, "ResNet-50") || !strings.Contains(out, "Phytium") {
		t.Fatalf("Fig7Modeled output malformed:\n%s", out)
	}
}

func TestFig5MeasuredSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("measured Fig5 is slow")
	}
	var buf bytes.Buffer
	Fig5(tinyCfg(&buf))
	if !strings.Contains(buf.String(), "packing") {
		t.Fatal("Fig5 output malformed")
	}
}

func TestCSVEmitters(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	if err := Fig4CSV(cfg, []hw.Platform{hw.Phytium2000}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+28*4 { // header + 28 layers x 4 methods
		t.Fatalf("Fig4CSV rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "platform,layer,method") {
		t.Fatalf("bad CSV header: %q", lines[0])
	}
	buf.Reset()
	if err := Fig6CSV(cfg, []hw.Platform{hw.KP920}); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+20 {
		t.Fatalf("Fig6CSV rows = %d", len(lines))
	}
}

func TestFig7MeasuredTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("measured end-to-end is slow")
	}
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	cfg.TuneTrials = 2
	Fig7Measured(cfg, []string{"resnet18", "nosuchmodel"})
	out := buf.String()
	if !strings.Contains(out, "ResNet-18") {
		t.Fatalf("Fig7Measured output malformed:\n%s", out)
	}
	if !strings.Contains(out, "unknown model") {
		t.Fatal("unknown model must be reported")
	}
}

func TestVarianceExperiment(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	Variance(cfg, 5) // small 1x1 layer keeps the 20 runs fast
	out := buf.String()
	if !strings.Contains(out, "20 runs") || !strings.Contains(out, "geomean") {
		t.Fatalf("variance output malformed:\n%s", out)
	}
	buf.Reset()
	Variance(cfg, 99)
	if !strings.Contains(buf.String(), "no Table 4 layer") {
		t.Fatal("bad layer id must be reported")
	}
}
