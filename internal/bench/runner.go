// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §3), in two
// modes:
//
//   - measured: real wall-clock runs of the Go implementations on the
//     host (relative kernel quality, the Figure 8a-style single-core
//     comparisons);
//   - modeled: simarch projections onto the paper's ARM platforms
//     (the multi-core, multi-platform series — the documented
//     substitute for the testbed).
package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"ndirect/internal/acl"
	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/hw"
	"ndirect/internal/im2col"
	"ndirect/internal/simarch"
	"ndirect/internal/tensor"
	"ndirect/internal/winograd"
	"ndirect/internal/xnn"
	"ndirect/internal/xsmm"
)

// Method identifies one convolution implementation under test.
type Method string

const (
	MNDirect        Method = "NDIRECT"
	MNDirectSeqPack Method = "NDIRECT(seq-pack)"
	MIm2col         Method = "im2col+GEMM"
	MXSMM           Method = "LIBXSMM"
	MXNN            Method = "XNNPACK"
	MACLDirect      Method = "ACL_DIRECT"
	MACLGEMM        Method = "ACL_GEMM"
	MAnsor          Method = "Ansor"
	// MWinograd is the F(2x2,3x3) fast algorithm the paper's SS2.1
	// excludes from its comparison (3x3 stride-1 only, lower
	// accuracy); measured-mode extra.
	MWinograd Method = "Winograd"
)

// Config controls a harness run.
type Config struct {
	Platform hw.Platform // modeled-mode target (and tile models)
	Threads  int         // measured-mode workers
	Batch    int         // measured-mode batch size (paper: core count)
	Reps     int         // repetitions; minimum time is reported
	// TuneTrials bounds the Ansor substitute's measured search per
	// layer (Figure 6); 0 uses a small default.
	TuneTrials int
	Out        io.Writer
}

func (c *Config) setDefaults() {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Reps <= 0 {
		c.Reps = 2
	}
	if c.TuneTrials <= 0 {
		c.TuneTrials = 24
	}
	if c.Platform.Name == "" {
		c.Platform = hw.Phytium2000
	}
}

// Result is one measured or modeled data point.
type Result struct {
	Method  Method
	LayerID int
	GFLOPS  float64
	PctPeak float64 // modeled mode only
	Seconds float64
}

// operands builds deterministic inputs for a layer.
func operands(s conv.Shape) (in, filter *tensor.Tensor) {
	in = s.NewInput()
	in.FillRandom(int64(s.C*31 + s.K))
	filter = s.NewFilter()
	filter.FillRandom(int64(s.K*17 + s.R))
	return in, filter
}

// timeIt runs f reps times and returns the minimum duration in
// seconds.
func timeIt(reps int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Seconds(); d < best {
			best = d
		}
	}
	return best
}

// MeasureLayer times one method on one layer on the host and returns
// its throughput. The methodology follows §7.4: LIBXSMM is timed on
// pre-converted operands (kernel only), XNNPACK runs natively on
// NHWC, nDirect includes its on-the-fly transforms.
func MeasureLayer(cfg Config, m Method, s conv.Shape) Result {
	cfg.setDefaults()
	in, filter := operands(s)
	var sec float64
	switch m {
	case MNDirect, MNDirectSeqPack:
		plan := core.NewPlan(s, core.Options{
			Threads:        cfg.Threads,
			Platform:       &cfg.Platform,
			SequentialPack: m == MNDirectSeqPack,
		})
		out := s.NewOutput()
		sec = timeIt(cfg.Reps, func() { plan.Execute(in, filter, out) })
	case MIm2col:
		sec = timeIt(cfg.Reps, func() { im2col.Conv2D(s, in, filter, im2col.Options{Threads: cfg.Threads}) })
	case MXSMM:
		inB := tensor.NCHWToNCHWc(in, xsmm.BlockC)
		fB := tensor.KCRSToCRSKc(filter, xsmm.BlockC, xsmm.BlockK)
		outB := xsmm.NewBlockedOutput(s)
		sec = timeIt(cfg.Reps, func() { xsmm.Conv2DBlocked(s, inB, fB, outB, xsmm.Options{Threads: cfg.Threads}) })
	case MXNN:
		inNHWC := tensor.NCHWToNHWC(in)
		sec = timeIt(cfg.Reps, func() { xnn.Conv2DNHWC(s, inNHWC, filter, xnn.Options{Threads: cfg.Threads}) })
	case MACLDirect:
		sec = timeIt(cfg.Reps, func() { acl.DirectConv2D(s, in, filter, acl.Options{Threads: cfg.Threads}) })
	case MACLGEMM:
		sec = timeIt(cfg.Reps, func() { acl.GEMMConv2D(s, in, filter, acl.Options{Threads: cfg.Threads}) })
	case MWinograd:
		if !winograd.Supported(s) {
			return Result{Method: m} // zero GFLOPS marks "unsupported"
		}
		sec = timeIt(cfg.Reps, func() { winograd.Conv2D(s, in, filter, winograd.Options{Threads: cfg.Threads}) })
	case MAnsor:
		res := autotune.Tune(s, autotune.TuneOptions{
			Trials: cfg.TuneTrials, Population: 8, Generations: 3,
			Threads: cfg.Threads, Seed: 1, MeasureBatch: min(s.N, 2),
		})
		out := s.NewOutput()
		sch := autotune.ClampFor(res.Best, s)
		sec = timeIt(cfg.Reps, func() {
			if err := autotune.Execute(s, sch, in, filter, out, cfg.Threads); err != nil {
				panic(err)
			}
		})
	default:
		panic("bench: unknown method " + string(m))
	}
	return Result{Method: m, GFLOPS: float64(s.FLOPs()) / sec / 1e9, Seconds: sec}
}

// ModelLayer projects one method on one layer onto the configured
// platform with the machine model, using all platform cores.
func ModelLayer(cfg Config, m Method, s conv.Shape) Result {
	cfg.setDefaults()
	return ModelLayerThreads(cfg, m, s, cfg.Platform.Cores)
}

// ModelLayerThreads is ModelLayer with an explicit thread count
// (Figures 8a and 9).
func ModelLayerThreads(cfg Config, m Method, s conv.Shape, threads int) Result {
	cfg.setDefaults()
	p := cfg.Platform
	var prof simarch.Profile
	switch m {
	case MNDirect:
		prof = simarch.ProfileNDirect(s, p, threads, false)
	case MNDirectSeqPack:
		prof = simarch.ProfileNDirect(s, p, threads, true)
	case MIm2col:
		prof = simarch.ProfileIm2colGEMM(s, p, threads)
	case MACLGEMM:
		prof = simarch.ProfileACLGEMM(s, p, threads)
	case MXSMM:
		prof = simarch.ProfileXSMM(s, p, threads, false)
	case MXNN:
		prof = simarch.ProfileXNN(s, p, threads)
	case MACLDirect:
		prof = simarch.ProfileACLDirect(s, p, threads)
	case MAnsor:
		prof = simarch.ProfileAnsor(s, p, threads)
	default:
		panic("bench: unknown method " + string(m))
	}
	proj := simarch.Estimate(p, threads, prof)
	return Result{Method: m, GFLOPS: proj.GFLOPS, PctPeak: proj.PctPeak, Seconds: proj.Seconds}
}

// Geomean returns the geometric mean of positive values.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var logSum float64
	for _, v := range vals {
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(vals)))
}

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// newNDPlan builds the standard measured-mode nDirect plan.
func newNDPlan(s conv.Shape, cfg Config) *core.Plan {
	return core.NewPlan(s, core.Options{Threads: cfg.Threads, Platform: &cfg.Platform})
}
