package bench

import (
	"encoding/csv"
	"fmt"
	"strconv"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
)

// CSV emitters: machine-readable variants of the main figures, for
// regenerating the paper's plots with external tooling.

// Fig4CSV writes the Figure 4 series as CSV: one row per
// (platform, layer, method) with modeled GFLOPS and %-of-peak.
func Fig4CSV(cfg Config, platforms []hw.Platform) error {
	cfg.setDefaults()
	w := csv.NewWriter(cfg.Out)
	if err := w.Write([]string{"platform", "layer", "method", "gflops", "pct_peak"}); err != nil {
		return err
	}
	methods := []Method{MIm2col, MXNN, MXSMM, MNDirect}
	for _, p := range platforms {
		c := cfg
		c.Platform = p
		for _, l := range conv.Table4 {
			s := l.Shape.WithBatch(p.Cores)
			for _, m := range methods {
				r := ModelLayer(c, m, s)
				if err := w.Write([]string{
					p.Name,
					strconv.Itoa(l.ID),
					string(m),
					fmt.Sprintf("%.2f", r.GFLOPS),
					fmt.Sprintf("%.4f", r.PctPeak),
				}); err != nil {
					return err
				}
			}
		}
	}
	w.Flush()
	return w.Error()
}

// Fig6CSV writes the Figure 6 series as CSV: one row per
// (platform, layer) with the modeled nDirect-over-Ansor speedup.
func Fig6CSV(cfg Config, platforms []hw.Platform) error {
	cfg.setDefaults()
	w := csv.NewWriter(cfg.Out)
	if err := w.Write([]string{"platform", "layer", "speedup_vs_ansor"}); err != nil {
		return err
	}
	for _, p := range platforms {
		c := cfg
		c.Platform = p
		for _, l := range conv.Layers1to20() {
			s := l.Shape.WithBatch(p.Cores)
			nd := ModelLayer(c, MNDirect, s)
			an := ModelLayer(c, MAnsor, s)
			if err := w.Write([]string{
				p.Name,
				strconv.Itoa(l.ID),
				fmt.Sprintf("%.3f", nd.GFLOPS/an.GFLOPS),
			}); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
