package bench

import (
	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/nn"
	"ndirect/internal/tensor"
)

// Fig7 reproduces the end-to-end inference evaluation (§8.3):
// MXNet+NDIRECT, Ansor (tuned, with operator fusion) and
// MXNet+OpenBLAS (im2col+GEMM) on ResNet-50/101 and VGG-16/19,
// normalised to Ansor.
//
// Fig7Measured runs the real networks on the host (batch and model
// list from the caller — full 64-image batches are testbed-scale);
// Fig7Modeled sums per-convolution-layer machine-model projections on
// Phytium 2000+ and ThunderX2 with N = cores, crediting the Ansor
// configuration with the fusion saving (one output pass per conv
// instead of separate BN/ReLU sweeps).
func Fig7Measured(cfg Config, models []string) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Figure 7 (measured on host): end-to-end inference, batch=%d, threads=%d\n", cfg.Batch, cfg.Threads)
	fprintf(w, "(speedup normalised to Ansor; >1 = faster than Ansor)\n")
	fprintf(w, "%-12s %18s %10s %18s\n", "model", "MXNet+NDIRECT", "Ansor", "MXNet+OpenBLAS")
	for _, name := range models {
		net, ok := nn.ByName(name)
		if !ok {
			fprintf(w, "%-12s unknown model\n", name)
			continue
		}
		x := tensor.New(cfg.Batch, 3, 224, 224)
		x.FillRandom(7)

		ansorEng := &nn.Engine{Algo: nn.AlgoAnsor, Threads: cfg.Threads, Fuse: true}
		ansorEng.Tune(net, autotune.TuneOptions{
			Trials: cfg.TuneTrials, Population: 8, Generations: 3,
			Seed: 2, MeasureBatch: 1,
		})
		ansorSec := timeIt(cfg.Reps, func() { net.Forward(ansorEng, x) })

		ndEng := &nn.Engine{Algo: nn.AlgoNDirect, Threads: cfg.Threads}
		ndSec := timeIt(cfg.Reps, func() { net.Forward(ndEng, x) })

		blasEng := &nn.Engine{Algo: nn.AlgoIm2col, Threads: cfg.Threads}
		blasSec := timeIt(cfg.Reps, func() { net.Forward(blasEng, x) })

		fprintf(w, "%-12s %17.2fx %9.2fx %17.2fx   (Ansor %.2fs)\n",
			net.Name, ansorSec/ndSec, 1.0, ansorSec/blasSec, ansorSec)
	}
}

// fusionSaving estimates the per-conv time the unfused library
// configurations spend on the separate BN and ReLU output sweeps that
// the Ansor configuration fuses away: two extra read+write passes
// over the output tensor at achievable bandwidth.
func fusionSaving(p hw.Platform, s conv.Shape) float64 {
	bytes := 2 * 2 * s.OutputBytes() // BN pass + ReLU pass, read+write each
	return float64(bytes) / (p.BandwidthGiBs * bwEffFig7 * (1 << 30))
}

const bwEffFig7 = 0.6

// Fig7Modeled projects the end-to-end comparison onto Phytium 2000+
// and ThunderX2 (conv layers only; pooling/FC excluded — they are a
// small, configuration-independent fraction).
func Fig7Modeled(cfg Config, models []string) {
	cfg.setDefaults()
	w := cfg.Out
	fprintf(w, "Figure 7 (modeled, conv layers, N = cores): speedup normalised to Ansor\n")
	fprintf(w, "%-10s %-12s %18s %10s %18s\n", "platform", "model", "MXNet+NDIRECT", "Ansor", "MXNet+OpenBLAS")
	for _, p := range []hw.Platform{hw.Phytium2000, hw.ThunderX2} {
		c := cfg
		c.Platform = p
		for _, name := range models {
			net, ok := nn.ByName(name)
			if !ok {
				continue
			}
			// Project each conv shape once and weight by how many
			// times the network instantiates it.
			type proj struct{ nd, an, gm, extra float64 }
			cache := map[conv.Shape]proj{}
			var ndSec, ansorSec, blasSec float64
			for _, u := range net.ConvUnits() {
				s := u.Shape.WithBatch(p.Cores)
				pr, ok := cache[s]
				if !ok {
					pr = proj{
						nd:    ModelLayer(c, MNDirect, s).Seconds,
						an:    ModelLayer(c, MAnsor, s).Seconds,
						gm:    ModelLayer(c, MIm2col, s).Seconds,
						extra: fusionSaving(p, s),
					}
					cache[s] = pr
				}
				ndSec += pr.nd + pr.extra // unfused: pays the BN/ReLU sweeps
				blasSec += pr.gm + pr.extra
				ansorSec += pr.an // fused
			}
			fprintf(w, "%-10s %-12s %17.2fx %9.2fx %17.2fx\n",
				shortName(p.Name), net.Name, ansorSec/ndSec, 1.0, ansorSec/blasSec)
		}
	}
	fprintf(w, "(conv layers weighted by occurrence; pooling/FC excluded)\n")
}

func shortName(n string) string {
	if n == "Phytium 2000+" {
		return "Phytium"
	}
	return n
}
