package winograd

import (
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// Winograd trades accuracy for FLOPs: tolerate more FP32 error than
// the direct algorithms (the §2.1 "reduce the prediction accuracy"
// point).
const tol = 2e-4

func checkConv(t *testing.T, s conv.Shape) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C))
	f := s.NewFilter()
	f.FillRandom(int64(s.K))
	want := conv.Reference(s, in, f)
	got, err := Conv2D(s, in, f, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v: rel diff %g", s, d)
	}
}

func TestConv2DMatchesReference(t *testing.T) {
	checkConv(t, conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 2, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 4, H: 10, W: 10, K: 4, R: 3, S: 3, Str: 1, Pad: 0})
}

func TestConv2DOddOutputSizes(t *testing.T) {
	// P, Q odd: the last tile row/column is ragged.
	checkConv(t, conv.Shape{N: 1, C: 4, H: 7, W: 7, K: 4, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv(t, conv.Shape{N: 1, C: 4, H: 9, W: 5, K: 4, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestUnsupportedShapesRejected(t *testing.T) {
	for _, s := range []conv.Shape{
		{N: 1, C: 4, H: 8, W: 8, K: 4, R: 1, S: 1, Str: 1, Pad: 0}, // 1x1
		{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 2, Pad: 1}, // stride 2
		{N: 1, C: 4, H: 12, W: 12, K: 4, R: 5, S: 5, Str: 1, Pad: 2},
	} {
		if Supported(s) {
			t.Fatalf("%v must be unsupported", s)
		}
		in := s.NewInput()
		f := s.NewFilter()
		if _, err := Conv2D(s, in, f, Options{}); err == nil {
			t.Fatalf("%v: expected error", s)
		}
	}
}

func TestThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	a, _ := Conv2D(s, in, f, Options{Threads: 1})
	b, _ := Conv2D(s, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("thread count changed result")
	}
}

// Empirically document the §2.1 accuracy point: Winograd's error vs
// the float64 oracle exceeds direct convolution's on the same data.
func TestAccuracyWorseThanDirect(t *testing.T) {
	s := conv.Shape{N: 1, C: 64, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(9)
	f := s.NewFilter()
	f.FillRandom(10)
	want := conv.Reference(s, in, f)
	wg, err := Conv2D(s, in, f, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct := core.Conv2D(s, in, f, core.Options{Threads: 1})
	if tensor.RelDiff(want, wg) <= tensor.RelDiff(want, direct) {
		t.Skip("Winograd happened to be at least as accurate on this draw (rare but possible)")
	}
}

// Property: random supported shapes agree with the reference within
// the Winograd tolerance.
func TestRandomShapesProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw uint8, seed int64) bool {
		s := conv.Shape{
			N: 1, C: int(cRaw)%9 + 1,
			H: int(hRaw)%10 + 4, W: int(hRaw)%12 + 4,
			K: int(kRaw)%9 + 1, R: 3, S: 3, Str: 1, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got, err := Conv2D(s, in, fl, Options{Threads: 2})
		if err != nil {
			return false
		}
		return tensor.RelDiff(want, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
