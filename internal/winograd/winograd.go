// Package winograd implements the F(2×2, 3×3) Winograd convolution —
// one of the two fast algorithms §2.1 discusses (with FFT) and
// excludes from the paper's comparison because of its restricted
// applicability (3×3 stride-1 kernels only) and reduced numerical
// accuracy. It is provided here to complete the prior-implementations
// inventory and to let the harness demonstrate both of those
// limitations empirically: Conv2D rejects unsupported shapes, and the
// tests document the FP32 error inflation relative to direct
// convolution.
//
// The implementation uses the standard batched-GEMM formulation
// (Lavin & Gray, CVPR'16): input tiles and filters are transformed
// into the Winograd domain (V = BᵀdB, U = GgGᵀ), the 16 per-position
// channel reductions run as GEMMs on the Goto substrate, and the
// 2×2 outputs come back through the inverse transform (AᵀMA).
package winograd

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/gemm"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Options configure the algorithm.
type Options struct {
	Threads int
}

// Supported reports whether the shape is in Winograd F(2×2, 3×3)'s
// domain: 3×3 kernel, stride 1.
func Supported(s conv.Shape) bool {
	return s.R == 3 && s.S == 3 && s.Str == 1
}

// Conv2D convolves NCHW input with a KCRS 3×3 stride-1 filter using
// Winograd F(2×2, 3×3). Returns an error for unsupported shapes (the
// "limited applications" the paper cites).
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	if !Supported(s) {
		return nil, fmt.Errorf("winograd: unsupported shape %v (need R=S=3, stride 1)", s)
	}
	conv.CheckOperands(s, in, filter)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()
	tilesH := (p + 1) / 2
	tilesW := (q + 1) / 2
	tiles := tilesH * tilesW

	// U[16][K][C]: transformed filters.
	u := transformFilters(s, filter)

	out := s.NewOutput()
	// Per image: scatter-transform the input, 16 GEMMs, inverse
	// transform. Images are independent; parallelise the batch and
	// let the GEMMs use the leftover workers.
	gemmThreads := max(1, threads/min(threads, s.N))
	parallel.MustFor(s.N, threads, func(n int) {
		convImage(s, in, u, out, n, tilesH, tilesW, tiles, gemmThreads)
	})
	return out, nil
}

// transformFilters computes U = G·g·Gᵀ for every (k, c) and lays the
// result out as 16 K×C matrices (position-major for the batched
// GEMMs).
func transformFilters(s conv.Shape, filter *tensor.Tensor) []float32 {
	kc := s.K * s.C
	u := make([]float32, 16*kc)
	for k := 0; k < s.K; k++ {
		for c := 0; c < s.C; c++ {
			g := filter.Data[(k*s.C+c)*9 : (k*s.C+c)*9+9]
			// Gg: 4×3.
			var gg [4][3]float32
			for col := 0; col < 3; col++ {
				g0, g1, g2 := g[col], g[3+col], g[6+col]
				gg[0][col] = g0
				gg[1][col] = 0.5 * (g0 + g1 + g2)
				gg[2][col] = 0.5 * (g0 - g1 + g2)
				gg[3][col] = g2
			}
			// (Gg)Gᵀ: 4×4.
			for row := 0; row < 4; row++ {
				a, b, cc := gg[row][0], gg[row][1], gg[row][2]
				v := [4]float32{a, 0.5 * (a + b + cc), 0.5 * (a - b + cc), cc}
				for col := 0; col < 4; col++ {
					u[(row*4+col)*kc+k*s.C+c] = v[col]
				}
			}
		}
	}
	return u
}

// inputTransform computes V = Bᵀ·d·B for one 4×4 patch d.
func inputTransform(d *[4][4]float32, v *[4][4]float32) {
	// Bᵀd: rows.
	var t [4][4]float32
	for col := 0; col < 4; col++ {
		d0, d1, d2, d3 := d[0][col], d[1][col], d[2][col], d[3][col]
		t[0][col] = d0 - d2
		t[1][col] = d1 + d2
		t[2][col] = d2 - d1
		t[3][col] = d1 - d3
	}
	// (Bᵀd)B: columns.
	for row := 0; row < 4; row++ {
		t0, t1, t2, t3 := t[row][0], t[row][1], t[row][2], t[row][3]
		v[row][0] = t0 - t2
		v[row][1] = t1 + t2
		v[row][2] = t2 - t1
		v[row][3] = t1 - t3
	}
}

// convImage processes one batch image.
func convImage(s conv.Shape, in *tensor.Tensor, u []float32, out *tensor.Tensor,
	n, tilesH, tilesW, tiles, gemmThreads int) {
	kc := s.K * s.C
	p, q := s.P(), s.Q()

	// V[16][C][tiles].
	v := make([]float32, 16*s.C*tiles)
	var d, vt [4][4]float32
	for c := 0; c < s.C; c++ {
		plane := in.Data[(n*s.C+c)*s.H*s.W:]
		for th := 0; th < tilesH; th++ {
			for tw := 0; tw < tilesW; tw++ {
				// Gather the 4×4 patch at (2th−pad, 2tw−pad).
				ih0 := 2*th - s.Pad
				iw0 := 2*tw - s.Pad
				for r := 0; r < 4; r++ {
					ih := ih0 + r
					for cc := 0; cc < 4; cc++ {
						iw := iw0 + cc
						if ih < 0 || ih >= s.H || iw < 0 || iw >= s.W {
							d[r][cc] = 0
						} else {
							d[r][cc] = plane[ih*s.W+iw]
						}
					}
				}
				inputTransform(&d, &vt)
				tile := th*tilesW + tw
				for pos := 0; pos < 16; pos++ {
					v[(pos*s.C+c)*tiles+tile] = vt[pos/4][pos%4]
				}
			}
		}
	}

	// M[16][K][tiles] = U[pos]·V[pos].
	m := make([]float32, 16*s.K*tiles)
	for pos := 0; pos < 16; pos++ {
		gemm.Gemm(s.K, tiles, s.C, 1,
			u[pos*kc:], s.C,
			v[pos*s.C*tiles:], tiles,
			0, m[pos*s.K*tiles:], tiles,
			gemm.Config{Threads: gemmThreads})
	}

	// Inverse transform: out tile = Aᵀ·M·A (2×2 from 4×4).
	for k := 0; k < s.K; k++ {
		outPlane := out.Data[(n*s.K+k)*p*q:]
		for tile := 0; tile < tiles; tile++ {
			var mm [4][4]float32
			for pos := 0; pos < 16; pos++ {
				mm[pos/4][pos%4] = m[(pos*s.K+k)*tiles+tile]
			}
			// AᵀM: 2×4.
			var t [2][4]float32
			for col := 0; col < 4; col++ {
				m0, m1, m2, m3 := mm[0][col], mm[1][col], mm[2][col], mm[3][col]
				t[0][col] = m0 + m1 + m2
				t[1][col] = m1 - m2 - m3
			}
			// (AᵀM)A: 2×2.
			var y [2][2]float32
			for row := 0; row < 2; row++ {
				t0, t1, t2, t3 := t[row][0], t[row][1], t[row][2], t[row][3]
				y[row][0] = t0 + t1 + t2
				y[row][1] = t1 - t2 - t3
			}
			th, tw := tile/tilesW, tile%tilesW
			for dy := 0; dy < 2; dy++ {
				oh := 2*th + dy
				if oh >= p {
					continue
				}
				for dx := 0; dx < 2; dx++ {
					ow := 2*tw + dx
					if ow >= q {
						continue
					}
					outPlane[oh*q+ow] = y[dy][dx]
				}
			}
		}
	}
}
