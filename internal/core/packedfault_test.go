package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// TestPackedCorruptRecoversViaReference: the PackedCorrupt fault
// poisons one element of the pre-transformed weights on a run-private
// copy; the injection-mode non-finite scan must catch the NaN in the
// output and the reference fallback must recompute the exact result
// from the packed filter's KCRS source — while the shared PackedFilter
// itself stays clean for every later run.
func TestPackedCorruptRecoversViaReference(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 5, H: 9, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(11)
	f := s.NewFilter()
	f.FillRandom(12)
	want := conv.Reference(s, in, f)

	plan, err := TryNewPlan(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plan.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	clean := append([]float32(nil), pf.data...)

	// A middle element, a negative index and an out-of-range index
	// (both clamped to 0 — always a live lane) must all recover.
	for _, idx := range []int{len(pf.data) / 2, -7, len(pf.data) + 100} {
		faultinject.Arm(faultinject.PackedCorrupt, idx)
		out := s.NewOutput()
		if err := plan.TryExecutePacked(in, pf, out); err != nil {
			t.Fatalf("idx %d: TryExecutePacked = %v, want nil (reference recovery)", idx, err)
		}
		if d := tensor.MaxAbsDiff(want, out); d != 0 {
			t.Fatalf("idx %d: recovered output differs from reference by %g", idx, d)
		}
	}
	faultinject.Reset()

	for i, v := range pf.data {
		if v != clean[i] {
			t.Fatalf("shared packed filter corrupted at element %d: %g -> %g", i, clean[i], v)
		}
	}
	// With injection off, the packed path must again match the seed
	// path bit for bit.
	seed := Conv2D(s, in, f, Options{})
	out := s.NewOutput()
	if err := plan.TryExecutePacked(in, pf, out); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(seed, out); d != 0 {
		t.Fatalf("post-fault packed run differs from seed by %g", d)
	}
}

// TestConcurrentPackedCancellationNoCorruption (run under -race by
// make check and CI): many goroutines share one PackedFilter and one
// cached plan while their deadlines expire mid-flight. Every
// completion must be either a bit-exact result or an error wrapping
// conv.ErrDeadline, abandoned grids must never corrupt a
// later successful run, and the leaked-worker account must drain to
// zero.
func TestConcurrentPackedCancellationNoCorruption(t *testing.T) {
	s := conv.Shape{N: 2, C: 16, H: 24, W: 24, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(21)
	f := s.NewFilter()
	f.FillRandom(22)

	plan, err := TryNewPlan(s, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plan.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	want := s.NewOutput()
	if err := plan.TryExecutePacked(in, pf, want); err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Sweep the timeout from "expires before the grid
				// spawns" through "expires mid-flight" up to "usually
				// completes", so every abandonment window is exercised.
				timeout := time.Duration((g*iters+i)%6) * 150 * time.Microsecond
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				// Every run gets a fresh output: an abandoned grid may
				// keep writing its buffer after the error returns.
				out := s.NewOutput()
				err := plan.TryExecutePackedCtx(ctx, in, pf, out)
				cancel()
				if err != nil {
					if !errors.Is(err, conv.ErrDeadline) {
						t.Errorf("goroutine %d iter %d: unexpected error class: %v", g, i, err)
					}
					continue
				}
				if d := tensor.MaxAbsDiff(want, out); d != 0 {
					t.Errorf("goroutine %d iter %d: successful run differs by %g, want bit-identical", g, i, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// A clean run after the storm proves the shared plan and packed
	// filter survived every mid-flight abandonment.
	out := s.NewOutput()
	if err := plan.TryExecutePacked(in, pf, out); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, out); d != 0 {
		t.Fatalf("post-storm run differs by %g", d)
	}

	deadline := time.Now().Add(10 * time.Second)
	for parallel.LeakedWorkers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LeakedWorkers stuck at %d", parallel.LeakedWorkers())
		}
		time.Sleep(time.Millisecond)
	}
}
