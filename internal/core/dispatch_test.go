package core

import (
	"fmt"
	"sync"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// dispatchCases covers every kernel family in the registry with a
// ragged-edged shape (partial register tiles, ragged K blocks, partial
// channel tiles), so the constant-folded bodies are exercised on their
// hardest geometry, not just the clean model-table rows.
var dispatchCases = []struct {
	variant string
	shape   conv.Shape
}{
	{"12x8.r3s3.s1", conv.Shape{N: 1, C: 5, H: 10, W: 10, K: 13, R: 3, S: 3, Str: 1, Pad: 1}},
	{"12x8.r3s3.s2", conv.Shape{N: 1, C: 4, H: 11, W: 11, K: 9, R: 3, S: 3, Str: 2, Pad: 1}},
	{"12x8.r1s1.s1", conv.Shape{N: 1, C: 6, H: 9, W: 9, K: 10, R: 1, S: 1, Str: 1, Pad: 0}},
	{"12x8.r1s1.s2", conv.Shape{N: 1, C: 6, H: 10, W: 10, K: 10, R: 1, S: 1, Str: 2, Pad: 0}},
}

func registerDispatchCases(t *testing.T) {
	t.Helper()
	for _, tc := range dispatchCases {
		if !RegisterShapeKernel(tc.shape) {
			t.Fatalf("RegisterShapeKernel(%v) = false, want true", tc.shape)
		}
	}
}

// TestDispatchBitExactVsGeneric: a registered shape's specialized plan
// must produce bit-identical output to the forced-generic kernel on
// the same operands — the registry is a pure execution-strategy
// change. Exercised on both packing strategies: SequentialPack always
// routes through mainKernel, the overlapped default routes kb>0
// blocks through it.
func TestDispatchBitExactVsGeneric(t *testing.T) {
	registerDispatchCases(t)
	for _, tc := range dispatchCases {
		for _, seq := range []bool{false, true} {
			s := tc.shape
			plan, err := TryNewPlan(s, Options{Threads: 2, SequentialPack: seq})
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.KernelName(); got != tc.variant {
				t.Fatalf("shape %v: KernelName = %q, want %q", s, got, tc.variant)
			}
			in := s.NewInput()
			in.FillRandom(int64(s.C + 7*s.K))
			f := s.NewFilter()
			f.FillRandom(int64(s.R + 13*s.S))
			got := s.NewOutput()
			if err := plan.TryExecute(in, f, got); err != nil {
				t.Fatal(err)
			}
			gplan, err := TryNewPlan(s, Options{Threads: 2, SequentialPack: seq, ForceGenericKernel: true})
			if err != nil {
				t.Fatal(err)
			}
			if name := gplan.KernelName(); name != "generic" {
				t.Fatalf("shape %v: forced-generic KernelName = %q", s, name)
			}
			want := s.NewOutput()
			if err := gplan.TryExecute(in, f, want); err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(want, got); d != 0 {
				t.Fatalf("shape %v seq=%v: specialized kernel differs from generic by %g, want bit-identical",
					s, seq, d)
			}
			// And correct against the float64 reference.
			ref := conv.Reference(s, in, f)
			if d := tensor.RelDiff(ref, got); d > tol {
				t.Fatalf("shape %v: rel diff vs reference %g > %g", s, d, tol)
			}
		}
	}
}

// TestDispatchOffByOneFallsBack: shapes one off in any dimension from
// a registered shape must miss the registry and fall back to the
// shape-agnostic kernels — and still compute correctly.
func TestDispatchOffByOneFallsBack(t *testing.T) {
	registerDispatchCases(t)
	for _, tc := range dispatchCases {
		for _, perturb := range []func(conv.Shape) conv.Shape{
			func(s conv.Shape) conv.Shape { s.H++; return s },
			func(s conv.Shape) conv.Shape { s.W++; return s },
			func(s conv.Shape) conv.Shape { s.K++; return s },
			func(s conv.Shape) conv.Shape { s.K--; return s },
			func(s conv.Shape) conv.Shape { s.C++; return s },
		} {
			s := perturb(tc.shape)
			if s.Validate() != nil {
				continue
			}
			plan, err := TryNewPlan(s, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.KernelName(); got == tc.variant {
				t.Fatalf("off-by-one shape %v selected the specialized kernel %q", s, got)
			}
			checkAgainstReference(t, s, Options{Threads: 2})
		}
	}
}

// TestDispatchBatchIndependent: registration at N=1 covers every batch
// of the same layer (the micro-kernel is batch-independent).
func TestDispatchBatchIndependent(t *testing.T) {
	registerDispatchCases(t)
	s := dispatchCases[0].shape.WithBatch(3)
	plan, err := TryNewPlan(s, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.KernelName(); got != dispatchCases[0].variant {
		t.Fatalf("batch-3 KernelName = %q, want %q", got, dispatchCases[0].variant)
	}
	checkAgainstReference(t, s, Options{Threads: 2})
}

// TestDispatchPrecedence: explicit option forcing outranks the
// registry — ForceGenericKernel wins over a registered shape, and
// UnrolledKernels keeps the Algorithm 3 transcription selectable for
// its ablation benchmark.
func TestDispatchPrecedence(t *testing.T) {
	registerDispatchCases(t)
	s := dispatchCases[0].shape // R3 S3 str1: eligible for every path
	for _, tc := range []struct {
		opt  Options
		want string
	}{
		{Options{}, "12x8.r3s3.s1"},
		{Options{ForceGenericKernel: true}, "generic"},
		{Options{UnrolledKernels: true}, "12x8.s3.unrolled"},
	} {
		plan, err := TryNewPlan(s, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.KernelName(); got != tc.want {
			t.Fatalf("opts %+v: KernelName = %q, want %q", tc.opt, got, tc.want)
		}
	}
}

// TestDispatchRejectsUncoveredShapes: shapes without a kernel family
// (5×5), with a non-12×8 register tile (7×7 stride 2), or invalid are
// not registerable.
func TestDispatchRejectsUncoveredShapes(t *testing.T) {
	for _, s := range []conv.Shape{
		{N: 1, C: 4, H: 12, W: 12, K: 8, R: 5, S: 5, Str: 1, Pad: 2},  // no family
		{N: 1, C: 3, H: 32, W: 32, K: 16, R: 7, S: 7, Str: 2, Pad: 3}, // solves to 20×4
		{N: 1, C: 0, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},    // invalid
	} {
		if RegisterShapeKernel(s) {
			t.Fatalf("RegisterShapeKernel(%v) = true, want false", s)
		}
	}
}

// TestDispatchModelTableCoverage: the init-time registration covers
// the evaluation table — every Table 4 row with a matching family
// plans onto its specialized variant with no explicit registration.
func TestDispatchModelTableCoverage(t *testing.T) {
	covered := 0
	for _, l := range conv.Table4 {
		want := ""
		switch {
		case l.Shape.R == 3 && l.Shape.S == 3 && l.Shape.Str == 1:
			want = "12x8.r3s3.s1"
		case l.Shape.R == 3 && l.Shape.S == 3 && l.Shape.Str == 2:
			want = "12x8.r3s3.s2"
		case l.Shape.R == 1 && l.Shape.S == 1 && l.Shape.Str == 1:
			want = "12x8.r1s1.s1"
		case l.Shape.R == 1 && l.Shape.S == 1 && l.Shape.Str == 2:
			want = "12x8.r1s1.s2"
		default:
			continue // the 7×7 stem stays on the generic kernel
		}
		plan, err := TryNewPlan(l.Shape.WithBatch(1), Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.KernelName(); got != want {
			t.Fatalf("Table 4 layer %d (%v): KernelName = %q, want %q", l.ID, l.Shape, got, want)
		}
		covered++
	}
	if covered == 0 {
		t.Fatal("no Table 4 layer matched a kernel family")
	}
	if st := KernelDispatchStats(); st.Registered < covered {
		t.Fatalf("dispatch registry holds %d shapes, want >= %d distinct Table 4 rows", st.Registered, covered)
	}
}

// TestDispatchConcurrentSharedPlan: one specialized plan executed from
// many goroutines over the shared worker pool (the -race target for
// the variant call path); every result must be bit-identical.
func TestDispatchConcurrentSharedPlan(t *testing.T) {
	registerDispatchCases(t)
	s := dispatchCases[0].shape
	plan, err := TryNewPlan(s, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := s.NewInput()
	in.FillRandom(41)
	f := s.NewFilter()
	f.FillRandom(42)
	want := s.NewOutput()
	if err := plan.TryExecute(in, f, want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := s.NewOutput()
			for i := 0; i < 4; i++ {
				if err := plan.TryExecute(in, f, out); err != nil {
					errCh <- err
					return
				}
				if d := tensor.MaxAbsDiff(want, out); d != 0 {
					errCh <- fmt.Errorf("concurrent execution diverged by %g", d)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestDispatchRegistrationRekeysPlanCache: a plan cached before a
// shape was registered must not mask the specialized variant — the
// registry generation is part of the cache key, so the next Get after
// a registration re-plans.
func TestDispatchRegistrationRekeysPlanCache(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 13, W: 13, K: 9, R: 3, S: 3, Str: 1, Pad: 1}
	cache := NewPlanCache(8)
	before, err := cache.Get(s, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if name := before.KernelName(); name != "12x8" {
		t.Skipf("shape unexpectedly already registered (kernel %q)", name)
	}
	if !RegisterShapeKernel(s) {
		t.Fatalf("RegisterShapeKernel(%v) = false", s)
	}
	after, err := cache.Get(s, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Fatal("plan cache returned the pre-registration plan after RegisterShapeKernel")
	}
	if got := after.KernelName(); got != "12x8.r3s3.s1" {
		t.Fatalf("post-registration KernelName = %q, want 12x8.r3s3.s1", got)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2 (one per dispatch generation)", cache.Len())
	}
}
