package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// captureLog redirects the package logger into the test log and
// returns a getter reporting whether (and what) was logged.
func captureLog(t *testing.T) func() string {
	t.Helper()
	old := Logf
	var mu sync.Mutex
	var lines []string
	Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, format)
		mu.Unlock()
		t.Logf("(captured) "+format, args...)
	}
	t.Cleanup(func() { Logf = old })
	return func() string {
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(lines, "\n")
	}
}

func faultShape() conv.Shape {
	return conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
}

func faultOperands(s conv.Shape) (in, filter *tensor.Tensor) {
	in = s.NewInput()
	in.FillRandom(11)
	filter = s.NewFilter()
	filter.FillRandom(12)
	return in, filter
}

// An injected worker panic on the optimised path must not surface: the
// result is recomputed on the reference path, the process stays alive,
// and the output matches the Algorithm 1 oracle.
func TestWorkerPanicFallsBackToReference(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryConv2D(s, in, filter, Options{Threads: 4})
	if err != nil {
		t.Fatalf("TryConv2D must degrade, not fail: %v", err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("fallback output diverges from reference: rel diff %g", d)
	}
	if !strings.Contains(logged(), "recomputing on reference path") {
		t.Fatal("degradation must be logged")
	}
	if faultinject.Enabled() {
		t.Fatal("the one-shot fault must be consumed")
	}
}

func TestWorkerPanicFallbackNHWC(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := tensor.NCHWToNHWC(conv.Reference(s, in, filter))

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryConv2DNHWC(s, tensor.NCHWToNHWC(in), filter, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("NHWC fallback diverges from reference: rel diff %g", d)
	}
	if logged() == "" {
		t.Fatal("degradation must be logged")
	}
}

// The fallback must reproduce the plan's fused epilogue, not just the
// bare convolution.
func TestWorkerPanicFallbackAppliesEpilogue(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	bias := make([]float32, s.K)
	for k := range bias {
		bias[k] = float32(k)*0.25 - 1.5
	}
	ref := conv.Reference(s, in, filter)
	want := tensor.New(s.N, s.K, s.P(), s.Q())
	pq := s.P() * s.Q()
	for i, v := range ref.Data {
		v += bias[(i/pq)%s.K]
		if v < 0 {
			v = 0
		}
		want.Data[i] = v
	}

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryConv2D(s, in, filter, Options{Threads: 4, Epilogue: EpilogueBiasReLU, Bias: bias})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("fallback dropped the epilogue: rel diff %g", d)
	}
}

// An injected NaN in the output buffer is detected by the non-finite
// scan and repaired by the reference fallback.
func TestNaNPoisonDetectedAndRepaired(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)

	faultinject.Arm(faultinject.NaNPoison, 7)
	got, err := TryConv2D(s, in, filter, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("poisoned output not repaired: rel diff %g", d)
	}
	if !strings.Contains(logged(), "recomputing on reference path") {
		t.Fatal("the numerical fault must be logged")
	}
}

// Accumulation (ExecuteAdd) snapshots the output before running under
// injection, so a faulted run still yields prev + conv exactly.
func TestExecuteAddFaultRestoresSnapshot(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	plan := NewPlan(s, Options{Threads: 4})
	out := s.NewOutput()
	out.FillRandom(99)
	prev := append([]float32(nil), out.Data...)
	ref := conv.Reference(s, in, filter)

	faultinject.Arm(faultinject.WorkerPanic, -1)
	if err := plan.TryExecuteAdd(in, filter, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if want := prev[i] + ref.Data[i]; v != want {
			t.Fatalf("element %d = %g, want prev+ref = %g", i, v, want)
		}
	}
}

func TestDepthwiseFaultFallsBack(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := conv.Shape{N: 2, C: 6, H: 10, W: 10, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(21)
	filter := tensor.New(s.C, s.R, s.S)
	filter.FillRandom(22)
	want := DepthwiseConv2D(s, in, filter, Options{Threads: 4})

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryDepthwiseConv2D(s, in, filter, Options{Threads: 4})
	if err != nil {
		t.Fatalf("depthwise must degrade, not fail: %v", err)
	}
	if d := tensor.RelDiff(want, got); d != 0 {
		t.Fatalf("sequential recompute differs: rel diff %g", d)
	}
	if !strings.Contains(logged(), "recomputing sequentially") {
		t.Fatal("degradation must be logged")
	}
}

func TestGroupedFaultFallsBack(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := conv.Shape{N: 2, C: 8, H: 9, W: 9, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(31)
	filter := tensor.New(s.K, s.C/2, s.R, s.S)
	filter.FillRandom(32)
	want := GroupedConv2D(s, 2, in, filter, Options{Threads: 4})

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryGroupedConv2D(s, 2, in, filter, Options{Threads: 4})
	if err != nil {
		t.Fatalf("grouped must degrade, not fail: %v", err)
	}
	if d := tensor.RelDiff(want, got); d != 0 {
		t.Fatalf("recompute differs: rel diff %g", d)
	}
	if logged() == "" {
		t.Fatal("degradation must be logged")
	}
}

func TestConv2D64FaultFallsBack(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in := make([]float64, s.N*s.C*s.H*s.W)
	filter := make([]float64, s.K*s.C*s.R*s.S)
	for i := range in {
		in[i] = float64(i%13) - 6
	}
	for i := range filter {
		filter[i] = float64(i%7) - 3
	}
	want := Reference64(s, in, filter)

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryConv2D64(s, in, filter, Options{Threads: 4})
	if err != nil {
		t.Fatalf("fp64 must degrade, not fail: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], want[i])
		}
	}
	if logged() == "" {
		t.Fatal("degradation must be logged")
	}
}

func TestConv2DInt16FaultFallsBack(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in := make([]int16, s.N*s.C*s.H*s.W)
	filter := make([]int16, s.K*s.C*s.R*s.S)
	for i := range in {
		in[i] = int16(i%31) - 15
	}
	for i := range filter {
		filter[i] = int16(i%15) - 7
	}
	want := ReferenceInt16(s, in, filter)

	faultinject.Arm(faultinject.WorkerPanic, -1)
	got, err := TryConv2DInt16(s, in, filter, Options{Threads: 4})
	if err != nil {
		t.Fatalf("int16 must degrade, not fail: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	if logged() == "" {
		t.Fatal("degradation must be logged")
	}
}

// Classification of validation failures by the checked API.
func TestTryErrorsClassify(t *testing.T) {
	s := faultShape()
	in, filter := faultOperands(s)

	if _, err := TryNewPlan(conv.Shape{}, Options{}); !errors.Is(err, conv.ErrBadShape) {
		t.Fatalf("zero shape: err = %v, want ErrBadShape", err)
	}
	if _, err := TryNewPlan(s, Options{ForceVw: 3}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("misaligned ForceVw: err = %v, want ErrBadOptions", err)
	}
	if _, err := TryNewPlan(s, Options{Epilogue: EpilogueBias}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bias epilogue without bias: err = %v, want ErrBadOptions", err)
	}
	if _, err := TryNewPlan(s, Options{Threads: maxThreads + 1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("excessive threads: err = %v, want ErrBadOptions", err)
	}
	short := tensor.New(1, 1, 1, 1)
	if _, err := TryConv2D(s, short, filter, Options{}); !errors.Is(err, conv.ErrDimMismatch) {
		t.Fatalf("wrong input dims: err = %v, want ErrDimMismatch", err)
	}
	if _, err := TryConv2D(s, in, short, Options{}); !errors.Is(err, conv.ErrDimMismatch) {
		t.Fatalf("wrong filter dims: err = %v, want ErrDimMismatch", err)
	}
	plan := NewPlan(s, Options{})
	if err := plan.TryExecute(in, filter, short); !errors.Is(err, conv.ErrDimMismatch) {
		t.Fatalf("wrong output dims: err = %v, want ErrDimMismatch", err)
	}
}
