package core

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Grouped convolution: the continuum between the standard convolution
// (groups=1) and the depthwise convolution of §10.2 (groups=C). Each
// group convolves C/g input channels into K/g output channels with an
// independent filter set — the ResNeXt/AlexNet-style building block.
// nDirect extends naturally: each group is a standard convolution on
// a channel slice, so the per-group work reuses one shared Plan (same
// tile geometry for every group) and the driver adds the group loop
// to the parallel dimensions.

// GroupedConv2D convolves an NCHW input with a [K, C/groups, R, S]
// filter in `groups` independent channel groups, returning the NKPQ
// output. groups must divide both C and K. groups=1 degenerates to
// Conv2D.
func GroupedConv2D(s conv.Shape, groups int, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	if groups < 1 || s.C%groups != 0 || s.K%groups != 0 {
		panic(fmt.Sprintf("core: groups=%d must divide C=%d and K=%d", groups, s.C, s.K))
	}
	cg, kg := s.C/groups, s.K/groups
	wantF := []int{s.K, cg, s.R, s.S}
	for i, d := range wantF {
		if filter.Dims[i] != d {
			panic(fmt.Sprintf("core: grouped filter dims %v, want %v", filter.Dims, wantF))
		}
	}
	if groups == 1 {
		return Conv2D(s, in, filter, opt)
	}

	gs := s // the per-group sub-problem
	gs.C, gs.K = cg, kg
	if !gs.Valid() {
		panic(fmt.Sprintf("core: invalid grouped shape %v / groups=%d", s, groups))
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()
	out := s.NewOutput()

	// One plan shared by every (n, g) sub-problem; the batch/group
	// product is the outer parallel dimension, the plan runs
	// single-threaded inside (it already saturates a worker).
	gOpt := opt
	gOpt.Threads = 1
	gs1 := gs.WithBatch(1)
	plan := NewPlan(gs1, gOpt)

	inSlice := s.C / groups * s.H * s.W
	outSlice := kg * p * q
	fSlice := kg * cg * s.R * s.S
	parallel.For(s.N*groups, threads, func(ng int) {
		n, g := ng/groups, ng%groups
		inView := tensor.FromSlice(
			in.Data[(n*s.C+g*cg)*s.H*s.W:(n*s.C+g*cg)*s.H*s.W+inSlice],
			1, cg, s.H, s.W)
		fView := tensor.FromSlice(filter.Data[g*fSlice:(g+1)*fSlice], kg, cg, s.R, s.S)
		outView := tensor.FromSlice(
			out.Data[(n*s.K+g*kg)*p*q:(n*s.K+g*kg)*p*q+outSlice],
			1, kg, p, q)
		plan.Execute(inView, fView, outView)
	})
	return out
}
