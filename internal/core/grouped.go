package core

import (
	"context"
	"errors"
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Grouped convolution: the continuum between the standard convolution
// (groups=1) and the depthwise convolution of §10.2 (groups=C). Each
// group convolves C/g input channels into K/g output channels with an
// independent filter set — the ResNeXt/AlexNet-style building block.
// nDirect extends naturally: each group is a standard convolution on
// a channel slice, so the per-group work reuses one shared Plan (same
// tile geometry for every group) and the driver adds the group loop
// to the parallel dimensions.

// TryGroupedConv2D convolves an NCHW input with a [K, C/groups, R, S]
// filter in `groups` independent channel groups, returning the NKPQ
// output. groups must divide both C and K. groups=1 degenerates to
// Conv2D. Checked variant: validation failures return errors; a fault
// in the parallel group loop is logged and the groups recomputed
// sequentially.
func TryGroupedConv2D(s conv.Shape, groups int, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TryGroupedConv2DCtx(context.Background(), s, groups, in, filter, opt)
}

// TryGroupedConv2DCtx is the context-bounded form of TryGroupedConv2D
// with the deadline semantics of Plan.TryExecuteCtx: on expiry the
// parallel group loop is abandoned and the error wraps
// conv.ErrDeadline, unless Options.FallbackBudget grants the
// sequential recompute time to finish (polled between groups).
func TryGroupedConv2DCtx(ctx context.Context, s conv.Shape, groups int, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	if groups < 1 || s.C%groups != 0 || s.K%groups != 0 {
		return nil, fmt.Errorf("%w: groups=%d must divide C=%d and K=%d", conv.ErrBadShape, groups, s.C, s.K)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cg, kg := s.C/groups, s.K/groups
	if err := conv.ValidateTensor("grouped input", in, s.N, s.C, s.H, s.W); err != nil {
		return nil, err
	}
	if err := conv.ValidateTensor("grouped filter", filter, s.K, cg, s.R, s.S); err != nil {
		return nil, err
	}
	if groups == 1 {
		return TryConv2DCtx(ctx, s, in, filter, opt)
	}

	gs := s // the per-group sub-problem
	gs.C, gs.K = cg, kg
	if err := gs.Validate(); err != nil {
		return nil, fmt.Errorf("%w (per-group sub-problem, groups=%d)", err, groups)
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()

	// One plan shared by every (n, g) sub-problem; the batch/group
	// product is the outer parallel dimension, the plan runs
	// single-threaded inside (it already saturates a worker).
	gOpt := opt
	gOpt.Threads = 1
	gs1 := gs.WithBatch(1)
	plan, err := planFor(gs1, gOpt)
	if err != nil {
		return nil, err
	}
	out := s.NewOutput()

	inSlice := cg * s.H * s.W
	outSlice := kg * p * q
	fSlice := kg * cg * s.R * s.S
	group := func(ng int) {
		n, g := ng/groups, ng%groups
		inView := tensor.FromSlice(
			in.Data[(n*s.C+g*cg)*s.H*s.W:(n*s.C+g*cg)*s.H*s.W+inSlice],
			1, cg, s.H, s.W)
		fView := tensor.FromSlice(filter.Data[g*fSlice:(g+1)*fSlice], kg, cg, s.R, s.S)
		outView := tensor.FromSlice(
			out.Data[(n*s.K+g*kg)*p*q:(n*s.K+g*kg)*p*q+outSlice],
			1, kg, p, q)
		plan.Execute(inView, fView, outView)
	}
	if err := parallel.ForCtx(ctx, s.N*groups, threads, group); err != nil {
		fctx, cancel, derr := fallbackCtx(ctx, err, opt)
		if derr != nil {
			return nil, derr
		}
		defer cancel()
		Logf("core: grouped parallel path faulted on %v (groups=%d); recomputing sequentially: %v", s, groups, err)
		if errors.Is(err, parallel.ErrCanceled) {
			// The abandoned group workers captured the current out and
			// may still store into it whenever they resume: recompute
			// into a fresh tensor they have never seen (group writes
			// through the rebound variable) and leave the old
			// allocation to the stragglers.
			out = s.NewOutput()
		}
		if err := parallel.Protect(func() {
			for ng := 0; ng < s.N*groups; ng++ {
				if fctx.Done() != nil && fctx.Err() != nil {
					panic(deadlineErr(fctx))
				}
				group(ng)
			}
		}); err != nil {
			var pe *parallel.PanicError
			if errors.As(err, &pe) {
				if de, ok := pe.Value.(error); ok && errors.Is(de, conv.ErrDeadline) {
					return nil, de
				}
			}
			return nil, fmt.Errorf("%w: %v", ErrExecFault, err)
		}
	}
	return out, nil
}

// GroupedConv2D is the panicking wrapper over TryGroupedConv2D.
func GroupedConv2D(s conv.Shape, groups int, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryGroupedConv2D(s, groups, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}
