package core

import "ndirect/internal/simd"

// Constant-folded main micro-kernel variants for the dispatch registry
// (dispatch.go). Each body is kernel12x8 with one (R, S, stride)
// family's constants substituted: the row/filter offsets become
// compile-time products, the stride-indexed input walk becomes a
// constant-step induction the prove pass can reason about, and the S
// loop bounds are literals. The floating-point work is untouched —
// per accumulator, the FMA sequence (cv ascending, r ascending, s
// ascending, the same f0/f1 vectors and input scalars) is exactly
// fmaRow12x8's, so a specialized plan's output is bit-identical to
// the looped kernel's on the same operands.
//
// The bodies deliberately stay in the *looped-S* register discipline
// (two filter vectors live at a time) rather than the fully S-unrolled
// Algorithm 3 form of kernel12x8S3: the unrolled form needs the full
// 32-vector register file and spills on 16-register SIMD hosts
// (Options.UnrolledKernels documents the measurement), while these
// variants win on constant folding alone without growing the live set.

// kernel12x8R3S3s1 is kernel12x8 specialised to R=3, S=3, stride 1 —
// the dominant ResNet/VGG body family (Table 4 IDs 3, 10, 16, 21,
// 24–28).
func kernel12x8R3S3s1(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < 3; rr++ {
			row := buf[(cv*3+rr)*wIn : (cv*3+rr)*wIn+wIn]
			fTap := tf[(cv*3+rr)*24:]
			for ss := 0; ss < 3; ss++ {
				fs := fTap[ss*8 : ss*8+8]
				f0 := simd.Load(fs)
				f1 := simd.Load(fs[4:])
				r := row[ss:]
				x := vwEff - 1
				for i := len(a) - 1; i > 0; i -= 2 {
					v := r[x]
					a[i-1] = a[i-1].FMAScalar(f0, v)
					a[i] = a[i].FMAScalar(f1, v)
					x--
				}
			}
		}
	}
}

// kernel12x8R3S3s2 is kernel12x8 specialised to R=3, S=3, stride 2
// (the downsampling 3×3 layers: Table 4 IDs 2, 9, 15).
func kernel12x8R3S3s2(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < 3; rr++ {
			row := buf[(cv*3+rr)*wIn : (cv*3+rr)*wIn+wIn]
			fTap := tf[(cv*3+rr)*24:]
			for ss := 0; ss < 3; ss++ {
				fs := fTap[ss*8 : ss*8+8]
				f0 := simd.Load(fs)
				f1 := simd.Load(fs[4:])
				r := row[ss:]
				x := (vwEff - 1) * 2
				for i := len(a) - 1; i > 0; i -= 2 {
					v := r[x]
					a[i-1] = a[i-1].FMAScalar(f0, v)
					a[i] = a[i].FMAScalar(f1, v)
					x -= 2
				}
			}
		}
	}
}

// kernel12x8R1S1s1 is kernel12x8 specialised to R=1, S=1, stride 1 —
// the pointwise family (Table 4 IDs 5–8, 12–14, 18–20, 22–23).
func kernel12x8R1S1s1(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		row := buf[cv*wIn : cv*wIn+wIn]
		fs := tf[cv*8 : cv*8+8]
		f0 := simd.Load(fs)
		f1 := simd.Load(fs[4:])
		x := vwEff - 1
		for i := len(a) - 1; i > 0; i -= 2 {
			v := row[x]
			a[i-1] = a[i-1].FMAScalar(f0, v)
			a[i] = a[i].FMAScalar(f1, v)
			x--
		}
	}
}

// kernel12x8R1S1s2 is kernel12x8 specialised to R=1, S=1, stride 2
// (the strided projection shortcuts: Table 4 IDs 4, 11, 17).
func kernel12x8R1S1s2(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		row := buf[cv*wIn : cv*wIn+wIn]
		fs := tf[cv*8 : cv*8+8]
		f0 := simd.Load(fs)
		f1 := simd.Load(fs[4:])
		x := (vwEff - 1) * 2
		for i := len(a) - 1; i > 0; i -= 2 {
			v := row[x]
			a[i-1] = a[i-1].FMAScalar(f0, v)
			a[i] = a[i].FMAScalar(f1, v)
			x -= 2
		}
	}
}
