package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// sepShapes is the separable battery: MobileNet-class stride-1 and
// stride-2 blocks, ragged Q tails, ragged K (not a multiple of the
// V_k=8 block), C not a multiple of the pointwise Tc, and a multi-
// batch case.
var sepShapes = []SeparableShape{
	{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 2, C: 5, H: 11, W: 11, K: 7, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 6, H: 13, W: 13, K: 12, R: 3, S: 3, Str: 2, Pad: 1},
	{N: 1, C: 3, H: 9, W: 5, K: 10, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 4, H: 10, W: 10, K: 9, R: 5, S: 5, Str: 1, Pad: 2},
	{N: 1, C: 32, H: 28, W: 28, K: 64, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 16, H: 28, W: 28, K: 32, R: 3, S: 3, Str: 2, Pad: 1},
}

func sepOperands(sh SeparableShape, seed int64) (in, dwF, pwF *tensor.Tensor) {
	in = tensor.New(sh.N, sh.C, sh.H, sh.W)
	dwF = tensor.New(sh.C, sh.R, sh.S)
	pwF = tensor.New(sh.K, sh.C, 1, 1)
	in.FillRandom(seed)
	dwF.FillRandom(seed + 1)
	pwF.FillRandom(seed + 2)
	return
}

// sepUnfused computes the block as the existing two-call composition:
// depthwise plan (with the depthwise-stage epilogue) into a full
// intermediate, then the standard pointwise plan (with the pointwise
// epilogue) — the reference the fused path must match bit-for-bit.
func sepUnfused(t *testing.T, sh SeparableShape, in, dwF, pwF *tensor.Tensor, opt Options) *tensor.Tensor {
	t.Helper()
	dwOpt := opt
	dwOpt.FusedEpilogue = opt.DepthwiseEpilogue
	dwOpt.DepthwiseEpilogue = nil
	dwOpt.Epilogue, dwOpt.Bias = EpilogueNone, nil
	dp, err := TryNewDepthwisePlan(sh.DWShape(), dwOpt)
	if err != nil {
		t.Fatalf("unfused depthwise plan: %v", err)
	}
	dw := sh.DWShape()
	mid := tensor.New(sh.N, sh.C, dw.P(), dw.Q())
	if err := dp.TryExecute(in, dwF, mid); err != nil {
		t.Fatalf("unfused depthwise: %v", err)
	}
	pwOpt := opt
	pwOpt.DepthwiseEpilogue = nil
	out, err := TryPointwiseConv2DShape(sh.PWShape(), mid, pwF, pwOpt)
	if err != nil {
		t.Fatalf("unfused pointwise: %v", err)
	}
	return out
}

func TestSeparableMatchesComposition(t *testing.T) {
	for _, sh := range sepShapes {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%+v/t%d", sh, threads), func(t *testing.T) {
				in, dwF, pwF := sepOperands(sh, 101)
				opt := Options{Threads: threads}
				got, err := TrySeparableConv2D(sh, in, dwF, pwF, opt)
				if err != nil {
					t.Fatalf("TrySeparableConv2D: %v", err)
				}
				want := sepUnfused(t, sh, in, dwF, pwF, opt)
				if d := tensor.MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("fused diverges from two-call composition by %g", d)
				}
			})
		}
	}
}

// TestSeparableEpilogues proves the split epilogue routing: depthwise
// BN+ReLU via DepthwiseEpilogue, pointwise bias/affine/ReLU via
// FusedEpilogue — each bit-identical to applying the same epilogue on
// the corresponding unfused stage.
func TestSeparableEpilogues(t *testing.T) {
	sh := SeparableShape{N: 1, C: 6, H: 12, W: 12, K: 10, R: 3, S: 3, Str: 1, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 131)
	dwEp := &EpilogueParams{Bias: make([]float32, sh.C), Scale: make([]float32, sh.C), Shift: make([]float32, sh.C), ReLU: true}
	pwEp := &EpilogueParams{Bias: make([]float32, sh.K), Scale: make([]float32, sh.K), Shift: make([]float32, sh.K), ReLU: true}
	for c := 0; c < sh.C; c++ {
		dwEp.Bias[c] = 0.125 * float32(c)
		dwEp.Scale[c] = 1 + 0.0625*float32(c)
		dwEp.Shift[c] = -0.25 + 0.03125*float32(c)
	}
	for k := 0; k < sh.K; k++ {
		pwEp.Bias[k] = -0.125 * float32(k)
		pwEp.Scale[k] = 1 - 0.03125*float32(k)
		pwEp.Shift[k] = 0.0625 * float32(k)
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"dw-only", Options{DepthwiseEpilogue: dwEp}},
		{"pw-only", Options{FusedEpilogue: pwEp}},
		{"both", Options{DepthwiseEpilogue: dwEp, FusedEpilogue: pwEp}},
		{"pw-enum", Options{DepthwiseEpilogue: dwEp, Epilogue: EpilogueBiasReLU, Bias: pwEp.Bias}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opt.Threads = 2
			got, err := TrySeparableConv2D(sh, in, dwF, pwF, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			want := sepUnfused(t, sh, in, dwF, pwF, tc.opt)
			if d := tensor.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("epilogue case %s diverges by %g", tc.name, d)
			}
		})
	}
}

// TestSeparableLadderOptions runs the fused path under the serve
// layer's degraded-rung option set and confirms bit-identity holds
// with matching options on both sides.
func TestSeparableLadderOptions(t *testing.T) {
	sh := SeparableShape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 151)
	opts := []Options{
		{Threads: 1, ForceTc: 4, ForceTk: 1, ForceTh: 1}, // the degraded rung
		{Threads: 2, ForceTc: 3},
		{Threads: 2, ForceGenericKernel: true},
		{Threads: 2, CheckNumerics: true},
	}
	for i, opt := range opts {
		got, err := TrySeparableConv2D(sh, in, dwF, pwF, opt)
		if err != nil {
			t.Fatalf("opts[%d]: %v", i, err)
		}
		want := sepUnfused(t, sh, in, dwF, pwF, opt)
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("opts[%d] diverges by %g", i, d)
		}
	}
}

func TestSeparablePackedMatchesUnpacked(t *testing.T) {
	sh := SeparableShape{N: 1, C: 8, H: 14, W: 14, K: 12, R: 3, S: 3, Str: 2, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 171)
	p, err := TryNewSeparablePlan(sh, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pdw, ppw, err := p.TransformFilters(dwF, pwF)
	if err != nil {
		t.Fatal(err)
	}
	a := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
	b := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
	if err := p.TryExecute(in, dwF, pwF, a); err != nil {
		t.Fatal(err)
	}
	if err := p.TryExecutePacked(in, pdw, ppw, b); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("packed vs unpacked diverge by %g", d)
	}
	// The pointwise artifact is the standard PackedFilter: it also
	// serves a standalone pointwise plan.
	if !ppw.CompatibleWith(p.PointwisePlan()) {
		t.Fatal("pointwise pack incompatible with its own plan")
	}
	// Released artifacts fail typed.
	pdw.Release()
	if err := p.TryExecutePacked(in, pdw, ppw, b); !errors.Is(err, ErrWeightsReleased) {
		t.Fatalf("released dw pack = %v, want ErrWeightsReleased", err)
	}
}

func TestSeparableShapeValidation(t *testing.T) {
	good := SeparableShape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("good shape rejected: %v", err)
	}
	bad := []SeparableShape{
		{N: 0, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 0, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 4, H: 8, W: 8, K: 0, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 4, H: 2, W: 2, K: 8, R: 5, S: 5, Str: 1, Pad: 0}, // filter larger than padded input
		{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 0, Pad: 1},
	}
	for i, sh := range bad {
		if err := sh.Validate(); !errors.Is(err, conv.ErrBadShape) {
			t.Fatalf("bad[%d]: got %v, want ErrBadShape", i, err)
		}
		if _, err := TryNewSeparablePlan(sh, Options{}); !errors.Is(err, conv.ErrBadShape) {
			t.Fatalf("bad[%d] plan: got %v, want ErrBadShape", i, err)
		}
	}
	// Mis-sized depthwise-stage epilogue fails typed.
	if _, err := TryNewSeparablePlan(good, Options{DepthwiseEpilogue: &EpilogueParams{Bias: make([]float32, good.C+1)}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("bad dw epilogue = %v, want ErrBadOptions", err)
	}
}

func TestPointwiseShapeValidation(t *testing.T) {
	sh := SeparableShape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := tensor.New(1, 4, 8, 8)
	f := tensor.New(8, 4, 1, 1)
	in.FillRandom(3)
	f.FillRandom(4)
	// A non-pointwise geometry fails typed.
	s := sh.DWShape() // 3×3 — not pointwise
	if _, err := TryPointwiseConv2DShape(s, in, f, Options{}); !errors.Is(err, conv.ErrBadShape) {
		t.Fatalf("3×3 shape = %v, want ErrBadShape", err)
	}
	if _, err := TryPointwiseConv2DShape(conv.Shape{N: 1, C: 0, H: 8, W: 8, K: 8, R: 1, S: 1, Str: 1, Pad: 0}, in, f, Options{}); !errors.Is(err, conv.ErrBadShape) {
		t.Fatalf("C=0 = %v, want ErrBadShape", err)
	}
	// The deprecated bare-int wrapper now routes through validation and
	// stays value-compatible.
	a, err := TryPointwiseConv2DShape(PointwiseShape(1, 4, 8, 8, 8), in, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TryPointwiseConv2D(1, 4, 8, 8, 8, in, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("wrapper diverges by %g", d)
	}
}

// TestSeparableFaultRecovery: the fused path's typed-error-or-bit-exact
// contract under injection.
func TestSeparableFaultRecovery(t *testing.T) {
	sh := SeparableShape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 191)
	opt := Options{Threads: 4}
	want := sepUnfused(t, sh, in, dwF, pwF, opt)

	t.Run("worker-panic", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.WorkerPanic, 0)
		got, err := TrySeparableConv2D(sh, in, dwF, pwF, opt)
		if err != nil {
			t.Fatalf("panic recovery: %v", err)
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("recovered output diverges by %g", d)
		}
	})

	t.Run("scratch-overrun", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.ScratchOverrun, 0)
		trips0 := IntegritySnapshot().ScratchCanaryTrips
		p, err := TryNewSeparablePlan(sh, opt)
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
		if err := p.TryExecute(in, dwF, pwF, out); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("overrun = %v, want ErrIntegrity", err)
		}
		if trips := IntegritySnapshot().ScratchCanaryTrips; trips <= trips0 {
			t.Fatal("canary trip not counted")
		}
		// The quarantined run state must not be reused: a clean retry
		// succeeds bit-exactly on fresh scratch.
		faultinject.Reset()
		if err := p.TryExecute(in, dwF, pwF, out); err != nil {
			t.Fatalf("post-quarantine retry: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("retry diverges by %g", d)
		}
	})

	t.Run("worker-stall-fallback", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.WorkerStall, 1)
		fopt := opt
		fopt.FallbackBudget = time.Second
		p, err := TryNewSeparablePlan(sh, fopt)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
		err = p.TryExecuteCtx(ctx, in, dwF, pwF, out)
		faultinject.Reset()
		if err != nil {
			t.Fatalf("budgeted fallback: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("fallback output diverges by %g", d)
		}
	})

	t.Run("packed-corrupt", func(t *testing.T) {
		defer faultinject.Reset()
		p, err := TryNewSeparablePlan(sh, opt)
		if err != nil {
			t.Fatal(err)
		}
		pdw, ppw, err := p.TransformFilters(dwF, pwF)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.PackedCorrupt, 2)
		out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
		if err := p.TryExecutePacked(in, pdw, ppw, out); err != nil {
			t.Fatalf("packed-corrupt recovery: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("recovered output diverges by %g", d)
		}
	})

	t.Run("weight-bitflip", func(t *testing.T) {
		defer faultinject.Reset()
		p, err := TryNewSeparablePlan(sh, opt)
		if err != nil {
			t.Fatal(err)
		}
		pdw, ppw, err := p.TransformFilters(dwF, pwF)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.WeightBitflip, 2)
		out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
		if err := p.TryExecutePacked(in, pdw, ppw, out); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("bitflip = %v, want ErrIntegrity", err)
		}
	})
}

// TestSeparableConcurrent: one shared fused plan under -race.
func TestSeparableConcurrent(t *testing.T) {
	sh := SeparableShape{N: 1, C: 8, H: 20, W: 20, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 211)
	opt := Options{Threads: 2}
	want := sepUnfused(t, sh, in, dwF, pwF, opt)
	p, err := TryNewSeparablePlan(sh, opt)
	if err != nil {
		t.Fatal(err)
	}
	pdw, ppw, err := p.TransformFilters(dwF, pwF)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
			for i := 0; i < iters; i++ {
				var err error
				if (g+i)%2 == 0 {
					err = p.TryExecute(in, dwF, pwF, out)
				} else {
					err = p.TryExecutePacked(in, pdw, ppw, out)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				if d := tensor.MaxAbsDiff(out, want); d != 0 {
					errs <- fmt.Errorf("goroutine %d iter %d: diverges by %g", g, i, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSeparablePackedZeroAllocs gates the fused steady-state contract.
func TestSeparablePackedZeroAllocs(t *testing.T) {
	sh := SeparableShape{N: 1, C: 16, H: 28, W: 28, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in, dwF, pwF := sepOperands(sh, 223)
	p, err := TryNewSeparablePlan(sh, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	pdw, ppw, err := p.TransformFilters(dwF, pwF)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(sh.N, sh.K, sh.P(), sh.Q())
	for i := 0; i < 3; i++ {
		if err := p.TryExecutePacked(in, pdw, ppw, out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.TryExecutePacked(in, pdw, ppw, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed separable steady state allocates %v/op, want 0", allocs)
	}
}

// TestSeparableNeverMaterializesIntermediate pins the memory contract:
// the fused plan's total scratch is the per-worker row tile, strictly
// smaller than the full intermediate for any multi-tile shape.
func TestSeparableNeverMaterializesIntermediate(t *testing.T) {
	sh := SeparableShape{N: 1, C: 32, H: 112, W: 112, K: 64, R: 3, S: 3, Str: 1, Pad: 1}
	p, err := TryNewSeparablePlan(sh, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	perWorker := p.ScratchBytes()
	full := p.IntermediateBytes()
	if total := perWorker * int64(p.workers); total >= full {
		t.Fatalf("fused scratch %d B (×%d workers) not smaller than full intermediate %d B",
			perWorker, p.workers, full)
	}
	if p.rowTile >= sh.P() {
		t.Fatalf("rowTile=%d covers the whole output height %d: fusion degenerates to materialization", p.rowTile, sh.P())
	}
}
