package core

import (
	"errors"
	"sync"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// packedBattery mirrors cmd/ndverify's reduced battery: every Table 4
// geometry (structure preserved, spatial/channel dims capped) plus the
// adversarial edge shapes.
func packedBattery() []conv.Shape {
	var out []conv.Shape
	for _, l := range conv.Table4 {
		s := l.Shape
		if s.H > 28 {
			s.H, s.W = 28, 28
		}
		if s.C > 64 {
			s.C = 64
		}
		if s.K > 64 {
			s.K = 64
		}
		out = append(out, s)
	}
	return append(out,
		conv.Shape{N: 2, C: 5, H: 7, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1},
		conv.Shape{N: 1, C: 4, H: 10, W: 12, K: 6, R: 3, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Str: 1, Pad: 0},
		conv.Shape{N: 1, C: 3, H: 5, W: 5, K: 2, R: 5, S: 5, Str: 1, Pad: 2},
		conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 3},
	)
}

// TestExecutePackedMatchesSeedBitForBit proves the tentpole's central
// claim: a cached plan consuming TransformFilter's pre-transformed
// weights produces output bit-identical to the seed path (fresh plan,
// on-the-fly transform) across the ndverify shape battery.
func TestExecutePackedMatchesSeedBitForBit(t *testing.T) {
	cache := NewPlanCache(0)
	for _, s := range packedBattery() {
		in := s.NewInput()
		in.FillRandom(int64(s.C*1000 + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R*100 + s.S))

		want := Conv2D(s, in, f, Options{}) // seed path: fresh plan, on-the-fly transform

		plan, err := cache.Get(s, Options{})
		if err != nil {
			t.Fatalf("%v: cache.Get: %v", s, err)
		}
		pf, err := plan.TransformFilter(f)
		if err != nil {
			t.Fatalf("%v: TransformFilter: %v", s, err)
		}
		got := s.NewOutput()
		if err := plan.TryExecutePacked(in, pf, got); err != nil {
			t.Fatalf("%v: TryExecutePacked: %v", s, err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("%v: packed path differs from seed path by %g (want bit-identical)", s, d)
		}
		// Second execution through the same cached plan and packed
		// filter must be deterministic.
		got2 := s.NewOutput()
		if err := plan.TryExecutePacked(in, pf, got2); err != nil {
			t.Fatalf("%v: second TryExecutePacked: %v", s, err)
		}
		if d := tensor.MaxAbsDiff(got, got2); d != 0 {
			t.Fatalf("%v: repeated packed execution differs by %g", s, d)
		}
	}
	st := cache.Stats()
	if st.Misses == 0 || st.Len == 0 {
		t.Fatalf("cache never populated: %+v", st)
	}
}

func TestExecutePackedNHWCMatchesSeed(t *testing.T) {
	s := conv.Shape{N: 2, C: 5, H: 9, W: 7, K: 13, R: 3, S: 3, Str: 1, Pad: 1}
	inN := s.NewInput()
	inN.FillRandom(7)
	f := s.NewFilter()
	f.FillRandom(8)
	inNHWC := tensor.NCHWToNHWC(inN)

	want, err := TryConv2DNHWC(s, inNHWC, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlan(s, Options{})
	pf, err := p.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.New(s.N, s.P(), s.Q(), s.K)
	if err := p.TryExecutePackedNHWC(inNHWC, pf, got); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("NHWC packed path differs from seed by %g", d)
	}
}

// TestExecutePackedEpilogue checks the packed path composes with the
// fused bias+ReLU epilogue (the nn engine's fused configuration).
func TestExecutePackedEpilogue(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 13, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	bias := make([]float32, s.K)
	for i := range bias {
		bias[i] = float32(i)*0.25 - 1
	}
	opt := Options{Epilogue: EpilogueBiasReLU, Bias: bias}

	want := Conv2D(s, in, f, opt)
	p := NewPlan(s, opt)
	pf, err := p.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	got := s.NewOutput()
	if err := p.TryExecutePacked(in, pf, got); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("packed epilogue path differs from seed by %g", d)
	}
}

func TestTransformFilterRejectsMismatch(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	p := NewPlan(s, Options{})
	bad := tensor.New(s.K, s.C, s.R, s.S+1)
	if _, err := p.TransformFilter(bad); err == nil {
		t.Fatal("TransformFilter accepted a filter of the wrong geometry")
	}

	// A packed filter from a different geometry must be rejected by the
	// execute path with ErrBadOptions.
	s2 := s
	s2.K = 24
	p2 := NewPlan(s2, Options{})
	pf2, err := p2.TransformFilter(s2.NewFilter())
	if err != nil {
		t.Fatal(err)
	}
	if pf2.CompatibleWith(p) {
		t.Fatal("CompatibleWith accepted mismatched K")
	}
	out := s.NewOutput()
	err = p.TryExecutePacked(s.NewInput(), pf2, out)
	if !errors.Is(err, ErrBadOptions) {
		t.Fatalf("want ErrBadOptions for mismatched packed filter, got %v", err)
	}
}

// TestPackedFilterBatchIndependent: one packed filter serves the same
// layer at every batch size (the serving case: weights packed once,
// requests arrive with varying N).
func TestPackedFilterBatchIndependent(t *testing.T) {
	s1 := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	f := s1.NewFilter()
	f.FillRandom(5)
	p1 := NewPlan(s1, Options{})
	pf, err := p1.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	s4 := s1.WithBatch(4)
	p4 := NewPlan(s4, Options{})
	if !pf.CompatibleWith(p4) {
		t.Skip("register tile changed with batch; packed reuse not applicable")
	}
	in := s4.NewInput()
	in.FillRandom(6)
	want := Conv2D(s4, in, f, Options{})
	got := s4.NewOutput()
	if err := p4.TryExecutePacked(in, pf, got); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("batch-4 packed path differs from seed by %g", d)
	}
}

func TestPlanCacheHitMissEvict(t *testing.T) {
	c := NewPlanCache(2)
	s1 := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	s2 := s1
	s2.K = 24

	p1a, err := c.Get(s1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1b, err := c.Get(s1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1a != p1b {
		t.Fatal("second Get of the same key returned a different plan")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("want 1 hit / 1 miss, got %+v", st)
	}

	// Different options are different keys.
	pOpt, err := c.Get(s1, Options{SequentialPack: true})
	if err != nil {
		t.Fatal(err)
	}
	if pOpt == p1a {
		t.Fatal("distinct Options mapped to the same cached plan")
	}
	if c.Len() != 2 {
		t.Fatalf("want 2 entries, got %d", c.Len())
	}

	// Third distinct key evicts the LRU entry (s1+SequentialPack was
	// most recent, so plain s1... actually p1 was used before pOpt;
	// inserting s2 evicts plain s1).
	if _, err := c.Get(s2, Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("capacity 2 exceeded: %d", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("want 1 eviction, got %+v", st)
	}
	// s1 was evicted: fetching it again is a miss.
	before := c.Stats().Misses
	if _, err := c.Get(s1, Options{}); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses != before+1 {
		t.Fatal("evicted key was still served from cache")
	}
}

func TestPlanCacheKeyDistinguishesBias(t *testing.T) {
	c := NewPlanCache(0)
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	b1 := make([]float32, s.K)
	b2 := make([]float32, s.K)
	b2[3] = 1
	p1, err := c.Get(s, Options{Epilogue: EpilogueBias, Bias: b1})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(s, Options{Epilogue: EpilogueBias, Bias: b2})
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("plans with different bias vectors shared a cache entry")
	}
}

// TestPlanCacheKeyDistinguishesEpilogue: option sets differing only in
// their epilogue configuration — enum vs none, fused vs none, fused
// params differing in one vector element or the ReLU flag — must never
// share a cached plan: the epilogue is baked into the plan's store
// path, so a collision would silently apply the wrong activation.
func TestPlanCacheKeyDistinguishesEpilogue(t *testing.T) {
	c := NewPlanCache(0)
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	scale1 := make([]float32, s.K)
	scale2 := make([]float32, s.K)
	for i := range scale1 {
		scale1[i], scale2[i] = 1, 1
	}
	scale2[5] = 2
	shift := make([]float32, s.K)
	opts := []Options{
		{},
		{Epilogue: EpilogueReLU},
		{FusedEpilogue: &EpilogueParams{Scale: scale1, Shift: shift}},
		{FusedEpilogue: &EpilogueParams{Scale: scale2, Shift: shift}},
		{FusedEpilogue: &EpilogueParams{Scale: scale1, Shift: shift, ReLU: true}},
		{FusedEpilogue: &EpilogueParams{}}, // all-nil params ≠ no FusedEpilogue
	}
	plans := map[*Plan]int{}
	for i, opt := range opts {
		p, err := c.Get(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		if j, dup := plans[p]; dup {
			t.Fatalf("option sets %d and %d (differing only in epilogue) shared a cached plan", j, i)
		}
		plans[p] = i
	}
	if c.Len() != len(opts) {
		t.Fatalf("cache holds %d plans for %d distinct epilogue configurations", c.Len(), len(opts))
	}
}

func TestPlanCacheErrorNotCached(t *testing.T) {
	c := NewPlanCache(0)
	bad := conv.Shape{N: 1, C: 0, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	if _, err := c.Get(bad, Options{}); err == nil {
		t.Fatal("invalid shape did not error")
	}
	if c.Len() != 0 {
		t.Fatal("failed construction was cached")
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	c := NewPlanCache(8)
	shapes := packedBattery()[:6]
	var wg sync.WaitGroup
	plans := make([][]*Plan, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			plans[g] = make([]*Plan, len(shapes))
			for iter := 0; iter < 20; iter++ {
				for i, s := range shapes {
					p, err := c.Get(s, Options{})
					if err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					plans[g][i] = p
				}
			}
		}(g)
	}
	wg.Wait()
	// After the warm-up race settles, every goroutine's final fetch
	// must be the same shared plan per shape.
	for g := 1; g < 8; g++ {
		for i := range shapes {
			if plans[g][i] != plans[0][i] {
				t.Fatalf("goroutine %d got a different plan for shape %d", g, i)
			}
		}
	}
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

// TestTryConv2DUsesPlanCache checks the one-shot entry points route
// through Options.PlanCache.
func TestTryConv2DUsesPlanCache(t *testing.T) {
	c := NewPlanCache(0)
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	opt := Options{PlanCache: c}

	want := Conv2D(s, in, f, Options{})
	for i := 0; i < 3; i++ {
		got, err := TryConv2D(s, in, f, opt)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("cached-plan result differs from seed by %g", d)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("want 1 miss / 2 hits through TryConv2D, got %+v", st)
	}
}
