package core

import (
	"errors"
	"log"
)

// Sentinel errors of the checked core API. Shape and operand failures
// wrap conv.ErrBadShape / conv.ErrDimMismatch; these cover the knobs
// and faults that only exist at the core layer.
var (
	// ErrBadOptions reports an Options value the planner cannot
	// honour: a misaligned forced register tile, a negative forced
	// cache tile, an unknown epilogue, a bias of the wrong length, or
	// a thread count past the implementation limit.
	ErrBadOptions = errors.New("core: bad options")
	// ErrExecFault reports that the optimised execution path faulted
	// (a recovered worker panic or a non-finite output detected under
	// fault injection). The checked Execute variants normally log it
	// and fall back to the reference path instead of returning it; the
	// one exception is an accumulate run that faulted without a prior
	// snapshot of the output, which cannot be recovered.
	ErrExecFault = errors.New("core: execution fault")
	// ErrOverloaded reports that the serving runtime refused the
	// request before doing any convolution work: admission control
	// could not grant an execution slot before the caller's deadline
	// (or the wait queue was full), or the global memory budget could
	// not cover even the bottom rung of the degradation ladder. It is
	// the fail-fast sentinel of internal/serve; overload rejections
	// are cheap by construction (no goroutines spawned, no buffers
	// allocated) so callers can shed load and retry elsewhere.
	ErrOverloaded = errors.New("core: overloaded")
	// ErrWeightsReleased reports an attempt to execute with a
	// PackedFilter that a residency manager has evicted (Release).
	// The weights themselves are gone only from the accounting — the
	// buffer is immutable until garbage-collected — so the error is a
	// staleness signal: drop the handle and re-pack from the KCRS
	// source, which reproduces the packed bytes bit-identically.
	ErrWeightsReleased = errors.New("core: packed weights released")
	// ErrIntegrity reports detected silent data corruption: a packed
	// filter whose bytes no longer match their pack-time CRC32-C, a
	// scratch-buffer canary overwritten by an out-of-bounds store, or a
	// kernel variant whose probe output diverged bit-for-bit from the
	// reference oracle. Unlike ErrExecFault it is never silently
	// recovered by the reference fallback: the corrupted artifact must
	// be discarded (re-packed from the retained KCRS source, the buffer
	// quarantined, the variant de-registered) before the result can be
	// trusted, so the checked Execute variants return it typed and the
	// owning layer performs the recovery.
	ErrIntegrity = errors.New("core: integrity check failed")
)

// maxThreads bounds Options.Threads so the thread-mapping solver's
// factorisation enumeration stays trivially cheap; no real machine
// this library targets has more workers.
const maxThreads = 1 << 12

// maxForceTile bounds the ForceVw/ForceVk ablation knobs so a typo
// cannot demand a multi-gigabyte accumulator file.
const maxForceTile = 256

// Logf is the destination of the fault-tolerance log lines (reference
// fallbacks, skipped schedules). It defaults to the standard logger;
// tests redirect it to t.Logf.
var Logf = log.Printf
