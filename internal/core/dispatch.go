package core

// Shape-specialized kernel dispatch (DESIGN.md §11). The xnor_nn idea
// the roadmap names — compile an exec_template<OC,IC,IH,…> per hot
// AlexNet shape, fall back to exec_simple — reproduced in Go: a
// process-wide registry maps an exact convolution shape (batch
// normalised out) to a micro-kernel variant whose R, S and stride are
// compile-time constants, so the hot loop runs without the per-row
// bounds and stride arithmetic the shape-agnostic kernel12x8 carries.
//
// The registry is consulted once, at plan construction; execution
// never takes a lock or a map lookup. A shape that is not registered
// (or is registered but off by one in any dimension — H±1, K±1) takes
// the existing kind switch exactly as before, so dispatch is a pure
// plan-time specialisation with kernel12x8/kernelGeneric as the
// fallback. Variants share fmaRow12x8's accumulator discipline (cv
// ascending, r ascending, s ascending, descending pair walk), so a
// specialized plan's output is bit-identical to the looped kernel's.
//
// All Table 4 layer shapes whose solved register tile is the 12×8
// optimum are registered at init; serving layers register their model
// shapes at startup (serve.Registry wires manifest-covered shapes
// through RegisterShapeKernel before traffic arrives).

import (
	"sync"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/model"
)

// specializedKernel is the calling convention of a constant-folded
// main micro-kernel: R, S and stride are baked into the function, so
// only the runtime-variable tile extents cross the call.
type specializedKernel func(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int)

// kernelVariant pairs a constant-folded kernel body with the (R, S,
// stride) family it implements.
type kernelVariant struct {
	name      string
	r, s, str int
	kern      specializedKernel
}

// kernelFamilies lists the constant-folded bodies available for exact-
// shape registration. Families exist only for layer geometries whose
// Equation 3–4 solution is the V_w=12, V_k=8 register file (the 7×7
// stride-2 stem solves to 20×4 and stays on the generic kernel).
var kernelFamilies = []*kernelVariant{
	{name: "12x8.r3s3.s1", r: 3, s: 3, str: 1, kern: kernel12x8R3S3s1},
	{name: "12x8.r3s3.s2", r: 3, s: 3, str: 2, kern: kernel12x8R3S3s2},
	{name: "12x8.r1s1.s1", r: 1, s: 1, str: 1, kern: kernel12x8R1S1s1},
	{name: "12x8.r1s1.s2", r: 1, s: 1, str: 2, kern: kernel12x8R1S1s2},
}

var (
	dispatchMu    sync.RWMutex
	dispatchTable = map[conv.Shape]*kernelVariant{}

	// dispatchGen is bumped on every registration and folded into the
	// plan-cache key, so a plan cached before a shape was registered
	// can never mask the specialized variant afterwards.
	dispatchGen atomic.Uint64

	dispatchHits, dispatchMisses atomic.Uint64
)

// dispatchShapeKey normalises the registry key: the micro-kernel is
// batch-independent, so any batch of a registered layer matches.
func dispatchShapeKey(s conv.Shape) conv.Shape {
	s.N = 0
	return s
}

func familyFor(s conv.Shape) *kernelVariant {
	for _, v := range kernelFamilies {
		if v.r == s.R && v.s == s.S && v.str == s.Str {
			return v
		}
	}
	return nil
}

// RegisterShapeKernel installs the constant-folded micro-kernel for
// the exact shape s (any batch). It returns true when a variant now
// covers the shape: the shape is valid, a kernel family exists for its
// (R, S, stride), and the analytically solved register tile is the
// 12×8 file the variants are written for. Plans constructed after a
// successful registration select the variant; existing plans are
// unaffected (plans are immutable), and plan caches re-key via the
// dispatch generation. Safe for concurrent use; re-registering a
// covered shape is a no-op that still returns true.
func RegisterShapeKernel(s conv.Shape) bool {
	if s.Validate() != nil {
		return false
	}
	v := familyFor(s)
	if v == nil {
		return false
	}
	if rt := model.SolveRegisterTile(s.S, s.Str); rt.Vk != 8 || rt.Vw > maxVw {
		return false
	}
	key := dispatchShapeKey(s)
	dispatchMu.Lock()
	if dispatchTable[key] == nil {
		dispatchTable[key] = v
		dispatchGen.Add(1)
	}
	dispatchMu.Unlock()
	return true
}

// lookupKernelVariant resolves the registered variant for s (nil when
// unregistered), counting the outcome. Called from TryNewPlan only for
// plans already eligible for the V_k=8 kernels, so the hit/miss ratio
// measures registry coverage of the eligible traffic.
func lookupKernelVariant(s conv.Shape) *kernelVariant {
	key := dispatchShapeKey(s)
	dispatchMu.RLock()
	v := dispatchTable[key]
	dispatchMu.RUnlock()
	if v != nil {
		dispatchHits.Add(1)
	} else {
		dispatchMisses.Add(1)
	}
	return v
}

// DispatchStats is a point-in-time snapshot of the kernel dispatch
// registry's counters.
type DispatchStats struct {
	Registered int    // exact shapes with a specialized variant
	Hits       uint64 // plan constructions that selected a variant
	Misses     uint64 // eligible constructions that fell back
	Generation uint64 // bumped per registration (plan-cache key input)
}

// KernelDispatchStats snapshots the dispatch registry.
func KernelDispatchStats() DispatchStats {
	dispatchMu.RLock()
	n := len(dispatchTable)
	dispatchMu.RUnlock()
	return DispatchStats{
		Registered: n,
		Hits:       dispatchHits.Load(),
		Misses:     dispatchMisses.Load(),
		Generation: dispatchGen.Load(),
	}
}

// KernelName reports which main micro-kernel the plan dispatches to —
// a registered variant's name, or the fallback family. Introspection
// for tests and operators; execution never consults it.
func (p *Plan) KernelName() string {
	switch p.kind {
	case kindGeneric:
		return "generic"
	case kind12x8S3:
		return "12x8.s3.unrolled"
	case kind12x8S1:
		return "12x8.s1"
	case kindSpecialized:
		return p.variant.name
	}
	return "12x8"
}

func init() {
	// The evaluation table's layer shapes are the known-hot set; every
	// row with a matching family is specialized from process start.
	for _, l := range conv.Table4 {
		RegisterShapeKernel(l.Shape)
	}
}
