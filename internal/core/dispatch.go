package core

// Shape-specialized kernel dispatch (DESIGN.md §11). The xnor_nn idea
// the roadmap names — compile an exec_template<OC,IC,IH,…> per hot
// AlexNet shape, fall back to exec_simple — reproduced in Go: a
// process-wide registry maps an exact convolution shape (batch
// normalised out) to a micro-kernel variant whose R, S and stride are
// compile-time constants, so the hot loop runs without the per-row
// bounds and stride arithmetic the shape-agnostic kernel12x8 carries.
//
// The registry is consulted once, at plan construction; execution
// never takes a lock or a map lookup. A shape that is not registered
// (or is registered but off by one in any dimension — H±1, K±1) takes
// the existing kind switch exactly as before, so dispatch is a pure
// plan-time specialisation with kernel12x8/kernelGeneric as the
// fallback. Variants share fmaRow12x8's accumulator discipline (cv
// ascending, r ascending, s ascending, descending pair walk), so a
// specialized plan's output is bit-identical to the looped kernel's.
//
// All Table 4 layer shapes whose solved register tile is the 12×8
// optimum are registered at init; serving layers register their model
// shapes at startup (serve.Registry wires manifest-covered shapes
// through RegisterShapeKernel before traffic arrives).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/model"
	"ndirect/internal/tensor"
)

// specializedKernel is the calling convention of a constant-folded
// main micro-kernel: R, S and stride are baked into the function, so
// only the runtime-variable tile extents cross the call.
type specializedKernel func(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int)

// kernelVariant pairs a constant-folded kernel body with the (R, S,
// stride) family it implements.
type kernelVariant struct {
	name      string
	r, s, str int
	kern      specializedKernel
}

// kernelFamilies lists the constant-folded bodies available for exact-
// shape registration. Families exist only for layer geometries whose
// Equation 3–4 solution is the V_w=12, V_k=8 register file (the 7×7
// stride-2 stem solves to 20×4 and stays on the generic kernel).
var kernelFamilies = []*kernelVariant{
	{name: "12x8.r3s3.s1", r: 3, s: 3, str: 1, kern: kernel12x8R3S3s1},
	{name: "12x8.r3s3.s2", r: 3, s: 3, str: 2, kern: kernel12x8R3S3s2},
	{name: "12x8.r1s1.s1", r: 1, s: 1, str: 1, kern: kernel12x8R1S1s1},
	{name: "12x8.r1s1.s2", r: 1, s: 1, str: 2, kern: kernel12x8R1S1s2},
}

// dwKernelVariant pairs a constant-folded depthwise kernel body
// (dwkernel.go) with the (R, S, stride) family it implements.
type dwKernelVariant struct {
	name      string
	r, s, str int
	kern      depthwiseKernel
}

// dwKernelFamilies lists the register-tiled depthwise variants. Unlike
// the standard families there is no per-shape registration table — the
// constant folding depends only on (R, S, stride), so any matching
// depthwise plan selects the variant directly — but the families share
// the quarantine flags, the dispatch generation, KernelFamilyNames,
// and VerifyKernelFamily with the standard registry, so the integrity
// sentinel covers them with no serve-layer changes.
var dwKernelFamilies = []*dwKernelVariant{
	{name: "dw.r3s3.s1", r: 3, s: 3, str: 1, kern: dwKernel3x3s1},
	{name: "dw.r3s3.s2", r: 3, s: 3, str: 2, kern: dwKernel3x3s2},
}

var (
	dispatchMu    sync.RWMutex
	dispatchTable = map[conv.Shape]*kernelVariant{}

	// dispatchGen is bumped on every registration and folded into the
	// plan-cache key, so a plan cached before a shape was registered
	// can never mask the specialized variant afterwards.
	dispatchGen atomic.Uint64

	dispatchHits, dispatchMisses atomic.Uint64

	// Integrity quarantine (DESIGN.md §12): a family whose probe output
	// diverged from the reference oracle is pulled from the table —
	// every shape it covered reverts to the bit-identical fallback
	// kernels — and its shapes are remembered here so a passing
	// re-probe restores coverage. Both maps are guarded by dispatchMu.
	quarFamilies = map[string]bool{}
	quarShapes   = map[string][]conv.Shape{}
)

// dispatchShapeKey normalises the registry key: the micro-kernel is
// batch-independent, so any batch of a registered layer matches.
func dispatchShapeKey(s conv.Shape) conv.Shape {
	s.N = 0
	return s
}

func familyFor(s conv.Shape) *kernelVariant {
	for _, v := range kernelFamilies {
		if v.r == s.R && v.s == s.S && v.str == s.Str {
			return v
		}
	}
	return nil
}

// RegisterShapeKernel installs the constant-folded micro-kernel for
// the exact shape s (any batch). It returns true when a variant now
// covers the shape: the shape is valid, a kernel family exists for its
// (R, S, stride), and the analytically solved register tile is the
// 12×8 file the variants are written for. Plans constructed after a
// successful registration select the variant; existing plans are
// unaffected (plans are immutable), and plan caches re-key via the
// dispatch generation. Safe for concurrent use; re-registering a
// covered shape is a no-op that still returns true.
func RegisterShapeKernel(s conv.Shape) bool {
	if s.Validate() != nil {
		return false
	}
	v := familyFor(s)
	if v == nil {
		return false
	}
	if rt := model.SolveRegisterTile(s.S, s.Str); rt.Vk != 8 || rt.Vw > maxVw {
		return false
	}
	key := dispatchShapeKey(s)
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	if quarFamilies[v.name] {
		// The family is under integrity quarantine: refuse coverage now
		// (the shape serves on the bit-identical fallback kernels) but
		// remember the shape so a passing re-probe restores it.
		if !containsShape(quarShapes[v.name], key) {
			quarShapes[v.name] = append(quarShapes[v.name], key)
		}
		return false
	}
	if dispatchTable[key] == nil {
		dispatchTable[key] = v
		dispatchGen.Add(1)
	}
	return true
}

func containsShape(list []conv.Shape, s conv.Shape) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// lookupKernelVariant resolves the registered variant for s (nil when
// unregistered), counting the outcome. Called from TryNewPlan only for
// plans already eligible for the V_k=8 kernels, so the hit/miss ratio
// measures registry coverage of the eligible traffic.
func lookupKernelVariant(s conv.Shape) *kernelVariant {
	key := dispatchShapeKey(s)
	dispatchMu.RLock()
	v := dispatchTable[key]
	dispatchMu.RUnlock()
	if v != nil {
		dispatchHits.Add(1)
	} else {
		dispatchMisses.Add(1)
	}
	return v
}

// DispatchStats is a point-in-time snapshot of the kernel dispatch
// registry's counters.
type DispatchStats struct {
	Registered  int    // exact shapes with a specialized variant
	Quarantined int    // kernel families under integrity quarantine
	Hits        uint64 // plan constructions that selected a variant
	Misses      uint64 // eligible constructions that fell back
	Generation  uint64 // bumped per registration (plan-cache key input)
}

// KernelDispatchStats snapshots the dispatch registry.
func KernelDispatchStats() DispatchStats {
	dispatchMu.RLock()
	n, q := len(dispatchTable), len(quarFamilies)
	dispatchMu.RUnlock()
	return DispatchStats{
		Registered:  n,
		Quarantined: q,
		Hits:        dispatchHits.Load(),
		Misses:      dispatchMisses.Load(),
		Generation:  dispatchGen.Load(),
	}
}

// KernelDispatchGeneration returns the current dispatch-registry
// generation without taking the registry lock — the cheap memo
// invalidation check for callers holding a DepthwisePlan or
// SeparablePlan outside the core plan cache.
func KernelDispatchGeneration() uint64 { return dispatchGen.Load() }

// KernelFamilyNames returns the names of the constant-folded kernel
// families available for dispatch — the standard exact-shape families
// followed by the depthwise families — in a fixed order: the probe
// target list the integrity sentinel walks.
func KernelFamilyNames() []string {
	names := make([]string, 0, len(kernelFamilies)+len(dwKernelFamilies))
	for _, v := range kernelFamilies {
		names = append(names, v.name)
	}
	for _, v := range dwKernelFamilies {
		names = append(names, v.name)
	}
	return names
}

func familyByName(name string) *kernelVariant {
	for _, v := range kernelFamilies {
		if v.name == name {
			return v
		}
	}
	return nil
}

func dwFamilyByName(name string) *dwKernelVariant {
	for _, v := range dwKernelFamilies {
		if v.name == name {
			return v
		}
	}
	return nil
}

// dwVariantFor resolves the depthwise kernel variant for a shape at
// plan construction, honouring integrity quarantine. Nil means the
// plan runs the generic depthwisePlaneRange oracle body.
func dwVariantFor(s conv.Shape) *dwKernelVariant {
	for _, v := range dwKernelFamilies {
		if v.r == s.R && v.s == s.S && v.str == s.Str {
			dispatchMu.RLock()
			q := quarFamilies[v.name]
			dispatchMu.RUnlock()
			if q {
				return nil
			}
			return v
		}
	}
	return nil
}

// KernelFamilyQuarantined reports whether the named family is under
// integrity quarantine.
func KernelFamilyQuarantined(name string) bool {
	dispatchMu.RLock()
	defer dispatchMu.RUnlock()
	return quarFamilies[name]
}

// QuarantineKernelFamily pulls the named family out of service: every
// dispatch-table entry it covers is removed (and remembered for
// restore), re-registration is barred, and the dispatch generation is
// bumped so plan caches re-key — cached specialized plans stop being
// served and new plans select the bit-identical fallback kernels.
// Idempotent; returns false only for an unknown family name.
func QuarantineKernelFamily(name string) bool {
	v := familyByName(name)
	if v == nil {
		if dwFamilyByName(name) == nil {
			return false
		}
		// Depthwise family: no shape table to drain — the quarantine
		// flag alone reroutes new depthwise plans onto the generic
		// oracle body, and the generation bump re-keys plan memos.
		dispatchMu.Lock()
		defer dispatchMu.Unlock()
		if quarFamilies[name] {
			return true
		}
		quarFamilies[name] = true
		dispatchGen.Add(1)
		return true
	}
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	if quarFamilies[name] {
		return true
	}
	quarFamilies[name] = true
	for key, kv := range dispatchTable {
		if kv == v {
			if !containsShape(quarShapes[name], key) {
				quarShapes[name] = append(quarShapes[name], key)
			}
			delete(dispatchTable, key)
		}
	}
	dispatchGen.Add(1)
	return true
}

// RestoreKernelFamily lifts the named family's quarantine and
// re-registers every shape it covered when pulled (plus any that
// tried to register while it was out), bumping the dispatch
// generation so plan caches pick the variant back up. Idempotent;
// returns false only for an unknown family name.
func RestoreKernelFamily(name string) bool {
	v := familyByName(name)
	if v == nil {
		if dwFamilyByName(name) == nil {
			return false
		}
		dispatchMu.Lock()
		defer dispatchMu.Unlock()
		if !quarFamilies[name] {
			return true
		}
		delete(quarFamilies, name)
		dispatchGen.Add(1)
		return true
	}
	dispatchMu.Lock()
	defer dispatchMu.Unlock()
	if !quarFamilies[name] {
		return true
	}
	delete(quarFamilies, name)
	for _, key := range quarShapes[name] {
		if dispatchTable[key] == nil {
			dispatchTable[key] = v
		}
	}
	delete(quarShapes, name)
	dispatchGen.Add(1)
	return true
}

// verifyShapeFor is the golden probe geometry for a family: small
// enough that a probe costs microseconds, with ragged C and K edges
// (neither divides the tile sizes) so the variant's edge handling is
// exercised, padded so the boundary row/column paths run too.
func verifyShapeFor(v *kernelVariant) conv.Shape {
	return conv.Shape{N: 1, C: 5, H: 11, W: 11, K: 13, R: v.r, S: v.s, Str: v.str, Pad: 1}
}

// kernelProbe caches one family's golden-probe state — the plan
// (forced through the family's variant), the integer operands and the
// reference oracle, computed once — so a steady-state sentinel probe
// costs one plan execution plus a compare, with zero heap allocations
// after the first probe per family: a background sentinel must not
// pollute the serving process's allocation profile. mu serialises
// probes of the same family (the output buffer is shared state).
type kernelProbe struct {
	mu              sync.Mutex
	plan            *Plan
	in, filter, out *tensor.Tensor
	want            *tensor.Tensor
}

var (
	kernelProbesMu sync.Mutex
	kernelProbes   = map[string]*kernelProbe{}
)

// VerifyKernelFamily runs the named family's constant-folded kernel
// over a golden integer-valued probe shape and compares the output
// bit-for-bit against the conv.Reference oracle (exact on integers).
// A divergence returns an error wrapping ErrIntegrity; the caller
// (the serve-layer integrity sentinel) then quarantines the family.
// The probe runs the variant directly — quarantine state and table
// coverage are irrelevant — so it also serves as the restore probe.
// A nil error on an unknown-name or unprobeable family is never
// returned: unknown names fail typed with ErrBadOptions, and a family
// whose solved register tile is not the 12×8 file the variants are
// written for reports nothing to verify with a nil error.
func VerifyKernelFamily(name string) error {
	v := familyByName(name)
	if v == nil {
		if dv := dwFamilyByName(name); dv != nil {
			return verifyDepthwiseFamily(dv)
		}
		return fmt.Errorf("%w: unknown kernel family %q", ErrBadOptions, name)
	}
	s := verifyShapeFor(v)
	if rt := model.SolveRegisterTile(s.S, s.Str); rt.Vk != 8 || rt.Vw > maxVw {
		return nil // not probeable on this build's register file
	}
	kernelProbesMu.Lock()
	kp := kernelProbes[name]
	kernelProbesMu.Unlock()
	if kp == nil {
		p, err := TryNewPlan(s, Options{Threads: 1})
		if err != nil {
			return err
		}
		// Force the probe through the family's kernel regardless of
		// what the registry resolved: the point is to test the variant
		// body, including while it is quarantined (the restore probe).
		p.kind = kindSpecialized
		p.variant = v
		kp = &kernelProbe{plan: p, in: s.NewInput(), filter: s.NewFilter(), out: s.NewOutput()}
		fillProbe(kp.in.Data, 0xA11CE)
		fillProbe(kp.filter.Data, 0xB0B)
		kp.want = conv.Reference(s, kp.in, kp.filter)
		kernelProbesMu.Lock()
		if prev := kernelProbes[name]; prev != nil {
			kp = prev // lost a construction race; keep the canonical state
		} else {
			kernelProbes[name] = kp
		}
		kernelProbesMu.Unlock()
	}
	kp.mu.Lock()
	defer kp.mu.Unlock()
	if err := kp.plan.TryExecute(kp.in, kp.filter, kp.out); err != nil {
		return err
	}
	if _, ok := faultinject.Take(faultinject.KernelMiscompute); ok && len(kp.out.Data) > 0 {
		// A plausible silent miscompute: finite, small, wrong — the
		// bit-exact comparison below is the only thing that can see it.
		kp.out.Data[0]++
	}
	for i := range kp.out.Data {
		if kp.out.Data[i] != kp.want.Data[i] {
			return fmt.Errorf("%w: kernel family %s diverges from reference at element %d on probe %v: got %g, want %g",
				ErrIntegrity, name, i, s, kp.out.Data[i], kp.want.Data[i])
		}
	}
	return nil
}

// KernelName reports which main micro-kernel the plan dispatches to —
// a registered variant's name, or the fallback family. Introspection
// for tests and operators; execution never consults it.
func (p *Plan) KernelName() string {
	switch p.kind {
	case kindGeneric:
		return "generic"
	case kind12x8S3:
		return "12x8.s3.unrolled"
	case kind12x8S1:
		return "12x8.s1"
	case kindSpecialized:
		return p.variant.name
	}
	return "12x8"
}

func init() {
	// The evaluation table's layer shapes are the known-hot set; every
	// row with a matching family is specialized from process start.
	// Depthwise rows are skipped: the depthwise families dispatch on
	// (R, S, Str) at plan construction, not through the per-shape table.
	for _, l := range conv.Table4 {
		RegisterShapeKernel(l.Shape)
	}
	for _, l := range conv.MobileNetRows {
		if !l.Depthwise {
			RegisterShapeKernel(l.Shape)
		}
	}
}
