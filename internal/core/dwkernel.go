package core

import (
	"ndirect/internal/conv"
	"ndirect/internal/simd"
)

// Register-tiled depthwise micro-kernels (DESIGN.md §13). Depthwise
// convolution has no C reduction, so the standard micro-kernel's
// register allocation (Vw output columns × Vk output channels held
// while C·R·S taps accumulate) collapses: each output channel depends
// on exactly one input channel, and the only reuse left is spatial.
// The depthwise register tile therefore spends the whole file on
// output columns — a Vec4 of adjacent Q positions per accumulator,
// the nine 3×3 filter taps hoisted into scalars — the FAI-style
// allocation of "Towards Effective Depthwise Convolutions on ARMv8".
//
// Two specialised variants are registered in the kernel dispatch
// registry alongside the standard families (dispatch.go):
//
//	dw.r3s3.s1 — 3×3 stride 1: unguarded 4-wide vector loads over the
//	             interior, guarded scalar edges.
//	dw.r3s3.s2 — 3×3 stride 2: 4-wide gathered lanes (the Vec4 model
//	             of an LD2 de-interleaving load), guarded edges.
//
// Unlike the standard families the depthwise variants are selected by
// (R, S, stride) alone — the constant folding does not depend on the
// exact H×W — so there is no per-shape registration table; the
// families still share the quarantine surface, the dispatch
// generation, and VerifyKernelFamily golden probes, with
// depthwisePlane (the pre-plan scalar loop) as the bit-exact oracle.
//
// Bit-exactness contract: every variant visits a given output
// element's taps in exactly depthwisePlane's order — r ascending, s
// ascending, acc = acc + in·f with each float32 op individually
// rounded — and out-of-range taps contribute a literal zero operand
// (+0 + (±0) = +0 and the accumulator can never round to -0.0, so a
// zero-filled halo lane is bit-identical to skipping the tap for
// finite operands, the same argument depthwisePlane's own stride-1
// halo path already relies on).

// depthwiseKernel computes the raw depthwise accumulation for output
// rows [h0, h1) of one (n, c) plane. in is the H×W input plane, filter
// the channel's R×S taps, dst a row-major [h1-h0][Q] destination whose
// first row corresponds to output row h0. Epilogues are applied by the
// caller in a separate in-cache sweep (store + reload of a float32 is
// value-preserving, so the sweep is bit-identical to applying the
// epilogue at store time).
type depthwiseKernel func(s conv.Shape, in, filter, dst []float32, h0, h1 int)

// depthwisePlaneRange is the generic depthwise row-range kernel — the
// body of the original depthwisePlane parameterised over the output
// row range. It is the family oracle: the specialised variants below
// must match it bit for bit (VerifyKernelFamily enforces this on the
// live binary).
func depthwisePlaneRange(s conv.Shape, in, filter, dst []float32, h0, h1 int) {
	q := s.Q()
	for oh := h0; oh < h1; oh++ {
		ihBase := oh*s.Str - s.Pad
		drow := dst[(oh-h0)*q : (oh-h0)*q+q]
		ow := 0
		if s.Str == 1 {
			for ; ow+simd.Width <= q; ow += simd.Width {
				iwBase := ow - s.Pad
				acc := simd.Zero()
				for r := 0; r < s.R; r++ {
					ih := ihBase + r
					if ih < 0 || ih >= s.H {
						continue
					}
					row := in[ih*s.W : (ih+1)*s.W]
					for ss := 0; ss < s.S; ss++ {
						iw := iwBase + ss
						f := filter[r*s.S+ss]
						// All four lanes in range: vector load.
						if iw >= 0 && iw+simd.Width <= s.W {
							acc = acc.FMAScalar(simd.Load(row[iw:]), f)
							continue
						}
						// Halo: per-lane guard.
						var v simd.Vec4
						for lane := 0; lane < simd.Width; lane++ {
							if x := iw + lane; x >= 0 && x < s.W {
								v[lane] = row[x]
							}
						}
						acc = acc.FMAScalar(v, f)
					}
				}
				acc.Store(drow[ow:])
			}
		}
		for ; ow < q; ow++ {
			iwBase := ow*s.Str - s.Pad
			var acc float32
			for r := 0; r < s.R; r++ {
				ih := ihBase + r
				if ih < 0 || ih >= s.H {
					continue
				}
				for ss := 0; ss < s.S; ss++ {
					iw := iwBase + ss
					if iw < 0 || iw >= s.W {
						continue
					}
					acc += in[ih*s.W+iw] * filter[r*s.S+ss]
				}
			}
			drow[ow] = acc
		}
	}
}

// dwRowEdge3x3 computes one output row whose 3-tap input row window is
// not fully inside [0, H): the fully guarded scalar body, R=S=3
// folded. Shared by both specialised variants (the stride is read from
// the shape, so the tap order matches either oracle path).
func dwRowEdge3x3(s conv.Shape, in, filter, drow []float32, ihBase int) {
	q := s.Q()
	for ow := 0; ow < q; ow++ {
		iwBase := ow*s.Str - s.Pad
		var acc float32
		for r := 0; r < 3; r++ {
			ih := ihBase + r
			if ih < 0 || ih >= s.H {
				continue
			}
			base := ih * s.W
			for ss := 0; ss < 3; ss++ {
				iw := iwBase + ss
				if iw < 0 || iw >= s.W {
					continue
				}
				acc += in[base+iw] * filter[r*3+ss]
			}
		}
		drow[ow] = acc
	}
}

// dwKernel3x3s1 is the 3×3 stride-1 depthwise variant: rows whose
// three input rows are all in range take an unguarded interior fast
// path — three full-width vector loads per row, nine hoisted filter
// scalars, no bounds tests inside the tap loop — with guarded scalar
// columns at the left/right halo and dwRowEdge3x3 for top/bottom
// rows.
func dwKernel3x3s1(s conv.Shape, in, filter, dst []float32, h0, h1 int) {
	q := s.Q()
	w, h, pad := s.W, s.H, s.Pad
	f00, f01, f02 := filter[0], filter[1], filter[2]
	f10, f11, f12 := filter[3], filter[4], filter[5]
	f20, f21, f22 := filter[6], filter[7], filter[8]
	// Last interior column block start: every tap iwBase+ss (ss ≤ 2)
	// must admit a 4-wide load, i.e. iwBase+2+4 ≤ W.
	owHi := w + pad - 6
	for oh := h0; oh < h1; oh++ {
		ihBase := oh - pad
		drow := dst[(oh-h0)*q : (oh-h0)*q+q]
		if ihBase < 0 || ihBase+3 > h {
			dwRowEdge3x3(s, in, filter, drow, ihBase)
			continue
		}
		r0 := in[ihBase*w : ihBase*w+w]
		r1 := in[(ihBase+1)*w : (ihBase+1)*w+w]
		r2 := in[(ihBase+2)*w : (ihBase+2)*w+w]
		ow := 0
		// Left halo: guarded scalars until iwBase ≥ 0 (ow ≥ pad).
		for ; ow < pad && ow < q; ow++ {
			drow[ow] = dwTap3x3s1(r0, r1, r2, filter, ow-pad, w)
		}
		// Interior: unguarded vector blocks.
		for ; ow+simd.Width <= q && ow <= owHi; ow += simd.Width {
			iw := ow - pad
			acc := simd.Zero()
			acc = acc.FMAScalar(simd.Load(r0[iw:]), f00)
			acc = acc.FMAScalar(simd.Load(r0[iw+1:]), f01)
			acc = acc.FMAScalar(simd.Load(r0[iw+2:]), f02)
			acc = acc.FMAScalar(simd.Load(r1[iw:]), f10)
			acc = acc.FMAScalar(simd.Load(r1[iw+1:]), f11)
			acc = acc.FMAScalar(simd.Load(r1[iw+2:]), f12)
			acc = acc.FMAScalar(simd.Load(r2[iw:]), f20)
			acc = acc.FMAScalar(simd.Load(r2[iw+1:]), f21)
			acc = acc.FMAScalar(simd.Load(r2[iw+2:]), f22)
			acc.Store(drow[ow:])
		}
		// Right halo + ragged tail: guarded scalars.
		for ; ow < q; ow++ {
			drow[ow] = dwTap3x3s1(r0, r1, r2, filter, ow-pad, w)
		}
	}
}

// dwTap3x3s1 is the guarded scalar 3×3 tap sum for one output column
// of a fully interior row (stride 1), iwBase = ow−pad.
func dwTap3x3s1(r0, r1, r2, filter []float32, iwBase, w int) float32 {
	var acc float32
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r0[iw] * filter[ss]
		}
	}
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r1[iw] * filter[3+ss]
		}
	}
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r2[iw] * filter[6+ss]
		}
	}
	return acc
}

// dwKernel3x3s2 is the 3×3 stride-2 depthwise variant. Four output
// columns map to input columns iwBase, iwBase+2, iwBase+4, iwBase+6;
// the interior fast path gathers those strided lanes into a Vec4 (the
// register model of an LD2 de-interleaving load) and runs the same
// nine-tap FMA sequence as the stride-1 variant. Edges are guarded
// scalars; top/bottom rows fall to dwRowEdge3x3.
func dwKernel3x3s2(s conv.Shape, in, filter, dst []float32, h0, h1 int) {
	q := s.Q()
	w, h, pad := s.W, s.H, s.Pad
	f00, f01, f02 := filter[0], filter[1], filter[2]
	f10, f11, f12 := filter[3], filter[4], filter[5]
	f20, f21, f22 := filter[6], filter[7], filter[8]
	for oh := h0; oh < h1; oh++ {
		ihBase := oh*2 - pad
		drow := dst[(oh-h0)*q : (oh-h0)*q+q]
		if ihBase < 0 || ihBase+3 > h {
			dwRowEdge3x3(s, in, filter, drow, ihBase)
			continue
		}
		r0 := in[ihBase*w : ihBase*w+w]
		r1 := in[(ihBase+1)*w : (ihBase+1)*w+w]
		r2 := in[(ihBase+2)*w : (ihBase+2)*w+w]
		ow := 0
		for ; ow*2 < pad && ow < q; ow++ {
			drow[ow] = dwTap3x3s2(r0, r1, r2, filter, ow*2-pad, w)
		}
		// Interior: the last tap of the last lane is iwBase+6+2; every
		// tap in range needs iwBase ≥ 0 and iwBase+8 < W.
		for ; ow+simd.Width <= q && ow*2-pad+8 < w; ow += simd.Width {
			iw := ow*2 - pad
			acc := simd.Zero()
			acc = acc.FMAScalar(dwGather2(r0, iw), f00)
			acc = acc.FMAScalar(dwGather2(r0, iw+1), f01)
			acc = acc.FMAScalar(dwGather2(r0, iw+2), f02)
			acc = acc.FMAScalar(dwGather2(r1, iw), f10)
			acc = acc.FMAScalar(dwGather2(r1, iw+1), f11)
			acc = acc.FMAScalar(dwGather2(r1, iw+2), f12)
			acc = acc.FMAScalar(dwGather2(r2, iw), f20)
			acc = acc.FMAScalar(dwGather2(r2, iw+1), f21)
			acc = acc.FMAScalar(dwGather2(r2, iw+2), f22)
			acc.Store(drow[ow:])
		}
		for ; ow < q; ow++ {
			drow[ow] = dwTap3x3s2(r0, r1, r2, filter, ow*2-pad, w)
		}
	}
}

// dwGather2 loads four stride-2 lanes starting at row[i] (i .. i+6).
func dwGather2(row []float32, i int) simd.Vec4 {
	return simd.Vec4{row[i], row[i+2], row[i+4], row[i+6]}
}

// dwTap3x3s2 is the guarded scalar 3×3 tap sum for one output column
// of a fully interior row (stride 2), iwBase = 2·ow−pad.
func dwTap3x3s2(r0, r1, r2, filter []float32, iwBase, w int) float32 {
	var acc float32
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r0[iw] * filter[ss]
		}
	}
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r1[iw] * filter[3+ss]
		}
	}
	for ss := 0; ss < 3; ss++ {
		if iw := iwBase + ss; iw >= 0 && iw < w {
			acc += r2[iw] * filter[6+ss]
		}
	}
	return acc
}
