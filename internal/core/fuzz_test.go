package core

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// Fuzz target: any realisable shape must match the Algorithm 1 oracle
// within FP32 accumulation tolerance. Run `go test -fuzz FuzzConv2D`
// for open-ended exploration; the seed corpus runs in every ordinary
// `go test` invocation.
func FuzzConv2DAgainstReference(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(10), uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(3), uint8(16), uint8(14), uint8(3), uint8(2), uint8(3), int64(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), int64(3))
	f.Add(uint8(64), uint8(13), uint8(7), uint8(2), uint8(1), uint8(2), int64(4))
	f.Fuzz(func(t *testing.T, cRaw, kRaw, hRaw, rsRaw, strRaw, padRaw uint8, seed int64) {
		s := conv.Shape{
			N:   1,
			C:   int(cRaw)%48 + 1,
			H:   int(hRaw)%18 + 1,
			W:   int(hRaw)%22 + 1,
			K:   int(kRaw)%48 + 1,
			R:   []int{1, 3, 5, 7}[int(rsRaw)%4],
			S:   []int{1, 3, 5, 7}[int(rsRaw)%4],
			Str: int(strRaw)%3 + 1,
			Pad: int(padRaw) % 4,
		}
		if !s.Valid() {
			t.Skip()
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got := Conv2D(s, in, fl, Options{Threads: 2})
		if d := tensor.RelDiff(want, got); d > 5e-5 {
			t.Fatalf("shape %v: rel diff %g", s, d)
		}
	})
}

// Fuzz target for the NHWC entry point.
func FuzzConv2DNHWCAgainstReference(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(9), int64(1))
	f.Add(uint8(16), uint8(3), uint8(12), int64(2))
	f.Fuzz(func(t *testing.T, cRaw, kRaw, hRaw uint8, seed int64) {
		s := conv.Shape{
			N: 1, C: int(cRaw)%24 + 1,
			H: int(hRaw)%14 + 3, W: int(hRaw)%16 + 3,
			K: int(kRaw)%24 + 1, R: 3, S: 3, Str: 1, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got := tensor.NHWCToNCHW(Conv2DNHWC(s, tensor.NCHWToNHWC(in), fl, Options{Threads: 2}))
		if d := tensor.RelDiff(want, got); d > 5e-5 {
			t.Fatalf("shape %v: rel diff %g", s, d)
		}
	})
}
