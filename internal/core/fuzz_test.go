package core

import (
	"math"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// Fuzz target: any realisable shape must match the Algorithm 1 oracle
// within FP32 accumulation tolerance. Run `go test -fuzz FuzzConv2D`
// for open-ended exploration; the seed corpus runs in every ordinary
// `go test` invocation.
func FuzzConv2DAgainstReference(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(10), uint8(1), uint8(1), uint8(0), int64(1))
	f.Add(uint8(3), uint8(16), uint8(14), uint8(3), uint8(2), uint8(3), int64(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(1), int64(3))
	f.Add(uint8(64), uint8(13), uint8(7), uint8(2), uint8(1), uint8(2), int64(4))
	f.Fuzz(func(t *testing.T, cRaw, kRaw, hRaw, rsRaw, strRaw, padRaw uint8, seed int64) {
		s := conv.Shape{
			N:   1,
			C:   int(cRaw)%48 + 1,
			H:   int(hRaw)%18 + 1,
			W:   int(hRaw)%22 + 1,
			K:   int(kRaw)%48 + 1,
			R:   []int{1, 3, 5, 7}[int(rsRaw)%4],
			S:   []int{1, 3, 5, 7}[int(rsRaw)%4],
			Str: int(strRaw)%3 + 1,
			Pad: int(padRaw) % 4,
		}
		if !s.Valid() {
			t.Skip()
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got := Conv2D(s, in, fl, Options{Threads: 2})
		if d := tensor.RelDiff(want, got); d > 5e-5 {
			t.Fatalf("shape %v: rel diff %g", s, d)
		}
	})
}

// Fuzz target for the checked API's never-panic property: whatever
// shape, operand tensors and options are thrown at TryConv2D, it must
// return (result, nil) or (nil, error) — never panic. With sane=true
// the inputs are constrained to realisable problems and the result is
// additionally checked against the Algorithm 1 oracle (including the
// fuzzed epilogue); with sane=false the raw values go in unclamped,
// including tensors whose buffers disagree with their shapes.
func FuzzTryConv2D(f *testing.F) {
	f.Add(true, 8, 8, 10, 10, 8, 3, 3, 1, 1, int8(2), int8(0), int8(0), uint8(0), uint8(3), int64(1))
	f.Add(true, 1, 1, 1, 1, 1, 1, 1, 1, 0, int8(1), int8(12), int8(8), uint8(3), uint8(1), int64(2))
	f.Add(false, 0, -3, 5, 1<<30, 7, 3, 3, 0, -1, int8(-5), int8(3), int8(100), uint8(9), uint8(200), int64(3))
	f.Add(false, 1, 4, 8, 8, 4, 3, 3, 1, 1, int8(2), int8(0), int8(0), uint8(1), uint8(0), int64(4))
	f.Fuzz(func(t *testing.T, sane bool, n, c, h, w, k, r, ss, str, pad int,
		threads, forceVw, forceVk int8, epiRaw, biasRaw uint8, seed int64) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("TryConv2D panicked: %v", rec)
			}
		}()
		// mod reduces v into [0, m) without the math.MinInt negation trap.
		mod := func(v, m int) int {
			r := v % m
			if r < 0 {
				r += m
			}
			return r
		}
		var s conv.Shape
		var in, fl *tensor.Tensor
		opt := Options{Threads: int(threads)}
		epi := Epilogue(int(epiRaw) % 6) // two values past the defined range
		if sane {
			rs := []int{1, 3, 5}[mod(r, 3)]
			s = conv.Shape{
				N: mod(n, 2) + 1, C: mod(c, 8) + 1,
				H: mod(h, 12) + 1, W: mod(w, 12) + 1,
				K: mod(k, 8) + 1, R: rs, S: rs,
				Str: mod(str, 2) + 1, Pad: mod(pad, 3),
			}
			if !s.Valid() {
				t.Skip()
			}
			in = s.NewInput()
			in.FillRandom(seed)
			fl = s.NewFilter()
			fl.FillRandom(seed + 1)
			opt.Epilogue = Epilogue(int(epiRaw) % 4)
			if opt.Epilogue == EpilogueBias || opt.Epilogue == EpilogueBiasReLU {
				opt.Bias = make([]float32, s.K)
				for i := range opt.Bias {
					opt.Bias[i] = float32(i%5) - 2
				}
			}
		} else {
			s = conv.Shape{N: n, C: c, H: h, W: w, K: k, R: r, S: ss, Str: str, Pad: pad}
			// Tensors crafted to disagree with the shape: arbitrary
			// buffer lengths behind arbitrary Dims.
			in = &tensor.Tensor{Dims: []int{n, c, h, w}, Data: make([]float32, mod(n, 64))}
			fl = &tensor.Tensor{Dims: []int{k, c, r, ss}, Data: make([]float32, mod(k, 64))}
			opt.Epilogue = epi
			opt.ForceVw = int(forceVw)
			opt.ForceVk = int(forceVk)
			opt.Bias = make([]float32, int(biasRaw)%32)
		}
		out, err := TryConv2D(s, in, fl, opt)
		if err != nil {
			if out != nil {
				t.Fatal("non-nil result alongside an error")
			}
			return
		}
		if out == nil {
			t.Fatal("nil result without an error")
		}
		if !sane {
			return
		}
		want := conv.Reference(s, in, fl)
		// Normalise by the pre-epilogue conv magnitude: ReLU clamps can
		// shrink the output scale arbitrarily, which would amplify
		// ordinary FP32 accumulation error into a false mismatch.
		scale := 1e-30
		for _, v := range want.Data {
			if a := math.Abs(float64(v)); a > scale {
				scale = a
			}
		}
		pq := s.P() * s.Q()
		var maxDiff float64
		for i, v := range want.Data {
			switch opt.Epilogue {
			case EpilogueBias:
				v += opt.Bias[(i/pq)%s.K]
			case EpilogueReLU:
				if v < 0 {
					v = 0
				}
			case EpilogueBiasReLU:
				v += opt.Bias[(i/pq)%s.K]
				if v < 0 {
					v = 0
				}
			}
			if d := math.Abs(float64(v) - float64(out.Data[i])); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff/scale > 5e-5 {
			t.Fatalf("shape %v opts %+v: rel diff %g", s, opt, maxDiff/scale)
		}
	})
}

// Fuzz target: TryNewPlan must reject (with an error) or plan — never
// panic — for arbitrary shapes and options, including pathological
// dimensions near the overflow guards.
func FuzzTryNewPlan(f *testing.F) {
	f.Add(1, 64, 56, 56, 64, 3, 3, 1, 1, 8, 0, 0, 0, 0, 0, uint8(0))
	f.Add(0, -1, 1<<30, 1<<30, 1<<24, -3, 7, 0, -2, 1<<20, -4, 44, -1, 3, 1<<20, uint8(5))
	f.Add(2, 3, 19, 17, 9, 7, 7, 2, 3, 4097, 12, 8, 16, 32, 4, uint8(1))
	f.Fuzz(func(t *testing.T, n, c, h, w, k, r, ss, str, pad,
		threads, forceVw, forceVk, forceTc, forceTk, forceTh int, epiRaw uint8) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("TryNewPlan panicked: %v", rec)
			}
		}()
		s := conv.Shape{N: n, C: c, H: h, W: w, K: k, R: r, S: ss, Str: str, Pad: pad}
		opt := Options{
			Threads: threads,
			ForceVw: forceVw, ForceVk: forceVk,
			ForceTc: forceTc, ForceTk: forceTk, ForceTh: forceTh,
			Epilogue: Epilogue(int(epiRaw) % 6),
		}
		if opt.Epilogue == EpilogueBias || opt.Epilogue == EpilogueBiasReLU {
			opt.Bias = make([]float32, int(epiRaw)%16)
		}
		plan, err := TryNewPlan(s, opt)
		if (plan == nil) == (err == nil) {
			t.Fatalf("exactly one of plan/err must be set: plan=%v err=%v", plan, err)
		}
	})
}

// Fuzz target for the NHWC entry point.
func FuzzConv2DNHWCAgainstReference(f *testing.F) {
	f.Add(uint8(4), uint8(8), uint8(9), int64(1))
	f.Add(uint8(16), uint8(3), uint8(12), int64(2))
	f.Fuzz(func(t *testing.T, cRaw, kRaw, hRaw uint8, seed int64) {
		s := conv.Shape{
			N: 1, C: int(cRaw)%24 + 1,
			H: int(hRaw)%14 + 3, W: int(hRaw)%16 + 3,
			K: int(kRaw)%24 + 1, R: 3, S: 3, Str: 1, Pad: 1,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got := tensor.NHWCToNCHW(Conv2DNHWC(s, tensor.NCHWToNHWC(in), fl, Options{Threads: 2}))
		if d := tensor.RelDiff(want, got); d > 5e-5 {
			t.Fatalf("shape %v: rel diff %g", s, d)
		}
	})
}
