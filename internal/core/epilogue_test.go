package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// epilogueShapes is the fused-epilogue battery: every specialised
// micro-kernel (3×3/s1, 1×1, strided) plus the generic path, and the
// ragged edges (K%Vk≠0, Q<Vw, partial channel tiles) where the store
// sweep's masked columns must still see the epilogue.
var epilogueShapes = []conv.Shape{
	{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1},  // S3 kernel
	{N: 2, C: 16, H: 14, W: 14, K: 32, R: 1, S: 1, Str: 1, Pad: 0}, // S1 pointwise
	{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1},   // strided
	{N: 1, C: 5, H: 7, W: 7, K: 13, R: 3, S: 3, Str: 1, Pad: 1},    // ragged K, Q < Vw
	{N: 1, C: 3, H: 20, W: 20, K: 10, R: 7, S: 7, Str: 2, Pad: 3},  // generic kernel
}

// testEpilogue builds a deterministic non-trivial epilogue for K
// output channels.
func testEpilogue(k int, bias, affine, relu bool) *EpilogueParams {
	ep := &EpilogueParams{ReLU: relu}
	if bias {
		ep.Bias = make([]float32, k)
		for i := range ep.Bias {
			ep.Bias[i] = 0.01 * float32(i%11-5)
		}
	}
	if affine {
		ep.Scale = make([]float32, k)
		ep.Shift = make([]float32, k)
		for i := range ep.Scale {
			ep.Scale[i] = 0.75 + 0.125*float32(i%5)
			ep.Shift[i] = -0.03 * float32(i%7-3)
		}
	}
	return ep
}

// applySeparate replays the epilogue over a raw convolution result in
// the documented order (bias, affine, ReLU) with the exact float32
// expressions of the separate sweeps — the oracle the fused store must
// match bit for bit. chanOf maps a flat output index to its channel.
func applySeparate(raw []float32, ep *EpilogueParams, chanOf func(i int) int) []float32 {
	out := make([]float32, len(raw))
	for i, v := range raw {
		k := chanOf(i)
		if ep.Bias != nil {
			v += ep.Bias[k]
		}
		if ep.Scale != nil {
			v = v*ep.Scale[k] + ep.Shift[k]
		}
		if ep.ReLU && v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// TestFusedEpilogueBitIdenticalNCHW: for every kernel path and ragged
// edge, conv-with-fused-epilogue must equal raw-conv followed by the
// separate sweeps, bit for bit, for each epilogue component alone and
// for the full Conv→bias→BN→ReLU chain.
func TestFusedEpilogueBitIdenticalNCHW(t *testing.T) {
	for _, s := range epilogueShapes {
		in := s.NewInput()
		in.FillRandom(int64(s.C + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R + s.S))
		raw := Conv2D(s, in, f, Options{})
		pq := s.P() * s.Q()
		chanOf := func(i int) int { return (i / pq) % s.K }
		for _, tc := range []struct {
			name               string
			bias, affine, relu bool
		}{
			{"bias", true, false, false},
			{"affine", false, true, false},
			{"relu", false, false, true},
			{"bias+affine+relu", true, true, true},
		} {
			ep := testEpilogue(s.K, tc.bias, tc.affine, tc.relu)
			got := Conv2D(s, in, f, Options{FusedEpilogue: ep})
			want := applySeparate(raw.Data, ep, chanOf)
			for i := range want {
				if got.Data[i] != want[i] {
					t.Fatalf("%v %s: fused differs from separate at %d: %g vs %g",
						s, tc.name, i, got.Data[i], want[i])
				}
			}
		}
	}
}

// TestFusedEpilogueBitIdenticalNHWC: the NHWC store sweep indexes
// channels innermost; the fused epilogue must pick the same per-channel
// parameters there too.
func TestFusedEpilogueBitIdenticalNHWC(t *testing.T) {
	for _, s := range epilogueShapes {
		in := s.NewInput()
		in.FillRandom(int64(2*s.C + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R + 2*s.S))
		inNHWC := tensor.NCHWToNHWC(in)
		raw := Conv2DNHWC(s, inNHWC, f, Options{})
		ep := testEpilogue(s.K, true, true, true)
		got := Conv2DNHWC(s, inNHWC, f, Options{FusedEpilogue: ep})
		want := applySeparate(raw.Data, ep, func(i int) int { return i % s.K })
		for i := range want {
			if got.Data[i] != want[i] {
				t.Fatalf("%v NHWC: fused differs from separate at %d: %g vs %g",
					s, i, got.Data[i], want[i])
			}
		}
	}
}

// TestFusedEpilogueMatchesEnumForms: the generalised EpilogueParams
// lowering must coincide bit-for-bit with the pre-existing enum
// epilogues it subsumes.
func TestFusedEpilogueMatchesEnumForms(t *testing.T) {
	s := conv.Shape{N: 1, C: 5, H: 7, W: 7, K: 13, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	bias := testEpilogue(s.K, true, false, false).Bias
	enum := Conv2D(s, in, f, Options{Epilogue: EpilogueBiasReLU, Bias: bias})
	fused := Conv2D(s, in, f, Options{FusedEpilogue: &EpilogueParams{Bias: bias, ReLU: true}})
	if d := tensor.MaxAbsDiff(enum, fused); d != 0 {
		t.Fatalf("FusedEpilogue{Bias,ReLU} differs from EpilogueBiasReLU by %g", d)
	}
}

// TestFusedEpiloguePackedPath: the steady-state serving path
// (pre-transformed weights, TryExecutePacked) must store the same
// fused results as the on-the-fly transform path.
func TestFusedEpiloguePackedPath(t *testing.T) {
	for _, s := range epilogueShapes {
		in := s.NewInput()
		in.FillRandom(int64(s.C*3 + s.K))
		f := s.NewFilter()
		f.FillRandom(int64(s.R*5 + s.S))
		ep := testEpilogue(s.K, true, true, true)
		plan, err := TryNewPlan(s, Options{FusedEpilogue: ep})
		if err != nil {
			t.Fatal(err)
		}
		want := s.NewOutput()
		if err := plan.TryExecute(in, f, want); err != nil {
			t.Fatal(err)
		}
		pf, err := plan.TransformFilter(f)
		if err != nil {
			t.Fatal(err)
		}
		got := s.NewOutput()
		if err := plan.TryExecutePacked(in, pf, got); err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("%v: packed fused path differs from on-the-fly by %g", s, d)
		}
	}
}

// TestFusedEpilogueDegradationLadder: every rung below the optimised
// grid — the fault-recovery reference fallback and the budget ladder's
// TryExecuteReferenceCtx bottom rung — must replay the plan's fused
// epilogue, so a degraded serving call returns exactly what a healthy
// fused call would have.
func TestFusedEpilogueDegradationLadder(t *testing.T) {
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 5, H: 9, W: 9, K: 13, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(21)
	f := s.NewFilter()
	f.FillRandom(22)
	ep := testEpilogue(s.K, true, true, true)
	plan, err := TryNewPlan(s, Options{FusedEpilogue: ep})
	if err != nil {
		t.Fatal(err)
	}

	// The reference oracle with the epilogue replayed in float32.
	ref := conv.Reference(s, in, f)
	pq := s.P() * s.Q()
	want := applySeparate(ref.Data, ep, func(i int) int { return (i / pq) % s.K })

	// Bottom rung: the seven-loop in-place path.
	out := s.NewOutput()
	if err := plan.TryExecuteReferenceCtx(context.Background(), in, f, out); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("TryExecuteReferenceCtx: epilogue not replayed at %d: %g vs %g",
				i, out.Data[i], want[i])
		}
	}

	// Fault rung: a poisoned packed weight forces the reference
	// recovery, which must also land on the fused result.
	pf, err := plan.TransformFilter(f)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PackedCorrupt, len(pf.data)/2)
	out2 := s.NewOutput()
	if err := plan.TryExecutePacked(in, pf, out2); err != nil {
		t.Fatalf("TryExecutePacked under PackedCorrupt = %v, want recovered nil", err)
	}
	faultinject.Reset()
	for i := range want {
		if out2.Data[i] != want[i] {
			t.Fatalf("fault fallback: epilogue not replayed at %d: %g vs %g",
				i, out2.Data[i], want[i])
		}
	}
}

// TestFusedEpilogueValidation: the option-surface errors — mixing the
// enum and generalised forms, half-set affine pairs, and length
// mismatches — must all reject with ErrBadOptions at plan build.
func TestFusedEpilogueValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	bad := []Options{
		{FusedEpilogue: &EpilogueParams{ReLU: true}, Epilogue: EpilogueReLU},
		{FusedEpilogue: &EpilogueParams{Bias: make([]float32, s.K)}, Epilogue: EpilogueBias, Bias: make([]float32, s.K)},
		{FusedEpilogue: &EpilogueParams{Bias: make([]float32, s.K-1)}},
		{FusedEpilogue: &EpilogueParams{Scale: make([]float32, s.K)}},                                // Shift missing
		{FusedEpilogue: &EpilogueParams{Scale: make([]float32, s.K), Shift: make([]float32, s.K+1)}}, // length mismatch
	}
	for i, opt := range bad {
		if _, err := TryNewPlan(s, opt); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("case %d: TryNewPlan = %v, want ErrBadOptions", i, err)
		}
	}
	// A nil-component epilogue is legal and equivalent to none.
	plan, err := TryNewPlan(s, Options{FusedEpilogue: &EpilogueParams{}})
	if err != nil {
		t.Fatalf("empty EpilogueParams rejected: %v", err)
	}
	if !plan.ep.none {
		t.Fatal("empty EpilogueParams did not normalise to the raw-store fast path")
	}
}

// TestSteadyStateZeroAllocs is the PR's allocation acceptance claim:
// after warm-up, the single-threaded packed execution path (cached
// plan, pre-transformed weights, caller-owned output, per-plan scratch
// pool) performs zero heap allocations per call — with and without the
// fused epilogue.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(31)
	f := s.NewFilter()
	f.FillRandom(32)
	for _, fused := range []bool{false, true} {
		opt := Options{Threads: 1}
		if fused {
			opt.FusedEpilogue = testEpilogue(s.K, true, true, true)
		}
		plan, err := TryNewPlan(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := plan.TransformFilter(f)
		if err != nil {
			t.Fatal(err)
		}
		out := s.NewOutput()
		if err := plan.TryExecutePacked(in, pf, out); err != nil { // warm the scratch pool
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if err := plan.TryExecutePacked(in, pf, out); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("fused=%v: steady-state packed path allocates %.1f objects per call, want 0", fused, allocs)
		}
	}
}

// TestConcurrentFusedPlansSharedPool: distinct fused plans dispatch
// their grids onto the one process-wide worker pool concurrently; no
// plan's epilogue parameters may bleed into another's stores (-race
// target for the pool's dispatch path).
func TestConcurrentFusedPlansSharedPool(t *testing.T) {
	var wg sync.WaitGroup
	for pi, s := range epilogueShapes {
		in := s.NewInput()
		in.FillRandom(int64(100 + pi))
		f := s.NewFilter()
		f.FillRandom(int64(200 + pi))
		ep := testEpilogue(s.K, true, true, pi%2 == 0)
		plan, err := TryNewPlan(s, Options{Threads: 2, FusedEpilogue: ep})
		if err != nil {
			t.Fatal(err)
		}
		want := s.NewOutput()
		if err := plan.TryExecute(in, f, want); err != nil {
			t.Fatal(err)
		}
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := s.NewOutput()
				if err := plan.TryExecute(in, f, out); err != nil {
					t.Error(err)
					return
				}
				if d := tensor.MaxAbsDiff(want, out); d != 0 {
					t.Errorf("%v: concurrent fused run differs by %g", s, d)
				}
			}()
		}
	}
	wg.Wait()
}
