package core

// The packing micro-kernel of §5.3. For one register tile at output
// position (oh, qt0) and channel tile [ct, ct+tc), it gathers the
// R × tc × wIn input elements the main micro-kernel will touch into a
// linear buffer laid out [tc][R][wIn] — smaller than the L1 data cache
// by Equation 1 — zero-filling positions that fall in the padding
// halo. Every iteration of loop L7 then reads unit-stride from this
// buffer.
//
// With overlapped packing (the §5.3 optimisation), the first L7
// iteration interleaves the buffer stores with the FMA stream of the
// first V_k block (see packComputeNCHW in kernel.go); SequentialPack
// mode calls these routines stand-alone first, which is the behaviour
// Figure 5 ablates.

// packGeometry captures the per-tile packing coordinates shared by
// the NCHW and NHWC readers.
type packGeometry struct {
	ihBase int // first input row = oh*str - pad
	iwBase int // first input column = qt0*str - pad
	wIn    int // packed row width = (Vw-1)*str + S
}

func (p *Plan) geometry(oh, qt0 int) packGeometry {
	return packGeometry{
		ihBase: oh*p.Shape.Str - p.Shape.Pad,
		iwBase: qt0*p.Shape.Str - p.Shape.Pad,
		wIn:    (p.RT.Vw-1)*p.Shape.Str + p.Shape.S,
	}
}

// packNCHW fills buf[tc][R][wIn] from an NCHW input for batch image n
// and channel tile [ct, ct+tc).
func packNCHW(in []float32, buf []float32, g packGeometry, n, c, h, w, ct, tc, r int) {
	for cv := 0; cv < tc; cv++ {
		chanBase := ((n*c + ct + cv) * h) * w
		for rr := 0; rr < r; rr++ {
			dst := buf[(cv*r+rr)*g.wIn : (cv*r+rr+1)*g.wIn]
			ih := g.ihBase + rr
			if ih < 0 || ih >= h {
				clear(dst)
				continue
			}
			src := in[chanBase+ih*w : chanBase+(ih+1)*w]
			packRow(dst, src, g.iwBase, w)
		}
	}
}

// packNHWC fills the same buffer layout from an NHWC input, gathering
// along the strided channel dimension.
func packNHWC(in []float32, buf []float32, g packGeometry, n, c, h, w, ct, tc, r int) {
	for cv := 0; cv < tc; cv++ {
		cc := ct + cv
		for rr := 0; rr < r; rr++ {
			dst := buf[(cv*r+rr)*g.wIn : (cv*r+rr+1)*g.wIn]
			ih := g.ihBase + rr
			if ih < 0 || ih >= h {
				clear(dst)
				continue
			}
			rowBase := ((n*h + ih) * w) * c
			for x := 0; x < g.wIn; x++ {
				iw := g.iwBase + x
				if iw < 0 || iw >= w {
					dst[x] = 0
				} else {
					dst[x] = in[rowBase+iw*c+cc]
				}
			}
		}
	}
}

// packRow copies wIn elements of src starting at iwBase into dst,
// zero-filling out-of-range columns (left/right padding halo).
func packRow(dst, src []float32, iwBase, w int) {
	x := 0
	// Left halo.
	for ; x < len(dst) && iwBase+x < 0; x++ {
		dst[x] = 0
	}
	// Body: contiguous copy.
	end := len(dst)
	if iwBase+end > w {
		end = w - iwBase
	}
	if end > x {
		copy(dst[x:end], src[iwBase+x:iwBase+end])
		x = end
	}
	// Right halo.
	for ; x < len(dst); x++ {
		dst[x] = 0
	}
}
