package core

import (
	"fmt"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// transformFilter converts one cache tile of the KCRS filter into the
// vector-blocked layout the main micro-kernel consumes:
//
//	F[kt:kt+tk][ct:ct+tc][R][S]  →  TF[⌈tk/Vk⌉][tc][R][S][Vk]
//
// This is line 5 of Algorithm 2: the T_k·T_c·R·S → ⌈T_k/V_k⌉·T_c·R·S·V_k
// on-the-fly transform that lets nDirect keep the framework's KCRS
// weights while the kernel streams unit-stride vector loads. Lanes
// past K are zero so edge tiles compute harmlessly into padding.
//
// dst must have room for ceil(tk/vk)*tc*R*S*vk floats.
func transformFilter(filter []float32, dst []float32, k, c, r, s int, kt, tk, ct, tc, vk int) {
	kBlocks := (tk + vk - 1) / vk
	rs := r * s
	for kb := 0; kb < kBlocks; kb++ {
		for cv := 0; cv < tc; cv++ {
			srcC := ((ct + cv) * rs)
			dstBase := ((kb*tc + cv) * rs) * vk
			for x := 0; x < rs; x++ {
				d := dstBase + x*vk
				for lane := 0; lane < vk; lane++ {
					kk := kt + kb*vk + lane
					if kk < kt+tk {
						dst[d+lane] = filter[(kk*c*rs)+srcC+x]
					} else {
						dst[d+lane] = 0
					}
				}
			}
		}
	}
}

// tfIndex returns the offset of the (kb, cv, r, s) filter vector in
// the transformed buffer (the lane dimension is innermost).
func tfIndex(kb, cv, rr, ss, r, s, tc, vk int) int {
	return (((kb*tc+cv)*r+rr)*s + ss) * vk
}

// PackedFilter is a whole-filter pre-transformation of the KCRS
// weights into the vector-blocked layout the micro-kernel consumes:
//
//	F[K][C][R][S]  →  TF[⌈K/Vk⌉][C][R][S][Vk]
//
// It is the persistent-weight alternative to the on-the-fly transform
// of Algorithm 2 line 5 — the trade-off LIBXSMM makes with its blocked
// KCRSck weights, and the one ablation 5
// (BenchmarkAblationFilterTransform) measures. Because the per-tile
// transform's K blocking is V_k-aligned (T_k is solved as a multiple
// of V_k and worker ranges split on V_k block boundaries), a cache
// tile (kt, tk, ct, tc) of the whole-filter layout is addressable in
// place: block kt/Vk+kb at channel offset ct is exactly the
// [tc][R][S][Vk] slab the kernel reads, so Execute consumes it with
// zero repacking and bit-identical results.
//
// A PackedFilter is immutable after construction and safe for
// concurrent use by any number of Execute calls. It retains the source
// KCRS tensor so the fault-tolerant reference fallback (and operand
// validation) still have the framework-layout weights; the source must
// not be mutated while the PackedFilter is in use.
//
// A packed filter can be retired by Release: a residency manager (the
// multi-tenant weight budget in internal/serve) that evicts a model's
// packed weights flips the released flag, after which every new
// execution attempt fails typed with ErrWeightsReleased and the owner
// is expected to drop its reference and re-pack on next use.
// Executions that validated before the flip keep reading the buffer —
// it is immutable and garbage-collected, never recycled — so an
// eviction racing in-flight traffic can produce a stale-but-correct
// result or a typed error, but never a read of reused memory.
type PackedFilter struct {
	k, c, r, s, vk int
	src            *tensor.Tensor // original KCRS weights (fallback path)
	data           []float32      // [⌈K/Vk⌉][C][R][S][Vk], zero lanes past K
	released       atomic.Bool    // set by Release; checked by validateFor
	crc            uint32         // CRC32-C of data, computed at pack time
	verifySeq      atomic.Uint64  // execution counter driving sampled verification
}

// TransformFilter pre-transforms the KCRS filter for this plan's
// register blocking. The result is reusable across every Execute call
// of any plan with the same filter geometry and V_k (see
// PackedFilter.CompatibleWith) — build it once per layer at load time
// and the per-call transform stage disappears (its time was counted in
// Stats.TransformSec; packed runs report zero there).
func (p *Plan) TransformFilter(filter *tensor.Tensor) (*PackedFilter, error) {
	s := p.Shape
	if err := conv.ValidateTensor("filter", filter, s.K, s.C, s.R, s.S); err != nil {
		return nil, err
	}
	vk := p.RT.Vk
	kBlocks := (s.K + vk - 1) / vk
	pf := &PackedFilter{
		k: s.K, c: s.C, r: s.R, s: s.S, vk: vk,
		src:  filter,
		data: make([]float32, kBlocks*s.C*s.R*s.S*vk),
	}
	// The whole filter is one "tile": kt=0, tk=K, ct=0, tc=C yields the
	// [⌈K/Vk⌉][C][R][S][Vk] layout directly, zero-filling the lanes of
	// the ragged last block exactly as the per-tile transform does.
	transformFilter(filter.Data, pf.data, s.K, s.C, s.R, s.S, 0, s.K, 0, s.C, vk)
	pf.crc = crcFloats(pf.data)
	return pf, nil
}

// Checksum returns the CRC32-C computed over the packed buffer at
// pack time. Because the transform is deterministic, re-packing the
// same KCRS source always reproduces the same checksum — the property
// the eviction/re-pack path's verification rests on.
func (pf *PackedFilter) Checksum() uint32 { return pf.crc }

// Verify re-checksums the packed buffer against the pack-time CRC32-C,
// returning an error wrapping ErrIntegrity on mismatch. A mismatch
// means the resident bytes were corrupted after packing (a DRAM bit
// flip, a stray store); the owner must drop the handle and re-pack
// from the retained KCRS source rather than keep serving from it.
// Safe for concurrent use with executions — the buffer is read-only.
func (pf *PackedFilter) Verify() error {
	return pf.verifyConsumed(pf.data)
}

// verifyConsumed checks the buffer an execution is about to consume
// (pf.data, or a run-private copy under fault injection) against the
// pack-time checksum, counting the verification and any failure.
func (pf *PackedFilter) verifyConsumed(pre []float32) error {
	packedVerifies.Add(1)
	if crcFloats(pre) != pf.crc {
		packedVerifyFailures.Add(1)
		return fmt.Errorf("%w: packed filter K%d C%d R%d S%d fails its pack-time CRC32-C; re-pack from the KCRS source",
			ErrIntegrity, pf.k, pf.c, pf.r, pf.s)
	}
	return nil
}

// shouldVerify implements the sampled verification schedule: every
// PackedVerifyInterval-th execution of this filter re-checksums the
// weights before consuming them.
func (pf *PackedFilter) shouldVerify() bool {
	iv := packedVerifyInterval.Load()
	if iv <= 0 {
		return false
	}
	return pf.verifySeq.Add(1)%uint64(iv) == 0
}

// CompatibleWith reports whether the packed filter can serve the
// plan: same filter geometry (K, C, R, S) and the same V_k blocking.
// Batch size is irrelevant — one PackedFilter serves a layer at every
// batch size.
func (pf *PackedFilter) CompatibleWith(p *Plan) bool {
	s := p.Shape
	return pf.k == s.K && pf.c == s.C && pf.r == s.R && pf.s == s.S && pf.vk == p.RT.Vk
}

// Source returns the original KCRS filter tensor the packed filter was
// built from.
func (pf *PackedFilter) Source() *tensor.Tensor { return pf.src }

// Len returns the packed buffer's element count
// (⌈K/Vk⌉·C·R·S·Vk floats).
func (pf *PackedFilter) Len() int { return len(pf.data) }

// Release retires the packed filter: subsequent executions fail typed
// with ErrWeightsReleased until the owner re-packs. It reports whether
// this call performed the release (false when already released), which
// gives residency accountants exactly-once charge-return semantics
// even when eviction, replacement and unregistration race. The buffer
// itself is left to the garbage collector once every holder drops its
// reference — in-flight executions that validated before the flip
// finish on valid memory.
func (pf *PackedFilter) Release() bool {
	return !pf.released.Swap(true)
}

// Released reports whether the packed filter has been retired.
func (pf *PackedFilter) Released() bool { return pf.released.Load() }

// validateFor checks the packed filter against the plan, wrapping
// ErrBadOptions on mismatch (the packed geometry is an execution
// configuration, not an operand).
func (pf *PackedFilter) validateFor(p *Plan) error {
	if pf == nil {
		return fmt.Errorf("%w: nil PackedFilter", ErrBadOptions)
	}
	if pf.Released() {
		return fmt.Errorf("%w: packed filter K%d C%d R%d S%d was evicted; re-pack before executing",
			ErrWeightsReleased, pf.k, pf.c, pf.r, pf.s)
	}
	if !pf.CompatibleWith(p) {
		s := p.Shape
		return fmt.Errorf("%w: packed filter K%d C%d R%d S%d Vk%d does not match plan K%d C%d R%d S%d Vk%d",
			ErrBadOptions, pf.k, pf.c, pf.r, pf.s, pf.vk, s.K, s.C, s.R, s.S, p.RT.Vk)
	}
	return nil
}
