package core

// transformFilter converts one cache tile of the KCRS filter into the
// vector-blocked layout the main micro-kernel consumes:
//
//	F[kt:kt+tk][ct:ct+tc][R][S]  →  TF[⌈tk/Vk⌉][tc][R][S][Vk]
//
// This is line 5 of Algorithm 2: the T_k·T_c·R·S → ⌈T_k/V_k⌉·T_c·R·S·V_k
// on-the-fly transform that lets nDirect keep the framework's KCRS
// weights while the kernel streams unit-stride vector loads. Lanes
// past K are zero so edge tiles compute harmlessly into padding.
//
// dst must have room for ceil(tk/vk)*tc*R*S*vk floats.
func transformFilter(filter []float32, dst []float32, k, c, r, s int, kt, tk, ct, tc, vk int) {
	kBlocks := (tk + vk - 1) / vk
	rs := r * s
	for kb := 0; kb < kBlocks; kb++ {
		for cv := 0; cv < tc; cv++ {
			srcC := ((ct + cv) * rs)
			dstBase := ((kb*tc + cv) * rs) * vk
			for x := 0; x < rs; x++ {
				d := dstBase + x*vk
				for lane := 0; lane < vk; lane++ {
					kk := kt + kb*vk + lane
					if kk < kt+tk {
						dst[d+lane] = filter[(kk*c*rs)+srcC+x]
					} else {
						dst[d+lane] = 0
					}
				}
			}
		}
	}
}

// tfIndex returns the offset of the (kb, cv, r, s) filter vector in
// the transformed buffer (the lane dimension is innermost).
func tfIndex(kb, cv, rr, ss, r, s, tc, vk int) int {
	return (((kb*tc+cv)*r+rr)*s + ss) * vk
}
