package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// dwShapes is the depthwise bit-identity battery: both specialized
// 3×3 variants (stride 1 and 2), ragged widths that exercise vector
// interior + halo + scalar tail, pad-0 (no halo), non-3×3 generic
// shapes, multi-batch, and a width narrower than one vector.
var dwShapes = []conv.Shape{
	{N: 1, C: 3, H: 8, W: 8, K: 3, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 2, C: 5, H: 11, W: 11, K: 5, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 4, H: 7, W: 7, K: 4, R: 3, S: 3, Str: 1, Pad: 0},
	{N: 1, C: 2, H: 9, W: 3, K: 2, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 3, H: 12, W: 12, K: 3, R: 3, S: 3, Str: 2, Pad: 1},
	{N: 2, C: 4, H: 13, W: 9, K: 4, R: 3, S: 3, Str: 2, Pad: 1},
	{N: 1, C: 2, H: 8, W: 8, K: 2, R: 3, S: 3, Str: 2, Pad: 0},
	{N: 1, C: 3, H: 10, W: 10, K: 3, R: 5, S: 5, Str: 1, Pad: 2},
	{N: 1, C: 32, H: 112, W: 112, K: 32, R: 3, S: 3, Str: 1, Pad: 1},
	{N: 1, C: 16, H: 56, W: 56, K: 16, R: 3, S: 3, Str: 2, Pad: 1},
}

// dwOracle computes the depthwise reference: the pre-plan plane loop
// plus the epilogue sweep, per plane.
func dwOracle(s conv.Shape, in, filter *tensor.Tensor, ep *epilogue) *tensor.Tensor {
	pp, q := s.P(), s.Q()
	out := tensor.New(s.N, s.C, pp, q)
	for plane := 0; plane < s.N*s.C; plane++ {
		c := plane % s.C
		dst := out.Data[plane*pp*q : (plane+1)*pp*q]
		depthwisePlane(s, in.Data[plane*s.H*s.W:(plane+1)*s.H*s.W],
			filter.Data[c*s.R*s.S:(c+1)*s.R*s.S], dst)
		if ep != nil && !ep.none {
			applyChannelEpilogue(dst, ep, c)
		}
	}
	return out
}

func dwOperands(s conv.Shape, seed int64) (in, filter *tensor.Tensor) {
	in = tensor.New(s.N, s.C, s.H, s.W)
	filter = tensor.New(s.C, s.R, s.S)
	in.FillRandom(seed)
	filter.FillRandom(seed + 1)
	return in, filter
}

func TestDepthwisePlanMatchesOracle(t *testing.T) {
	for _, s := range dwShapes {
		for _, threads := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/t%d", s, threads), func(t *testing.T) {
				in, filter := dwOperands(s, 11)
				p, err := TryNewDepthwisePlan(s, Options{Threads: threads})
				if err != nil {
					t.Fatalf("TryNewDepthwisePlan: %v", err)
				}
				out := tensor.New(s.N, s.C, s.P(), s.Q())
				if err := p.TryExecute(in, filter, out); err != nil {
					t.Fatalf("TryExecute: %v", err)
				}
				want := dwOracle(s, in, filter, nil)
				if d := tensor.MaxAbsDiff(out, want); d != 0 {
					t.Fatalf("kernel %s diverges from oracle by %g", p.KernelName(), d)
				}
			})
		}
	}
}

// TestDepthwisePlanGenericMatches pins ForceGenericKernel to the
// oracle body and cross-checks against the specialized variant.
func TestDepthwisePlanGenericMatches(t *testing.T) {
	for _, s := range dwShapes[:7] {
		in, filter := dwOperands(s, 23)
		fast, err := TryNewDepthwisePlan(s, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		if fast.KernelName() == "dw.generic" {
			t.Fatalf("shape %v: expected a specialized variant", s)
		}
		gen, err := TryNewDepthwisePlan(s, Options{Threads: 2, ForceGenericKernel: true})
		if err != nil {
			t.Fatal(err)
		}
		if gen.KernelName() != "dw.generic" {
			t.Fatalf("ForceGenericKernel selected %s", gen.KernelName())
		}
		a := tensor.New(s.N, s.C, s.P(), s.Q())
		b := tensor.New(s.N, s.C, s.P(), s.Q())
		if err := fast.TryExecute(in, filter, a); err != nil {
			t.Fatal(err)
		}
		if err := gen.TryExecute(in, filter, b); err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(a, b); d != 0 {
			t.Fatalf("shape %v: %s vs generic differ by %g", s, fast.KernelName(), d)
		}
	}
}

func TestDepthwisePlanFusedEpilogue(t *testing.T) {
	s := conv.Shape{N: 1, C: 6, H: 11, W: 11, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := dwOperands(s, 31)
	bias := make([]float32, s.C)
	scale := make([]float32, s.C)
	shift := make([]float32, s.C)
	for c := 0; c < s.C; c++ {
		bias[c] = float32(c)*0.25 - 0.5
		scale[c] = 1 + float32(c)*0.125
		shift[c] = -0.25 * float32(c)
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"bias", Options{FusedEpilogue: &EpilogueParams{Bias: bias}}},
		{"bias-relu", Options{FusedEpilogue: &EpilogueParams{Bias: bias, ReLU: true}}},
		{"affine-relu", Options{FusedEpilogue: &EpilogueParams{Scale: scale, Shift: shift, ReLU: true}}},
		{"full", Options{FusedEpilogue: &EpilogueParams{Bias: bias, Scale: scale, Shift: shift, ReLU: true}}},
		{"enum-bias", Options{Epilogue: EpilogueBias, Bias: bias}},
		{"enum-bias-relu", Options{Epilogue: EpilogueBiasReLU, Bias: bias}},
		{"enum-relu", Options{Epilogue: EpilogueReLU}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.opt.Threads = 2
			p, err := TryNewDepthwisePlan(s, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			out := tensor.New(s.N, s.C, s.P(), s.Q())
			if err := p.TryExecute(in, filter, out); err != nil {
				t.Fatal(err)
			}
			ep := normalizeEpilogue(tc.opt)
			want := dwOracle(s, in, filter, &ep)
			if d := tensor.MaxAbsDiff(out, want); d != 0 {
				t.Fatalf("epilogue %s diverges by %g", tc.name, d)
			}
		})
	}
}

func TestDepthwisePlanOptionValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	bad := []Options{
		{Threads: maxThreads + 1},
		{Threads: -1},
		{ForceTh: -2},
		{FusedEpilogue: &EpilogueParams{Bias: make([]float32, s.C+1)}},
		{FusedEpilogue: &EpilogueParams{Scale: make([]float32, s.C)}}, // Shift missing
		{FusedEpilogue: &EpilogueParams{Bias: make([]float32, s.C)}, Epilogue: EpilogueReLU},
		{Epilogue: EpilogueBias, Bias: make([]float32, s.C-1)},
		{DepthwiseEpilogue: &EpilogueParams{ReLU: true}},
	}
	for i, opt := range bad {
		if _, err := TryNewDepthwisePlan(s, opt); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("case %d: got %v, want ErrBadOptions", i, err)
		}
	}
	if _, err := TryNewDepthwisePlan(conv.Shape{N: 1, C: 0, H: 8, W: 8, K: 1, R: 3, S: 3, Str: 1, Pad: 1}, Options{}); err == nil {
		t.Fatal("C=0 accepted")
	}
	// Standard plans must reject the separable-only option too.
	if _, err := TryNewPlan(s, Options{DepthwiseEpilogue: &EpilogueParams{ReLU: true}}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("TryNewPlan DepthwiseEpilogue = %v, want ErrBadOptions", err)
	}
}

func TestDepthwisePackedRoundTrip(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 14, W: 14, K: 8, R: 3, S: 3, Str: 2, Pad: 1}
	in, filter := dwOperands(s, 47)
	p, err := TryNewDepthwisePlan(s, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Bytes() != p.PackedBytes() {
		t.Fatalf("Bytes=%d, PackedBytes=%d", pf.Bytes(), p.PackedBytes())
	}
	if err := pf.Verify(); err != nil {
		t.Fatalf("fresh pack fails verify: %v", err)
	}
	out := tensor.New(s.N, s.C, s.P(), s.Q())
	if err := p.TryExecutePacked(in, pf, out); err != nil {
		t.Fatal(err)
	}
	want := dwOracle(s, in, filter, nil)
	if d := tensor.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("packed path diverges by %g", d)
	}
	// Corruption is caught typed.
	pf.data[3] += 1
	if err := pf.Verify(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted pack Verify = %v, want ErrIntegrity", err)
	}
	pf.data[3] -= 1
	// Release fails new executions typed, exactly once.
	if !pf.Release() {
		t.Fatal("first Release returned false")
	}
	if pf.Release() {
		t.Fatal("second Release returned true")
	}
	if err := p.TryExecutePacked(in, pf, out); !errors.Is(err, ErrWeightsReleased) {
		t.Fatalf("released pack = %v, want ErrWeightsReleased", err)
	}
	// Geometry mismatch is rejected.
	other, err := TryNewDepthwisePlan(conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf2, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.TryExecutePacked(in, pf2, out); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("mismatched pack = %v, want ErrBadOptions", err)
	}
}

// TestDepthwisePlanFaultRecovery proves the depthwise path's
// typed-error-or-bit-exact contract under every injected fault the
// standard battery covers.
func TestDepthwisePlanFaultRecovery(t *testing.T) {
	s := conv.Shape{N: 2, C: 6, H: 16, W: 16, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := dwOperands(s, 61)
	want := dwOracle(s, in, filter, nil)

	t.Run("worker-panic", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.WorkerPanic, 0)
		p, err := TryNewDepthwisePlan(s, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		if err := p.TryExecute(in, filter, out); err != nil {
			t.Fatalf("panic recovery returned error: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("recovered output diverges by %g", d)
		}
	})

	t.Run("worker-stall-deadline", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.WorkerStall, 1)
		p, err := TryNewDepthwisePlan(s, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		err = p.TryExecuteCtx(ctx, in, filter, out)
		faultinject.Reset() // unblock the stalled worker
		if !errors.Is(err, conv.ErrDeadline) {
			t.Fatalf("stalled run = %v, want ErrDeadline", err)
		}
	})

	t.Run("worker-stall-fallback-budget", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.WorkerStall, 1)
		p, err := TryNewDepthwisePlan(s, Options{Threads: 4, FallbackBudget: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		err = p.TryExecuteCtx(ctx, in, filter, out)
		faultinject.Reset()
		if err != nil {
			t.Fatalf("budgeted fallback returned error: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("fallback output diverges by %g", d)
		}
	})

	t.Run("nan-poison", func(t *testing.T) {
		defer faultinject.Reset()
		faultinject.Arm(faultinject.NaNPoison, 5)
		p, err := TryNewDepthwisePlan(s, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		if err := p.TryExecute(in, filter, out); err != nil {
			t.Fatalf("NaN recovery returned error: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("recovered output diverges by %g", d)
		}
	})

	t.Run("packed-corrupt", func(t *testing.T) {
		defer faultinject.Reset()
		p, err := TryNewDepthwisePlan(s, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := p.TransformFilter(filter)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.PackedCorrupt, 2)
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		if err := p.TryExecutePacked(in, pf, out); err != nil {
			t.Fatalf("packed-corrupt recovery returned error: %v", err)
		}
		if d := tensor.MaxAbsDiff(out, want); d != 0 {
			t.Fatalf("recovered output diverges by %g", d)
		}
	})

	t.Run("weight-bitflip", func(t *testing.T) {
		defer faultinject.Reset()
		p, err := TryNewDepthwisePlan(s, Options{Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		pf, err := p.TransformFilter(filter)
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.WeightBitflip, 2)
		out := tensor.New(s.N, s.C, s.P(), s.Q())
		if err := p.TryExecutePacked(in, pf, out); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("bitflip = %v, want ErrIntegrity", err)
		}
	})
}

// TestDepthwiseKernelFamilySentinel proves the depthwise families are
// first-class citizens of the sentinel surface: named, verifiable,
// quarantinable (which drops new plans to the generic body), and
// restorable.
func TestDepthwiseKernelFamilySentinel(t *testing.T) {
	names := KernelFamilyNames()
	found := 0
	for _, n := range names {
		if n == "dw.r3s3.s1" || n == "dw.r3s3.s2" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("KernelFamilyNames missing depthwise families: %v", names)
	}
	for _, fam := range []string{"dw.r3s3.s1", "dw.r3s3.s2"} {
		if err := VerifyKernelFamily(fam); err != nil {
			t.Fatalf("VerifyKernelFamily(%s): %v", fam, err)
		}
	}

	s := conv.Shape{N: 1, C: 4, H: 9, W: 9, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	gen0 := KernelDispatchGeneration()
	if !QuarantineKernelFamily("dw.r3s3.s1") {
		t.Fatal("QuarantineKernelFamily did not recognize the depthwise family")
	}
	defer RestoreKernelFamily("dw.r3s3.s1")
	if KernelDispatchGeneration() == gen0 {
		t.Fatal("quarantine did not bump the dispatch generation")
	}
	p, err := TryNewDepthwisePlan(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.KernelName() != "dw.generic" {
		t.Fatalf("quarantined family still dispatched: %s", p.KernelName())
	}
	// The probe still runs the family directly, so a clean probe can
	// drive restore.
	if err := VerifyKernelFamily("dw.r3s3.s1"); err != nil {
		t.Fatalf("probe under quarantine: %v", err)
	}
	if !RestoreKernelFamily("dw.r3s3.s1") {
		t.Fatal("RestoreKernelFamily did not recognize the depthwise family")
	}
	p2, err := TryNewDepthwisePlan(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p2.KernelName() != "dw.r3s3.s1" {
		t.Fatalf("restored family not dispatched: %s", p2.KernelName())
	}
}

// TestDepthwiseKernelMiscompute arms the kernel-miscompute fault and
// proves VerifyKernelFamily fails typed on the depthwise family.
func TestDepthwiseKernelMiscompute(t *testing.T) {
	defer faultinject.Reset()
	if err := VerifyKernelFamily("dw.r3s3.s2"); err != nil {
		t.Fatalf("clean probe: %v", err)
	}
	faultinject.Arm(faultinject.KernelMiscompute, 0)
	if err := VerifyKernelFamily("dw.r3s3.s2"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("miscompute probe = %v, want ErrIntegrity", err)
	}
	faultinject.Reset()
	if err := VerifyKernelFamily("dw.r3s3.s2"); err != nil {
		t.Fatalf("probe after reset: %v", err)
	}
}

// TestDepthwisePlanConcurrent mirrors the standard shared-plan battery:
// one plan, many goroutines, distinct outputs — run under -race.
func TestDepthwisePlanConcurrent(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 20, W: 20, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := dwOperands(s, 73)
	want := dwOracle(s, in, filter, nil)
	p, err := TryNewDepthwisePlan(s, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := tensor.New(s.N, s.C, s.P(), s.Q())
			for i := 0; i < iters; i++ {
				var err error
				if (g+i)%2 == 0 {
					err = p.TryExecute(in, filter, out)
				} else {
					err = p.TryExecutePacked(in, pf, out)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				if d := tensor.MaxAbsDiff(out, want); d != 0 {
					errs <- fmt.Errorf("goroutine %d iter %d: diverges by %g", g, i, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDepthwisePackedZeroAllocs gates the steady-state contract: a
// warm plan executing packed with preallocated output must not touch
// the heap.
func TestDepthwisePackedZeroAllocs(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 28, W: 28, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := dwOperands(s, 83)
	p, err := TryNewDepthwisePlan(s, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(s.N, s.C, s.P(), s.Q())
	for i := 0; i < 3; i++ { // warm the run pool
		if err := p.TryExecutePacked(in, pf, out); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.TryExecutePacked(in, pf, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed depthwise steady state allocates %v/op, want 0", allocs)
	}
}
