package core

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
)

// PlanCache is a concurrency-safe, LRU-bounded cache of execution
// plans keyed by (Shape, Options). Repeated inference re-solves the
// Equation 1–6 analytical models (cache tiles, register tile, thread
// mapping) on every TryConv2D call even though the answer is a pure
// function of the shape and options; a serving process that sees the
// same layer geometries request after request amortises that planning
// to a map lookup by routing calls through a cache
// (Options.PlanCache, or nn.Engine.Reuse at the network level).
//
// Plans are immutable after construction and safe for concurrent
// Execute calls, so one cached *Plan may serve any number of
// goroutines; the cache itself serialises only the map/LRU bookkeeping
// and builds plans outside its lock (two goroutines racing on the same
// cold key may both solve it — the loser's identical plan is dropped).
//
// The key captures every Options field that influences planning or
// execution, including the bias contents byte-for-byte (two layers
// with equal geometry but different bias vectors must not share a
// fused-epilogue plan). The PlanCache field itself and a nil vs
// explicit generic Platform are normalised out.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	lru   *list.List // of *planEntry; front = most recently used
	byKey map[planKey]*list.Element

	// Observability counters. Atomics rather than mu-guarded fields so
	// Stats() snapshots under concurrent lookups never contend with
	// the map/LRU bookkeeping (a monitoring scrape must not slow the
	// serving hot path).
	hits, misses, evictions atomic.Uint64
}

// DefaultPlanCacheCap is the entry bound used when NewPlanCache is
// given a non-positive capacity — generous for whole-model serving
// (ResNet-101 has ~40 distinct conv geometries; a multi-model server
// a few hundred).
const DefaultPlanCacheCap = 256

type planEntry struct {
	key  planKey
	plan *Plan
}

// planKey is the comparable identity of a plan. The bias and fused-
// epilogue strings hold the raw little-endian float bits of the
// corresponding Options slices so equality is exact (no hashing, no
// collisions); fusedSet distinguishes an all-nil EpilogueParams from
// no FusedEpilogue at all.
type planKey struct {
	shape      conv.Shape
	platform   hw.Platform
	threads    int
	seqPack    bool
	forceVw    int
	forceVk    int
	forceTc    int
	forceTk    int
	forceTh    int
	epilogue   Epilogue
	bias       string
	fusedSet   bool
	fusedBias  string
	fusedScale string
	fusedShift string
	fusedReLU  bool
	collect    bool
	generic    bool
	unrolled   bool
	numerics   bool
	budget     time.Duration
	dgen       uint64 // dispatch-registry generation at key time
}

// floatsKey serialises a float slice to its exact bit pattern for use
// as a comparable map-key component.
func floatsKey(v []float32) string {
	if len(v) == 0 {
		return ""
	}
	raw := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(f))
	}
	return string(raw)
}

func planKeyFor(s conv.Shape, opt Options) planKey {
	pf := genericPlatform
	if opt.Platform != nil {
		pf = *opt.Platform
	}
	key := planKey{
		shape:    s,
		platform: pf,
		threads:  opt.Threads,
		seqPack:  opt.SequentialPack,
		forceVw:  opt.ForceVw,
		forceVk:  opt.ForceVk,
		forceTc:  opt.ForceTc,
		forceTk:  opt.ForceTk,
		forceTh:  opt.ForceTh,
		epilogue: opt.Epilogue,
		bias:     floatsKey(opt.Bias),
		collect:  opt.CollectStats,
		generic:  opt.ForceGenericKernel,
		unrolled: opt.UnrolledKernels,
		numerics: opt.CheckNumerics,
		budget:   opt.FallbackBudget,
		dgen:     dispatchGen.Load(),
	}
	if fe := opt.FusedEpilogue; fe != nil {
		key.fusedSet = true
		key.fusedBias = floatsKey(fe.Bias)
		key.fusedScale = floatsKey(fe.Scale)
		key.fusedShift = floatsKey(fe.Shift)
		key.fusedReLU = fe.ReLU
	}
	return key
}

// NewPlanCache returns a cache holding at most capacity plans
// (DefaultPlanCacheCap when capacity <= 0), evicting the least
// recently used entry past the bound.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheCap
	}
	return &PlanCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[planKey]*list.Element),
	}
}

// Get returns the plan for (s, opt), solving and inserting it on a
// miss. Errors are exactly TryNewPlan's (wrapping conv.ErrBadShape or
// ErrBadOptions); failed constructions are not cached.
func (c *PlanCache) Get(s conv.Shape, opt Options) (*Plan, error) {
	key := planKeyFor(s, opt)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.lru.MoveToFront(el)
		c.hits.Add(1)
		p := el.Value.(*planEntry).plan
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()

	// Solve outside the lock: planning is pure, so a concurrent miss on
	// the same key at worst duplicates a microsecond of solver work.
	p, err := TryNewPlan(s, opt)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses.Add(1)
	if el, ok := c.byKey[key]; ok {
		// A racing goroutine inserted first; keep its plan so every
		// caller shares one scratch pool per key.
		c.lru.MoveToFront(el)
		return el.Value.(*planEntry).plan, nil
	}
	c.byKey[key] = c.lru.PushFront(&planEntry{key: key, plan: p})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.byKey, back.Value.(*planEntry).key)
		c.evictions.Add(1)
	}
	return p, nil
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// PlanCacheStats is a point-in-time snapshot of the cache counters.
type PlanCacheStats struct {
	Hits, Misses, Evictions uint64
	Len                     int
}

// Stats returns a point-in-time snapshot of the cache's counters:
// hits, misses (successful builds after a lookup failure) and LRU
// evictions. The counters are atomic, so the snapshot is safe (and
// contention-free) under concurrent Get traffic; the three values are
// read independently and may straddle an in-flight lookup.
func (c *PlanCache) Stats() PlanCacheStats {
	st := PlanCacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	c.mu.Lock()
	st.Len = c.lru.Len()
	c.mu.Unlock()
	return st
}

// planFor resolves the plan for one-shot entry points: through the
// cache when the caller configured one, freshly solved otherwise.
func planFor(s conv.Shape, opt Options) (*Plan, error) {
	if opt.PlanCache != nil {
		return opt.PlanCache.Get(s, opt)
	}
	return TryNewPlan(s, opt)
}
