package core

import (
	"context"
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/model"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
)

// FP64 nDirect (§3.3: "our techniques can be applied to other data
// types, including FP16, FP64 and INT16 ... by adjusting the
// parameters of the analytical models"). The 128-bit registers hold
// two float64 lanes, so the Equation 3–4 solver runs with the FP64
// vector geometry and the micro-kernel uses Vec2D accumulators; the
// loop structure, on-the-fly filter transform and packing follow the
// FP32 path.

// TryConv2D64 convolves a float64 NCHW input with a KCRS filter,
// returning a freshly allocated NKPQ output. Threads follow
// opt.Threads; the remaining Options knobs (tiles, epilogues) apply
// only to the FP32 path. Checked variant: validation failures return
// errors; a faulting worker is logged and the result recomputed with
// the Reference64 oracle.
func TryConv2D64(s conv.Shape, in, filter []float64, opt Options) ([]float64, error) {
	return TryConv2D64Ctx(context.Background(), s, in, filter, opt)
}

// TryConv2D64Ctx is the context-bounded form of TryConv2D64 with the
// deadline semantics of Plan.TryExecuteCtx: on expiry the parallel
// row loop is abandoned and the error wraps conv.ErrDeadline, unless
// Options.FallbackBudget grants the Reference64 recompute time to
// finish (the oracle polls its deadline between output rows).
func TryConv2D64Ctx(ctx context.Context, s conv.Shape, in, filter []float64, opt Options) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opt.Threads > maxThreads {
		return nil, fmt.Errorf("%w: Threads=%d exceeds %d", ErrBadOptions, opt.Threads, maxThreads)
	}
	if want := s.N * s.C * s.H * s.W; len(in) != want {
		return nil, fmt.Errorf("%w: fp64 input length %d, want %d", conv.ErrDimMismatch, len(in), want)
	}
	if want := s.K * s.C * s.R * s.S; len(filter) != want {
		return nil, fmt.Errorf("%w: fp64 filter length %d, want %d", conv.ErrDimMismatch, len(filter), want)
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	rt := model.NEONFP64.SolveRegisterTile(s.S, s.Str)
	plat := genericPlatform
	if opt.Platform != nil {
		plat = *opt.Platform
	}
	// Equation 1–2 with 8-byte elements: halve the float capacity.
	halved := plat
	halved.L1.SizeBytes /= 2
	halved.L2.SizeBytes /= 2
	ct := model.SolveCacheTiles(halved, s, rt)

	p, q := s.P(), s.Q()
	out := make([]float64, s.N*s.K*p*q)
	wIn := (rt.Vw-1)*s.Str + s.S
	kBlocks := (s.K + rt.Vk - 1) / rt.Vk

	// Parallelise over (n, output-row) pairs: every worker owns whole
	// output rows, so no two workers share an accumulation target.
	err := parallel.ForRangeCtx(ctx, s.N*p, threads, func(_ int, rows parallel.Range) {
		tf := make([]float64, kBlocks*rt.Vk*ct.Tc*s.R*s.S)
		buf := make([]float64, ct.Tc*s.R*wIn)
		acc := make([]simd.Vec2D, rt.Vw*rt.Vk/simd.WidthF64)
		for row := rows.Lo; row < rows.Hi; row++ {
			n, oh := row/p, row%p
			for cIdx := 0; cIdx < s.C; cIdx += ct.Tc {
				tcEff := min(ct.Tc, s.C-cIdx)
				firstC := cIdx == 0
				transformFilter64(filter, tf, s, 0, s.K, cIdx, tcEff, rt.Vk)
				for qt0 := 0; qt0 < q; qt0 += rt.Vw {
					vwEff := min(rt.Vw, q-qt0)
					pack64(in, buf, s, n, oh, qt0, cIdx, tcEff, wIn)
					for kb := 0; kb < kBlocks; kb++ {
						clear(acc)
						kernel64(acc, buf, tf[kb*tcEff*s.R*s.S*rt.Vk:], tcEff, s.R, s.S, s.Str, vwEff, wIn, rt.Vk)
						store64(acc, out, s, n, kb*rt.Vk, oh, qt0, vwEff, rt.Vk, firstC)
					}
				}
			}
		}
	})
	if err != nil {
		fctx, cancel, derr := fallbackCtx(ctx, err, opt)
		if derr != nil {
			return nil, derr
		}
		defer cancel()
		Logf("core: fp64 parallel path faulted on %v; recomputing on reference path: %v", s, err)
		var refErr error
		if perr := parallel.Protect(func() { out, refErr = reference64Ctx(fctx, s, in, filter) }); perr != nil {
			return nil, fmt.Errorf("%w: %v", ErrExecFault, perr)
		}
		if refErr != nil {
			return nil, refErr
		}
	}
	return out, nil
}

// Conv2D64 is the panicking wrapper over TryConv2D64.
func Conv2D64(s conv.Shape, in, filter []float64, opt Options) []float64 {
	out, err := TryConv2D64(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}

// transformFilter64 is the FP64 filter blocking KCRS →
// ⌈K/Vk⌉·tc·R·S·Vk for the channel tile [ct, ct+tc).
func transformFilter64(filter, dst []float64, s conv.Shape, kt, tk, cIdx, tc, vk int) {
	rs := s.R * s.S
	kBlocks := (tk + vk - 1) / vk
	for kb := 0; kb < kBlocks; kb++ {
		for cv := 0; cv < tc; cv++ {
			srcC := (cIdx + cv) * rs
			dstBase := ((kb*tc + cv) * rs) * vk
			for x := 0; x < rs; x++ {
				d := dstBase + x*vk
				for lane := 0; lane < vk; lane++ {
					kk := kt + kb*vk + lane
					if kk < kt+tk {
						dst[d+lane] = filter[kk*s.C*rs+srcC+x]
					} else {
						dst[d+lane] = 0
					}
				}
			}
		}
	}
}

// pack64 gathers the FP64 input micro-panel with zero halos.
func pack64(in, buf []float64, s conv.Shape, n, oh, qt0, cIdx, tc, wIn int) {
	ihBase := oh*s.Str - s.Pad
	iwBase := qt0*s.Str - s.Pad
	for cv := 0; cv < tc; cv++ {
		chanBase := ((n*s.C + cIdx + cv) * s.H) * s.W
		for r := 0; r < s.R; r++ {
			dst := buf[(cv*s.R+r)*wIn : (cv*s.R+r+1)*wIn]
			ih := ihBase + r
			if ih < 0 || ih >= s.H {
				clear(dst)
				continue
			}
			src := in[chanBase+ih*s.W : chanBase+(ih+1)*s.W]
			x := 0
			for ; x < len(dst) && iwBase+x < 0; x++ {
				dst[x] = 0
			}
			end := len(dst)
			if iwBase+end > s.W {
				end = s.W - iwBase
			}
			if end > x {
				copy(dst[x:end], src[iwBase+x:iwBase+end])
				x = end
			}
			for ; x < len(dst); x++ {
				dst[x] = 0
			}
		}
	}
}

// kernel64 is the FP64 outer-product micro-kernel (Vec2D lanes).
func kernel64(acc []simd.Vec2D, buf, tf []float64, tc, r, ss, str, vwEff, wIn, vk int) {
	jn := vk / simd.WidthF64
	var fregs [32]simd.Vec2D
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			row := buf[(cv*r+rr)*wIn : (cv*r+rr)*wIn+wIn]
			fb := (cv*r + rr) * ss * vk
			for sv := 0; sv < ss; sv++ {
				fs := tf[fb+sv*vk : fb+(sv+1)*vk]
				for j := 0; j < jn; j++ {
					fregs[j] = simd.Load2D(fs[j*simd.WidthF64:])
				}
				x := sv
				for ow := 0; ow < vwEff; ow++ {
					v := row[x]
					base := ow * jn
					for j := 0; j < jn; j++ {
						acc[base+j] = acc[base+j].FMAScalar(fregs[j], v)
					}
					x += str
				}
			}
		}
	}
}

// store64 writes the register tile into the NKPQ output, assigning on
// the first channel tile and accumulating afterwards.
func store64(acc []simd.Vec2D, out []float64, s conv.Shape, n, kBase, oh, qt0, vwEff, vk int, firstC bool) {
	p, q := s.P(), s.Q()
	jn := vk / simd.WidthF64
	kEnd := min(kBase+vk, s.K)
	for k := kBase; k < kEnd; k++ {
		j, lane := (k-kBase)/simd.WidthF64, (k-kBase)%simd.WidthF64
		rowB := ((n*s.K+k)*p + oh) * q
		for ow := 0; ow < vwEff; ow++ {
			v := acc[ow*jn+j].Lane(lane)
			if firstC {
				out[rowB+qt0+ow] = v
			} else {
				out[rowB+qt0+ow] += v
			}
		}
	}
}

// Reference64 is the float64 naive oracle (Algorithm 1).
func Reference64(s conv.Shape, in, filter []float64) []float64 {
	out, err := reference64Ctx(context.Background(), s, in, filter)
	if err != nil {
		panic(err) // unreachable: Background never expires
	}
	return out
}

// reference64Ctx is Reference64 bounded by ctx, polled between output
// rows like conv.ReferenceCtx.
func reference64Ctx(ctx context.Context, s conv.Shape, in, filter []float64) ([]float64, error) {
	p, q := s.P(), s.Q()
	poll := ctx.Done() != nil
	out := make([]float64, s.N*s.K*p*q)
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			for oj := 0; oj < p; oj++ {
				if poll && ctx.Err() != nil {
					return nil, deadlineErr(ctx)
				}
				for oi := 0; oi < q; oi++ {
					var acc float64
					for c := 0; c < s.C; c++ {
						for r := 0; r < s.R; r++ {
							ih := oj*s.Str - s.Pad + r
							if ih < 0 || ih >= s.H {
								continue
							}
							for ss := 0; ss < s.S; ss++ {
								iw := oi*s.Str - s.Pad + ss
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += in[((n*s.C+c)*s.H+ih)*s.W+iw] *
									filter[((k*s.C+c)*s.R+r)*s.S+ss]
							}
						}
					}
					out[((n*s.K+k)*p+oj)*q+oi] = acc
				}
			}
		}
	}
	return out, nil
}
