package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// waitNoLeakedWorkers polls parallel.LeakedWorkers to zero so a
// deadline test cannot leave stragglers behind for its successors.
func waitNoLeakedWorkers(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if parallel.LeakedWorkers() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("leaked workers never drained: %d", parallel.LeakedWorkers())
}

// An already-expired context must fail before any work is spawned,
// classifying as both ErrDeadline and the context cause.
func TestTryExecuteCtxAlreadyExpired(t *testing.T) {
	s := faultShape()
	in, filter := faultOperands(s)
	plan := NewPlan(s, Options{Threads: 2})
	out := s.NewOutput()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	err := plan.TryExecuteCtx(ctx, in, filter, out)
	if !errors.Is(err, conv.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must wrap context.DeadlineExceeded", err)
	}
}

// The acceptance scenario: with worker-stall armed, a 100ms budget
// must surface an ErrDeadline/DeadlineExceeded error within ~2× the
// budget instead of blocking forever.
func TestTryExecuteCtxAbandonsStalledGrid(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)

	faultinject.Arm(faultinject.WorkerStall, 0)
	const budget = 100 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	start := time.Now()
	_, err := TryConv2DCtx(ctx, s, in, filter, Options{Threads: 4})
	elapsed := time.Since(start)

	if !errors.Is(err, conv.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadline wrapping DeadlineExceeded", err)
	}
	if elapsed > 2*budget {
		t.Fatalf("returned after %v, want ≲2×%v", elapsed, budget)
	}
	if parallel.LeakedWorkers() == 0 {
		t.Fatal("the stalled worker must be accounted as leaked")
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// With a FallbackBudget, a deadline-abandoned run recomputes on the
// reference path and returns a correct result with a nil error.
func TestTryExecuteCtxFallsBackToReferenceWithinBudget(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	got, err := TryConv2DCtx(ctx, s, in, filter,
		Options{Threads: 4, FallbackBudget: 10 * time.Second})
	if err != nil {
		t.Fatalf("fallback within budget must succeed: %v", err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("fallback output diverges from reference: rel diff %g", d)
	}
	if !strings.Contains(logged(), "recomputing on reference path") {
		t.Fatal("the deadline fallback must be logged")
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// The deadline fallback must publish its result through a fresh
// backing array: the abandoned grid's stragglers still hold the old
// one and may store tiles into it whenever they resume, so reusing it
// could corrupt a nil-error result.
func TestDeadlineFallbackPublishesFreshArray(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)
	plan := NewPlan(s, Options{Threads: 4, FallbackBudget: 10 * time.Second})
	out := s.NewOutput()
	old := out.Data

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := plan.TryExecuteCtx(ctx, in, filter, out); err != nil {
		t.Fatalf("fallback within budget must succeed: %v", err)
	}
	if len(out.Data) > 0 && &out.Data[0] == &old[0] {
		t.Fatal("fallback reused the abandoned grid's backing array")
	}
	if d := tensor.RelDiff(want, out); d > 1e-7 {
		t.Fatalf("fallback output diverges from reference: rel diff %g", d)
	}
	// Release the straggler: whatever it scribbles on the old array,
	// the returned tensor must stay correct.
	faultinject.Reset()
	waitNoLeakedWorkers(t)
	if d := tensor.RelDiff(want, out); d > 1e-7 {
		t.Fatalf("resumed straggler corrupted the result: rel diff %g", d)
	}
}

// A context that is already expired at the call boundary still gets
// the documented FallbackBudget recompute instead of a fast-fail
// error.
func TestTryExecuteCtxExpiredContextStillFallsBack(t *testing.T) {
	captureLog(t)
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)
	plan := NewPlan(s, Options{Threads: 2, FallbackBudget: 10 * time.Second})
	out := s.NewOutput()

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	if err := plan.TryExecuteCtx(ctx, in, filter, out); err != nil {
		t.Fatalf("FallbackBudget must cover the already-expired boundary: %v", err)
	}
	if d := tensor.RelDiff(want, out); d > 1e-7 {
		t.Fatalf("boundary fallback diverges from reference: rel diff %g", d)
	}
}

// The depthwise and grouped drivers must run their budgeted sequential
// fallback on a fresh tensor (the abandoned workers captured the old
// one) and still return a correct result.
func TestDepthwiseGroupedFallbackFreshOutput(t *testing.T) {
	captureLog(t)
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}

	t.Run("depthwise", func(t *testing.T) {
		defer faultinject.Reset()
		in := s.NewInput()
		in.FillRandom(1)
		filter := tensor.New(s.C, s.R, s.S)
		filter.FillRandom(2)
		want, err := TryDepthwiseConv2D(s, in, filter, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		got, err := TryDepthwiseConv2DCtx(ctx, s, in, filter,
			Options{Threads: 4, FallbackBudget: 10 * time.Second})
		if err != nil {
			t.Fatalf("bounded depthwise fallback must succeed: %v", err)
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
		if d := tensor.RelDiff(want, got); d > 1e-7 {
			t.Fatalf("depthwise fallback diverges: rel diff %g", d)
		}
	})

	t.Run("grouped", func(t *testing.T) {
		defer faultinject.Reset()
		in := s.NewInput()
		in.FillRandom(3)
		filter := tensor.New(s.K, s.C/2, s.R, s.S)
		filter.FillRandom(4)
		want, err := TryGroupedConv2D(s, 2, in, filter, Options{Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		got, err := TryGroupedConv2DCtx(ctx, s, 2, in, filter,
			Options{Threads: 4, FallbackBudget: 10 * time.Second})
		if err != nil {
			t.Fatalf("bounded grouped fallback must succeed: %v", err)
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
		if d := tensor.RelDiff(want, got); d > 1e-7 {
			t.Fatalf("grouped fallback diverges: rel diff %g", d)
		}
	})
}

// A deadline-abandoned run's stragglers can drain after a newer run
// already completed; their partial stats must not overwrite the newer
// run's LastStats snapshot.
func TestStragglerStatsDoNotOverwriteNewerRun(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	plan := NewPlan(s, Options{Threads: 4, CollectStats: true})

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	out := s.NewOutput()
	if err := plan.TryExecuteCtx(ctx, in, filter, out); !errors.Is(err, conv.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// A newer run completes while the abandoned run's straggler is
	// still stalled.
	out2 := s.NewOutput()
	if err := plan.TryExecute(in, filter, out2); err != nil {
		t.Fatal(err)
	}
	snap := plan.LastStats()
	// Release the straggler: its late drain must not replace the newer
	// snapshot with the abandoned run's partial stats.
	faultinject.Reset()
	waitNoLeakedWorkers(t)
	time.Sleep(100 * time.Millisecond) // let the detached drain fire
	if got := plan.LastStats(); got != snap {
		t.Fatalf("stale straggler stats overwrote the newer run: got %+v, want %+v", got, snap)
	}
}

// An exhausted FallbackBudget reports the original deadline error
// rather than hanging in the sequential oracle.
func TestTryExecuteCtxFallbackBudgetExhausted(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	// Large enough that the naive oracle cannot finish in a nanosecond.
	s := conv.Shape{N: 1, C: 32, H: 28, W: 28, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := faultOperands(s)

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := TryConv2DCtx(ctx, s, in, filter,
		Options{Threads: 4, FallbackBudget: time.Nanosecond})
	if !errors.Is(err, conv.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the original deadline error", err)
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// Deadline semantics reach the NHWC entry point too.
func TestTryExecuteNHWCCtxDeadline(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := TryConv2DNHWCCtx(ctx, s, tensor.NCHWToNHWC(in), filter, Options{Threads: 4})
	if !errors.Is(err, conv.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}

// The sibling drivers share the deadline classification.
func TestSiblingDriversDeadline(t *testing.T) {
	captureLog(t)
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}

	t.Run("depthwise", func(t *testing.T) {
		defer faultinject.Reset()
		in := s.NewInput()
		in.FillRandom(1)
		filter := tensor.New(s.C, s.R, s.S)
		filter.FillRandom(2)
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := TryDepthwiseConv2DCtx(ctx, s, in, filter, Options{Threads: 4})
		if !errors.Is(err, conv.ErrDeadline) || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want ErrDeadline wrapping DeadlineExceeded", err)
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
	})

	t.Run("grouped", func(t *testing.T) {
		defer faultinject.Reset()
		in := s.NewInput()
		in.FillRandom(3)
		filter := tensor.New(s.K, s.C/2, s.R, s.S)
		filter.FillRandom(4)
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := TryGroupedConv2DCtx(ctx, s, 2, in, filter, Options{Threads: 4})
		if !errors.Is(err, conv.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
	})

	t.Run("fp64", func(t *testing.T) {
		defer faultinject.Reset()
		in := make([]float64, s.N*s.C*s.H*s.W)
		filter := make([]float64, s.K*s.C*s.R*s.S)
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_, err := TryConv2D64Ctx(ctx, s, in, filter, Options{Threads: 4})
		if !errors.Is(err, conv.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
	})

	t.Run("int16-fallback", func(t *testing.T) {
		logged := captureLog(t)
		defer faultinject.Reset()
		in := make([]int16, s.N*s.C*s.H*s.W)
		filter := make([]int16, s.K*s.C*s.R*s.S)
		for i := range in {
			in[i] = int16(i%15) - 7
		}
		for i := range filter {
			filter[i] = int16(i%9) - 4
		}
		want := ReferenceInt16(s, in, filter)
		faultinject.Arm(faultinject.WorkerStall, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		got, err := TryConv2DInt16Ctx(ctx, s, in, filter,
			Options{Threads: 4, FallbackBudget: 10 * time.Second})
		if err != nil {
			t.Fatalf("bounded fallback must succeed: %v", err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("element %d = %d, want %d", i, got[i], want[i])
			}
		}
		if logged() == "" {
			t.Fatal("the fallback must be logged")
		}
		faultinject.Reset()
		waitNoLeakedWorkers(t)
	})
}

// A negative FallbackBudget is a validation error, not a silent no-op.
func TestNegativeFallbackBudgetRejected(t *testing.T) {
	s := faultShape()
	if _, err := TryNewPlan(s, Options{FallbackBudget: -time.Second}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("err = %v, want ErrBadOptions", err)
	}
}

// Regression test for the Plan.Stats write-write race: two concurrent
// TryExecutes on one plan with CollectStats must be race-clean (the
// -race build of `make check` enforces this) and leave a consistent
// final snapshot.
func TestConcurrentExecuteStatsRace(t *testing.T) {
	s := faultShape()
	in, filter := faultOperands(s)
	plan := NewPlan(s, Options{Threads: 2, CollectStats: true})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := s.NewOutput()
			for r := 0; r < 4; r++ {
				if err := plan.TryExecute(in, filter, out); err != nil {
					t.Errorf("TryExecute: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := plan.LastStats(); st.KernelSec <= 0 {
		t.Fatalf("final stats snapshot empty: %+v", st)
	}
}

// CheckNumerics must catch an injected NaN even when that is the only
// armed fault, repair it via the reference path, and guarantee an
// all-finite output on nil error.
func TestCheckNumericsCatchesNaNPoison(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)

	faultinject.Arm(faultinject.NaNPoison, 5)
	got, err := TryConv2D(s, in, filter, Options{Threads: 2, CheckNumerics: true})
	if err != nil {
		t.Fatalf("repairable poison must not fail: %v", err)
	}
	if d := tensor.RelDiff(want, got); d > 1e-7 {
		t.Fatalf("poison not repaired: rel diff %g", d)
	}
	if _, bad := scanNonFinite(got.Data); bad {
		t.Fatal("CheckNumerics returned a non-finite output with nil error")
	}
	if !strings.Contains(logged(), "recomputing on reference path") {
		t.Fatal("the repair must be logged")
	}
}

// A genuinely non-finite input cannot be repaired: CheckNumerics must
// surface ErrExecFault instead of returning a poisoned tensor.
func TestCheckNumericsRejectsNonFiniteInput(t *testing.T) {
	captureLog(t)
	s := faultShape()
	in, filter := faultOperands(s)
	in.Data[3] = float32(math.NaN())

	_, err := TryConv2D(s, in, filter, Options{Threads: 2, CheckNumerics: true})
	if !errors.Is(err, ErrExecFault) {
		t.Fatalf("err = %v, want ErrExecFault", err)
	}
}

// Without CheckNumerics (and without injection) no scan runs: the NaN
// propagates, preserving the zero-overhead production default.
func TestNoCheckNumericsSkipsScan(t *testing.T) {
	s := faultShape()
	in, filter := faultOperands(s)
	in.Data[3] = float32(math.NaN())

	got, err := TryConv2D(s, in, filter, Options{Threads: 2})
	if err != nil {
		t.Fatalf("unchecked run must not fail: %v", err)
	}
	if _, bad := scanNonFinite(got.Data); !bad {
		t.Fatal("NaN input should propagate when no scan is requested")
	}
}

// The one-shot ctx entry points mirror their plan-level counterparts.
func TestTryConv2DCtxOneShotEntryPoints(t *testing.T) {
	s := faultShape()
	in, filter := faultOperands(s)
	want := conv.Reference(s, in, filter)

	got, err := TryConv2DCtx(context.Background(), s, in, filter, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(want, got); d > 5e-5 {
		t.Fatalf("rel diff %g", d)
	}
	nhwc, err := TryConv2DNHWCCtx(context.Background(), s, tensor.NCHWToNHWC(in), filter, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.RelDiff(tensor.NCHWToNHWC(want), nhwc); d > 5e-5 {
		t.Fatalf("NHWC rel diff %g", d)
	}
}

// TryConv3DCtx threads the deadline through the per-slice executions.
func TestTryConv3DCtxDeadline(t *testing.T) {
	captureLog(t)
	defer faultinject.Reset()
	s3 := Shape3D{
		Shape: conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1},
		D:     4, T: 3, StrD: 1, PadD: 1,
	}
	in := tensor.New(s3.N, s3.C, s3.D, s3.H, s3.W)
	in.FillRandom(5)
	filter := tensor.New(s3.K, s3.C, s3.T, s3.R, s3.S)
	filter.FillRandom(6)

	faultinject.Arm(faultinject.WorkerStall, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := TryConv3DCtx(ctx, s3, in, filter, Options{Threads: 4})
	if err == nil {
		t.Fatal("a stalled slice must abort the 3-D decomposition")
	}
	if !errors.Is(err, conv.ErrDeadline) && !errors.Is(err, ErrExecFault) {
		t.Fatalf("err = %v, want ErrDeadline (or a snapshot-less accumulate fault)", err)
	}
	faultinject.Reset()
	waitNoLeakedWorkers(t)
}
