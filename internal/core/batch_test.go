package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// fillInts fills t with small integers so every execution path —
// optimised, degraded, reference fallback — produces bit-identical
// float32 results (all partial sums exactly representable).
func fillInts(t *tensor.Tensor, seed int64) {
	x := uint64(seed)*2654435761 + 12345
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = float32(int64(x>>33)%7 - 3)
	}
}

// batchOperands builds m requests of shape s (per-request batch dims
// given by perN) with distinct random contents, plus solo-executed
// expected outputs for each. ints selects integer-valued operands for
// tests that cross between the tiled path and the reference oracle.
func batchOperands(t *testing.T, s conv.Shape, perN []int, opts Options, nchw, ints bool) (ins, solos []*tensor.Tensor, filter *tensor.Tensor) {
	t.Helper()
	filter = s.NewFilter()
	if ints {
		fillInts(filter, 7)
	} else {
		filter.FillRandom(7)
	}
	for i, ni := range perN {
		si := s.WithBatch(ni)
		var in, out *tensor.Tensor
		if nchw {
			in = si.NewInput()
			out = si.NewOutput()
		} else {
			in = tensor.New(ni, si.H, si.W, si.C)
			out = tensor.New(ni, si.P(), si.Q(), si.K)
		}
		if ints {
			fillInts(in, int64(100+i))
		} else {
			in.FillRandom(int64(100 + i))
		}
		p := NewPlan(si, opts)
		var err error
		if nchw {
			err = p.TryExecute(in, filter, out)
		} else {
			err = p.TryExecuteNHWC(in, filter, out)
		}
		if err != nil {
			t.Fatalf("solo execute (request %d): %v", i, err)
		}
		ins = append(ins, in)
		solos = append(solos, out)
	}
	return ins, solos, filter
}

func newBatchOuts(s conv.Shape, perN []int, nchw bool) []*tensor.Tensor {
	var outs []*tensor.Tensor
	for _, ni := range perN {
		si := s.WithBatch(ni)
		if nchw {
			outs = append(outs, si.NewOutput())
		} else {
			outs = append(outs, tensor.New(ni, si.P(), si.Q(), si.K))
		}
	}
	return outs
}

func wantBitExact(t *testing.T, outs, solos []*tensor.Tensor, label string) {
	t.Helper()
	for i := range outs {
		for j, v := range outs[i].Data {
			if v != solos[i].Data[j] {
				t.Fatalf("%s: request %d element %d: batched %v != solo %v", label, i, j, v, solos[i].Data[j])
			}
		}
	}
}

func batchTotal(perN []int) int {
	total := 0
	for _, n := range perN {
		total += n
	}
	return total
}

// Batched execution must be bit-identical to solo execution of each
// request — for arbitrary float inputs, because the cache/register
// tile solvers are independent of N, so per-image loop and
// accumulation order are unchanged by coalescing. Covers the 3×3
// specialised kernel, the pointwise kernel, ragged per-request batch
// dims, unpacked and packed weights, NCHW and NHWC, multi-threaded
// grids, and the fused epilogue.
func TestBatchBitExactMatchesSolo(t *testing.T) {
	cases := []struct {
		name string
		s    conv.Shape
		perN []int
		opts Options
		nchw bool
	}{
		{"3x3-nchw", conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			[]int{1, 1, 1, 1}, Options{Threads: 1}, true},
		{"3x3-ragged", conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			[]int{1, 2, 1}, Options{Threads: 1}, true},
		{"1x1-nchw", conv.Shape{N: 1, C: 16, H: 7, W: 7, K: 8, R: 1, S: 1, Str: 1, Pad: 0},
			[]int{1, 1, 1}, Options{Threads: 1}, true},
		{"3x3-nhwc", conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			[]int{1, 1, 1, 1}, Options{Threads: 1}, false},
		{"3x3-threads", conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
			[]int{1, 1, 1, 1}, Options{Threads: 4}, true},
		{"3x3-epilogue", conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
			[]int{1, 1, 1, 1}, Options{Threads: 1, FusedEpilogue: testEpilogue(8, true, true, true)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ins, solos, filter := batchOperands(t, tc.s, tc.perN, tc.opts, tc.nchw, false)
			bs := tc.s.WithBatch(batchTotal(tc.perN))
			bp := NewPlan(bs, tc.opts)

			outs := newBatchOuts(tc.s, tc.perN, tc.nchw)
			var err error
			if tc.nchw {
				err = bp.TryExecuteBatchCtx(context.Background(), ins, filter, outs)
			} else {
				err = bp.TryExecuteBatchNHWCCtx(context.Background(), ins, filter, outs)
			}
			if err != nil {
				t.Fatalf("batched execute: %v", err)
			}
			wantBitExact(t, outs, solos, "unpacked")

			pf, err := bp.TransformFilter(filter)
			if err != nil {
				t.Fatalf("TransformFilter: %v", err)
			}
			outs = newBatchOuts(tc.s, tc.perN, tc.nchw)
			if tc.nchw {
				err = bp.TryExecuteBatchPackedCtx(context.Background(), ins, pf, outs)
			} else {
				err = bp.TryExecuteBatchPackedNHWCCtx(context.Background(), ins, pf, outs)
			}
			if err != nil {
				t.Fatalf("batched packed execute: %v", err)
			}
			wantBitExact(t, outs, solos, "packed")
		})
	}
}

// Batch validation must reject mismatched request sets before any
// execution: wrong image total, empty sets, and per-request operand
// mismatches all fail typed with ErrBadOptions / conv sentinels.
func TestBatchValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	perN := []int{1, 1}
	ins, _, filter := batchOperands(t, s, perN, Options{Threads: 1}, true, true)
	outs := newBatchOuts(s, perN, true)

	bp3 := NewPlan(s.WithBatch(3), Options{Threads: 1})
	if err := bp3.TryExecuteBatchCtx(context.Background(), ins, filter, outs); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("image total mismatch must fail with ErrBadOptions, got %v", err)
	}
	bp2 := NewPlan(s.WithBatch(2), Options{Threads: 1})
	if err := bp2.TryExecuteBatchCtx(context.Background(), nil, filter, nil); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("empty batch must fail with ErrBadOptions, got %v", err)
	}
	if err := bp2.TryExecuteBatchCtx(context.Background(), ins, filter, outs[:1]); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("ins/outs length mismatch must fail with ErrBadOptions, got %v", err)
	}
	badIn := tensor.New(1, 4, 8, 8) // wrong channel count
	if err := bp2.TryExecuteBatchCtx(context.Background(), []*tensor.Tensor{ins[0], badIn}, filter, outs); !errors.Is(err, conv.ErrDimMismatch) {
		t.Fatalf("bad request operand must fail with ErrDimMismatch, got %v", err)
	}
}

// A fault on the batched grid (injected packed-weight corruption, NaN
// poisoning) must recover per request on the reference path: every
// caller still receives a bit-exact output and a nil error.
func TestBatchFaultFallsBackPerRequest(t *testing.T) {
	logged := captureLog(t)
	defer faultinject.Reset()
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	perN := []int{1, 1, 1}
	ins, solos, filter := batchOperands(t, s, perN, Options{Threads: 1}, true, true)
	bp := NewPlan(s.WithBatch(3), Options{Threads: 1})
	pf, err := bp.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}

	faultinject.Arm(faultinject.PackedCorrupt, 5)
	outs := newBatchOuts(s, perN, true)
	if err := bp.TryExecuteBatchPackedCtx(context.Background(), ins, pf, outs); err != nil {
		t.Fatalf("batched path must degrade, not fail: %v", err)
	}
	wantBitExact(t, outs, solos, "packed-corrupt")

	faultinject.Arm(faultinject.NaNPoison, 3)
	outs = newBatchOuts(s, perN, true)
	if err := bp.TryExecuteBatchPackedCtx(context.Background(), ins, pf, outs); err != nil {
		t.Fatalf("batched path must degrade, not fail: %v", err)
	}
	wantBitExact(t, outs, solos, "nan-poison")
	if logged() == "" {
		t.Fatal("fault fallback must be logged")
	}
}

// Deadline semantics over a batch: an expired context without a
// fallback budget fails typed with conv.ErrDeadline; with
// FallbackBudget every request's result is recomputed on the reference
// path and republished through fresh arrays (stragglers may still
// write the originals).
func TestBatchDeadline(t *testing.T) {
	defer captureLog(t)
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	perN := []int{1, 1}
	ins, solos, filter := batchOperands(t, s, perN, Options{Threads: 1}, true, true)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	bp := NewPlan(s.WithBatch(2), Options{Threads: 1})
	outs := newBatchOuts(s, perN, true)
	if err := bp.TryExecuteBatchCtx(ctx, ins, filter, outs); !errors.Is(err, conv.ErrDeadline) {
		t.Fatalf("expired ctx without FallbackBudget must fail with ErrDeadline, got %v", err)
	}

	bpf := NewPlan(s.WithBatch(2), Options{Threads: 1, FallbackBudget: 5 * time.Second})
	outs = newBatchOuts(s, perN, true)
	orig := make([][]float32, len(outs))
	for i := range outs {
		orig[i] = outs[i].Data
	}
	if err := bpf.TryExecuteBatchCtx(ctx, ins, filter, outs); err != nil {
		t.Fatalf("FallbackBudget must rescue the batch: %v", err)
	}
	wantBitExact(t, outs, solos, "deadline-fallback")
	for i := range outs {
		if &outs[i].Data[0] == &orig[i][0] {
			t.Fatalf("request %d: deadline fallback must publish through a fresh array", i)
		}
	}
}
