package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
)

func randInt16(n int, seed int64, bound int16) []int16 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(rng.Intn(int(2*bound+1))) - bound
	}
	return out
}

func checkInt16(t *testing.T, s conv.Shape) {
	t.Helper()
	in := randInt16(s.N*s.C*s.H*s.W, int64(s.C), 127)
	filter := randInt16(s.K*s.C*s.R*s.S, int64(s.K), 127)
	want := ReferenceInt16(s, in, filter)
	got := Conv2DInt16(s, in, filter, Options{Threads: 2})
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%v: mismatch at %d: %d vs %d", s, i, got[i], want[i])
		}
	}
}

func TestConv2DInt16BitExact(t *testing.T) {
	// Integer addition is associative: the tiled kernel must be
	// bit-identical to the naive oracle.
	checkInt16(t, conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkInt16(t, conv.Shape{N: 2, C: 4, H: 10, W: 10, K: 8, R: 1, S: 1, Str: 1, Pad: 0})
	checkInt16(t, conv.Shape{N: 1, C: 4, H: 14, W: 14, K: 8, R: 3, S: 3, Str: 2, Pad: 1})
	checkInt16(t, conv.Shape{N: 1, C: 3, H: 16, W: 16, K: 8, R: 7, S: 7, Str: 2, Pad: 3})
	checkInt16(t, conv.Shape{N: 1, C: 5, H: 7, W: 9, K: 11, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestConv2DInt16RegisterTileGeometry(t *testing.T) {
	// The 8-lane int16 geometry must produce a lane-aligned tile
	// within budget.
	rt := int16Geometry.SolveRegisterTile(3, 1)
	if rt.Vw%8 != 0 || rt.Vk%8 != 0 || rt.Registers > 32 {
		t.Fatalf("int16 tile %v invalid", rt)
	}
}

func TestConv2DInt16ThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := randInt16(s.N*s.C*s.H*s.W, 1, 100)
	filter := randInt16(s.K*s.C*s.R*s.S, 2, 100)
	a := Conv2DInt16(s, in, filter, Options{Threads: 1})
	b := Conv2DInt16(s, in, filter, Options{Threads: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("int16 threading changed result")
		}
	}
}

func TestConv2DInt16Validation(t *testing.T) {
	s := conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short filter")
		}
	}()
	Conv2DInt16(s, make([]int16, s.N*s.C*s.H*s.W), make([]int16, 3), Options{})
}

// Property: exactness over random quantised draws (the int32 contract
// |x|,|w| ≤ 127 with C·R·S ≤ 2¹⁵ keeps accumulators far from wrap).
func TestConv2DInt16RandomProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw uint8, seed int64) bool {
		s := conv.Shape{
			N: 1, C: int(cRaw)%9 + 1,
			H: int(hRaw)%8 + 4, W: int(hRaw)%10 + 4,
			K: int(kRaw)%17 + 1, R: 3, S: 3, Str: 1, Pad: 1,
		}
		in := randInt16(s.N*s.C*s.H*s.W, seed, 127)
		filter := randInt16(s.K*s.C*s.R*s.S, seed+1, 127)
		want := ReferenceInt16(s, in, filter)
		got := Conv2DInt16(s, in, filter, Options{Threads: 2})
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
