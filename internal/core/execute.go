package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// TryExecute runs the plan on an NCHW input and KCRS filter, writing
// the NKPQ output in place (out is fully overwritten; it need not be
// zeroed). Validation failures return errors wrapping
// conv.ErrDimMismatch; execution faults (a recovered worker panic, an
// injected numerical corruption) are logged via Logf and the result is
// recomputed on the naive reference path — a nil error always means a
// correct output.
func (p *Plan) TryExecute(in, filter, out *tensor.Tensor) error {
	return p.TryExecuteCtx(context.Background(), in, filter, out)
}

// TryExecuteCtx is TryExecute bounded by ctx. When the context expires
// or is canceled before the worker grid finishes, the driver raises
// the grid's cooperative stop flag, abandons the join (a wedged worker
// goroutine is leaked deliberately and accounted in
// parallel.LeakedWorkers until it terminates) and returns an error
// wrapping conv.ErrDeadline plus the context's cause, so
// errors.Is(err, context.DeadlineExceeded) classifies a blown budget.
// With Options.FallbackBudget > 0 the driver instead spends up to that
// extra budget recomputing the result on the naive reference path,
// returning a correct output and a nil error when it finishes in time.
// Because abandoned workers may still store tiles into the array they
// captured whenever they resume, the fallback result is published by
// swapping a freshly allocated array into out.Data — callers holding
// an alias of the previous backing slice must re-read out.Data after a
// deadline fallback. A context without a deadline or cancellation
// behaves exactly like TryExecute (same join, no extra goroutines).
func (p *Plan) TryExecuteCtx(ctx context.Context, in, filter, out *tensor.Tensor) error {
	if err := conv.ValidateOperands(p.Shape, in, filter); err != nil {
		return err
	}
	if err := conv.ValidateOutput(p.Shape, out); err != nil {
		return err
	}
	return p.execChecked(ctx, in, filter, nil, out, true, false)
}

// TryExecutePacked runs the plan with a pre-transformed filter (see
// TransformFilter) in place of the on-the-fly transform of Algorithm 2
// line 5: the worker loop reads the persistent blocked weights
// directly and Stats.TransformSec is zero. Results are bit-identical
// to TryExecute with the packed filter's source weights. The packed
// geometry must match the plan (CompatibleWith); a mismatch returns an
// error wrapping ErrBadOptions.
func (p *Plan) TryExecutePacked(in *tensor.Tensor, pf *PackedFilter, out *tensor.Tensor) error {
	return p.TryExecutePackedCtx(context.Background(), in, pf, out)
}

// TryExecutePackedCtx is TryExecutePacked bounded by ctx; deadline
// semantics follow TryExecuteCtx (the reference fallback recomputes
// from the packed filter's source KCRS weights).
func (p *Plan) TryExecutePackedCtx(ctx context.Context, in *tensor.Tensor, pf *PackedFilter, out *tensor.Tensor) error {
	if err := pf.validateFor(p); err != nil {
		return err
	}
	if err := conv.ValidateOperands(p.Shape, in, pf.src); err != nil {
		return err
	}
	if err := conv.ValidateOutput(p.Shape, out); err != nil {
		return err
	}
	return p.execChecked(ctx, in, pf.src, pf, out, true, false)
}

// TryExecutePackedNHWC is the NHWC-activation form of TryExecutePacked
// (NHWC input, NPQK output, same packed KCRS-derived weights).
func (p *Plan) TryExecutePackedNHWC(in *tensor.Tensor, pf *PackedFilter, out *tensor.Tensor) error {
	return p.TryExecutePackedNHWCCtx(context.Background(), in, pf, out)
}

// TryExecutePackedNHWCCtx is the context-bounded form of
// TryExecutePackedNHWC.
func (p *Plan) TryExecutePackedNHWCCtx(ctx context.Context, in *tensor.Tensor, pf *PackedFilter, out *tensor.Tensor) error {
	if err := pf.validateFor(p); err != nil {
		return err
	}
	s := p.Shape
	if err := conv.ValidateTensor("input", in, s.N, s.H, s.W, s.C); err != nil {
		return err
	}
	if err := conv.ValidateTensor("output", out, s.N, s.P(), s.Q(), s.K); err != nil {
		return err
	}
	return p.execChecked(ctx, in, pf.src, pf, out, false, false)
}

// Execute is the panicking wrapper over TryExecute.
func (p *Plan) Execute(in, filter, out *tensor.Tensor) {
	if err := p.TryExecute(in, filter, out); err != nil {
		panic(err)
	}
}

// TryExecuteNHWC runs the plan on an NHWC input, writing an NPQK
// output. Checked variant: validation failures return errors,
// execution faults fall back to the reference path.
func (p *Plan) TryExecuteNHWC(in, filter, out *tensor.Tensor) error {
	return p.TryExecuteNHWCCtx(context.Background(), in, filter, out)
}

// TryExecuteNHWCCtx is the context-bounded form of TryExecuteNHWC;
// deadline semantics follow TryExecuteCtx.
func (p *Plan) TryExecuteNHWCCtx(ctx context.Context, in, filter, out *tensor.Tensor) error {
	s := p.Shape
	if err := conv.ValidateTensor("input", in, s.N, s.H, s.W, s.C); err != nil {
		return err
	}
	if err := conv.ValidateTensor("filter", filter, s.K, s.C, s.R, s.S); err != nil {
		return err
	}
	if err := conv.ValidateTensor("output", out, s.N, s.P(), s.Q(), s.K); err != nil {
		return err
	}
	return p.execChecked(ctx, in, filter, nil, out, false, false)
}

// ExecuteNHWC is the panicking wrapper over TryExecuteNHWC.
func (p *Plan) ExecuteNHWC(in, filter, out *tensor.Tensor) {
	if err := p.TryExecuteNHWC(in, filter, out); err != nil {
		panic(err)
	}
}

// TryExecuteAdd accumulates the convolution into out instead of
// overwriting it (used by the 3-D convolution extension, which sums
// 2-D slices over the kernel depth). Checked variant of ExecuteAdd.
func (p *Plan) TryExecuteAdd(in, filter, out *tensor.Tensor) error {
	return p.TryExecuteAddCtx(context.Background(), in, filter, out)
}

// TryExecuteAddCtx is the context-bounded form of TryExecuteAdd;
// deadline semantics follow TryExecuteCtx.
func (p *Plan) TryExecuteAddCtx(ctx context.Context, in, filter, out *tensor.Tensor) error {
	if err := conv.ValidateOperands(p.Shape, in, filter); err != nil {
		return err
	}
	if err := conv.ValidateOutput(p.Shape, out); err != nil {
		return err
	}
	return p.execChecked(ctx, in, filter, nil, out, true, true)
}

// ExecuteAdd is the panicking wrapper over TryExecuteAdd.
func (p *Plan) ExecuteAdd(in, filter, out *tensor.Tensor) {
	if err := p.TryExecuteAdd(in, filter, out); err != nil {
		panic(err)
	}
}

// deadlineErr wraps a done context's cause in conv.ErrDeadline.
func deadlineErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", conv.ErrDeadline, context.Cause(ctx))
}

// scanNonFinite returns the index of the first NaN/Inf in data.
func scanNonFinite(data []float32) (int, bool) {
	for i, v := range data {
		if f64 := float64(v); math.IsNaN(f64) || math.IsInf(f64, 0) {
			return i, true
		}
	}
	return 0, false
}

// execChecked runs the optimised path and degrades to the reference
// implementation whenever it faults, so the caller always receives a
// correct result. Accumulate runs snapshot the prior output first: a
// mid-run fault leaves partially-updated accumulation targets that
// cannot be reconstructed any other way. The non-finite output scan
// runs under fault injection and, for production callers, under
// Options.CheckNumerics. A context abandonment (deadline expiry,
// cancellation) is not a fault: the reference fallback then runs only
// within Options.FallbackBudget, because the caller asked for bounded
// time, and otherwise the conv.ErrDeadline-wrapped error is returned.
// When pf is non-nil the workers read the pre-transformed weights
// instead of running the per-tile filter transform; filter is then
// pf's source KCRS tensor, which the reference fallback consumes.
func (p *Plan) execChecked(ctx context.Context, in, filter *tensor.Tensor, pf *PackedFilter, out *tensor.Tensor, nchw, accumulate bool) error {
	if ctx == nil {
		ctx = context.Background()
	}
	cancellable := ctx.Done() != nil
	if cancellable && ctx.Err() != nil {
		// Fast fail before any work is spawned — but the FallbackBudget
		// contract still holds at the boundary: a deadline miss grants
		// the reference path its bounded recompute.
		if p.opts.FallbackBudget <= 0 {
			return deadlineErr(ctx)
		}
		var prev []float32
		if accumulate {
			prev = append([]float32(nil), out.Data...)
		}
		return p.deadlineFallback(ctx, in, filter, out, nchw, accumulate, prev, deadlineErr(ctx))
	}
	injecting := faultinject.Enabled()
	var prev []float32
	if accumulate && (injecting || cancellable || p.opts.CheckNumerics) {
		prev = append([]float32(nil), out.Data...)
	}
	var pre []float32
	if pf != nil {
		pre = pf.data
		forceVerify := false
		if injecting {
			if idx, ok := faultinject.Take(faultinject.WeightBitflip); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				// Flip one mantissa bit on a run-private copy (the shared
				// PackedFilter is immutable): the value stays finite, so
				// the non-finite scan can never catch it — only the
				// checksum can, which is exactly what this drill proves.
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = math.Float32frombits(math.Float32bits(corrupted[idx]) ^ 0x00400000)
				pre = corrupted
				forceVerify = true
			}
		}
		if forceVerify || pf.shouldVerify() {
			// Sampled (or injection-forced) pre-consumption verification:
			// a checksum mismatch is silent corruption, returned typed —
			// the reference fallback below must not mask it, because the
			// resident artifact stays poisoned until the owner re-packs.
			if verr := pf.verifyConsumed(pre); verr != nil {
				return verr
			}
		}
		if injecting {
			if idx, ok := faultinject.Take(faultinject.PackedCorrupt); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				// Poison a run-private copy: the shared PackedFilter is
				// immutable and other runs must keep reading clean
				// weights. The NaN propagates into the output, where the
				// injection-mode non-finite scan below catches it and the
				// reference fallback recomputes from pf's KCRS source.
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = float32(math.NaN())
				pre = corrupted
			}
		}
	}
	err := p.run(ctx, in.Data, filter.Data, pre, out.Data, nil, nil, nchw, accumulate)
	if err == nil && injecting {
		if idx, ok := faultinject.Take(faultinject.NaNPoison); ok && len(out.Data) > 0 {
			if idx < 0 || idx >= len(out.Data) {
				idx = 0
			}
			out.Data[idx] = float32(math.NaN())
		}
	}
	if err == nil && (injecting || p.opts.CheckNumerics) {
		if i, bad := scanNonFinite(out.Data); bad {
			err = fmt.Errorf("%w: non-finite output at element %d", ErrExecFault, i)
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrIntegrity) {
		// Detected corruption is never silently recovered: the faulty
		// artifact (scratch state, packed weights) must be quarantined
		// or re-packed by the owning layer before results can be
		// trusted again, so the typed error passes through.
		return err
	}
	if accumulate && prev == nil {
		// Fault without a snapshot (injection armed mid-run): the
		// accumulation target may be partially updated and cannot be
		// recovered. Surface the fault instead of guessing.
		return fmt.Errorf("%w: %v", ErrExecFault, err)
	}
	if errors.Is(err, conv.ErrDeadline) {
		if p.opts.FallbackBudget <= 0 {
			return err
		}
		return p.deadlineFallback(ctx, in, filter, out, nchw, accumulate, prev, err)
	}
	Logf("core: optimised path faulted on %v; recomputing on reference path: %v", p.Shape, err)
	p.fallbackReference(in, filter, out, nchw, accumulate, prev)
	if p.opts.CheckNumerics {
		// The reference path cannot repair non-finite inputs or genuine
		// overflow: surface them instead of returning a poisoned tensor.
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite output at element %d after reference fallback", ErrExecFault, i)
		}
	}
	return nil
}

// deadlineFallback spends Options.FallbackBudget recomputing the
// result on the reference path after a blown deadline. On success the
// caller receives a correct tensor and a nil error; an exhausted
// budget reports origErr (the original deadline error) instead. The
// recompute publishes through a fresh backing array (see
// fallbackReferenceCtx): the abandoned grid may still write the old
// one.
func (p *Plan) deadlineFallback(ctx context.Context, in, filter, out *tensor.Tensor, nchw, accumulate bool, prev []float32, origErr error) error {
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.opts.FallbackBudget)
	defer cancel()
	Logf("core: optimised path abandoned on %v; recomputing on reference path within %v: %v",
		p.Shape, p.opts.FallbackBudget, origErr)
	if ferr := p.fallbackReferenceCtx(fctx, in, filter, out, nchw, accumulate, prev); ferr != nil {
		return origErr
	}
	if p.opts.CheckNumerics {
		// The reference path cannot repair non-finite inputs or genuine
		// overflow: surface them instead of returning a poisoned tensor.
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite output at element %d after reference fallback", ErrExecFault, i)
		}
	}
	return nil
}

// fallbackReference recomputes the convolution with conv.Reference and
// applies the plan's epilogue, reproducing exactly what a fault-free
// optimised run would have stored. It writes out.Data in place, which
// is safe only because the fault path joins every worker before the
// fallback runs.
func (p *Plan) fallbackReference(in, filter, out *tensor.Tensor, nchw, accumulate bool, prev []float32) {
	ref := conv.Reference(p.Shape, p.refInput(in, nchw), filter)
	p.applyFallback(ref, out.Data, nchw, accumulate, prev)
}

// fallbackReferenceCtx is fallbackReference bounded by ctx: the
// cancellable oracle polls the context between output rows, so a
// deadline-abandoned execution does not trade an unbounded grid join
// for an unbounded sequential recompute. Unlike the fault path, the
// deadline path abandons its grid, and a straggler that resumes can
// still store tiles into the array it captured — so the result is
// computed into a fresh allocation swapped into out.Data, leaving the
// old array to the stragglers and never reading it again.
func (p *Plan) fallbackReferenceCtx(ctx context.Context, in, filter, out *tensor.Tensor, nchw, accumulate bool, prev []float32) error {
	ref, err := conv.ReferenceCtx(ctx, p.Shape, p.refInput(in, nchw), filter)
	if err != nil {
		return err
	}
	fresh := make([]float32, len(out.Data))
	p.applyFallback(ref, fresh, nchw, accumulate, prev)
	out.Data = fresh
	return nil
}

// refInput converts the input to the oracle's NCHW layout if needed.
func (p *Plan) refInput(in *tensor.Tensor, nchw bool) *tensor.Tensor {
	if nchw {
		return in
	}
	return tensor.NHWCToNCHW(in)
}

// applyFallback stores the oracle's NKPQ result into dst, replaying
// accumulation and the plan's fused epilogue (same per-element order
// as storeLane: bias, affine, ReLU).
func (p *Plan) applyFallback(ref *tensor.Tensor, dst []float32, nchw, accumulate bool, prev []float32) {
	s := p.Shape
	if !nchw {
		ref = tensor.NCHWToNHWC(ref) // NKPQ -> NPQK, the NHWC output layout
	}
	pp, q := s.P(), s.Q()
	for i := range dst {
		v := ref.Data[i]
		if accumulate {
			v += prev[i]
		}
		if !p.ep.none {
			var k int
			if nchw {
				k = (i / (pp * q)) % s.K
			} else {
				k = i % s.K
			}
			if p.ep.bias != nil {
				v += p.ep.bias[k]
			}
			if p.ep.scale != nil {
				v = v*p.ep.scale[k] + p.ep.shift[k]
			}
			if p.ep.relu && v < 0 {
				v = 0
			}
		}
		dst[i] = v
	}
}

// workerScratch is the thread-private memory of one worker: the
// transformed filter block, the packed input buffer, the generic
// accumulator file, and the per-stage timers.
type workerScratch struct {
	tf  []float32
	buf []float32
	// tfFull/bufFull are the guarded allocations behind tf/buf:
	// canaryWords stamped guard words sit past each logical end, and
	// intact() checks them when the run's grid joins (DESIGN.md §12).
	tfFull  []float32
	bufFull []float32
	// acc lives in the scratch (not on the worker's stack) so passing
	// &acc through a registered variant's indirect kernel call cannot
	// make it escape — the steady-state path stays allocation-free.
	acc   accFile8
	accG  []simd.Vec4
	stats *Stats // always non-nil; only accumulated when timed
	timed bool
}

// intact reports whether the scratch guard words still hold their
// stamp.
func (ws *workerScratch) intact() bool {
	return canariesIntact(ws.tfFull, len(ws.tf)) && canariesIntact(ws.bufFull, len(ws.buf))
}

func (p *Plan) newScratch() *workerScratch {
	s := p.Shape
	kBlocks := (p.CT.Tk + p.RT.Vk - 1) / p.RT.Vk
	tfLen := kBlocks * p.RT.Vk * p.CT.Tc * s.R * s.S
	bufLen := p.CT.Tc * s.R * ((p.RT.Vw-1)*s.Str + s.S)
	ws := &workerScratch{
		tfFull:  newGuarded(tfLen),
		bufFull: newGuarded(bufLen),
	}
	ws.tf = ws.tfFull[:tfLen:tfLen]
	ws.buf = ws.bufFull[:bufLen:bufLen]
	if p.kind == kindGeneric {
		ws.accG = make([]simd.Vec4, p.RT.Vw*p.RT.Vk/simd.Width)
	}
	ws.stats = &Stats{}
	ws.timed = p.opts.CollectStats
	return ws
}

// runTask is one grid cell's prebuilt dispatch unit: its slice of the
// iteration space, its private scratch, and the two closures the
// drivers hand around (fn = recovery shell + fault recording, body =
// fault-injection points + the worker loop nest). Both closures are
// built once when the run state is created and read the current
// operands through the run pointer, so steady-state dispatch creates
// no new funcvals — the allocation a per-call `go func` closure would
// otherwise make on every convolution.
type runTask struct {
	r          *planRun
	w          int // grid slot, also the faultinject worker index
	kLo, kHi   int
	nr, hr, wr parallel.Range
	ws         *workerScratch
	fn         func()
	body       func()
}

// planRun is one execution's complete mutable state: operands, fault
// sink, join group and the task set. Runs are pooled on the plan
// (checked out per call, returned once every worker has terminated),
// so a warm plan executes with zero heap allocations. The operand
// slices are cleared on release so a parked run never pins a caller's
// tensors.
type planRun struct {
	p                *Plan
	in, filter, pre  []float32
	out              []float32
	nchw, accumulate bool

	// Batched execution (TryExecuteBatch*): per-image operand slices,
	// one entry per image of the plan's batch dimension. When non-nil
	// the workers read image n from imgIn[n] and scatter its rows
	// directly into imgOut[n] (a caller-owned per-request buffer)
	// instead of indexing the contiguous in/out arrays — the zero-copy
	// scatter of the serving micro-batcher.
	imgIn, imgOut [][]float32

	fs    parallel.FaultSink
	g     parallel.Group
	tasks []*runTask
	seq   uint64

	abandonFn func(error) // raises the stop flag on a detached join
	drainFn   func()      // releases the run from the straggler monitor
}

// maxFreeRuns bounds the plan's run free list: up to this many
// concurrent executions reuse parked state allocation-free, beyond it
// the extra run states are dropped to the GC when they complete (the
// serving admission gate bounds useful concurrency well below this).
const maxFreeRuns = 8

// newRun builds a run state: one task per grid cell, in the same
// k→n→h→w nesting order as the original per-call spawn loop so the
// faultinject worker indices are unchanged.
func (p *Plan) newRun() *planRun {
	r := &planRun{p: p}
	s := p.Shape
	r.tasks = make([]*runTask, 0, len(p.kRanges)*len(p.nRanges)*len(p.hRanges)*len(p.wRanges))
	w := 0
	for _, kr := range p.kRanges {
		kLo := kr.Lo * p.RT.Vk
		kHi := kr.Hi * p.RT.Vk
		if kHi > s.K {
			kHi = s.K
		}
		for _, nr := range p.nRanges {
			for _, hr := range p.hRanges {
				for _, wr := range p.wRanges {
					t := &runTask{r: r, w: w, kLo: kLo, kHi: kHi, nr: nr, hr: hr, wr: wr, ws: p.newScratch()}
					t.body = func() {
						faultinject.Fire(faultinject.WorkerPanic, t.w)
						faultinject.Stall(faultinject.WorkerStall, t.w)
						if faultinject.Should(faultinject.ScratchOverrun, t.w) {
							// Simulate an out-of-bounds store past the packing
							// buffer's logical end (what a miscompiled or
							// assembly kernel could do): clobber the first
							// guard word. The canary check at run completion
							// must catch it and quarantine this run state.
							t.ws.bufFull[len(t.ws.buf)] = 1
						}
						p.worker(r.in, r.filter, r.pre, r.out, r.imgIn, r.imgOut, r.nchw, r.accumulate,
							t.kLo, t.kHi, t.nr, t.hr, t.wr, t.ws, &r.fs)
					}
					t.fn = func() { r.fs.Record(parallel.Protect(t.body)) }
					r.tasks = append(r.tasks, t)
					w++
				}
			}
		}
	}
	r.abandonFn = func(err error) { r.fs.Record(err) }
	r.drainFn = func() { p.releaseRun(r) }
	return r
}

// getRun checks a parked run state out of the plan's free list,
// building a fresh one when none is parked (cold start, or more
// concurrent executions than maxFreeRuns).
func (p *Plan) getRun() *planRun {
	p.runMu.Lock()
	if n := len(p.runFree); n > 0 {
		r := p.runFree[n-1]
		p.runFree[n-1] = nil
		p.runFree = p.runFree[:n-1]
		p.runMu.Unlock()
		return r
	}
	p.runMu.Unlock()
	return p.newRun()
}

// releaseRun publishes the run's stats and parks it for reuse. Only
// called once every worker of the run — including deadline-abandoned
// stragglers — has terminated, so a wedged goroutine can never
// scribble on recycled state.
func (p *Plan) releaseRun(r *planRun) {
	if p.opts.CollectStats {
		var st Stats
		for _, t := range r.tasks {
			st.TransformSec += t.ws.stats.TransformSec
			st.PackSec += t.ws.stats.PackSec
			st.KernelSec += t.ws.stats.KernelSec
			st.StoreSec += t.ws.stats.StoreSec
		}
		p.statsMu.Lock()
		// An abandoned run drains only when its stragglers finally
		// exit, possibly after a newer run already completed: never
		// let the stale partial stats overwrite the newer snapshot.
		if r.seq > p.lastStatsSeq {
			p.lastStats = st
			p.lastStatsSeq = r.seq
		}
		p.statsMu.Unlock()
	}
	r.in, r.filter, r.pre, r.out = nil, nil, nil, nil
	r.imgIn, r.imgOut = nil, nil
	if r.scratchTripped() >= 0 {
		// A guard word past a worker's scratch was overwritten: the run
		// state is quarantined — dropped to the GC, never parked — so a
		// buffer that has hosted an overrun can never serve another
		// request (the pool-level twin of the serve layer's canary
		// quarantine).
		scratchCanaryTrips.Add(1)
		return
	}
	p.runMu.Lock()
	if len(p.runFree) < maxFreeRuns {
		p.runFree = append(p.runFree, r)
	}
	p.runMu.Unlock()
}

// scratchTripped returns the grid slot of the first worker whose
// scratch guard words were overwritten, or -1 when all are intact.
func (r *planRun) scratchTripped() int {
	for _, t := range r.tasks {
		if !t.ws.intact() {
			return t.w
		}
	}
	return -1
}

// run executes the §6 thread grid: PT_k workers along the output
// channels × (PN × PH × PW) workers along batch/rows/column-tiles.
// Grid cells are dispatched onto the persistent default worker pool
// (parallel.DefaultPool) instead of spawning goroutines, and all
// per-run state comes from the plan's run pool, so a warm call
// allocates nothing and creates no goroutines. Every worker runs
// inside the parallel runtime's panic-recovery shell; the first fault
// raises the grid's cooperative stop flag and is returned after the
// join.
//
// Without a cancellable context the caller's goroutine executes the
// first grid cell itself (the whole grid, when the plan is
// single-threaded) and joins the rest unconditionally. With one, every
// cell is dispatched and the join is bounded by ctx: on expiry the
// grid is abandoned (stop flag up, stragglers leaked deliberately and
// accounted in parallel.LeakedWorkers — a straggler occupying a pool
// slot holds only that slot, the pool itself keeps serving) and the
// returned error wraps conv.ErrDeadline; the run state is then
// recycled only after the stragglers terminate. A non-nil pre buffer
// holds the whole-filter pre-transformed weights
// ([⌈K/Vk⌉][C][R][S][Vk]); workers then skip the per-tile transform
// entirely.
func (p *Plan) run(ctx context.Context, in, filter, pre, out []float32, imgIn, imgOut [][]float32, nchw, accumulate bool) error {
	r := p.getRun()
	if len(r.tasks) == 0 {
		p.releaseRun(r)
		return nil
	}
	r.in, r.filter, r.pre, r.out = in, filter, pre, out
	r.imgIn, r.imgOut = imgIn, imgOut
	r.nchw, r.accumulate = nchw, accumulate
	r.fs.Reset()
	r.seq = p.runSeq.Add(1)
	if p.opts.CollectStats {
		for _, t := range r.tasks {
			*t.ws.stats = Stats{}
		}
	}

	if ctx == nil || ctx.Done() == nil {
		if len(r.tasks) > 1 {
			pool := parallel.DefaultPool()
			for _, t := range r.tasks[1:] {
				r.g.GoVia(pool, t.fn)
			}
			r.tasks[0].fn()
			r.g.Wait()
		} else {
			r.tasks[0].fn()
		}
		err := r.fs.Err()
		if err == nil {
			if w := r.scratchTripped(); w >= 0 {
				err = fmt.Errorf("%w: scratch canary tripped on grid slot %d", ErrIntegrity, w)
			}
		}
		p.releaseRun(r)
		return err
	}

	// Cancellable join: every cell goes through the pool (running one
	// inline would let a wedged first cell block the caller past its
	// deadline), and on abandonment the run is recycled by the detached
	// monitor, not here.
	pool := parallel.DefaultPool()
	for _, t := range r.tasks {
		r.g.GoVia(pool, t.fn)
	}
	if err := r.g.WaitCtx(ctx, r.abandonFn, r.drainFn); err != nil {
		return fmt.Errorf("%w: %w", conv.ErrDeadline, err)
	}
	err := r.fs.Err()
	if err == nil {
		if w := r.scratchTripped(); w >= 0 {
			err = fmt.Errorf("%w: scratch canary tripped on grid slot %d", ErrIntegrity, w)
		}
	}
	p.releaseRun(r)
	return err
}

// worker executes Algorithm 2 over its slice of the iteration space.
// Loop names follow the paper; the filter transform (line 5) is
// hoisted above the batch/row loops so each worker converts a block
// once per (ct, kt) pair — the natural amortisation of the paper's
// "on-the-fly" conversion. With a pre-transformed filter (pre != nil)
// the transform is skipped altogether and the k-block slabs are read
// from the persistent [⌈K/Vk⌉][C][R][S][Vk] buffer: the global layout
// has the same Vk-innermost blocking and the same R·S·Vk channel
// stride as the per-tile buffer, so block kt/Vk+kb at channel offset
// ct is byte-for-byte the slab transformFilter would have produced.
// The fault sink's stop flag is polled at tile granularity so
// surviving workers cancel promptly after a sibling faults.
//
// Batched scatter (imgIn/imgOut non-nil): image n's operands come from
// the per-image slice tables instead of offsets into in/out, with the
// batch index collapsed to zero — every pack and store below then
// addresses a single-image tensor, so a coalesced batch reads each
// caller's input and writes each caller's output buffer directly (no
// gather or scatter copies). Only the L1 loop changes; tile order,
// accumulation order and hence bit patterns are untouched.
func (p *Plan) worker(in, filter, pre, out []float32, imgIn, imgOut [][]float32, nchw, accumulate bool,
	kLo, kHi int, nr, hr, wr parallel.Range, ws *workerScratch, fs *parallel.FaultSink) {
	s := p.Shape
	vw, vk := p.RT.Vw, p.RT.Vk
	tc, tk, th := p.CT.Tc, p.CT.Tk, p.CT.Th
	q := s.Q()
	wIn := (vw-1)*s.Str + s.S
	use12x8 := p.kind != kindGeneric
	rsv := s.R * s.S * vk // one channel's slab in a transformed block
	acc := &ws.acc

	for ct := 0; ct < s.C; ct += tc { // L3
		tcEff := tc
		if ct+tcEff > s.C {
			tcEff = s.C - ct
		}
		firstC := ct == 0 && !accumulate
		lastC := ct+tcEff >= s.C

		for kt := kLo; kt < kHi; kt += tk { // L4
			if fs.Stopped() {
				return
			}
			tkEff := tk
			if kt+tkEff > kHi {
				tkEff = kHi - kt
			}
			var t0 time.Time
			if pre == nil {
				t0 = now(ws)
				transformFilter(filter, ws.tf, s.K, s.C, s.R, s.S, kt, tkEff, ct, tcEff, vk)
				addTime(ws, &ws.stats.TransformSec, t0)
			}
			kvBlocks := (tkEff + vk - 1) / vk

			for n := nr.Lo; n < nr.Hi; n++ { // L1 (worker slice)
				inD, outD, nEff := in, out, n
				if imgIn != nil {
					inD, outD, nEff = imgIn[n], imgOut[n], 0
				}
				for ht := hr.Lo; ht < hr.Hi; ht += th { // L2
					hEnd := ht + th
					if hEnd > hr.Hi {
						hEnd = hr.Hi
					}
					for oh := ht; oh < hEnd; oh++ { // L5
						if fs.Stopped() {
							return
						}
						for qt := wr.Lo; qt < wr.Hi; qt++ { // L6
							qt0 := qt * vw
							vwEff := vw
							if qt0+vwEff > q {
								vwEff = q - qt0
							}
							g := p.geometry(oh, qt0)
							g.wIn = wIn

							for kb := 0; kb < kvBlocks; kb++ { // L7
								tfBlock := ws.tf[kb*tcEff*rsv:]
								if pre != nil {
									tfBlock = pre[((kt/vk+kb)*s.C+ct)*rsv:]
								}
								if use12x8 {
									*acc = accFile8{}
									if kb == 0 {
										if p.opts.SequentialPack {
											t0 = now(ws)
											if nchw {
												packNCHW(inD, ws.buf, g, nEff, s.C, s.H, s.W, ct, tcEff, s.R)
											} else {
												packNHWC(inD, ws.buf, g, nEff, s.C, s.H, s.W, ct, tcEff, s.R)
											}
											addTime(ws, &ws.stats.PackSec, t0)
											t0 = now(ws)
											p.mainKernel(acc, ws.buf, tfBlock, tcEff, vwEff, wIn)
											addTime(ws, &ws.stats.KernelSec, t0)
										} else {
											t0 = now(ws)
											packCompute12x8(acc, inD, ws.buf, tfBlock, g,
												nEff, s.C, s.H, s.W, ct, tcEff, s.R, s.S, s.Str, vwEff, nchw)
											addTime(ws, &ws.stats.KernelSec, t0)
										}
									} else {
										t0 = now(ws)
										p.mainKernel(acc, ws.buf, tfBlock, tcEff, vwEff, wIn)
										addTime(ws, &ws.stats.KernelSec, t0)
									}
									t0 = now(ws)
									p.store(acc[:], outD, nchw, nEff, kt+kb*vk, kHi, oh, qt0, vwEff, firstC, lastC)
									addTime(ws, &ws.stats.StoreSec, t0)
								} else {
									clear(ws.accG)
									if kb == 0 {
										t0 = now(ws)
										if nchw {
											packNCHW(inD, ws.buf, g, nEff, s.C, s.H, s.W, ct, tcEff, s.R)
										} else {
											packNHWC(inD, ws.buf, g, nEff, s.C, s.H, s.W, ct, tcEff, s.R)
										}
										addTime(ws, &ws.stats.PackSec, t0)
									}
									t0 = now(ws)
									kernelGeneric(ws.accG, ws.buf, tfBlock, tcEff, s.R, s.S, s.Str, vwEff, wIn, vk)
									addTime(ws, &ws.stats.KernelSec, t0)
									t0 = now(ws)
									p.storeGeneric(ws.accG, outD, nchw, nEff, kt+kb*vk, kHi, oh, qt0, vwEff, firstC, lastC)
									addTime(ws, &ws.stats.StoreSec, t0)
								}
							}
						}
					}
				}
			}
		}
	}
}

// mainKernel dispatches the selected V_k=8 micro-kernel variant.
func (p *Plan) mainKernel(acc *accFile8, buf, tf []float32, tcEff, vwEff, wIn int) {
	s := p.Shape
	switch p.kind {
	case kindSpecialized:
		p.variant.kern(acc, buf, tf, tcEff, vwEff, wIn)
	case kind12x8S3:
		kernel12x8S3(acc, buf, tf, tcEff, s.R, vwEff, wIn)
	case kind12x8S1:
		kernel12x8S1(acc, buf, tf, tcEff, vwEff, wIn)
	default:
		kernel12x8(acc, buf, tf, tcEff, s.R, s.S, s.Str, vwEff, wIn)
	}
}

// store writes the V_k=8 accumulator file into the output tensor,
// handling first-tile assignment vs accumulation, ragged K edges and
// the fused epilogue on the final channel tile.
func (p *Plan) store(acc []simd.Vec4, out []float32, nchw bool,
	n, kBase, kHi, oh, qt0, vwEff int, firstC, lastC bool) {
	s := p.Shape
	pp, q := s.P(), s.Q()
	kEnd := kBase + 8
	if kEnd > kHi {
		kEnd = kHi
	}
	for k := kBase; k < kEnd; k++ {
		j, lane := (k-kBase)/simd.Width, (k-kBase)%simd.Width
		var row []float32
		var stride int
		if nchw {
			row = out[((n*s.K+k)*pp+oh)*q+qt0:]
			stride = 1
		} else {
			row = out[((n*pp+oh)*q+qt0)*s.K+k:]
			stride = s.K
		}
		p.storeLane(row, stride, acc, 2, j, lane, vwEff, k, firstC, lastC)
	}
}

// storeGeneric is the arbitrary-V_k variant of store.
func (p *Plan) storeGeneric(acc []simd.Vec4, out []float32, nchw bool,
	n, kBase, kHi, oh, qt0, vwEff int, firstC, lastC bool) {
	s := p.Shape
	pp, q := s.P(), s.Q()
	jn := p.RT.Vk / simd.Width
	kEnd := kBase + p.RT.Vk
	if kEnd > kHi {
		kEnd = kHi
	}
	for k := kBase; k < kEnd; k++ {
		j, lane := (k-kBase)/simd.Width, (k-kBase)%simd.Width
		var row []float32
		var stride int
		if nchw {
			row = out[((n*s.K+k)*pp+oh)*q+qt0:]
			stride = 1
		} else {
			row = out[((n*pp+oh)*q+qt0)*s.K+k:]
			stride = s.K
		}
		p.storeLane(row, stride, acc, jn, j, lane, vwEff, k, firstC, lastC)
	}
}

// storeLane writes one output channel's row of the register tile.
// acc is indexed acc[ow*jn + j][lane]. On the final channel tile the
// plan's fused epilogue is applied per element in the fixed order
// bias → affine → ReLU, the exact per-element float32 expressions of
// the separate addBias/applyBN/applyReLU passes (each step gated on
// its own flag, never a degenerate scale-by-one or add-zero, so
// untouched values — including negative zeros — pass through
// bit-identically).
func (p *Plan) storeLane(row []float32, stride int, acc []simd.Vec4, jn, j, lane, vwEff, k int, firstC, lastC bool) {
	var bias, scale, shift float32
	hasBias, hasAffine, relu := false, false, false
	if lastC && !p.ep.none {
		if p.ep.bias != nil {
			bias, hasBias = p.ep.bias[k], true
		}
		if p.ep.scale != nil {
			scale, shift, hasAffine = p.ep.scale[k], p.ep.shift[k], true
		}
		relu = p.ep.relu
	}
	x := 0
	for ow := 0; ow < vwEff; ow++ {
		v := acc[ow*jn+j][lane]
		if !firstC {
			v += row[x]
		}
		if hasBias {
			v += bias
		}
		if hasAffine {
			v = v*scale + shift
		}
		if relu && v < 0 {
			v = 0
		}
		row[x] = v
		x += stride
	}
}

// now/addTime are the near-zero-cost-when-disabled stage timers.
func now(ws *workerScratch) time.Time {
	if !ws.timed {
		return time.Time{}
	}
	return time.Now()
}

func addTime(ws *workerScratch, dst *float64, t0 time.Time) {
	if !ws.timed {
		return
	}
	*dst += time.Since(t0).Seconds()
}
