package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

// Batched execution: one plan run over a coalesced batch of requests.
//
// The paper's thread grid parallelises over the batch axis (the PT_n
// dimension of §6), which assumes the batch arrives as one tensor. A
// serving process instead holds k independent requests of the same
// shape, each with its own input and its own output buffer. These
// entry points execute a plan built for N = Σ n_i over per-request
// tensors directly: the worker's L1 loop resolves image n to a slice
// of the owning request's buffers (see planRun.imgIn), so the batch is
// convolved in one grid — one admission, one scratch set, one join —
// and every caller's output lands in its own buffer with zero gather
// or scatter copies. Tile and accumulation order per image are
// identical to a solo run, so results are bit-identical to executing
// each request alone.

// TryExecuteBatch executes the plan over a batch of NCHW requests.
// ins[i] and outs[i] are request i's input and output tensors; batch
// dimensions may differ per request but must sum to the plan's N.
func (p *Plan) TryExecuteBatch(ins []*tensor.Tensor, filter *tensor.Tensor, outs []*tensor.Tensor) error {
	return p.TryExecuteBatchCtx(context.Background(), ins, filter, outs)
}

// TryExecuteBatchCtx is TryExecuteBatch bounded by ctx; deadline
// semantics follow TryExecuteCtx, with the reference fallback
// recomputing (and republishing through fresh arrays) per request.
func (p *Plan) TryExecuteBatchCtx(ctx context.Context, ins []*tensor.Tensor, filter *tensor.Tensor, outs []*tensor.Tensor) error {
	return p.execBatch(ctx, ins, filter, nil, outs, true)
}

// TryExecuteBatchPacked is TryExecuteBatch with a pre-transformed
// filter. One PackedFilter serves a layer at every batch size
// (CompatibleWith ignores N), so the same packed weights back both the
// solo and the coalesced path.
func (p *Plan) TryExecuteBatchPacked(ins []*tensor.Tensor, pf *PackedFilter, outs []*tensor.Tensor) error {
	return p.TryExecuteBatchPackedCtx(context.Background(), ins, pf, outs)
}

// TryExecuteBatchPackedCtx is the context-bounded form of
// TryExecuteBatchPacked.
func (p *Plan) TryExecuteBatchPackedCtx(ctx context.Context, ins []*tensor.Tensor, pf *PackedFilter, outs []*tensor.Tensor) error {
	if err := pf.validateFor(p); err != nil {
		return err
	}
	return p.execBatch(ctx, ins, pf.src, pf, outs, true)
}

// TryExecuteBatchNHWCCtx is the NHWC-activation form of
// TryExecuteBatchCtx (per-request NHWC inputs, NPQK outputs).
func (p *Plan) TryExecuteBatchNHWCCtx(ctx context.Context, ins []*tensor.Tensor, filter *tensor.Tensor, outs []*tensor.Tensor) error {
	return p.execBatch(ctx, ins, filter, nil, outs, false)
}

// TryExecuteBatchPackedNHWCCtx is the NHWC form of
// TryExecuteBatchPackedCtx.
func (p *Plan) TryExecuteBatchPackedNHWCCtx(ctx context.Context, ins []*tensor.Tensor, pf *PackedFilter, outs []*tensor.Tensor) error {
	if err := pf.validateFor(p); err != nil {
		return err
	}
	return p.execBatch(ctx, ins, pf.src, pf, outs, false)
}

// validateBatch checks every request's operands against its slice of
// the plan's shape before any work is admitted, so one malformed
// request fails the call upfront instead of poisoning a running grid.
func (p *Plan) validateBatch(ins []*tensor.Tensor, kcrs *tensor.Tensor, outs []*tensor.Tensor, nchw bool) error {
	if len(ins) == 0 || len(ins) != len(outs) {
		return fmt.Errorf("%w: batch needs matching non-empty request slices (%d inputs, %d outputs)",
			ErrBadOptions, len(ins), len(outs))
	}
	s := p.Shape
	total := 0
	for i := range ins {
		if ins[i] == nil || outs[i] == nil || len(ins[i].Dims) != 4 {
			return fmt.Errorf("%w: batch request %d: nil or non-4D tensor", ErrBadOptions, i)
		}
		ni := ins[i].Dims[0]
		if ni <= 0 {
			return fmt.Errorf("%w: batch request %d: batch dimension %d", ErrBadOptions, i, ni)
		}
		si := s.WithBatch(ni)
		if nchw {
			if err := conv.ValidateOperands(si, ins[i], kcrs); err != nil {
				return fmt.Errorf("batch request %d: %w", i, err)
			}
			if err := conv.ValidateOutput(si, outs[i]); err != nil {
				return fmt.Errorf("batch request %d: %w", i, err)
			}
		} else {
			if err := conv.ValidateTensor("input", ins[i], ni, si.H, si.W, si.C); err != nil {
				return fmt.Errorf("batch request %d: %w", i, err)
			}
			if err := conv.ValidateTensor("filter", kcrs, si.K, si.C, si.R, si.S); err != nil {
				return fmt.Errorf("batch request %d: %w", i, err)
			}
			if err := conv.ValidateTensor("output", outs[i], ni, si.P(), si.Q(), si.K); err != nil {
				return fmt.Errorf("batch request %d: %w", i, err)
			}
		}
		total += ni
	}
	if total != s.N {
		return fmt.Errorf("%w: batch covers %d images, plan expects N=%d", ErrBadOptions, total, s.N)
	}
	return nil
}

// execBatch is execChecked's batched counterpart: same fault and
// deadline discipline, per-request fallbacks. Accumulation is not
// supported over a coalesced batch (no caller ever owns a partial
// sum of another caller's work), so accumulate is always false.
func (p *Plan) execBatch(ctx context.Context, ins []*tensor.Tensor, filter *tensor.Tensor, pf *PackedFilter, outs []*tensor.Tensor, nchw bool) error {
	if err := p.validateBatch(ins, filter, outs, nchw); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil && ctx.Err() != nil {
		if p.opts.FallbackBudget <= 0 {
			return deadlineErr(ctx)
		}
		return p.batchDeadlineFallback(ctx, ins, filter, outs, nchw, deadlineErr(ctx))
	}

	s := p.Shape
	cin := s.C * s.H * s.W
	cout := s.K * s.P() * s.Q()
	imgIn := make([][]float32, 0, s.N)
	imgOut := make([][]float32, 0, s.N)
	for i := range ins {
		for j := 0; j < ins[i].Dims[0]; j++ {
			imgIn = append(imgIn, ins[i].Data[j*cin:(j+1)*cin])
			imgOut = append(imgOut, outs[i].Data[j*cout:(j+1)*cout])
		}
	}

	injecting := faultinject.Enabled()
	var pre []float32
	if pf != nil {
		pre = pf.data
		forceVerify := false
		if injecting {
			if idx, ok := faultinject.Take(faultinject.WeightBitflip); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				// Finite mantissa flip on a run-private copy, exactly as
				// execChecked does: only the checksum can catch it.
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = math.Float32frombits(math.Float32bits(corrupted[idx]) ^ 0x00400000)
				pre = corrupted
				forceVerify = true
			}
		}
		if forceVerify || pf.shouldVerify() {
			if verr := pf.verifyConsumed(pre); verr != nil {
				return verr
			}
		}
		if injecting {
			if idx, ok := faultinject.Take(faultinject.PackedCorrupt); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				// Poison a run-private copy, exactly as execChecked does:
				// the shared PackedFilter stays clean for other runs.
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = float32(math.NaN())
				pre = corrupted
			}
		}
	}
	err := p.run(ctx, nil, filter.Data, pre, nil, imgIn, imgOut, nchw, false)
	if err == nil && injecting {
		if idx, ok := faultinject.Take(faultinject.NaNPoison); ok {
			img := imgOut[idx%len(imgOut)]
			img[idx%len(img)] = float32(math.NaN())
		}
	}
	if err == nil && (injecting || p.opts.CheckNumerics) {
		for i := range outs {
			if j, bad := scanNonFinite(outs[i].Data); bad {
				err = fmt.Errorf("%w: non-finite output at request %d element %d", ErrExecFault, i, j)
				break
			}
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrIntegrity) {
		// Detected corruption passes through typed (see execChecked):
		// the owning layer quarantines or re-packs before retrying.
		return err
	}
	if errors.Is(err, conv.ErrDeadline) {
		if p.opts.FallbackBudget <= 0 {
			return err
		}
		return p.batchDeadlineFallback(ctx, ins, filter, outs, nchw, err)
	}
	// Fault path: the grid is fully joined, so each request's output
	// can be recomputed in place from the oracle.
	Logf("core: batched path faulted on %v (%d requests); recomputing on reference path: %v",
		p.Shape, len(ins), err)
	for i := range ins {
		si := s.WithBatch(ins[i].Dims[0])
		ref := conv.Reference(si, p.refInput(ins[i], nchw), filter)
		p.applyFallback(ref, outs[i].Data, nchw, false, nil)
	}
	if p.opts.CheckNumerics {
		for i := range outs {
			if j, bad := scanNonFinite(outs[i].Data); bad {
				return fmt.Errorf("%w: non-finite output at request %d element %d after reference fallback",
					ErrExecFault, i, j)
			}
		}
	}
	return nil
}

// batchDeadlineFallback spends Options.FallbackBudget recomputing each
// request on the reference path after a blown deadline. Per-request
// results publish through fresh arrays swapped into outs[i].Data (the
// abandoned grid's stragglers may still write the original buffers);
// an exhausted budget reports origErr, leaving every remaining output
// unpublished.
func (p *Plan) batchDeadlineFallback(ctx context.Context, ins []*tensor.Tensor, filter *tensor.Tensor, outs []*tensor.Tensor, nchw bool, origErr error) error {
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.opts.FallbackBudget)
	defer cancel()
	Logf("core: batched path abandoned on %v (%d requests); recomputing on reference path within %v: %v",
		p.Shape, len(ins), p.opts.FallbackBudget, origErr)
	s := p.Shape
	for i := range ins {
		si := s.WithBatch(ins[i].Dims[0])
		ref, ferr := conv.ReferenceCtx(fctx, si, p.refInput(ins[i], nchw), filter)
		if ferr != nil {
			return origErr
		}
		fresh := make([]float32, len(outs[i].Data))
		p.applyFallback(ref, fresh, nchw, false, nil)
		outs[i].Data = fresh
	}
	if p.opts.CheckNumerics {
		for i := range outs {
			if j, bad := scanNonFinite(outs[i].Data); bad {
				return fmt.Errorf("%w: non-finite output at request %d element %d after reference fallback",
					ErrExecFault, i, j)
			}
		}
	}
	return nil
}
