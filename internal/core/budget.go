package core

import (
	"context"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// Memory-budget hooks for the serving layer (internal/serve). The
// paper's whole argument is explicit resource budgeting — register and
// cache tiles sized to the hardware by Equations 1–4 — and a serving
// process extends that discipline one level up: before a request is
// executed, the bytes its plan will touch are charged against a global
// ceiling. These methods expose the sizes the accountant needs; the
// policy (the degradation ladder) lives in internal/serve.

// ScratchBytes returns an upper bound on the transient worker-scratch
// memory one execution of the plan allocates: the per-worker
// transformed-filter block, packing buffer and (for the generic
// kernel) accumulator file, times the full PTk × PN × PH × PW thread
// grid. Actual usage can be lower — worker ranges collapse when a
// dimension is smaller than its grid factor, and the plan's run pool
// reuses scratch across calls — so this is a safe admission estimate,
// not an exact meter.
func (p *Plan) ScratchBytes() int64 {
	s := p.Shape
	kBlocks := (p.CT.Tk + p.RT.Vk - 1) / p.RT.Vk
	per := kBlocks*p.RT.Vk*p.CT.Tc*s.R*s.S + // tf
		p.CT.Tc*s.R*((p.RT.Vw-1)*s.Str+s.S) // buf
	if p.kind == kindGeneric {
		per += p.RT.Vw * p.RT.Vk // accG (Vec4s, counted in floats)
	}
	workers := p.TM.PTk * p.TM.PN * p.TM.PH * p.TM.PW
	return 4 * int64(per) * int64(workers)
}

// OutputBytes returns the size of the plan's NKPQ output tensor.
func (p *Plan) OutputBytes() int64 {
	s := p.Shape
	return 4 * int64(s.N) * int64(s.K) * int64(s.P()) * int64(s.Q())
}

// Bytes returns the packed buffer's size — the persistent-weight
// memory a serving process charges against its budget once at load
// time (the packed copy lives as long as the layer).
func (pf *PackedFilter) Bytes() int64 { return 4 * int64(len(pf.data)) }

// PackedBytes returns the size of the PackedFilter TransformFilter
// would build for this plan (⌈K/Vk⌉·C·R·S·Vk floats) — the admission
// quote a weight-residency budget checks before the packed copy is
// allocated, so a denied charge costs nothing.
func (p *Plan) PackedBytes() int64 {
	s := p.Shape
	kBlocks := (s.K + p.RT.Vk - 1) / p.RT.Vk
	return 4 * int64(kBlocks) * int64(s.C) * int64(s.R) * int64(s.S) * int64(p.RT.Vk)
}

// TryExecuteReferenceCtx computes the plan's convolution with the
// naive seven-loop algorithm directly into out — no worker grid, no
// scratch buffers, no fresh output publication — replaying the plan's
// fused epilogue. It is the bottom rung of the serving memory-
// degradation ladder: when the budget cannot cover even a degraded
// tile plan's scratch, this path needs only the output the caller was
// owed anyway. Accumulation is float64 in the same (c, r, s) order as
// conv.Reference, so its results are bit-identical to the reference
// oracle. The context is polled between output rows; expiry returns
// an error wrapping conv.ErrDeadline and the context's cause. NCHW
// only (the layout the serving entry points use).
func (p *Plan) TryExecuteReferenceCtx(ctx context.Context, in, filter *tensor.Tensor, out *tensor.Tensor) error {
	if err := conv.ValidateOperands(p.Shape, in, filter); err != nil {
		return err
	}
	if err := conv.ValidateOutput(p.Shape, out); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := p.Shape
	pp, q := s.P(), s.Q()
	poll := ctx.Done() != nil
	rs := s.R * s.S
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			var bias, scale, shift float32
			hasBias, hasAffine, relu := false, false, false
			if !p.ep.none {
				if p.ep.bias != nil {
					bias, hasBias = p.ep.bias[k], true
				}
				if p.ep.scale != nil {
					scale, shift, hasAffine = p.ep.scale[k], p.ep.shift[k], true
				}
				relu = p.ep.relu
			}
			for oj := 0; oj < pp; oj++ {
				if poll && ctx.Err() != nil {
					return deadlineErr(ctx)
				}
				row := out.Data[((n*s.K+k)*pp+oj)*q : ((n*s.K+k)*pp+oj+1)*q]
				for oi := 0; oi < q; oi++ {
					var acc float64
					ij := s.Str*oj - s.Pad
					ii := s.Str*oi - s.Pad
					for c := 0; c < s.C; c++ {
						inBase := ((n*s.C + c) * s.H) * s.W
						fBase := (k*s.C + c) * rs
						for r := 0; r < s.R; r++ {
							ih := ij + r
							if ih < 0 || ih >= s.H {
								continue
							}
							for ss := 0; ss < s.S; ss++ {
								iw := ii + ss
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += float64(in.Data[inBase+ih*s.W+iw]) *
									float64(filter.Data[fBase+r*s.S+ss])
							}
						}
					}
					v := float32(acc)
					if hasBias {
						v += bias
					}
					if hasAffine {
						v = v*scale + shift
					}
					if relu && v < 0 {
						v = 0
					}
					row[oi] = v
				}
			}
		}
	}
	return nil
}
