package core

import "ndirect/internal/simd"

// Main micro-kernel (Algorithm 3). One invocation computes the
// register tile O[kv:kv+Vk][oh][qt0:qt0+vwEff] contribution of the
// channel tile [ct, ct+tc):
//
//	for cv, r:   load the packed input row        (V2–V5)
//	  for s:     load the filter vector slice     (V0–V1)
//	             FMA each input scalar against it (V8–V31)
//
// The outer-product form — one input scalar broadcast against a V_k
// filter vector — is what gives nDirect its higher FAI than the
// GEMM-style inner-product kernels of LIBXSMM (§5.2): each loaded
// filter vector is reused V_w times and each input element S·V_k/4
// times before leaving the registers.

// maxVw bounds the specialised kernel's accumulator file: 12 output
// columns × 8 output channels = 24 Vec4 accumulators, the Equation 3
// optimum.
const maxVw = 12

// accFile8 is the register tile for the V_k=8 kernels: acc[2*ow] and
// acc[2*ow+1] hold output channels kv..kv+3 and kv+4..kv+7 of output
// column ow.
type accFile8 = [2 * maxVw]simd.Vec4

// kernel12x8 is the specialised main micro-kernel for the analytical
// optimum V_w=12, V_k=8 (any R, S, stride). tf must point at the
// transformed filter block for this kb (layout [tc][R][S][8]); buf is
// the packed input [tc][R][wIn].
func kernel12x8(acc *accFile8, buf, tf []float32, tc, r, s, str, vwEff, wIn int) {
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			row := buf[(cv*r+rr)*wIn : (cv*r+rr)*wIn+wIn]
			fmaRow12x8(acc, row, tf[(cv*r+rr)*s*8:], s, str, vwEff)
		}
	}
}

// fmaRow12x8 applies one packed input row against the S filter
// vector pairs of a (cv, r) coordinate — the shared inner body of the
// main micro-kernel and the fused pack+compute micro-kernel (both
// paths must compile identically and produce bit-identical results).
// The accumulator loop runs descending — i from len(a)-1 while i > 0,
// accessing a[i-1] and a[i] — because the i > 0 condition is exactly
// the lower-bound fact the prove pass needs to drop both per-FMA
// accumulator bounds checks while keeping indexed addressing
// (verified with -d=ssa/check_bce; an ascending loop leaves the
// a[i-1]/a[i+1] partner access checked, since prove does not carry a
// start-value minimum through a step-2 induction). Pair order does
// not affect results: each accumulator pair is touched once per call.
// Only the stride-indexed input load keeps its check, since the step
// is a runtime value the pass cannot bound.
func fmaRow12x8(acc *accFile8, row, fTap []float32, s, str, vwEff int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for ss := 0; ss < s; ss++ {
		fs := fTap[ss*8 : ss*8+8]
		f0 := simd.Load(fs)
		f1 := simd.Load(fs[4:])
		r := row[ss:]
		x := (vwEff - 1) * str
		for i := len(a) - 1; i > 0; i -= 2 {
			v := r[x]
			a[i-1] = a[i-1].FMAScalar(f0, v)
			a[i] = a[i].FMAScalar(f1, v)
			x -= str
		}
	}
}

// packCompute12x8 fuses the packing micro-kernel with the first
// V_k-block computation (§5.3): each packed row is stored to the
// linear buffer and immediately consumed by the FMA stream, hiding
// the packing stores behind the compute — the Go analogue of placing
// st instructions between FMAs for the out-of-order core to overlap.
// rows outside the image clear the buffer row and skip the FMAs
// (zero contributions).
func packCompute12x8(acc *accFile8, in, buf, tf []float32, g packGeometry,
	n, c, h, w, ct, tc, r, s, str, vwEff int, nchw bool) {
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			dst := buf[(cv*r+rr)*g.wIn : (cv*r+rr)*g.wIn+g.wIn]
			ih := g.ihBase + rr
			if ih < 0 || ih >= h {
				clear(dst)
				continue
			}
			if nchw {
				src := in[((n*c+ct+cv)*h+ih)*w : ((n*c+ct+cv)*h+ih+1)*w]
				packRow(dst, src, g.iwBase, w)
			} else {
				rowBase := ((n*h + ih) * w) * c
				cc := ct + cv
				// Ranging over dst pins its length, so the stores below
				// compile without bounds checks; only the gather from the
				// strided NHWC input keeps its (unprovable) check.
				for x := range dst {
					iw := g.iwBase + x
					if iw < 0 || iw >= w {
						dst[x] = 0
					} else {
						dst[x] = in[rowBase+iw*c+cc]
					}
				}
			}
			fmaRow12x8(acc, dst, tf[(cv*r+rr)*s*8:], s, str, vwEff)
		}
	}
}

// kernel12x8S3 is the fully specialised main micro-kernel for the
// paper's working example — 3×3 kernel, stride 1, V_w=12, V_k=8 —
// with the S loop unrolled exactly as Algorithm 3 lines 5–14: all
// six filter vectors of a (cv, r) pair are hoisted into registers
// and each packed input element feeds six FMAs before the next load.
// This is the Go counterpart of the paper's hand-written NEON body.
func kernel12x8S3(acc *accFile8, buf, tf []float32, tc, r, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			row := buf[(cv*r+rr)*wIn : (cv*r+rr)*wIn+wIn]
			fb := (cv*r + rr) * 24
			fs := tf[fb : fb+24]
			f0 := simd.Load(fs)
			f1 := simd.Load(fs[4:])
			f2 := simd.Load(fs[8:])
			f3 := simd.Load(fs[12:])
			f4 := simd.Load(fs[16:])
			f5 := simd.Load(fs[20:])
			// The stride-1 input window shrinks one element per column,
			// so a single length test replaces three per-load checks,
			// and the i < len(a) condition discharges the a[i] accesses.
			// Per -d=ssa/check_bce this leaves exactly one residual
			// check per column (the a[i-1] lower bound, which prove
			// cannot derive from a step-2 induction) — down from five —
			// while keeping the forward walk the ascending input window
			// requires.
			rw := row
			for i := 1; i < len(a); i += 2 {
				if len(rw) < 3 {
					break
				}
				x0 := rw[0]
				x1 := rw[1]
				x2 := rw[2]
				a0 := a[i-1]
				a1 := a[i]
				a0 = a0.FMAScalar(f0, x0)
				a1 = a1.FMAScalar(f1, x0)
				a0 = a0.FMAScalar(f2, x1)
				a1 = a1.FMAScalar(f3, x1)
				a0 = a0.FMAScalar(f4, x2)
				a1 = a1.FMAScalar(f5, x2)
				a[i-1] = a0
				a[i] = a1
				rw = rw[1:]
			}
		}
	}
}

// kernel12x8S1 is the specialised pointwise (1×1, stride 1) kernel:
// one packed row per channel, two FMAs per output element.
func kernel12x8S1(acc *accFile8, buf, tf []float32, tc, vwEff, wIn int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		row := buf[cv*wIn : cv*wIn+wIn]
		fs := tf[cv*8 : cv*8+8]
		f0 := simd.Load(fs)
		f1 := simd.Load(fs[4:])
		rw := row
		for i := 1; i < len(a); i += 2 {
			if len(rw) < 1 {
				break
			}
			v := rw[0]
			a[i-1] = a[i-1].FMAScalar(f0, v)
			a[i] = a[i].FMAScalar(f1, v)
			rw = rw[1:]
		}
	}
}

// kernelGeneric is the fallback main micro-kernel for arbitrary
// (V_w, V_k) register tiles (V_k a multiple of 4). acc holds
// vwEff × vk/4 accumulators, column-major per output column:
// acc[ow*(vk/4)+j].
// Unlike the V_k=8 kernels above, this loop nest is deliberately NOT
// restructured for bounds-check elimination: the accumulator step jn
// is a runtime value, and the prove pass only reasons about induction
// variables with constant steps, so the acc[base+j] checks cannot be
// discharged. Walking-slice and descending-index rewrites were
// measured ~5-8% slower than this plain form (the restructuring
// overhead exceeds the cost of the predictable checks), so the
// straightforward nest stays.
func kernelGeneric(acc []simd.Vec4, buf, tf []float32, tc, r, s, str, vwEff, wIn, vk int) {
	jn := vk / simd.Width
	var fregs [simd.NumRegs / 4]simd.Vec4 // filter slice registers (jn <= 8 in practice)
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			row := buf[(cv*r+rr)*wIn : (cv*r+rr)*wIn+wIn]
			fb := (cv*r + rr) * s * vk
			for ss := 0; ss < s; ss++ {
				fs := tf[fb+ss*vk : fb+(ss+1)*vk]
				for j := 0; j < jn; j++ {
					fregs[j] = simd.Load(fs[j*simd.Width:])
				}
				x := ss
				for ow := 0; ow < vwEff; ow++ {
					v := row[x]
					base := ow * jn
					for j := 0; j < jn; j++ {
						acc[base+j] = acc[base+j].FMAScalar(fregs[j], v)
					}
					x += str
				}
			}
		}
	}
}
