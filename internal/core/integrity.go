package core

// Silent-data-corruption defense (DESIGN.md §12). The bit-exactness
// contract the rest of the library is built on — packed filters
// re-pack bit-identically, dispatch variants match the looped kernel
// with MaxAbsDiff==0 — is enforced here at runtime by three layers:
// CRC32-C checksums over packed weight artifacts (verified on re-pack
// and on a sampled schedule), canary words around every worker's
// scratch buffers (checked when a run's grid joins), and the
// kernel-family probe VerifyKernelFamily (dispatch.go) that compares a
// variant's output bit-for-bit against the reference oracle. Each
// detection surfaces as a typed ErrIntegrity and is counted in the
// package-level IntegrityStats.

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"sync/atomic"
)

// castagnoli is the CRC32-C polynomial table; Castagnoli is the SSE4/
// ARMv8-hardware-accelerated polynomial, and hash/crc32 uses the
// CRC32C instructions when the CPU has them, so checksumming a packed
// filter costs well under the transform that built it.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcFloats computes the CRC32-C over the float32 bit patterns of
// data. It stages through a stack buffer so the steady-state verify
// path allocates nothing.
func crcFloats(data []float32) uint32 {
	var buf [1024]byte
	var crc uint32
	i := 0
	for i < len(data) {
		n := 0
		for n < len(buf) && i < len(data) {
			binary.LittleEndian.PutUint32(buf[n:], math.Float32bits(data[i]))
			n += 4
			i++
		}
		crc = crc32.Update(crc, castagnoli, buf[:n])
	}
	return crc
}

// Scratch-canary constants: every worker scratch buffer is allocated
// with canaryWords guard words past its logical end, stamped with a
// bit pattern no kernel computes (a fixed quiet negative float), and
// checked when the run's grid joins. In pure Go an overrun past a
// slice length panics before it reaches the guard; the canaries exist
// for the faultinject.ScratchOverrun drill and for future assembly
// kernels, whose stores bypass bounds checks entirely.
const (
	canaryBits  = 0xDEADBEEF // not NaN/Inf (exponent 0xBD): survives any scan
	canaryWords = 4
)

// newGuarded allocates an n-element scratch buffer followed by
// canaryWords stamped guard words; the caller keeps the full slice for
// checking and hands out full[:n] for use.
func newGuarded(n int) []float32 {
	full := make([]float32, n+canaryWords)
	for i := n; i < len(full); i++ {
		full[i] = math.Float32frombits(canaryBits)
	}
	return full
}

// canariesIntact reports whether the guard words past element n still
// hold their stamp.
func canariesIntact(full []float32, n int) bool {
	for i := n; i < len(full); i++ {
		if math.Float32bits(full[i]) != canaryBits {
			return false
		}
	}
	return true
}

// DefaultPackedVerifyInterval is the sampled-verification period: one
// in this many packed executions re-checksums the weights it is about
// to consume. The period amortises the CRC cost to noise on the hot
// path while still bounding how long a resident bit flip can serve
// before detection.
const DefaultPackedVerifyInterval = 1024

var packedVerifyInterval atomic.Int64

func init() { packedVerifyInterval.Store(DefaultPackedVerifyInterval) }

// SetPackedVerifyInterval sets the sampled-verification period for
// packed executions (1 = verify every run, n <= 0 = sampling off;
// explicit Verify calls and the eviction/re-pack path are unaffected).
// It returns the previous value so tests and harnesses can restore it.
func SetPackedVerifyInterval(n int) int {
	return int(packedVerifyInterval.Swap(int64(n)))
}

// PackedVerifyInterval returns the current sampled-verification
// period.
func PackedVerifyInterval() int { return int(packedVerifyInterval.Load()) }

var (
	packedVerifies       atomic.Uint64
	packedVerifyFailures atomic.Uint64
	scratchCanaryTrips   atomic.Uint64
)

// IntegrityStats is a point-in-time snapshot of the package-level
// corruption-defense counters.
type IntegrityStats struct {
	PackedVerifies       uint64 `json:"packed_verifies"`        // checksum verifications run (sampled + explicit)
	PackedVerifyFailures uint64 `json:"packed_verify_failures"` // verifications that found a mismatch
	ScratchCanaryTrips   uint64 `json:"scratch_canary_trips"`   // runs quarantined for an overwritten guard word
}

// IntegritySnapshot snapshots the corruption-defense counters.
func IntegritySnapshot() IntegrityStats {
	return IntegrityStats{
		PackedVerifies:       packedVerifies.Load(),
		PackedVerifyFailures: packedVerifyFailures.Load(),
		ScratchCanaryTrips:   scratchCanaryTrips.Load(),
	}
}

// FillProbe fills data with small integers in [-3, 3] from a
// deterministic stream — the library-wide convention for bit-exact
// oracles: integer-valued float32 operands make the optimised float32
// paths and the float64 reference produce identical bits, so a probe
// can demand MaxAbsDiff == 0. Exported for the serving layer's
// integrity sentinel, which builds golden model inputs the same way.
func FillProbe(data []float32, seed uint64) { fillProbe(data, seed) }

func fillProbe(data []float32, seed uint64) {
	x := seed*2654435761 + 12345
	for i := range data {
		x = x*6364136223846793005 + 1442695040888963407
		data[i] = float32(int64(x>>33)%7 - 3)
	}
}
