package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// DepthwisePlan is the reusable execution state for a depthwise
// convolution (DESIGN.md §13): the depthwise twin of Plan. It fixes
// the shape, kernel variant (dispatch registry, quarantine-aware),
// fused epilogue and row-tile decomposition at construction, and pools
// per-run state so a warm plan executes with zero heap allocations —
// the same steady-state contract the standard packed path holds.
//
// The iteration space is the N·C independent (n, c) planes, each cut
// into row tiles of rowTile output rows; grid cells are distributed
// contiguously over the worker tasks. Depthwise needs no packing
// scratch (each output channel reads one input plane directly), so a
// worker's only state is its task range.
type DepthwisePlan struct {
	Shape conv.Shape // K normalised to C (depthwise: one output per input channel)

	opts    Options
	threads int
	variant *dwKernelVariant // nil: generic depthwisePlaneRange body
	ep      epilogue         // per-channel (length C) fused epilogue
	gen     uint64           // dispatchGen at construction (memo invalidation)

	rowTile int // output rows per grid cell
	tiles   int // row tiles per plane
	cells   int // N·C·tiles
	workers int

	runMu   sync.Mutex
	runFree []*dwRun
	runSeq  uint64 // guarded by runMu; diagnostic only
}

// dwTask is one worker's prebuilt dispatch unit: a contiguous range of
// grid cells and the two closures the drivers reuse (fn = recovery
// shell, body = fault-injection points + the cell loop). Closures are
// built once per run state, so steady-state dispatch allocates no
// funcvals.
type dwTask struct {
	r      *dwRun
	w      int // task slot, also the faultinject worker index
	lo, hi int // cell range
	fn     func()
	body   func()
}

// dwRun is one execution's mutable state, pooled on the plan exactly
// like planRun: operand slices are cleared on release so a parked run
// never pins a caller's tensors.
type dwRun struct {
	p               *DepthwisePlan
	in, filter, out []float32

	fs    parallel.FaultSink
	g     parallel.Group
	tasks []*dwTask

	abandonFn func(error)
	drainFn   func()
}

// TryNewDepthwisePlan validates the geometry and options and builds a
// reusable depthwise plan. The Shape's K is ignored (output channels
// equal input channels); Options.FusedEpilogue / Epilogue+Bias apply
// per output channel, so their slices must have length C, not K.
// Options.ForceTh overrides the row-tile height (the `ndtune`
// depthwise tuning knob); Options.ForceGenericKernel pins the plan to
// the oracle body.
func TryNewDepthwisePlan(s conv.Shape, opt Options) (*DepthwisePlan, error) {
	chk := s
	chk.K = 1
	if err := chk.Validate(); err != nil {
		return nil, err
	}
	s.K = s.C
	if opt.Threads < 0 || opt.Threads > maxThreads {
		return nil, fmt.Errorf("%w: Threads=%d outside [0, %d]", ErrBadOptions, opt.Threads, maxThreads)
	}
	if opt.ForceTh < 0 {
		return nil, fmt.Errorf("%w: ForceTh=%d negative", ErrBadOptions, opt.ForceTh)
	}
	if opt.DepthwiseEpilogue != nil {
		return nil, fmt.Errorf("%w: DepthwiseEpilogue is a separable-plan option; a depthwise plan's epilogue is FusedEpilogue", ErrBadOptions)
	}
	if opt.FusedEpilogue != nil && (opt.Epilogue != EpilogueNone || opt.Bias != nil) {
		return nil, fmt.Errorf("%w: FusedEpilogue and Epilogue/Bias are mutually exclusive", ErrBadOptions)
	}
	if err := validateChannelEpilogue(opt.FusedEpilogue, s.C, "depthwise"); err != nil {
		return nil, err
	}
	if opt.Epilogue == EpilogueBias || opt.Epilogue == EpilogueBiasReLU {
		if len(opt.Bias) != s.C {
			return nil, fmt.Errorf("%w: depthwise bias length %d, want C=%d", ErrBadOptions, len(opt.Bias), s.C)
		}
	}

	p := &DepthwisePlan{Shape: s, opts: opt, ep: normalizeEpilogue(opt), gen: dispatchGen.Load()}
	p.threads = opt.Threads
	if p.threads == 0 {
		p.threads = parallel.DefaultThreads()
	}
	if !opt.ForceGenericKernel {
		p.variant = dwVariantFor(s)
	}

	pp := s.P()
	planes := s.N * s.C
	switch {
	case opt.ForceTh > 0:
		p.rowTile = min(opt.ForceTh, pp)
	case planes >= 2*p.threads:
		// Enough whole planes to balance the grid: no row split.
		p.rowTile = pp
	default:
		// Few planes (small C·N, large H — the MobileNet stem): split
		// rows so every worker gets ~2 cells to balance stragglers.
		per := (2*p.threads + planes - 1) / planes
		if per > pp {
			per = pp
		}
		p.rowTile = (pp + per - 1) / per
	}
	p.tiles = (pp + p.rowTile - 1) / p.rowTile
	p.cells = planes * p.tiles
	p.workers = min(p.threads, p.cells)
	if p.workers < 1 {
		p.workers = 1
	}
	return p, nil
}

// validateChannelEpilogue checks an EpilogueParams' slice lengths
// against the channel count of the stage it fuses into.
func validateChannelEpilogue(fe *EpilogueParams, ch int, stage string) error {
	if fe == nil {
		return nil
	}
	if fe.Bias != nil && len(fe.Bias) != ch {
		return fmt.Errorf("%w: %s epilogue bias length %d, want %d", ErrBadOptions, stage, len(fe.Bias), ch)
	}
	if (fe.Scale == nil) != (fe.Shift == nil) {
		return fmt.Errorf("%w: %s epilogue Scale and Shift must be both nil or both set", ErrBadOptions, stage)
	}
	if fe.Scale != nil && (len(fe.Scale) != ch || len(fe.Shift) != ch) {
		return fmt.Errorf("%w: %s epilogue affine lengths %d/%d, want %d", ErrBadOptions, stage, len(fe.Scale), len(fe.Shift), ch)
	}
	return nil
}

// KernelName reports which depthwise kernel the plan dispatches to.
func (p *DepthwisePlan) KernelName() string {
	if p.variant != nil {
		return p.variant.name
	}
	return "dw.generic"
}

// Generation returns the kernel-dispatch generation the plan was
// built under; a plan memo compares it against
// KernelDispatchGeneration to invalidate on quarantine/restore.
func (p *DepthwisePlan) Generation() uint64 { return p.gen }

// OutputBytes returns the byte size of the plan's output tensor (the
// serve-layer admission ladder's per-request footprint input).
func (p *DepthwisePlan) OutputBytes() int64 {
	s := p.Shape
	return 4 * int64(s.N) * int64(s.C) * int64(s.P()) * int64(s.Q())
}

// ScratchBytes returns the plan's worker-private scratch footprint:
// zero — depthwise workers read the input plane directly and write the
// output in place.
func (p *DepthwisePlan) ScratchBytes() int64 { return 0 }

// PackedBytes returns the byte size TransformFilter would allocate.
func (p *DepthwisePlan) PackedBytes() int64 {
	s := p.Shape
	return 4 * int64(s.C) * int64(s.R) * int64(s.S)
}

// kernel returns the dispatch target.
func (p *DepthwisePlan) kernel() depthwiseKernel {
	if p.variant != nil {
		return p.variant.kern
	}
	return depthwisePlaneRange
}

// cell computes one grid cell: the row tile [h0, h1) of plane
// cell/tiles, kernel accumulation then the per-channel epilogue sweep
// (bias → affine → ReLU, the storeLane order, applied in a second
// pass over the still-cache-hot tile — float32 store+reload is
// value-preserving, so the sweep is bit-identical to an in-register
// epilogue and to the separate nn addBias/applyBN/applyReLU passes).
func (p *DepthwisePlan) cell(in, filter, out []float32, cell int, kern depthwiseKernel) {
	s := p.Shape
	pp, q := s.P(), s.Q()
	plane := cell / p.tiles
	h0 := (cell % p.tiles) * p.rowTile
	h1 := min(h0+p.rowTile, pp)
	c := plane % s.C
	inPlane := in[plane*s.H*s.W : (plane+1)*s.H*s.W]
	fch := filter[c*s.R*s.S : (c+1)*s.R*s.S]
	dst := out[plane*pp*q+h0*q : plane*pp*q+h1*q]
	kern(s, inPlane, fch, dst, h0, h1)
	if !p.ep.none {
		applyChannelEpilogue(dst, &p.ep, c)
	}
}

// applyChannelEpilogue applies one channel's fused epilogue over a
// contiguous slice of that channel's outputs, in storeLane's
// per-element order: bias, affine, ReLU.
func applyChannelEpilogue(dst []float32, ep *epilogue, c int) {
	var bias, scale, shift float32
	hasBias := ep.bias != nil
	if hasBias {
		bias = ep.bias[c]
	}
	hasAffine := ep.scale != nil
	if hasAffine {
		scale, shift = ep.scale[c], ep.shift[c]
	}
	relu := ep.relu
	for i := range dst {
		v := dst[i]
		if hasBias {
			v += bias
		}
		if hasAffine {
			v = v*scale + shift
		}
		if relu && v < 0 {
			v = 0
		}
		dst[i] = v
	}
}

// newRun builds a run state: one task per worker, cells distributed
// contiguously (parallel.Split's policy), closures prebuilt.
func (p *DepthwisePlan) newRun() *dwRun {
	r := &dwRun{p: p}
	kern := p.kernel()
	chunk := (p.cells + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, p.cells)
		if lo >= hi {
			break
		}
		t := &dwTask{r: r, w: w, lo: lo, hi: hi}
		t.body = func() {
			faultinject.Fire(faultinject.WorkerPanic, t.w)
			faultinject.Stall(faultinject.WorkerStall, t.w)
			for cell := t.lo; cell < t.hi; cell++ {
				if t.r.fs.Stopped() {
					return
				}
				p.cell(t.r.in, t.r.filter, t.r.out, cell, kern)
			}
		}
		t.fn = func() { r.fs.Record(parallel.Protect(t.body)) }
		r.tasks = append(r.tasks, t)
	}
	r.abandonFn = func(err error) { r.fs.Record(err) }
	r.drainFn = func() { p.releaseRun(r) }
	return r
}

func (p *DepthwisePlan) getRun() *dwRun {
	p.runMu.Lock()
	if n := len(p.runFree); n > 0 {
		r := p.runFree[n-1]
		p.runFree[n-1] = nil
		p.runFree = p.runFree[:n-1]
		p.runMu.Unlock()
		return r
	}
	p.runMu.Unlock()
	return p.newRun()
}

func (p *DepthwisePlan) releaseRun(r *dwRun) {
	r.in, r.filter, r.out = nil, nil, nil
	p.runMu.Lock()
	if len(p.runFree) < maxFreeRuns {
		p.runFree = append(p.runFree, r)
	}
	p.runMu.Unlock()
}

// run executes the plane/row-tile grid on the persistent worker pool,
// with Plan.run's join semantics: non-cancellable callers execute the
// first task inline and join unconditionally; cancellable callers
// dispatch every task and bound the join by ctx (abandoned stragglers
// are accounted in parallel.LeakedWorkers and the run state recycles
// only when they terminate).
func (p *DepthwisePlan) run(ctx context.Context, in, filter, out []float32) error {
	r := p.getRun()
	if len(r.tasks) == 0 {
		p.releaseRun(r)
		return nil
	}
	r.in, r.filter, r.out = in, filter, out
	r.fs.Reset()
	p.runMu.Lock()
	p.runSeq++
	p.runMu.Unlock()

	if ctx == nil || ctx.Done() == nil {
		if len(r.tasks) > 1 {
			pool := parallel.DefaultPool()
			for _, t := range r.tasks[1:] {
				r.g.GoVia(pool, t.fn)
			}
			r.tasks[0].fn()
			r.g.Wait()
		} else {
			r.tasks[0].fn()
		}
		err := r.fs.Err()
		p.releaseRun(r)
		return err
	}

	pool := parallel.DefaultPool()
	for _, t := range r.tasks {
		r.g.GoVia(pool, t.fn)
	}
	if err := r.g.WaitCtx(ctx, r.abandonFn, r.drainFn); err != nil {
		return fmt.Errorf("%w: %w", conv.ErrDeadline, err)
	}
	err := r.fs.Err()
	p.releaseRun(r)
	return err
}

// TryExecute runs the depthwise plan on an NCHW input with a [C,R,S]
// filter, writing the [N,C,P,Q] output in place. A nil error always
// means a correct output: execution faults are recomputed on the
// oracle path.
func (p *DepthwisePlan) TryExecute(in, filter, out *tensor.Tensor) error {
	return p.TryExecuteCtx(context.Background(), in, filter, out)
}

// TryExecuteCtx is TryExecute bounded by ctx, with Plan.TryExecuteCtx
// deadline semantics (abandon + conv.ErrDeadline, or a
// FallbackBudget-bounded oracle recompute published through a fresh
// out.Data array).
func (p *DepthwisePlan) TryExecuteCtx(ctx context.Context, in, filter, out *tensor.Tensor) error {
	s := p.Shape
	if err := conv.ValidateTensor("depthwise input", in, s.N, s.C, s.H, s.W); err != nil {
		return err
	}
	if err := conv.ValidateTensor("depthwise filter", filter, s.C, s.R, s.S); err != nil {
		return err
	}
	if err := conv.ValidateTensor("depthwise output", out, s.N, s.C, s.P(), s.Q()); err != nil {
		return err
	}
	return p.execChecked(ctx, in, filter, nil, out)
}

// TryExecutePacked runs the plan with a pre-packed depthwise filter in
// place of the raw [C,R,S] tensor; results are bit-identical to
// TryExecute with the packed filter's source weights.
func (p *DepthwisePlan) TryExecutePacked(in *tensor.Tensor, pf *PackedDepthwiseFilter, out *tensor.Tensor) error {
	return p.TryExecutePackedCtx(context.Background(), in, pf, out)
}

// TryExecutePackedCtx is TryExecutePacked bounded by ctx.
func (p *DepthwisePlan) TryExecutePackedCtx(ctx context.Context, in *tensor.Tensor, pf *PackedDepthwiseFilter, out *tensor.Tensor) error {
	if err := pf.validateFor(p); err != nil {
		return err
	}
	s := p.Shape
	if err := conv.ValidateTensor("depthwise input", in, s.N, s.C, s.H, s.W); err != nil {
		return err
	}
	if err := conv.ValidateTensor("depthwise output", out, s.N, s.C, s.P(), s.Q()); err != nil {
		return err
	}
	return p.execChecked(ctx, in, pf.src, pf, out)
}

// execChecked is the depthwise twin of Plan.execChecked: the same
// fault ladder (fast-fail expired contexts, injected weight
// corruption against a run-private copy, sampled packed verification
// returned typed, non-finite scan under injection or CheckNumerics,
// oracle recompute on worker faults, budget-bounded recompute on
// deadlines).
func (p *DepthwisePlan) execChecked(ctx context.Context, in, filter *tensor.Tensor, pf *PackedDepthwiseFilter, out *tensor.Tensor) error {
	if ctx == nil {
		ctx = context.Background()
	}
	cancellable := ctx.Done() != nil
	if cancellable && ctx.Err() != nil {
		if p.opts.FallbackBudget <= 0 {
			return deadlineErr(ctx)
		}
		return p.deadlineFallback(ctx, in, filter, out, deadlineErr(ctx))
	}
	injecting := faultinject.Enabled()
	fdata := filter.Data
	if pf != nil {
		fdata = pf.data
		forceVerify := false
		if injecting {
			if idx, ok := faultinject.Take(faultinject.WeightBitflip); ok && len(fdata) > 0 {
				if idx < 0 || idx >= len(fdata) {
					idx = 0
				}
				corrupted := append([]float32(nil), fdata...)
				corrupted[idx] = math.Float32frombits(math.Float32bits(corrupted[idx]) ^ 0x00400000)
				fdata = corrupted
				forceVerify = true
			}
		}
		if forceVerify || pf.shouldVerify() {
			if verr := pf.verifyConsumed(fdata); verr != nil {
				return verr
			}
		}
		if injecting {
			if idx, ok := faultinject.Take(faultinject.PackedCorrupt); ok && len(fdata) > 0 {
				if idx < 0 || idx >= len(fdata) {
					idx = 0
				}
				corrupted := append([]float32(nil), fdata...)
				corrupted[idx] = float32(math.NaN())
				fdata = corrupted
			}
		}
	}
	err := p.run(ctx, in.Data, fdata, out.Data)
	if err == nil && injecting {
		if idx, ok := faultinject.Take(faultinject.NaNPoison); ok && len(out.Data) > 0 {
			if idx < 0 || idx >= len(out.Data) {
				idx = 0
			}
			out.Data[idx] = float32(math.NaN())
		}
	}
	if err == nil && (injecting || p.opts.CheckNumerics) {
		if i, bad := scanNonFinite(out.Data); bad {
			err = fmt.Errorf("%w: non-finite depthwise output at element %d", ErrExecFault, i)
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrIntegrity) {
		return err
	}
	if errors.Is(err, conv.ErrDeadline) {
		if p.opts.FallbackBudget <= 0 {
			return err
		}
		return p.deadlineFallback(ctx, in, filter, out, err)
	}
	Logf("core: depthwise path faulted on %v; recomputing on oracle path: %v", p.Shape, err)
	p.fallbackOracle(in.Data, filter.Data, out.Data)
	if p.opts.CheckNumerics {
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite depthwise output at element %d after oracle fallback", ErrExecFault, i)
		}
	}
	return nil
}

// fallbackOracle recomputes the full result sequentially on the
// generic oracle body plus the epilogue sweep, in place — safe because
// the fault path joins every worker first.
func (p *DepthwisePlan) fallbackOracle(in, filter, out []float32) {
	s := p.Shape
	pp, q := s.P(), s.Q()
	for plane := 0; plane < s.N*s.C; plane++ {
		c := plane % s.C
		inPlane := in[plane*s.H*s.W : (plane+1)*s.H*s.W]
		fch := filter[c*s.R*s.S : (c+1)*s.R*s.S]
		dst := out[plane*pp*q : (plane+1)*pp*q]
		depthwisePlaneRange(s, inPlane, fch, dst, 0, pp)
		if !p.ep.none {
			applyChannelEpilogue(dst, &p.ep, c)
		}
	}
}

// deadlineFallback spends Options.FallbackBudget recomputing on the
// oracle path after a blown deadline, publishing through a fresh
// backing array because the abandoned grid may still store into the
// old one (Plan.deadlineFallback's contract).
func (p *DepthwisePlan) deadlineFallback(ctx context.Context, in, filter *tensor.Tensor, out *tensor.Tensor, origErr error) error {
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.opts.FallbackBudget)
	defer cancel()
	Logf("core: depthwise path abandoned on %v; recomputing on oracle path within %v: %v",
		p.Shape, p.opts.FallbackBudget, origErr)
	s := p.Shape
	pp, q := s.P(), s.Q()
	fresh := make([]float32, len(out.Data))
	for plane := 0; plane < s.N*s.C; plane++ {
		if fctx.Err() != nil {
			return origErr
		}
		c := plane % s.C
		inPlane := in.Data[plane*s.H*s.W : (plane+1)*s.H*s.W]
		fch := filter.Data[c*s.R*s.S : (c+1)*s.R*s.S]
		dst := fresh[plane*pp*q : (plane+1)*pp*q]
		depthwisePlaneRange(s, inPlane, fch, dst, 0, pp)
		if !p.ep.none {
			applyChannelEpilogue(dst, &p.ep, c)
		}
	}
	out.Data = fresh
	if p.opts.CheckNumerics {
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite depthwise output at element %d after oracle fallback", ErrExecFault, i)
		}
	}
	return nil
}

// PackedDepthwiseFilter is the persistent packed form of a depthwise
// [C,R,S] filter: a private copy of the weights stamped with a
// CRC32-C at pack time (DESIGN.md §12 — the depthwise layout is
// already the per-channel contiguous form the kernels consume, so
// packing buys immutability, residency accounting and checksum
// protection rather than a reordering). Verification runs on the same
// sampled schedule as PackedFilter (SetPackedVerifyInterval), and a
// mismatch is typed ErrIntegrity: the owner must re-pack from the
// retained source.
type PackedDepthwiseFilter struct {
	c, r, s   int
	src       *tensor.Tensor
	data      []float32
	released  atomic.Bool
	crc       uint32
	verifySeq atomic.Uint64
}

// TransformFilter packs the [C,R,S] depthwise filter for the plan,
// stamping its CRC32-C. The source tensor is retained (Source) so
// fault fallbacks and re-packs read pristine weights.
func (p *DepthwisePlan) TransformFilter(filter *tensor.Tensor) (*PackedDepthwiseFilter, error) {
	s := p.Shape
	if err := conv.ValidateTensor("depthwise filter", filter, s.C, s.R, s.S); err != nil {
		return nil, err
	}
	data := append([]float32(nil), filter.Data...)
	return &PackedDepthwiseFilter{
		c: s.C, r: s.R, s: s.S,
		src:  filter,
		data: data,
		crc:  crcFloats(data),
	}, nil
}

// Checksum returns the pack-time CRC32-C.
func (pf *PackedDepthwiseFilter) Checksum() uint32 { return pf.crc }

// Verify re-checks the packed weights against the pack-time CRC32-C.
func (pf *PackedDepthwiseFilter) Verify() error { return pf.verifyConsumed(pf.data) }

func (pf *PackedDepthwiseFilter) verifyConsumed(data []float32) error {
	packedVerifies.Add(1)
	if crcFloats(data) != pf.crc {
		packedVerifyFailures.Add(1)
		return fmt.Errorf("%w: packed depthwise filter C%d R%d S%d fails its pack-time CRC32-C; re-pack from the source",
			ErrIntegrity, pf.c, pf.r, pf.s)
	}
	return nil
}

func (pf *PackedDepthwiseFilter) shouldVerify() bool {
	iv := packedVerifyInterval.Load()
	if iv <= 0 {
		return false
	}
	return pf.verifySeq.Add(1)%uint64(iv) == 0
}

// Bytes returns the packed allocation size (weight-budget accounting).
func (pf *PackedDepthwiseFilter) Bytes() int64 { return 4 * int64(len(pf.data)) }

// Source returns the retained [C,R,S] source tensor.
func (pf *PackedDepthwiseFilter) Source() *tensor.Tensor { return pf.src }

// CompatibleWith reports whether the packed geometry matches the plan.
func (pf *PackedDepthwiseFilter) CompatibleWith(p *DepthwisePlan) bool {
	s := p.Shape
	return pf.c == s.C && pf.r == s.R && pf.s == s.S
}

// Release marks the packed weights evicted, exactly once. In-flight
// runs holding the data finish safely (the array is immutable); new
// executions fail typed with ErrWeightsReleased.
func (pf *PackedDepthwiseFilter) Release() bool {
	return !pf.released.Swap(true)
}

// Released reports whether Release has been called.
func (pf *PackedDepthwiseFilter) Released() bool { return pf.released.Load() }

func (pf *PackedDepthwiseFilter) validateFor(p *DepthwisePlan) error {
	if pf == nil {
		return fmt.Errorf("%w: nil packed depthwise filter", ErrBadOptions)
	}
	if pf.Released() {
		return fmt.Errorf("%w: packed depthwise filter C%d R%d S%d", ErrWeightsReleased, pf.c, pf.r, pf.s)
	}
	if !pf.CompatibleWith(p) {
		return fmt.Errorf("%w: packed depthwise filter C%d R%d S%d does not match plan %v",
			ErrBadOptions, pf.c, pf.r, pf.s, p.Shape)
	}
	return nil
}

// dwKernelProbe caches one depthwise family's golden-probe state so
// steady-state sentinel probes are allocation-free (the kernelProbe
// discipline).
type dwKernelProbe struct {
	mu              sync.Mutex
	plan            *DepthwisePlan
	in, filter, out *tensor.Tensor
	want            *tensor.Tensor
}

var (
	dwKernelProbesMu sync.Mutex
	dwKernelProbes   = map[string]*dwKernelProbe{}
)

// dwVerifyShapeFor is the depthwise golden probe geometry: small,
// padded, with a ragged Q tail (11 = 2·4+3 at stride 1) so the
// vector interior, the guarded halo and the scalar tail all run.
func dwVerifyShapeFor(v *dwKernelVariant) conv.Shape {
	return conv.Shape{N: 1, C: 5, H: 11, W: 11, K: 5, R: v.r, S: v.s, Str: v.str, Pad: 1}
}

// verifyDepthwiseFamily runs the named depthwise family over a golden
// integer-valued probe and compares bit-for-bit against the
// depthwisePlaneRange oracle (the pre-plan scalar loop). Divergence
// wraps ErrIntegrity; the serve sentinel then quarantines the family
// via the shared QuarantineKernelFamily surface.
func verifyDepthwiseFamily(v *dwKernelVariant) error {
	s := dwVerifyShapeFor(v)
	dwKernelProbesMu.Lock()
	kp := dwKernelProbes[v.name]
	dwKernelProbesMu.Unlock()
	if kp == nil {
		p, err := TryNewDepthwisePlan(s, Options{Threads: 1})
		if err != nil {
			return err
		}
		// Force the probe through the family's kernel regardless of
		// quarantine state (the restore probe).
		p.variant = v
		kp = &dwKernelProbe{
			plan:   p,
			in:     tensor.New(s.N, s.C, s.H, s.W),
			filter: tensor.New(s.C, s.R, s.S),
			out:    tensor.New(s.N, s.C, s.P(), s.Q()),
		}
		fillProbe(kp.in.Data, 0xD3A11CE)
		fillProbe(kp.filter.Data, 0xD3B0B)
		kp.want = tensor.New(s.N, s.C, s.P(), s.Q())
		for plane := 0; plane < s.N*s.C; plane++ {
			c := plane % s.C
			depthwisePlaneRange(s,
				kp.in.Data[plane*s.H*s.W:(plane+1)*s.H*s.W],
				kp.filter.Data[c*s.R*s.S:(c+1)*s.R*s.S],
				kp.want.Data[plane*s.P()*s.Q():(plane+1)*s.P()*s.Q()], 0, s.P())
		}
		dwKernelProbesMu.Lock()
		if prev := dwKernelProbes[v.name]; prev != nil {
			kp = prev
		} else {
			dwKernelProbes[v.name] = kp
		}
		dwKernelProbesMu.Unlock()
	}
	kp.mu.Lock()
	defer kp.mu.Unlock()
	if err := kp.plan.TryExecute(kp.in, kp.filter, kp.out); err != nil {
		return err
	}
	if _, ok := faultinject.Take(faultinject.KernelMiscompute); ok && len(kp.out.Data) > 0 {
		kp.out.Data[0]++
	}
	for i := range kp.out.Data {
		if kp.out.Data[i] != kp.want.Data[i] {
			return fmt.Errorf("%w: depthwise kernel family %s diverges from oracle at element %d on probe %v: got %g, want %g",
				ErrIntegrity, v.name, i, s, kp.out.Data[i], kp.want.Data[i])
		}
	}
	return nil
}
