package core

import (
	"testing"

	"ndirect/internal/simd"
)

// Direct micro-kernel A/B: one (tc=32, R=3, S=3) register-tile update
// per iteration, no loop-nest overhead. Decides the dispatch default
// on the running host.
func BenchmarkMicroKernelBodies(b *testing.B) {
	const tc, r, s, vw, vk, str = 32, 3, 3, 12, 8, 1
	wIn := (vw-1)*str + s
	buf := make([]float32, tc*r*wIn)
	tf := make([]float32, tc*r*s*vk)
	for i := range buf {
		buf[i] = float32(i%17) * 0.25
	}
	for i := range tf {
		tf[i] = float32(i%13) * 0.5
	}
	flops := float64(2 * tc * r * s * vw * vk)

	b.Run("looped12x8", func(b *testing.B) {
		var acc accFile8
		for i := 0; i < b.N; i++ {
			kernel12x8(&acc, buf, tf, tc, r, s, str, vw, wIn)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		sinkV = acc[0]
	})
	b.Run("unrolledS3", func(b *testing.B) {
		var acc accFile8
		for i := 0; i < b.N; i++ {
			kernel12x8S3(&acc, buf, tf, tc, r, vw, wIn)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		sinkV = acc[0]
	})
	b.Run("generic", func(b *testing.B) {
		acc := make([]simd.Vec4, vw*vk/4)
		for i := 0; i < b.N; i++ {
			kernelGeneric(acc, buf, tf, tc, r, s, str, vw, wIn, vk)
		}
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		sinkV = acc[0]
	})
}

var sinkV simd.Vec4
