package core

import (
	"math"
	"math/rand"
	"testing"

	"ndirect/internal/conv"
)

func randSlice64(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*2 - 1
	}
	return out
}

func checkConv64(t *testing.T, s conv.Shape) {
	t.Helper()
	in := randSlice64(s.N*s.C*s.H*s.W, int64(s.C))
	filter := randSlice64(s.K*s.C*s.R*s.S, int64(s.K))
	want := Reference64(s, in, filter)
	got := Conv2D64(s, in, filter, Options{Threads: 2})
	var maxDiff float64
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-10 {
		t.Fatalf("%v: fp64 max diff %g", s, maxDiff)
	}
}

func TestConv2D64MatchesReference(t *testing.T) {
	checkConv64(t, conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv64(t, conv.Shape{N: 2, C: 4, H: 10, W: 10, K: 8, R: 1, S: 1, Str: 1, Pad: 0})
	checkConv64(t, conv.Shape{N: 1, C: 4, H: 14, W: 14, K: 8, R: 3, S: 3, Str: 2, Pad: 1})
	checkConv64(t, conv.Shape{N: 1, C: 3, H: 16, W: 16, K: 8, R: 7, S: 7, Str: 2, Pad: 3})
}

func TestConv2D64RaggedDims(t *testing.T) {
	checkConv64(t, conv.Shape{N: 1, C: 5, H: 7, W: 9, K: 7, R: 3, S: 3, Str: 1, Pad: 1})
	checkConv64(t, conv.Shape{N: 1, C: 130, H: 6, W: 6, K: 3, R: 3, S: 3, Str: 1, Pad: 1})
}

func TestConv2D64ThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := randSlice64(s.N*s.C*s.H*s.W, 1)
	filter := randSlice64(s.K*s.C*s.R*s.S, 2)
	a := Conv2D64(s, in, filter, Options{Threads: 1})
	b := Conv2D64(s, in, filter, Options{Threads: 8})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("fp64 threading changed result")
		}
	}
}

func TestConv2D64Validation(t *testing.T) {
	s := conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short input")
		}
	}()
	Conv2D64(s, make([]float64, 3), make([]float64, s.K*s.C*9), Options{})
}

// FP64 precision property: with inputs exactly representable in
// float64, nDirect64's tiled accumulation differs from the naive
// order by strictly less than FP32 epsilon-scale errors.
func TestConv2D64PrecisionBeatsFP32(t *testing.T) {
	s := conv.Shape{N: 1, C: 64, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in64 := randSlice64(s.N*s.C*s.H*s.W, 5)
	f64 := randSlice64(s.K*s.C*s.R*s.S, 6)
	want := Reference64(s, in64, f64)
	got64 := Conv2D64(s, in64, f64, Options{Threads: 1})

	in32 := s.NewInput()
	f32 := s.NewFilter()
	for i := range in64 {
		in32.Data[i] = float32(in64[i])
	}
	for i := range f64 {
		f32.Data[i] = float32(f64[i])
	}
	got32 := Conv2D(s, in32, f32, Options{Threads: 1})

	var err64, err32 float64
	for i := range want {
		if d := math.Abs(want[i] - got64[i]); d > err64 {
			err64 = d
		}
		if d := math.Abs(want[i] - float64(got32.Data[i])); d > err32 {
			err32 = d
		}
	}
	if err64 >= err32 {
		t.Fatalf("fp64 error (%g) should beat fp32 error (%g)", err64, err32)
	}
}
