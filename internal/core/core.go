// Package core implements nDirect, the paper's direct convolution
// algorithm for ARM multi-cores (Algorithm 2).
//
// nDirect preserves the framework-native NCHW/NHWC activation layouts
// and KCRS filter layout. It tiles the loop nest at two levels — cache
// tiles T_c/T_k/T_h from the Equation 1–2 analytical model, register
// tiles V_w × V_k from the Equation 3–4 model — transforms the filter
// block to a vector-friendly blocking on the fly (line 5 of
// Algorithm 2), packs the input micro-panel into a linear buffer
// overlapped with the first compute pass (§5.3), and runs an
// outer-product micro-kernel (Algorithm 3) built on scalar-vector FMA.
// Parallelisation follows §6: a PT_k × PT_n static thread grid over
// the K and N/H/W dimensions, never over the reduction dimensions.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/model"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Epilogue selects the fused post-processing applied when the last
// input-channel tile is stored (the library-level equivalent of the
// operator fusion discussion in §8.3).
type Epilogue int

const (
	// EpilogueNone stores the raw convolution result.
	EpilogueNone Epilogue = iota
	// EpilogueBias adds a per-output-channel bias.
	EpilogueBias
	// EpilogueReLU applies max(x, 0).
	EpilogueReLU
	// EpilogueBiasReLU adds bias then applies ReLU.
	EpilogueBiasReLU
)

// EpilogueParams is the generalised fused epilogue: per-channel bias,
// per-channel affine (the inference form of batch normalisation,
// y = x·Scale[k] + Shift[k]) and ReLU, applied in exactly that order
// while the accumulator tile is still in registers — the operator
// fusion of §8.3 extended to the Conv→BN→ReLU chains real networks
// serve. The order and the per-element float32 expressions match the
// separate addBias → applyBN → applyReLU passes, so fused output is
// bit-identical to the unfused path. Each non-nil slice must have
// length K; Scale and Shift must be both nil or both set. The slices
// are captured by the plan, not copied — callers must not mutate them
// while the plan is alive (the plan-cache key hashes their contents,
// so mutation would also corrupt cache identity).
type EpilogueParams struct {
	Bias  []float32
	Scale []float32
	Shift []float32
	ReLU  bool
}

// epilogue is the plan-normalised epilogue the store/fallback paths
// consult: the enum forms and EpilogueParams both lower to it at plan
// construction, so the hot store loop tests plain fields instead of
// re-dispatching on option shape.
type epilogue struct {
	bias  []float32 // nil = no bias
	scale []float32 // nil = no affine; shift is paired
	shift []float32
	relu  bool
	none  bool // fast path: store raw accumulators
}

// normalizeEpilogue lowers the options' epilogue selection.
func normalizeEpilogue(opt Options) epilogue {
	if fe := opt.FusedEpilogue; fe != nil {
		ep := epilogue{bias: fe.Bias, scale: fe.Scale, shift: fe.Shift, relu: fe.ReLU}
		ep.none = fe.Bias == nil && fe.Scale == nil && !fe.ReLU
		return ep
	}
	switch opt.Epilogue {
	case EpilogueBias:
		return epilogue{bias: opt.Bias}
	case EpilogueReLU:
		return epilogue{relu: true}
	case EpilogueBiasReLU:
		return epilogue{bias: opt.Bias, relu: true}
	}
	return epilogue{none: true}
}

// Options configure plan construction. The zero value asks for the
// paper's defaults: analytically derived tile sizes for the given
// platform, overlapped packing, and one worker per available core.
type Options struct {
	// Threads is the worker count PT. 0 means parallel.DefaultThreads.
	Threads int
	// Platform supplies cache geometry and α for the analytical
	// models. Nil selects a generic profile (64 KiB L1 / 512 KiB L2 /
	// 1 MiB LLC share, α=2), suitable for unknown hosts.
	Platform *hw.Platform
	// SequentialPack disables the §5.3 packing/compute overlap and
	// packs each micro-panel in a separate pass before computing —
	// the baseline ablated in Figure 5.
	SequentialPack bool
	// ForceVw/ForceVk override the register-tile solver (ablation).
	// Both must be multiples of 4 and fit the Equation 3 budget.
	ForceVw, ForceVk int
	// ForceTc/ForceTk/ForceTh override the cache-tile solver
	// (auto-tuning hooks; 0 keeps the analytical value).
	ForceTc, ForceTk, ForceTh int
	// Epilogue selects fused bias/ReLU handling; Bias supplies the
	// per-channel bias for the bias epilogues (length K).
	Epilogue Epilogue
	Bias     []float32
	// FusedEpilogue, when non-nil, selects the generalised fused
	// epilogue (bias + per-channel affine + ReLU, see EpilogueParams)
	// instead of the enum above; setting both is an error. Off (nil) by
	// default — the zero-options path stores raw accumulators exactly
	// as before.
	FusedEpilogue *EpilogueParams
	// DepthwiseEpilogue is the depthwise-stage epilogue of a separable
	// plan (length C; typically the folded depthwise BN + ReLU), applied
	// to each depthwise row tile before the fused pointwise stage
	// consumes it. Only TryNewSeparablePlan honors it; the standard and
	// depthwise plans reject it so a misrouted option fails loudly
	// instead of being silently ignored. For a separable plan,
	// FusedEpilogue above is the pointwise-stage epilogue (length K).
	DepthwiseEpilogue *EpilogueParams
	// CollectStats makes Execute accumulate per-stage wall time,
	// readable via Plan.LastStats (filter transform, packing,
	// kernel, store).
	CollectStats bool
	// ForceGenericKernel disables the specialised micro-kernels —
	// the kernel-specialisation ablation of DESIGN.md §4.
	ForceGenericKernel bool
	// UnrolledKernels selects the fully S-unrolled Algorithm 3 body
	// for 3×3 stride-1 layers. That form needs the full 32-vector-
	// register file the paper's NEON target has; under Go on hosts
	// with 16 SIMD registers it spills and loses to the looped form
	// (measured in BenchmarkMicroKernelBodies), so the default is the
	// looped kernel and the faithful transcription is opt-in.
	UnrolledKernels bool
	// CheckNumerics makes every checked execution scan the output for
	// NaN/Inf after the optimised path finishes. On a non-finite value
	// the result is recomputed on the reference path and re-scanned; if
	// the reference output is non-finite too (a non-finite input, a
	// genuine overflow), the execution returns an error wrapping
	// ErrExecFault instead of handing the caller a poisoned tensor.
	// Costs one pass over the output; off by default. Under fault
	// injection the scan runs regardless of this knob.
	CheckNumerics bool
	// FallbackBudget is the extra wall-clock budget granted to the
	// reference-path fallback when a context-bounded execution
	// (TryExecuteCtx and friends) is abandoned on deadline expiry or
	// cancellation: 0 (the default) disables the fallback — the
	// deadline error wrapping conv.ErrDeadline is returned as-is —
	// while a positive value lets the driver spend up to that long
	// recomputing the result on the naive reference path, returning a
	// correct output and a nil error when it finishes in time. The
	// budget also covers a context that is already expired at the call
	// boundary. Because the abandoned grid's stragglers may still
	// store into the output array they captured, the fallback always
	// publishes through a fresh allocation (the plan entry points swap
	// it into out.Data; the one-shot drivers return it). It does not
	// affect fault (panic / NaN) fallbacks, which remain unbounded as
	// in the context-free path.
	FallbackBudget time.Duration
	// PlanCache, when non-nil, makes the one-shot entry points
	// (TryConv2D and friends, the NHWC/grouped/pointwise forms) fetch
	// their plan from the cache instead of re-solving the Equation 1–6
	// analytical models per call — the cross-call amortisation a
	// serving workload wants. Nil (the default) keeps the seed
	// behaviour: a fresh plan per call. The field itself is not part
	// of the cache key.
	PlanCache *PlanCache
}

// kernelKind selects the main micro-kernel implementation.
type kernelKind int

const (
	kindGeneric     kernelKind = iota // any (V_w, V_k), slice accumulators
	kind12x8                          // V_k=8 fixed-register file, looped S
	kind12x8S3                        // 3×3 stride-1, S fully unrolled (Alg. 3)
	kind12x8S1                        // 1×1 stride-1 pointwise
	kindSpecialized                   // registry variant, (R,S,str) constant-folded
)

// genericPlatform is the tile-model profile used when no platform is
// given.
var genericPlatform = hw.Platform{
	Name:       "generic",
	Cores:      1,
	FreqGHz:    2.0,
	PeakGFLOPS: 16,
	L1:         hw.Cache{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 4},
	L2:         hw.Cache{SizeBytes: 512 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 14},
	L3:         hw.Cache{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 40},
	FMAPipes:   2, FMALatency: 4, LoadPipes: 2, MemLatencyCycles: 160,
	Alpha: 2.0,
}

// Plan is a prepared nDirect convolution: shape-specialised tile
// sizes, thread mapping and scratch-space geometry. A Plan is
// immutable after construction and safe for concurrent Execute calls
// (each call checks out a pooled run state — worker scratch, task
// closures, fault sink — and returns it when the grid joins, so the
// steady state allocates nothing).
type Plan struct {
	Shape conv.Shape
	RT    model.RegTile
	CT    model.CacheTiles
	TM    model.ThreadMapping

	opts     Options
	platform hw.Platform
	threads  int
	kind     kernelKind
	variant  *kernelVariant // set iff kind == kindSpecialized
	ep       epilogue       // normalised fused epilogue

	// The static thread grid (§6) is a pure function of the plan, so
	// the per-dimension worker ranges are solved once here instead of
	// per execution.
	kRanges []parallel.Range // K, in Vk blocks
	nRanges []parallel.Range // batch
	hRanges []parallel.Range // output rows
	wRanges []parallel.Range // output-column tiles (Vw wide)

	runMu   sync.Mutex // guards runFree
	runFree []*planRun // reusable run states (scratch + task closures)

	runSeq       atomic.Uint64 // stamps each run for stats ordering
	statsMu      sync.Mutex
	lastStats    Stats  // most recent run's stats, under CollectStats
	lastStatsSeq uint64 // runSeq stamp of lastStats, under statsMu
}

// LastStats returns the per-stage times of the most recent run when
// Options.CollectStats is set. Safe against concurrent Execute calls
// on the same plan: each run replaces the stored value under a lock
// once all of its workers have terminated, and runs are stamped with a
// sequence number so a deadline-abandoned run whose stragglers exit
// late never overwrites the snapshot of a newer completed run.
func (p *Plan) LastStats() Stats {
	p.statsMu.Lock()
	defer p.statsMu.Unlock()
	return p.lastStats
}

// Stats aggregates per-stage wall time across workers (total CPU
// seconds, not elapsed).
type Stats struct {
	TransformSec float64 // filter layout transform (Alg. 2 line 5)
	PackSec      float64 // input packing micro-kernel (line 8)
	KernelSec    float64 // main micro-kernel (line 10)
	StoreSec     float64 // output register tile store
}

func (s Stats) total() float64 { return s.TransformSec + s.PackSec + s.KernelSec + s.StoreSec }

// Fractions returns each stage's share of the total stage time.
func (s Stats) Fractions() (transform, pack, kernel, store float64) {
	t := s.total()
	if t == 0 {
		return 0, 0, 0, 0
	}
	return s.TransformSec / t, s.PackSec / t, s.KernelSec / t, s.StoreSec / t
}

// validateOptions rejects Options values the planner cannot honour.
// Every failure wraps ErrBadOptions. Threads <= 0 is not an error (it
// selects the default), but a count past maxThreads is.
func validateOptions(s conv.Shape, opt Options) error {
	if opt.Threads > maxThreads {
		return fmt.Errorf("%w: Threads=%d exceeds %d", ErrBadOptions, opt.Threads, maxThreads)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"ForceVw", opt.ForceVw}, {"ForceVk", opt.ForceVk}} {
		if f.v != 0 && (f.v < 0 || f.v%4 != 0 || f.v > maxForceTile) {
			return fmt.Errorf("%w: %s=%d must be a multiple of 4 in [4, %d]",
				ErrBadOptions, f.name, f.v, maxForceTile)
		}
	}
	if opt.ForceVk > 32 {
		return fmt.Errorf("%w: ForceVk=%d exceeds the 32-lane register file", ErrBadOptions, opt.ForceVk)
	}
	for _, f := range []struct {
		name string
		v    int
	}{{"ForceTc", opt.ForceTc}, {"ForceTk", opt.ForceTk}, {"ForceTh", opt.ForceTh}} {
		if f.v < 0 {
			return fmt.Errorf("%w: %s=%d is negative", ErrBadOptions, f.name, f.v)
		}
	}
	if opt.FallbackBudget < 0 {
		return fmt.Errorf("%w: FallbackBudget=%v is negative", ErrBadOptions, opt.FallbackBudget)
	}
	switch opt.Epilogue {
	case EpilogueNone, EpilogueReLU:
	case EpilogueBias, EpilogueBiasReLU:
		if len(opt.Bias) != s.K {
			return fmt.Errorf("%w: bias length %d does not match K=%d", ErrBadOptions, len(opt.Bias), s.K)
		}
	default:
		return fmt.Errorf("%w: unknown epilogue %d", ErrBadOptions, opt.Epilogue)
	}
	if opt.DepthwiseEpilogue != nil {
		return fmt.Errorf("%w: DepthwiseEpilogue only applies to separable plans", ErrBadOptions)
	}
	if fe := opt.FusedEpilogue; fe != nil {
		if opt.Epilogue != EpilogueNone {
			return fmt.Errorf("%w: FusedEpilogue and Epilogue=%d are mutually exclusive", ErrBadOptions, opt.Epilogue)
		}
		if fe.Bias != nil && len(fe.Bias) != s.K {
			return fmt.Errorf("%w: FusedEpilogue.Bias length %d does not match K=%d", ErrBadOptions, len(fe.Bias), s.K)
		}
		if (fe.Scale == nil) != (fe.Shift == nil) {
			return fmt.Errorf("%w: FusedEpilogue.Scale and Shift must be set together", ErrBadOptions)
		}
		if fe.Scale != nil && (len(fe.Scale) != s.K || len(fe.Shift) != s.K) {
			return fmt.Errorf("%w: FusedEpilogue.Scale/Shift lengths %d/%d do not match K=%d",
				ErrBadOptions, len(fe.Scale), len(fe.Shift), s.K)
		}
	}
	return nil
}

// TryNewPlan derives an execution plan for the shape: register tile
// from Equations 3–4, cache tiles from Equations 1–2, thread mapping
// from Equations 5–6. It is the checked, panic-free constructor; the
// returned errors wrap conv.ErrBadShape or ErrBadOptions.
func TryNewPlan(s conv.Shape, opt Options) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := validateOptions(s, opt); err != nil {
		return nil, err
	}
	p := &Plan{Shape: s, opts: opt}
	p.platform = genericPlatform
	if opt.Platform != nil {
		p.platform = *opt.Platform
	}
	p.threads = opt.Threads
	if p.threads <= 0 {
		p.threads = parallel.DefaultThreads()
	}

	p.RT = model.SolveRegisterTile(s.S, s.Str)
	if opt.ForceVw != 0 || opt.ForceVk != 0 {
		vw, vk := opt.ForceVw, opt.ForceVk
		if vw == 0 {
			vw = p.RT.Vw
		}
		if vk == 0 {
			vk = p.RT.Vk
		}
		p.RT = model.RegTile{Vw: vw, Vk: vk,
			Registers: model.RegistersUsed(vw, vk, s.S),
			FAI:       model.FAI(vw, vk, s.S, s.Str)}
	}

	p.CT = model.SolveCacheTiles(p.platform, s, p.RT)
	if opt.ForceTc > 0 {
		p.CT.Tc = min(opt.ForceTc, s.C)
	}
	if opt.ForceTk > 0 {
		p.CT.Tk = max(p.RT.Vk, opt.ForceTk/p.RT.Vk*p.RT.Vk)
	}
	if opt.ForceTh > 0 {
		p.CT.Th = min(opt.ForceTh, s.P())
	}

	p.TM = model.SolveThreadMapping(s, p.platform.Alpha, p.threads, p.RT.Vk)

	// Micro-kernel dispatch: exact shapes registered with the dispatch
	// registry run their constant-folded variant; the hand-unrolled
	// bodies cover the analytical-optimum 12×8 register file on the
	// common layer families; everything else takes the V_k=8 looped
	// kernel or the fully generic one. UnrolledKernels outranks the
	// registry so the Algorithm 3 transcription stays benchmarkable
	// (every branch below is bit-identical on the same operands).
	switch {
	case opt.ForceGenericKernel || p.RT.Vk != 8 || p.RT.Vw > maxVw:
		p.kind = kindGeneric
	case s.S == 3 && s.Str == 1 && opt.UnrolledKernels:
		p.kind = kind12x8S3
	default:
		if v := lookupKernelVariant(s); v != nil {
			p.kind = kindSpecialized
			p.variant = v
		} else if s.R == 1 && s.S == 1 && s.Str == 1 {
			p.kind = kind12x8S1
		} else {
			p.kind = kind12x8
		}
	}
	p.ep = normalizeEpilogue(opt)

	qTiles := (s.Q() + p.RT.Vw - 1) / p.RT.Vw
	kBlocks := (s.K + p.RT.Vk - 1) / p.RT.Vk
	p.kRanges = parallel.Split(kBlocks, p.TM.PTk)
	p.nRanges = parallel.Split(s.N, p.TM.PN)
	p.hRanges = parallel.Split(s.P(), p.TM.PH)
	p.wRanges = parallel.Split(qTiles, p.TM.PW)
	return p, nil
}

// NewPlan is the panicking wrapper over TryNewPlan, kept for callers
// that build plans once at startup where a configuration error is a
// programming error.
func NewPlan(s conv.Shape, opt Options) *Plan {
	p, err := TryNewPlan(s, opt)
	if err != nil {
		panic(err)
	}
	return p
}

// TryConv2D runs a one-shot nDirect convolution on NCHW input and
// KCRS filter, returning a fresh NKPQ output tensor. All shape,
// option and operand problems surface as errors wrapping
// conv.ErrBadShape, ErrBadOptions or conv.ErrDimMismatch; the
// function never panics.
func TryConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	p, err := planFor(s, opt)
	if err != nil {
		return nil, err
	}
	if err := conv.ValidateOperands(s, in, filter); err != nil {
		return nil, err
	}
	out := s.NewOutput()
	if err := p.TryExecute(in, filter, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TryConv2DCtx is TryConv2D bounded by ctx: when the context expires
// or is canceled before the worker grid finishes, the grid is
// abandoned and the call returns an error wrapping conv.ErrDeadline
// and the context's cause — unless Options.FallbackBudget grants the
// reference path time to recompute the result. See Plan.TryExecuteCtx.
func TryConv2DCtx(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	p, err := planFor(s, opt)
	if err != nil {
		return nil, err
	}
	if err := conv.ValidateOperands(s, in, filter); err != nil {
		return nil, err
	}
	out := s.NewOutput()
	if err := p.TryExecuteCtx(ctx, in, filter, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2D is the panicking wrapper over TryConv2D.
func Conv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryConv2D(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}

// TryConv2DNHWC runs nDirect on an NHWC input and KCRS filter,
// producing an NPQK (NHWC) output — the other framework layout
// nDirect supports natively, without converting the activation
// tensors. Checked variant: never panics.
func TryConv2DNHWC(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	p, err := planFor(s, opt)
	if err != nil {
		return nil, err
	}
	out := tensor.New(s.N, s.P(), s.Q(), s.K)
	if err := p.TryExecuteNHWC(in, filter, out); err != nil {
		return nil, err
	}
	return out, nil
}

// TryConv2DNHWCCtx is the context-bounded form of TryConv2DNHWC.
func TryConv2DNHWCCtx(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	p, err := planFor(s, opt)
	if err != nil {
		return nil, err
	}
	out := tensor.New(s.N, s.P(), s.Q(), s.K)
	if err := p.TryExecuteNHWCCtx(ctx, in, filter, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Conv2DNHWC is the panicking wrapper over TryConv2DNHWC.
func Conv2DNHWC(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryConv2DNHWC(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}
