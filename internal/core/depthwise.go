package core

import (
	"context"
	"errors"
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Depthwise separable convolution support (§10.2). DSC = depthwise
// convolution (per-channel spatial filter, no C reduction) followed by
// pointwise convolution (1×1 standard convolution). The paper notes
// nDirect computes the pointwise part directly, and the depthwise
// part by "removing the reduction operations of dimension C in
// micro-kernels" — which is what depthwiseKernel below does: the
// register tile vectorises over the output columns instead of output
// channels, because each output channel depends on exactly one input
// channel.

// TryDepthwiseConv2D computes out[n][c][p][q] = Σ_{r,s} in[n][c][·][·]
// · filter[c][r][s] on NCHW input with a [C,R,S] filter. The Shape's K
// is ignored (output channels equal input channels). Checked variant:
// validation failures return errors; a faulting parallel worker is
// logged and the result recomputed sequentially.
func TryDepthwiseConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TryDepthwiseConv2DCtx(context.Background(), s, in, filter, opt)
}

// TryDepthwiseConv2DCtx is the context-bounded form of
// TryDepthwiseConv2D: deadline semantics follow Plan.TryExecuteCtx —
// on context expiry the parallel plane loop is abandoned and the call
// returns an error wrapping conv.ErrDeadline, unless
// Options.FallbackBudget grants the sequential recompute time to
// finish (it polls the fallback deadline between planes).
func TryDepthwiseConv2DCtx(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	chk := s
	chk.K = 1
	if err := chk.Validate(); err != nil {
		return nil, err
	}
	if opt.Threads > maxThreads {
		return nil, fmt.Errorf("%w: Threads=%d exceeds %d", ErrBadOptions, opt.Threads, maxThreads)
	}
	if err := conv.ValidateTensor("depthwise input", in, s.N, s.C, s.H, s.W); err != nil {
		return nil, err
	}
	if err := conv.ValidateTensor("depthwise filter", filter, s.C, s.R, s.S); err != nil {
		return nil, err
	}
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.C, p, q)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	plane := func(nc int) {
		n, c := nc/s.C, nc%s.C
		inPlane := in.Data[(n*s.C+c)*s.H*s.W : (n*s.C+c+1)*s.H*s.W]
		outPlane := out.Data[(n*s.C+c)*p*q : (n*s.C+c+1)*p*q]
		fPlane := filter.Data[c*s.R*s.S : (c+1)*s.R*s.S]
		depthwisePlane(s, inPlane, fPlane, outPlane)
	}
	// Parallelise over the N×C planes: depthwise has no reduction
	// over C, so every (n, c) plane is independent.
	if err := parallel.ForCtx(ctx, s.N*s.C, threads, plane); err != nil {
		fctx, cancel, derr := fallbackCtx(ctx, err, opt)
		if derr != nil {
			return nil, derr
		}
		defer cancel()
		Logf("core: depthwise parallel path faulted on %v; recomputing sequentially: %v", s, err)
		if errors.Is(err, parallel.ErrCanceled) {
			// The abandoned plane workers captured the current out and
			// may still store into it whenever they resume: recompute
			// into a fresh tensor they have never seen (plane writes
			// through the rebound variable) and leave the old
			// allocation to the stragglers.
			out = tensor.New(s.N, s.C, p, q)
		}
		if err := parallel.Protect(func() {
			for nc := 0; nc < s.N*s.C; nc++ {
				if fctx.Done() != nil && fctx.Err() != nil {
					panic(deadlineErr(fctx))
				}
				plane(nc)
			}
		}); err != nil {
			var pe *parallel.PanicError
			if errors.As(err, &pe) {
				if de, ok := pe.Value.(error); ok && errors.Is(de, conv.ErrDeadline) {
					return nil, de
				}
			}
			return nil, fmt.Errorf("%w: %v", ErrExecFault, err)
		}
	}
	return out, nil
}

// fallbackCtx classifies a parallel-loop error for the sibling
// drivers (depthwise/grouped/fp64/int16): a worker fault keeps the
// unbounded sequential fallback (fctx is Background), while a context
// abandonment either returns the conv.ErrDeadline-wrapped error
// as-is (no FallbackBudget) or grants the fallback that budget. The
// returned cancel must be deferred when derr is nil.
func fallbackCtx(ctx context.Context, err error, opt Options) (fctx context.Context, cancel context.CancelFunc, derr error) {
	if !errors.Is(err, parallel.ErrCanceled) {
		return context.Background(), func() {}, nil
	}
	if opt.FallbackBudget <= 0 {
		return nil, nil, fmt.Errorf("%w: %w", conv.ErrDeadline, err)
	}
	fctx, cancel = context.WithTimeout(context.WithoutCancel(ctx), opt.FallbackBudget)
	return fctx, cancel, nil
}

// DepthwiseConv2D is the panicking wrapper over TryDepthwiseConv2D.
func DepthwiseConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryDepthwiseConv2D(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}

// depthwisePlane convolves one (n, c) plane. The inner loop
// vectorises over 4 adjacent output columns for stride 1 (the common
// MobileNet case) and falls back to scalars otherwise.
func depthwisePlane(s conv.Shape, in, filter, out []float32) {
	depthwisePlaneRange(s, in, filter, out, 0, s.P())
}

// PointwiseShape returns the conv.Shape of a 1×1/stride-1/pad-0
// pointwise convolution over an H×W grid with C input and K output
// channels.
func PointwiseShape(n, c, h, w, k int) conv.Shape {
	return conv.Shape{N: n, C: c, H: h, W: w, K: k, R: 1, S: 1, Str: 1, Pad: 0}
}

// validatePointwiseShape checks that s really is a pointwise
// convolution (the geometry the entry's name promises) and that it
// describes a realisable computation.
func validatePointwiseShape(s conv.Shape) error {
	if s.R != 1 || s.S != 1 || s.Str != 1 || s.Pad != 0 {
		return fmt.Errorf("%w: pointwise convolution requires R=S=1, Str=1, Pad=0; got R=%d S=%d Str=%d Pad=%d",
			conv.ErrBadShape, s.R, s.S, s.Str, s.Pad)
	}
	return s.Validate()
}

// TryPointwiseConv2DShape is the 1×1 convolution of a
// depthwise-separable block, dispatched straight to the standard
// nDirect path (§10.2: "nDirect can be directly called to compute the
// Pointwise Convolution"). The shape is validated as a pointwise
// geometry (R=S=1, Str=1, Pad=0) before planning, so a malformed
// dimension fails typed here instead of producing an undersized
// output tensor downstream. Build it with PointwiseShape or a
// SeparableShape's PWShape.
func TryPointwiseConv2DShape(s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	if err := validatePointwiseShape(s); err != nil {
		return nil, err
	}
	return TryConv2D(s, in, filter, opt)
}

// TryPointwiseConv2DShapeCtx is TryPointwiseConv2DShape bounded by
// ctx, with the deadline semantics of TryConv2DCtx.
func TryPointwiseConv2DShapeCtx(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	if err := validatePointwiseShape(s); err != nil {
		return nil, err
	}
	return TryConv2DCtx(ctx, s, in, filter, opt)
}

// TryPointwiseConv2D is the bare-dimension form of
// TryPointwiseConv2DShape.
//
// Deprecated: the five positional ints are an argument-transposition
// hazard with no validation story; use TryPointwiseConv2DShape with
// PointwiseShape(n, c, h, w, k), which validates the geometry before
// planning.
func TryPointwiseConv2D(n, c, h, w, k int, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TryPointwiseConv2DShape(PointwiseShape(n, c, h, w, k), in, filter, opt)
}

// TryPointwiseConv2DCtx is the bare-dimension form of
// TryPointwiseConv2DShapeCtx.
//
// Deprecated: use TryPointwiseConv2DShapeCtx with PointwiseShape.
func TryPointwiseConv2DCtx(ctx context.Context, n, c, h, w, k int, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TryPointwiseConv2DShapeCtx(ctx, PointwiseShape(n, c, h, w, k), in, filter, opt)
}

// PointwiseConv2D is the panicking wrapper over TryPointwiseConv2D.
//
// Deprecated: use TryPointwiseConv2DShape and handle the error.
func PointwiseConv2D(n, c, h, w, k int, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryPointwiseConv2D(n, c, h, w, k, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}

// Shape3D describes a 3-D convolution: input [N,C,D,H,W], filter
// [K,C,T,R,S], output [N,K,Dout,P,Q].
type Shape3D struct {
	conv.Shape     // the 2-D cross-section (N,C,H,W,K,R,S,Str,Pad)
	D, T       int // input depth and kernel depth
	StrD, PadD int // depth stride and padding
}

// DOut returns the output depth.
func (s Shape3D) DOut() int { return (s.D+2*s.PadD-s.T)/s.StrD + 1 }

// Validate checks the 2-D cross-section (shadowing the promoted
// conv.Shape method) and then the depth geometry of the 3-D extension.
func (s Shape3D) Validate() error {
	if err := s.Shape.Validate(); err != nil {
		return err
	}
	switch {
	case s.D < 1 || s.D > conv.MaxDim:
		return fmt.Errorf("%w: 3-D depth D=%d outside [1, %d]", conv.ErrBadShape, s.D, conv.MaxDim)
	case s.T < 1 || s.T > conv.MaxDim:
		return fmt.Errorf("%w: 3-D kernel depth T=%d outside [1, %d]", conv.ErrBadShape, s.T, conv.MaxDim)
	case s.StrD < 1:
		return fmt.Errorf("%w: 3-D depth stride %d < 1", conv.ErrBadShape, s.StrD)
	case s.PadD < 0 || s.PadD > conv.MaxDim:
		return fmt.Errorf("%w: 3-D depth padding %d outside [0, %d]", conv.ErrBadShape, s.PadD, conv.MaxDim)
	case s.DOut() < 1:
		return fmt.Errorf("%w: 3-D depth geometry D=%d T=%d strD=%d padD=%d yields no output",
			conv.ErrBadShape, s.D, s.T, s.StrD, s.PadD)
	}
	return nil
}

// TryConv3D computes a 3-D convolution by decomposing it into 2-D
// nDirect convolutions summed over the kernel depth (§10.2: "3D
// Convolution can be seen as 2D Convolution with additional reduction
// dimensions, so we can directly use the micro-kernels of nDirect").
// Each (d, t) pair convolves input depth-slice d·strD−padD+t with
// filter depth-slice t, accumulating into output slice d. Checked
// variant: never panics.
func TryConv3D(s Shape3D, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TryConv3DCtx(context.Background(), s, in, filter, opt)
}

// TryConv3DCtx is TryConv3D bounded by ctx: the deadline applies to
// the whole depth decomposition — each per-slice 2-D execution runs
// under the same context, so the first slice to hit the deadline
// aborts the 3-D computation with an error wrapping conv.ErrDeadline.
func TryConv3DCtx(ctx context.Context, s Shape3D, in, filter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan, err := TryNewPlan(s.Shape, opt)
	if err != nil {
		return nil, err
	}
	if err := conv.ValidateTensor("3-D input", in, s.N, s.C, s.D, s.H, s.W); err != nil {
		return nil, err
	}
	if err := conv.ValidateTensor("3-D filter", filter, s.K, s.C, s.T, s.R, s.S); err != nil {
		return nil, err
	}
	dOut := s.DOut()
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.K, dOut, p, q)

	// Views: slicing depth d of the input requires a gather because D
	// is interior to the NCDHW layout; build per-slice NCHW tensors.
	inSlice := tensor.New(s.N, s.C, s.H, s.W)
	fSlice := tensor.New(s.K, s.C, s.R, s.S)
	outSlice := tensor.New(s.N, s.K, p, q)
	hw2 := s.H * s.W
	rs := s.R * s.S
	for d := 0; d < dOut; d++ {
		outSlice.Zero()
		for t := 0; t < s.T; t++ {
			id := d*s.StrD - s.PadD + t
			if id < 0 || id >= s.D {
				continue
			}
			for n := 0; n < s.N; n++ {
				for c := 0; c < s.C; c++ {
					src := in.Data[(((n*s.C+c)*s.D + id) * hw2):(((n*s.C+c)*s.D+id)*hw2 + hw2)]
					copy(inSlice.Data[(n*s.C+c)*hw2:], src)
				}
			}
			for k := 0; k < s.K; k++ {
				for c := 0; c < s.C; c++ {
					src := filter.Data[(((k*s.C+c)*s.T + t) * rs):(((k*s.C+c)*s.T+t)*rs + rs)]
					copy(fSlice.Data[(k*s.C+c)*rs:], src)
				}
			}
			if err := plan.TryExecuteAddCtx(ctx, inSlice, fSlice, outSlice); err != nil {
				return nil, err
			}
		}
		for n := 0; n < s.N; n++ {
			for k := 0; k < s.K; k++ {
				copy(out.Data[(((n*s.K+k)*dOut+d)*p*q):], outSlice.Data[((n*s.K+k)*p*q):((n*s.K+k)+1)*p*q])
			}
		}
	}
	return out, nil
}

// Conv3D is the panicking wrapper over TryConv3D.
func Conv3D(s Shape3D, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	out, err := TryConv3D(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}
