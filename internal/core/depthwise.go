package core

import (
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// Depthwise separable convolution support (§10.2). DSC = depthwise
// convolution (per-channel spatial filter, no C reduction) followed by
// pointwise convolution (1×1 standard convolution). The paper notes
// nDirect computes the pointwise part directly, and the depthwise
// part by "removing the reduction operations of dimension C in
// micro-kernels" — which is what depthwiseKernel below does: the
// register tile vectorises over the output columns instead of output
// channels, because each output channel depends on exactly one input
// channel.

// DepthwiseConv2D computes out[n][c][p][q] = Σ_{r,s} in[n][c][·][·] ·
// filter[c][r][s] on NCHW input with a [C,R,S] filter. The Shape's K
// is ignored (output channels equal input channels).
func DepthwiseConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	if len(filter.Dims) != 3 || filter.Dims[0] != s.C || filter.Dims[1] != s.R || filter.Dims[2] != s.S {
		panic(fmt.Sprintf("core: depthwise filter dims %v, want [%d %d %d]", filter.Dims, s.C, s.R, s.S))
	}
	chk := s
	chk.K = 1
	if !chk.Valid() {
		panic(fmt.Sprintf("core: invalid depthwise shape %v", s))
	}
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.C, p, q)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	// Parallelise over the N×C planes: depthwise has no reduction
	// over C, so every (n, c) plane is independent.
	parallel.For(s.N*s.C, threads, func(nc int) {
		n, c := nc/s.C, nc%s.C
		inPlane := in.Data[(n*s.C+c)*s.H*s.W : (n*s.C+c+1)*s.H*s.W]
		outPlane := out.Data[(n*s.C+c)*p*q : (n*s.C+c+1)*p*q]
		fPlane := filter.Data[c*s.R*s.S : (c+1)*s.R*s.S]
		depthwisePlane(s, inPlane, fPlane, outPlane)
	})
	return out
}

// depthwisePlane convolves one (n, c) plane. The inner loop
// vectorises over 4 adjacent output columns for stride 1 (the common
// MobileNet case) and falls back to scalars otherwise.
func depthwisePlane(s conv.Shape, in, filter, out []float32) {
	p, q := s.P(), s.Q()
	for oh := 0; oh < p; oh++ {
		ihBase := oh*s.Str - s.Pad
		ow := 0
		if s.Str == 1 {
			for ; ow+simd.Width <= q; ow += simd.Width {
				iwBase := ow - s.Pad
				acc := simd.Zero()
				for r := 0; r < s.R; r++ {
					ih := ihBase + r
					if ih < 0 || ih >= s.H {
						continue
					}
					row := in[ih*s.W : (ih+1)*s.W]
					for ss := 0; ss < s.S; ss++ {
						iw := iwBase + ss
						f := filter[r*s.S+ss]
						// All four lanes in range: vector load.
						if iw >= 0 && iw+simd.Width <= s.W {
							acc = acc.FMAScalar(simd.Load(row[iw:]), f)
							continue
						}
						// Halo: per-lane guard.
						var v simd.Vec4
						for lane := 0; lane < simd.Width; lane++ {
							if x := iw + lane; x >= 0 && x < s.W {
								v[lane] = row[x]
							}
						}
						acc = acc.FMAScalar(v, f)
					}
				}
				acc.Store(out[oh*q+ow:])
			}
		}
		for ; ow < q; ow++ {
			iwBase := ow*s.Str - s.Pad
			var acc float32
			for r := 0; r < s.R; r++ {
				ih := ihBase + r
				if ih < 0 || ih >= s.H {
					continue
				}
				for ss := 0; ss < s.S; ss++ {
					iw := iwBase + ss
					if iw < 0 || iw >= s.W {
						continue
					}
					acc += in[ih*s.W+iw] * filter[r*s.S+ss]
				}
			}
			out[oh*q+ow] = acc
		}
	}
}

// PointwiseConv2D is the 1×1 convolution of a depthwise-separable
// block, dispatched straight to the standard nDirect path (§10.2:
// "nDirect can be directly called to compute the Pointwise
// Convolution").
func PointwiseConv2D(n, c, h, w, k int, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	s := conv.Shape{N: n, C: c, H: h, W: w, K: k, R: 1, S: 1, Str: 1, Pad: 0}
	return Conv2D(s, in, filter, opt)
}

// Shape3D describes a 3-D convolution: input [N,C,D,H,W], filter
// [K,C,T,R,S], output [N,K,Dout,P,Q].
type Shape3D struct {
	conv.Shape     // the 2-D cross-section (N,C,H,W,K,R,S,Str,Pad)
	D, T       int // input depth and kernel depth
	StrD, PadD int // depth stride and padding
}

// DOut returns the output depth.
func (s Shape3D) DOut() int { return (s.D+2*s.PadD-s.T)/s.StrD + 1 }

// Conv3D computes a 3-D convolution by decomposing it into 2-D
// nDirect convolutions summed over the kernel depth (§10.2: "3D
// Convolution can be seen as 2D Convolution with additional reduction
// dimensions, so we can directly use the micro-kernels of nDirect").
// Each (d, t) pair convolves input depth-slice d·strD−padD+t with
// filter depth-slice t, accumulating into output slice d.
func Conv3D(s Shape3D, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	dOut := s.DOut()
	if dOut < 1 {
		panic(fmt.Sprintf("core: invalid 3-D depth geometry D=%d T=%d", s.D, s.T))
	}
	wantIn := []int{s.N, s.C, s.D, s.H, s.W}
	for i, d := range wantIn {
		if in.Dims[i] != d {
			panic(fmt.Sprintf("core: 3-D input dims %v, want %v", in.Dims, wantIn))
		}
	}
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.K, dOut, p, q)
	plan := NewPlan(s.Shape, opt)

	// Views: slicing depth d of the input requires a gather because D
	// is interior to the NCDHW layout; build per-slice NCHW tensors.
	inSlice := tensor.New(s.N, s.C, s.H, s.W)
	fSlice := tensor.New(s.K, s.C, s.R, s.S)
	outSlice := tensor.New(s.N, s.K, p, q)
	hw2 := s.H * s.W
	rs := s.R * s.S
	for d := 0; d < dOut; d++ {
		outSlice.Zero()
		for t := 0; t < s.T; t++ {
			id := d*s.StrD - s.PadD + t
			if id < 0 || id >= s.D {
				continue
			}
			for n := 0; n < s.N; n++ {
				for c := 0; c < s.C; c++ {
					src := in.Data[(((n*s.C+c)*s.D + id) * hw2):(((n*s.C+c)*s.D+id)*hw2 + hw2)]
					copy(inSlice.Data[(n*s.C+c)*hw2:], src)
				}
			}
			for k := 0; k < s.K; k++ {
				for c := 0; c < s.C; c++ {
					src := filter.Data[(((k*s.C+c)*s.T + t) * rs):(((k*s.C+c)*s.T+t)*rs + rs)]
					copy(fSlice.Data[(k*s.C+c)*rs:], src)
				}
			}
			plan.ExecuteAdd(inSlice, fSlice, outSlice)
		}
		for n := 0; n < s.N; n++ {
			for k := 0; k < s.K; k++ {
				copy(out.Data[(((n*s.K+k)*dOut+d)*p*q):], outSlice.Data[((n*s.K+k)*p*q):((n*s.K+k)+1)*p*q])
			}
		}
	}
	return out
}
