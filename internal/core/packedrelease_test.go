package core

import (
	"errors"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// TestPackedFilterReleaseTyped: executing a released packed filter must
// fail typed with ErrWeightsReleased (every packed entry point), and
// Release must report the flip exactly once so residency accounting
// stays symmetric under racing release paths.
func TestPackedFilterReleaseTyped(t *testing.T) {
	s := conv.Shape{N: 1, C: 3, H: 8, W: 8, K: 5, R: 3, S: 3, Str: 1, Pad: 1}
	in, filter := s.NewInput(), s.NewFilter()
	in.FillRandom(1)
	filter.FillRandom(2)
	plan, err := TryNewPlan(s, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := plan.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(s.N, s.K, s.P(), s.Q())
	if err := plan.TryExecutePacked(in, pf, out); err != nil {
		t.Fatalf("pre-release execute: %v", err)
	}

	if !pf.Release() {
		t.Fatal("first Release must report the flip")
	}
	if pf.Release() {
		t.Fatal("second Release must be a no-op")
	}
	if !pf.Released() {
		t.Fatal("Released must report true after Release")
	}
	if err := plan.TryExecutePacked(in, pf, out); !errors.Is(err, ErrWeightsReleased) {
		t.Fatalf("TryExecutePacked on released filter: want ErrWeightsReleased, got %v", err)
	}
	nhwcIn := tensor.NCHWToNHWC(in)
	nhwcOut := tensor.New(s.N, s.P(), s.Q(), s.K)
	if err := plan.TryExecutePackedNHWC(nhwcIn, pf, nhwcOut); !errors.Is(err, ErrWeightsReleased) {
		t.Fatalf("TryExecutePackedNHWC on released filter: want ErrWeightsReleased, got %v", err)
	}

	// Re-packing from the same KCRS source reproduces the packed bytes
	// bit-identically, so eviction + re-pack round-trips exactly.
	pf2, err := plan.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	if pf2.Len() != pf.Len() {
		t.Fatalf("re-pack length changed: %d vs %d", pf2.Len(), pf.Len())
	}
	for i := range pf2.data {
		if pf2.data[i] != pf.data[i] {
			t.Fatalf("re-pack differs from original at element %d", i)
		}
	}
	out2 := tensor.New(s.N, s.K, s.P(), s.Q())
	if err := plan.TryExecutePacked(in, pf2, out2); err != nil {
		t.Fatalf("post-re-pack execute: %v", err)
	}
	if d := tensor.MaxAbsDiff(out, out2); d != 0 {
		t.Fatalf("re-packed execution differs by %g (want bit-identical)", d)
	}
}
