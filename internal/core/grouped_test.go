package core

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// groupedReference is an independent oracle.
func groupedReference(s conv.Shape, groups int, in, filter *tensor.Tensor) *tensor.Tensor {
	cg, kg := s.C/groups, s.K/groups
	p, q := s.P(), s.Q()
	out := s.NewOutput()
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			g := k / kg
			for oj := 0; oj < p; oj++ {
				for oi := 0; oi < q; oi++ {
					var acc float64
					for cc := 0; cc < cg; cc++ {
						c := g*cg + cc
						for r := 0; r < s.R; r++ {
							ih := oj*s.Str - s.Pad + r
							if ih < 0 || ih >= s.H {
								continue
							}
							for ss := 0; ss < s.S; ss++ {
								iw := oi*s.Str - s.Pad + ss
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += float64(in.At(n, c, ih, iw)) * float64(filter.At(k, cc, r, ss))
							}
						}
					}
					out.Set(float32(acc), n, k, oj, oi)
				}
			}
		}
	}
	return out
}

func checkGrouped(t *testing.T, s conv.Shape, groups int) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C + groups))
	f := tensor.New(s.K, s.C/groups, s.R, s.S)
	f.FillRandom(int64(s.K))
	want := groupedReference(s, groups, in, f)
	got := GroupedConv2D(s, groups, in, f, Options{Threads: 2})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("%v groups=%d: rel diff %g", s, groups, d)
	}
}

func TestGroupedConv2DMatchesReference(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	for _, g := range []int{2, 4, 8} {
		checkGrouped(t, s, g)
	}
	// Strided grouped conv.
	checkGrouped(t, conv.Shape{N: 1, C: 12, H: 12, W: 12, K: 6, R: 3, S: 3, Str: 2, Pad: 1}, 3)
}

func TestGroupedConv2DGroupsOneEqualsConv2D(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	a := GroupedConv2D(s, 1, in, f, Options{Threads: 1})
	b := Conv2D(s, in, f, Options{Threads: 1})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("groups=1 must equal the standard path")
	}
}

func TestGroupedConv2DFullGroupsIsDepthwiseLike(t *testing.T) {
	// groups == C == K: each output channel sees exactly one input
	// channel — depthwise semantics through the grouped path.
	s := conv.Shape{N: 1, C: 6, H: 8, W: 8, K: 6, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	fG := tensor.New(s.K, 1, s.R, s.S)
	fG.FillRandom(4)
	grouped := GroupedConv2D(s, 6, in, fG, Options{Threads: 1})
	fD := tensor.FromSlice(fG.Data, s.C, s.R, s.S)
	dw := DepthwiseConv2D(s, in, fD, Options{Threads: 1})
	if d := tensor.RelDiff(grouped, dw); d > tol {
		t.Fatalf("grouped(C)=depthwise mismatch: %g", d)
	}
}

func TestGroupedConv2DValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-dividing groups")
		}
	}()
	GroupedConv2D(s, 3, s.NewInput(), tensor.New(8, 2, 3, 3), Options{})
}

func TestGroupedConv2DThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(5)
	f := tensor.New(s.K, 2, s.R, s.S)
	f.FillRandom(6)
	a := GroupedConv2D(s, 4, in, f, Options{Threads: 1})
	b := GroupedConv2D(s, 4, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("grouped threading changed result")
	}
}
