package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// Fused depthwise-separable convolution (DESIGN.md §13). A separable
// block is a depthwise convolution (per-channel spatial filter)
// followed by a 1×1 pointwise convolution; run as two calls, the
// [N][C][P][Q] intermediate round-trips through memory twice. The
// SeparablePlan fuses the stages at row-tile granularity instead: each
// grid cell computes a tile of depthwise output rows for all C
// channels into pooled scratch and immediately feeds it to the
// pointwise micro-kernel while it is still cache-hot. The full
// intermediate tensor is never allocated — the per-worker footprint is
// C·rowTile·Q floats, bounded by the row-tile solve below.
//
// Bit-exactness: the fused pointwise stage reproduces the standard
// plan's per-element float32 operation sequence exactly — the same
// channel-tile partition (the pointwise plan's CT.Tc), the same
// register accumulation within a tile (sepKernel12x8S1 mirrors
// kernel12x8S1's FMA chain), the same spill-and-add between tiles and
// the same store-side epilogue (Plan.store/storeLane, called
// directly) — so TrySeparableConv2D is bit-identical to
// TryDepthwiseConv2D + TryPointwiseConv2D with matching options.

// SeparableShape describes a depthwise-separable block: the depthwise
// stage's geometry (C input/intermediate channels, R×S filter, stride,
// padding) plus the pointwise stage's K output channels. The pointwise
// stage is always 1×1, stride 1, pad 0 on the depthwise output.
type SeparableShape struct {
	N   int // batch
	C   int // input (= depthwise output) channels
	H   int // input rows
	W   int // input columns
	K   int // pointwise output channels
	R   int // depthwise filter rows
	S   int // depthwise filter columns
	Str int // depthwise stride
	Pad int // depthwise padding
}

// DWShape returns the depthwise stage as a conv.Shape (K = C).
func (s SeparableShape) DWShape() conv.Shape {
	return conv.Shape{N: s.N, C: s.C, H: s.H, W: s.W, K: s.C, R: s.R, S: s.S, Str: s.Str, Pad: s.Pad}
}

// PWShape returns the pointwise stage as a conv.Shape: a 1×1
// convolution over the depthwise output grid.
func (s SeparableShape) PWShape() conv.Shape {
	dw := s.DWShape()
	return conv.Shape{N: s.N, C: s.C, H: dw.P(), W: dw.Q(), K: s.K, R: 1, S: 1, Str: 1, Pad: 0}
}

// P and Q are the final (pointwise = depthwise) output dimensions.
func (s SeparableShape) P() int { return s.DWShape().P() }
func (s SeparableShape) Q() int { return s.DWShape().Q() }

// Validate checks both stages describe a realisable computation.
func (s SeparableShape) Validate() error {
	chk := s.DWShape()
	chk.K = 1 // depthwise: K is implied by C, not a free dimension
	if err := chk.Validate(); err != nil {
		return err
	}
	if s.K < 1 || s.K > conv.MaxDim {
		return fmt.Errorf("%w: separable K=%d outside [1, %d]", conv.ErrBadShape, s.K, conv.MaxDim)
	}
	return s.PWShape().Validate()
}

// SeparablePlan is the reusable fused execution state for a
// SeparableShape. Construct once with TryNewSeparablePlan, execute
// many times; a warm plan executing packed runs at zero heap
// allocations per call.
type SeparablePlan struct {
	Shape SeparableShape

	dw conv.Shape // depthwise stage (K normalised to C)
	pw conv.Shape // pointwise stage

	opts      Options
	threads   int
	dwVariant *dwKernelVariant // nil: generic depthwise body
	dwEp      epilogue         // depthwise-stage epilogue (length C)
	pwPlan    *Plan            // full-shape pointwise plan: Tc partition, packed layout, store epilogue
	gen       uint64

	rowTile int // depthwise output rows per grid cell
	tiles   int // row tiles per image
	cells   int // N·tiles
	workers int
	midLen  int // C·rowTile·Q: one worker's intermediate scratch
	preLen  int // ⌈K/8⌉·C·8: packed pointwise filter length

	runMu   sync.Mutex
	runFree []*sepRun
}

// sepMidBudget bounds the default per-worker intermediate scratch so
// a depthwise row tile and its pointwise consumption stay L2-resident
// (the whole point of the fusion).
const sepMidBudget = 256 << 10 // bytes

// TryNewSeparablePlan validates the shape and options and builds the
// fused plan. Epilogue routing: Options.DepthwiseEpilogue (length C)
// applies to the depthwise stage before the pointwise kernel consumes
// it; Options.FusedEpilogue or Epilogue+Bias (length K) applies at the
// pointwise store, exactly as it would on a standalone pointwise plan.
// Options.ForceTh overrides the depthwise row-tile height — the
// `ndtune -depthwise` tuning knob.
func TryNewSeparablePlan(shape SeparableShape, opt Options) (*SeparablePlan, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	if err := validateChannelEpilogue(opt.DepthwiseEpilogue, shape.C, "depthwise-stage"); err != nil {
		return nil, err
	}
	p := &SeparablePlan{
		Shape: shape,
		dw:    shape.DWShape(),
		pw:    shape.PWShape(),
		opts:  opt,
		gen:   dispatchGen.Load(),
	}
	pwOpt := opt
	pwOpt.DepthwiseEpilogue = nil // consumed by the depthwise stage above
	pwPlan, err := TryNewPlan(p.pw, pwOpt)
	if err != nil {
		return nil, err
	}
	if pwPlan.RT.Vw != maxVw || pwPlan.RT.Vk != 8 {
		return nil, fmt.Errorf("%w: fused separable requires the 12×8 register file; pointwise solved/forced to %d×%d",
			ErrBadOptions, pwPlan.RT.Vw, pwPlan.RT.Vk)
	}
	p.pwPlan = pwPlan
	p.dwEp = normalizeEpilogue(Options{FusedEpilogue: opt.DepthwiseEpilogue})
	if !opt.ForceGenericKernel {
		p.dwVariant = dwVariantFor(p.dw)
	}
	p.threads = opt.Threads
	if p.threads == 0 {
		p.threads = parallel.DefaultThreads()
	}

	pp, q := p.dw.P(), p.dw.Q()
	switch {
	case opt.ForceTh > 0:
		p.rowTile = min(opt.ForceTh, pp)
	default:
		th := pp
		// Cache bound: C channels × th rows × Q columns of f32.
		if byCache := sepMidBudget / (4 * shape.C * q); byCache < th {
			th = byCache
		}
		// Balance bound: aim for ~2 cells per worker.
		if needTiles := (2*p.threads + shape.N - 1) / shape.N; needTiles > 1 {
			if byBal := (pp + needTiles - 1) / needTiles; byBal < th {
				th = byBal
			}
		}
		p.rowTile = max(th, 1)
	}
	p.tiles = (pp + p.rowTile - 1) / p.rowTile
	p.cells = shape.N * p.tiles
	p.workers = min(p.threads, p.cells)
	if p.workers < 1 {
		p.workers = 1
	}
	p.midLen = shape.C * p.rowTile * q
	p.preLen = (shape.K + 7) / 8 * shape.C * 8
	return p, nil
}

// KernelNames reports the dispatch targets of both stages.
func (p *SeparablePlan) KernelNames() (dw, pw string) {
	dw = "dw.generic"
	if p.dwVariant != nil {
		dw = p.dwVariant.name
	}
	return dw, p.pwPlan.KernelName()
}

// Generation returns the kernel-dispatch generation the plan was
// built under (memo invalidation, like DepthwisePlan.Generation).
func (p *SeparablePlan) Generation() uint64 { return p.gen }

// PointwisePlan returns the full-shape pointwise plan the fused path
// shares its channel-tile partition and packed-filter layout with. A
// PackedFilter built by it (or by TransformFilters) serves both the
// fused path and a standalone pointwise execution.
func (p *SeparablePlan) PointwisePlan() *Plan { return p.pwPlan }

// OutputBytes returns the final output tensor's byte size.
func (p *SeparablePlan) OutputBytes() int64 {
	return 4 * int64(p.Shape.N) * int64(p.Shape.K) * int64(p.Shape.P()) * int64(p.Shape.Q())
}

// ScratchBytes returns the per-worker fused scratch footprint — the
// row-tile intermediate that replaces the full N·C·P·Q tensor.
func (p *SeparablePlan) ScratchBytes() int64 {
	return 4 * int64(p.midLen+canaryWords)
}

// IntermediateBytes returns what the unfused composition would have
// allocated for the full depthwise output — the memory the fusion
// never materialises.
func (p *SeparablePlan) IntermediateBytes() int64 {
	return 4 * int64(p.Shape.N) * int64(p.Shape.C) * int64(p.Shape.P()) * int64(p.Shape.Q())
}

// PackedBytes returns the combined byte size of the two packed
// artifacts TransformFilters builds.
func (p *SeparablePlan) PackedBytes() int64 {
	return 4 * (int64(p.Shape.C)*int64(p.Shape.R)*int64(p.Shape.S) + int64(p.preLen))
}

// RowTile returns the depthwise row-tile height the plan solved (or
// was forced to) — surfaced so `ndtune -depthwise` can report it.
func (p *SeparablePlan) RowTile() int { return p.rowTile }

// TransformFilters packs both stages' weights: the depthwise [C,R,S]
// filter into a CRC-stamped PackedDepthwiseFilter and the pointwise
// [K,C,1,1] filter into the standard PackedFilter (built by the
// embedded pointwise plan, so it is also valid for standalone
// pointwise execution and shares the serve layer's weight budget).
func (p *SeparablePlan) TransformFilters(dwFilter, pwFilter *tensor.Tensor) (*PackedDepthwiseFilter, *PackedFilter, error) {
	pdw, err := p.TransformDepthwiseFilter(dwFilter)
	if err != nil {
		return nil, nil, err
	}
	ppw, err := p.pwPlan.TransformFilter(pwFilter)
	if err != nil {
		return nil, nil, err
	}
	return pdw, ppw, nil
}

// TransformDepthwiseFilter packs only the depthwise stage's weights —
// for callers that source the pointwise artifact separately (a serving
// unit sharing one budget-charged PackedFilter between the fused path
// and a standalone pointwise unit builds it via PointwisePlan()).
func (p *SeparablePlan) TransformDepthwiseFilter(dwFilter *tensor.Tensor) (*PackedDepthwiseFilter, error) {
	s := p.dw
	if err := conv.ValidateTensor("depthwise filter", dwFilter, s.C, s.R, s.S); err != nil {
		return nil, err
	}
	data := append([]float32(nil), dwFilter.Data...)
	return &PackedDepthwiseFilter{
		c: s.C, r: s.R, s: s.S,
		src:  dwFilter,
		data: data,
		crc:  crcFloats(data),
	}, nil
}

// compatibleDW reports whether the packed depthwise filter matches the
// plan's depthwise geometry.
func (p *SeparablePlan) validateDW(pdw *PackedDepthwiseFilter) error {
	if pdw == nil {
		return fmt.Errorf("%w: nil packed depthwise filter", ErrBadOptions)
	}
	if pdw.Released() {
		return fmt.Errorf("%w: packed depthwise filter C%d R%d S%d", ErrWeightsReleased, pdw.c, pdw.r, pdw.s)
	}
	s := p.dw
	if pdw.c != s.C || pdw.r != s.R || pdw.s != s.S {
		return fmt.Errorf("%w: packed depthwise filter C%d R%d S%d does not match plan %v",
			ErrBadOptions, pdw.c, pdw.r, pdw.s, s)
	}
	return nil
}

// sepScratch is one worker's private state: the guarded row-tile
// intermediate and the pointwise register file.
type sepScratch struct {
	midFull []float32 // mid + canary guard words
	mid     []float32
	acc     accFile8
}

func (p *SeparablePlan) newScratch() *sepScratch {
	ws := &sepScratch{midFull: newGuarded(p.midLen)}
	ws.mid = ws.midFull[:p.midLen:p.midLen]
	return ws
}

type sepTask struct {
	r      *sepRun
	w      int
	lo, hi int // cell range
	ws     *sepScratch
	fn     func()
	body   func()
}

// sepRun is one execution's pooled mutable state (planRun's twin).
// packBuf lazily holds the per-run pointwise pack for the unpacked
// path; it belongs to the run (not a shared pool) so a
// deadline-abandoned straggler can never race a recycled buffer.
type sepRun struct {
	p            *SeparablePlan
	in, dwf, pre []float32
	out          []float32
	packBuf      []float32

	fs    parallel.FaultSink
	g     parallel.Group
	tasks []*sepTask

	abandonFn func(error)
	drainFn   func()
}

func (p *SeparablePlan) newRun() *sepRun {
	r := &sepRun{p: p}
	chunk := (p.cells + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, p.cells)
		if lo >= hi {
			break
		}
		t := &sepTask{r: r, w: w, lo: lo, hi: hi, ws: p.newScratch()}
		t.body = func() {
			faultinject.Fire(faultinject.WorkerPanic, t.w)
			faultinject.Stall(faultinject.WorkerStall, t.w)
			if faultinject.Should(faultinject.ScratchOverrun, t.w) {
				// Clobber the first guard word past the intermediate: the
				// canary check at join must quarantine this run state.
				t.ws.midFull[len(t.ws.mid)] = 1
			}
			for cell := t.lo; cell < t.hi; cell++ {
				if t.r.fs.Stopped() {
					return
				}
				p.cell(t.r.in, t.r.dwf, t.r.pre, t.r.out, cell, t.ws)
			}
		}
		t.fn = func() { r.fs.Record(parallel.Protect(t.body)) }
		r.tasks = append(r.tasks, t)
	}
	r.abandonFn = func(err error) { r.fs.Record(err) }
	r.drainFn = func() { p.releaseRun(r) }
	return r
}

func (p *SeparablePlan) getRun() *sepRun {
	p.runMu.Lock()
	if n := len(p.runFree); n > 0 {
		r := p.runFree[n-1]
		p.runFree[n-1] = nil
		p.runFree = p.runFree[:n-1]
		p.runMu.Unlock()
		return r
	}
	p.runMu.Unlock()
	return p.newRun()
}

func (p *SeparablePlan) releaseRun(r *sepRun) {
	r.in, r.dwf, r.pre, r.out = nil, nil, nil, nil
	if r.scratchTripped() >= 0 {
		scratchCanaryTrips.Add(1)
		return // quarantined: never parked
	}
	p.runMu.Lock()
	if len(p.runFree) < maxFreeRuns {
		p.runFree = append(p.runFree, r)
	}
	p.runMu.Unlock()
}

func (r *sepRun) scratchTripped() int {
	for _, t := range r.tasks {
		if !canariesIntact(t.ws.midFull, len(t.ws.mid)) {
			return t.w
		}
	}
	return -1
}

func (p *SeparablePlan) dwKernel() depthwiseKernel {
	if p.dwVariant != nil {
		return p.dwVariant.kern
	}
	return depthwisePlaneRange
}

// cell computes one grid cell: depthwise rows [h0, h1) of image n for
// all C channels into the worker's intermediate, the depthwise-stage
// epilogue sweep, then the fused pointwise stage over the same rows.
func (p *SeparablePlan) cell(in, dwf, pre, out []float32, cell int, ws *sepScratch) {
	s := p.dw
	pp, q := s.P(), s.Q()
	n := cell / p.tiles
	h0 := (cell % p.tiles) * p.rowTile
	h1 := min(h0+p.rowTile, pp)
	th := h1 - h0
	kern := p.dwKernel()
	chStride := p.rowTile * q
	for c := 0; c < s.C; c++ {
		inPlane := in[(n*s.C+c)*s.H*s.W : (n*s.C+c+1)*s.H*s.W]
		fch := dwf[c*s.R*s.S : (c+1)*s.R*s.S]
		dst := ws.mid[c*chStride : c*chStride+th*q]
		kern(s, inPlane, fch, dst, h0, h1)
		if !p.dwEp.none {
			applyChannelEpilogue(dst, &p.dwEp, c)
		}
	}
	p.pwStage(pre, out, n, h0, h1, ws)
}

// pwStage runs the fused pointwise micro-kernel over the row tile just
// produced in ws.mid. Loop order ct → kb → oh → qt with the pointwise
// plan's own Tc: per output element the channel-tile sequence, the
// in-tile FMA chain, the between-tile spill-and-add and the final
// epilogue are exactly the standard plan's — the bit-identity
// contract. pre is the [⌈K/8⌉][C][8] packed pointwise filter.
func (p *SeparablePlan) pwStage(pre, out []float32, n, h0, h1 int, ws *sepScratch) {
	pw := p.pwPlan
	C, K, q := p.pw.C, p.pw.K, p.pw.Q()
	tc := pw.CT.Tc
	kvBlocks := (K + 7) / 8
	chStride := p.rowTile * q
	acc := &ws.acc
	for ct := 0; ct < C; ct += tc {
		tcEff := min(tc, C-ct)
		firstC := ct == 0
		lastC := ct+tcEff >= C
		for kb := 0; kb < kvBlocks; kb++ {
			tfBlock := pre[(kb*C+ct)*8:]
			for oh := h0; oh < h1; oh++ {
				rowBase := ct*chStride + (oh-h0)*q
				for qt0 := 0; qt0 < q; qt0 += maxVw {
					vwEff := min(maxVw, q-qt0)
					*acc = accFile8{}
					sepKernel12x8S1(acc, ws.mid[rowBase+qt0:], tfBlock, tcEff, vwEff, chStride)
					pw.store(acc[:], out, true, n, kb*8, K, oh, qt0, vwEff, firstC, lastC)
				}
			}
		}
	}
}

// sepKernel12x8S1 is kernel12x8S1 reading the intermediate in place:
// channel cv's row lives at mid[cv*chStride:] instead of a packed
// [tc][wIn] buffer. The FMA chain per output element is identical —
// cv ascending, one f0/f1 FMAScalar pair per element — so the
// accumulator bits match the packed kernel exactly.
func sepKernel12x8S1(acc *accFile8, mid, tf []float32, tc, vwEff, chStride int) {
	if vwEff <= 0 || vwEff > maxVw {
		return
	}
	a := acc[:2*vwEff]
	for cv := 0; cv < tc; cv++ {
		row := mid[cv*chStride:]
		fs := tf[cv*8 : cv*8+8]
		f0 := simd.Load(fs)
		f1 := simd.Load(fs[4:])
		rw := row
		for i := 1; i < len(a); i += 2 {
			if len(rw) < 1 {
				break
			}
			v := rw[0]
			a[i-1] = a[i-1].FMAScalar(f0, v)
			a[i] = a[i].FMAScalar(f1, v)
			rw = rw[1:]
		}
	}
}

// run executes the cell grid with Plan.run's dispatch and join
// semantics. pre may be nil (unpacked path): the pointwise filter
// pwfRaw is then packed once into the run-owned buffer before
// dispatch.
func (p *SeparablePlan) run(ctx context.Context, in, dwf, pre, pwfRaw, out []float32) error {
	r := p.getRun()
	if len(r.tasks) == 0 {
		p.releaseRun(r)
		return nil
	}
	if pre == nil {
		if r.packBuf == nil {
			r.packBuf = make([]float32, p.preLen)
		}
		transformFilter(pwfRaw, r.packBuf, p.pw.K, p.pw.C, 1, 1, 0, p.pw.K, 0, p.pw.C, 8)
		pre = r.packBuf
	}
	r.in, r.dwf, r.pre, r.out = in, dwf, pre, out
	r.fs.Reset()

	if ctx == nil || ctx.Done() == nil {
		if len(r.tasks) > 1 {
			pool := parallel.DefaultPool()
			for _, t := range r.tasks[1:] {
				r.g.GoVia(pool, t.fn)
			}
			r.tasks[0].fn()
			r.g.Wait()
		} else {
			r.tasks[0].fn()
		}
		err := r.fs.Err()
		if err == nil {
			if w := r.scratchTripped(); w >= 0 {
				err = fmt.Errorf("%w: scratch canary tripped on grid slot %d", ErrIntegrity, w)
			}
		}
		p.releaseRun(r)
		return err
	}

	pool := parallel.DefaultPool()
	for _, t := range r.tasks {
		r.g.GoVia(pool, t.fn)
	}
	if err := r.g.WaitCtx(ctx, r.abandonFn, r.drainFn); err != nil {
		return fmt.Errorf("%w: %w", conv.ErrDeadline, err)
	}
	err := r.fs.Err()
	if err == nil {
		if w := r.scratchTripped(); w >= 0 {
			err = fmt.Errorf("%w: scratch canary tripped on grid slot %d", ErrIntegrity, w)
		}
	}
	p.releaseRun(r)
	return err
}

// TryExecute runs the fused block: NCHW input, [C,R,S] depthwise
// filter, [K,C,1,1] pointwise filter, [N,K,P,Q] output written in
// place. A nil error always means a correct output.
func (p *SeparablePlan) TryExecute(in, dwFilter, pwFilter, out *tensor.Tensor) error {
	return p.TryExecuteCtx(context.Background(), in, dwFilter, pwFilter, out)
}

// TryExecuteCtx is TryExecute bounded by ctx.
func (p *SeparablePlan) TryExecuteCtx(ctx context.Context, in, dwFilter, pwFilter, out *tensor.Tensor) error {
	s := p.dw
	if err := conv.ValidateTensor("separable input", in, s.N, s.C, s.H, s.W); err != nil {
		return err
	}
	if err := conv.ValidateTensor("depthwise filter", dwFilter, s.C, s.R, s.S); err != nil {
		return err
	}
	if err := conv.ValidateTensor("pointwise filter", pwFilter, p.pw.K, p.pw.C, 1, 1); err != nil {
		return err
	}
	if err := conv.ValidateTensor("separable output", out, s.N, p.pw.K, p.pw.P(), p.pw.Q()); err != nil {
		return err
	}
	return p.execChecked(ctx, in, dwFilter, pwFilter, nil, nil, out)
}

// TryExecutePacked runs the fused block from the two packed artifacts.
func (p *SeparablePlan) TryExecutePacked(in *tensor.Tensor, pdw *PackedDepthwiseFilter, ppw *PackedFilter, out *tensor.Tensor) error {
	return p.TryExecutePackedCtx(context.Background(), in, pdw, ppw, out)
}

// TryExecutePackedCtx is TryExecutePacked bounded by ctx.
func (p *SeparablePlan) TryExecutePackedCtx(ctx context.Context, in *tensor.Tensor, pdw *PackedDepthwiseFilter, ppw *PackedFilter, out *tensor.Tensor) error {
	if err := p.validateDW(pdw); err != nil {
		return err
	}
	if err := ppw.validateFor(p.pwPlan); err != nil {
		return err
	}
	s := p.dw
	if err := conv.ValidateTensor("separable input", in, s.N, s.C, s.H, s.W); err != nil {
		return err
	}
	if err := conv.ValidateTensor("separable output", out, s.N, p.pw.K, p.pw.P(), p.pw.Q()); err != nil {
		return err
	}
	return p.execChecked(ctx, in, pdw.src, ppw.src, pdw, ppw, out)
}

// execChecked is the fused path's fault ladder, mirroring
// Plan.execChecked: injected weight corruption against run-private
// copies, sampled CRC verification of both packed artifacts (typed
// ErrIntegrity), non-finite scan, sequential bit-identical recompute
// on worker faults, budget-bounded recompute on deadlines.
func (p *SeparablePlan) execChecked(ctx context.Context, in, dwFilter, pwFilter *tensor.Tensor,
	pdw *PackedDepthwiseFilter, ppw *PackedFilter, out *tensor.Tensor) error {
	if ctx == nil {
		ctx = context.Background()
	}
	cancellable := ctx.Done() != nil
	if cancellable && ctx.Err() != nil {
		if p.opts.FallbackBudget <= 0 {
			return deadlineErr(ctx)
		}
		return p.deadlineFallback(ctx, in, dwFilter, pwFilter, out, deadlineErr(ctx))
	}
	injecting := faultinject.Enabled()
	dwData := dwFilter.Data
	var pre []float32
	if pdw != nil {
		dwData = pdw.data
		if pdw.shouldVerify() {
			if verr := pdw.verifyConsumed(dwData); verr != nil {
				return verr
			}
		}
	}
	if ppw != nil {
		pre = ppw.data
		forceVerify := false
		if injecting {
			if idx, ok := faultinject.Take(faultinject.WeightBitflip); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = math.Float32frombits(math.Float32bits(corrupted[idx]) ^ 0x00400000)
				pre = corrupted
				forceVerify = true
			}
		}
		if forceVerify || ppw.shouldVerify() {
			if verr := ppw.verifyConsumed(pre); verr != nil {
				return verr
			}
		}
		if injecting {
			if idx, ok := faultinject.Take(faultinject.PackedCorrupt); ok && len(pre) > 0 {
				if idx < 0 || idx >= len(pre) {
					idx = 0
				}
				corrupted := append([]float32(nil), pre...)
				corrupted[idx] = float32(math.NaN())
				pre = corrupted
			}
		}
	}
	err := p.run(ctx, in.Data, dwData, pre, pwFilter.Data, out.Data)
	if err == nil && injecting {
		if idx, ok := faultinject.Take(faultinject.NaNPoison); ok && len(out.Data) > 0 {
			if idx < 0 || idx >= len(out.Data) {
				idx = 0
			}
			out.Data[idx] = float32(math.NaN())
		}
	}
	if err == nil && (injecting || p.opts.CheckNumerics) {
		if i, bad := scanNonFinite(out.Data); bad {
			err = fmt.Errorf("%w: non-finite separable output at element %d", ErrExecFault, i)
		}
	}
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrIntegrity) {
		return err
	}
	if errors.Is(err, conv.ErrDeadline) {
		if p.opts.FallbackBudget <= 0 {
			return err
		}
		return p.deadlineFallback(ctx, in, dwFilter, pwFilter, out, err)
	}
	Logf("core: separable path faulted on %+v; recomputing sequentially: %v", p.Shape, err)
	p.fallbackSequential(nil, in.Data, dwFilter.Data, pwFilter.Data, out.Data)
	if p.opts.CheckNumerics {
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite separable output at element %d after fallback", ErrExecFault, i)
		}
	}
	return nil
}

// fallbackSequential replays the fused computation cell by cell on
// the caller's goroutine with fresh scratch and pristine weights —
// bit-identical to a clean parallel run (same kernels, same tile
// partition) and, like the fast path, never materialising the full
// intermediate. A non-nil ctx makes it poll per cell and return false
// on expiry.
func (p *SeparablePlan) fallbackSequential(ctx context.Context, in, dwf, pwfRaw, out []float32) bool {
	pre := make([]float32, p.preLen)
	transformFilter(pwfRaw, pre, p.pw.K, p.pw.C, 1, 1, 0, p.pw.K, 0, p.pw.C, 8)
	ws := p.newScratch()
	for cell := 0; cell < p.cells; cell++ {
		if ctx != nil && ctx.Err() != nil {
			return false
		}
		p.cell(in, dwf, pre, out, cell, ws)
	}
	return true
}

// deadlineFallback spends Options.FallbackBudget recomputing
// sequentially after a blown deadline, publishing through a fresh
// backing array (abandoned stragglers may still store into the old
// one).
func (p *SeparablePlan) deadlineFallback(ctx context.Context, in, dwFilter, pwFilter *tensor.Tensor, out *tensor.Tensor, origErr error) error {
	fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), p.opts.FallbackBudget)
	defer cancel()
	Logf("core: separable path abandoned on %+v; recomputing sequentially within %v: %v",
		p.Shape, p.opts.FallbackBudget, origErr)
	fresh := make([]float32, len(out.Data))
	if !p.fallbackSequential(fctx, in.Data, dwFilter.Data, pwFilter.Data, fresh) {
		return origErr
	}
	out.Data = fresh
	if p.opts.CheckNumerics {
		if i, bad := scanNonFinite(out.Data); bad {
			return fmt.Errorf("%w: non-finite separable output at element %d after fallback", ErrExecFault, i)
		}
	}
	return nil
}

// TrySeparableConv2D computes a full depthwise-separable block — the
// fused equivalent of TryDepthwiseConv2D (+ DepthwiseEpilogue) then
// TryPointwiseConv2D (+ FusedEpilogue) — allocating only the final
// [N,K,P,Q] output. For repeated execution construct a SeparablePlan
// once and reuse it (with packed filters for the zero-alloc path).
func TrySeparableConv2D(shape SeparableShape, in, dwFilter, pwFilter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	return TrySeparableConv2DCtx(context.Background(), shape, in, dwFilter, pwFilter, opt)
}

// TrySeparableConv2DCtx is TrySeparableConv2D bounded by ctx, with the
// deadline semantics of TryConv2DCtx.
func TrySeparableConv2DCtx(ctx context.Context, shape SeparableShape, in, dwFilter, pwFilter *tensor.Tensor, opt Options) (*tensor.Tensor, error) {
	p, err := TryNewSeparablePlan(shape, opt)
	if err != nil {
		return nil, err
	}
	out := tensor.New(shape.N, shape.K, shape.P(), shape.Q())
	if err := p.TryExecuteCtx(ctx, in, dwFilter, pwFilter, out); err != nil {
		return nil, err
	}
	return out, nil
}
