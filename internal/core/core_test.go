package core

import (
	"sync"
	"testing"
	"testing/quick"

	"ndirect/internal/conv"
	"ndirect/internal/hw"
	"ndirect/internal/tensor"
)

// tol is the acceptable relative FP32 error between nDirect and the
// float64-accumulating reference (different accumulation orders).
const tol = 2e-5

func checkAgainstReference(t *testing.T, s conv.Shape, opt Options) {
	t.Helper()
	in := s.NewInput()
	in.FillRandom(int64(s.C*1000 + s.K))
	f := s.NewFilter()
	f.FillRandom(int64(s.R*100 + s.S))
	want := conv.Reference(s, in, f)
	got := Conv2D(s, in, f, opt)
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("shape %v: rel diff %g > %g", s, d, tol)
	}
}

func TestConv2DMatchesReferenceBasic3x3(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}, Options{})
}

func TestConv2DMatchesReference1x1(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 2, C: 16, H: 14, W: 14, K: 32, R: 1, S: 1, Str: 1, Pad: 0}, Options{})
}

func TestConv2DMatchesReferenceStride2(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1}, Options{})
	checkAgainstReference(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 1, S: 1, Str: 2, Pad: 0}, Options{})
}

func TestConv2DMatchesReference7x7Stride2(t *testing.T) {
	// ResNet conv1 geometry (scaled down): 7x7 stride 2 pad 3 uses
	// the generic kernel path (register tile not 12x8).
	checkAgainstReference(t, conv.Shape{N: 1, C: 3, H: 32, W: 32, K: 16, R: 7, S: 7, Str: 2, Pad: 3}, Options{})
}

func TestConv2DMatchesReferenceNoPadding(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 1, C: 4, H: 12, W: 12, K: 8, R: 3, S: 3, Str: 1, Pad: 0}, Options{})
}

func TestConv2DRaggedEdges(t *testing.T) {
	// Q=7 < Vw=12 forces partial register tiles; K=13 forces a ragged
	// K block; C=5 forces a partial channel tile.
	checkAgainstReference(t, conv.Shape{N: 1, C: 5, H: 7, W: 7, K: 13, R: 3, S: 3, Str: 1, Pad: 1}, Options{})
}

func TestConv2DLargeChannelTiles(t *testing.T) {
	// C larger than Tc exercises multi-pass output accumulation.
	checkAgainstReference(t, conv.Shape{N: 1, C: 200, H: 8, W: 8, K: 24, R: 3, S: 3, Str: 1, Pad: 1}, Options{ForceTc: 48})
}

func TestConv2DMultiKTile(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 64, R: 3, S: 3, Str: 1, Pad: 1}, Options{ForceTk: 16})
}

func TestConv2DSmallTh(t *testing.T) {
	checkAgainstReference(t, conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 1, Pad: 1}, Options{ForceTh: 2})
}

func TestConv2DSequentialPackMatches(t *testing.T) {
	s := conv.Shape{N: 2, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	overlapped := Conv2D(s, in, f, Options{})
	sequential := Conv2D(s, in, f, Options{SequentialPack: true})
	if d := tensor.MaxAbsDiff(overlapped, sequential); d != 0 {
		t.Fatalf("overlapped and sequential packing must be bit-identical, diff %g", d)
	}
}

func TestConv2DMultiThreadMatchesSingle(t *testing.T) {
	s := conv.Shape{N: 4, C: 16, H: 14, W: 14, K: 32, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(5)
	f := s.NewFilter()
	f.FillRandom(6)
	one := Conv2D(s, in, f, Options{Threads: 1})
	many := Conv2D(s, in, f, Options{Threads: 8})
	if d := tensor.MaxAbsDiff(one, many); d != 0 {
		t.Fatalf("thread count must not change results, diff %g", d)
	}
}

func TestConv2DPlatformsAllCorrect(t *testing.T) {
	s := conv.Shape{N: 1, C: 24, H: 14, W: 14, K: 24, R: 3, S: 3, Str: 1, Pad: 1}
	for _, p := range hw.Platforms {
		pp := p
		checkAgainstReference(t, s, Options{Platform: &pp, Threads: 4})
	}
}

func TestConv2DForcedRegisterTiles(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 10, W: 10, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	for _, tile := range [][2]int{{8, 8}, {12, 8}, {4, 16}, {8, 4}, {16, 4}} {
		checkAgainstReference(t, s, Options{ForceVw: tile[0], ForceVk: tile[1]})
	}
}

func TestConv2DNHWCMatchesReference(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(9)
	f := s.NewFilter()
	f.FillRandom(10)
	want := conv.Reference(s, in, f)
	gotNHWC := Conv2DNHWC(s, tensor.NCHWToNHWC(in), f, Options{})
	got := tensor.NHWCToNCHW(gotNHWC)
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("NHWC rel diff %g", d)
	}
}

func TestConv2DNHWCStride2(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1}
	in := s.NewInput()
	in.FillRandom(11)
	f := s.NewFilter()
	f.FillRandom(12)
	want := conv.Reference(s, in, f)
	got := tensor.NHWCToNCHW(Conv2DNHWC(s, tensor.NCHWToNHWC(in), f, Options{}))
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("NHWC stride-2 rel diff %g", d)
	}
}

func TestEpilogueBias(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	bias := make([]float32, s.K)
	for i := range bias {
		bias[i] = float32(i) * 0.25
	}
	want := conv.Reference(s, in, f)
	got := Conv2D(s, in, f, Options{Epilogue: EpilogueBias, Bias: bias})
	p, q := s.P(), s.Q()
	for k := 0; k < s.K; k++ {
		for i := 0; i < p*q; i++ {
			w := want.Data[k*p*q+i] + bias[k]
			g := got.Data[k*p*q+i]
			if d := w - g; d > 1e-4 || d < -1e-4 {
				t.Fatalf("bias mismatch at k=%d i=%d: %v vs %v", k, i, g, w)
			}
		}
	}
}

func TestEpilogueReLU(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	got := Conv2D(s, in, f, Options{Epilogue: EpilogueReLU})
	want := conv.Reference(s, in, f)
	anyClamped := false
	for i := range got.Data {
		if got.Data[i] < 0 {
			t.Fatal("ReLU output must be non-negative")
		}
		if want.Data[i] < 0 {
			anyClamped = true
			if got.Data[i] != 0 {
				t.Fatalf("negative value %v not clamped", want.Data[i])
			}
		}
	}
	if !anyClamped {
		t.Fatal("test vector produced no negatives; not exercising ReLU")
	}
}

func TestEpilogueBiasLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong bias length")
		}
	}()
	NewPlan(conv.Shape{N: 1, C: 1, H: 4, W: 4, K: 4, R: 1, S: 1, Str: 1, Pad: 0},
		Options{Epilogue: EpilogueBias, Bias: make([]float32, 3)})
}

func TestExecuteAddAccumulates(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(7)
	f := s.NewFilter()
	f.FillRandom(8)
	p := NewPlan(s, Options{})
	out := s.NewOutput()
	p.Execute(in, f, out)
	once := out.Clone()
	p.ExecuteAdd(in, f, out)
	for i := range out.Data {
		if d := out.Data[i] - 2*once.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("ExecuteAdd not additive at %d: %v vs %v", i, out.Data[i], 2*once.Data[i])
		}
	}
}

func TestExecuteOverwritesDirtyOutput(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(7)
	f := s.NewFilter()
	f.FillRandom(8)
	p := NewPlan(s, Options{})
	clean := s.NewOutput()
	p.Execute(in, f, clean)
	dirty := s.NewOutput()
	dirty.Fill(123)
	p.Execute(in, f, dirty)
	if tensor.MaxAbsDiff(clean, dirty) != 0 {
		t.Fatal("Execute must fully overwrite the output")
	}
}

func TestNewPlanInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlan(conv.Shape{}, Options{})
}

func TestNewPlanForcedTileValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 1, H: 4, W: 4, K: 4, R: 1, S: 1, Str: 1, Pad: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-aligned forced tile")
		}
	}()
	NewPlan(s, Options{ForceVw: 10})
}

func TestStatsCollected(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	p := NewPlan(s, Options{CollectStats: true, SequentialPack: true, Threads: 1})
	out := s.NewOutput()
	p.Execute(in, f, out)
	st0 := p.LastStats()
	if st0.KernelSec <= 0 || st0.PackSec <= 0 || st0.TransformSec <= 0 {
		t.Fatalf("stats not collected: %+v", st0)
	}
	tr, pk, kn, st := st0.Fractions()
	if sum := tr + pk + kn + st; sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestStatsOverlappedPackCountsInKernel(t *testing.T) {
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	p := NewPlan(s, Options{CollectStats: true, Threads: 1})
	out := s.NewOutput()
	p.Execute(in, f, out)
	if got := p.LastStats().PackSec; got != 0 {
		t.Fatalf("overlapped packing must report no separate pack time, got %v", got)
	}
}

// Property: nDirect agrees with the reference on random small shapes
// spanning kernels {1,3,5}, strides {1,2}, and ragged dimensions.
func TestConv2DRandomShapesProperty(t *testing.T) {
	f := func(cRaw, kRaw, hRaw, rIdx, strRaw uint8, seed int64) bool {
		rs := []int{1, 3, 5}[int(rIdx)%3]
		str := int(strRaw)%2 + 1
		pad := rs / 2
		s := conv.Shape{
			N: 1, C: int(cRaw)%13 + 1,
			H: int(hRaw)%12 + rs, W: int(hRaw)%14 + rs,
			K: int(kRaw)%21 + 1, R: rs, S: rs, Str: str, Pad: pad,
		}
		in := s.NewInput()
		in.FillRandom(seed)
		fl := s.NewFilter()
		fl.FillRandom(seed + 1)
		want := conv.Reference(s, in, fl)
		got := Conv2D(s, in, fl, Options{})
		return tensor.RelDiff(want, got) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTable4LayersCorrectSmallBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 4 sweep is slow")
	}
	// Shrink the spatial dims of large layers to keep the reference
	// oracle tractable while preserving kernel/stride/channel
	// structure.
	for _, l := range conv.Table4 {
		s := l.Shape
		if s.H > 28 {
			s.H, s.W = 28, 28
		}
		if s.C > 256 {
			s.C = 256
		}
		if s.K > 256 {
			s.K = 256
		}
		in := s.NewInput()
		in.FillRandom(int64(l.ID))
		f := s.NewFilter()
		f.FillRandom(int64(l.ID) + 100)
		want := conv.Reference(s, in, f)
		got := Conv2D(s, in, f, Options{})
		if d := tensor.RelDiff(want, got); d > tol {
			t.Fatalf("layer %d (%v): rel diff %g", l.ID, s, d)
		}
	}
}

func TestSpecialisedKernelsBitIdenticalToGeneric(t *testing.T) {
	// The hand-unrolled 3x3/1x1 kernels must produce bit-identical
	// results to the generic kernel (same operation order per output).
	for _, s := range []conv.Shape{
		{N: 1, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 16, H: 14, W: 14, K: 16, R: 1, S: 1, Str: 1, Pad: 0},
		{N: 1, C: 7, H: 9, W: 11, K: 13, R: 3, S: 3, Str: 1, Pad: 1},
	} {
		in := s.NewInput()
		in.FillRandom(1)
		f := s.NewFilter()
		f.FillRandom(2)
		spec := Conv2D(s, in, f, Options{Threads: 1})
		unrolled := Conv2D(s, in, f, Options{Threads: 1, UnrolledKernels: true})
		gen := Conv2D(s, in, f, Options{Threads: 1, ForceGenericKernel: true})
		if d := tensor.MaxAbsDiff(spec, gen); d != 0 {
			t.Fatalf("%v: specialised kernel differs from generic by %g", s, d)
		}
		if d := tensor.MaxAbsDiff(spec, unrolled); d != 0 {
			t.Fatalf("%v: unrolled kernel differs by %g", s, d)
		}
	}
}

func TestKernelDispatchSelection(t *testing.T) {
	mk := func(s conv.Shape, opt Options) kernelKind {
		return NewPlan(s, opt).kind
	}
	s3 := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	if mk(s3, Options{}) != kind12x8 {
		t.Fatal("3x3 stride-1 must default to the looped 12x8 kernel")
	}
	if mk(s3, Options{UnrolledKernels: true}) != kind12x8S3 {
		t.Fatal("UnrolledKernels must select the Algorithm 3 body")
	}
	s1 := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 1, S: 1, Str: 1, Pad: 0}
	if mk(s1, Options{}) != kind12x8S1 {
		t.Fatal("1x1 stride-1 must select the pointwise kernel")
	}
	sStr2 := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 2, Pad: 1}
	if mk(sStr2, Options{}) != kind12x8 {
		t.Fatal("3x3 stride-2 must select the looped 12x8 kernel")
	}
	s7 := conv.Shape{N: 1, C: 3, H: 16, W: 16, K: 8, R: 7, S: 7, Str: 2, Pad: 3}
	if mk(s7, Options{}) != kindGeneric {
		t.Fatal("7x7 (non-12x8 tile) must select the generic kernel")
	}
	if mk(s3, Options{ForceGenericKernel: true}) != kindGeneric {
		t.Fatal("ForceGenericKernel must win")
	}
}

func TestConcurrentExecuteSafe(t *testing.T) {
	// A Plan must be safe for concurrent Execute calls with distinct
	// outputs (scratch is per-call).
	s := conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	plan := NewPlan(s, Options{Threads: 2})
	want := s.NewOutput()
	plan.Execute(in, f, want)
	var wg sync.WaitGroup
	outs := make([]*tensor.Tensor, 8)
	for i := range outs {
		outs[i] = s.NewOutput()
		wg.Add(1)
		go func(o *tensor.Tensor) {
			defer wg.Done()
			plan.Execute(in, f, o)
		}(outs[i])
	}
	wg.Wait()
	for i, o := range outs {
		if tensor.MaxAbsDiff(want, o) != 0 {
			t.Fatalf("concurrent execution %d differs", i)
		}
	}
}

func TestMinimalShapes(t *testing.T) {
	// Degenerate dimensions: single channel, single output channel,
	// 1x1 spatial, width smaller than the register tile.
	for _, s := range []conv.Shape{
		{N: 1, C: 1, H: 3, W: 3, K: 1, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 1, H: 1, W: 1, K: 1, R: 1, S: 1, Str: 1, Pad: 0},
		{N: 3, C: 2, H: 4, W: 2, K: 3, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 2, H: 5, W: 5, K: 2, R: 5, S: 5, Str: 1, Pad: 2},
	} {
		checkAgainstReference(t, s, Options{})
	}
}

func TestLargePadding(t *testing.T) {
	// Padding bigger than the kernel (legal, generates all-halo rows).
	checkAgainstReference(t, conv.Shape{N: 1, C: 2, H: 4, W: 4, K: 2, R: 3, S: 3, Str: 1, Pad: 3}, Options{})
}

func TestExecuteReusesScratch(t *testing.T) {
	// After warm-up, repeated Execute calls must not allocate the
	// per-worker scratch again (sync.Pool reuse).
	s := conv.Shape{N: 1, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(1)
	f := s.NewFilter()
	f.FillRandom(2)
	plan := NewPlan(s, Options{Threads: 1})
	out := s.NewOutput()
	plan.Execute(in, f, out) // warm the pool
	allocs := testing.AllocsPerRun(20, func() { plan.Execute(in, f, out) })
	if allocs > 24 {
		t.Fatalf("Execute allocates %v objects per run; scratch pooling broken", allocs)
	}
}

func TestRectangularKernels(t *testing.T) {
	// R != S is legal throughout (the paper presents square kernels;
	// nothing in the algorithm requires them).
	for _, s := range []conv.Shape{
		{N: 1, C: 4, H: 10, W: 12, K: 8, R: 3, S: 5, Str: 1, Pad: 2},
		{N: 1, C: 4, H: 12, W: 10, K: 8, R: 5, S: 3, Str: 1, Pad: 2},
		{N: 1, C: 2, H: 9, W: 9, K: 4, R: 1, S: 7, Str: 1, Pad: 3},
		{N: 1, C: 2, H: 9, W: 9, K: 4, R: 7, S: 1, Str: 1, Pad: 3},
	} {
		// Pad is symmetric, so the output geometry differs per axis;
		// only check shapes where it stays realisable.
		if !s.Valid() {
			continue
		}
		checkAgainstReference(t, s, Options{})
	}
}
