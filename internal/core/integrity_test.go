package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/faultinject"
	"ndirect/internal/tensor"
)

func integrityShape() conv.Shape {
	return conv.Shape{N: 1, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
}

// intOperands builds integer-valued operands so every path is
// bit-exact against the reference oracle.
func intOperands(s conv.Shape) (in, filter *tensor.Tensor) {
	in, filter = s.NewInput(), s.NewFilter()
	fillProbe(in.Data, 1)
	fillProbe(filter.Data, 2)
	return in, filter
}

// Packing must stamp a checksum that Verify accepts; corrupting the
// resident bytes must flip Verify to a typed ErrIntegrity; re-packing
// the same source must reproduce the identical checksum (the property
// the eviction/re-pack recovery path rests on).
func TestPackedFilterChecksumRoundTrip(t *testing.T) {
	s := integrityShape()
	_, filter := intOperands(s)
	p := NewPlan(s, Options{Threads: 1})
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Verify(); err != nil {
		t.Fatalf("fresh pack must verify: %v", err)
	}
	pf2, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Checksum() != pf2.Checksum() {
		t.Fatalf("re-pack checksum %#x != original %#x: the transform is supposed to be deterministic",
			pf2.Checksum(), pf.Checksum())
	}

	// Corrupt one resident element the way a DRAM bit flip would.
	pf.data[3] = math.Float32frombits(math.Float32bits(pf.data[3]) ^ 0x00400000)
	if err := pf.Verify(); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Verify on corrupted bytes = %v, want ErrIntegrity", err)
	}
}

// An armed weight-bitflip must surface as a typed ErrIntegrity — never
// a silently wrong output, and never a silent reference-fallback
// recovery (the resident artifact must be re-packed by the owner). The
// shared PackedFilter itself must stay undamaged and keep serving
// bit-exact results afterwards.
func TestWeightBitflipCaughtByChecksum(t *testing.T) {
	defer faultinject.Reset()
	s := integrityShape()
	in, filter := intOperands(s)
	want := conv.Reference(s, in, filter)
	p := NewPlan(s, Options{Threads: 2})
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	out := s.NewOutput()

	pre := IntegritySnapshot()
	faultinject.Arm(faultinject.WeightBitflip, 7)
	err = p.TryExecutePacked(in, pf, out)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("bitflipped packed run = %v, want ErrIntegrity", err)
	}
	post := IntegritySnapshot()
	if post.PackedVerifyFailures != pre.PackedVerifyFailures+1 {
		t.Fatalf("PackedVerifyFailures %d -> %d, want +1", pre.PackedVerifyFailures, post.PackedVerifyFailures)
	}

	// The corruption was run-private: the next run is clean and exact.
	if err := p.TryExecutePacked(in, pf, out); err != nil {
		t.Fatalf("clean run after the drill: %v", err)
	}
	if d := tensor.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("output differs from reference by %g after recovery, want bit-exact", d)
	}
}

// The sampled schedule must verify every run at interval 1, never at
// interval 0, and must not change results either way.
func TestSampledVerifySchedule(t *testing.T) {
	prev := SetPackedVerifyInterval(1)
	defer SetPackedVerifyInterval(prev)
	s := integrityShape()
	in, filter := intOperands(s)
	p := NewPlan(s, Options{Threads: 1})
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}
	out := s.NewOutput()

	pre := IntegritySnapshot()
	for i := 0; i < 3; i++ {
		if err := p.TryExecutePacked(in, pf, out); err != nil {
			t.Fatal(err)
		}
	}
	post := IntegritySnapshot()
	if post.PackedVerifies < pre.PackedVerifies+3 {
		t.Fatalf("interval 1: PackedVerifies %d -> %d over 3 runs, want +3", pre.PackedVerifies, post.PackedVerifies)
	}

	SetPackedVerifyInterval(0)
	pre = IntegritySnapshot()
	if err := p.TryExecutePacked(in, pf, out); err != nil {
		t.Fatal(err)
	}
	if post := IntegritySnapshot(); post.PackedVerifies != pre.PackedVerifies {
		t.Fatalf("interval 0 must disable sampling: PackedVerifies %d -> %d", pre.PackedVerifies, post.PackedVerifies)
	}
}

// An injected scratch overrun must fail the run typed with
// ErrIntegrity, count a canary trip, quarantine the run state (never
// re-pool it), and leave subsequent runs clean and bit-exact.
func TestScratchOverrunTripsCanary(t *testing.T) {
	defer faultinject.Reset()
	s := integrityShape()
	in, filter := intOperands(s)
	want := conv.Reference(s, in, filter)
	p := NewPlan(s, Options{Threads: 2})
	out := s.NewOutput()
	// Warm the run pool first so the drill proves a poisoned parked run
	// is quarantined rather than reused.
	if err := p.TryExecute(in, filter, out); err != nil {
		t.Fatal(err)
	}

	pre := IntegritySnapshot()
	faultinject.Arm(faultinject.ScratchOverrun, 0)
	err := p.TryExecute(in, filter, out)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("overrun run = %v, want ErrIntegrity", err)
	}
	post := IntegritySnapshot()
	if post.ScratchCanaryTrips != pre.ScratchCanaryTrips+1 {
		t.Fatalf("ScratchCanaryTrips %d -> %d, want +1", pre.ScratchCanaryTrips, post.ScratchCanaryTrips)
	}

	if err := p.TryExecute(in, filter, out); err != nil {
		t.Fatalf("run after quarantine: %v", err)
	}
	if d := tensor.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("post-quarantine output differs by %g, want bit-exact", d)
	}
}

// Every built-in kernel family must pass its golden probe; an armed
// kernel-miscompute must flip the probe to ErrIntegrity; quarantining
// a family must drop its dispatch coverage (with a generation bump so
// plan caches re-key) and bar re-registration; restoring must bring
// the shapes back.
func TestKernelFamilyQuarantineCycle(t *testing.T) {
	defer faultinject.Reset()
	for _, name := range KernelFamilyNames() {
		if err := VerifyKernelFamily(name); err != nil {
			t.Fatalf("family %s: clean probe failed: %v", name, err)
		}
	}
	if err := VerifyKernelFamily("no-such-family"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown family = %v, want ErrBadOptions", err)
	}

	const fam = "12x8.r3s3.s1"
	faultinject.Arm(faultinject.KernelMiscompute, -1)
	if err := VerifyKernelFamily(fam); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("miscompute probe = %v, want ErrIntegrity", err)
	}

	preStats := KernelDispatchStats()
	if !QuarantineKernelFamily(fam) {
		t.Fatal("QuarantineKernelFamily must accept a known family")
	}
	defer RestoreKernelFamily(fam)
	if !KernelFamilyQuarantined(fam) {
		t.Fatal("family must report quarantined")
	}
	qStats := KernelDispatchStats()
	if qStats.Quarantined != preStats.Quarantined+1 {
		t.Fatalf("Quarantined %d -> %d, want +1", preStats.Quarantined, qStats.Quarantined)
	}
	if qStats.Generation == preStats.Generation {
		t.Fatal("quarantine must bump the dispatch generation")
	}
	if qStats.Registered >= preStats.Registered {
		t.Fatalf("quarantine must drop the family's shapes: registered %d -> %d",
			preStats.Registered, qStats.Registered)
	}

	// A quarantined family's shape plans on the fallback kernel, still
	// bit-exact.
	s := integrityShape() // 3x3 stride-1: the quarantined family
	if RegisterShapeKernel(s) {
		t.Fatal("RegisterShapeKernel must refuse a quarantined family")
	}
	p := NewPlan(s, Options{Threads: 1})
	if p.KernelName() == fam {
		t.Fatalf("plan for a quarantined family still dispatches %s", p.KernelName())
	}
	in, filter := intOperands(s)
	out := s.NewOutput()
	if err := p.TryExecute(in, filter, out); err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out, conv.Reference(s, in, filter)); d != 0 {
		t.Fatalf("fallback path differs by %g, want bit-exact", d)
	}

	if !RestoreKernelFamily(fam) {
		t.Fatal("RestoreKernelFamily must accept a known family")
	}
	rStats := KernelDispatchStats()
	if rStats.Quarantined != preStats.Quarantined {
		t.Fatalf("restore must clear the quarantine count: %d, want %d", rStats.Quarantined, preStats.Quarantined)
	}
	if rStats.Registered < preStats.Registered {
		t.Fatalf("restore must re-register the remembered shapes: %d < %d", rStats.Registered, preStats.Registered)
	}
	if rStats.Generation == qStats.Generation {
		t.Fatal("restore must bump the dispatch generation")
	}
	// The shape recorded while quarantined is covered again.
	p2 := NewPlan(s, Options{Threads: 1})
	if p2.KernelName() != fam {
		t.Fatalf("restored family not selected: plan dispatches %s", p2.KernelName())
	}
	if err := VerifyKernelFamily(fam); err != nil {
		t.Fatalf("restore probe: %v", err)
	}
}

// Satellite: PackedFilter.Release and Verify racing concurrent
// TryExecutePacked calls must stay memory-safe under -race, with every
// execution either bit-exact or failing typed (ErrWeightsReleased once
// the release lands). Verify itself must keep returning nil — the
// buffer is immutable, released or not.
func TestPackedReleaseVerifyRace(t *testing.T) {
	s := integrityShape()
	in, filter := intOperands(s)
	want := conv.Reference(s, in, filter)
	p := NewPlan(s, Options{Threads: 2})
	pf, err := p.TransformFilter(filter)
	if err != nil {
		t.Fatal(err)
	}

	const execs = 4
	start := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, execs*8+1)
	for g := 0; g < execs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := s.NewOutput()
			<-start
			for i := 0; i < 8; i++ {
				err := p.TryExecutePacked(in, pf, out)
				switch {
				case err == nil:
					if d := tensor.MaxAbsDiff(out, want); d != 0 {
						errCh <- errors.New("racing execution produced a wrong output")
						return
					}
				case errors.Is(err, ErrWeightsReleased):
					// Typed staleness after the release landed: expected.
				default:
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 16; i++ {
			if err := pf.Verify(); err != nil {
				errCh <- err
				return
			}
		}
		pf.Release()
	}()
	close(start)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if err := pf.Verify(); err != nil {
		t.Fatalf("Verify after Release must still pass (buffer is immutable): %v", err)
	}
	if err := p.TryExecutePacked(in, pf, s.NewOutput()); !errors.Is(err, ErrWeightsReleased) {
		t.Fatalf("released filter = %v, want ErrWeightsReleased", err)
	}
}
