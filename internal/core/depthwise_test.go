package core

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

// depthwiseReference is an independent oracle for the depthwise path.
func depthwiseReference(s conv.Shape, in, filter *tensor.Tensor) *tensor.Tensor {
	p, q := s.P(), s.Q()
	out := tensor.New(s.N, s.C, p, q)
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for oh := 0; oh < p; oh++ {
				for ow := 0; ow < q; ow++ {
					var acc float64
					for r := 0; r < s.R; r++ {
						ih := oh*s.Str - s.Pad + r
						if ih < 0 || ih >= s.H {
							continue
						}
						for ss := 0; ss < s.S; ss++ {
							iw := ow*s.Str - s.Pad + ss
							if iw < 0 || iw >= s.W {
								continue
							}
							acc += float64(in.At(n, c, ih, iw)) * float64(filter.At(c, r, ss))
						}
					}
					out.Set(float32(acc), n, c, oh, ow)
				}
			}
		}
	}
	return out
}

func TestDepthwiseMatchesReference(t *testing.T) {
	for _, tc := range []conv.Shape{
		{N: 2, C: 8, H: 14, W: 14, K: 8, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 4, H: 16, W: 16, K: 4, R: 3, S: 3, Str: 2, Pad: 1},
		{N: 1, C: 3, H: 9, W: 7, K: 3, R: 5, S: 5, Str: 1, Pad: 2},
		{N: 1, C: 2, H: 6, W: 6, K: 2, R: 3, S: 3, Str: 1, Pad: 0},
	} {
		in := tensor.New(tc.N, tc.C, tc.H, tc.W)
		in.FillRandom(int64(tc.C))
		f := tensor.New(tc.C, tc.R, tc.S)
		f.FillRandom(int64(tc.R))
		want := depthwiseReference(tc, in, f)
		got := DepthwiseConv2D(tc, in, f, Options{})
		if d := tensor.RelDiff(want, got); d > tol {
			t.Fatalf("shape %v: rel diff %g", tc, d)
		}
	}
}

func TestDepthwiseMultiThreadDeterministic(t *testing.T) {
	s := conv.Shape{N: 2, C: 16, H: 14, W: 14, K: 16, R: 3, S: 3, Str: 1, Pad: 1}
	in := tensor.New(s.N, s.C, s.H, s.W)
	in.FillRandom(1)
	f := tensor.New(s.C, s.R, s.S)
	f.FillRandom(2)
	a := DepthwiseConv2D(s, in, f, Options{Threads: 1})
	b := DepthwiseConv2D(s, in, f, Options{Threads: 8})
	if tensor.MaxAbsDiff(a, b) != 0 {
		t.Fatal("thread count changed depthwise result")
	}
}

func TestDepthwiseFilterValidation(t *testing.T) {
	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 4, R: 3, S: 3, Str: 1, Pad: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong filter rank")
		}
	}()
	DepthwiseConv2D(s, tensor.New(1, 4, 8, 8), tensor.New(4, 3), Options{})
}

func TestPointwiseMatchesConv1x1(t *testing.T) {
	s := conv.Shape{N: 1, C: 8, H: 10, W: 10, K: 16, R: 1, S: 1, Str: 1, Pad: 0}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	want := conv.Reference(s, in, f)
	got := PointwiseConv2D(1, 8, 10, 10, 16, in, f, Options{})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("pointwise rel diff %g", d)
	}
}

// conv3dReference is an independent seven-plus-two loop oracle.
func conv3dReference(s Shape3D, in, filter *tensor.Tensor) *tensor.Tensor {
	dOut, p, q := s.DOut(), s.P(), s.Q()
	out := tensor.New(s.N, s.K, dOut, p, q)
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			for od := 0; od < dOut; od++ {
				for oh := 0; oh < p; oh++ {
					for ow := 0; ow < q; ow++ {
						var acc float64
						for c := 0; c < s.C; c++ {
							for tt := 0; tt < s.T; tt++ {
								id := od*s.StrD - s.PadD + tt
								if id < 0 || id >= s.D {
									continue
								}
								for r := 0; r < s.R; r++ {
									ih := oh*s.Str - s.Pad + r
									if ih < 0 || ih >= s.H {
										continue
									}
									for ss := 0; ss < s.S; ss++ {
										iw := ow*s.Str - s.Pad + ss
										if iw < 0 || iw >= s.W {
											continue
										}
										acc += float64(in.At(n, c, id, ih, iw)) *
											float64(filter.At(k, c, tt, r, ss))
									}
								}
							}
						}
						out.Set(float32(acc), n, k, od, oh, ow)
					}
				}
			}
		}
	}
	return out
}

func TestConv3DMatchesReference(t *testing.T) {
	s := Shape3D{
		Shape: conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 6, R: 3, S: 3, Str: 1, Pad: 1},
		D:     6, T: 3, StrD: 1, PadD: 1,
	}
	in := tensor.New(s.N, s.C, s.D, s.H, s.W)
	in.FillRandom(5)
	f := tensor.New(s.K, s.C, s.T, s.R, s.S)
	f.FillRandom(6)
	want := conv3dReference(s, in, f)
	got := Conv3D(s, in, f, Options{})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("conv3d rel diff %g", d)
	}
}

func TestConv3DStridedDepth(t *testing.T) {
	s := Shape3D{
		Shape: conv.Shape{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3, Str: 1, Pad: 1},
		D:     8, T: 3, StrD: 2, PadD: 0,
	}
	if s.DOut() != 3 {
		t.Fatalf("DOut = %d, want 3", s.DOut())
	}
	in := tensor.New(s.N, s.C, s.D, s.H, s.W)
	in.FillRandom(7)
	f := tensor.New(s.K, s.C, s.T, s.R, s.S)
	f.FillRandom(8)
	want := conv3dReference(s, in, f)
	got := Conv3D(s, in, f, Options{})
	if d := tensor.RelDiff(want, got); d > tol {
		t.Fatalf("strided conv3d rel diff %g", d)
	}
}

func TestConv3DInputValidation(t *testing.T) {
	s := Shape3D{
		Shape: conv.Shape{N: 1, C: 2, H: 6, W: 6, K: 4, R: 3, S: 3, Str: 1, Pad: 1},
		D:     4, T: 3, StrD: 1, PadD: 1,
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong input dims")
		}
	}()
	Conv3D(s, tensor.New(1, 2, 5, 6, 6), tensor.New(4, 2, 3, 3, 3), Options{})
}
