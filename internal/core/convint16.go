package core

import (
	"context"
	"fmt"

	"ndirect/internal/conv"
	"ndirect/internal/model"
	"ndirect/internal/parallel"
)

// INT16 nDirect (§3.3). Quantised inference convolves int16
// activations against int16 weights and accumulates in int32 — the
// ARM NEON smlal/smlal2 pattern, where a 128-bit register holds 8
// int16 lanes and widening multiply-accumulate fills two 4×int32
// accumulators. The register-tile solver therefore runs with an
// 8-lane geometry; packing, filter blocking and the loop nest follow
// the FP32 path.
//
// As in hardware, accumulation saturates nothing and can wrap for
// adversarial ranges: callers bound |x|·|w|·C·R·S < 2³¹ as quantised
// deployments do (the tests document the exact contract).

// int16Geometry is the 128-bit NEON register geometry for int16 data.
var int16Geometry = model.VectorGeometry{Lanes: 8, NumRegs: 32}

// TryConv2DInt16 convolves an int16 NCHW input with an int16 KCRS
// filter and returns the raw int32 NKPQ accumulators (requantisation
// is the caller's, as in quantised inference pipelines). Checked
// variant: validation failures return errors; a faulting worker is
// logged and the result recomputed with the ReferenceInt16 oracle.
func TryConv2DInt16(s conv.Shape, in, filter []int16, opt Options) ([]int32, error) {
	return TryConv2DInt16Ctx(context.Background(), s, in, filter, opt)
}

// TryConv2DInt16Ctx is the context-bounded form of TryConv2DInt16
// with the deadline semantics of Plan.TryExecuteCtx: on expiry the
// parallel row loop is abandoned and the error wraps
// conv.ErrDeadline, unless Options.FallbackBudget grants the
// ReferenceInt16 recompute time to finish (the oracle polls its
// deadline between output rows).
func TryConv2DInt16Ctx(ctx context.Context, s conv.Shape, in, filter []int16, opt Options) ([]int32, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opt.Threads > maxThreads {
		return nil, fmt.Errorf("%w: Threads=%d exceeds %d", ErrBadOptions, opt.Threads, maxThreads)
	}
	if want := s.N * s.C * s.H * s.W; len(in) != want {
		return nil, fmt.Errorf("%w: int16 input length %d, want %d", conv.ErrDimMismatch, len(in), want)
	}
	if want := s.K * s.C * s.R * s.S; len(filter) != want {
		return nil, fmt.Errorf("%w: int16 filter length %d, want %d", conv.ErrDimMismatch, len(filter), want)
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	rt := int16Geometry.SolveRegisterTile(s.S, s.Str)
	p, q := s.P(), s.Q()
	out := make([]int32, s.N*s.K*p*q)
	wIn := (rt.Vw-1)*s.Str + s.S
	kBlocks := (s.K + rt.Vk - 1) / rt.Vk

	// Channel tiling: keep the packed panel + one filter block within
	// a 32 KiB L1 budget of 2-byte elements.
	tc := max(1, (16<<10)/(s.R*wIn+2*rt.Vk*s.R*s.S))
	tc = min(tc, s.C)

	err := parallel.ForRangeCtx(ctx, s.N*p, threads, func(_ int, rows parallel.Range) {
		tf := make([]int16, kBlocks*rt.Vk*tc*s.R*s.S)
		buf := make([]int16, tc*s.R*wIn)
		acc := make([]int32, rt.Vw*rt.Vk)
		for row := rows.Lo; row < rows.Hi; row++ {
			n, oh := row/p, row%p
			for cIdx := 0; cIdx < s.C; cIdx += tc {
				tcEff := min(tc, s.C-cIdx)
				firstC := cIdx == 0
				transformFilterInt16(filter, tf, s, s.K, cIdx, tcEff, rt.Vk)
				for qt0 := 0; qt0 < q; qt0 += rt.Vw {
					vwEff := min(rt.Vw, q-qt0)
					packInt16(in, buf, s, n, oh, qt0, cIdx, tcEff, wIn)
					for kb := 0; kb < kBlocks; kb++ {
						clear(acc)
						kernelInt16(acc, buf, tf[kb*tcEff*s.R*s.S*rt.Vk:], tcEff, s.R, s.S, s.Str, vwEff, wIn, rt.Vk)
						storeInt16(acc, out, s, n, kb*rt.Vk, oh, qt0, vwEff, rt.Vk, firstC)
					}
				}
			}
		}
	})
	if err != nil {
		fctx, cancel, derr := fallbackCtx(ctx, err, opt)
		if derr != nil {
			return nil, derr
		}
		defer cancel()
		Logf("core: int16 parallel path faulted on %v; recomputing on reference path: %v", s, err)
		var refErr error
		if perr := parallel.Protect(func() { out, refErr = referenceInt16Ctx(fctx, s, in, filter) }); perr != nil {
			return nil, fmt.Errorf("%w: %v", ErrExecFault, perr)
		}
		if refErr != nil {
			return nil, refErr
		}
	}
	return out, nil
}

// Conv2DInt16 is the panicking wrapper over TryConv2DInt16.
func Conv2DInt16(s conv.Shape, in, filter []int16, opt Options) []int32 {
	out, err := TryConv2DInt16(s, in, filter, opt)
	if err != nil {
		panic(err)
	}
	return out
}

func transformFilterInt16(filter, dst []int16, s conv.Shape, tk, cIdx, tc, vk int) {
	rs := s.R * s.S
	kBlocks := (tk + vk - 1) / vk
	for kb := 0; kb < kBlocks; kb++ {
		for cv := 0; cv < tc; cv++ {
			srcC := (cIdx + cv) * rs
			dstBase := ((kb*tc + cv) * rs) * vk
			for x := 0; x < rs; x++ {
				d := dstBase + x*vk
				for lane := 0; lane < vk; lane++ {
					kk := kb*vk + lane
					if kk < tk {
						dst[d+lane] = filter[kk*s.C*rs+srcC+x]
					} else {
						dst[d+lane] = 0
					}
				}
			}
		}
	}
}

func packInt16(in, buf []int16, s conv.Shape, n, oh, qt0, cIdx, tc, wIn int) {
	ihBase := oh*s.Str - s.Pad
	iwBase := qt0*s.Str - s.Pad
	for cv := 0; cv < tc; cv++ {
		chanBase := ((n*s.C + cIdx + cv) * s.H) * s.W
		for r := 0; r < s.R; r++ {
			dst := buf[(cv*s.R+r)*wIn : (cv*s.R+r+1)*wIn]
			ih := ihBase + r
			if ih < 0 || ih >= s.H {
				clear(dst)
				continue
			}
			src := in[chanBase+ih*s.W : chanBase+(ih+1)*s.W]
			x := 0
			for ; x < len(dst) && iwBase+x < 0; x++ {
				dst[x] = 0
			}
			end := len(dst)
			if iwBase+end > s.W {
				end = s.W - iwBase
			}
			if end > x {
				copy(dst[x:end], src[iwBase+x:iwBase+end])
				x = end
			}
			for ; x < len(dst); x++ {
				dst[x] = 0
			}
		}
	}
}

// kernelInt16 is the widening multiply-accumulate micro-kernel:
// int16 × int16 products accumulate into the int32 register tile.
func kernelInt16(acc []int32, buf, tf []int16, tc, r, ss, str, vwEff, wIn, vk int) {
	for cv := 0; cv < tc; cv++ {
		for rr := 0; rr < r; rr++ {
			row := buf[(cv*r+rr)*wIn : (cv*r+rr)*wIn+wIn]
			fb := (cv*r + rr) * ss * vk
			for sv := 0; sv < ss; sv++ {
				fs := tf[fb+sv*vk : fb+(sv+1)*vk]
				x := sv
				for ow := 0; ow < vwEff; ow++ {
					v := int32(row[x])
					base := ow * vk
					for lane := 0; lane < vk; lane++ {
						acc[base+lane] += v * int32(fs[lane])
					}
					x += str
				}
			}
		}
	}
}

func storeInt16(acc []int32, out []int32, s conv.Shape, n, kBase, oh, qt0, vwEff, vk int, firstC bool) {
	p, q := s.P(), s.Q()
	kEnd := min(kBase+vk, s.K)
	for k := kBase; k < kEnd; k++ {
		lane := k - kBase
		rowB := ((n*s.K+k)*p + oh) * q
		for ow := 0; ow < vwEff; ow++ {
			v := acc[ow*vk+lane]
			if firstC {
				out[rowB+qt0+ow] = v
			} else {
				out[rowB+qt0+ow] += v
			}
		}
	}
}

// ReferenceInt16 is the naive int32-accumulating oracle (Algorithm 1
// on quantised data); bit-identical to Conv2DInt16 because integer
// addition is associative.
func ReferenceInt16(s conv.Shape, in, filter []int16) []int32 {
	out, err := referenceInt16Ctx(context.Background(), s, in, filter)
	if err != nil {
		panic(err) // unreachable: Background never expires
	}
	return out
}

// referenceInt16Ctx is ReferenceInt16 bounded by ctx, polled between
// output rows like conv.ReferenceCtx.
func referenceInt16Ctx(ctx context.Context, s conv.Shape, in, filter []int16) ([]int32, error) {
	p, q := s.P(), s.Q()
	poll := ctx.Done() != nil
	out := make([]int32, s.N*s.K*p*q)
	for n := 0; n < s.N; n++ {
		for k := 0; k < s.K; k++ {
			for oj := 0; oj < p; oj++ {
				if poll && ctx.Err() != nil {
					return nil, deadlineErr(ctx)
				}
				for oi := 0; oi < q; oi++ {
					var acc int32
					for c := 0; c < s.C; c++ {
						for r := 0; r < s.R; r++ {
							ih := oj*s.Str - s.Pad + r
							if ih < 0 || ih >= s.H {
								continue
							}
							for ss := 0; ss < s.S; ss++ {
								iw := oi*s.Str - s.Pad + ss
								if iw < 0 || iw >= s.W {
									continue
								}
								acc += int32(in[((n*s.C+c)*s.H+ih)*s.W+iw]) *
									int32(filter[((k*s.C+c)*s.R+r)*s.S+ss])
							}
						}
					}
					out[((n*s.K+k)*p+oj)*q+oi] = acc
				}
			}
		}
	}
	return out, nil
}
