package serve

import (
	"sync"
	"testing"
)

func TestBudgetReserveCeiling(t *testing.T) {
	b := NewBudget(100)
	if !b.Reserve(60) {
		t.Fatal("60 of 100 refused")
	}
	if b.Reserve(50) {
		t.Fatal("60+50 of 100 granted")
	}
	if !b.Reserve(40) {
		t.Fatal("60+40 of 100 refused")
	}
	if got := b.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	b.Release(60)
	if !b.Reserve(50) {
		t.Fatal("40+50 of 100 refused after release")
	}
	if got := b.Peak(); got != 100 {
		t.Fatalf("Peak = %d, want 100", got)
	}
	b.Release(90)
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after full release, want 0", got)
	}
}

func TestBudgetUnlimitedStillAccounts(t *testing.T) {
	b := NewBudget(0)
	if !b.Reserve(1 << 40) {
		t.Fatal("unlimited budget refused a reservation")
	}
	if got := b.InUse(); got != 1<<40 {
		t.Fatalf("InUse = %d, want %d", got, int64(1)<<40)
	}
	b.Release(1 << 40)
}

// TestBudgetConcurrentNeverOvershoots: the CAS loop must hold the
// ceiling exactly under racing reservations — every successful Reserve
// observes InUse <= limit, and the books balance afterwards.
func TestBudgetConcurrentNeverOvershoots(t *testing.T) {
	const limit, chunk, workers, iters = 1000, 300, 8, 500
	b := NewBudget(limit)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if b.Reserve(chunk) {
					if got := b.InUse(); got > limit {
						t.Errorf("InUse = %d > limit %d", got, limit)
					}
					b.Release(chunk)
				}
			}
		}()
	}
	wg.Wait()
	if got := b.InUse(); got != 0 {
		t.Fatalf("InUse = %d after drain, want 0", got)
	}
	if p := b.Peak(); p > limit {
		t.Fatalf("Peak = %d > limit %d", p, limit)
	}
}

func TestBufferPoolBoundedAndExactSize(t *testing.T) {
	// A guarded 10-element array is 10+2*poolCanaryWords = 18 floats =
	// 72 B; the bound has room for exactly two.
	bp := newBufferPool(150, nil)
	for i := 0; i < 3; i++ {
		if parked, tripped := bp.put(bp.alloc(10)); !parked || tripped {
			t.Fatalf("put %d = parked %v tripped %v, want parked and intact", i, parked, tripped)
		}
	}
	if got := bp.idle(); got != 144 {
		t.Fatalf("idle = %d, want 144 (third buffer dropped past the bound)", got)
	}
	if buf := bp.get(7); buf != nil {
		t.Fatal("pool returned a buffer for a size it never saw")
	}
	if buf := bp.get(10); len(buf) != 10 || cap(buf) != 10 {
		t.Fatalf("get(10) = len %d cap %d, want 10 and 10 (the tail guard must be unreachable)", len(buf), cap(buf))
	}
	if buf := bp.get(10); len(buf) != 10 {
		t.Fatalf("second get(10) = len %d, want 10", len(buf))
	}
	if buf := bp.get(10); buf != nil {
		t.Fatal("pool returned a third buffer after parking only two")
	}
	if got := bp.idle(); got != 0 {
		t.Fatalf("idle = %d after draining, want 0", got)
	}
	bp.put(nil) // zero-length must be ignored
	if got := bp.idle(); got != 0 {
		t.Fatalf("idle = %d after putting nil, want 0", got)
	}
	// A buffer the pool never issued carries no guards: refused, never
	// parked.
	if parked, tripped := bp.put(make([]float32, 10)); parked || tripped {
		t.Fatalf("foreign put = parked %v tripped %v, want refused", parked, tripped)
	}
}
