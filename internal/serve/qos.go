package serve

import (
	"context"
	"fmt"
	"sync"

	"ndirect/internal/core"
)

// QoSClass is a request's admission class. Classes order strictly:
// under saturation the lowest class is shed first (its share of the
// wait queue fills first), and freed execution slots are handed to
// waiting classes in weighted-fair order, so premium traffic keeps
// flowing while batch traffic absorbs the overload.
type QoSClass int

const (
	// ClassBatch is the lowest class: offline/bulk traffic, first to be
	// shed with ErrOverloaded when the queue fills.
	ClassBatch QoSClass = iota
	// ClassStandard is the default interactive class.
	ClassStandard
	// ClassPremium is the highest class: last to be shed, largest share
	// of freed slots.
	ClassPremium
	// NumQoSClasses is the number of admission classes.
	NumQoSClasses = int(ClassPremium) + 1
)

func (c QoSClass) String() string {
	switch c {
	case ClassBatch:
		return "batch"
	case ClassStandard:
		return "standard"
	case ClassPremium:
		return "premium"
	}
	return fmt.Sprintf("QoSClass(%d)", int(c))
}

// Valid reports whether c names a defined class.
func (c QoSClass) Valid() bool { return c >= ClassBatch && c <= ClassPremium }

// classWeights are the weighted-fair shares of freed slots: a premium
// waiter is granted 4 slots for every 2 standard and 1 batch grant
// when all classes are queued (smooth weighted round-robin, so the
// interleave is even, not bursty).
var classWeights = [NumQoSClasses]int{1, 2, 4}

// tgWaiter is one queued request. grant is buffered (capacity 1) so a
// granter never blocks on a waiter that is simultaneously timing out;
// the granted flag, written under the gate's mutex, resolves that race:
// whichever side observes it first owns the slot's disposition.
type tgWaiter struct {
	tenant  string
	class   QoSClass
	grant   chan struct{}
	granted bool
}

// TenantGate is the multi-tenant admission controller: at most
// maxInFlight requests execute concurrently; waiters queue per class
// in a shared bounded queue whose capacity is class-graduated (class c
// may only join while the total queue is below (c+1)/NumQoSClasses of
// maxQueue, so batch sheds strictly before standard, and standard
// strictly before premium); freed slots are handed directly to the
// longest-waiting request of the smooth-WRR-chosen class; and each
// tenant's outstanding requests (in flight + queued) are capped
// independently, so one tenant cannot occupy every slot.
//
// All rejection paths fail fast with an error wrapping
// core.ErrOverloaded, before any convolution work or allocation.
type TenantGate struct {
	mu          sync.Mutex
	maxInFlight int
	maxQueue    int
	inFlight    int
	queues      [NumQoSClasses][]*tgWaiter
	queuedTotal int
	wfq         [NumQoSClasses]int // smooth-WRR running weights
	outstanding map[string]int     // tenant → in flight + queued

	admitted   [NumQoSClasses]uint64
	shedFull   [NumQoSClasses]uint64 // rejected: class's queue share full
	shedLate   [NumQoSClasses]uint64 // rejected: ctx expired while queued
	tenantRejs uint64                // rejected: per-tenant cap
}

// NewTenantGate builds a tenant gate admitting maxInFlight concurrent
// requests with a class-graduated wait queue of maxQueue. maxInFlight
// < 1 is clamped to 1; maxQueue < 0 is clamped to 0 (reject the moment
// all slots are taken, regardless of class).
func NewTenantGate(maxInFlight, maxQueue int) *TenantGate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &TenantGate{
		maxInFlight: maxInFlight,
		maxQueue:    maxQueue,
		outstanding: map[string]int{},
	}
}

// queueCap returns the total-queue bound class c admits at: the queue
// is shared, but class c may only join while fewer than its graduated
// share are waiting. Premium's share is the whole queue, so a premium
// rejection implies every lower class was already rejecting.
func (g *TenantGate) queueCap(c QoSClass) int {
	return g.maxQueue * (int(c) + 1) / NumQoSClasses
}

// Acquire claims an execution slot for tenant's request at the given
// class, waiting in the class-graduated queue if none is free. limit
// bounds the tenant's outstanding requests (in flight + queued); <= 0
// means uncapped. It returns a release function (idempotent; call
// exactly when the request finishes) or an error wrapping
// core.ErrOverloaded. A nil ctx waits forever.
func (g *TenantGate) Acquire(ctx context.Context, tenant string, class QoSClass, limit int) (release func(), err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !class.Valid() {
		return nil, fmt.Errorf("%w: unknown QoS class %d", core.ErrBadOptions, int(class))
	}
	g.mu.Lock()
	if limit > 0 && g.outstanding[tenant] >= limit {
		g.tenantRejs++
		n := g.outstanding[tenant]
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q at outstanding cap (%d of %d)",
			core.ErrOverloaded, tenant, n, limit)
	}
	if g.inFlight < g.maxInFlight {
		g.inFlight++
		g.outstanding[tenant]++
		g.admitted[class]++
		g.mu.Unlock()
		return g.releaseFunc(tenant), nil
	}
	if g.queuedTotal >= g.queueCap(class) {
		g.shedFull[class]++
		waiting := g.queuedTotal
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: %v queue share full (%d waiting, class cap %d)",
			core.ErrOverloaded, class, waiting, g.queueCap(class))
	}
	w := &tgWaiter{tenant: tenant, class: class, grant: make(chan struct{}, 1)}
	g.queues[class] = append(g.queues[class], w)
	g.queuedTotal++
	g.outstanding[tenant]++
	g.mu.Unlock()

	select {
	case <-w.grant:
		return g.releaseFunc(tenant), nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced the deadline and won: the slot is ours, so
			// honour it — the caller sees success, exactly as if the
			// grant had arrived a tick earlier.
			g.mu.Unlock()
			return g.releaseFunc(tenant), nil
		}
		g.removeWaiterLocked(w)
		g.shedLate[class]++
		g.decOutstandingLocked(tenant)
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: no slot before deadline (%v class): %w",
			core.ErrOverloaded, class, context.Cause(ctx))
	}
}

// releaseFunc returns the slot exactly once even if called repeatedly:
// the slot is handed directly to the next waiter when one is queued
// (the in-flight count never dips, so no late arriver can steal it),
// or retired otherwise.
func (g *TenantGate) releaseFunc(tenant string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.decOutstandingLocked(tenant)
			if w := g.pickNextLocked(); w != nil {
				w.granted = true
				g.admitted[w.class]++
				w.grant <- struct{}{}
			} else {
				g.inFlight--
			}
			g.mu.Unlock()
		})
	}
}

func (g *TenantGate) decOutstandingLocked(tenant string) {
	if n := g.outstanding[tenant] - 1; n > 0 {
		g.outstanding[tenant] = n
	} else {
		delete(g.outstanding, tenant)
	}
}

// pickNextLocked dequeues the next waiter by smooth weighted
// round-robin over the classes with waiters (nginx-style: every
// queued class's running weight grows by its share; the largest wins
// and pays back the round's total), which interleaves grants evenly
// at the configured 4:2:1 ratio instead of serving bursts per class.
// Ties break to the higher class. Returns nil when nothing is queued.
func (g *TenantGate) pickNextLocked() *tgWaiter {
	total := 0
	best := -1
	for c := NumQoSClasses - 1; c >= 0; c-- {
		if len(g.queues[c]) == 0 {
			continue
		}
		g.wfq[c] += classWeights[c]
		total += classWeights[c]
		if best < 0 || g.wfq[c] > g.wfq[best] {
			best = c
		}
	}
	if best < 0 {
		return nil
	}
	g.wfq[best] -= total
	w := g.queues[best][0]
	g.queues[best] = g.queues[best][1:]
	g.queuedTotal--
	return w
}

// removeWaiterLocked unlinks a timed-out waiter from its class queue.
func (g *TenantGate) removeWaiterLocked(w *tgWaiter) {
	q := g.queues[w.class]
	for i, x := range q {
		if x == w {
			g.queues[w.class] = append(q[:i], q[i+1:]...)
			g.queuedTotal--
			return
		}
	}
}

// TenantGateStats is a point-in-time snapshot of the tenant gate.
type TenantGateStats struct {
	InFlight int
	Queued   int
	// Per-class counters, indexed by QoSClass.
	Admitted      [NumQoSClasses]uint64
	ShedFull      [NumQoSClasses]uint64 // rejected at the class's queue share
	ShedLate      [NumQoSClasses]uint64 // ctx expired while queued
	TenantCapRejs uint64                // rejected at a per-tenant cap
	Tenants       int                   // tenants with outstanding requests
}

// Stats snapshots the gate's counters.
func (g *TenantGate) Stats() TenantGateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return TenantGateStats{
		InFlight:      g.inFlight,
		Queued:        g.queuedTotal,
		Admitted:      g.admitted,
		ShedFull:      g.shedFull,
		ShedLate:      g.shedLate,
		TenantCapRejs: g.tenantRejs,
		Tenants:       len(g.outstanding),
	}
}

// Outstanding returns tenant's current in-flight + queued count.
func (g *TenantGate) Outstanding(tenant string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.outstanding[tenant]
}
