// Package serve is the overload-safe serving runtime: it wraps the
// checked, context-bounded convolution entry points (and the nn
// inference engine) with the process-level protections a production
// deployment needs and the per-call API cannot provide on its own:
//
//   - Admission control (Gate): a hard in-flight limit plus a bounded,
//     deadline-aware wait queue. Offered load beyond the queue fails
//     fast with core.ErrOverloaded instead of accumulating goroutines.
//   - A global memory budget (Budget): each admitted request reserves
//     the bytes its execution will touch (output + plan scratch;
//     packed filters are charged at Pack time) against a configurable
//     ceiling. When the reservation fails, the request walks an
//     explicit degradation ladder — pooled output buffer, fresh
//     allocation, a smaller-tile single-thread plan, and finally the
//     zero-scratch reference path — each rung recorded in Stats, so
//     pressure degrades throughput predictably instead of OOM-killing
//     the process.
//   - Backend circuit breakers live one layer down, in the nn engine
//     (Engine.BreakerThreshold); the runtime's Forward path inherits
//     them.
//
// The paper's thesis is that performance comes from explicit resource
// budgeting — register and cache tiles solved from hardware limits
// (Equations 1–4). This package extends that discipline from the
// kernel to the process: concurrency and bytes are budgeted the same
// way registers and cache lines are.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/autotune"
	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/nn"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Config configures a serving Runtime. The zero value yields a usable
// runtime: one in-flight slot per core, an equally sized wait queue,
// no memory ceiling (accounting only), and a private plan cache.
type Config struct {
	// MaxInFlight bounds concurrently executing requests. <= 0 selects
	// one per available core (each request already spawns its own
	// thread grid, so more in-flight convolutions than cores just
	// multiplies scratch memory and context switches).
	MaxInFlight int
	// MaxQueue bounds requests waiting for a slot. 0 defaults to
	// MaxInFlight; pass a negative value for "no queue, reject the
	// moment all slots are taken".
	MaxQueue int
	// MemLimitBytes is the global memory ceiling for in-flight
	// request memory. <= 0 disables the ceiling but keeps accounting.
	MemLimitBytes int64
	// PoolIdleBytes bounds the activation pool's idle (parked) bytes.
	// <= 0 selects DefaultPoolIdleBytes.
	PoolIdleBytes int64
	// PlanCacheCap is the runtime plan cache's entry bound (<= 0:
	// core.DefaultPlanCacheCap).
	PlanCacheCap int
	// BatchWindow enables cross-request micro-batching behind the
	// admission gate: compatible requests (same per-image shape, same
	// weights, same tenant and QoS class) arriving within the window
	// coalesce into one plan execution over the batch axis, with one
	// memory-budget reservation for the whole batch and per-request
	// output scatter. 0 (the default) disables batching — every
	// request executes alone, the pre-batching behaviour. Batching
	// only helps when MaxInFlight admits at least BatchMax concurrent
	// requests; waiters hold their admission slot while parked.
	BatchWindow time.Duration
	// BatchMax caps a coalesced batch's total images. A batch seals
	// and executes the moment it reaches the cap, without waiting out
	// the window. <= 0 selects DefaultBatchMax. Only meaningful with
	// BatchWindow > 0.
	BatchMax int
	// Options are the base convolution options for every request
	// (threads, platform, epilogue, FallbackBudget, CheckNumerics...).
	// The PlanCache field is ignored: the runtime always routes
	// through its own cache. Because every request shares these
	// options, the micro-batcher's compatibility key reduces to
	// (shape, weights, tenant, class).
	Options core.Options
	// Engine, when non-nil, serves the Forward path. Nil selects a
	// private nDirect engine with Reuse on, sharing the runtime's plan
	// cache. Configure breaker fields (BreakerThreshold) on the engine
	// to quarantine failing baseline backends.
	Engine *nn.Engine
	// SentinelInterval enables the background integrity sentinel: every
	// interval, while the admission gate is fully idle (no request in
	// flight or queued — the sentinel never takes a slot), one
	// round-robin golden-shape probe runs: a registered kernel-dispatch
	// family is re-verified bit-for-bit against the single-threaded
	// reference (core.VerifyKernelFamily), or a registered model's fast
	// engine is compared against its reference engine. A miscomparing
	// kernel family is quarantined out of dispatch (with a generation
	// bump, so plan caches re-key to the generic kernel); a miscomparing
	// model is quarantined to its reference path. Both are restored by
	// the first clean probe. 0 (the default) disables the sentinel.
	SentinelInterval time.Duration
	// Manifest, when non-nil, warm-starts the runtime from an offline
	// `ndtune -manifest` run: each valid entry's shape is registered
	// with the core kernel-dispatch registry and its plan pre-built
	// into the runtime cache at construction, and registry-registered
	// models covered by the manifest are fully warmed (plans, memos,
	// packed weights) at Register time — production traffic on covered
	// shapes then never pays autotune or plan-construction latency.
	// Entries failing validation are dropped with a log, never fatal.
	Manifest *autotune.Manifest
}

// DefaultPoolIdleBytes bounds the activation pool when Config leaves
// PoolIdleBytes zero: enough to park a few large layer outputs without
// holding a serving process's budget hostage.
const DefaultPoolIdleBytes int64 = 32 << 20

// DefaultBatchMax is the coalesced-batch image cap when Config enables
// batching (BatchWindow > 0) but leaves BatchMax zero.
const DefaultBatchMax = 8

// Runtime is the overload-safe serving runtime. All methods are safe
// for concurrent use.
type Runtime struct {
	gate     *Gate
	budget   *Budget
	plans    *core.PlanCache
	pool     *bufferPool
	opts     core.Options
	engine   *nn.Engine
	batcher  *batcher // nil: batching disabled
	manifest *autotune.Manifest
	sentinel *sentinel // nil: sentinel disabled

	degradedOnce sync.Once
	degraded     core.Options

	poolHits       atomic.Uint64
	freshAllocs    atomic.Uint64
	fullRuns       atomic.Uint64
	degRuns        atomic.Uint64
	refRuns        atomic.Uint64
	overBudget     atomic.Uint64
	memRejected    atomic.Uint64
	recycleRefused atomic.Uint64
	batchStats     batchStats

	// Silent-corruption defense (DESIGN.md §12).
	canaryTrips       atomic.Uint64
	integrityFailures atomic.Uint64
	sentinelProbes    atomic.Uint64
	kernelQuarantines atomic.Uint64
	kernelRestores    atomic.Uint64
}

// New builds a Runtime from cfg (see Config for defaults).
func New(cfg Config) *Runtime {
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = parallel.DefaultThreads()
	}
	queue := cfg.MaxQueue
	if queue == 0 {
		queue = inFlight
	}
	poolIdle := cfg.PoolIdleBytes
	if poolIdle <= 0 {
		poolIdle = DefaultPoolIdleBytes
	}
	opts := cfg.Options
	opts.PlanCache = nil
	rt := &Runtime{
		gate:   NewGate(inFlight, queue),
		budget: NewBudget(cfg.MemLimitBytes),
		plans:  core.NewPlanCache(cfg.PlanCacheCap),
		opts:   opts,
		engine: cfg.Engine,
	}
	rt.pool = newBufferPool(poolIdle, func() {
		rt.canaryTrips.Add(1)
		rt.integrityFailures.Add(1)
	})
	if rt.engine == nil {
		rt.engine = &nn.Engine{
			Algo:    nn.AlgoNDirect,
			Threads: opts.Threads,
			Reuse:   true,
			Plans:   rt.plans,
		}
	}
	if cfg.BatchWindow > 0 {
		max := cfg.BatchMax
		if max <= 0 {
			max = DefaultBatchMax
		}
		rt.batcher = newBatcher(cfg.BatchWindow, max, &rt.batchStats,
			rt.execConvBatch,
			func(ctx context.Context, key batchKey, in *tensor.Tensor) (*tensor.Tensor, error) {
				return rt.convAdmitted(ctx, key.shape.WithBatch(in.Dims[0]), in, key.filter, key.pf)
			},
			rt.Recycle)
	}
	if cfg.Manifest != nil {
		rt.manifest = cfg.Manifest
		if rejected := rt.manifest.Validate(); len(rejected) > 0 {
			core.Logf("serve: manifest: %d entries rejected (invalid shape or schedule); covered shapes reduced", len(rejected))
		}
		rt.engine.LoadManifest(rt.manifest)
		// Warm-start: register each covered shape with the kernel-
		// dispatch registry and pre-solve its batch-1 plan into the
		// runtime cache, so the first request on a tuned shape is a
		// cache hit on a specialized plan. Failures are logged and
		// skipped — a bad entry degrades to cold planning, never
		// blocks startup.
		for _, e := range rt.manifest.Entries {
			if e.Depthwise {
				// Depthwise entries carry a separable row tile, not a
				// standard schedule: they reach execution through
				// Engine.LoadManifest above (nn plans separable blocks
				// with the tuned ForceTh), and the depthwise kernel
				// families are registered statically — nothing to
				// pre-plan here.
				continue
			}
			core.RegisterShapeKernel(e.Shape)
			if _, err := rt.plans.Get(e.Shape.WithBatch(1), rt.opts); err != nil {
				core.Logf("serve: manifest: pre-planning %v failed: %v", e.Shape, err)
			}
		}
	}
	if cfg.SentinelInterval > 0 {
		rt.sentinel = newSentinel(rt, cfg.SentinelInterval)
	}
	// Warm the process-wide worker pool at construction: the first
	// request should land on already-parked workers, not pay the
	// worker spawns (and their allocations) inside its latency budget.
	parallel.DefaultPool()
	return rt
}

// Close stops the runtime's background machinery (the integrity
// sentinel). In-flight requests are unaffected; Close is idempotent
// and a runtime without a sentinel needs no Close at all.
func (rt *Runtime) Close() {
	if rt.sentinel != nil {
		rt.sentinel.stop()
	}
}

// Budget returns the runtime's memory accountant (for charging
// deployment-owned allocations, and for the soak harness's baseline
// checks).
func (rt *Runtime) Budget() *Budget { return rt.budget }

// Gate returns the runtime's admission controller.
func (rt *Runtime) Gate() *Gate { return rt.gate }

// Engine returns the engine serving the Forward path.
func (rt *Runtime) Engine() *nn.Engine { return rt.engine }

// PlanCache returns the runtime's shared plan cache.
func (rt *Runtime) PlanCache() *core.PlanCache { return rt.plans }

// Manifest returns the validated tuning manifest the runtime was
// built with (nil without Config.Manifest).
func (rt *Runtime) Manifest() *autotune.Manifest { return rt.manifest }

// TryConv2D is TryConv2DCtx with a background context (admission can
// still fail fast on a full queue; there is no deadline to wait out).
func (rt *Runtime) TryConv2D(s conv.Shape, in, filter *tensor.Tensor) (*tensor.Tensor, error) {
	return rt.TryConv2DCtx(context.Background(), s, in, filter)
}

// TryConv2DCtx runs one NCHW convolution through the full serving
// discipline: admission (Gate), memory reservation with the
// degradation ladder, and the checked context-bounded execution
// paths. Failure modes: core.ErrOverloaded (no slot before the
// deadline, queue full, or memory budget exhausted), conv.ErrDeadline
// (admitted but the grid was abandoned on expiry and no
// FallbackBudget was granted), or the usual validation sentinels. A
// nil error always comes with a correct output.
func (rt *Runtime) TryConv2DCtx(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor) (*tensor.Tensor, error) {
	release, err := rt.gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if rt.batcher != nil {
		return rt.convBatched(ctx, s, in, filter, nil, "", ClassStandard)
	}
	return rt.convAdmitted(ctx, s, in, filter, nil)
}

// Pack pre-transforms filter for shape s against the runtime's plan
// cache and charges the packed bytes to the memory budget for the
// filter's lifetime (weights live as long as the layer — the charge
// is released by ReleasePacked). It fails with core.ErrOverloaded
// when the budget cannot cover the packed copy.
func (rt *Runtime) Pack(s conv.Shape, filter *tensor.Tensor) (*core.PackedFilter, error) {
	plan, err := rt.plans.Get(s, rt.opts)
	if err != nil {
		return nil, err
	}
	pf, err := plan.TransformFilter(filter)
	if err != nil {
		return nil, err
	}
	if !rt.budget.Reserve(pf.Bytes()) {
		return nil, fmt.Errorf("%w: memory budget cannot hold %d packed-filter bytes (in use %d of %d)",
			core.ErrOverloaded, pf.Bytes(), rt.budget.InUse(), rt.budget.Limit())
	}
	return pf, nil
}

// ReleasePacked returns a Pack-time charge when a packed filter is
// retired (model unload).
func (rt *Runtime) ReleasePacked(pf *core.PackedFilter) {
	if pf != nil {
		rt.budget.Release(pf.Bytes())
	}
}

// TryConv2DPackedCtx is TryConv2DCtx consuming a Pack-built filter:
// the full and degraded rungs read the persistent blocked weights in
// place (bit-identical, zero transform time), the reference rung
// recomputes from the packed filter's KCRS source.
func (rt *Runtime) TryConv2DPackedCtx(ctx context.Context, s conv.Shape, in *tensor.Tensor, pf *core.PackedFilter) (*tensor.Tensor, error) {
	release, err := rt.gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	if rt.batcher != nil {
		return rt.convBatched(ctx, s, in, nil, pf, "", ClassStandard)
	}
	return rt.convAdmitted(ctx, s, in, nil, pf)
}

// Forward runs a network forward pass under admission control with
// the runtime's engine (whose own protections — plan/weight reuse,
// per-layer ConvBudget, backend circuit breakers — apply per layer).
func (rt *Runtime) Forward(ctx context.Context, net *nn.Network, x *tensor.Tensor) (*tensor.Tensor, error) {
	release, err := rt.gate.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	return net.TryForward(rt.engine, x)
}

// Recycle parks a dead output tensor's buffer in the activation pool
// for reuse by a later request. Only tensors returned by this
// runtime's conv entry points may be recycled, and the caller must not
// touch the tensor afterwards. (Safe for deadline-fallback results
// too: those publish through a fresh allocation, so the recycled
// buffer is never one an abandoned grid can still write.)
//
// Hazardous recycles are detected and refused rather than poisoning
// the pool: a view tensor (its Data does not own the full backing
// array — batched-inference outputs are such views) is never parked;
// recycling the same tensor twice parks its array once (the second
// call is refused instead of listing one buffer for two future
// requests); and a buffer the runtime did not itself hand out —
// engine-allocated Forward outputs, caller-built tensors — is refused
// outright, because only runtime-issued buffers carry the guard words
// the pool checks. Refusals are counted in Stats.RecycleRefused. A
// buffer whose guard words were overwritten is quarantined — counted
// in Stats.CanaryTrips, never parked.
func (rt *Runtime) Recycle(t *tensor.Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	if len(t.Data) != cap(t.Data) {
		rt.recycleRefused.Add(1)
		return
	}
	parked, tripped := rt.pool.put(t.Data)
	if !parked && !tripped {
		rt.recycleRefused.Add(1)
	}
}

// runMode is the degradation-ladder rung a request executes on.
type runMode int

const (
	modeFull      runMode = iota // analytically tiled plan, full thread grid
	modeDegraded                 // minimal tiles, single worker: tiny scratch
	modeReference                // naive loop, zero scratch beyond the output
)

// degradedOpts derives the smaller-tile plan options once: minimal
// cache tiles and a single worker shrink the scratch estimate to a
// few KiB while keeping the result bit-identical for exactly
// representable inputs (accumulation order over c, r, s is unchanged;
// see DESIGN.md). Epilogue, numerics and fallback knobs carry over.
func (rt *Runtime) degradedOpts() core.Options {
	rt.degradedOnce.Do(func() {
		o := rt.opts
		o.Threads = 1
		o.ForceTc = 4
		o.ForceTk = 1 // solver clamps to one V_k block
		o.ForceTh = 1
		rt.degraded = o
	})
	return rt.degraded
}

// admitMemory walks the reservation ladder for one request and
// returns the granted mode, the plan to execute, and the charge to
// release when done.
func (rt *Runtime) admitMemory(s conv.Shape, plan *core.Plan) (runMode, *core.Plan, int64, error) {
	outB := plan.OutputBytes()
	if need := outB + plan.ScratchBytes(); rt.budget.Reserve(need) {
		return modeFull, plan, need, nil
	}
	rt.overBudget.Add(1)
	if dplan, err := rt.plans.Get(s, rt.degradedOpts()); err == nil {
		if need := outB + dplan.ScratchBytes(); rt.budget.Reserve(need) {
			return modeDegraded, dplan, need, nil
		}
	}
	if rt.budget.Reserve(outB) {
		return modeReference, plan, outB, nil
	}
	rt.memRejected.Add(1)
	return 0, nil, 0, fmt.Errorf("%w: memory budget exhausted (need %d output bytes, in use %d of %d)",
		core.ErrOverloaded, outB, rt.budget.InUse(), rt.budget.Limit())
}

// convAdmitted executes one admitted request through the ladder.
// Exactly one of filter (KCRS weights) and pf (packed weights) is
// non-nil.
func (rt *Runtime) convAdmitted(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, pf *core.PackedFilter) (*tensor.Tensor, error) {
	plan, err := rt.plans.Get(s, rt.opts)
	if err != nil {
		return nil, err
	}
	kcrs := filter
	if pf != nil {
		kcrs = pf.Source()
	}
	// Validate operands before reserving or allocating anything, so a
	// malformed request cannot consume budget or pool entries.
	if err := conv.ValidateOperands(s, in, kcrs); err != nil {
		return nil, err
	}
	mode, xplan, charge, err := rt.admitMemory(s, plan)
	if err != nil {
		return nil, err
	}
	defer rt.budget.Release(charge)
	switch mode {
	case modeFull:
		rt.fullRuns.Add(1)
	case modeDegraded:
		rt.degRuns.Add(1)
	case modeReference:
		rt.refRuns.Add(1)
	}

	outLen := int(plan.OutputBytes() / 4)
	buf := rt.pool.get(outLen)
	if buf != nil {
		rt.poolHits.Add(1)
	} else {
		rt.freshAllocs.Add(1)
		buf = rt.pool.alloc(outLen)
	}
	out := tensor.FromSlice(buf, s.N, s.K, s.P(), s.Q())

	var execErr error
	switch {
	case mode == modeReference:
		execErr = xplan.TryExecuteReferenceCtx(ctx, in, kcrs, out)
	case pf != nil:
		execErr = xplan.TryExecutePackedCtx(ctx, in, pf, out)
	default:
		execErr = xplan.TryExecuteCtx(ctx, in, filter, out)
	}
	if execErr != nil {
		// An abandoned grid's stragglers may still write the buffer:
		// drop it to the GC, never back into the pool.
		rt.pool.forget(buf)
		return nil, execErr
	}
	if rt.pool.check(buf) {
		// The run wrote past the output window: the result cannot be
		// trusted and the buffer is quarantined. Fail typed — the
		// corruption must never reach the caller.
		return nil, fmt.Errorf("%w: output-buffer canary tripped after execution on %v", core.ErrIntegrity, s)
	}
	return out, nil
}

// Stats is a point-in-time snapshot of every serving counter.
type Stats struct {
	Gate GateStats

	// Memory accounting.
	MemInUse, MemPeak, MemLimit int64
	PoolIdleBytes               int64

	// Output-buffer sourcing (ladder rung 1 vs 2).
	PoolHits, FreshAllocs uint64

	// Execution modes (ladder rungs 2–4) and pressure events.
	FullRuns, DegradedRuns, ReferenceRuns uint64
	OverBudget                            uint64 // full-plan reservation failures
	MemRejected                           uint64 // not even the reference rung fit

	// Micro-batching (Config.BatchWindow > 0; zero otherwise).
	// BatchesExecuted counts coalesced executions of >= 2 requests;
	// BatchedRequests the requests served inside them. A window that
	// expires with a single waiter runs solo (BatchSoloFlushes), and a
	// waiter whose deadline expires while parked leaves the queue
	// (BatchExpired) to run solo or shed.
	BatchesExecuted  uint64
	BatchedRequests  uint64
	BatchSoloFlushes uint64
	BatchExpired     uint64

	// RecycleRefused counts hazardous Recycle calls that were refused
	// (view tensors, double-recycles, foreign buffers) instead of
	// poisoning the pool.
	RecycleRefused uint64

	// Silent-corruption defense (DESIGN.md §12). CanaryTrips counts
	// activation buffers quarantined for overwritten guard words;
	// SentinelProbes, KernelQuarantines and KernelRestores track the
	// background sentinel; IntegrityFailures totals every detection the
	// runtime surfaced (canary trips plus sentinel miscompares —
	// checksum failures live in Integrity, the core-layer counters).
	CanaryTrips       uint64
	IntegrityFailures uint64
	SentinelProbes    uint64
	KernelQuarantines uint64
	KernelRestores    uint64
	Integrity         core.IntegrityStats

	PlanCache core.PlanCacheStats

	// WorkerPool reports the process-wide persistent worker pool the
	// parallel runtime dispatches onto. Spawned counts grid workers
	// that could not be placed on a parked pool worker (pool saturated
	// or closed) — a steadily climbing Spawned under steady load means
	// plans are over-subscribed relative to the pool size.
	WorkerPool parallel.PoolStats
}

// Stats snapshots the runtime's counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		WorkerPool:        parallel.DefaultPool().Stats(),
		Gate:              rt.gate.Stats(),
		MemInUse:          rt.budget.InUse(),
		MemPeak:           rt.budget.Peak(),
		MemLimit:          rt.budget.Limit(),
		PoolIdleBytes:     rt.pool.idle(),
		PoolHits:          rt.poolHits.Load(),
		FreshAllocs:       rt.freshAllocs.Load(),
		FullRuns:          rt.fullRuns.Load(),
		DegradedRuns:      rt.degRuns.Load(),
		ReferenceRuns:     rt.refRuns.Load(),
		OverBudget:        rt.overBudget.Load(),
		MemRejected:       rt.memRejected.Load(),
		BatchesExecuted:   rt.batchStats.batches.Load(),
		BatchedRequests:   rt.batchStats.batchedReqs.Load(),
		BatchSoloFlushes:  rt.batchStats.soloFlushes.Load(),
		BatchExpired:      rt.batchStats.expired.Load(),
		RecycleRefused:    rt.recycleRefused.Load(),
		CanaryTrips:       rt.canaryTrips.Load(),
		IntegrityFailures: rt.integrityFailures.Load(),
		SentinelProbes:    rt.sentinelProbes.Load(),
		KernelQuarantines: rt.kernelQuarantines.Load(),
		KernelRestores:    rt.kernelRestores.Load(),
		Integrity:         core.IntegritySnapshot(),
		PlanCache:         rt.plans.Stats(),
	}
}
