package serve

// The integrity sentinel (DESIGN.md §12): a background prober that
// spends idle cycles re-proving the bit-exactness contract the fast
// paths rest on. Each tick, if and only if the runtime's admission
// gate is fully idle (nothing in flight, nothing queued — the
// sentinel never competes with a real request for a slot), one
// round-robin target is probed with a golden integer-valued input and
// compared bit-for-bit against the single-threaded reference:
//
//   - kernel-family targets: every registered dispatch family
//     (core.KernelFamilyNames) through core.VerifyKernelFamily. A
//     miscompare quarantines the family out of dispatch — entries are
//     dropped, re-registration is barred, and the dispatch generation
//     is bumped so plan caches re-key onto the generic kernel. The
//     probe keeps running while quarantined (it forces the variant
//     in-package), so the first clean probe restores the family.
//   - model targets: each registered model's fast engine against its
//     reference engine (installed by Registry.Register, removed by
//     Unregister). A miscompare quarantines the model to its
//     reference path; a clean probe restores it.
//
// The two target kinds cover different failure domains: the family
// probe exercises the dispatch kernels in isolation (cheap, fixed
// cost), the model probe exercises the whole layer stack — packed
// weights, epilogues, plan memos — end to end.

import (
	"errors"
	"sync"
	"time"

	"ndirect/internal/core"
)

// sentinelTarget is one dynamically registered probe (model targets;
// kernel families are enumerated statically).
type sentinelTarget struct {
	id    string
	idle  func() bool // extra idleness predicate (tenant gate); nil: none
	probe func()
}

type sentinel struct {
	rt       *Runtime
	interval time.Duration
	stopCh   chan struct{}
	done     chan struct{}

	mu     sync.Mutex
	models []*sentinelTarget
	cursor int
}

func newSentinel(rt *Runtime, interval time.Duration) *sentinel {
	s := &sentinel{
		rt:       rt,
		interval: interval,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *sentinel) stop() {
	select {
	case <-s.stopCh: // already stopped
	default:
		close(s.stopCh)
	}
	<-s.done
}

// addSentinelTarget registers a model probe with the runtime's
// sentinel (no-op when the sentinel is disabled). id must be unique;
// re-adding an id replaces the previous target.
func (rt *Runtime) addSentinelTarget(id string, idle func() bool, probe func()) {
	if rt.sentinel == nil {
		return
	}
	s := rt.sentinel
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range s.models {
		if t.id == id {
			s.models[i] = &sentinelTarget{id: id, idle: idle, probe: probe}
			return
		}
	}
	s.models = append(s.models, &sentinelTarget{id: id, idle: idle, probe: probe})
}

// removeSentinelTarget drops a model probe (no-op when absent or when
// the sentinel is disabled).
func (rt *Runtime) removeSentinelTarget(id string) {
	if rt.sentinel == nil {
		return
	}
	s := rt.sentinel
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, t := range s.models {
		if t.id == id {
			s.models = append(s.models[:i], s.models[i+1:]...)
			return
		}
	}
}

func (s *sentinel) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	fams := core.KernelFamilyNames()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.tick(fams)
		}
	}
}

// tick probes at most one target. The cursor advances even when the
// probe is skipped for load, so a busy runtime cycles fairly through
// its targets during whatever idle windows it does get.
func (s *sentinel) tick(fams []string) {
	if s.rt.gate.InFlight() != 0 || s.rt.gate.Queued() != 0 {
		return // a real request is (or is about to be) running: stay out of its way
	}
	s.mu.Lock()
	total := len(fams) + len(s.models)
	if total == 0 {
		s.mu.Unlock()
		return
	}
	i := s.cursor % total
	s.cursor++
	var target *sentinelTarget
	if i >= len(fams) {
		target = s.models[i-len(fams)]
	}
	s.mu.Unlock()

	if target == nil {
		s.probeKernelFamily(fams[i])
		return
	}
	if target.idle != nil && !target.idle() {
		return
	}
	s.rt.sentinelProbes.Add(1)
	target.probe()
}

// probeKernelFamily runs one family's golden probe and advances the
// quarantine machine: miscompare → quarantine (once), clean while
// quarantined → restore. Probe-infrastructure errors (planning
// failures) move nothing — only a proven miscompare is evidence.
func (s *sentinel) probeKernelFamily(name string) {
	rt := s.rt
	rt.sentinelProbes.Add(1)
	err := core.VerifyKernelFamily(name)
	switch {
	case err == nil:
		if core.KernelFamilyQuarantined(name) && core.RestoreKernelFamily(name) {
			rt.kernelRestores.Add(1)
			core.Logf("serve: sentinel: kernel family %s probes clean; restored to dispatch", name)
		}
	case errors.Is(err, core.ErrIntegrity):
		rt.integrityFailures.Add(1)
		if !core.KernelFamilyQuarantined(name) && core.QuarantineKernelFamily(name) {
			rt.kernelQuarantines.Add(1)
			core.Logf("serve: sentinel: kernel family %s miscomputes its golden probe; quarantined out of dispatch: %v",
				name, err)
		}
	}
}
