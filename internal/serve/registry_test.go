package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// tinyNet builds a one-conv network with integer-valued weights (so
// every execution strategy — packed, unpacked, reference — produces
// bit-identical outputs). withPool appends a parallel pooling layer,
// which is where injected worker panics surface as typed errors.
func tinyNet(seed uint64, withPool bool) *nn.Network {
	s := testShape
	w := s.NewFilter()
	fillInts(w, seed)
	layers := []nn.Layer{
		&nn.ConvUnit{LayerName: "c1", Shape: s, Weights: w, ReLU: true},
	}
	if withPool {
		layers = append(layers, &nn.MaxPool{K: 2, Str: 2})
	}
	return &nn.Network{Name: "tiny", Layers: layers}
}

func baseline(t *testing.T, net *nn.Network, x *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	want, err := net.TryForward(&nn.Engine{Algo: nn.AlgoNDirect, Threads: 2}, x)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestRegistryMultiTenantBitExactAndBudgetBaseline: two tenants serve
// isolated models through one registry; outputs are bit-exact, packed
// weights are charged to the shared weight budget while resident, and
// unregistering returns the budget to its baseline. Tenants cannot
// reach each other's models.
func TestRegistryMultiTenantBitExactAndBudgetBaseline(t *testing.T) {
	r := NewRegistry(RegistryConfig{
		Runtime: New(Config{}),
		Tenants: map[string]TenantConfig{
			"alice": {Class: ClassPremium, MaxOutstanding: 8},
			"bob":   {Class: ClassStandard, MaxOutstanding: 8},
		},
	})
	netA, netB := tinyNet(10, false), tinyNet(20, false)
	x := testShape.NewInput()
	fillInts(x, 30)
	wantA, wantB := baseline(t, netA, x), baseline(t, netB, x)

	if err := r.Register("alice", "m", netA); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("bob", "m", netB); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("alice", "m", netA); !errors.Is(err, ErrModelExists) {
		t.Fatalf("duplicate register: want ErrModelExists, got %v", err)
	}

	for i := 0; i < 3; i++ {
		gotA, err := r.Infer(context.Background(), "alice", "m", x)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := r.Infer(context.Background(), "bob", "m", x)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(wantA, gotA); d != 0 {
			t.Fatalf("iter %d: alice's output differs by %g", i, d)
		}
		if d := tensor.MaxAbsDiff(wantB, gotB); d != 0 {
			t.Fatalf("iter %d: bob's output differs by %g", i, d)
		}
	}

	if got := r.ResidentBytes("alice", "m"); got <= 0 {
		t.Fatalf("alice's packed weights not resident (%d bytes)", got)
	}
	if inUse := r.WeightBudget().InUse(); inUse != r.ResidentBytes("alice", "m")+r.ResidentBytes("bob", "m") {
		t.Fatalf("weight budget (%d) != sum of resident bytes", inUse)
	}

	// Isolation: a tenant cannot see (or even distinguish) another
	// tenant's model.
	if _, err := r.Infer(context.Background(), "alice", "bobs-model", x); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: want ErrUnknownModel, got %v", err)
	}

	if err := r.Unregister("alice", "m"); err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister("bob", "m"); err != nil {
		t.Fatal(err)
	}
	if inUse := r.WeightBudget().InUse(); inUse != 0 {
		t.Fatalf("weight budget %d after unregistering everything, want 0 (baseline)", inUse)
	}
	if _, err := r.Infer(context.Background(), "alice", "m", x); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("infer after unregister: want ErrUnknownModel, got %v", err)
	}
}

// TestRegistryWeightLRUEvictionRepacksBitExact: with a weight budget
// sized for one model, serving a second model evicts the first's
// residency (LRU), and the first re-packs bit-identically when its
// traffic returns — the budget ceiling is never exceeded.
func TestRegistryWeightLRUEvictionRepacksBitExact(t *testing.T) {
	// Learn one model's packed footprint with an unbounded registry.
	probe := NewRegistry(RegistryConfig{Runtime: New(Config{})})
	netP := tinyNet(1, false)
	x := testShape.NewInput()
	fillInts(x, 5)
	if err := probe.Register("t", "m", netP); err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Infer(context.Background(), "t", "m", x); err != nil {
		t.Fatal(err)
	}
	perModel := probe.WeightBudget().InUse()
	if perModel <= 0 {
		t.Fatal("probe model never became resident")
	}

	r := NewRegistry(RegistryConfig{Runtime: New(Config{}), WeightLimitBytes: perModel})
	net1, net2 := tinyNet(11, false), tinyNet(22, false)
	want1, want2 := baseline(t, net1, x), baseline(t, net2, x)
	if err := r.Register("t", "m1", net1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("t", "m2", net2); err != nil {
		t.Fatal(err)
	}

	got1, err := r.Infer(context.Background(), "t", "m1", x)
	if err != nil {
		t.Fatal(err)
	}
	if r.ResidentBytes("t", "m1") != perModel {
		t.Fatalf("m1 resident %d, want %d", r.ResidentBytes("t", "m1"), perModel)
	}
	got2, err := r.Infer(context.Background(), "t", "m2", x)
	if err != nil {
		t.Fatal(err)
	}
	// m2's admission had to evict m1 (the LRU victim).
	if r.ResidentBytes("t", "m1") != 0 {
		t.Fatalf("m1 still resident (%d bytes) after m2 displaced it", r.ResidentBytes("t", "m1"))
	}
	if r.ResidentBytes("t", "m2") != perModel {
		t.Fatalf("m2 resident %d, want %d", r.ResidentBytes("t", "m2"), perModel)
	}
	if st := r.Stats(); st.Evictions == 0 {
		t.Fatalf("no eviction recorded: %+v", st)
	}
	if inUse := r.WeightBudget().InUse(); inUse > perModel {
		t.Fatalf("weight budget exceeded: %d > %d", inUse, perModel)
	}

	// m1's traffic returns: it re-packs (evicting m2) bit-identically.
	got1b, err := r.Infer(context.Background(), "t", "m1", x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want1, got1); d != 0 {
		t.Fatalf("m1 first run differs by %g", d)
	}
	if d := tensor.MaxAbsDiff(want2, got2); d != 0 {
		t.Fatalf("m2 run differs by %g", d)
	}
	if d := tensor.MaxAbsDiff(want1, got1b); d != 0 {
		t.Fatalf("m1 post-eviction re-pack differs by %g (want bit-identical)", d)
	}
	if r.WeightBudget().Peak() > perModel {
		t.Fatalf("weight peak %d exceeded the %d ceiling", r.WeightBudget().Peak(), perModel)
	}
}

// TestRegistryForcedEvictionMidTraffic: the weight-evict fault point
// evicts the model's residency at the top of every Infer; each request
// then re-packs from the KCRS source, and every output must stay
// bit-identical while the accounting churns charge/release pairs.
func TestRegistryForcedEvictionMidTraffic(t *testing.T) {
	defer faultinject.Reset()
	r := NewRegistry(RegistryConfig{Runtime: New(Config{})})
	net := tinyNet(7, false)
	x := testShape.NewInput()
	fillInts(x, 8)
	want := baseline(t, net, x)
	if err := r.Register("t", "m", net); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Infer(context.Background(), "t", "m", x); err != nil {
		t.Fatal(err)
	}
	resident := r.ResidentBytes("t", "m")

	faultinject.ArmN(faultinject.WeightEvict, -1, -1)
	for i := 0; i < 5; i++ {
		got, err := r.Infer(context.Background(), "t", "m", x)
		if err != nil {
			t.Fatalf("infer %d under eviction storm: %v", i, err)
		}
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("infer %d under eviction storm differs by %g (want bit-identical)", i, d)
		}
	}
	faultinject.Reset()
	st := r.Stats()
	if st.ForcedEvictions < 5 {
		t.Fatalf("forced evictions = %d, want >= 5", st.ForcedEvictions)
	}
	// Accounting is consistent after the storm: in-use equals resident.
	if inUse := r.WeightBudget().InUse(); inUse != r.ResidentBytes("t", "m") {
		t.Fatalf("weight budget (%d) != resident bytes (%d) after storm", inUse, r.ResidentBytes("t", "m"))
	}
	if resident > 0 && r.WeightBudget().Peak() < resident {
		t.Fatalf("peak %d below one resident footprint %d", r.WeightBudget().Peak(), resident)
	}
}

// TestRegistryQuarantineIsolatesFaultingModel: a model whose traffic
// keeps surfacing execution faults is degraded to the reference path
// after the threshold; its neighbour tenants stay on the fast path and
// bit-exact throughout; after the cooldown one probe restores the
// model.
func TestRegistryQuarantineIsolatesFaultingModel(t *testing.T) {
	defer faultinject.Reset()
	r := NewRegistry(RegistryConfig{
		Runtime:             New(Config{}),
		QuarantineThreshold: 2,
		QuarantineCooldown:  50 * time.Millisecond,
	})
	evil := tinyNet(40, true) // pooling layer: where worker panics surface
	good := tinyNet(50, false)
	x := testShape.NewInput()
	fillInts(x, 60)
	wantEvil, wantGood := baseline(t, evil, x), baseline(t, good, x)
	if err := r.Register("evil", "m", evil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("good", "m", good); err != nil {
		t.Fatal(err)
	}

	// Two consecutive surfaced faults trip the quarantine.
	faultinject.ArmN(faultinject.WorkerPanic, -1, -1)
	for i := 0; i < 2; i++ {
		if _, err := r.Infer(context.Background(), "evil", "m", x); !errors.Is(err, parallel.ErrWorkerPanic) {
			t.Fatalf("fault %d: want ErrWorkerPanic, got %v", i, err)
		}
	}
	faultinject.Reset()
	if !r.Quarantined("evil", "m") {
		t.Fatal("model not quarantined after threshold faults")
	}

	// Quarantined traffic serves on the reference path — and is still
	// bit-exact for integer tensors.
	got, err := r.Infer(context.Background(), "evil", "m", x)
	if err != nil {
		t.Fatalf("quarantined infer: %v", err)
	}
	if d := tensor.MaxAbsDiff(wantEvil, got); d != 0 {
		t.Fatalf("quarantined (reference) output differs by %g (want bit-identical)", d)
	}
	if st := r.Stats(); st.ReferenceInfers == 0 || st.Quarantines != 1 || st.QuarantinedNow != 1 {
		t.Fatalf("quarantine counters off: %+v", st)
	}

	// The neighbour is untouched: fast path, bit-exact, no quarantine.
	gotGood, err := r.Infer(context.Background(), "good", "m", x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(wantGood, gotGood); d != 0 {
		t.Fatalf("healthy tenant's output differs by %g", d)
	}
	if r.Quarantined("good", "m") {
		t.Fatal("healthy model quarantined by a neighbour's faults")
	}

	// Cooldown elapses: the next request probes the fast path and, with
	// the faults gone, restores the model.
	time.Sleep(60 * time.Millisecond)
	got2, err := r.Infer(context.Background(), "evil", "m", x)
	if err != nil {
		t.Fatalf("probe infer: %v", err)
	}
	if d := tensor.MaxAbsDiff(wantEvil, got2); d != 0 {
		t.Fatalf("probe output differs by %g", d)
	}
	if r.Quarantined("evil", "m") {
		t.Fatal("model still quarantined after a clean probe")
	}
	if st := r.Stats(); st.Restores != 1 {
		t.Fatalf("restores = %d, want 1", st.Restores)
	}
}

// TestRegistryConcurrentChurnRace is the -race target for the shared
// caches: concurrent Infer traffic across tenants, forced evictions,
// Pack/ReleasePacked churn on the shared runtime, and a tenant
// register/unregister loop with requests in flight. Every request must
// finish bit-exact or fail with a typed sentinel, and after the drain
// the weight budget must return to baseline (zero).
func TestRegistryConcurrentChurnRace(t *testing.T) {
	r := NewRegistry(RegistryConfig{
		Runtime:          New(Config{MaxInFlight: 4}),
		MaxInFlight:      4,
		MaxQueue:         8,
		WeightLimitBytes: 1 << 20,
		Tenants: map[string]TenantConfig{
			"t0": {Class: ClassPremium, MaxOutstanding: 6},
			"t1": {Class: ClassStandard, MaxOutstanding: 6},
			"t2": {Class: ClassBatch, MaxOutstanding: 6},
		},
	})
	x := testShape.NewInput()
	fillInts(x, 77)
	tenants := []string{"t0", "t1", "t2"}
	nets := map[string]*nn.Network{}
	wants := map[string]*tensor.Tensor{}
	for i, tn := range tenants {
		nets[tn] = tinyNet(uint64(100+i), false)
		wants[tn] = baseline(t, nets[tn], x)
		if err := r.Register(tn, "m", nets[tn]); err != nil {
			t.Fatal(err)
		}
	}

	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tn := tenants[(g+i)%len(tenants)]
				out, err := r.Infer(context.Background(), tn, "m", x)
				if err != nil {
					if !errors.Is(err, core.ErrOverloaded) && !errors.Is(err, ErrUnknownModel) {
						t.Errorf("untyped infer error: %v", err)
						return
					}
					continue
				}
				if d := tensor.MaxAbsDiff(wants[tn], out); d != 0 {
					t.Errorf("tenant %s output corrupted: differs by %g", tn, d)
					return
				}
			}
		}(g)
	}
	// Eviction storm: force t0's residency out from under its traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if e, err := r.lookup("t0", "m"); err == nil {
				r.evictModel(e)
			}
		}
	}()
	// Pack/ReleasePacked churn on the shared runtime plan cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		filter := testShape.NewFilter()
		fillInts(filter, 88)
		for i := 0; i < iters; i++ {
			pf, err := r.Runtime().Pack(testShape, filter)
			if err != nil {
				if !errors.Is(err, core.ErrOverloaded) {
					t.Errorf("pack: %v", err)
					return
				}
				continue
			}
			r.Runtime().ReleasePacked(pf)
		}
	}()
	// Register/unregister churn with requests in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if err := r.Unregister("t2", "m"); err != nil {
				t.Errorf("unregister: %v", err)
				return
			}
			if err := r.Register("t2", "m", nets["t2"]); err != nil {
				t.Errorf("re-register: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	for _, tn := range tenants {
		if err := r.Unregister(tn, "m"); err != nil {
			t.Fatal(err)
		}
	}
	if inUse := r.WeightBudget().InUse(); inUse != 0 {
		t.Fatalf("weight budget %d after full drain + unregister, want 0", inUse)
	}
	if st := r.Stats(); st.Models != 0 || st.Gate.InFlight != 0 || st.Gate.Queued != 0 {
		t.Fatalf("registry not drained: %+v", st)
	}
}
