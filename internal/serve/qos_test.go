package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndirect/internal/core"
)

// waitQueued polls until the gate reports want queued waiters (the
// only nondeterminism in these tests is goroutine startup).
func waitQueued(t *testing.T, g *TenantGate, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Queued != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", want, g.Stats().Queued)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantGateShedOrdering: the graduated queue shares must shed the
// lowest class strictly first — at every occupancy, a class rejecting
// implies every lower class also rejects, and premium only rejects
// when the whole queue is full.
func TestTenantGateShedOrdering(t *testing.T) {
	g := NewTenantGate(1, 6) // shares: batch 2, standard 4, premium 6
	hold, err := g.Acquire(context.Background(), "holder", ClassStandard, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	park := func(n int, class QoSClass) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rel, err := g.Acquire(context.Background(), "filler", class, 0)
				if err != nil {
					t.Errorf("filler acquire: %v", err)
					return
				}
				rel() // chain the slot to the next waiter
			}()
		}
	}

	park(2, ClassPremium)
	waitQueued(t, g, 2)
	// Occupancy 2 = batch's whole share: batch sheds, standard does not.
	if _, err := g.Acquire(context.Background(), "t", ClassBatch, 0); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("batch at occupancy 2: want ErrOverloaded, got %v", err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Acquire(expired, "t", ClassStandard, 0); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("standard should queue (then expire late), got %v", err)
	}
	st := g.Stats()
	if st.ShedFull[ClassBatch] != 1 || st.ShedFull[ClassStandard] != 0 {
		t.Fatalf("shed-full counters: batch=%d standard=%d, want 1/0", st.ShedFull[ClassBatch], st.ShedFull[ClassStandard])
	}
	if st.ShedLate[ClassStandard] != 1 {
		t.Fatalf("standard expiry must count shed-late, got %d", st.ShedLate[ClassStandard])
	}

	park(2, ClassPremium)
	waitQueued(t, g, 4)
	// Occupancy 4 = standard's share: standard sheds, premium does not.
	if _, err := g.Acquire(context.Background(), "t", ClassStandard, 0); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("standard at occupancy 4: want ErrOverloaded, got %v", err)
	}
	park(2, ClassPremium)
	waitQueued(t, g, 6)
	// Queue full: even premium sheds — and by construction every lower
	// class was already shedding at this occupancy.
	if _, err := g.Acquire(context.Background(), "t", ClassPremium, 0); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("premium at full queue: want ErrOverloaded, got %v", err)
	}
	st = g.Stats()
	for c := 0; c < NumQoSClasses-1; c++ {
		if st.ShedFull[c+1] > 0 && st.ShedFull[c] == 0 {
			t.Fatalf("class %d shed before class %d", c+1, c)
		}
	}

	hold() // drain: the chain releases every parked filler
	wg.Wait()
	st = g.Stats()
	if st.InFlight != 0 || st.Queued != 0 || st.Tenants != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestTenantGateWRRInterleave: freed slots must be granted in the
// smooth-WRR order — with one batch, two standard and four premium
// waiters queued, the grant sequence is exactly
// premium, standard, premium, batch, premium, standard, premium.
func TestTenantGateWRRInterleave(t *testing.T) {
	g := NewTenantGate(1, 100)
	hold, err := g.Acquire(context.Background(), "holder", ClassStandard, 0)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []QoSClass
	var wg sync.WaitGroup
	enqueue := func(class QoSClass) {
		wg.Add(1)
		ready := g.Stats().Queued + 1
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(context.Background(), "t", class, 0)
			if err != nil {
				t.Errorf("acquire %v: %v", class, err)
				return
			}
			mu.Lock()
			order = append(order, class)
			mu.Unlock()
			rel()
		}()
		waitQueued(t, g, ready)
	}
	enqueue(ClassBatch)
	enqueue(ClassStandard)
	enqueue(ClassStandard)
	for i := 0; i < 4; i++ {
		enqueue(ClassPremium)
	}

	hold()
	wg.Wait()
	want := []QoSClass{ClassPremium, ClassStandard, ClassPremium, ClassBatch, ClassPremium, ClassStandard, ClassPremium}
	if len(order) != len(want) {
		t.Fatalf("granted %d waiters, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestTenantGatePerTenantCap: a tenant at its outstanding cap is
// rejected typed while other tenants keep being admitted, and the cap
// frees as the tenant's requests finish.
func TestTenantGatePerTenantCap(t *testing.T) {
	g := NewTenantGate(4, 4)
	r1, err := g.Acquire(context.Background(), "a", ClassStandard, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background(), "a", ClassStandard, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background(), "a", ClassPremium, 2); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("tenant a past cap: want ErrOverloaded, got %v", err)
	}
	if _, err := g.Acquire(context.Background(), "b", ClassStandard, 2); err != nil {
		t.Fatalf("tenant b must be unaffected by a's cap: %v", err)
	}
	if g.Outstanding("a") != 2 || g.Outstanding("b") != 1 {
		t.Fatalf("outstanding a=%d b=%d, want 2/1", g.Outstanding("a"), g.Outstanding("b"))
	}
	r1()
	if _, err := g.Acquire(context.Background(), "a", ClassStandard, 2); err != nil {
		t.Fatalf("tenant a after release: %v", err)
	}
	if g.Stats().TenantCapRejs != 1 {
		t.Fatalf("cap rejections = %d, want 1", g.Stats().TenantCapRejs)
	}
}

// TestTenantGateDeadlineWhileQueued: a queued request whose context
// expires leaves the queue immediately with a typed rejection carrying
// the context's cause, and its bookkeeping (queue slot, tenant
// outstanding) is fully undone.
func TestTenantGateDeadlineWhileQueued(t *testing.T) {
	g := NewTenantGate(1, 4)
	hold, err := g.Acquire(context.Background(), "holder", ClassStandard, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = g.Acquire(ctx, "late", ClassPremium, 0)
	if !errors.Is(err, core.ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrOverloaded wrapping DeadlineExceeded, got %v", err)
	}
	st := g.Stats()
	if st.Queued != 0 || g.Outstanding("late") != 0 {
		t.Fatalf("late waiter left residue: queued=%d outstanding=%d", st.Queued, g.Outstanding("late"))
	}
	if st.ShedLate[ClassPremium] != 1 {
		t.Fatalf("shed-late = %d, want 1", st.ShedLate[ClassPremium])
	}
	hold()
	if g.Stats().InFlight != 0 {
		t.Fatal("slot not retired")
	}
}
