package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ndirect/internal/core"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestGateAdmitsExactlyInFlightPlusQueue is the ISSUE acceptance load
// test: with in-flight limit F, queue Q and F+Q+k concurrent callers,
// exactly F+Q are admitted (F running, Q queued) and the k extras fail
// fast with core.ErrOverloaded long before their deadline, with the
// goroutine count bounded by the queue — no pile-up.
func TestGateAdmitsExactlyInFlightPlusQueue(t *testing.T) {
	const F, Q, k = 4, 3, 5
	g := NewGate(F, Q)

	// Occupy every execution slot.
	holders := make([]func(), F)
	for i := range holders {
		rel, err := g.Acquire(context.Background())
		if err != nil {
			t.Fatalf("holder %d: %v", i, err)
		}
		holders[i] = rel
	}

	baseGoroutines := runtime.NumGoroutine()

	// Offer Q+k more with a deadline far beyond the test's own budget:
	// a rejection at the deadline instead of fail-fast would hang the
	// waitUntil below.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var admitted, rejected atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < Q+k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Acquire(ctx)
			if err != nil {
				if !errors.Is(err, core.ErrOverloaded) {
					t.Errorf("rejection is %v, want errors.Is(err, core.ErrOverloaded)", err)
				}
				rejected.Add(1)
				return
			}
			admitted.Add(1)
			rel()
		}()
	}

	// All k extras must be rejected while the F holders still hold —
	// fail fast, not at the deadline — with exactly Q left waiting.
	waitUntil(t, "k fast rejections", func() bool { return rejected.Load() == k })
	waitUntil(t, "Q queued waiters", func() bool { return g.Queued() == Q })
	if got := g.InFlight(); got != F {
		t.Fatalf("InFlight = %d, want %d", got, F)
	}
	// Bounded resident set: the k rejected callers have exited; only
	// the Q waiters (plus test scaffolding slack) remain.
	if got := runtime.NumGoroutine(); got > baseGoroutines+Q+k/2 {
		t.Fatalf("goroutines grew to %d from %d; queue is not bounding the pile-up", got, baseGoroutines)
	}

	for _, rel := range holders {
		rel()
	}
	wg.Wait()

	if a, r := admitted.Load(), rejected.Load(); a != Q || r != k {
		t.Fatalf("admitted %d rejected %d of the burst, want %d and %d", a, r, Q, k)
	}
	st := g.Stats()
	if st.Admitted != F+Q || st.Waited != Q || st.RejectedFull != k || st.RejectedLate != 0 {
		t.Fatalf("stats = %+v, want Admitted=%d Waited=%d RejectedFull=%d RejectedLate=0", st, F+Q, Q, k)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gate not drained: %+v", st)
	}
}

// TestGateDeadlineWhileQueued: queued waiters whose context expires
// before a slot frees leave with ErrOverloaded wrapping the context
// cause, and the queue drains.
func TestGateDeadlineWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = g.Acquire(ctx)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, core.ErrOverloaded) {
			t.Fatalf("waiter %d: err = %v, want ErrOverloaded", i, err)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("waiter %d: err = %v, want the context cause in the chain", i, err)
		}
	}
	if q := g.Queued(); q != 0 {
		t.Fatalf("Queued = %d after expiry, want 0", q)
	}
	if st := g.Stats(); st.RejectedLate != 4 {
		t.Fatalf("RejectedLate = %d, want 4", st.RejectedLate)
	}
}

// TestGateReleaseIdempotent: calling release twice must not free two
// slots (which would over-admit forever after).
func TestGateReleaseIdempotent(t *testing.T) {
	g := NewGate(1, 0)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	rel() // second call must be a no-op
	if got := g.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after double release, want 0", got)
	}
	// The single slot must still behave as a single slot.
	rel2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("second acquire = %v, want ErrOverloaded (queue 0)", err)
	}
	rel2()
}

// TestGateClamps: degenerate configurations stay usable.
func TestGateClamps(t *testing.T) {
	g := NewGate(0, -1) // clamped to 1 slot, 0 queue
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("clamped gate refused first caller: %v", err)
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("want immediate overload with zero queue, got %v", err)
	}
	rel()
}
