package serve

import (
	"context"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/tensor"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A recycled buffer whose guard words were overwritten must be
// quarantined — counted in CanaryTrips, never parked for a future
// request — while an intact recycle still round-trips.
func TestRecycleQuarantinesTrippedCanary(t *testing.T) {
	rt := New(Config{})
	in, filter, _ := testOperands(testShape)
	out, err := rt.TryConv2D(testShape, in, filter)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the tail guard the way an out-of-bounds store would
	// (white box: the outstanding index maps the user view to the full
	// guarded array).
	rt.pool.mu.Lock()
	full := rt.pool.outstanding[&out.Data[0]]
	rt.pool.mu.Unlock()
	if full == nil {
		t.Fatal("runtime output not tracked in the outstanding index")
	}
	full[len(full)-1] = 42

	rt.Recycle(out)
	st := rt.Stats()
	if st.CanaryTrips != 1 || st.IntegrityFailures != 1 {
		t.Fatalf("CanaryTrips = %d IntegrityFailures = %d, want 1 and 1", st.CanaryTrips, st.IntegrityFailures)
	}
	if st.RecycleRefused != 0 {
		t.Fatalf("RecycleRefused = %d: a trip is a quarantine, not a refusal", st.RecycleRefused)
	}
	if st.PoolIdleBytes != 0 {
		t.Fatal("tripped buffer was parked")
	}
	if buf := rt.pool.get(len(out.Data)); buf != nil {
		t.Fatal("tripped buffer came back out of the pool")
	}
}

// A buffer the runtime never issued carries no guard words: Recycle
// must refuse it (it can never be safely pooled) rather than trusting
// the caller.
func TestRecycleRefusesForeignBuffer(t *testing.T) {
	rt := New(Config{})
	rt.Recycle(tensor.New(4, 4))
	if st := rt.Stats(); st.RecycleRefused != 1 || st.PoolIdleBytes != 0 {
		t.Fatalf("foreign recycle: RecycleRefused = %d PoolIdleBytes = %d, want 1 and 0",
			st.RecycleRefused, st.PoolIdleBytes)
	}
}

// check must quarantine a checked-out buffer whose guards are gone
// (the convAdmitted post-run path), and a parked array corrupted while
// idle must be caught at get instead of being handed to a request.
func TestBufferPoolCheckAndGetCatchTrips(t *testing.T) {
	trips := 0
	bp := newBufferPool(1<<20, func() { trips++ })

	buf := bp.alloc(6)
	bp.mu.Lock()
	full := bp.outstanding[&buf[0]]
	bp.mu.Unlock()
	full[0] = 1 // head guard
	if !bp.check(buf) {
		t.Fatal("check missed an overwritten head guard")
	}
	if trips != 1 {
		t.Fatalf("trips = %d after check, want 1", trips)
	}
	if parked, _ := bp.put(buf); parked {
		t.Fatal("quarantined buffer was parked on a later put")
	}

	// Corrupt a parked array while idle.
	buf2 := bp.alloc(6)
	if parked, _ := bp.put(buf2); !parked {
		t.Fatal("clean put refused")
	}
	bp.mu.Lock()
	bp.bySize[6][0][0] = 7
	bp.mu.Unlock()
	if got := bp.get(6); got != nil {
		t.Fatal("get handed out a buffer with overwritten guards")
	}
	if trips != 2 {
		t.Fatalf("trips = %d after poisoned get, want 2", trips)
	}
}

// The sentinel must detect an injected kernel miscompute on its golden
// probe, quarantine the family out of dispatch, and restore it on the
// first clean probe once the fault clears — all without an operator in
// the loop.
func TestSentinelQuarantinesAndRestoresKernelFamily(t *testing.T) {
	defer faultinject.Reset()
	rt := New(Config{SentinelInterval: time.Millisecond})
	defer rt.Close()
	defer func() {
		// Belt and braces: never leak a quarantined family into other
		// tests, whatever this test's outcome.
		for _, name := range core.KernelFamilyNames() {
			core.RestoreKernelFamily(name)
		}
	}()

	faultinject.ArmN(faultinject.KernelMiscompute, -1, -1)
	waitFor(t, 10*time.Second, "a sentinel kernel quarantine", func() bool {
		return rt.Stats().KernelQuarantines >= 1
	})
	st := rt.Stats()
	if st.SentinelProbes == 0 || st.IntegrityFailures == 0 {
		t.Fatalf("SentinelProbes = %d IntegrityFailures = %d, want both > 0", st.SentinelProbes, st.IntegrityFailures)
	}
	if core.KernelDispatchStats().Quarantined == 0 {
		t.Fatal("runtime counted a quarantine the dispatch registry does not show")
	}

	faultinject.Reset()
	waitFor(t, 10*time.Second, "sentinel restores after the fault cleared", func() bool {
		s := rt.Stats()
		return s.KernelRestores >= s.KernelQuarantines && core.KernelDispatchStats().Quarantined == 0
	})
}

// The sentinel's model probe: a clean model keeps its fast path; a
// sentinel-quarantined model serves typed-correct results on the
// reference path (even with the fault-driven quarantine ladder
// disabled) and is restored by the next clean probe.
func TestSentinelModelQuarantineAndRestore(t *testing.T) {
	rt := New(Config{SentinelInterval: time.Millisecond})
	defer rt.Close()
	reg := NewRegistry(RegistryConfig{Runtime: rt})

	s := conv.Shape{N: 1, C: 4, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}
	w := s.NewFilter()
	fillInts(w, 9)
	net := &nn.Network{Name: "sentinel", Layers: []nn.Layer{
		&nn.ConvUnit{LayerName: "c1", Shape: s, Weights: w, ReLU: true},
	}}
	if err := reg.Register("acme", "m", net); err != nil {
		t.Fatal(err)
	}
	defer reg.Unregister("acme", "m")

	x := tensor.New(1, 4, 8, 8)
	fillInts(x, 10)
	want, err := reg.Infer(context.Background(), "acme", "m", x)
	if err != nil {
		t.Fatal(err)
	}

	// Clean model: probes run, nothing quarantines.
	waitFor(t, 10*time.Second, "a sentinel model probe", func() bool {
		return rt.Stats().SentinelProbes >= 6 // a full round-robin lap covers the model target
	})
	if reg.Quarantined("acme", "m") {
		t.Fatal("clean model was quarantined")
	}

	// Force the mismatch verdict through the testable seam (silent
	// fast-path corruption cannot be manufactured from outside — every
	// injectable fault is already caught by an inner layer).
	e, err := reg.lookup("acme", "m")
	if err != nil {
		t.Fatal(err)
	}
	reg.settleModelProbe(e, true)
	if !reg.Quarantined("acme", "m") {
		t.Fatal("mismatch verdict did not quarantine the model")
	}
	if got := rt.Stats().IntegrityFailures; got == 0 {
		t.Fatal("model quarantine not counted as an integrity failure")
	}

	// Quarantined + quarThreshold 0: requests serve on the reference
	// path, still bit-exact.
	preRef := reg.Stats().ReferenceInfers
	out, err := reg.Infer(context.Background(), "acme", "m", x)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(out, want); d != 0 {
		t.Fatalf("reference-path result differs by %g, want bit-exact", d)
	}
	if got := reg.Stats().ReferenceInfers; got <= preRef {
		t.Fatalf("ReferenceInfers = %d, want > %d (quarantined model must serve on the reference path)", got, preRef)
	}

	// The model is healthy, so the sentinel's next clean probe restores
	// the fast path.
	waitFor(t, 10*time.Second, "sentinel restores the model", func() bool {
		return !reg.Quarantined("acme", "m")
	})
	if reg.Stats().Restores == 0 {
		t.Fatal("restore not counted")
	}
}
