package serve

import (
	"math"
	"sync"
	"sync/atomic"
)

// Budget is the global byte accountant: every in-flight request
// reserves the memory its execution mode needs (output tensor plus
// plan scratch; packed filters are charged for their lifetime at Pack
// time) and releases it when done. Reserve is a CAS loop, so admission
// under concurrency never overshoots the ceiling; a limit of 0 means
// "account but never refuse" — the counters still drive the stats and
// the soak harness's return-to-baseline invariant.
type Budget struct {
	limit int64 // bytes; <= 0 means unlimited
	inUse atomic.Int64
	peak  atomic.Int64
}

// NewBudget builds a budget with the given byte ceiling (<= 0:
// unlimited, accounting only).
func NewBudget(limitBytes int64) *Budget {
	return &Budget{limit: limitBytes}
}

// Reserve charges n bytes against the ceiling, reporting false (and
// charging nothing) when the charge would exceed it. n <= 0 is a
// no-op that always succeeds.
func (b *Budget) Reserve(n int64) bool {
	if n <= 0 {
		return true
	}
	for {
		cur := b.inUse.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			return false
		}
		if b.inUse.CompareAndSwap(cur, next) {
			for {
				p := b.peak.Load()
				if next <= p || b.peak.CompareAndSwap(p, next) {
					return true
				}
			}
		}
	}
}

// Release returns n previously reserved bytes.
func (b *Budget) Release(n int64) {
	if n > 0 {
		b.inUse.Add(-n)
	}
}

// InUse returns the currently reserved bytes — the value the chaos
// soak compares against its pre-run baseline.
func (b *Budget) InUse() int64 { return b.inUse.Load() }

// Peak returns the high-water mark of reserved bytes.
func (b *Budget) Peak() int64 { return b.peak.Load() }

// Limit returns the configured ceiling (<= 0: unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Activation-pool guard words (DESIGN.md §12): every buffer the pool
// hands out is a window into a slightly larger backing array whose
// first and last poolCanaryWords elements are stamped with a bit
// pattern no convolution computes. The guards are re-checked whenever
// the buffer crosses an ownership boundary — after a run completes,
// when it is recycled, and again when it leaves the free list — so an
// out-of-bounds store (an assembly kernel bug, a stray straggler from
// an abandoned grid, a hardware fault) is caught before the buffer is
// ever handed to another request. In pure Go an overrun past a slice
// length panics before it reaches a guard; the canaries exist for the
// injected drills and for future bounds-check-free kernels.
const (
	poolCanaryBits  = 0xDEADBEEF // not NaN/Inf: survives numeric scans untouched
	poolCanaryWords = 4
)

// maxOutstanding bounds the outstanding index (checked-out buffer →
// backing array). When a caller drops an output without recycling it,
// its entry would otherwise pin the backing array forever; at the cap
// an arbitrary entry is evicted instead — that buffer merely becomes
// un-recyclable (refused at put), never unsafe.
const maxOutstanding = 4096

func poolCanary() float32 { return math.Float32frombits(poolCanaryBits) }

// bufferPool is the activation pool: a bounded free list of guarded
// output buffers keyed by exact element count. Unlike sync.Pool it is
// fully deterministic (no GC-driven drops), which the
// return-to-baseline invariant needs; idle bytes are bounded by
// maxIdleBytes and tracked in the runtime stats, and are deliberately
// NOT charged against the Budget — the budget bounds what in-flight
// requests are using, while the pool holds memory no request owns
// (see DESIGN.md). onTrip is invoked (outside bp.mu is NOT guaranteed;
// it must be lock-free) once per buffer whose guards are found
// overwritten; such buffers are quarantined — forgotten, never parked.
type bufferPool struct {
	mu           sync.Mutex
	bySize       map[int][][]float32    // full guarded arrays, keyed by user length
	outstanding  map[*float32][]float32 // checked-out user-view base → full array
	idleBytes    int64
	maxIdleBytes int64
	onTrip       func()
}

func newBufferPool(maxIdleBytes int64, onTrip func()) *bufferPool {
	if onTrip == nil {
		onTrip = func() {}
	}
	return &bufferPool{
		bySize:       make(map[int][][]float32),
		outstanding:  make(map[*float32][]float32),
		maxIdleBytes: maxIdleBytes,
		onTrip:       onTrip,
	}
}

// view slices the n-element user window out of a guarded array. The
// view's cap equals its len, so user code cannot reach the tail guard
// even with a full-cap reslice.
func poolView(full []float32, n int) []float32 {
	return full[poolCanaryWords : poolCanaryWords+n : poolCanaryWords+n]
}

// guardsIntact reports whether both guard bands of a full array still
// hold their stamp.
func guardsIntact(full []float32) bool {
	n := len(full)
	for i := 0; i < poolCanaryWords; i++ {
		if math.Float32bits(full[i]) != poolCanaryBits ||
			math.Float32bits(full[n-1-i]) != poolCanaryBits {
			return false
		}
	}
	return true
}

// track records a checked-out buffer, evicting an arbitrary stale
// entry at the cap. Caller holds bp.mu.
func (bp *bufferPool) trackLocked(base *float32, full []float32) {
	if len(bp.outstanding) >= maxOutstanding {
		for k := range bp.outstanding {
			delete(bp.outstanding, k)
			break
		}
	}
	bp.outstanding[base] = full
}

// alloc returns a fresh guarded buffer of n elements (the pool-miss
// path: every output the runtime publishes carries guards, pooled or
// not).
func (bp *bufferPool) alloc(n int) []float32 {
	full := make([]float32, n+2*poolCanaryWords)
	c := poolCanary()
	for i := 0; i < poolCanaryWords; i++ {
		full[i] = c
		full[len(full)-1-i] = c
	}
	buf := poolView(full, n)
	bp.mu.Lock()
	bp.trackLocked(&buf[0], full)
	bp.mu.Unlock()
	return buf
}

// get returns a pooled buffer of exactly n elements, or nil. A parked
// array whose guards were overwritten while idle (a straggling writer,
// a DRAM fault) is quarantined here instead of being handed out.
func (bp *bufferPool) get(n int) []float32 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	list := bp.bySize[n]
	for len(list) > 0 {
		full := list[len(list)-1]
		list = list[:len(list)-1]
		bp.bySize[n] = list
		bp.idleBytes -= 4 * int64(len(full))
		if !guardsIntact(full) {
			bp.onTrip()
			continue // quarantined: fall through to the next parked array
		}
		buf := poolView(full, n)
		bp.trackLocked(&buf[0], full)
		return buf
	}
	return nil
}

// put parks a dead buffer for reuse, dropping it to the GC when the
// idle bound is reached. parked=false refuses the buffer: it is not
// one of ours (a foreign allocation, or an entry evicted from the
// outstanding index), or it was already recycled — outstanding-index
// membership is the double-recycle guard. tripped=true means the
// buffer's guards were overwritten: it is quarantined (forgotten,
// never parked) and counted via onTrip.
func (bp *bufferPool) put(buf []float32) (parked, tripped bool) {
	if len(buf) == 0 {
		return false, false
	}
	bp.mu.Lock()
	full, ok := bp.outstanding[&buf[0]]
	if !ok {
		bp.mu.Unlock()
		return false, false
	}
	delete(bp.outstanding, &buf[0])
	if !guardsIntact(full) {
		bp.mu.Unlock()
		bp.onTrip()
		return false, true
	}
	n := len(buf)
	if bp.idleBytes+4*int64(len(full)) > bp.maxIdleBytes {
		bp.mu.Unlock()
		return true, false // dropped to the GC: not a hazard, just full
	}
	bp.bySize[n] = append(bp.bySize[n], full)
	bp.idleBytes += 4 * int64(len(full))
	bp.mu.Unlock()
	return true, false
}

// check inspects a checked-out buffer's guards after a run. A tripped
// canary quarantines the buffer (it is forgotten and can never be
// parked) and reports true so the caller fails the request typed. A
// buffer the outstanding index no longer tracks (evicted at the cap)
// reports intact: its guards cannot be located, and it was allocated
// guarded, so the failure mode is only a lost check, never a false
// alarm.
func (bp *bufferPool) check(buf []float32) (tripped bool) {
	if len(buf) == 0 {
		return false
	}
	bp.mu.Lock()
	full, ok := bp.outstanding[&buf[0]]
	if ok && !guardsIntact(full) {
		delete(bp.outstanding, &buf[0])
		bp.mu.Unlock()
		bp.onTrip()
		return true
	}
	bp.mu.Unlock()
	return false
}

// forget drops a checked-out buffer from the outstanding index without
// parking it — the error path: an abandoned grid's stragglers may
// still write the array, so it must go to the GC, never back into
// circulation.
func (bp *bufferPool) forget(buf []float32) {
	if len(buf) == 0 {
		return
	}
	bp.mu.Lock()
	delete(bp.outstanding, &buf[0])
	bp.mu.Unlock()
}

func (bp *bufferPool) idle() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.idleBytes
}
