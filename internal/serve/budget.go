package serve

import (
	"sync"
	"sync/atomic"
)

// Budget is the global byte accountant: every in-flight request
// reserves the memory its execution mode needs (output tensor plus
// plan scratch; packed filters are charged for their lifetime at Pack
// time) and releases it when done. Reserve is a CAS loop, so admission
// under concurrency never overshoots the ceiling; a limit of 0 means
// "account but never refuse" — the counters still drive the stats and
// the soak harness's return-to-baseline invariant.
type Budget struct {
	limit int64 // bytes; <= 0 means unlimited
	inUse atomic.Int64
	peak  atomic.Int64
}

// NewBudget builds a budget with the given byte ceiling (<= 0:
// unlimited, accounting only).
func NewBudget(limitBytes int64) *Budget {
	return &Budget{limit: limitBytes}
}

// Reserve charges n bytes against the ceiling, reporting false (and
// charging nothing) when the charge would exceed it. n <= 0 is a
// no-op that always succeeds.
func (b *Budget) Reserve(n int64) bool {
	if n <= 0 {
		return true
	}
	for {
		cur := b.inUse.Load()
		next := cur + n
		if b.limit > 0 && next > b.limit {
			return false
		}
		if b.inUse.CompareAndSwap(cur, next) {
			for {
				p := b.peak.Load()
				if next <= p || b.peak.CompareAndSwap(p, next) {
					return true
				}
			}
		}
	}
}

// Release returns n previously reserved bytes.
func (b *Budget) Release(n int64) {
	if n > 0 {
		b.inUse.Add(-n)
	}
}

// InUse returns the currently reserved bytes — the value the chaos
// soak compares against its pre-run baseline.
func (b *Budget) InUse() int64 { return b.inUse.Load() }

// Peak returns the high-water mark of reserved bytes.
func (b *Budget) Peak() int64 { return b.peak.Load() }

// Limit returns the configured ceiling (<= 0: unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// bufferPool is the activation pool: a bounded free list of output
// buffers keyed by exact element count. Unlike sync.Pool it is fully
// deterministic (no GC-driven drops), which the return-to-baseline
// invariant needs; idle bytes are bounded by maxIdleBytes and tracked
// in the runtime stats, and are deliberately NOT charged against the
// Budget — the budget bounds what in-flight requests are using, while
// the pool holds memory no request owns (see DESIGN.md).
type bufferPool struct {
	mu           sync.Mutex
	bySize       map[int][][]float32
	parked       map[*float32]struct{} // base pointers currently parked: double-recycle guard
	idleBytes    int64
	maxIdleBytes int64
}

func newBufferPool(maxIdleBytes int64) *bufferPool {
	return &bufferPool{
		bySize:       make(map[int][][]float32),
		parked:       make(map[*float32]struct{}),
		maxIdleBytes: maxIdleBytes,
	}
}

// get returns a pooled buffer of exactly n elements, or nil.
func (bp *bufferPool) get(n int) []float32 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	list := bp.bySize[n]
	if len(list) == 0 {
		return nil
	}
	buf := list[len(list)-1]
	bp.bySize[n] = list[:len(list)-1]
	delete(bp.parked, &buf[0])
	bp.idleBytes -= 4 * int64(n)
	return buf
}

// put parks a dead buffer for reuse, dropping it to the GC when the
// idle bound is reached. It refuses (returns false) a buffer whose
// backing array is already parked: recycling the same tensor twice
// would list one array twice and hand it to two concurrent requests.
func (bp *bufferPool) put(buf []float32) bool {
	n := len(buf)
	if n == 0 {
		return false
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if _, dup := bp.parked[&buf[0]]; dup {
		return false
	}
	if bp.idleBytes+4*int64(n) > bp.maxIdleBytes {
		return true // dropped to the GC: not a hazard, just full
	}
	bp.bySize[n] = append(bp.bySize[n], buf[:n:n])
	bp.parked[&buf[0]] = struct{}{}
	bp.idleBytes += 4 * int64(n)
	return true
}

func (bp *bufferPool) idle() int64 {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.idleBytes
}
