package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// Cross-request micro-batching (Config.BatchWindow > 0).
//
// The paper's thread grid parallelises over the batch axis (PT_n,
// §6), and the steady-state benches show fixed per-call cost
// dominating small convolutions — but a serving process receives its
// batch as k independent requests, not one tensor. The batcher sits
// behind the admission gate: admitted requests that are compatible —
// same per-image shape, same weights, same tenant and QoS class —
// park in a per-key queue for at most BatchWindow. The queue seals
// when it reaches BatchMax images (executing inline on the caller
// that filled it) or when the window timer fires, and the sealed
// batch runs as ONE plan execution over N = Σ n_i: one memory-budget
// reservation (so MemLimitBytes admits more small traffic), one
// degradation-ladder decision (rungs never mix inside a batch), one
// scratch set, one worker-grid join. Each request's output lands
// directly in its own tensor via the core batch entry points'
// per-image scatter — zero extra copies on the steady path.
//
// Deadlines bound the wait, not just the execution: a parked waiter
// whose context expires before its batch seals leaves the queue and
// runs solo (the core deadline discipline, including FallbackBudget,
// then applies); one that expires after sealing fails typed with
// conv.ErrDeadline and its freshly computed output is recycled.

// batchKey identifies requests that may legally coalesce. The
// runtime's base Options are shared by every request, so shape plus
// weight identity suffices for execution compatibility; tenant and
// class carry the isolation policy — requests of different tenants or
// QoS classes never share a batch, even when the math would allow it.
type batchKey struct {
	shape  conv.Shape // per-image geometry (N normalised to 1)
	filter *tensor.Tensor
	pf     *core.PackedFilter
	tenant string
	model  string // inference batching: per-model queues
	class  QoSClass
}

// batchReq is one parked caller.
type batchReq struct {
	ctx  context.Context
	in   *tensor.Tensor
	n    int // images this request contributes
	out  *tensor.Tensor
	err  error
	done chan struct{}
	gone atomic.Bool // waiter left after seal: result unclaimed
}

// pendingBatch is one open per-key queue.
type pendingBatch struct {
	key    batchKey
	reqs   []*batchReq
	images int
	sealed bool
	timer  *time.Timer
}

// batchStats is the counter block the Runtime owns (shared between
// the conv batcher and the registry's inference batcher, so
// Stats.BatchesExecuted reflects both).
type batchStats struct {
	batches     atomic.Uint64 // coalesced executions (>= 2 requests)
	batchedReqs atomic.Uint64 // requests served inside them
	soloFlushes atomic.Uint64 // windows that expired with one waiter
	expired     atomic.Uint64 // waiters that left on deadline
}

// batcher coalesces compatible requests into single executions. The
// run hook executes a sealed batch (filling every request's out/err);
// the solo hook serves a waiter that left the queue on deadline; the
// recycle hook reclaims a result whose waiter is gone (nil: drop to
// the GC).
type batcher struct {
	window  time.Duration
	max     int // image cap per batch
	stats   *batchStats
	run     func(key batchKey, reqs []*batchReq)
	solo    func(ctx context.Context, key batchKey, in *tensor.Tensor) (*tensor.Tensor, error)
	recycle func(t *tensor.Tensor)

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
}

func newBatcher(window time.Duration, max int, stats *batchStats,
	run func(batchKey, []*batchReq),
	solo func(context.Context, batchKey, *tensor.Tensor) (*tensor.Tensor, error),
	recycle func(*tensor.Tensor)) *batcher {
	return &batcher{
		window:  window,
		max:     max,
		stats:   stats,
		run:     run,
		solo:    solo,
		recycle: recycle,
		pending: map[batchKey]*pendingBatch{},
	}
}

// submit parks one admitted request under key until its batch seals
// (image cap or window), executing inline when this request fills the
// batch. The caller must already hold its admission slot; it keeps
// holding it until submit returns, so batching never multiplies
// concurrency past the gate.
func (bt *batcher) submit(ctx context.Context, key batchKey, in *tensor.Tensor) (*tensor.Tensor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &batchReq{ctx: ctx, in: in, n: in.Dims[0], done: make(chan struct{})}
	bt.mu.Lock()
	b := bt.pending[key]
	if b == nil {
		b = &pendingBatch{key: key}
		bt.pending[key] = b
		b.timer = time.AfterFunc(bt.window, func() { bt.flush(b) })
	}
	b.reqs = append(b.reqs, r)
	b.images += r.n
	if b.images >= bt.max {
		bt.sealLocked(b)
		bt.mu.Unlock()
		bt.runBatch(b.key, b.reqs) // inline on the caller that filled the batch
		return r.out, r.err
	}
	bt.mu.Unlock()

	select {
	case <-r.done:
		return r.out, r.err
	case <-ctx.Done():
	}

	// Deadline while parked. If the batch is still open, leave it (the
	// other waiters are untouched) and run solo — the core layer's
	// deadline discipline decides between a typed failure and the
	// FallbackBudget rescue. If it already sealed, execution is
	// imminent on another goroutine; fail typed and let the executor
	// recycle the unclaimed result.
	bt.mu.Lock()
	if b.sealed {
		select {
		case <-r.done:
			// The executor finished in the same instant: the result is
			// ours, exactly as if it had arrived a tick earlier.
			bt.mu.Unlock()
			return r.out, r.err
		default:
		}
		r.gone.Store(true)
		bt.mu.Unlock()
		bt.stats.expired.Add(1)
		return nil, fmt.Errorf("%w: deadline expired while the coalesced batch was executing: %w",
			conv.ErrDeadline, context.Cause(ctx))
	}
	for i, x := range b.reqs {
		if x == r {
			b.reqs = append(b.reqs[:i], b.reqs[i+1:]...)
			b.images -= r.n
			break
		}
	}
	if len(b.reqs) == 0 {
		bt.sealLocked(b) // nothing left: retire the empty queue
	}
	bt.mu.Unlock()
	bt.stats.expired.Add(1)
	return bt.solo(ctx, key, in)
}

// sealLocked (bt.mu held) closes b to new members and unlinks it from
// the pending index. The index check guards against a stale timer
// retiring a newer batch that reused the key.
func (bt *batcher) sealLocked(b *pendingBatch) {
	b.sealed = true
	if bt.pending[b.key] == b {
		delete(bt.pending, b.key)
	}
	b.timer.Stop()
}

// flush is the window timer's path: seal whatever has accumulated and
// execute it (a single waiter runs solo-shaped through the same run
// hook, on its own context).
func (bt *batcher) flush(b *pendingBatch) {
	bt.mu.Lock()
	if b.sealed {
		bt.mu.Unlock()
		return
	}
	bt.sealLocked(b)
	reqs := b.reqs
	bt.mu.Unlock()
	if len(reqs) == 0 {
		return
	}
	bt.runBatch(b.key, reqs)
}

// runBatch executes one sealed batch through the run hook, settles the
// counters, reclaims results whose waiters left, and wakes everyone.
func (bt *batcher) runBatch(key batchKey, reqs []*batchReq) {
	if len(reqs) > 1 {
		bt.stats.batches.Add(1)
		bt.stats.batchedReqs.Add(uint64(len(reqs)))
	} else {
		bt.stats.soloFlushes.Add(1)
	}
	bt.run(key, reqs)
	for _, r := range reqs {
		if r.gone.Load() && r.err == nil && r.out != nil && bt.recycle != nil {
			// The waiter already failed typed; the batch joined cleanly,
			// so its scattered output is safe to hand back to the pool.
			bt.recycle(r.out)
			r.out = nil
		}
		close(r.done)
	}
}

// convBatched validates one admitted conv request and routes it
// through the micro-batcher. Validation happens before parking so a
// malformed request fails alone, never poisoning a coalesced grid.
func (rt *Runtime) convBatched(ctx context.Context, s conv.Shape, in, filter *tensor.Tensor, pf *core.PackedFilter, tenant string, class QoSClass) (*tensor.Tensor, error) {
	kcrs := filter
	if pf != nil {
		kcrs = pf.Source()
	}
	if err := conv.ValidateOperands(s, in, kcrs); err != nil {
		return nil, err
	}
	key := batchKey{shape: s.WithBatch(1), filter: filter, pf: pf, tenant: tenant, class: class}
	return rt.batcher.submit(ctx, key, in)
}

// execConvBatch is the batcher's run hook for raw convolutions: one
// plan at N = Σ n_i, one memory reservation, one ladder rung, one
// grid; outputs scatter per request through the core batch entry
// points.
func (rt *Runtime) execConvBatch(key batchKey, reqs []*batchReq) {
	if len(reqs) == 1 {
		// A window that expired with a single waiter: the plain
		// admitted path on the request's own context.
		r := reqs[0]
		r.out, r.err = rt.convAdmitted(r.ctx, key.shape.WithBatch(r.n), r.in, key.filter, key.pf)
		return
	}
	fail := func(err error) {
		for _, r := range reqs {
			r.err = err
		}
	}
	total := 0
	for _, r := range reqs {
		total += r.n
	}
	bs := key.shape.WithBatch(total)
	plan, err := rt.plans.Get(bs, rt.opts)
	if err != nil {
		fail(err)
		return
	}
	// One reservation for the whole batch: under memory pressure small
	// coalesced traffic charges one scratch set instead of k.
	mode, xplan, charge, err := rt.admitMemory(bs, plan)
	if err != nil {
		fail(err)
		return
	}
	defer rt.budget.Release(charge)
	switch mode {
	case modeFull:
		rt.fullRuns.Add(1)
	case modeDegraded:
		rt.degRuns.Add(1)
	case modeReference:
		rt.refRuns.Add(1)
	}

	outs := make([]*tensor.Tensor, len(reqs))
	ins := make([]*tensor.Tensor, len(reqs))
	bufs := make([][]float32, len(reqs))
	for i, r := range reqs {
		ins[i] = r.in
		si := key.shape.WithBatch(r.n)
		outLen := si.N * si.K * si.P() * si.Q()
		buf := rt.pool.get(outLen)
		if buf != nil {
			rt.poolHits.Add(1)
		} else {
			rt.freshAllocs.Add(1)
			buf = rt.pool.alloc(outLen)
		}
		bufs[i] = buf
		outs[i] = tensor.FromSlice(buf, si.N, si.K, si.P(), si.Q())
	}

	kcrs := key.filter
	if key.pf != nil {
		kcrs = key.pf.Source()
	}
	if mode == modeReference {
		// The reference rung has no batched entry (and no scratch to
		// amortise): each request runs its naive loop under the shared
		// reservation, failing individually.
		for i, r := range reqs {
			si := key.shape.WithBatch(r.n)
			rp, perr := rt.plans.Get(si, rt.opts)
			if perr == nil {
				perr = rp.TryExecuteReferenceCtx(r.ctx, r.in, kcrs, outs[i])
			}
			if perr != nil {
				r.err = perr
				rt.pool.forget(bufs[i]) // dropped: never back in the pool
				continue
			}
			if rt.pool.check(bufs[i]) {
				r.err = fmt.Errorf("%w: output-buffer canary tripped after batched reference execution on %v",
					core.ErrIntegrity, si)
				continue
			}
			r.out = outs[i]
		}
		return
	}

	ctx, cancel := batchCtx(reqs)
	defer cancel()
	var execErr error
	if key.pf != nil {
		execErr = xplan.TryExecuteBatchPackedCtx(ctx, ins, key.pf, outs)
	} else {
		execErr = xplan.TryExecuteBatchCtx(ctx, ins, key.filter, outs)
	}
	if execErr != nil {
		// An abandoned grid's stragglers may still write the buffers:
		// drop them all to the GC, never back into the pool.
		for _, buf := range bufs {
			rt.pool.forget(buf)
		}
		fail(execErr)
		return
	}
	for i, r := range reqs {
		if rt.pool.check(bufs[i]) {
			// The grid wrote past this request's output window: fail it
			// typed and quarantine the buffer. The other requests' outputs
			// live in separate guarded arrays and stand on their own checks.
			r.err = fmt.Errorf("%w: output-buffer canary tripped after coalesced execution on %v",
				core.ErrIntegrity, key.shape.WithBatch(r.n))
			continue
		}
		r.out = outs[i]
	}
}

// batchCtx derives the coalesced execution's context: the most
// generous member deadline, so the shared grid is never abandoned
// while a member could still use the result (members that expire
// earlier leave individually through the batcher's wait loop). Any
// member without a deadline makes the execution unbounded.
func batchCtx(reqs []*batchReq) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range reqs {
		d, ok := r.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}
