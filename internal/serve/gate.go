package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"ndirect/internal/core"
)

// Gate is the admission controller: at most MaxInFlight requests
// execute concurrently, at most MaxQueue more wait for a slot, and
// everything beyond that fails fast with an error wrapping
// core.ErrOverloaded. Waiting is deadline-aware — a queued request
// whose context expires before a slot frees leaves the queue
// immediately with the same sentinel (plus the context's cause) —
// so overload never turns into a pile of blocked goroutines: the
// resident set is bounded by MaxInFlight + MaxQueue regardless of
// offered load.
type Gate struct {
	slots    chan struct{} // capacity = MaxInFlight; a token is an execution slot
	maxQueue int64
	queued   atomic.Int64
	inFlight atomic.Int64 // held slots; kept separately from len(slots) so
	// stats snapshots are coherent — a channel-length read races the
	// send/receive pair and can report transient values that never
	// corresponded to a consistent gate state.

	admitted atomic.Uint64 // granted a slot (fast path or after queueing)
	waited   atomic.Uint64 // of those, how many had to queue first
	fullRejs atomic.Uint64 // rejected because the wait queue was full
	deadRejs atomic.Uint64 // rejected because ctx expired while queued
}

// NewGate builds a gate admitting maxInFlight concurrent requests with
// a wait queue of maxQueue. maxInFlight < 1 is clamped to 1 (a gate
// that admits nothing would deadlock every caller); maxQueue < 0 is
// clamped to 0 (reject immediately once the slots are taken).
func NewGate(maxInFlight, maxQueue int) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
	}
}

// Acquire claims an execution slot, waiting in the bounded queue if
// none is free. It returns a release function (idempotent; must be
// called exactly when the request's execution is finished) or an error
// wrapping core.ErrOverloaded when the queue is full or ctx finishes
// first. A nil ctx is treated as context.Background (wait forever).
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case g.slots <- struct{}{}:
		g.inFlight.Add(1)
		g.admitted.Add(1)
		return g.releaseFunc(), nil
	default:
	}
	// No free slot: take a queue position or fail fast. The counter
	// admits at most maxQueue waiters; the loser of a race past the
	// bound backs out before blocking.
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.fullRejs.Add(1)
		return nil, fmt.Errorf("%w: admission queue full (%d waiting)", core.ErrOverloaded, g.maxQueue)
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		g.inFlight.Add(1)
		g.admitted.Add(1)
		g.waited.Add(1)
		return g.releaseFunc(), nil
	case <-ctx.Done():
		g.deadRejs.Add(1)
		return nil, fmt.Errorf("%w: no slot before deadline: %w", core.ErrOverloaded, context.Cause(ctx))
	}
}

// releaseFunc returns the slot exactly once even if called repeatedly.
// The in-flight count drops before the slot token is returned, so
// InFlight never reads above MaxInFlight (it may transiently read one
// low between the two steps, which is the coherent direction: the
// request's execution is already over).
func (g *Gate) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			g.inFlight.Add(-1)
			<-g.slots
		})
	}
}

// InFlight returns the number of currently held execution slots.
func (g *Gate) InFlight() int { return int(g.inFlight.Load()) }

// Queued returns the number of requests currently waiting for a slot.
func (g *Gate) Queued() int64 { return g.queued.Load() }

// GateStats is a point-in-time snapshot of the gate's counters.
type GateStats struct {
	Admitted     uint64 // requests granted a slot
	Waited       uint64 // of Admitted, how many queued first
	RejectedFull uint64 // failed fast: wait queue full
	RejectedLate uint64 // failed while queued: context finished first
	InFlight     int
	Queued       int64
}

// Stats snapshots the gate's counters.
func (g *Gate) Stats() GateStats {
	return GateStats{
		Admitted:     g.admitted.Load(),
		Waited:       g.waited.Load(),
		RejectedFull: g.fullRejs.Load(),
		RejectedLate: g.deadRejs.Load(),
		InFlight:     g.InFlight(),
		Queued:       g.Queued(),
	}
}
