package serve

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/faultinject"
	"ndirect/internal/nn"
	"ndirect/internal/parallel"
	"ndirect/internal/tensor"
)

// Registry errors (all also carry core sentinels where applicable).
var (
	// ErrUnknownModel reports an Infer against a model the tenant has
	// not registered (or one another tenant owns — indistinguishable by
	// design, so tenants cannot probe each other's model names).
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrModelExists reports a Register over an existing (tenant, model).
	ErrModelExists = errors.New("serve: model already registered")
)

// TenantConfig is one tenant's admission policy.
type TenantConfig struct {
	// Class is the tenant's QoS class (zero value: ClassBatch — the
	// unconfigured tenant absorbs overload first).
	Class QoSClass
	// MaxOutstanding caps the tenant's concurrent requests (in flight +
	// queued); <= 0 means uncapped.
	MaxOutstanding int
}

// RegistryConfig configures a multi-tenant model Registry.
type RegistryConfig struct {
	// Runtime supplies the shared serving substrate: plan cache,
	// activation-memory budget with its degradation ladder, buffer pool.
	// Nil builds a default Runtime.
	Runtime *Runtime
	// MaxInFlight / MaxQueue size the tenant admission gate (see
	// NewTenantGate; <= 0 selects one in-flight slot per core and an
	// equally sized queue).
	MaxInFlight int
	MaxQueue    int
	// WeightLimitBytes is the global weight-residency budget: the sum
	// of all tenants' resident packed filters stays under it, enforced
	// by LRU eviction across models (evicted weights re-pack
	// bit-identically on next use). <= 0 disables the ceiling but keeps
	// accounting. This budget is distinct from the Runtime's activation
	// budget: weights are long-lived and evictable, activations are
	// per-request and shed by the degradation ladder.
	WeightLimitBytes int64
	// QuarantineThreshold is the number of consecutive surfaced
	// execution faults (worker panics, exec faults) after which a model
	// is quarantined to the reference path. 0 disables quarantine.
	QuarantineThreshold int
	// QuarantineCooldown is how long a quarantined model serves on the
	// reference path before one probe is routed back to the fast path
	// (DefaultQuarantineCooldown when zero).
	QuarantineCooldown time.Duration
	// Tenants seeds the tenant→policy table (SetTenant adds or updates
	// later). Unknown tenants get the zero TenantConfig: ClassBatch,
	// uncapped.
	Tenants map[string]TenantConfig
}

// DefaultQuarantineCooldown is the quarantine duration when
// RegistryConfig leaves QuarantineCooldown zero.
const DefaultQuarantineCooldown = 30 * time.Second

// modelEntry is one registered network's registry-side state. Lock
// ordering: a conv unit's packMu (taken by the nn layer) → Registry.mu
// → modelEntry.mu; entry.mu is a leaf. Eviction never takes packMu —
// it works entirely on the residency index plus PackedFilter.Release's
// atomic flag, and the owning unit discovers the released filter on
// its next fetch.
type modelEntry struct {
	tenant string
	model  string
	net    *nn.Network
	eng    *nn.Engine // fast-path engine (Reuse, shared plan cache, residency hooks)
	refEng *nn.Engine // quarantine engine (ForceReference), same plan cache
	lruEl  *list.Element

	mu       sync.Mutex
	dead     bool                         // unregistered: no new residency, no new requests
	resident map[*core.PackedFilter]int64 // residency index: charge released exactly once

	faults      int // consecutive surfaced faults toward the threshold
	quarantined bool
	quarUntil   time.Time
	probing     bool // one post-cooldown probe is on the fast path
}

// Registry is the multi-tenant model registry: tenants register
// networks, infer against them under per-tenant QoS admission, and
// share one weight-residency budget, one plan cache, one activation
// budget and one worker pool. All methods are safe for concurrent use.
type Registry struct {
	rt      *Runtime
	gate    *TenantGate
	weights *Budget

	// inferBatcher coalesces Infer requests per (tenant, model, input
	// geometry, class) when the Runtime has batching enabled. It shares
	// the Runtime's counters, so Stats.BatchesExecuted covers both raw
	// convs and inference.
	inferBatcher *batcher

	quarThreshold int
	quarCooldown  time.Duration

	mu      sync.Mutex
	models  map[string]*modelEntry // key: tenant + "\x00" + model
	lru     *list.List             // model recency; least recent at back
	tenants map[string]TenantConfig

	evictions       atomic.Uint64 // models whose residency was evicted
	evictedFilters  atomic.Uint64
	evictedBytes    atomic.Uint64
	forcedEvictions atomic.Uint64 // weight-evict fault injections consumed
	residencyDenied atomic.Uint64 // OnPackAdmit refusals (ran unpacked)
	quarantines     atomic.Uint64 // fast-path → reference transitions
	refInfers       atomic.Uint64 // requests served on the quarantine path
	restores        atomic.Uint64 // successful probes (reference → fast path)
}

// NewRegistry builds a Registry from cfg (see RegistryConfig).
func NewRegistry(cfg RegistryConfig) *Registry {
	rt := cfg.Runtime
	if rt == nil {
		rt = New(Config{})
	}
	inFlight := cfg.MaxInFlight
	if inFlight <= 0 {
		inFlight = parallel.DefaultThreads()
	}
	queue := cfg.MaxQueue
	if queue == 0 {
		queue = inFlight
	}
	cooldown := cfg.QuarantineCooldown
	if cooldown <= 0 {
		cooldown = DefaultQuarantineCooldown
	}
	r := &Registry{
		rt:            rt,
		gate:          NewTenantGate(inFlight, queue),
		weights:       NewBudget(cfg.WeightLimitBytes),
		quarThreshold: cfg.QuarantineThreshold,
		quarCooldown:  cooldown,
		models:        map[string]*modelEntry{},
		lru:           list.New(),
		tenants:       map[string]TenantConfig{},
	}
	for t, tc := range cfg.Tenants {
		r.tenants[t] = tc
	}
	if rt.batcher != nil {
		r.inferBatcher = newBatcher(rt.batcher.window, rt.batcher.max, &rt.batchStats,
			r.runInferBatch, r.soloInfer, nil)
	}
	return r
}

// Runtime returns the shared serving substrate.
func (r *Registry) Runtime() *Runtime { return r.rt }

// WeightBudget returns the weight-residency accountant (for the soak
// harness's drain-to-baseline checks).
func (r *Registry) WeightBudget() *Budget { return r.weights }

// Gate returns the tenant admission gate.
func (r *Registry) Gate() *TenantGate { return r.gate }

// SetTenant installs or updates a tenant's admission policy.
func (r *Registry) SetTenant(tenant string, tc TenantConfig) {
	r.mu.Lock()
	r.tenants[tenant] = tc
	r.mu.Unlock()
}

func (r *Registry) tenantConfig(tenant string) TenantConfig {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tenants[tenant]
}

func modelKey(tenant, model string) string { return tenant + "\x00" + model }

// Register adds a tenant's network under the given model name. The
// model's packed weights become resident lazily, on first inference,
// charged against the shared weight budget — unless the Runtime was
// built with a tuning manifest, in which case every manifest-covered
// conv unit is warmed eagerly (plan cache entry, per-unit plan memo,
// packed weights, specialized kernel registration) before the model
// becomes visible, so covered traffic never pays planning latency.
func (r *Registry) Register(tenant, model string, net *nn.Network) error {
	if tenant == "" || model == "" {
		return fmt.Errorf("%w: empty tenant or model name", core.ErrBadOptions)
	}
	if net == nil {
		return fmt.Errorf("%w: nil network", core.ErrBadOptions)
	}
	key := modelKey(tenant, model)
	r.mu.Lock()
	if _, ok := r.models[key]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrModelExists, tenant, model)
	}
	r.mu.Unlock()
	e := &modelEntry{
		tenant:   tenant,
		model:    model,
		net:      net,
		resident: map[*core.PackedFilter]int64{},
	}
	e.eng = &nn.Engine{
		Algo:         nn.AlgoNDirect,
		Threads:      r.rt.opts.Threads,
		Reuse:        true,
		Plans:        r.rt.plans,
		OnPackAdmit:  func(bytes int64) bool { return r.admitWeights(e, bytes) },
		OnPackRetain: func(pf *core.PackedFilter) { r.retainWeights(e, pf) },
		OnPackDrop:   func(pf *core.PackedFilter) { r.dropWeights(e, pf) },
	}
	e.refEng = &nn.Engine{
		Algo:           nn.AlgoNDirect,
		Threads:        1,
		Reuse:          true,
		Plans:          r.rt.plans,
		ForceReference: true,
	}
	if m := r.rt.manifest; m != nil {
		// Warm-start outside every registry lock: warming takes the
		// units' packMu (which orders before r.mu) and charges the
		// weight budget through the entry's own hooks — exactly the
		// charges a first request would make. A warm failure degrades
		// to cold-start planning, never blocks registration.
		e.eng.LoadManifest(m)
		for _, u := range net.ConvUnits() {
			if m.Covers(u.Shape) {
				core.RegisterShapeKernel(u.Shape)
			}
		}
		if _, err := net.WarmPlans(e.eng, m.Covers); err != nil {
			core.Logf("serve: warm-start %s/%s failed (serving cold): %v", tenant, model, err)
		}
	}
	r.mu.Lock()
	if _, ok := r.models[key]; ok {
		r.mu.Unlock()
		// A concurrent Register won the name between the pre-check and
		// the insert. Retire this entry's warmed residency so the lost
		// race cannot leak weight-budget charges.
		e.mu.Lock()
		e.dead = true
		r.releaseResidentLocked(e)
		e.mu.Unlock()
		e.net.InvalidateReuse(e.eng)
		return fmt.Errorf("%w: %s/%s", ErrModelExists, tenant, model)
	}
	r.models[key] = e
	e.lruEl = r.lru.PushFront(e)
	r.mu.Unlock()
	if len(net.ConvUnits()) > 0 {
		// Hand the model to the integrity sentinel (no-op when the
		// Runtime has no sentinel): an idle-time golden probe comparing
		// the fast engine bit-for-bit against the reference engine.
		r.rt.addSentinelTarget(key, r.gateIdle, func() { r.sentinelProbe(e) })
	}
	return nil
}

// gateIdle reports whether the tenant gate is fully idle — the
// sentinel's extra predicate for model probes, so a probe never runs
// beside (or ahead of) tenant traffic.
func (r *Registry) gateIdle() bool {
	gs := r.gate.Stats()
	return gs.InFlight == 0 && gs.Queued == 0
}

// sentinelProbe runs one golden-input forward pass of the model on
// both engines and settles the quarantine machine on the comparison.
// Engine errors (not miscompares) move nothing: typed faults are the
// fault ladder's evidence, the sentinel's is silent divergence.
func (r *Registry) sentinelProbe(e *modelEntry) {
	e.mu.Lock()
	dead := e.dead
	e.mu.Unlock()
	if dead {
		return
	}
	units := e.net.ConvUnits()
	if len(units) == 0 {
		return
	}
	s := units[0].Shape
	x := tensor.New(1, s.C, s.H, s.W)
	core.FillProbe(x.Data, 0xC0FFEE)
	fast, err := e.net.TryForward(e.eng, x)
	if err != nil {
		return
	}
	ref, err := e.net.TryForward(e.refEng, x)
	if err != nil {
		return
	}
	r.settleModelProbe(e, tensor.MaxAbsDiff(fast, ref) != 0)
}

// settleModelProbe advances the model quarantine machine on a sentinel
// comparison: a miscompare quarantines (idempotently), a clean probe
// restores. Split from sentinelProbe so the mismatch path is testable
// without manufacturing silent fast-path corruption.
func (r *Registry) settleModelProbe(e *modelEntry, mismatch bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if mismatch {
		r.rt.integrityFailures.Add(1)
		if !e.quarantined {
			e.quarantined = true
			e.quarUntil = time.Now().Add(r.quarCooldown)
			e.faults = 0
			r.quarantines.Add(1)
			core.Logf("serve: sentinel: model %s/%s fast path diverges from reference on the golden probe; quarantined",
				e.tenant, e.model)
		}
		return
	}
	if e.quarantined {
		e.quarantined = false
		e.probing = false
		e.faults = 0
		r.restores.Add(1)
		core.Logf("serve: sentinel: model %s/%s probes clean; restored to the fast path", e.tenant, e.model)
	}
}

// Unregister removes a tenant's model and releases its resident weight
// charges. Requests already executing on the model's packed weights
// finish on the immutable buffers (or fail typed and re-run on the
// on-the-fly transform); requests arriving after return fail with
// ErrUnknownModel; no path can re-charge the budget afterwards.
func (r *Registry) Unregister(tenant, model string) error {
	key := modelKey(tenant, model)
	r.mu.Lock()
	e, ok := r.models[key]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrUnknownModel, tenant, model)
	}
	delete(r.models, key)
	r.lru.Remove(e.lruEl)
	e.mu.Lock()
	e.dead = true
	r.releaseResidentLocked(e)
	e.mu.Unlock()
	r.mu.Unlock()
	r.rt.removeSentinelTarget(key)
	// Retire the network's reuse state outside every registry lock
	// (InvalidateReuse takes the units' packMu, which orders before
	// r.mu). The entry is dead, so the drop hooks release nothing twice
	// and no new residency can be admitted.
	e.net.InvalidateReuse(e.eng)
	return nil
}

// releaseResidentLocked (entry.mu held) evicts every resident packed
// filter of e: the budget charge returns and the filter's released
// flag flips, so the owning unit rebuilds on next use. Returns the
// bytes released.
func (r *Registry) releaseResidentLocked(e *modelEntry) int64 {
	var total int64
	for pf, b := range e.resident {
		pf.Release()
		r.weights.Release(b)
		total += b
		delete(e.resident, pf)
		r.evictedFilters.Add(1)
	}
	if total > 0 {
		r.evictedBytes.Add(uint64(total))
	}
	return total
}

// admitWeights is the OnPackAdmit hook: reserve bytes against the
// weight budget, evicting other models' residency least-recently-used
// first when the reservation fails. A false return costs nothing — the
// caller runs unpacked. Called under the requesting unit's packMu;
// takes r.mu → entry.mu only (the documented lock order).
func (r *Registry) admitWeights(e *modelEntry, bytes int64) bool {
	e.mu.Lock()
	dead := e.dead
	e.mu.Unlock()
	if dead {
		return false
	}
	if r.weights.Reserve(bytes) {
		return true
	}
	// Weight pressure: walk victims from the LRU tail. The requesting
	// model is skipped (evicting our own residency to admit our own
	// residency would thrash), so a single model larger than the whole
	// budget degrades itself to the unpacked path, not the neighbours.
	r.mu.Lock()
	for el := r.lru.Back(); el != nil; {
		prev := el.Prev()
		victim := el.Value.(*modelEntry)
		if victim != e {
			victim.mu.Lock()
			n := r.releaseResidentLocked(victim)
			victim.mu.Unlock()
			if n > 0 {
				r.evictions.Add(1)
			}
			if r.weights.Reserve(bytes) {
				r.mu.Unlock()
				return true
			}
		}
		el = prev
	}
	r.mu.Unlock()
	r.residencyDenied.Add(1)
	return false
}

// retainWeights is the OnPackRetain hook: record the admitted filter
// in the residency index. If the model died between admission and the
// transform (an unregister raced the pack), the charge is returned and
// the filter released immediately — the unregister's accounting
// invariant (budget back to baseline) holds regardless of the race.
func (r *Registry) retainWeights(e *modelEntry, pf *core.PackedFilter) {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		pf.Release()
		r.weights.Release(pf.Bytes())
		return
	}
	e.resident[pf] = pf.Bytes()
	e.mu.Unlock()
}

// dropWeights is the OnPackDrop hook: a unit discarded a stale packed
// filter (evicted, or superseded by a re-plan). The charge is released
// exactly once — membership in the residency index is the guard, so a
// filter the LRU eviction already settled is a no-op here.
func (r *Registry) dropWeights(e *modelEntry, pf *core.PackedFilter) {
	e.mu.Lock()
	b, ok := e.resident[pf]
	if ok {
		delete(e.resident, pf)
	}
	e.mu.Unlock()
	pf.Release()
	if ok {
		r.weights.Release(b)
	}
}

// evictModel force-evicts a model's resident weights (the weight-evict
// fault injection point): traffic continues, the next executions
// re-pack bit-identically under fresh budget charges.
func (r *Registry) evictModel(e *modelEntry) {
	e.mu.Lock()
	n := r.releaseResidentLocked(e)
	e.mu.Unlock()
	if n > 0 {
		r.evictions.Add(1)
	}
}

// lookup resolves (tenant, model) and refreshes its LRU recency.
func (r *Registry) lookup(tenant, model string) (*modelEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.models[modelKey(tenant, model)]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrUnknownModel, tenant, model)
	}
	r.lru.MoveToFront(e.lruEl)
	return e, nil
}

// engineFor picks the entry's serving engine under the quarantine
// state machine: healthy → fast path; quarantined → reference path
// until the cooldown elapses, then exactly one probe returns to the
// fast path (success restores the model, a surfaced fault re-opens
// the quarantine).
func (r *Registry) engineFor(e *modelEntry) (eng *nn.Engine, probe bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.quarantined {
		return e.eng, false
	}
	if r.quarThreshold <= 0 {
		// The fault-driven ladder is disabled, so this quarantine came
		// from the integrity sentinel: serve the reference path until the
		// sentinel's own probe proves the fast path clean again (the
		// cooldown/probe machinery below belongs to the fault ladder).
		r.refInfers.Add(1)
		return e.refEng, false
	}
	if time.Now().Before(e.quarUntil) || e.probing {
		r.refInfers.Add(1)
		return e.refEng, false
	}
	e.probing = true
	return e.eng, true
}

// recordOutcome advances the quarantine state machine after a request.
// Only surfaced execution faults count — overload rejections, deadline
// misses and validation errors are the caller's (or the operator's)
// problem, not evidence of a misbehaving model.
func (r *Registry) recordOutcome(e *modelEntry, probe bool, err error) {
	if r.quarThreshold <= 0 {
		return
	}
	faulted := err != nil && (errors.Is(err, parallel.ErrWorkerPanic) || errors.Is(err, core.ErrExecFault) ||
		errors.Is(err, core.ErrIntegrity))
	e.mu.Lock()
	defer e.mu.Unlock()
	if probe {
		e.probing = false
		if faulted {
			e.quarUntil = time.Now().Add(r.quarCooldown)
			r.quarantines.Add(1)
			core.Logf("serve: model %s/%s probe faulted; quarantine extended %v: %v",
				e.tenant, e.model, r.quarCooldown, err)
			return
		}
		e.quarantined = false
		e.faults = 0
		r.restores.Add(1)
		core.Logf("serve: model %s/%s restored to the fast path", e.tenant, e.model)
		return
	}
	if e.quarantined {
		return // reference-path outcomes don't move the machine
	}
	if !faulted {
		e.faults = 0
		return
	}
	e.faults++
	if e.faults < r.quarThreshold {
		return
	}
	e.quarantined = true
	e.quarUntil = time.Now().Add(r.quarCooldown)
	e.faults = 0
	r.quarantines.Add(1)
	core.Logf("serve: model %s/%s quarantined to the reference path for %v after %d consecutive faults",
		e.tenant, e.model, r.quarCooldown, r.quarThreshold)
}

// Infer runs one forward pass of tenant's model under the full
// multi-tenant discipline: per-tenant QoS admission (class shed order,
// weighted-fair slot handoff, outstanding cap), weight-residency
// charging with transparent LRU eviction and bit-identical re-pack,
// and the per-model quarantine ladder. Failure modes: ErrUnknownModel,
// core.ErrOverloaded (typed, fail-fast), or the layer's execution
// error when every rung fails.
func (r *Registry) Infer(ctx context.Context, tenant, model string, x *tensor.Tensor) (*tensor.Tensor, error) {
	if _, ok := faultinject.Take(faultinject.WeightEvict); ok {
		if e, err := r.lookup(tenant, model); err == nil {
			r.forcedEvictions.Add(1)
			r.evictModel(e)
		}
	}
	tc := r.tenantConfig(tenant)
	release, err := r.gate.Acquire(ctx, tenant, tc.Class, tc.MaxOutstanding)
	if err != nil {
		return nil, err
	}
	defer release()
	e, err := r.lookup(tenant, model)
	if err != nil {
		return nil, err
	}
	if r.inferBatcher != nil && len(x.Dims) == 4 && x.Dims[0] >= 1 {
		// The slot is held across the park, so batching never exceeds
		// the tenant gate's concurrency; the model was just resolved, so
		// an unknown model fails fast instead of wasting a window.
		key := batchKey{
			shape:  conv.Shape{N: 1, C: x.Dims[1], H: x.Dims[2], W: x.Dims[3]},
			tenant: tenant,
			model:  model,
			class:  tc.Class,
		}
		return r.inferBatcher.submit(ctx, key, x)
	}
	eng, probe := r.engineFor(e)
	out, err := e.net.TryForward(eng, x)
	r.recordOutcome(e, probe, err)
	return out, err
}

// runInferBatch is the inference batcher's run hook: one forward pass
// over the stacked batch when the model is on the healthy fast path,
// falling back to per-request passes for quarantine/probe traffic (a
// probe must be a single attributable request) or single-waiter
// flushes.
func (r *Registry) runInferBatch(key batchKey, reqs []*batchReq) {
	e, err := r.lookup(key.tenant, key.model)
	if err != nil {
		for _, rr := range reqs {
			rr.err = err // unregistered while parked
		}
		return
	}
	eng, probe := r.engineFor(e)
	if len(reqs) > 1 && eng == e.eng && !probe {
		xs := make([]*tensor.Tensor, len(reqs))
		for i, rr := range reqs {
			xs[i] = rr.in
		}
		outs, err := e.net.TryForwardBatch(eng, xs)
		r.recordOutcome(e, false, err)
		if err != nil {
			for _, rr := range reqs {
				rr.err = err
			}
			return
		}
		for i, rr := range reqs {
			rr.out = outs[i]
		}
		return
	}
	for i, rr := range reqs {
		out, err := e.net.TryForward(eng, rr.in)
		r.recordOutcome(e, probe && i == 0, err)
		rr.out, rr.err = out, err
	}
}

// soloInfer serves an Infer waiter that left its batch on deadline:
// the plain single-request path (whose engine layer applies the core
// deadline discipline to the already-expired context).
func (r *Registry) soloInfer(ctx context.Context, key batchKey, x *tensor.Tensor) (*tensor.Tensor, error) {
	_ = ctx // TryForward inherits deadline handling from the conv layer's plan options
	e, err := r.lookup(key.tenant, key.model)
	if err != nil {
		return nil, err
	}
	eng, probe := r.engineFor(e)
	out, err := e.net.TryForward(eng, x)
	r.recordOutcome(e, probe, err)
	return out, err
}

// Conv2DCtx runs one raw convolution for tenant under QoS admission
// and the Runtime's activation-memory ladder (full → degraded →
// reference → ErrOverloaded) — the per-op entry point the soak harness
// drives to keep activation pressure and weight pressure churning at
// once.
func (r *Registry) Conv2DCtx(ctx context.Context, tenant string, s conv.Shape, in, filter *tensor.Tensor) (*tensor.Tensor, error) {
	tc := r.tenantConfig(tenant)
	release, err := r.gate.Acquire(ctx, tenant, tc.Class, tc.MaxOutstanding)
	if err != nil {
		return nil, err
	}
	defer release()
	if r.rt.batcher != nil {
		return r.rt.convBatched(ctx, s, in, filter, nil, tenant, tc.Class)
	}
	return r.rt.convAdmitted(ctx, s, in, filter, nil)
}

// ResidentBytes returns a model's current resident packed-weight bytes
// (0 for unknown models).
func (r *Registry) ResidentBytes(tenant, model string) int64 {
	r.mu.Lock()
	e, ok := r.models[modelKey(tenant, model)]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var total int64
	for _, b := range e.resident {
		total += b
	}
	return total
}

// Quarantined reports whether a model is currently serving on the
// reference path.
func (r *Registry) Quarantined(tenant, model string) bool {
	r.mu.Lock()
	e, ok := r.models[modelKey(tenant, model)]
	r.mu.Unlock()
	if !ok {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.quarantined
}

// RegistryStats is a point-in-time snapshot of the registry.
type RegistryStats struct {
	Gate TenantGateStats

	Models int

	// Weight-residency accounting.
	WeightInUse, WeightPeak, WeightLimit int64
	Evictions                            uint64 // models whose residency was evicted
	EvictedFilters                       uint64
	EvictedBytes                         uint64
	ForcedEvictions                      uint64 // weight-evict fault injections
	ResidencyDenied                      uint64 // packs refused (ran unpacked)

	// Quarantine ladder.
	Quarantines     uint64
	QuarantinedNow  int
	ReferenceInfers uint64
	Restores        uint64

	Runtime Stats
}

// Stats snapshots the registry (including the underlying Runtime).
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	models := len(r.models)
	quarNow := 0
	for _, e := range r.models {
		e.mu.Lock()
		if e.quarantined {
			quarNow++
		}
		e.mu.Unlock()
	}
	r.mu.Unlock()
	return RegistryStats{
		Gate:            r.gate.Stats(),
		Models:          models,
		WeightInUse:     r.weights.InUse(),
		WeightPeak:      r.weights.Peak(),
		WeightLimit:     r.weights.Limit(),
		Evictions:       r.evictions.Load(),
		EvictedFilters:  r.evictedFilters.Load(),
		EvictedBytes:    r.evictedBytes.Load(),
		ForcedEvictions: r.forcedEvictions.Load(),
		ResidencyDenied: r.residencyDenied.Load(),
		Quarantines:     r.quarantines.Load(),
		QuarantinedNow:  quarNow,
		ReferenceInfers: r.refInfers.Load(),
		Restores:        r.restores.Load(),
		Runtime:         r.rt.Stats(),
	}
}
