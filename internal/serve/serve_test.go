package serve

import (
	"context"
	"errors"
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/nn"
	"ndirect/internal/tensor"
)

// fillInts fills t with small integer-valued floats. Integer inputs
// make every execution mode bit-identical: sums of small integers are
// exactly representable, so the optimised grid (float32, blocked
// order), the degraded plan (different tiles) and the reference rung
// (float64 accumulation) all round to the same bits — the ladder can
// be tested for exact equality, not just tolerance.
func fillInts(t *tensor.Tensor, seed uint64) {
	x := seed*2654435761 + 12345
	for i := range t.Data {
		x = x*6364136223846793005 + 1442695040888963407
		t.Data[i] = float32(int64(x>>33)%7 - 3) // in [-3, 3]
	}
}

var testShape = conv.Shape{N: 1, C: 8, H: 16, W: 16, K: 16, R: 3, S: 3, Str: 1, Pad: 1}

func testOperands(s conv.Shape) (in, filter *tensor.Tensor, want *tensor.Tensor) {
	in = s.NewInput()
	fillInts(in, 1)
	filter = s.NewFilter()
	fillInts(filter, 2)
	return in, filter, conv.Reference(s, in, filter)
}

// ladderNeeds solves the runtime's own plans for the byte needs of
// each rung, so the tests can place the budget ceiling between rungs
// without hard-coding scratch sizes.
func ladderNeeds(t *testing.T, rt *Runtime, s conv.Shape) (outB, fullNeed, degNeed int64) {
	t.Helper()
	full, err := rt.plans.Get(s, rt.opts)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := rt.plans.Get(s, rt.degradedOpts())
	if err != nil {
		t.Fatal(err)
	}
	outB = full.OutputBytes()
	return outB, outB + full.ScratchBytes(), outB + deg.ScratchBytes()
}

func TestRuntimeDefaultsFullRunBitExact(t *testing.T) {
	rt := New(Config{})
	in, filter, want := testOperands(testShape)
	got, err := rt.TryConv2D(testShape, in, filter)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("serve output differs from reference by %g, want bit-identical", d)
	}
	st := rt.Stats()
	if st.FullRuns != 1 || st.DegradedRuns != 0 || st.ReferenceRuns != 0 {
		t.Fatalf("modes = full %d / degraded %d / reference %d, want 1/0/0", st.FullRuns, st.DegradedRuns, st.ReferenceRuns)
	}
	if st.MemInUse != 0 {
		t.Fatalf("MemInUse = %d after the request, want back to 0", st.MemInUse)
	}
	if st.MemPeak == 0 {
		t.Fatal("MemPeak = 0: the request was never charged")
	}
	if st.Gate.Admitted != 1 {
		t.Fatalf("Gate.Admitted = %d, want 1", st.Gate.Admitted)
	}
}

// TestDegradationLadder walks the budget ceiling down through every
// rung: full plan, smaller-tile single-worker plan, zero-scratch
// reference, and finally ErrOverloaded — each bit-identical to the
// oracle while it still runs at all.
func TestDegradationLadder(t *testing.T) {
	s := testShape
	in, filter, want := testOperands(s)

	// Solve rung needs once on an unlimited runtime with the same opts.
	probe := New(Config{Options: core.Options{Threads: 4}})
	outB, fullNeed, degNeed := ladderNeeds(t, probe, s)
	if fullNeed <= degNeed {
		t.Fatalf("test geometry cannot separate rungs: full needs %d <= degraded %d", fullNeed, degNeed)
	}
	if degNeed <= outB {
		t.Fatalf("degraded plan reports no scratch (%d <= %d); ladder untestable", degNeed, outB)
	}

	cases := []struct {
		name  string
		limit int64
		mode  string
	}{
		{"full", fullNeed, "full"},
		{"degraded", fullNeed - 1, "degraded"},
		{"reference", outB, "reference"},
		{"rejected", outB - 4, "rejected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rt := New(Config{MemLimitBytes: tc.limit, Options: core.Options{Threads: 4}})
			got, err := rt.TryConv2D(s, in, filter)
			st := rt.Stats()
			if tc.mode == "rejected" {
				if !errors.Is(err, core.ErrOverloaded) {
					t.Fatalf("err = %v, want ErrOverloaded", err)
				}
				if st.MemRejected != 1 {
					t.Fatalf("MemRejected = %d, want 1", st.MemRejected)
				}
				if st.MemInUse != 0 {
					t.Fatalf("MemInUse = %d after rejection, want 0", st.MemInUse)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if d := tensor.MaxAbsDiff(want, got); d != 0 {
				t.Fatalf("%s rung differs from reference by %g, want bit-identical", tc.mode, d)
			}
			runs := map[string]uint64{"full": st.FullRuns, "degraded": st.DegradedRuns, "reference": st.ReferenceRuns}
			for mode, n := range runs {
				want := uint64(0)
				if mode == tc.mode {
					want = 1
				}
				if n != want {
					t.Fatalf("%s runs = %d, want %d (stats %+v)", mode, n, want, st)
				}
			}
			if st.MemInUse != 0 {
				t.Fatalf("MemInUse = %d after success, want back to 0", st.MemInUse)
			}
			if st.MemPeak > tc.limit {
				t.Fatalf("MemPeak %d overshot the ceiling %d", st.MemPeak, tc.limit)
			}
		})
	}
}

func TestRecycleFeedsPool(t *testing.T) {
	rt := New(Config{})
	in, filter, want := testOperands(testShape)

	first, err := rt.TryConv2D(testShape, in, filter)
	if err != nil {
		t.Fatal(err)
	}
	rt.Recycle(first)
	if st := rt.Stats(); st.PoolIdleBytes == 0 {
		t.Fatal("recycled buffer did not reach the pool")
	}

	second, err := rt.TryConv2D(testShape, in, filter)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, second); d != 0 {
		t.Fatalf("pooled-buffer run differs by %g, want bit-identical", d)
	}
	st := rt.Stats()
	if st.PoolHits != 1 || st.FreshAllocs != 1 {
		t.Fatalf("PoolHits = %d FreshAllocs = %d, want 1 and 1", st.PoolHits, st.FreshAllocs)
	}
	if st.PoolIdleBytes != 0 {
		t.Fatalf("PoolIdleBytes = %d with the only buffer checked out, want 0", st.PoolIdleBytes)
	}
}

// TestPackedServing: Pack charges the budget for the filter's
// lifetime, packed execution rides the same ladder (the reference rung
// recomputing from the KCRS source), and ReleasePacked returns the
// charge.
func TestPackedServing(t *testing.T) {
	s := testShape
	in, filter, want := testOperands(s)

	rt := New(Config{})
	pf, err := rt.Pack(s, filter)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Budget().InUse(); got != pf.Bytes() {
		t.Fatalf("InUse = %d after Pack, want the packed charge %d", got, pf.Bytes())
	}
	got, err := rt.TryConv2DPackedCtx(context.Background(), s, in, pf)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("packed serve differs by %g, want bit-identical", d)
	}
	rt.ReleasePacked(pf)
	if got := rt.Budget().InUse(); got != 0 {
		t.Fatalf("InUse = %d after ReleasePacked, want 0", got)
	}

	// Tight budget: the packed charge plus exactly the output forces
	// the reference rung, which must recompute from pf's source.
	probe := New(Config{})
	outB, _, _ := ladderNeeds(t, probe, s)
	rt2 := New(Config{MemLimitBytes: 1 + outB + pf.Bytes()})
	pf2, err := rt2.Pack(s, filter)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := rt2.TryConv2DPackedCtx(context.Background(), s, in, pf2)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(want, got2); d != 0 {
		t.Fatalf("packed reference rung differs by %g, want bit-identical", d)
	}
	if st := rt2.Stats(); st.ReferenceRuns != 1 {
		t.Fatalf("ReferenceRuns = %d under tight budget, want 1 (stats %+v)", st.ReferenceRuns, st)
	}

	// A Pack the budget cannot hold is an overload, not a crash.
	rt3 := New(Config{MemLimitBytes: pf.Bytes() - 1})
	if _, err := rt3.Pack(s, filter); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("Pack over budget = %v, want ErrOverloaded", err)
	}
}

func TestForwardGatedAndOverload(t *testing.T) {
	s := testShape
	w := s.NewFilter()
	fillInts(w, 3)
	net := &nn.Network{Name: "tiny", Layers: []nn.Layer{
		&nn.ConvUnit{LayerName: "conv1", Shape: s, Weights: w, ReLU: true},
	}}
	x := s.NewInput()
	fillInts(x, 4)

	rt := New(Config{MaxInFlight: 1, MaxQueue: -1})
	out, err := rt.Forward(context.Background(), net, x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(1) != s.K {
		t.Fatalf("forward output K = %d, want %d", out.Dim(1), s.K)
	}

	// Hold the only slot: with no queue, Forward must overload fast.
	rel, err := rt.Gate().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Forward(context.Background(), net, x); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("Forward with gate held = %v, want ErrOverloaded", err)
	}
	rel()
}

// TestBadOperandsChargeNothing: validation failures must consume no
// budget, no pool entries, and no ladder counters.
func TestBadOperandsChargeNothing(t *testing.T) {
	rt := New(Config{})
	in := tensor.New(1, 1, 2, 2) // wrong C/H/W for testShape
	filter := testShape.NewFilter()
	if _, err := rt.TryConv2D(testShape, in, filter); !errors.Is(err, conv.ErrDimMismatch) {
		t.Fatalf("err = %v, want ErrDimMismatch", err)
	}
	st := rt.Stats()
	if st.MemInUse != 0 || st.MemPeak != 0 || st.FreshAllocs != 0 || st.PoolHits != 0 {
		t.Fatalf("validation failure left footprints: %+v", st)
	}
}
