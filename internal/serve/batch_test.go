package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ndirect/internal/conv"
	"ndirect/internal/core"
	"ndirect/internal/tensor"
)

// batchShape is small enough that a coalesced execution finishes well
// inside any test window.
var batchShape = conv.Shape{N: 1, C: 8, H: 8, W: 8, K: 8, R: 3, S: 3, Str: 1, Pad: 1}

// launchConvs fires k concurrent TryConv2DCtx calls with distinct
// integer inputs against rt and returns the per-caller outputs (fatal
// on any error). A barrier start maximises the chance every caller
// lands in the same batching window, but correctness must not depend
// on it — the assertions below only use counters where coalescing is
// forced structurally (BatchMax reached).
func launchConvs(t *testing.T, rt *Runtime, k int, filter *tensor.Tensor) (ins, outs []*tensor.Tensor) {
	t.Helper()
	ins = make([]*tensor.Tensor, k)
	outs = make([]*tensor.Tensor, k)
	errs := make([]error, k)
	for i := range ins {
		ins[i] = batchShape.NewInput()
		fillInts(ins[i], uint64(100+i))
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			outs[i], errs[i] = rt.TryConv2DCtx(context.Background(), batchShape, ins[i], filter)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	return ins, outs
}

func wantReference(t *testing.T, ins, outs []*tensor.Tensor, filter *tensor.Tensor, label string) {
	t.Helper()
	for i := range ins {
		want := conv.Reference(batchShape, ins[i], filter)
		for j, v := range outs[i].Data {
			if v != want.Data[j] {
				t.Fatalf("%s: caller %d element %d: got %v want %v", label, i, j, v, want.Data[j])
			}
		}
	}
}

// Concurrent same-shape requests must coalesce into single executions
// and still return outputs bit-identical to solo reference execution.
// BatchMax equals the caller count, so at least the final arrival seals
// a full batch structurally (no timing dependence).
func TestBatchCoalescesBitExact(t *testing.T) {
	rt := New(Config{
		MaxInFlight: 16, MaxQueue: 16,
		BatchWindow: 50 * time.Millisecond, BatchMax: 4,
		Options: core.Options{Threads: 1},
	})
	filter := batchShape.NewFilter()
	fillInts(filter, 7)
	for round := 0; round < 3; round++ {
		ins, outs := launchConvs(t, rt, 4, filter)
		wantReference(t, ins, outs, filter, "round")
	}
	st := rt.Stats()
	if st.BatchesExecuted == 0 {
		t.Fatalf("no coalesced executions despite BatchMax-filling rounds: %+v", st)
	}
	if st.BatchedRequests < 2*st.BatchesExecuted {
		t.Fatalf("batched request accounting inconsistent: %+v", st)
	}
}

// The packed entry point must coalesce identically (same key: the
// PackedFilter pointer) and remain bit-exact.
func TestBatchPackedCoalescesBitExact(t *testing.T) {
	rt := New(Config{
		MaxInFlight: 16, MaxQueue: 16,
		BatchWindow: 50 * time.Millisecond, BatchMax: 4,
		Options: core.Options{Threads: 1},
	})
	filter := batchShape.NewFilter()
	fillInts(filter, 9)
	pf, err := rt.Pack(batchShape, filter)
	if err != nil {
		t.Fatal(err)
	}
	k := 4
	ins := make([]*tensor.Tensor, k)
	outs := make([]*tensor.Tensor, k)
	errs := make([]error, k)
	for i := range ins {
		ins[i] = batchShape.NewInput()
		fillInts(ins[i], uint64(200+i))
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = rt.TryConv2DPackedCtx(context.Background(), batchShape, ins[i], pf)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	wantReference(t, ins, outs, filter, "packed")
	if rt.Stats().BatchesExecuted == 0 {
		t.Fatal("packed callers never coalesced")
	}
}

// A request's deadline bounds its batching wait: with a window far
// longer than the deadline, the waiter must leave the queue at its
// deadline and be rescued by the solo path's FallbackBudget —
// returning a bit-exact result long before the window would have
// flushed.
func TestBatchDeadlineBoundsWait(t *testing.T) {
	window := 30 * time.Second
	rt := New(Config{
		MaxInFlight: 4, MaxQueue: 4,
		BatchWindow: window, BatchMax: 64,
		Options: core.Options{Threads: 1, FallbackBudget: 10 * time.Second},
	})
	filter := batchShape.NewFilter()
	fillInts(filter, 3)
	in := batchShape.NewInput()
	fillInts(in, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	out, err := rt.TryConv2DCtx(ctx, batchShape, in, filter)
	if err != nil {
		t.Fatalf("deadline waiter must be rescued solo: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > window/2 {
		t.Fatalf("waiter was not released at its deadline (took %v)", elapsed)
	}
	wantReference(t, []*tensor.Tensor{in}, []*tensor.Tensor{out}, filter, "deadline")
	st := rt.Stats()
	if st.BatchExpired != 1 {
		t.Fatalf("BatchExpired = %d, want 1", st.BatchExpired)
	}
	if st.BatchesExecuted != 0 {
		t.Fatalf("a lone expired waiter must not count as a coalesced batch: %+v", st)
	}

	// Without a fallback budget the expired waiter sheds typed.
	rt2 := New(Config{
		BatchWindow: window, BatchMax: 64,
		Options: core.Options{Threads: 1},
	})
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := rt2.TryConv2DCtx(expired, batchShape, in, filter); !errors.Is(err, conv.ErrDeadline) {
		t.Fatalf("expired waiter without FallbackBudget must shed with ErrDeadline, got %v", err)
	}
}

// Tenant and QoS-class isolation: requests of different tenants (or
// classes) never share a batch even when shape and weights match. Two
// concurrent different-tenant requests with BatchMax 2 must flush as
// two solo windows; the same pair under one tenant seals a real batch.
func TestBatchNeverMixesTenantsOrClasses(t *testing.T) {
	mk := func() (*Registry, *tensor.Tensor) {
		rt := New(Config{
			MaxInFlight: 16, MaxQueue: 16,
			BatchWindow: 150 * time.Millisecond, BatchMax: 2,
			Options: core.Options{Threads: 1},
		})
		r := NewRegistry(RegistryConfig{
			Runtime:     rt,
			MaxInFlight: 16, MaxQueue: 16,
			Tenants: map[string]TenantConfig{
				"alice": {Class: ClassPremium},
				"bob":   {Class: ClassStandard},
			},
		})
		filter := batchShape.NewFilter()
		fillInts(filter, 5)
		return r, filter
	}

	run := func(r *Registry, filter *tensor.Tensor, tenants [2]string) {
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				in := batchShape.NewInput()
				fillInts(in, uint64(300+i))
				want := conv.Reference(batchShape, in, filter)
				out, err := r.Conv2DCtx(context.Background(), tenants[i], batchShape, in, filter)
				if err != nil {
					t.Errorf("tenant %s: %v", tenants[i], err)
					return
				}
				for j, v := range out.Data {
					if v != want.Data[j] {
						t.Errorf("tenant %s element %d: got %v want %v", tenants[i], j, v, want.Data[j])
						return
					}
				}
			}(i)
		}
		wg.Wait()
	}

	r, filter := mk()
	run(r, filter, [2]string{"alice", "bob"})
	st := r.Stats().Runtime
	if st.BatchesExecuted != 0 {
		t.Fatalf("different tenants coalesced: %+v", st)
	}
	if st.BatchSoloFlushes != 2 {
		t.Fatalf("BatchSoloFlushes = %d, want 2 (one window per tenant)", st.BatchSoloFlushes)
	}

	r2, filter2 := mk()
	run(r2, filter2, [2]string{"alice", "alice"})
	st = r2.Stats().Runtime
	if st.BatchesExecuted != 1 || st.BatchedRequests != 2 {
		t.Fatalf("same tenant same class must coalesce at BatchMax=2: %+v", st)
	}
}

// Inference batching: concurrent Infer calls against one model coalesce
// into a single stacked forward pass and return outputs bit-identical
// to solo inference.
func TestBatchInferCoalescesBitExact(t *testing.T) {
	rt := New(Config{
		MaxInFlight: 16, MaxQueue: 16,
		BatchWindow: 50 * time.Millisecond, BatchMax: 4,
		Options: core.Options{Threads: 1},
	})
	r := NewRegistry(RegistryConfig{
		Runtime:     rt,
		MaxInFlight: 16, MaxQueue: 16,
	})
	net := tinyNet(11, true)
	if err := r.Register("alice", "m", net); err != nil {
		t.Fatal(err)
	}
	k := 4
	ins := make([]*tensor.Tensor, k)
	wants := make([]*tensor.Tensor, k)
	for i := range ins {
		ins[i] = testShape.NewInput()
		fillInts(ins[i], uint64(400+i))
		wants[i] = baseline(t, net, ins[i])
	}
	for round := 0; round < 3; round++ {
		outs := make([]*tensor.Tensor, k)
		errs := make([]error, k)
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i], errs[i] = r.Infer(context.Background(), "alice", "m", ins[i])
			}(i)
		}
		wg.Wait()
		for i := range outs {
			if errs[i] != nil {
				t.Fatalf("round %d caller %d: %v", round, i, errs[i])
			}
			for j, v := range outs[i].Data {
				if v != wants[i].Data[j] {
					t.Fatalf("round %d caller %d element %d: got %v want %v", round, i, j, v, wants[i].Data[j])
				}
			}
		}
	}
	if st := r.Stats().Runtime; st.BatchesExecuted == 0 {
		t.Fatalf("Infer callers never coalesced: %+v", st)
	}
}

// The gate's in-flight accounting must stay coherent under concurrent
// acquire/release/read: never above the configured ceiling, never
// negative, and exactly zero once everything has drained. Run with
// -race in CI.
func TestGateInFlightCoherentUnderRace(t *testing.T) {
	const max = 4
	g := NewGate(max, 64)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := g.InFlight(); n < 0 || n > max {
				t.Errorf("InFlight = %d, want 0..%d", n, max)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				release, err := g.Acquire(context.Background())
				if err != nil {
					continue
				}
				release()
				release() // idempotent: must not double-decrement
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if n := g.InFlight(); n != 0 {
		t.Fatalf("drained gate InFlight = %d, want 0", n)
	}
}

// Recycle must refuse hazards instead of corrupting the pool: a tensor
// recycled twice is parked once, and a view into a larger tensor (len
// != cap, or aliasing a parked buffer) never enters the free list.
func TestRecycleRefusesDoubleRecycleAndViews(t *testing.T) {
	rt := New(Config{})
	in, filter, _ := testOperands(testShape)
	out, err := rt.TryConv2D(testShape, in, filter)
	if err != nil {
		t.Fatal(err)
	}
	rt.Recycle(out)
	rt.Recycle(out) // double recycle: refused, not double-parked
	if got := rt.Stats().RecycleRefused; got != 1 {
		t.Fatalf("RecycleRefused = %d, want 1 after double recycle", got)
	}
	// The buffer must come back out exactly once.
	n := len(out.Data)
	if buf := rt.pool.get(n); buf == nil {
		t.Fatal("recycled buffer not pooled")
	}
	if buf := rt.pool.get(n); buf != nil {
		t.Fatal("double recycle parked the same buffer twice")
	}

	// Views (len != cap) must be refused outright.
	big := tensor.New(2, 4)
	view := tensor.FromSlice(big.Data[:4], 1, 4)
	rt.Recycle(view)
	if got := rt.Stats().RecycleRefused; got != 2 {
		t.Fatalf("RecycleRefused = %d, want 2 after view recycle", got)
	}
	if buf := rt.pool.get(4); buf != nil {
		t.Fatal("view entered the pool")
	}
}
