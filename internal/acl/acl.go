// Package acl implements the ARM Compute Library-style baselines of
// the motivation study (Figure 1b): a direct convolution that
// parallelises only the K dimension while iterating the batch
// sequentially ("naïve parallelization of the K dimension without
// considering the convolution workload characteristics", §3.2 — the
// strategy that reaches only 5% of multi-core peak), and an
// im2col+GEMM variant on an unblocked textbook GEMM (ACL_GEMM).
package acl

import (
	"ndirect/internal/conv"
	"ndirect/internal/gemm"
	"ndirect/internal/im2col"
	"ndirect/internal/parallel"
	"ndirect/internal/simd"
	"ndirect/internal/tensor"
)

// Options configure the baselines.
type Options struct {
	Threads int
}

// DirectConv2D is the ACL-style direct convolution: output channels
// are statically split across all workers; batch images are processed
// one after another, accumulating the linear cost the paper
// describes. The inner computation vectorises over output columns
// but uses no packing, no filter blocking and no cache tiling.
func DirectConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	conv.CheckOperands(s, in, filter)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()
	out := s.NewOutput()
	for n := 0; n < s.N; n++ { // sequential batch loop (the flaw)
		parallel.MustFor(s.K, threads, func(k int) {
			directPlane(s, in.Data, filter.Data, out.Data, n, k, p, q)
		})
	}
	return out
}

// directPlane computes out[n][k] with a straightforward loop nest:
// vectorised over groups of 4 output columns for stride 1, scalar
// otherwise.
func directPlane(s conv.Shape, in, filter, out []float32, n, k, p, q int) {
	fBase := k * s.C * s.R * s.S
	for oh := 0; oh < p; oh++ {
		ihBase := oh*s.Str - s.Pad
		outRow := out[((n*s.K+k)*p+oh)*q : ((n*s.K+k)*p+oh+1)*q]
		ow := 0
		if s.Str == 1 {
			for ; ow+simd.Width <= q; ow += simd.Width {
				iwBase := ow - s.Pad
				acc := simd.Zero()
				for c := 0; c < s.C; c++ {
					inBase := ((n*s.C + c) * s.H) * s.W
					fc := fBase + c*s.R*s.S
					for r := 0; r < s.R; r++ {
						ih := ihBase + r
						if ih < 0 || ih >= s.H {
							continue
						}
						row := in[inBase+ih*s.W : inBase+(ih+1)*s.W]
						for ss := 0; ss < s.S; ss++ {
							iw := iwBase + ss
							f := filter[fc+r*s.S+ss]
							if iw >= 0 && iw+simd.Width <= s.W {
								acc = acc.FMAScalar(simd.Load(row[iw:]), f)
								continue
							}
							var v simd.Vec4
							for lane := 0; lane < simd.Width; lane++ {
								if x := iw + lane; x >= 0 && x < s.W {
									v[lane] = row[x]
								}
							}
							acc = acc.FMAScalar(v, f)
						}
					}
				}
				acc.Store(outRow[ow:])
			}
		}
		for ; ow < q; ow++ {
			var acc float32
			for c := 0; c < s.C; c++ {
				inBase := ((n*s.C + c) * s.H) * s.W
				fc := fBase + c*s.R*s.S
				for r := 0; r < s.R; r++ {
					ih := ihBase + r
					if ih < 0 || ih >= s.H {
						continue
					}
					for ss := 0; ss < s.S; ss++ {
						iw := ow*s.Str - s.Pad + ss
						if iw < 0 || iw >= s.W {
							continue
						}
						acc += in[inBase+ih*s.W+iw] * filter[fc+r*s.S+ss]
					}
				}
			}
			outRow[ow] = acc
		}
	}
}

// GEMMConv2D is the ACL_GEMM baseline: im2col lowering followed by an
// unblocked GEMM whose rows (output channels) are split across the
// workers — again leaving batch-level parallelism unused.
func GEMMConv2D(s conv.Shape, in, filter *tensor.Tensor, opt Options) *tensor.Tensor {
	conv.CheckOperands(s, in, filter)
	threads := opt.Threads
	if threads <= 0 {
		threads = parallel.DefaultThreads()
	}
	p, q := s.P(), s.Q()
	pq := p * q
	crs := s.C * s.R * s.S
	out := s.NewOutput()
	cols := make([]float32, crs*pq)
	for n := 0; n < s.N; n++ { // sequential batch loop
		if im2col.NeedsLowering(s) {
			im2col.Lower(s, in, n, cols)
		} else {
			copy(cols, in.Data[n*s.C*s.H*s.W:(n+1)*s.C*s.H*s.W])
		}
		cOut := out.Data[n*s.K*pq:]
		parallel.MustFor(s.K, threads, func(k int) {
			gemm.Naive(1, pq, crs, filter.Data[k*crs:(k+1)*crs], cols, cOut[k*pq:(k+1)*pq])
		})
	}
	return out
}
