package acl

import (
	"testing"

	"ndirect/internal/conv"
	"ndirect/internal/tensor"
)

const tol = 2e-5

func shapes() []conv.Shape {
	return []conv.Shape{
		{N: 2, C: 8, H: 12, W: 12, K: 16, R: 3, S: 3, Str: 1, Pad: 1},
		{N: 1, C: 4, H: 10, W: 10, K: 8, R: 1, S: 1, Str: 1, Pad: 0},
		{N: 1, C: 4, H: 16, W: 16, K: 8, R: 3, S: 3, Str: 2, Pad: 1},
		{N: 1, C: 3, H: 18, W: 18, K: 8, R: 7, S: 7, Str: 2, Pad: 3},
		{N: 1, C: 5, H: 7, W: 9, K: 3, R: 3, S: 3, Str: 1, Pad: 1},
	}
}

func TestDirectConv2DMatchesReference(t *testing.T) {
	for _, s := range shapes() {
		in := s.NewInput()
		in.FillRandom(int64(s.C))
		f := s.NewFilter()
		f.FillRandom(int64(s.K))
		want := conv.Reference(s, in, f)
		got := DirectConv2D(s, in, f, Options{Threads: 2})
		if d := tensor.RelDiff(want, got); d > tol {
			t.Fatalf("direct %v: rel diff %g", s, d)
		}
	}
}

func TestGEMMConv2DMatchesReference(t *testing.T) {
	for _, s := range shapes() {
		in := s.NewInput()
		in.FillRandom(int64(s.C + 1))
		f := s.NewFilter()
		f.FillRandom(int64(s.K + 1))
		want := conv.Reference(s, in, f)
		got := GEMMConv2D(s, in, f, Options{Threads: 2})
		if d := tensor.RelDiff(want, got); d > tol {
			t.Fatalf("gemm %v: rel diff %g", s, d)
		}
	}
}

func TestThreadInvariance(t *testing.T) {
	s := conv.Shape{N: 2, C: 8, H: 10, W: 10, K: 12, R: 3, S: 3, Str: 1, Pad: 1}
	in := s.NewInput()
	in.FillRandom(3)
	f := s.NewFilter()
	f.FillRandom(4)
	if tensor.MaxAbsDiff(DirectConv2D(s, in, f, Options{Threads: 1}),
		DirectConv2D(s, in, f, Options{Threads: 8})) != 0 {
		t.Fatal("direct: thread count changed result")
	}
	if tensor.MaxAbsDiff(GEMMConv2D(s, in, f, Options{Threads: 1}),
		GEMMConv2D(s, in, f, Options{Threads: 8})) != 0 {
		t.Fatal("gemm: thread count changed result")
	}
}
