package conv

import (
	"errors"
	"fmt"

	"ndirect/internal/tensor"
)

// Sentinel errors of the checked validation API. Every validation
// failure in this package (and the shape/operand failures surfaced by
// internal/core) wraps one of these, so callers can classify failures
// with errors.Is while still getting a descriptive message.
var (
	// ErrBadShape reports a Shape that does not describe a realisable
	// convolution (non-positive dimension, kernel larger than the
	// padded input, or sizes past the implementation limits).
	ErrBadShape = errors.New("conv: bad shape")
	// ErrDimMismatch reports an operand tensor whose rank, dimensions
	// or backing-buffer length do not match the Shape.
	ErrDimMismatch = errors.New("conv: dimension mismatch")
	// ErrDeadline reports an execution abandoned because its context
	// expired or was canceled before the worker grid finished. Errors
	// wrapping it also wrap the context's cause, so errors.Is against
	// context.DeadlineExceeded / context.Canceled distinguishes a blown
	// budget from an explicit cancellation.
	ErrDeadline = errors.New("conv: execution budget exhausted")
)

// Implementation limits enforced by Shape.Validate. They exist so that
// downstream size arithmetic (offsets, scratch-buffer geometry, FLOP
// counts) provably stays inside int64 — a shape past these bounds
// could silently overflow instead of failing loudly.
const (
	// MaxDim bounds every individual shape dimension.
	MaxDim = 1 << 24
	// MaxElems bounds the element count of any one operand tensor.
	MaxElems = 1 << 40
)

// elemCount multiplies dims with overflow protection against the
// MaxElems budget. ok is false for non-positive dims or a product
// exceeding MaxElems.
func elemCount(dims ...int) (int64, bool) {
	p := int64(1)
	for _, d := range dims {
		if d <= 0 {
			return 0, false
		}
		if p > MaxElems/int64(d) {
			return 0, false
		}
		p *= int64(d)
	}
	return p, true
}

// Validate reports whether the shape describes a realisable
// convolution within the implementation limits; the nil error is the
// checked-API equivalent of Valid. All arithmetic runs in int64, so
// adversarial values (e.g. Pad near MaxInt) fail cleanly instead of
// overflowing in P()/Q().
func (s Shape) Validate() error {
	dims := []struct {
		name string
		v    int
	}{
		{"N", s.N}, {"C", s.C}, {"H", s.H}, {"W", s.W},
		{"K", s.K}, {"R", s.R}, {"S", s.S}, {"Str", s.Str},
	}
	for _, d := range dims {
		if d.v < 1 || d.v > MaxDim {
			return fmt.Errorf("%w: %s=%d outside [1, %d]", ErrBadShape, d.name, d.v, MaxDim)
		}
	}
	if s.Pad < 0 || s.Pad > MaxDim {
		return fmt.Errorf("%w: Pad=%d outside [0, %d]", ErrBadShape, s.Pad, MaxDim)
	}
	if int64(s.H)+2*int64(s.Pad) < int64(s.R) || int64(s.W)+2*int64(s.Pad) < int64(s.S) {
		return fmt.Errorf("%w: kernel %dx%d does not fit the padded %dx%d input (pad %d)",
			ErrBadShape, s.R, s.S, s.H, s.W, s.Pad)
	}
	if _, ok := elemCount(s.N, s.C, s.H, s.W); !ok {
		return fmt.Errorf("%w: input larger than %d elements", ErrBadShape, int64(MaxElems))
	}
	if _, ok := elemCount(s.K, s.C, s.R, s.S); !ok {
		return fmt.Errorf("%w: filter larger than %d elements", ErrBadShape, int64(MaxElems))
	}
	if _, ok := elemCount(s.N, s.K, s.P(), s.Q()); !ok {
		return fmt.Errorf("%w: output larger than %d elements", ErrBadShape, int64(MaxElems))
	}
	return nil
}

// ValidateTensor checks that t is a non-nil tensor with exactly the
// wanted dimensions and a backing buffer of matching length. label
// names the operand in the error message. The error branches format a
// copy of want rather than want itself, so the variadic slice never
// escapes and the happy path — run before every convolution on the
// serving hot loop — stays allocation-free.
func ValidateTensor(label string, t *tensor.Tensor, want ...int) error {
	if t == nil {
		return fmt.Errorf("%w: nil %s tensor", ErrDimMismatch, label)
	}
	if len(t.Dims) != len(want) {
		return fmt.Errorf("%w: %s rank %d, want %d (%v)", ErrDimMismatch, label, len(t.Dims), len(want),
			append([]int(nil), want...))
	}
	n := 1
	for i, d := range want {
		if t.Dims[i] != d {
			return fmt.Errorf("%w: %s dims %v, want %v", ErrDimMismatch, label, t.Dims,
				append([]int(nil), want...))
		}
		n *= d
	}
	if len(t.Data) != n {
		return fmt.Errorf("%w: %s buffer length %d, want %d for dims %v",
			ErrDimMismatch, label, len(t.Data), n, append([]int(nil), want...))
	}
	return nil
}

// ValidateOperands is the checked form of CheckOperands: shape
// validity plus NCHW input and KCRS filter dimension/buffer checks.
func ValidateOperands(s Shape, in, filter *tensor.Tensor) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if err := ValidateTensor("input", in, s.N, s.C, s.H, s.W); err != nil {
		return err
	}
	return ValidateTensor("filter", filter, s.K, s.C, s.R, s.S)
}

// ValidateOutput checks the NKPQ output tensor against the shape.
func ValidateOutput(s Shape, out *tensor.Tensor) error {
	return ValidateTensor("output", out, s.N, s.K, s.P(), s.Q())
}
