package conv

// Table 4 of the paper: the 28 convolution operator configurations
// drawn from ResNet-50 (IDs 1–23) and VGG-16 (IDs 24–28). The batch
// size N is set per-experiment to the core count of the platform
// (§7.2), so the shapes here carry N=1 and callers use WithBatch.
//
// The paper's table omits padding; the values below are the standard
// paddings of the source networks (7×7 stride-2 → pad 3, 3×3 → pad 1,
// 1×1 → pad 0), which the layer geometry requires for the published
// output sizes. Two rows of the accepted-manuscript table lose a
// column to typesetting (IDs 15–16 omit K, ID 21 prints H/W as 3);
// they are restored from the ResNet-50 architecture (ID 15: K=512,
// ID 16: K=256, ID 21: H/W=7).

// Layer pairs a Table 4 row ID with its convolution shape.
type Layer struct {
	ID    int
	Shape Shape
	Net   string // source network: "ResNet-50" or "VGG-16"
}

// layer builds a Table 4 row; pad is derived from the kernel: R=S=7 →
// 3, R=S=3 → 1, R=S=1 → 0 (the source networks' "same" padding).
func layer(id, c, k, hw, rs, str int, net string) Layer {
	pad := 0
	switch rs {
	case 7:
		pad = 3
	case 3:
		pad = 1
	}
	return Layer{
		ID:  id,
		Net: net,
		Shape: Shape{
			N: 1, C: c, H: hw, W: hw,
			K: k, R: rs, S: rs, Str: str, Pad: pad,
		},
	}
}

// Table4 lists all 28 evaluation layers in paper order.
var Table4 = []Layer{
	layer(1, 3, 64, 224, 7, 2, "ResNet-50"),
	layer(2, 128, 128, 56, 3, 2, "ResNet-50"),
	layer(3, 64, 64, 56, 3, 1, "ResNet-50"),
	layer(4, 256, 512, 56, 1, 2, "ResNet-50"),
	layer(5, 64, 64, 56, 1, 1, "ResNet-50"),
	layer(6, 64, 256, 56, 1, 1, "ResNet-50"),
	layer(7, 256, 64, 56, 1, 1, "ResNet-50"),
	layer(8, 256, 128, 56, 1, 1, "ResNet-50"),
	layer(9, 256, 256, 28, 3, 2, "ResNet-50"),
	layer(10, 128, 128, 28, 3, 1, "ResNet-50"),
	layer(11, 512, 1024, 28, 1, 2, "ResNet-50"),
	layer(12, 512, 256, 28, 1, 1, "ResNet-50"),
	layer(13, 512, 128, 28, 1, 1, "ResNet-50"),
	layer(14, 128, 512, 28, 1, 1, "ResNet-50"),
	layer(15, 512, 512, 14, 3, 2, "ResNet-50"),
	layer(16, 256, 256, 14, 3, 1, "ResNet-50"),
	layer(17, 1024, 2048, 14, 1, 2, "ResNet-50"),
	layer(18, 256, 1024, 14, 1, 1, "ResNet-50"),
	layer(19, 1024, 512, 14, 1, 1, "ResNet-50"),
	layer(20, 1024, 256, 14, 1, 1, "ResNet-50"),
	layer(21, 512, 512, 7, 3, 1, "ResNet-50"),
	layer(22, 512, 2048, 7, 1, 1, "ResNet-50"),
	layer(23, 2048, 512, 7, 1, 1, "ResNet-50"),
	layer(24, 64, 64, 224, 3, 1, "VGG-16"),
	layer(25, 128, 128, 112, 3, 1, "VGG-16"),
	layer(26, 256, 256, 56, 3, 1, "VGG-16"),
	layer(27, 512, 512, 28, 3, 1, "VGG-16"),
	layer(28, 512, 512, 14, 3, 1, "VGG-16"),
}

// LayerByID returns the Table 4 row with the given ID (1-based).
func LayerByID(id int) (Layer, bool) {
	if id >= 1 && id <= len(Table4) && Table4[id-1].ID == id {
		return Table4[id-1], true
	}
	for _, l := range Table4 {
		if l.ID == id {
			return l, true
		}
	}
	return Layer{}, false
}

// Layers1to20 returns the ResNet-50 subset used by Figures 1, 6, 8
// and 9.
func Layers1to20() []Layer { return Table4[:20] }

// VGGLayers returns IDs 24–28, used by Figure 5.
func VGGLayers() []Layer { return Table4[23:] }
