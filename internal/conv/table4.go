package conv

// Table 4 of the paper: the 28 convolution operator configurations
// drawn from ResNet-50 (IDs 1–23) and VGG-16 (IDs 24–28). The batch
// size N is set per-experiment to the core count of the platform
// (§7.2), so the shapes here carry N=1 and callers use WithBatch.
//
// The paper's table omits padding; the values below are the standard
// paddings of the source networks (7×7 stride-2 → pad 3, 3×3 → pad 1,
// 1×1 → pad 0), which the layer geometry requires for the published
// output sizes. Two rows of the accepted-manuscript table lose a
// column to typesetting (IDs 15–16 omit K, ID 21 prints H/W as 3);
// they are restored from the ResNet-50 architecture (ID 15: K=512,
// ID 16: K=256, ID 21: H/W=7).

// Layer pairs a Table 4 row ID with its convolution shape.
type Layer struct {
	ID        int
	Shape     Shape
	Net       string // source network: "ResNet-50", "VGG-16" or "MobileNetV1"
	Depthwise bool   // Shape describes a depthwise (per-channel) stage; K is implied by C
}

// layer builds a Table 4 row; pad is derived from the kernel: R=S=7 →
// 3, R=S=3 → 1, R=S=1 → 0 (the source networks' "same" padding).
func layer(id, c, k, hw, rs, str int, net string) Layer {
	pad := 0
	switch rs {
	case 7:
		pad = 3
	case 3:
		pad = 1
	}
	return Layer{
		ID:  id,
		Net: net,
		Shape: Shape{
			N: 1, C: c, H: hw, W: hw,
			K: k, R: rs, S: rs, Str: str, Pad: pad,
		},
	}
}

// Table4 lists all 28 evaluation layers in paper order.
var Table4 = []Layer{
	layer(1, 3, 64, 224, 7, 2, "ResNet-50"),
	layer(2, 128, 128, 56, 3, 2, "ResNet-50"),
	layer(3, 64, 64, 56, 3, 1, "ResNet-50"),
	layer(4, 256, 512, 56, 1, 2, "ResNet-50"),
	layer(5, 64, 64, 56, 1, 1, "ResNet-50"),
	layer(6, 64, 256, 56, 1, 1, "ResNet-50"),
	layer(7, 256, 64, 56, 1, 1, "ResNet-50"),
	layer(8, 256, 128, 56, 1, 1, "ResNet-50"),
	layer(9, 256, 256, 28, 3, 2, "ResNet-50"),
	layer(10, 128, 128, 28, 3, 1, "ResNet-50"),
	layer(11, 512, 1024, 28, 1, 2, "ResNet-50"),
	layer(12, 512, 256, 28, 1, 1, "ResNet-50"),
	layer(13, 512, 128, 28, 1, 1, "ResNet-50"),
	layer(14, 128, 512, 28, 1, 1, "ResNet-50"),
	layer(15, 512, 512, 14, 3, 2, "ResNet-50"),
	layer(16, 256, 256, 14, 3, 1, "ResNet-50"),
	layer(17, 1024, 2048, 14, 1, 2, "ResNet-50"),
	layer(18, 256, 1024, 14, 1, 1, "ResNet-50"),
	layer(19, 1024, 512, 14, 1, 1, "ResNet-50"),
	layer(20, 1024, 256, 14, 1, 1, "ResNet-50"),
	layer(21, 512, 512, 7, 3, 1, "ResNet-50"),
	layer(22, 512, 2048, 7, 1, 1, "ResNet-50"),
	layer(23, 2048, 512, 7, 1, 1, "ResNet-50"),
	layer(24, 64, 64, 224, 3, 1, "VGG-16"),
	layer(25, 128, 128, 112, 3, 1, "VGG-16"),
	layer(26, 256, 256, 56, 3, 1, "VGG-16"),
	layer(27, 512, 512, 28, 3, 1, "VGG-16"),
	layer(28, 512, 512, 14, 3, 1, "VGG-16"),
}

// dwLayer builds a MobileNet depthwise row: a per-channel 3×3 stage
// (K = C, same padding).
func dwLayer(id, c, hw, str int) Layer {
	l := layer(id, c, c, hw, 3, str, "MobileNetV1")
	l.Depthwise = true
	return l
}

// MobileNetRows extends the evaluation table beyond the paper with
// the MobileNetV1 depthwise-separable serving shapes (ROADMAP:
// MobileNet-class workloads): the 112×112×32 stride-1 and 56×56×128
// stride-2 depthwise stages and their matching 1×1 pointwise stages.
// IDs continue after Table 4's 28 rows.
var MobileNetRows = []Layer{
	dwLayer(29, 32, 112, 1),
	layer(30, 32, 64, 112, 1, 1, "MobileNetV1"),
	dwLayer(31, 128, 56, 2),
	layer(32, 128, 256, 28, 1, 1, "MobileNetV1"),
}

// LayerByID returns the evaluation-table row with the given ID:
// Table 4 rows 1–28, MobileNet extension rows above that.
func LayerByID(id int) (Layer, bool) {
	if id >= 1 && id <= len(Table4) && Table4[id-1].ID == id {
		return Table4[id-1], true
	}
	for _, l := range Table4 {
		if l.ID == id {
			return l, true
		}
	}
	for _, l := range MobileNetRows {
		if l.ID == id {
			return l, true
		}
	}
	return Layer{}, false
}

// AllLayers returns the full evaluation table: the paper's 28 rows
// followed by the MobileNet extension rows.
func AllLayers() []Layer {
	out := make([]Layer, 0, len(Table4)+len(MobileNetRows))
	out = append(out, Table4...)
	out = append(out, MobileNetRows...)
	return out
}

// Layers1to20 returns the ResNet-50 subset used by Figures 1, 6, 8
// and 9.
func Layers1to20() []Layer { return Table4[:20] }

// VGGLayers returns IDs 24–28, used by Figure 5.
func VGGLayers() []Layer { return Table4[23:] }
